.PHONY: all build test check bench bench-smoke examples doc clean soak lint

all: build

build:
	dune build @all

test:
	dune runtest

# Repo-specific static analysis (tools/lint).  Fails on any finding not
# recorded in tools/lint/baseline.txt; the baseline only shrinks.  After
# paying down debt, regenerate with:
#   dune exec tools/lint/fsynlint.exe -- --update-baseline
lint:
	dune build tools/lint/fsynlint.exe
	dune exec tools/lint/fsynlint.exe --

# What CI runs: full build (including examples and benches), the test
# suite, the lint ratchet, and the bench-smoke JSON round trip.
check: build test lint bench-smoke

# QUICK=1 runs only the JSON-exporting scenarios on their reduced
# matrices — a smoke test fast enough for CI.
bench:
ifeq ($(QUICK),1)
	QUICK=1 dune exec bench/main.exe -- metadata collection
else
	dune exec bench/main.exe
endif

# CI smoke: run the reduced bench matrix and verify the machine-readable
# exports parse and carry the fsync-bench/1 shape (tools/benchjson).
bench-smoke:
	$(MAKE) bench QUICK=1
	dune exec tools/benchjson/benchjson.exe -- \
	  BENCH_metadata.json BENCH_collection.json

examples:
	dune exec examples/quickstart.exe
	dune exec examples/source_tree_sync.exe
	dune exec examples/web_mirror.exe
	dune exec examples/tuning.exe
	dune exec examples/broadcast_mirror.exe
	dune exec examples/metadata_recon.exe
	dune exec examples/faulty_link.exe

# The fault-injection matrix: frame/fault unit tests, decoder fuzzing and
# the 200-schedule soak.
soak:
	dune exec test/test_main.exe -- test resilience

doc:
	dune build @doc

clean:
	dune clean
