.PHONY: all build test check bench bench-smoke serve-smoke swarm-smoke examples doc clean soak lint torture torture-smoke

all: build

build:
	dune build @all

test:
	dune runtest

# Repo-specific static analysis (tools/lint).  Fails on any finding not
# recorded in tools/lint/baseline.txt; the baseline only shrinks.  After
# paying down debt, regenerate with:
#   dune exec tools/lint/fsynlint.exe -- --update-baseline
lint:
	dune build tools/lint/fsynlint.exe
	dune exec tools/lint/fsynlint.exe --

# What CI runs: full build (including examples and benches), the test
# suite, the lint ratchet, the bench-smoke JSON round trip, the daemon
# end-to-end smoke (serve + concurrent pulls over TCP), the swarm
# end-to-end smoke (3 forked peers converging over TCP), and the
# reduced crash-tolerance torture matrix.
check: build test lint bench-smoke serve-smoke swarm-smoke torture-smoke

# QUICK=1 runs only the JSON-exporting scenarios on their reduced
# matrices — a smoke test fast enough for CI.
bench:
ifeq ($(QUICK),1)
	QUICK=1 dune exec bench/main.exe -- metadata collection server store swarm
else
	dune exec bench/main.exe
endif

# CI smoke: run the reduced bench matrix and verify the machine-readable
# exports parse and carry the fsync-bench/1 shape (tools/benchjson).
bench-smoke:
	$(MAKE) bench QUICK=1
	dune exec tools/benchjson/benchjson.exe -- \
	  BENCH_metadata.json BENCH_collection.json BENCH_server.json \
	  BENCH_store.json BENCH_swarm.json

# Daemon end-to-end smoke: start `fsync serve` on an ephemeral TCP port,
# run four concurrent `fsync pull`s (one through an injected-fault link),
# verify the replicas byte-for-byte and shut the daemon down cleanly.
serve-smoke:
	dune build bin/fsync.exe tools/benchjson/benchjson.exe
	sh tools/serve_smoke.sh

# Swarm end-to-end smoke: three forked `fsync swarm serve` peers on
# ephemeral ports with divergent edits (one deliberate conflict), a
# joiner relaying gossip until every exchange short-circuits, then
# byte-identical convergence, conflict surfacing, quorum read-repair
# and rev-2 pull interop asserted, and a clean SIGTERM shutdown.
swarm-smoke:
	dune build bin/fsync.exe
	sh tools/swarm_smoke.sh

examples:
	dune exec examples/quickstart.exe
	dune exec examples/source_tree_sync.exe
	dune exec examples/web_mirror.exe
	dune exec examples/tuning.exe
	dune exec examples/broadcast_mirror.exe
	dune exec examples/metadata_recon.exe
	dune exec examples/faulty_link.exe

# The fault-injection matrix: frame/fault unit tests, decoder fuzzing and
# the 200-schedule soak.
soak:
	dune exec test/test_main.exe -- test resilience

# Crash-tolerance torture (DESIGN.md §12): the full {crash point x
# disk-fault schedule} x {push, pull, gc, compact} matrix with restart,
# fsck and convergence asserted per cell, plus the resumed-pull payload
# bar; writes and validates BENCH_torture.json.  torture-smoke is the
# QUICK-scaled variant CI runs inside `make check`.
torture:
	sh tools/torture.sh

torture-smoke:
	QUICK=1 sh tools/torture.sh

doc:
	dune build @doc

clean:
	dune clean
