.PHONY: all build test check bench examples doc clean soak

all: build

build:
	dune build @all

test:
	dune runtest

# What CI runs: full build (including examples and benches) plus the test
# suite.
check: build test

# QUICK=1 runs only the metadata scenario on its reduced matrix — a smoke
# test fast enough for CI.
bench:
ifeq ($(QUICK),1)
	QUICK=1 dune exec bench/main.exe -- metadata
else
	dune exec bench/main.exe
endif

examples:
	dune exec examples/quickstart.exe
	dune exec examples/source_tree_sync.exe
	dune exec examples/web_mirror.exe
	dune exec examples/tuning.exe
	dune exec examples/broadcast_mirror.exe
	dune exec examples/metadata_recon.exe
	dune exec examples/faulty_link.exe

# The fault-injection matrix: frame/fault unit tests, decoder fuzzing and
# the 200-schedule soak.
soak:
	dune exec test/test_main.exe -- test resilience

doc:
	dune build @doc

clean:
	dune clean
