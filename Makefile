.PHONY: all build test bench examples doc clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

examples:
	dune exec examples/quickstart.exe
	dune exec examples/source_tree_sync.exe
	dune exec examples/web_mirror.exe
	dune exec examples/tuning.exe

doc:
	dune build @doc

clean:
	dune clean
