.PHONY: all build test check bench examples doc clean soak lint

all: build

build:
	dune build @all

test:
	dune runtest

# Repo-specific static analysis (tools/lint).  Fails on any finding not
# recorded in tools/lint/baseline.txt; the baseline only shrinks.  After
# paying down debt, regenerate with:
#   dune exec tools/lint/fsynlint.exe -- --update-baseline
lint:
	dune build tools/lint/fsynlint.exe
	dune exec tools/lint/fsynlint.exe --

# What CI runs: full build (including examples and benches), the test
# suite, and the lint ratchet.
check: build test lint

# QUICK=1 runs only the metadata scenario on its reduced matrix — a smoke
# test fast enough for CI.
bench:
ifeq ($(QUICK),1)
	QUICK=1 dune exec bench/main.exe -- metadata
else
	dune exec bench/main.exe
endif

examples:
	dune exec examples/quickstart.exe
	dune exec examples/source_tree_sync.exe
	dune exec examples/web_mirror.exe
	dune exec examples/tuning.exe
	dune exec examples/broadcast_mirror.exe
	dune exec examples/metadata_recon.exe
	dune exec examples/faulty_link.exe

# The fault-injection matrix: frame/fault unit tests, decoder fuzzing and
# the 200-schedule soak.
soak:
	dune exec test/test_main.exe -- test resilience

doc:
	dune build @doc

clean:
	dune clean
