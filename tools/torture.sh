#!/bin/sh
# Crash-tolerance torture harness (DESIGN.md §12).
#
# Runs the {crash point x disk-fault schedule} x {push, pull, gc,
# compact} matrix in bench/main.exe: every cell injects seeded disk
# faults plus a hard crash at the K-th mutating syscall, restarts with
# a clean filesystem, and asserts `Store.fsck` reports zero errors and
# the workload re-run converges byte-identically.  The run also checks
# the resumed-pull economy bar (a pull killed mid-session and resumed
# via its fsyncd/1 token must re-transfer at most 25% of the cold
# payload) and validates the BENCH_torture.json export.
#
# QUICK=1 shrinks the crash-point sweep (CI smoke); unset it for the
# full matrix.  Any violated invariant makes the bench — and therefore
# this script — exit non-zero.
set -e

dune build bench/main.exe tools/benchjson/benchjson.exe
dune exec bench/main.exe -- torture
dune exec tools/benchjson/benchjson.exe -- BENCH_torture.json
