#!/bin/sh
# End-to-end smoke test for the sync daemon (DESIGN.md §10).
#
#   1. build a small collection and four divergent client replicas
#   2. start `fsync serve` on an ephemeral TCP port
#   3. run four pulls concurrently — one of them through an
#      injected-fault link (`--faults corrupt`), which must converge
#      by retrying
#   4. verify every replica is byte-for-byte identical to the served
#      collection (including deletion of stale files)
#   5. SIGTERM the daemon and check it reports a clean shutdown
#
# Run from the repository root (make serve-smoke does); requires only
# POSIX sh + a built bin/fsync.exe.
set -eu

FSYNC=${FSYNC:-_build/default/bin/fsync.exe}
WORK=$(mktemp -d "${TMPDIR:-/tmp}/fsync-serve-smoke.XXXXXX")
DAEMON_PID=""

cleanup() {
  if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
    kill -TERM "$DAEMON_PID" 2>/dev/null || true
    wait "$DAEMON_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

fail() { echo "serve-smoke: FAIL: $1" >&2; exit 1; }

[ -x "$FSYNC" ] || fail "$FSYNC not built (run: dune build bin/fsync.exe)"

# ---- 1. collection and four divergent replicas -----------------------
mkdir -p "$WORK/server/src"
seq 1 3000 > "$WORK/server/src/numbers.txt"
seq 1 400 | sed 's/^/line /' > "$WORK/server/notes.txt"
printf 'hello fsyncd\n' > "$WORK/server/hello.txt"

for i in 1 2 3 4; do
  mkdir -p "$WORK/client$i/src"
  # numbers.txt: locally edited (a different slice dropped per client)
  sed "${i}0,${i}5d" "$WORK/server/src/numbers.txt" \
    > "$WORK/client$i/src/numbers.txt"
  # notes.txt: client 1 & 2 up to date, 3 & 4 missing it entirely
  if [ "$i" -le 2 ]; then cp "$WORK/server/notes.txt" "$WORK/client$i/"; fi
  # a stale file the server no longer has: must be deleted by --apply
  printf 'stale %s\n' "$i" > "$WORK/client$i/gone.txt"
done

# ---- 2. daemon on an ephemeral port ----------------------------------
"$FSYNC" serve "$WORK/server" --host 127.0.0.1 --port 0 --metrics \
  2> "$WORK/serve.log" &
DAEMON_PID=$!

PORT=""
for _ in $(seq 1 50); do
  PORT=$(sed -n 's/.* on 127\.0\.0\.1:\([0-9][0-9]*\)$/\1/p' \
    "$WORK/serve.log" | head -n 1)
  [ -n "$PORT" ] && break
  kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon died at startup:
$(cat "$WORK/serve.log")"
  sleep 0.1
done
[ -n "$PORT" ] || fail "daemon never reported its port"
echo "serve-smoke: daemon up on 127.0.0.1:$PORT (pid $DAEMON_PID)"

# ---- 3. four concurrent pulls, one over a faulty link ----------------
PIDS=""
for i in 1 2 3; do
  "$FSYNC" pull "127.0.0.1:$PORT" "$WORK/client$i" --apply -q \
    > "$WORK/pull$i.log" 2>&1 &
  PIDS="$PIDS $!"
done
"$FSYNC" pull "127.0.0.1:$PORT" "$WORK/client4" --apply -q \
  --faults corrupt=0.03 --seed 11 --attempts 12 \
  > "$WORK/pull4.log" 2>&1 &
PIDS="$PIDS $!"

for pid in $PIDS; do
  wait "$pid" || fail "a pull failed:
$(cat "$WORK"/pull*.log)"
done

# ---- 4. replicas must mirror the collection exactly ------------------
for i in 1 2 3 4; do
  diff -r "$WORK/server" "$WORK/client$i" >/dev/null 2>&1 \
    || fail "client$i differs from the served collection:
$(diff -r "$WORK/server" "$WORK/client$i" 2>&1 | head -5)"
done
echo "serve-smoke: 4 replicas byte-identical (incl. stale-file deletion)"

# ---- 5. clean shutdown ----------------------------------------------
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""
grep -q "shut down after" "$WORK/serve.log" \
  || fail "no clean-shutdown line in serve.log:
$(cat "$WORK/serve.log")"
COMPLETED=$(sed -n 's/.*(\([0-9][0-9]*\) completed.*/\1/p' "$WORK/serve.log")
[ "${COMPLETED:-0}" -ge 4 ] || fail "expected >=4 completed sessions, got \
'${COMPLETED:-none}'"
echo "serve-smoke: daemon shut down cleanly"

# ---- 6. store-backed variant: dedup push + warm restart --------------
# Serve with --store, pull once and push an overlapping tree (the store
# already holds the served chunks, so the push must dedup), kill the
# daemon, restart it over the same store root and pull again: the
# signature cache must warm-start from the persisted vectors.
STORE="$WORK/store"

start_store_daemon() {  # $1 = log tag; sets DAEMON_PID and PORT
  "$FSYNC" serve "$WORK/server" --host 127.0.0.1 --port 0 --store "$STORE" \
    > "$WORK/$1.out" 2> "$WORK/$1.log" &
  DAEMON_PID=$!
  PORT=""
  for _ in $(seq 1 50); do
    PORT=$(sed -n 's/.* on 127\.0\.0\.1:\([0-9][0-9]*\)$/\1/p' \
      "$WORK/$1.log" | head -n 1)
    [ -n "$PORT" ] && break
    kill -0 "$DAEMON_PID" 2>/dev/null || fail "store daemon died at startup:
$(cat "$WORK/$1.log")"
    sleep 0.1
  done
  [ -n "$PORT" ] || fail "store daemon never reported its port"
}

stop_daemon() {
  kill -TERM "$DAEMON_PID"
  wait "$DAEMON_PID" 2>/dev/null || true
  DAEMON_PID=""
}

# Two identical outdated replicas: one pull per daemon lifetime, so the
# second run repeats exactly the first run's signature lookups.
for i in 5 6; do
  mkdir -p "$WORK/client$i/src"
  sed '100,140d' "$WORK/server/src/numbers.txt" \
    > "$WORK/client$i/src/numbers.txt"
  cp "$WORK/server/notes.txt" "$WORK/client$i/"
done
# An upload tree that is mostly served content plus one new file.
mkdir -p "$WORK/pushsrc"
cp -R "$WORK/server/." "$WORK/pushsrc/"
printf 'brand new content\n' > "$WORK/pushsrc/extra.txt"

start_store_daemon serve_store1
grep -q "fsyncd: store $STORE" "$WORK/serve_store1.log" \
  || fail "daemon did not report its store"
"$FSYNC" pull "127.0.0.1:$PORT" "$WORK/client5" --apply -q \
  > "$WORK/pull5.log" 2>&1 || fail "store-backed pull failed:
$(cat "$WORK/pull5.log")"
"$FSYNC" push "127.0.0.1:$PORT" "$WORK/pushsrc" -q \
  > "$WORK/push.log" 2>&1 || fail "push failed:
$(cat "$WORK/push.log")"
PUSH_DEDUPED=$(sed -n 's/.*, \([0-9]*\) bytes deduped.*/\1/p' "$WORK/push.log")
[ "${PUSH_DEDUPED:-0}" -gt 0 ] || fail "push deduped nothing against the \
store:
$(cat "$WORK/push.log")"
stop_daemon
MISSES=$(sed -n 's/.*sig cache: [0-9]* hits, \([0-9]*\) misses.*/\1/p' \
  "$WORK/serve_store1.out")
[ "${MISSES:-0}" -gt 0 ] || fail "first run computed no signature vectors:
$(cat "$WORK/serve_store1.out")"

# Kill/restart over the same root: vectors must come back warm.
start_store_daemon serve_store2
SEEDED=$(sed -n 's/.*(\([0-9][0-9]*\) sig vectors seeded).*/\1/p' \
  "$WORK/serve_store2.log")
[ "${SEEDED:-0}" -ge "$MISSES" ] || fail "restart seeded ${SEEDED:-0} \
vectors, first run computed $MISSES"
"$FSYNC" pull "127.0.0.1:$PORT" "$WORK/client6" --apply -q \
  > "$WORK/pull6.log" 2>&1 || fail "post-restart pull failed:
$(cat "$WORK/pull6.log")"
stop_daemon
diff -r "$WORK/server" "$WORK/client6" >/dev/null 2>&1 \
  || fail "client6 differs after the warm-restart pull"
WARM_RATE=$(sed -n 's/.*warm rate \([0-9.]*\)$/\1/p' "$WORK/serve_store2.out")
awk -v r="${WARM_RATE:-0}" 'BEGIN { exit !(r >= 0.9) }' \
  || fail "warm hit rate ${WARM_RATE:-none} < 0.9 after restart:
$(cat "$WORK/serve_store2.out")"
STORE_DEDUPED=$(sed -n \
  's/.*manifests, \([0-9]*\) bytes deduped$/\1/p' "$WORK/serve_store2.out")
[ "${STORE_DEDUPED:-0}" -gt 0 ] || fail "restarted store re-ingested \
without dedup:
$(cat "$WORK/serve_store2.out")"
echo "serve-smoke: warm restart rate $WARM_RATE, $STORE_DEDUPED bytes deduped"

# ---- 7. store CLI: stats clean, fsck clean ---------------------------
"$FSYNC" store stats "$STORE" > "$WORK/store_stats.log" 2>&1 \
  || fail "store stats failed:
$(cat "$WORK/store_stats.log")"
"$FSYNC" store fsck "$STORE" > "$WORK/store_fsck.log" 2>&1 \
  || fail "store fsck found damage:
$(cat "$WORK/store_fsck.log")"
echo "serve-smoke: PASS ($(sed -n 's/^daemon: //p' "$WORK/serve.log"))"
