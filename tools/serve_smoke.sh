#!/bin/sh
# End-to-end smoke test for the sync daemon (DESIGN.md §10).
#
#   1. build a small collection and four divergent client replicas
#   2. start `fsync serve` on an ephemeral TCP port, with the admin
#      socket, the structured event log and the per-session trace
#      stream enabled (DESIGN.md §9)
#   3. run four pulls concurrently — one of them through an
#      injected-fault link (`--faults corrupt`), which must converge
#      by retrying — while a scraper polls the admin socket and must
#      observe fsync_sessions_active > 0 mid-load
#   4. verify every replica is byte-for-byte identical to the served
#      collection (including deletion of stale files), the status
#      document validates as fsyncd-status/1, and `fsync trace report`
#      joins client 4's trace with the daemon's stream
#   5. SIGTERM the daemon and check it reports a clean shutdown and a
#      complete event log
#
# Run from the repository root (make serve-smoke does); requires only
# POSIX sh + a built bin/fsync.exe.  Telemetry outputs are copied to
# SMOKE_*.jsonl / SMOKE_*.txt in the working directory so CI can
# upload them as artifacts.
set -eu

FSYNC=${FSYNC:-_build/default/bin/fsync.exe}
BENCHJSON=${BENCHJSON:-_build/default/tools/benchjson/benchjson.exe}
WORK=$(mktemp -d "${TMPDIR:-/tmp}/fsync-serve-smoke.XXXXXX")
DAEMON_PID=""

cleanup() {
  if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
    kill -TERM "$DAEMON_PID" 2>/dev/null || true
    wait "$DAEMON_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

fail() { echo "serve-smoke: FAIL: $1" >&2; exit 1; }

[ -x "$FSYNC" ] || fail "$FSYNC not built (run: dune build bin/fsync.exe)"

# ---- 1. collection and four divergent replicas -----------------------
mkdir -p "$WORK/server/src"
seq 1 3000 > "$WORK/server/src/numbers.txt"
seq 1 400 | sed 's/^/line /' > "$WORK/server/notes.txt"
printf 'hello fsyncd\n' > "$WORK/server/hello.txt"

for i in 1 2 3 4; do
  mkdir -p "$WORK/client$i/src"
  # numbers.txt: locally edited (a different slice dropped per client)
  sed "${i}0,${i}5d" "$WORK/server/src/numbers.txt" \
    > "$WORK/client$i/src/numbers.txt"
  # notes.txt: client 1 & 2 up to date, 3 & 4 missing it entirely
  if [ "$i" -le 2 ]; then cp "$WORK/server/notes.txt" "$WORK/client$i/"; fi
  # a stale file the server no longer has: must be deleted by --apply
  printf 'stale %s\n' "$i" > "$WORK/client$i/gone.txt"
done

# ---- 2. daemon on an ephemeral port, telemetry on --------------------
"$FSYNC" serve "$WORK/server" --host 127.0.0.1 --port 0 --metrics \
  --admin-port 0 --event-log "$WORK/events.jsonl" \
  --trace-json "$WORK/server_trace.jsonl" \
  2> "$WORK/serve.log" &
DAEMON_PID=$!

PORT=""
for _ in $(seq 1 50); do
  PORT=$(sed -n 's/^fsyncd: serving .* on 127\.0\.0\.1:\([0-9][0-9]*\)$/\1/p' \
    "$WORK/serve.log" | head -n 1)
  [ -n "$PORT" ] && break
  kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon died at startup:
$(cat "$WORK/serve.log")"
  sleep 0.1
done
[ -n "$PORT" ] || fail "daemon never reported its port"
ADMIN_PORT=""
for _ in $(seq 1 50); do
  ADMIN_PORT=$(sed -n 's/^fsyncd: admin on 127\.0\.0\.1:\([0-9][0-9]*\)$/\1/p' \
    "$WORK/serve.log" | head -n 1)
  [ -n "$ADMIN_PORT" ] && break
  sleep 0.1
done
[ -n "$ADMIN_PORT" ] || fail "daemon never reported its admin port"
echo "serve-smoke: daemon up on 127.0.0.1:$PORT (admin $ADMIN_PORT, \
pid $DAEMON_PID)"

# ---- 3. four concurrent pulls, one over a faulty link, scraped live --
# The scraper races the pulls: it must catch the daemon with at least
# one live session (fsync_sessions_active > 0) while they run.
(
  for _ in $(seq 1 200); do
    if "$FSYNC" admin "127.0.0.1:$ADMIN_PORT" metrics 2>/dev/null \
      | grep -q '^fsync_sessions_active [1-9]'; then
      : > "$WORK/saw_active"
      exit 0
    fi
    sleep 0.05
  done
) &
SCRAPE_PID=$!

PIDS=""
for i in 1 2 3; do
  "$FSYNC" pull "127.0.0.1:$PORT" "$WORK/client$i" --apply -q \
    > "$WORK/pull$i.log" 2>&1 &
  PIDS="$PIDS $!"
done
"$FSYNC" pull "127.0.0.1:$PORT" "$WORK/client4" --apply -q \
  --faults corrupt=0.03 --seed 11 --attempts 12 \
  --trace-json "$WORK/client4_trace.jsonl" \
  > "$WORK/pull4.log" 2>&1 &
PIDS="$PIDS $!"

for pid in $PIDS; do
  wait "$pid" || fail "a pull failed:
$(cat "$WORK"/pull*.log)"
done
wait "$SCRAPE_PID" 2>/dev/null || true
[ -f "$WORK/saw_active" ] \
  || fail "admin scrape never observed fsync_sessions_active > 0 mid-load"
echo "serve-smoke: mid-load scrape saw live sessions"

# ---- 4. replicas must mirror the collection exactly ------------------
for i in 1 2 3 4; do
  diff -r "$WORK/server" "$WORK/client$i" >/dev/null 2>&1 \
    || fail "client$i differs from the served collection:
$(diff -r "$WORK/server" "$WORK/client$i" 2>&1 | head -5)"
done
echo "serve-smoke: 4 replicas byte-identical (incl. stale-file deletion)"

# The status document must validate as fsyncd-status/1 (same strict
# reader as the bench exports), and `fsync top` must render against the
# live daemon.
"$FSYNC" admin "127.0.0.1:$ADMIN_PORT" status > "$WORK/status.json" \
  || fail "admin status request failed"
"$BENCHJSON" "$WORK/status.json" > /dev/null \
  || fail "status document failed fsyncd-status/1 validation:
$(cat "$WORK/status.json")"
"$FSYNC" top "127.0.0.1:$ADMIN_PORT" --count 1 > "$WORK/top.log" \
  || fail "fsync top failed"
grep -q "^fsyncd 127\.0\.0\.1:$ADMIN_PORT" "$WORK/top.log" \
  || fail "fsync top rendered no header:
$(cat "$WORK/top.log")"
echo "serve-smoke: status document schema-valid, top renders"

# Client 4's --trace-json and the daemon's stream must join on the
# wire-carried trace id into one merged session whose phase spans cover
# >= 95% of the session wall time on both roles.
"$FSYNC" trace report "$WORK/client4_trace.jsonl" \
  "$WORK/server_trace.jsonl" > "$WORK/trace_report.txt" \
  || fail "trace report failed:
$(cat "$WORK/trace_report.txt")"
awk '
  /roles: client, server/ { merged = 1; next }
  merged == 1 && /phase coverage/ {
    cov = $NF; sub(/%/, "", cov)
    if (cov + 0 >= 95.0) ok = 1
    merged = 0
  }
  END { exit !ok }
' "$WORK/trace_report.txt" \
  || fail "no merged client+server trace with >=95% phase coverage:
$(cat "$WORK/trace_report.txt")"
echo "serve-smoke: client+server traces joined ($(grep -c '^trace ' \
  "$WORK/trace_report.txt") session(s) reported)"

# ---- 5. clean shutdown ----------------------------------------------
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""
grep -q "shut down after" "$WORK/serve.log" \
  || fail "no clean-shutdown line in serve.log:
$(cat "$WORK/serve.log")"
COMPLETED=$(sed -n 's/.*(\([0-9][0-9]*\) completed.*/\1/p' "$WORK/serve.log")
[ "${COMPLETED:-0}" -ge 4 ] || fail "expected >=4 completed sessions, got \
'${COMPLETED:-none}'"
# The event log must carry the whole lifecycle, one JSON object per line.
for ev in session_start session_end daemon_stop; do
  grep -q "\"event\":\"$ev\"" "$WORK/events.jsonl" \
    || fail "event log missing $ev:
$(cat "$WORK/events.jsonl")"
done
STARTS=$(grep -c '"event":"session_start"' "$WORK/events.jsonl")
ENDS=$(grep -c '"event":"session_end"' "$WORK/events.jsonl")
[ "$STARTS" -ge 4 ] || fail "event log has $STARTS session_start events, \
expected >= 4"
[ "$STARTS" -eq "$ENDS" ] || fail "event log unbalanced: $STARTS starts, \
$ENDS ends"
echo "serve-smoke: daemon shut down cleanly, event log complete \
($STARTS sessions)"

# Keep the telemetry outputs where CI can pick them up as artifacts.
cp "$WORK/events.jsonl" SMOKE_events.jsonl
cp "$WORK/server_trace.jsonl" SMOKE_server_trace.jsonl
cp "$WORK/client4_trace.jsonl" SMOKE_client4_trace.jsonl
cp "$WORK/trace_report.txt" SMOKE_trace_report.txt
cp "$WORK/status.json" SMOKE_status.json

# ---- 6. store-backed variant: dedup push + warm restart --------------
# Serve with --store, pull once and push an overlapping tree (the store
# already holds the served chunks, so the push must dedup), kill the
# daemon, restart it over the same store root and pull again: the
# signature cache must warm-start from the persisted vectors.
STORE="$WORK/store"

start_store_daemon() {  # $1 = log tag; sets DAEMON_PID and PORT
  "$FSYNC" serve "$WORK/server" --host 127.0.0.1 --port 0 --store "$STORE" \
    > "$WORK/$1.out" 2> "$WORK/$1.log" &
  DAEMON_PID=$!
  PORT=""
  for _ in $(seq 1 50); do
    PORT=$(sed -n 's/.* on 127\.0\.0\.1:\([0-9][0-9]*\)$/\1/p' \
      "$WORK/$1.log" | head -n 1)
    [ -n "$PORT" ] && break
    kill -0 "$DAEMON_PID" 2>/dev/null || fail "store daemon died at startup:
$(cat "$WORK/$1.log")"
    sleep 0.1
  done
  [ -n "$PORT" ] || fail "store daemon never reported its port"
}

stop_daemon() {
  kill -TERM "$DAEMON_PID"
  wait "$DAEMON_PID" 2>/dev/null || true
  DAEMON_PID=""
}

# Two identical outdated replicas: one pull per daemon lifetime, so the
# second run repeats exactly the first run's signature lookups.
for i in 5 6; do
  mkdir -p "$WORK/client$i/src"
  sed '100,140d' "$WORK/server/src/numbers.txt" \
    > "$WORK/client$i/src/numbers.txt"
  cp "$WORK/server/notes.txt" "$WORK/client$i/"
done
# An upload tree that is mostly served content plus one new file.
mkdir -p "$WORK/pushsrc"
cp -R "$WORK/server/." "$WORK/pushsrc/"
printf 'brand new content\n' > "$WORK/pushsrc/extra.txt"

start_store_daemon serve_store1
grep -q "fsyncd: store $STORE" "$WORK/serve_store1.log" \
  || fail "daemon did not report its store"
"$FSYNC" pull "127.0.0.1:$PORT" "$WORK/client5" --apply -q \
  > "$WORK/pull5.log" 2>&1 || fail "store-backed pull failed:
$(cat "$WORK/pull5.log")"
"$FSYNC" push "127.0.0.1:$PORT" "$WORK/pushsrc" -q \
  > "$WORK/push.log" 2>&1 || fail "push failed:
$(cat "$WORK/push.log")"
PUSH_DEDUPED=$(sed -n 's/.*, \([0-9]*\) bytes deduped.*/\1/p' "$WORK/push.log")
[ "${PUSH_DEDUPED:-0}" -gt 0 ] || fail "push deduped nothing against the \
store:
$(cat "$WORK/push.log")"
stop_daemon
MISSES=$(sed -n 's/.*sig cache: [0-9]* hits, \([0-9]*\) misses.*/\1/p' \
  "$WORK/serve_store1.out")
[ "${MISSES:-0}" -gt 0 ] || fail "first run computed no signature vectors:
$(cat "$WORK/serve_store1.out")"

# Kill/restart over the same root: vectors must come back warm.
start_store_daemon serve_store2
SEEDED=$(sed -n 's/.*(\([0-9][0-9]*\) sig vectors seeded).*/\1/p' \
  "$WORK/serve_store2.log")
[ "${SEEDED:-0}" -ge "$MISSES" ] || fail "restart seeded ${SEEDED:-0} \
vectors, first run computed $MISSES"
"$FSYNC" pull "127.0.0.1:$PORT" "$WORK/client6" --apply -q \
  > "$WORK/pull6.log" 2>&1 || fail "post-restart pull failed:
$(cat "$WORK/pull6.log")"
stop_daemon
diff -r "$WORK/server" "$WORK/client6" >/dev/null 2>&1 \
  || fail "client6 differs after the warm-restart pull"
WARM_RATE=$(sed -n 's/.*warm rate \([0-9.]*\)$/\1/p' "$WORK/serve_store2.out")
awk -v r="${WARM_RATE:-0}" 'BEGIN { exit !(r >= 0.9) }' \
  || fail "warm hit rate ${WARM_RATE:-none} < 0.9 after restart:
$(cat "$WORK/serve_store2.out")"
STORE_DEDUPED=$(sed -n \
  's/.*manifests, \([0-9]*\) bytes deduped$/\1/p' "$WORK/serve_store2.out")
[ "${STORE_DEDUPED:-0}" -gt 0 ] || fail "restarted store re-ingested \
without dedup:
$(cat "$WORK/serve_store2.out")"
echo "serve-smoke: warm restart rate $WARM_RATE, $STORE_DEDUPED bytes deduped"

# ---- 7. store CLI: stats clean, fsck clean ---------------------------
"$FSYNC" store stats "$STORE" > "$WORK/store_stats.log" 2>&1 \
  || fail "store stats failed:
$(cat "$WORK/store_stats.log")"
"$FSYNC" store fsck "$STORE" > "$WORK/store_fsck.log" 2>&1 \
  || fail "store fsck found damage:
$(cat "$WORK/store_fsck.log")"
echo "serve-smoke: PASS ($(sed -n 's/^daemon: //p' "$WORK/serve.log"))"
