#!/bin/sh
# End-to-end smoke test for the swarm layer (DESIGN.md §13).
#
#   1. build three divergent replicas: two sharing a base but holding a
#      concurrent edit of the same path (a genuine conflict), one empty
#   2. fork three `fsync swarm serve` peers on ephemeral TCP ports
#   3. a fourth replica runs `fsync swarm join` against all three until
#      every exchange short-circuits — gossip is bidirectional, so the
#      joiner both collects and relays every peer's updates
#   4. assert all four replicas are byte-identical (vector tables
#      included), the concurrent edit surfaced as a
#      `.fsync-conflict.<peer>` sibling with both versions preserved,
#      and a plain rev-2 `fsync pull` against a swarm port retrieves
#      the converged collection (one port, both dialects)
#   5. SIGTERM the daemons and check each reports a clean shutdown with
#      at least one completed gossip session
#
# Run from the repository root (make swarm-smoke does); requires only
# POSIX sh + a built bin/fsync.exe.
set -eu

FSYNC=${FSYNC:-_build/default/bin/fsync.exe}
WORK=$(mktemp -d "${TMPDIR:-/tmp}/fsync-swarm-smoke.XXXXXX")
PIDS=""

cleanup() {
  for pid in $PIDS; do
    if kill -0 "$pid" 2>/dev/null; then
      kill -TERM "$pid" 2>/dev/null || true
      wait "$pid" 2>/dev/null || true
    fi
  done
  rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

fail() { echo "swarm-smoke: FAIL: $1" >&2; exit 1; }

[ -x "$FSYNC" ] || fail "$FSYNC not built (run: dune build bin/fsync.exe)"

# ---- 1. three divergent replicas -------------------------------------
mkdir -p "$WORK/p1/src" "$WORK/p2/src" "$WORK/p3" "$WORK/joiner"
seq 1 500 > "$WORK/p1/src/common.txt"
cp "$WORK/p1/src/common.txt" "$WORK/p2/src/common.txt"
printf 'only on p1\n' > "$WORK/p1/p1-only.txt"
printf 'only on p2\n' > "$WORK/p2/p2-only.txt"
printf 'clash from p1\n' > "$WORK/p1/clash.txt"
printf 'clash from p2\n' > "$WORK/p2/clash.txt"

# ---- 2. three forked swarm peers on ephemeral ports ------------------
for i in 1 2 3; do
  "$FSYNC" swarm serve "$WORK/p$i" --id "p$i" --host 127.0.0.1 --port 0 \
    > "$WORK/serve$i.log" 2>&1 &
  pid=$!
  PIDS="$PIDS $pid"
  eval "PID$i=$pid"
done

port_of() {  # $1 = log file
  sed -n 's/^swarm peer .* on 127\.0\.0\.1:\([0-9][0-9]*\) .*$/\1/p' "$1" \
    | head -n 1
}
for i in 1 2 3; do
  PORT=""
  for _ in $(seq 1 50); do
    PORT=$(port_of "$WORK/serve$i.log")
    [ -n "$PORT" ] && break
    eval "pid=\$PID$i"
    kill -0 "$pid" 2>/dev/null || fail "peer p$i died at startup:
$(cat "$WORK/serve$i.log")"
    sleep 0.1
  done
  [ -n "$PORT" ] || fail "peer p$i never reported its port"
  eval "PORT$i=$PORT"
done
echo "swarm-smoke: 3 peers up on ports $PORT1 $PORT2 $PORT3"

# ---- 3. join until every exchange short-circuits ---------------------
"$FSYNC" swarm join "$WORK/joiner" --id joiner \
  --peer "127.0.0.1:$PORT1" --peer "127.0.0.1:$PORT2" \
  --peer "127.0.0.1:$PORT3" --rounds 6 > "$WORK/join.log" 2>&1 \
  || fail "swarm join failed:
$(cat "$WORK/join.log")"
grep -q "converged with every peer" "$WORK/join.log" \
  || fail "join did not converge within 6 rounds:
$(cat "$WORK/join.log")"
ROUNDS=$(sed -n 's/^root [0-9a-f]* after \([0-9][0-9]*\) round.*/\1/p' \
  "$WORK/join.log")
echo "swarm-smoke: converged with every peer after $ROUNDS rounds"

# ---- 4a. all four replicas byte-identical ----------------------------
for i in 1 2 3; do
  diff -r "$WORK/joiner" "$WORK/p$i" >/dev/null 2>&1 \
    || fail "p$i differs from the joiner after convergence:
$(diff -r "$WORK/joiner" "$WORK/p$i" 2>&1 | head -5)"
done
echo "swarm-smoke: 4 replicas byte-identical (vector tables included)"

# ---- 4b. the concurrent edit surfaced, nothing was lost --------------
ls "$WORK/joiner"/clash.txt.fsync-conflict.* >/dev/null 2>&1 \
  || fail "no conflict sibling for clash.txt:
$(ls "$WORK/joiner")"
grep -rq "clash from p1" "$WORK/joiner"/clash.txt* \
  || fail "p1's clash version was lost"
grep -rq "clash from p2" "$WORK/joiner"/clash.txt* \
  || fail "p2's clash version was lost"
"$FSYNC" swarm status "$WORK/joiner" --id joiner > "$WORK/status.log" \
  || fail "swarm status failed"
grep -q "1 unresolved conflict file" "$WORK/status.log" \
  || fail "status does not report the conflict:
$(cat "$WORK/status.log")"
echo "swarm-smoke: conflict surfaced as a sibling, both versions preserved"

# ---- 4b'. quorum read-repair of a single path ------------------------
mkdir -p "$WORK/fresh"
"$FSYNC" swarm repair "$WORK/fresh" --id fresh \
  --peer "127.0.0.1:$PORT1" --peer "127.0.0.1:$PORT2" \
  --peer "127.0.0.1:$PORT3" p1-only.txt > "$WORK/repair.log" 2>&1 \
  || fail "swarm repair failed:
$(cat "$WORK/repair.log")"
grep -q "quorum: 3/3 peers answered" "$WORK/repair.log" \
  || fail "repair reached no quorum:
$(cat "$WORK/repair.log")"
cmp -s "$WORK/fresh/p1-only.txt" "$WORK/p1/p1-only.txt" \
  || fail "repair did not deliver p1-only.txt"
echo "swarm-smoke: read-repair pulled the quorum copy (3/3)"

# ---- 4c. rev-2 interop: a plain pull from a swarm port ---------------
mkdir -p "$WORK/plain"
"$FSYNC" pull "127.0.0.1:$PORT1" "$WORK/plain" --apply -q \
  > "$WORK/pull.log" 2>&1 || fail "plain pull from a swarm port failed:
$(cat "$WORK/pull.log")"
diff -r -x .fsync-swarm "$WORK/p1" "$WORK/plain" >/dev/null 2>&1 \
  || fail "plain pull differs from the served replica:
$(diff -r -x .fsync-swarm "$WORK/p1" "$WORK/plain" 2>&1 | head -5)"
echo "swarm-smoke: plain rev-2 pull served from the swarm port"

# ---- 5. clean shutdown ----------------------------------------------
for i in 1 2 3; do
  eval "pid=\$PID$i"
  kill -TERM "$pid"
  wait "$pid" 2>/dev/null || true
done
PIDS=""
for i in 1 2 3; do
  grep -q "^swarm peer done:" "$WORK/serve$i.log" \
    || fail "peer p$i did not shut down cleanly:
$(cat "$WORK/serve$i.log")"
  GOSSIP=$(sed -n 's/^swarm peer done: [0-9]* accepted (\([0-9]*\) gossip.*/\1/p' \
    "$WORK/serve$i.log")
  [ "${GOSSIP:-0}" -ge 1 ] \
    || fail "peer p$i completed no gossip sessions:
$(cat "$WORK/serve$i.log")"
done
echo "swarm-smoke: PASS (3 peers, clean shutdown)"
