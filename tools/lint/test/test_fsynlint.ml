(* fsynlint's own tests: every rule against fixture files with known
   violations, rule scoping across the mirrored repo layout, attribute
   suppression, and the baseline ratchet's three failure classes. *)

module Lint = Fsynlint_lib.Lint

(* The fixture tree mirrors the repository layout; scope resolution is
   path-prefix based, so the suite chdirs to the fixture root once. *)
let () =
  if Sys.file_exists "fixtures" then Sys.chdir "fixtures"

let findings_of file = Lint.scan_file file

let by_rule rule fs =
  List.filter (fun (f : Lint.finding) -> Lint.rule_equal f.rule rule) fs

let lines fs = List.map (fun (f : Lint.finding) -> f.line) fs

let check_lines what rule file expected =
  let fs = by_rule rule (findings_of file) in
  Alcotest.(check (list int)) what expected (lines fs)

(* ---- rule R1: polymorphic comparison ---- *)

let test_r1_flags_poly_compare () =
  check_lines "five R1 findings at known lines" Lint.R1 "lib/core/r1_bad.ml"
    [ 4; 6; 8; 10; 12 ]

let test_r1_literal_exemption () =
  (* The fixture's literal comparisons (= 0, <> '\n', = [], = true, = ())
     sit on lines 15-19 and none of them may be flagged. *)
  let fs = by_rule Lint.R1 (findings_of "lib/core/r1_bad.ml") in
  Alcotest.(check bool)
    "no finding past line 12" true
    (List.for_all (fun l -> l <= 12) (lines fs))

let test_r1_not_applied_outside_wire_libs () =
  check_lines "lib/workload is exempt from R1" Lint.R1
    "lib/workload/poly_ok.ml" []

(* ---- rule R2: crash points ---- *)

let test_r2_flags_crash_points () =
  check_lines "five R2 findings at known lines" Lint.R2 "lib/core/r2_bad.ml"
    [ 4; 5; 6; 9; 11 ]

let test_r2_applies_to_all_lib () =
  check_lines "R2 applies outside the wire-sensitive set" Lint.R2
    "lib/workload/poly_ok.ml" [ 8 ]

(* ---- rule R3: console output ---- *)

let test_r3_flags_prints () =
  check_lines "two R3 findings" Lint.R3 "lib/core/r3_bad.ml" [ 4; 6 ]

let test_r3_suppression_attribute () =
  (* Line 9's print_string carries [@fsynlint.allow "r3"]: no finding. *)
  let fs = by_rule Lint.R3 (findings_of "lib/core/r3_bad.ml") in
  Alcotest.(check bool)
    "annotated sink not flagged" true
    (not (List.mem 9 (lines fs)))

(* ---- rule R4: missing interface ---- *)

let test_r4_missing_mli () =
  check_lines "module without .mli flagged" Lint.R4 "lib/core/no_mli.ml" [ 1 ]

let test_r4_present_mli () =
  check_lines "module with .mli clean" Lint.R4 "lib/core/clean.ml" []

(* ---- rule R5: codec symmetry ---- *)

let test_r5_encoder_without_decoder () =
  check_lines "write_/put_ without read_/get_ flagged" Lint.R5
    "lib/core/r5_bad.ml" [ 4; 6 ]

let test_r5_symmetric_pair_clean () =
  check_lines "put_count/get_count pair clean" Lint.R5 "lib/core/clean.ml" []

let test_r5_not_applied_outside_wire_libs () =
  check_lines "write-only helper fine outside wire libs" Lint.R5
    "lib/workload/poly_ok.ml" []

(* ---- scoping ---- *)

let test_clean_file_has_no_findings () =
  Alcotest.(check int) "clean module" 0
    (List.length (findings_of "lib/core/clean.ml"))

let test_bin_is_rule_free () =
  (* main_ok.ml uses failwith, print_endline and compare: all fine under
     bin/, where files are only parse-checked. *)
  Alcotest.(check int) "bin/ has no applicable rules" 0
    (List.length (findings_of "bin/main_ok.ml"))

let test_scan_discovers_recursively () =
  let fs = Lint.scan [ "lib"; "bin" ] in
  (* 5 R1 + (5+1) R2 + 2 R3 + 1 R4 + 2 R5 = 16 across the tree. *)
  Alcotest.(check int) "total findings across the fixture tree" 16
    (List.length fs)

(* ---- the baseline ratchet ---- *)

let scan_fixtures () = Lint.scan [ "lib"; "bin" ]

let test_ratchet_clean_when_baseline_matches () =
  let fs = scan_fixtures () in
  let baseline = Lint.counts fs in
  Alcotest.(check bool)
    "scan == baseline is clean" true
    (Lint.clean (Lint.check ~baseline fs))

let test_ratchet_fails_on_new_violation () =
  (* A fixture introducing a new violation must fail the check: simulate
     by recording a baseline that predates r2_bad.ml's List.hd. *)
  let fs = scan_fixtures () in
  let baseline =
    Lint.KeyMap.update
      (Lint.R2, "lib/core/r2_bad.ml")
      (function Some n -> Some (n - 1) | None -> None)
      (Lint.counts fs)
  in
  let v = Lint.check ~baseline fs in
  Alcotest.(check bool) "not clean" false (Lint.clean v);
  match v.new_violations with
  | [ (r, file, offending) ] ->
      Alcotest.(check string) "rule" "R2" (Lint.rule_name r);
      Alcotest.(check string) "file" "lib/core/r2_bad.ml" file;
      Alcotest.(check int) "all findings for the pair reported" 5
        (List.length offending)
  | _ -> Alcotest.fail "expected exactly one new-violation entry"

let test_ratchet_fails_on_unknown_file () =
  (* A violating file absent from the baseline is also a failure. *)
  let fs = scan_fixtures () in
  let baseline =
    Lint.KeyMap.remove (Lint.R4, "lib/core/no_mli.ml") (Lint.counts fs)
  in
  let v = Lint.check ~baseline fs in
  Alcotest.(check bool) "not clean" false (Lint.clean v);
  Alcotest.(check int) "one new-violation entry" 1
    (List.length v.new_violations)

let test_ratchet_flags_stale_baseline () =
  (* Paid-down debt must force a baseline refresh (one-way ratchet). *)
  let fs = scan_fixtures () in
  let baseline =
    Lint.KeyMap.update
      (Lint.R1, "lib/core/r1_bad.ml")
      (function Some n -> Some (n + 2) | None -> Some 2)
      (Lint.counts fs)
  in
  let v = Lint.check ~baseline fs in
  Alcotest.(check bool) "not clean" false (Lint.clean v);
  match v.stale with
  | [ (r, file, recorded, current) ] ->
      Alcotest.(check string) "rule" "R1" (Lint.rule_name r);
      Alcotest.(check string) "file" "lib/core/r1_bad.ml" file;
      Alcotest.(check int) "recorded" (current + 2) recorded
  | _ -> Alcotest.fail "expected exactly one stale entry"

let test_ratchet_growth_detection () =
  let fs = scan_fixtures () in
  let baseline =
    Lint.KeyMap.update
      (Lint.R2, "lib/core/r2_bad.ml")
      (function Some n -> Some (n - 1) | None -> None)
      (Lint.counts fs)
  in
  (match Lint.growth ~baseline fs with
  | [ (r, file) ] ->
      Alcotest.(check string) "rule" "R2" (Lint.rule_name r);
      Alcotest.(check string) "file" "lib/core/r2_bad.ml" file
  | _ -> Alcotest.fail "expected one grown key");
  Alcotest.(check int) "no growth against an exact baseline" 0
    (List.length (Lint.growth ~baseline:(Lint.counts fs) fs))

let test_baseline_roundtrip () =
  let fs = scan_fixtures () in
  let counts = Lint.counts fs in
  let file = Filename.temp_file "fsynlint" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      let oc = open_out file in
      output_string oc (Lint.render_baseline counts);
      close_out oc;
      let back = Lint.read_baseline file in
      Alcotest.(check bool)
        "serialized baseline reads back identically" true
        (Lint.KeyMap.equal Int.equal counts back))

let test_baseline_missing_file_is_empty () =
  Alcotest.(check int) "missing baseline = no recorded debt" 0
    (Lint.KeyMap.cardinal (Lint.read_baseline "does-not-exist.txt"))

let test_baseline_rejects_garbage () =
  let file = Filename.temp_file "fsynlint" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      let oc = open_out file in
      output_string oc "R9 nonsense notanumber\n";
      close_out oc;
      match Lint.read_baseline file with
      | _ -> Alcotest.fail "garbage baseline accepted"
      | exception Lint.Parse_error _ -> ())

(* ---- rule metadata ---- *)

let test_rule_names_roundtrip () =
  List.iter
    (fun r ->
      match Lint.rule_of_name (Lint.rule_name r) with
      | Some r' ->
          Alcotest.(check string) "roundtrip" (Lint.rule_name r)
            (Lint.rule_name r')
      | None -> Alcotest.fail "rule name did not parse back")
    Lint.all_rules;
  Alcotest.(check bool) "unknown rule rejected" true
    (Option.is_none (Lint.rule_of_name "r9"))

let test_scope_predicates () =
  Alcotest.(check bool) "core is wire-sensitive" true
    (Lint.is_wire_sensitive "lib/core/wire.ml");
  Alcotest.(check bool) "workload is not" false
    (Lint.is_wire_sensitive "lib/workload/datasets.ml");
  Alcotest.(check bool) "bin has no rules" true
    (Lint.rules_for "bin/fsync.ml" = []);
  (* The chunk store is a lib like any other: crash-point and
     console-output rules apply without a baseline entry. *)
  Alcotest.(check bool) "store gets R2" true
    (List.mem Lint.R2 (Lint.rules_for "lib/store/store.ml"));
  Alcotest.(check bool) "store gets R3" true
    (List.mem Lint.R3 (Lint.rules_for "lib/store/sig_persist.ml"))

let () =
  Alcotest.run "fsynlint"
    [
      ( "rules",
        [
          Alcotest.test_case "R1 flags poly compare" `Quick
            test_r1_flags_poly_compare;
          Alcotest.test_case "R1 literal exemption" `Quick
            test_r1_literal_exemption;
          Alcotest.test_case "R1 scoped to wire libs" `Quick
            test_r1_not_applied_outside_wire_libs;
          Alcotest.test_case "R2 flags crash points" `Quick
            test_r2_flags_crash_points;
          Alcotest.test_case "R2 applies to all lib" `Quick
            test_r2_applies_to_all_lib;
          Alcotest.test_case "R3 flags prints" `Quick test_r3_flags_prints;
          Alcotest.test_case "R3 suppression attribute" `Quick
            test_r3_suppression_attribute;
          Alcotest.test_case "R4 missing mli" `Quick test_r4_missing_mli;
          Alcotest.test_case "R4 present mli" `Quick test_r4_present_mli;
          Alcotest.test_case "R5 encoder without decoder" `Quick
            test_r5_encoder_without_decoder;
          Alcotest.test_case "R5 symmetric pair" `Quick
            test_r5_symmetric_pair_clean;
          Alcotest.test_case "R5 scoped to wire libs" `Quick
            test_r5_not_applied_outside_wire_libs;
        ] );
      ( "scoping",
        [
          Alcotest.test_case "clean file" `Quick test_clean_file_has_no_findings;
          Alcotest.test_case "bin is rule-free" `Quick test_bin_is_rule_free;
          Alcotest.test_case "recursive discovery" `Quick
            test_scan_discovers_recursively;
          Alcotest.test_case "scope predicates" `Quick test_scope_predicates;
          Alcotest.test_case "rule names roundtrip" `Quick
            test_rule_names_roundtrip;
        ] );
      ( "ratchet",
        [
          Alcotest.test_case "clean when baseline matches" `Quick
            test_ratchet_clean_when_baseline_matches;
          Alcotest.test_case "fails on new violation" `Quick
            test_ratchet_fails_on_new_violation;
          Alcotest.test_case "fails on unknown file" `Quick
            test_ratchet_fails_on_unknown_file;
          Alcotest.test_case "flags stale baseline" `Quick
            test_ratchet_flags_stale_baseline;
          Alcotest.test_case "growth detection" `Quick
            test_ratchet_growth_detection;
          Alcotest.test_case "baseline roundtrip" `Quick
            test_baseline_roundtrip;
          Alcotest.test_case "missing baseline is empty" `Quick
            test_baseline_missing_file_is_empty;
          Alcotest.test_case "rejects garbage baseline" `Quick
            test_baseline_rejects_garbage;
        ] );
    ]
