(* fsynlint's own tests: every rule against fixture files with known
   violations, rule scoping across the mirrored repo layout, attribute
   suppression, and the baseline ratchet's three failure classes. *)

module Lint = Fsynlint_lib.Lint

(* The fixture tree mirrors the repository layout; scope resolution is
   path-prefix based, so the suite chdirs to the fixture root once. *)
let () =
  if Sys.file_exists "fixtures" then Sys.chdir "fixtures"

let findings_of file = Lint.scan_file file

let by_rule rule fs =
  List.filter (fun (f : Lint.finding) -> Lint.rule_equal f.rule rule) fs

let lines fs = List.map (fun (f : Lint.finding) -> f.line) fs

let check_lines what rule file expected =
  let fs = by_rule rule (findings_of file) in
  Alcotest.(check (list int)) what expected (lines fs)

(* ---- rule R1: polymorphic comparison ---- *)

let test_r1_flags_poly_compare () =
  check_lines "five R1 findings at known lines" Lint.R1 "lib/core/r1_bad.ml"
    [ 4; 6; 8; 10; 12 ]

let test_r1_literal_exemption () =
  (* The fixture's literal comparisons (= 0, <> '\n', = [], = true, = ())
     sit on lines 15-19 and none of them may be flagged. *)
  let fs = by_rule Lint.R1 (findings_of "lib/core/r1_bad.ml") in
  Alcotest.(check bool)
    "no finding past line 12" true
    (List.for_all (fun l -> l <= 12) (lines fs))

let test_r1_not_applied_outside_wire_libs () =
  check_lines "lib/workload is exempt from R1" Lint.R1
    "lib/workload/poly_ok.ml" []

(* ---- rule R2: crash points ---- *)

let test_r2_flags_crash_points () =
  check_lines "five R2 findings at known lines" Lint.R2 "lib/core/r2_bad.ml"
    [ 4; 5; 6; 9; 11 ]

let test_r2_applies_to_all_lib () =
  check_lines "R2 applies outside the wire-sensitive set" Lint.R2
    "lib/workload/poly_ok.ml" [ 8 ]

(* ---- rule R3: console output ---- *)

let test_r3_flags_prints () =
  check_lines "two R3 findings" Lint.R3 "lib/core/r3_bad.ml" [ 4; 6 ]

let test_r3_suppression_attribute () =
  (* Line 9's print_string carries [@fsynlint.allow "r3"]: no finding. *)
  let fs = by_rule Lint.R3 (findings_of "lib/core/r3_bad.ml") in
  Alcotest.(check bool)
    "annotated sink not flagged" true
    (not (List.mem 9 (lines fs)))

(* ---- rule R6: resource leaks (dataflow) ---- *)

let test_r6_flags_leaks () =
  (* Line 7: the PR-5 peer-gone shape (error arm of a try drops the
     accepted fd); line 18: never closed; line 24: one branch only. *)
  check_lines "three R6 findings at known lines" Lint.R6 "lib/fdio/r6_leak.ml"
    [ 7; 18; 24 ]

let test_r6_true_negatives () =
  (* Fun.protect ~finally, close-on-every-path (including the handler),
     and ownership hand-off are all releases. *)
  check_lines "protected/handed-off fds are clean" Lint.R6
    "lib/fdio/r6_ok.ml" []

let test_r6_allow_scopes_nested_lets () =
  (* The [@@fsynlint.allow "r6"] binding suppresses both of its nested
     acquisitions; the sibling binding is still checked. *)
  check_lines "only the unannotated sibling flagged" Lint.R6
    "lib/fdio/r6_allow.ml" [ 11 ]

(* ---- rule R7: tainted wire lengths (dataflow) ---- *)

let test_r7_flags_unguarded_lengths () =
  (* Line 6: the 'S'-decode shape — multiply first, guard after; the
     guard on line 7 does not launder it.  Line 12: unguarded alloc. *)
  check_lines "two R7 findings at known lines" Lint.R7 "lib/decode/r7_bad.ml"
    [ 6; 12 ]

let test_r7_true_negatives () =
  check_lines "guarded and clamped lengths are clean" Lint.R7
    "lib/decode/r7_ok.ml" []

let test_r7_guard_after_sink_does_not_rescue () =
  (* The multiply on line 6 must be flagged even though line 7 guards
     the product: evaluation order is the contract. *)
  let fs = by_rule Lint.R7 (findings_of "lib/decode/r7_bad.ml") in
  Alcotest.(check bool) "line 6 flagged" true (List.mem 6 (lines fs))

(* ---- rule R8: event-loop blocking (dataflow) ---- *)

let test_r8_flags_blocking_calls () =
  (* sleepf, raw Unix.read, negative select timeout. *)
  check_lines "three R8 findings at known lines" Lint.R8
    "lib/server/daemon.ml" [ 4; 5; 6 ]

let test_r8_conn_raw_io_sanctioned () =
  check_lines "conn.ml raw fd I/O is sanctioned" Lint.R8 "lib/server/conn.ml"
    []

let test_r8_allow_attribute () =
  (* daemon.ml line 9 carries [@fsynlint.allow "r8"]. *)
  let fs = by_rule Lint.R8 (findings_of "lib/server/daemon.ml") in
  Alcotest.(check bool) "annotated sleep not flagged" true
    (not (List.mem 9 (lines fs)))

(* ---- rule R9: Io-mediated syscalls (dataflow) ---- *)

let test_r9_flags_raw_mutations () =
  (* rename, remove, open_out_bin, openfile with write flags. *)
  check_lines "four R9 findings at known lines" Lint.R9 "lib/store/r9_bad.ml"
    [ 4; 5; 8; 13 ]

let test_r9_io_boundary_exempt () =
  check_lines "lib/store/io.ml is the sanctioned boundary" Lint.R9
    "lib/store/io.ml" []

let test_r9_covers_collection () =
  check_lines "lib/collection is in scope" Lint.R9 "lib/collection/meta.ml"
    [ 3 ]

(* ---- rule R4: missing interface ---- *)

let test_r4_missing_mli () =
  check_lines "module without .mli flagged" Lint.R4 "lib/core/no_mli.ml" [ 1 ]

let test_r4_present_mli () =
  check_lines "module with .mli clean" Lint.R4 "lib/core/clean.ml" []

(* ---- rule R5: codec symmetry ---- *)

let test_r5_encoder_without_decoder () =
  check_lines "write_/put_ without read_/get_ flagged" Lint.R5
    "lib/core/r5_bad.ml" [ 4; 6 ]

let test_r5_symmetric_pair_clean () =
  check_lines "put_count/get_count pair clean" Lint.R5 "lib/core/clean.ml" []

let test_r5_not_applied_outside_wire_libs () =
  check_lines "write-only helper fine outside wire libs" Lint.R5
    "lib/workload/poly_ok.ml" []

(* ---- scoping ---- *)

let test_clean_file_has_no_findings () =
  Alcotest.(check int) "clean module" 0
    (List.length (findings_of "lib/core/clean.ml"))

let test_bin_console_exempt () =
  (* Console output is bin/'s job: R3 never applies there, but R1/R2
     do.  main_ok.ml prints and stays clean; main_bad.ml crashes and
     compares polymorphically and is flagged. *)
  Alcotest.(check int) "clean bin file has no findings" 0
    (List.length (findings_of "bin/main_ok.ml"));
  check_lines "R2 applies in bin" Lint.R2 "bin/main_bad.ml" [ 5 ];
  check_lines "R1 applies in bin" Lint.R1 "bin/main_bad.ml" [ 6 ];
  check_lines "R3 exempt in bin" Lint.R3 "bin/main_bad.ml" []

let test_scan_discovers_recursively () =
  let fs = Lint.scan [ "lib"; "bin" ] in
  (* 6 R1 + (5+1+1) R2 + 2 R3 + 1 R4 + 2 R5
     + 4 R6 + 2 R7 + 3 R8 + 5 R9 = 32 across the tree. *)
  Alcotest.(check int) "total findings across the fixture tree" 32
    (List.length fs)

(* ---- the baseline ratchet ---- *)

let scan_fixtures () = Lint.scan [ "lib"; "bin" ]

let test_ratchet_clean_when_baseline_matches () =
  let fs = scan_fixtures () in
  let baseline = Lint.counts fs in
  Alcotest.(check bool)
    "scan == baseline is clean" true
    (Lint.clean (Lint.check ~baseline fs))

let test_ratchet_fails_on_new_violation () =
  (* A fixture introducing a new violation must fail the check: simulate
     by recording a baseline that predates r2_bad.ml's List.hd. *)
  let fs = scan_fixtures () in
  let baseline =
    Lint.KeyMap.update
      (Lint.R2, "lib/core/r2_bad.ml")
      (function Some n -> Some (n - 1) | None -> None)
      (Lint.counts fs)
  in
  let v = Lint.check ~baseline fs in
  Alcotest.(check bool) "not clean" false (Lint.clean v);
  match v.new_violations with
  | [ (r, file, offending) ] ->
      Alcotest.(check string) "rule" "R2" (Lint.rule_name r);
      Alcotest.(check string) "file" "lib/core/r2_bad.ml" file;
      Alcotest.(check int) "all findings for the pair reported" 5
        (List.length offending)
  | _ -> Alcotest.fail "expected exactly one new-violation entry"

let test_ratchet_fails_on_unknown_file () =
  (* A violating file absent from the baseline is also a failure. *)
  let fs = scan_fixtures () in
  let baseline =
    Lint.KeyMap.remove (Lint.R4, "lib/core/no_mli.ml") (Lint.counts fs)
  in
  let v = Lint.check ~baseline fs in
  Alcotest.(check bool) "not clean" false (Lint.clean v);
  Alcotest.(check int) "one new-violation entry" 1
    (List.length v.new_violations)

let test_ratchet_flags_stale_baseline () =
  (* Paid-down debt must force a baseline refresh (one-way ratchet). *)
  let fs = scan_fixtures () in
  let baseline =
    Lint.KeyMap.update
      (Lint.R1, "lib/core/r1_bad.ml")
      (function Some n -> Some (n + 2) | None -> Some 2)
      (Lint.counts fs)
  in
  let v = Lint.check ~baseline fs in
  Alcotest.(check bool) "not clean" false (Lint.clean v);
  match v.stale with
  | [ (r, file, recorded, current) ] ->
      Alcotest.(check string) "rule" "R1" (Lint.rule_name r);
      Alcotest.(check string) "file" "lib/core/r1_bad.ml" file;
      Alcotest.(check int) "recorded" (current + 2) recorded
  | _ -> Alcotest.fail "expected exactly one stale entry"

let test_ratchet_growth_detection () =
  let fs = scan_fixtures () in
  let baseline =
    Lint.KeyMap.update
      (Lint.R2, "lib/core/r2_bad.ml")
      (function Some n -> Some (n - 1) | None -> None)
      (Lint.counts fs)
  in
  (match Lint.growth ~baseline fs with
  | [ (r, file) ] ->
      Alcotest.(check string) "rule" "R2" (Lint.rule_name r);
      Alcotest.(check string) "file" "lib/core/r2_bad.ml" file
  | _ -> Alcotest.fail "expected one grown key");
  Alcotest.(check int) "no growth against an exact baseline" 0
    (List.length (Lint.growth ~baseline:(Lint.counts fs) fs))

let test_baseline_roundtrip () =
  let fs = scan_fixtures () in
  let counts = Lint.counts fs in
  let file = Filename.temp_file "fsynlint" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      let oc = open_out file in
      output_string oc (Lint.render_baseline counts);
      close_out oc;
      let back = Lint.read_baseline file in
      Alcotest.(check bool)
        "serialized baseline reads back identically" true
        (Lint.KeyMap.equal Int.equal counts back))

let test_baseline_missing_file_is_empty () =
  Alcotest.(check int) "missing baseline = no recorded debt" 0
    (Lint.KeyMap.cardinal (Lint.read_baseline "does-not-exist.txt"))

let test_ratchet_flags_removed_entry () =
  (* A baseline entry for a file with no findings at all (fixed or
     deleted) is stale debt and must force a regeneration. *)
  let fs = scan_fixtures () in
  let baseline =
    Lint.KeyMap.add (Lint.R6, "lib/fdio/gone.ml") 3 (Lint.counts fs)
  in
  let v = Lint.check ~baseline fs in
  Alcotest.(check bool) "not clean" false (Lint.clean v);
  match v.stale with
  | [ (r, file, recorded, current) ] ->
      Alcotest.(check string) "rule" "R6" (Lint.rule_name r);
      Alcotest.(check string) "file" "lib/fdio/gone.ml" file;
      Alcotest.(check int) "recorded" 3 recorded;
      Alcotest.(check int) "current" 0 current
  | _ -> Alcotest.fail "expected exactly one stale entry"

(* ---- JSON report ---- *)

let test_json_roundtrip () =
  let fs = scan_fixtures () in
  let back = Lint.findings_of_json (Lint.json_report fs) in
  Alcotest.(check int) "same cardinality" (List.length fs) (List.length back);
  List.iter2
    (fun (a : Lint.finding) (b : Lint.finding) ->
      Alcotest.(check int) "ordering preserved" 0 (Lint.finding_compare a b);
      Alcotest.(check string) "msg preserved" a.msg b.msg)
    fs back

let test_json_with_verdict () =
  (* The CI artifact carries the delta too; the findings array must
     still round-trip when a verdict is attached. *)
  let fs = scan_fixtures () in
  let baseline =
    Lint.KeyMap.update
      (Lint.R6, "lib/fdio/r6_leak.ml")
      (function Some n -> Some (n - 1) | None -> None)
      (Lint.counts fs)
  in
  let verdict = Lint.check ~baseline fs in
  let doc = Lint.json_report ~verdict fs in
  Alcotest.(check int) "findings recoverable" (List.length fs)
    (List.length (Lint.findings_of_json doc))

let test_json_rejects_unknown_schema () =
  match Lint.findings_of_json "{\"schema\":\"other/9\",\"findings\":[]}" with
  | _ -> Alcotest.fail "unknown schema accepted"
  | exception Lint.Parse_error _ -> ()

let test_baseline_rejects_garbage () =
  let file = Filename.temp_file "fsynlint" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      let oc = open_out file in
      output_string oc "R9 nonsense notanumber\n";
      close_out oc;
      match Lint.read_baseline file with
      | _ -> Alcotest.fail "garbage baseline accepted"
      | exception Lint.Parse_error _ -> ())

(* ---- rule metadata ---- *)

let test_rule_names_roundtrip () =
  List.iter
    (fun r ->
      match Lint.rule_of_name (Lint.rule_name r) with
      | Some r' ->
          Alcotest.(check string) "roundtrip" (Lint.rule_name r)
            (Lint.rule_name r')
      | None -> Alcotest.fail "rule name did not parse back")
    Lint.all_rules;
  Alcotest.(check bool) "unknown rule rejected" true
    (Option.is_none (Lint.rule_of_name "r10"))

let test_scope_predicates () =
  let has r path = List.exists (Lint.rule_equal r) (Lint.rules_for path) in
  Alcotest.(check bool) "core is wire-sensitive" true
    (Lint.is_wire_sensitive "lib/core/wire.ml");
  Alcotest.(check bool) "workload is not" false
    (Lint.is_wire_sensitive "lib/workload/datasets.ml");
  (* bin/ and bench/ carry R1/R2 and the R6/R7 dataflow rules, but
     console I/O is their job: no R3. *)
  Alcotest.(check bool) "bin gets R1" true (has Lint.R1 "bin/fsync.ml");
  Alcotest.(check bool) "bin gets R2" true (has Lint.R2 "bin/fsync.ml");
  Alcotest.(check bool) "bin gets R6" true (has Lint.R6 "bin/fsync.ml");
  Alcotest.(check bool) "bench gets R7" true (has Lint.R7 "bench/main.ml");
  Alcotest.(check bool) "bin is R3-exempt" false (has Lint.R3 "bin/fsync.ml");
  (* The chunk store is a lib like any other: crash-point and
     console-output rules apply without a baseline entry. *)
  Alcotest.(check bool) "store gets R2" true
    (has Lint.R2 "lib/store/store.ml");
  Alcotest.(check bool) "store gets R3" true
    (has Lint.R3 "lib/store/sig_persist.ml");
  (* R8 is scoped to the event loop; R9 to store/collection minus the
     sanctioned io.ml boundary. *)
  Alcotest.(check bool) "daemon gets R8" true
    (has Lint.R8 "lib/server/daemon.ml");
  Alcotest.(check bool) "conn gets R8" true (has Lint.R8 "lib/server/conn.ml");
  Alcotest.(check bool) "pull is outside R8" false
    (has Lint.R8 "lib/server/pull.ml");
  Alcotest.(check bool) "store gets R9" true
    (has Lint.R9 "lib/store/store.ml");
  Alcotest.(check bool) "collection gets R9" true
    (has Lint.R9 "lib/collection/snapshot.ml");
  Alcotest.(check bool) "io.ml is the exempt boundary" false
    (has Lint.R9 "lib/store/io.ml")

let () =
  Alcotest.run "fsynlint"
    [
      ( "rules",
        [
          Alcotest.test_case "R1 flags poly compare" `Quick
            test_r1_flags_poly_compare;
          Alcotest.test_case "R1 literal exemption" `Quick
            test_r1_literal_exemption;
          Alcotest.test_case "R1 scoped to wire libs" `Quick
            test_r1_not_applied_outside_wire_libs;
          Alcotest.test_case "R2 flags crash points" `Quick
            test_r2_flags_crash_points;
          Alcotest.test_case "R2 applies to all lib" `Quick
            test_r2_applies_to_all_lib;
          Alcotest.test_case "R3 flags prints" `Quick test_r3_flags_prints;
          Alcotest.test_case "R3 suppression attribute" `Quick
            test_r3_suppression_attribute;
          Alcotest.test_case "R4 missing mli" `Quick test_r4_missing_mli;
          Alcotest.test_case "R4 present mli" `Quick test_r4_present_mli;
          Alcotest.test_case "R5 encoder without decoder" `Quick
            test_r5_encoder_without_decoder;
          Alcotest.test_case "R5 symmetric pair" `Quick
            test_r5_symmetric_pair_clean;
          Alcotest.test_case "R5 scoped to wire libs" `Quick
            test_r5_not_applied_outside_wire_libs;
        ] );
      ( "dataflow",
        [
          Alcotest.test_case "R6 flags leaks" `Quick test_r6_flags_leaks;
          Alcotest.test_case "R6 true negatives" `Quick test_r6_true_negatives;
          Alcotest.test_case "R6 allow scopes nested lets" `Quick
            test_r6_allow_scopes_nested_lets;
          Alcotest.test_case "R7 flags unguarded lengths" `Quick
            test_r7_flags_unguarded_lengths;
          Alcotest.test_case "R7 true negatives" `Quick test_r7_true_negatives;
          Alcotest.test_case "R7 guard after sink" `Quick
            test_r7_guard_after_sink_does_not_rescue;
          Alcotest.test_case "R8 flags blocking calls" `Quick
            test_r8_flags_blocking_calls;
          Alcotest.test_case "R8 conn sanctioned" `Quick
            test_r8_conn_raw_io_sanctioned;
          Alcotest.test_case "R8 allow attribute" `Quick
            test_r8_allow_attribute;
          Alcotest.test_case "R9 flags raw mutations" `Quick
            test_r9_flags_raw_mutations;
          Alcotest.test_case "R9 io boundary exempt" `Quick
            test_r9_io_boundary_exempt;
          Alcotest.test_case "R9 covers collection" `Quick
            test_r9_covers_collection;
        ] );
      ( "scoping",
        [
          Alcotest.test_case "clean file" `Quick test_clean_file_has_no_findings;
          Alcotest.test_case "bin console exempt" `Quick
            test_bin_console_exempt;
          Alcotest.test_case "recursive discovery" `Quick
            test_scan_discovers_recursively;
          Alcotest.test_case "scope predicates" `Quick test_scope_predicates;
          Alcotest.test_case "rule names roundtrip" `Quick
            test_rule_names_roundtrip;
        ] );
      ( "ratchet",
        [
          Alcotest.test_case "clean when baseline matches" `Quick
            test_ratchet_clean_when_baseline_matches;
          Alcotest.test_case "fails on new violation" `Quick
            test_ratchet_fails_on_new_violation;
          Alcotest.test_case "fails on unknown file" `Quick
            test_ratchet_fails_on_unknown_file;
          Alcotest.test_case "flags stale baseline" `Quick
            test_ratchet_flags_stale_baseline;
          Alcotest.test_case "growth detection" `Quick
            test_ratchet_growth_detection;
          Alcotest.test_case "flags removed entry" `Quick
            test_ratchet_flags_removed_entry;
          Alcotest.test_case "baseline roundtrip" `Quick
            test_baseline_roundtrip;
          Alcotest.test_case "missing baseline is empty" `Quick
            test_baseline_missing_file_is_empty;
          Alcotest.test_case "rejects garbage baseline" `Quick
            test_baseline_rejects_garbage;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "with verdict" `Quick test_json_with_verdict;
          Alcotest.test_case "rejects unknown schema" `Quick
            test_json_rejects_unknown_schema;
        ] );
    ]
