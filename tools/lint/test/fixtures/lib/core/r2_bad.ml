(* R2 fixture: untyped crash points.  Exactly five violations. *)

let decode = function
  | "" -> failwith "empty" (* line 4 *)
  | "x" -> invalid_arg "x" (* line 5 *)
  | "y" -> assert false (* line 6 *)
  | s -> s

let first xs = List.hd xs (* line 9 *)

let force o = Option.get o (* line 11 *)
