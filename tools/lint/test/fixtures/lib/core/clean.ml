(* A compliant wire-sensitive module: zero findings. *)

let put_count buf n = Buffer.add_char buf (Char.chr (n land 0xff))

let get_count s = if String.length s = 0 then None else Some (Char.code s.[0])

let equal_digest a b = String.equal a b

let order xs = List.sort String.compare xs

let first = function [] -> None | x :: _ -> Some x
