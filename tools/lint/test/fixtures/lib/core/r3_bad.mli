val report : int -> unit
val warn : string -> unit
val sanctioned : string -> unit
