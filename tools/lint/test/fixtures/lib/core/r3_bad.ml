(* R3 fixture: console output from library code.  Two violations plus a
   suppressed sanctioned sink. *)

let report x = Printf.printf "%d\n" x (* line 4 *)

let warn s = prerr_endline s (* line 6 *)

(* Suppression: an annotated binding is the reviewed escape hatch. *)
let sanctioned s = (print_string s [@fsynlint.allow "r3"])
