(* R5 fixture: encoder/decoder symmetry.  [write_header] and [put_len]
   lack decoders (two violations); [write_body]/[read_body] pair up. *)

let write_header buf n = Buffer.add_string buf (string_of_int n) (* line 4 *)

let put_len buf n = Buffer.add_char buf (Char.chr n) (* line 6 *)

let write_body buf s = Buffer.add_string buf s

let read_body s = s
