(* R1 fixture: polymorphic comparisons in a wire-sensitive library.
   Exactly five violations, at the lines asserted by the test suite. *)

let digests_equal a b = a = b (* line 4: poly `=` on strings *)

let tokens_differ a b = a <> b (* line 6: poly `<>` *)

let order xs = List.sort compare xs (* line 8: poly `compare` as a value *)

let rank a b = compare a b (* line 10: applied poly `compare` *)

let bucket x = Hashtbl.hash x mod 16 (* line 12: representation hash *)

(* Exempt: comparisons against immediate literals are specialized. *)
let is_zero n = n = 0
let not_newline c = c <> '\n'
let is_empty l = l = []
let truthy b = b = true
let unit_eq u = u = ()
