val digests_equal : string -> string -> bool
val tokens_differ : string -> string -> bool
val order : int list -> int list
val rank : int -> int -> int
val bucket : string -> int
val is_zero : int -> bool
val not_newline : char -> bool
val is_empty : int list -> bool
val truthy : bool -> bool
val unit_eq : unit -> bool
