val put_count : Buffer.t -> int -> unit
val get_count : string -> int option
val equal_digest : string -> string -> bool
val order : string list -> string list
val first : 'a list -> 'a option
