val decode : string -> string
val first : int list -> int
val force : int option -> int
