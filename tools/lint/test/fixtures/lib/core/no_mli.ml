(* R4 fixture: a module without an interface.  One violation. *)

let exposed_internal = 42
