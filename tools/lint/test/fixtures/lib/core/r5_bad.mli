val write_header : Buffer.t -> int -> unit
val put_len : Buffer.t -> int -> unit
val write_body : Buffer.t -> string -> unit
val read_body : string -> string
