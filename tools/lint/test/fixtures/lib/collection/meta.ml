(* lib/collection is inside R9's Io-mediation scope too. *)

let ensure_dir path = Sys.mkdir path 0o755
