val ensure_dir : string -> unit
