(* R7 true negatives: guarded and clamped lengths. *)

let read_string s pos limit =
  let len, pos = Varint.read s ~pos in
  if len < 0 || len > limit then None
  else Some (Bytes.create len, pos)

let read_clamped s pos =
  let len, _ = Varint.read s ~pos in
  let len = min len 4096 in
  Bytes.create len
