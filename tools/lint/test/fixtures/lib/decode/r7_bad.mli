val entry_bytes : string -> int -> int option
val read_payload : string -> int -> bytes * int
