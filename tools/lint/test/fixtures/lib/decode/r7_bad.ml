(* R7: wire-derived lengths must be bounds-checked before use. *)

(* The PR-5 'S'-decode shape: multiply before the guard. *)
let entry_bytes s pos =
  let count, _ = Varint.read s ~pos in
  let total = count * 21 in
  if total > String.length s then None else Some total

(* Allocation with no guard at all. *)
let read_payload s pos =
  let len, pos = Varint.read s ~pos in
  (Bytes.create len, pos)
