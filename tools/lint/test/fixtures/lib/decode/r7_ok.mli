val read_string : string -> int -> int -> (bytes * int) option
val read_clamped : string -> int -> bytes
