val sort_anything : 'a list -> 'a list
val write_only : Buffer.t -> string -> unit
val boom : unit -> 'a
