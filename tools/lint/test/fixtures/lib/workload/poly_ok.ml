(* Outside the wire-sensitive set R1/R5 do not apply, but R2/R3/R4 do:
   this file's only finding is its [failwith] (R2). *)

let sort_anything xs = List.sort compare xs

let write_only buf s = Buffer.add_string buf s

let boom () = failwith "boom" (* line 8: R2 *)
