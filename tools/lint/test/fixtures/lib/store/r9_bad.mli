val swap : string -> string -> unit
val scribble : string -> unit
val touch : string -> unit
