(* R9: mutating syscalls in store/collection must go through Io. *)

let swap src dst =
  Unix.rename src dst;
  Sys.remove src

let scribble path =
  let oc = open_out_bin path in
  output_string oc "x";
  close_out oc

let touch path =
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
  Unix.close fd
