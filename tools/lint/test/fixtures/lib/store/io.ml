(* The sanctioned raw-syscall boundary: R9 exempts lib/store/io.ml. *)

let rename src dst = Unix.rename src dst
let remove path = Sys.remove path
