val rename : string -> string -> unit
val remove : string -> unit
