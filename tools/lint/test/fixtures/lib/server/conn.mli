val pump : Unix.file_descr -> bytes -> int
