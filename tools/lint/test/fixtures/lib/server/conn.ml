(* conn.ml is the sanctioned non-blocking fd layer: raw reads and
   writes here are exempt from R8's raw-io check. *)

let pump fd buf =
  let n = Unix.read fd buf 0 (Bytes.length buf) in
  let m = Unix.write fd buf 0 n in
  n + m
