val pump : Unix.file_descr -> bytes -> int
val nap : unit -> unit
