(* R8: nothing in the event loop may block. *)

let pump fd buf =
  Unix.sleepf 0.01;
  let n = Unix.read fd buf 0 (Bytes.length buf) in
  let _ = Unix.select [ fd ] [] [] (-1.0) in
  n

let nap () = (Unix.sleepf 0.1 [@fsynlint.allow "r8"])
