(* R6: acquired fds/channels must be released on every path. *)

let payload = Bytes.create 8

(* The PR-5 peer-gone shape: the error arm drops the accepted fd. *)
let serve_once listener =
  match Unix.accept listener with
  | fd, _ -> (
      try
        let n = Unix.write fd payload 0 (Bytes.length payload) in
        ignore n;
        Unix.close fd
      with Unix.Unix_error (Unix.EPIPE, _, _) -> ())
  | exception Unix.Unix_error (Unix.EAGAIN, _, _) -> ()

(* Never closed at all. *)
let probe path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  let buf = Bytes.create 16 in
  Unix.read fd buf 0 16

(* Closed on one branch only. *)
let maybe_close cond path =
  let ic = open_in_bin path in
  if cond then close_in ic else ()
