val sanctioned : string -> int
val unsanctioned : string -> int
