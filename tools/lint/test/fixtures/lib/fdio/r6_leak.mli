val payload : bytes
val serve_once : Unix.file_descr -> unit
val probe : string -> int
val maybe_close : bool -> string -> unit
