(* A binding-level allow scopes over its whole body, nested lets
   included; the sibling binding below stays checked. *)

let sanctioned path =
  let outer = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  let inner = Unix.dup outer in
  Unix.read inner (Bytes.create 4) 0 4
[@@fsynlint.allow "r6"]

let unsanctioned path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  let buf = Bytes.create 4 in
  Unix.read fd buf 0 4
