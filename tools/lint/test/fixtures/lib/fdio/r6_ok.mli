val read_all : string -> string
val connect : Unix.sockaddr -> Unix.file_descr
val stash : Unix.file_descr option ref -> string -> unit
