(* R6 true negatives: protected, every-path, and handed-off fds. *)

let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let connect addr =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  try
    Unix.connect fd addr;
    fd
  with e ->
    Unix.close fd;
    raise e

let stash slot path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  slot := Some fd
