(* Console output is bin/'s job (no R3), but R1/R2 still apply. *)

let () =
  print_endline "starting";
  if Array.length Sys.argv < 2 then failwith "usage: main_bad ARG";
  exit (compare (int_of_string Sys.argv.(1)) 3)
