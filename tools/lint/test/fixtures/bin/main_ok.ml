(* Binaries may crash on bad CLI args and talk to the console: no rules
   apply under bin/, the file is only parse-checked. *)

let () =
  if Array.length Sys.argv < 2 then failwith "usage: main_ok ARG";
  print_endline Sys.argv.(1);
  exit (compare 1 2 + 1)
