(* Binaries may talk to the console (R3 does not apply under bin/),
   but crash-point, comparison and dataflow hygiene still do. *)

let () =
  if Array.length Sys.argv < 2 then begin
    print_endline "usage: main_ok ARG";
    exit 2
  end;
  print_endline Sys.argv.(1)
