(* Intraprocedural dataflow for rules R6-R9.

   The engine walks each top-level binding's expression tree in
   evaluation order carrying a per-function environment:

   - R6 tracks {e acquired resources}: a value bound from an fd/channel
     constructor must be released (closed, protected by a finally, or
     handed off to an owner) on every control-flow path from its
     acquisition — see {!released} for the path logic.
   - R7 tracks {e tainted integers}: a value decoded from the wire stays
     tainted until a bounds guard (comparison / min / max) mentions it;
     an allocation or multiplication reached while still tainted is a
     finding.  Because the walk is in evaluation order, a guard placed
     {e after} the sink does not launder it — exactly the PR-5 `'S'`
     overflow shape.
   - R8 and R9 consult the {e call context} (which file this is,
     whether raw fd I/O is sanctioned here) to flag blocking calls in
     the event loop and un-mediated mutating syscalls in the crash-safe
     store paths.

   Everything is approximate in the direction the repo can live with:
   ownership hand-off (passing the resource to any unknown function,
   storing it in a structure or closure, returning it) discharges R6,
   and any comparison counts as an R7 guard.  False negatives are
   possible; false positives have the per-rule [@fsynlint.allow]
   escape hatch.

   Portability note: matching is restricted to Parsetree constructors
   whose shape is identical on 4.14 and 5.2 — in particular the
   function/fun nodes (which changed in 5.2) are never destructured;
   closures are handled through the generic [mentions] capture check
   and the default-iterator traversal. *)

open Parsetree

(* Which of R6-R9 apply here, and the file-specific call context. *)
type ctx = {
  file : string;
  enabled : Rule.t -> bool;
  allows : attributes -> Rule.t list;
      (* [@fsynlint.allow "rN ..."] payloads, resolved by the caller *)
  decode_module : bool;
      (* unqualified get_*/read_* calls are taint sources here (the
         file is one of the Msg/Wire/Frame/Meta_wire codec modules) *)
  conn_io_ok : bool;
      (* raw nonblocking Unix.read/write sanctioned (Conn's buffers) *)
}

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

(* ------------------------------------------------------------------ *)
(* Ident classification                                                *)
(* ------------------------------------------------------------------ *)

let lident_path (id : Longident.t) =
  (* "Unix.openfile", "Fun.protect", "read" ... — flattened with dots,
     enough to classify; functor applications never appear in these
     call sites. *)
  String.concat "." (Longident.flatten id)

(* R6: calls that mint a resource the caller must release. *)
let acquisition = function
  | "Unix.openfile" | "Unix.socket" | "Unix.accept" | "Unix.opendir"
  | "Unix.socketpair" | "Unix.dup" | "open_in" | "open_in_bin"
  | "open_in_gen" | "open_out" | "open_out_bin" | "open_out_gen"
  | "Stdlib.open_in" | "Stdlib.open_in_bin" | "Stdlib.open_out"
  | "Stdlib.open_out_bin" ->
      true
  | _ -> false

(* R6: calls that release a resource passed to them. *)
let release = function
  | "Unix.close" | "Unix.closedir" | "close_in" | "close_in_noerr"
  | "close_out" | "close_out_noerr" | "Stdlib.close_in"
  | "Stdlib.close_in_noerr" | "Stdlib.close_out" | "Stdlib.close_out_noerr" ->
      true
  | _ -> false

(* R6: calls that merely use a resource — neither a release nor an
   ownership hand-off.  Anything not listed here or in [release] is
   assumed to take ownership (Conn.create, Fd_transport.of_fd, a record
   field, ...), which discharges the acquirer. *)
let operation = function
  | "Unix.read" | "Unix.write" | "Unix.write_substring" | "Unix.single_write"
  | "Unix.send" | "Unix.recv" | "Unix.send_substring" | "Unix.setsockopt"
  | "Unix.set_nonblock" | "Unix.clear_nonblock" | "Unix.bind" | "Unix.listen"
  | "Unix.connect" | "Unix.getsockname" | "Unix.getpeername" | "Unix.select"
  | "Unix.fsync" | "Unix.lseek" | "Unix.ftruncate" | "Unix.readdir"
  | "Unix.rewinddir" | "Unix.set_close_on_exec" | "Unix.getsockopt"
  | "input" | "really_input" | "really_input_string" | "input_line"
  | "input_char" | "input_byte" | "in_channel_length" | "seek_in" | "pos_in"
  | "set_binary_mode_in" | "output" | "output_string" | "output_bytes"
  | "output_char" | "output_byte" | "flush" | "seek_out" | "pos_out"
  | "out_channel_length" | "set_binary_mode_out" | "ignore" ->
      true
  | _ -> false

(* R7 sinks: the declared size reaches an allocator. *)
let allocator = function
  | "Bytes.create" | "Bytes.make" | "Bytes.init" | "String.make"
  | "String.init" | "Array.make" | "Array.init" | "Array.create_float"
  | "List.init" ->
      true
  | _ -> false

(* R7 guards: a comparison or clamp mentioning the tainted value.  Any
   comparison counts — the rule enforces that {e some} bound is checked
   before the value is trusted, not which bound. *)
let comparison = function
  | "=" | "<>" | "<" | ">" | "<=" | ">=" | "==" | "!=" | "compare" | "min"
  | "max" | "Int.equal" | "Int.compare" | "Int.min" | "Int.max" ->
      true
  | _ -> false

(* R7 sources: wire readers returning attacker-controlled integers.
   Qualified forms work anywhere; unqualified get_*/read_* only inside
   the codec modules themselves (where the readers are local). *)
let qualified_source path =
  match String.rindex_opt path '.' with
  | None -> false
  | Some i ->
      let m = String.sub path 0 i in
      let f = String.sub path (i + 1) (String.length path - i - 1) in
      let known_module =
        match m with
        | "Varint" | "Fsync_util.Varint" | "Msg" | "Fsync_server.Msg"
        | "Wire" | "Fsync_core.Wire" | "Frame" | "Fsync_net.Frame"
        | "Meta_wire" | "Fsync_collection.Meta_wire" ->
            true
        | _ -> false
      in
      known_module
      && (String.equal f "read" || String.equal f "read_signed"
         || starts_with ~prefix:"get_" f
         || starts_with ~prefix:"read_" f)

let taint_source ctx path =
  qualified_source path
  || ctx.decode_module
     && (starts_with ~prefix:"get_" path
        || starts_with ~prefix:"read_" path)

(* R8: calls that block the event loop outright. *)
let blocking = function
  | "Unix.sleep" | "Unix.sleepf" | "Thread.delay" | "Unix.system"
  | "Sys.command" | "Unix.wait" | "Unix.waitpid" | "Unix.gethostbyname"
  | "Unix.getaddrinfo" ->
      true
  | _ -> false

(* R8: raw fd I/O — blocking unless the fd is under Conn's non-blocking
   discipline, which only conn.ml itself is trusted to maintain. *)
let raw_fd_io = function
  | "Unix.read" | "Unix.write" | "Unix.write_substring" | "Unix.single_write"
  | "Unix.recv" | "Unix.send" | "Unix.send_substring" ->
      true
  | _ -> false

(* R9: mutating filesystem entry points that bypass Fsync_store.Io. *)
let raw_mutation = function
  | "Unix.rename" | "Unix.unlink" | "Unix.mkdir" | "Unix.rmdir"
  | "Unix.fsync" | "Unix.truncate" | "Unix.ftruncate" | "Unix.link"
  | "Unix.symlink" | "Unix.chmod" | "Sys.rename" | "Sys.remove" | "Sys.mkdir"
  | "Sys.rmdir" | "open_out" | "open_out_bin" | "open_out_gen"
  | "Stdlib.open_out" | "Stdlib.open_out_bin" ->
      true
  | _ -> false

let write_flag = function
  | "O_WRONLY" | "O_RDWR" | "O_CREAT" | "O_TRUNC" | "O_APPEND" -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Pattern / expression helpers                                        *)
(* ------------------------------------------------------------------ *)

let rec pattern_vars (p : pattern) =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> [ txt ]
  | Ppat_alias (inner, { txt; _ }) -> txt :: pattern_vars inner
  | Ppat_tuple ps -> List.concat_map pattern_vars ps
  | Ppat_constraint (inner, _) -> pattern_vars inner
  | Ppat_construct (_, Some (_, inner)) -> pattern_vars inner
  | Ppat_record (fields, _) ->
      List.concat_map (fun (_, p) -> pattern_vars p) fields
  | Ppat_or (a, b) -> pattern_vars a @ pattern_vars b
  | _ -> []

(* The wire readers return either the value itself or a
   (value, next_pos) pair; only the value component is a length. *)
let taint_vars_of_pattern (p : pattern) =
  match p.ppat_desc with
  | Ppat_tuple (first :: _) -> pattern_vars first
  | _ -> pattern_vars p

let head_ident (e : expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (lident_path txt)
  | _ -> None

(* Does [v] occur (as an ident) anywhere inside [e]?  Shadowing is
   ignored — an over-approximation that errs towards "the resource was
   handed off" / "the taint spread". *)
let mentions v e =
  let found = ref false in
  let super = Ast_iterator.default_iterator in
  let expr it (x : expression) =
    (match x.pexp_desc with
    | Pexp_ident { txt = Longident.Lident n; _ } when String.equal n v ->
        found := true
    | _ -> ());
    super.expr it x
  in
  let it = { super with expr } in
  it.expr it e;
  !found

let constructs_write_flag e =
  let found = ref false in
  let super = Ast_iterator.default_iterator in
  let expr it (x : expression) =
    (match x.pexp_desc with
    | Pexp_construct ({ txt; _ }, _) -> (
        match List.rev (Longident.flatten txt) with
        | last :: _ when write_flag last -> found := true
        | _ -> ())
    | _ -> ());
    super.expr it x
  in
  let it = { super with expr } in
  it.expr it e;
  !found

let is_bare_ident (e : expression) =
  match e.pexp_desc with Pexp_ident _ -> true | _ -> false

(* Does [e] contain a [Fun.protect] call whose arguments mention [v]?
   Ownership handed to Fun.protect survives exceptions, so a [try]
   around it needs no release in its handlers. *)
let protected v e =
  let found = ref false in
  let super = Ast_iterator.default_iterator in
  let expr it (x : expression) =
    (match x.pexp_desc with
    | Pexp_apply (f, args) -> (
        match head_ident f with
        | Some "Fun.protect" ->
            if List.exists (fun (_, a) -> mentions v a) args then found := true
        | _ -> ())
    | _ -> ());
    super.expr it x
  in
  let it = { super with expr } in
  it.expr it e;
  !found

(* ------------------------------------------------------------------ *)
(* R6: every-path release analysis                                     *)
(* ------------------------------------------------------------------ *)

(* [released v e]: does every terminating path through [e] either close
   [v], hand its ownership off, or keep it reachable by an owner?

   The path logic, briefly:
   - a sequence releases if either half does;
   - both arms of an if / all arms of a match must release (a one-armed
     [if] releases only via its condition);
   - [try]/[match ... with exception] arms must {e each} release — an
     error arm that drops the value is precisely the PR-5 fd leak;
   - passing [v] to an unknown function (Fun.protect included),
     returning it, or storing it in any constructed value or closure is
     a hand-off: the new owner closes it;
   - an [operation] on [v] (read/write/bind/...) is use, not hand-off. *)
let rec released v (e : expression) =
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident n; _ } ->
      String.equal n v (* returned to the caller *)
  | Pexp_apply (f, args) -> released_apply v f args
  | Pexp_let (_, vbs, body) ->
      List.exists (fun vb -> released v vb.pvb_expr) vbs
      || (not
            (List.exists
               (fun vb -> List.mem v (pattern_vars vb.pvb_pat))
               vbs)
         && released v body)
  | Pexp_sequence (a, b) -> released v a || released v b
  | Pexp_ifthenelse (c, t, Some e') ->
      released v c || (released v t && released v e')
  | Pexp_ifthenelse (c, _, None) -> released v c
  | Pexp_match (scrut, cases) ->
      released v scrut
      || (match cases with
         | [] -> false
         | _ :: _ ->
             List.for_all
               (fun c ->
                 (not (List.mem v (pattern_vars c.pc_lhs)))
                 && released v c.pc_rhs)
               cases)
  | Pexp_try (body, cases) ->
      (* The body can raise at any point {e before} its release, so a
         release inside the body does not cover the exception path:
         every handler must also release (or the body must have handed
         ownership to Fun.protect, whose ~finally survives the raise).
         A handler that drops the value is the PR-5 peer-gone leak. *)
      protected v body
      || released v body
         && List.for_all
              (fun c ->
                (not (List.mem v (pattern_vars c.pc_lhs)))
                && released v c.pc_rhs)
              cases
  | Pexp_construct (_, Some arg) | Pexp_variant (_, Some arg) ->
      mentions v arg || released v arg
  | Pexp_tuple es | Pexp_array es ->
      List.exists (fun x -> mentions v x || released v x) es
  | Pexp_record (fields, base) ->
      List.exists (fun (_, x) -> mentions v x || released v x) fields
      || (match base with Some b -> released v b | None -> false)
  | Pexp_setfield (r, _, x) -> mentions v x || released v r || released v x
  | Pexp_field (r, _) -> released v r
  | Pexp_constraint (x, _) | Pexp_coerce (x, _, _) | Pexp_assert x
  | Pexp_lazy x | Pexp_open (_, x) | Pexp_letmodule (_, _, x)
  | Pexp_letexception (_, x) | Pexp_newtype (_, x) ->
      released v x
  | Pexp_while (c, _) -> released v c (* the body may run zero times *)
  | Pexp_for (_, lo, hi, _, _) -> released v lo || released v hi
  | _ ->
      (* Function nodes land here (their shape changed across compiler
         versions): a closure capturing [v] is a hand-off. *)
      mentions v e && not (is_bare_ident e)

and released_apply v f args =
  let arg_is_v (_, (a : expression)) =
    match a.pexp_desc with
    | Pexp_ident { txt = Longident.Lident n; _ } -> String.equal n v
    | _ -> false
  in
  let arg_exprs = List.map snd args in
  (* A bare [v] argument is a use or a hand-off depending on the
     callee; it is never "released by being evaluated", so exclude it
     from the recursive check. *)
  let any_arg_releases () =
    List.exists
      (fun (a : expression) -> (not (is_bare_ident a)) && released v a)
      arg_exprs
  in
  match head_ident f with
  | Some p when release p -> List.exists arg_is_v args || any_arg_releases ()
  | Some p when operation p -> any_arg_releases ()
  | Some ("raise" | "raise_notrace") ->
      List.exists (fun a -> mentions v a) arg_exprs
  | Some _ | None ->
      (* Unknown callee (Fun.protect, Conn.create, ...): passing [v],
         even inside a closure or structure, hands ownership off. *)
      List.exists (fun a -> mentions v a) arg_exprs || any_arg_releases ()

(* ------------------------------------------------------------------ *)
(* The walk                                                            *)
(* ------------------------------------------------------------------ *)

type state = {
  ctx : ctx;
  mutable findings : Rule.finding list;
  mutable suppressed : Rule.t list;
  tainted : (string, unit) Hashtbl.t;
}

let add st rule (loc : Location.t) msg =
  if st.ctx.enabled rule && not (List.exists (Rule.equal rule) st.suppressed)
  then
    st.findings <-
      Rule.finding_of_loc rule ~file:st.ctx.file loc msg :: st.findings

let with_allows st attrs k =
  match st.ctx.allows attrs with
  | [] -> k ()
  | allows ->
      let saved = st.suppressed in
      st.suppressed <- allows @ saved;
      Fun.protect ~finally:(fun () -> st.suppressed <- saved) k

let is_tainted st v = Hashtbl.mem st.tainted v
let untaint st v = Hashtbl.remove st.tainted v
let taint st v = Hashtbl.replace st.tainted v ()

let tainted_ident st (e : expression) =
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident n; _ } when is_tainted st n -> Some n
  | _ -> None

(* A composite expression counts as tainted when any currently-tainted
   variable occurs in it ([count + 1], [n * width], ...). *)
let expr_tainted st e =
  match tainted_ident st e with
  | Some v -> Some v
  | None ->
      Hashtbl.fold
        (fun v () acc ->
          match acc with
          | Some _ -> acc
          | None -> if mentions v e then Some v else None)
        st.tainted None

(* R6 entry: [pat] was just bound to the result of an acquisition at
   [loc]; every bound variable must be released within [scope]. *)
let check_acquisition st ~what ~(loc : Location.t) pat scope =
  if st.ctx.enabled Rule.R6 then begin
    match pattern_vars pat with
    | [] ->
        add st Rule.R6 loc
          (Printf.sprintf
             "`%s` result is discarded — the fd/channel can never be closed"
             what)
    | vars ->
        List.iter
          (fun v ->
            if not (released v scope) then
              add st Rule.R6 loc
                (Printf.sprintf
                   "`%s` may leak `%s`: close it on every path (including \
                    error branches) or wrap the use in Fun.protect ~finally"
                   what v))
          vars
  end

let rec go st (e : expression) =
  with_allows st e.pexp_attributes @@ fun () ->
  match e.pexp_desc with
  | Pexp_ident { txt; loc } ->
      let p = lident_path txt in
      if st.ctx.enabled Rule.R8 && blocking p then
        add st Rule.R8 loc
          (Printf.sprintf
             "`%s` used as a value inside the event loop — it blocks every \
              session"
             p);
      if st.ctx.enabled Rule.R9 && raw_mutation p then
        add st Rule.R9 loc
          (Printf.sprintf
             "`%s` passed around raw — mutations must go through \
              Fsync_store.Io so Fault_io can intercept them"
             p)
  | Pexp_let (_, vbs, body) ->
      List.iter (fun vb -> binding st vb body) vbs;
      go st body
  | Pexp_match (scrut, cases) -> (
      (* [match acquisition with] binds the resource per-case. *)
      go st scrut;
      match acquisition_of st scrut with
      | Some what ->
          List.iter
            (fun c ->
              (match pattern_vars c.pc_lhs with
              | [] -> ()
              | _ :: _ ->
                  check_acquisition st ~what ~loc:scrut.pexp_loc c.pc_lhs
                    c.pc_rhs);
              case st c)
            cases
      | None -> List.iter (fun c -> case st c) cases)
  | Pexp_try (body, cases) ->
      go st body;
      List.iter (fun c -> case st c) cases
  | Pexp_apply (f, args) -> apply st e f args
  | _ -> go_children st e

and case st (c : case) =
  shadowing st (pattern_vars c.pc_lhs) @@ fun () ->
  (match c.pc_guard with Some g -> go st g | None -> ());
  go st c.pc_rhs

and shadowing st vars k =
  (* Case bindings hide outer taints for the duration of the arm. *)
  let saved = List.filter (fun v -> is_tainted st v) vars in
  List.iter (untaint st) vars;
  Fun.protect ~finally:(fun () -> List.iter (taint st) saved) k

and acquisition_of st (e : expression) =
  if not (st.ctx.enabled Rule.R6) then None
  else
    match e.pexp_desc with
    | Pexp_apply (f, _) -> (
        match head_ident f with
        | Some p when acquisition p -> Some p
        | _ -> None)
    | _ -> None

and binding st (vb : value_binding) body =
  with_allows st vb.pvb_attributes @@ fun () ->
  with_allows st vb.pvb_expr.pexp_attributes @@ fun () ->
  match acquisition_of st vb.pvb_expr with
  | Some what ->
      go st vb.pvb_expr;
      check_acquisition st ~what ~loc:vb.pvb_expr.pexp_loc vb.pvb_pat body
  | None ->
      go st vb.pvb_expr;
      (* Taint transfer: a source call taints the value component; any
         rhs still mentioning a tainted var propagates; a clean rhs
         clears rebound names. *)
      let vars = pattern_vars vb.pvb_pat in
      let taints =
        if not (st.ctx.enabled Rule.R7) then []
        else
          match vb.pvb_expr.pexp_desc with
          | Pexp_apply (f, _)
            when (match head_ident f with
                 | Some p -> taint_source st.ctx p
                 | None -> false) ->
              taint_vars_of_pattern vb.pvb_pat
          | _ ->
              if Option.is_some (expr_tainted st vb.pvb_expr) then vars
              else []
      in
      List.iter (untaint st) vars;
      List.iter (taint st) taints

and apply st (e : expression) f args =
  let arg_exprs = List.map snd args in
  let p = match head_ident f with Some p -> p | None -> "" in
  (* R8 --------------------------------------------------------------- *)
  if st.ctx.enabled Rule.R8 then begin
    if blocking p then
      add st Rule.R8 f.pexp_loc
        (Printf.sprintf
           "`%s` blocks the event loop — every session stalls behind it" p);
    if raw_fd_io p && not st.ctx.conn_io_ok then
      add st Rule.R8 f.pexp_loc
        (Printf.sprintf
           "raw `%s` in the event loop — only Conn's non-blocking buffers \
            may touch session fds"
           p);
    if String.equal p "Unix.select" then
      match List.rev arg_exprs with
      | timeout :: _ when is_negative_float timeout ->
          add st Rule.R8 f.pexp_loc
            "`Unix.select` with a negative timeout blocks indefinitely — \
             the loop must keep its own deadline"
      | _ -> ()
  end;
  (* R9 --------------------------------------------------------------- *)
  if st.ctx.enabled Rule.R9 then begin
    if raw_mutation p then
      add st Rule.R9 f.pexp_loc
        (Printf.sprintf
           "raw `%s` bypasses Fsync_store.Io — Fault_io's crash-point \
            sweep cannot cover it"
           p)
    else if
      String.equal p "Unix.openfile"
      && List.exists constructs_write_flag arg_exprs
    then
      add st Rule.R9 f.pexp_loc
        "`Unix.openfile` with write flags bypasses Fsync_store.Io — route \
         the write through the Io record"
  end;
  (* R7 sinks fire on the taint state at the moment of evaluation. ---- *)
  if st.ctx.enabled Rule.R7 then begin
    (if allocator p then
       match positional_args args with
       | first :: _ -> (
           match expr_tainted st first with
           | Some v ->
               add st Rule.R7 f.pexp_loc
                 (Printf.sprintf
                    "wire-derived `%s` reaches `%s` without a bounds guard \
                     — compare it against a limit first"
                    v p)
           | None -> ())
       | [] -> ());
    if String.equal p "*" then
      List.iter
        (fun a ->
          match expr_tainted st a with
          | Some v ->
              add st Rule.R7 e.pexp_loc
                (Printf.sprintf
                   "multiplying wire-derived `%s` can overflow before any \
                    bounds check — bound the count first, then multiply"
                   v)
          | None -> ())
        arg_exprs
  end;
  (* Recurse: a complex callee, then the arguments in order (sinks
     nested inside a guard expression still fire before the guard). *)
  (match head_ident f with Some _ -> () | None -> go st f);
  List.iter (go st) arg_exprs;
  (* Guard effect: a comparison mentioning a tainted var launders it
     for the rest of the walk — which is evaluation order, so guards
     after a sink do not rescue it. *)
  if st.ctx.enabled Rule.R7 && comparison p then
    List.iter
      (fun a ->
        (* Untaint every variable the guard inspects, even inside a
           larger expression ([pos + len > limit] guards [len]). *)
        Hashtbl.fold (fun v () acc -> if mentions v a then v :: acc else acc)
          st.tainted []
        |> List.iter (untaint st))
      arg_exprs

and is_negative_float (e : expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float (s, _)) ->
      String.length s > 0 && Char.equal s.[0] '-'
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt = Longident.Lident ("~-." | "~-"); _ };
          _ },
        [ (_, { pexp_desc = Pexp_constant _; _ }) ] ) ->
      true
  | _ -> false

and positional_args args =
  List.filter_map
    (fun (label, a) ->
      match label with Asttypes.Nolabel -> Some a | _ -> None)
    args

and go_children st (e : expression) =
  (* Generic traversal for every node shape not handled above; the
     default iterator knows the compiler's own Parsetree, so function
     nodes and future constructors are walked without matching them. *)
  let super = Ast_iterator.default_iterator in
  let it = { super with expr = (fun _ x -> go st x) } in
  super.expr it e

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let scan_structure ctx (str : structure) =
  if not (List.exists ctx.enabled [ Rule.R6; Rule.R7; Rule.R8; Rule.R9 ])
  then []
  else begin
    let st =
      { ctx; findings = []; suppressed = []; tainted = Hashtbl.create 8 }
    in
    let rec items sis =
      List.iter
        (fun (si : structure_item) ->
          match si.pstr_desc with
          | Pstr_value (_, vbs) ->
              List.iter
                (fun vb ->
                  (* One top-level binding = one function: fresh env. *)
                  Hashtbl.reset st.tainted;
                  with_allows st vb.pvb_attributes (fun () ->
                      go st vb.pvb_expr))
                vbs
          | Pstr_eval (e, attrs) ->
              Hashtbl.reset st.tainted;
              with_allows st attrs (fun () -> go st e)
          | Pstr_module
              { pmb_expr = { pmod_desc = Pmod_structure inner; _ }; _ } ->
              items inner
          | _ -> ())
        sis
    in
    items str;
    st.findings
  end
