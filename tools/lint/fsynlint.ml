(* fsynlint command-line driver.

   Usage (from the repository root):

     fsynlint [options] [roots...]

   Default roots are `lib bin bench`; the default mode checks findings
   against the baseline ratchet and exits non-zero on any new violation
   or stale baseline entry.  See `fsynlint --help`. *)

module Lint = Fsynlint_lib.Lint

let default_roots = [ "lib"; "bin"; "bench" ]
let default_baseline = "tools/lint/baseline.txt"

let usage =
  "fsynlint — repo-specific static analysis with a baseline ratchet\n\n\
   usage: fsynlint [options] [roots...]\n\n\
   Parses every .ml/.mli under the roots (default: lib bin bench) and\n\
   enforces rules R1-R5 (see --explain).  Findings are compared against\n\
   the baseline (default: tools/lint/baseline.txt): new violations and\n\
   stale baseline entries fail the run.\n\n\
   options:\n\
  \  --baseline FILE     baseline file (default tools/lint/baseline.txt)\n\
  \  --no-baseline       ignore the baseline: report every finding\n\
  \  --update-baseline   rewrite the baseline from the current scan;\n\
  \                      refuses to grow existing debt unless --allow-growth\n\
  \  --allow-growth      permit --update-baseline to record new debt\n\
  \  --list              print every finding (not just deltas) and exit 0\n\
  \  --explain           print the rationale for each rule and exit\n\
  \  --help              this message\n"

type mode = Check | Update | List_all

type opts = {
  mutable mode : mode;
  mutable baseline : string option;
  mutable allow_growth : bool;
  mutable roots : string list;
}

let parse_args argv =
  let o =
    { mode = Check; baseline = Some default_baseline; allow_growth = false;
      roots = [] }
  in
  let rec go = function
    | [] -> o
    | "--help" :: _ | "-h" :: _ ->
        print_string usage;
        exit 0
    | "--explain" :: _ ->
        List.iter
          (fun r -> Printf.printf "%s\n\n" (Lint.explain r))
          Lint.all_rules;
        exit 0
    | "--baseline" :: file :: rest ->
        o.baseline <- Some file;
        go rest
    | "--baseline" :: [] ->
        prerr_endline "fsynlint: --baseline needs a file argument";
        exit 2
    | "--no-baseline" :: rest ->
        o.baseline <- None;
        go rest
    | "--update-baseline" :: rest ->
        o.mode <- Update;
        go rest
    | "--allow-growth" :: rest ->
        o.allow_growth <- true;
        go rest
    | "--list" :: rest ->
        o.mode <- List_all;
        go rest
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' ->
        Printf.eprintf "fsynlint: unknown option %s\n%s" arg usage;
        exit 2
    | root :: rest ->
        o.roots <- root :: o.roots;
        go rest
  in
  go (List.tl (Array.to_list argv))

let hint = "      (run with --explain for the rule rationale)"

let () =
  let o = parse_args Sys.argv in
  let roots = if o.roots = [] then default_roots else List.rev o.roots in
  match
    let findings = Lint.scan roots in
    match o.mode with
    | List_all ->
        List.iter
          (fun f -> Format.printf "%a@." Lint.pp_finding f)
          findings;
        Printf.printf "fsynlint: %d finding(s) across %d rule/file pair(s)\n"
          (List.length findings)
          (Lint.KeyMap.cardinal (Lint.counts findings));
        0
    | Update ->
        let file =
          match o.baseline with Some f -> f | None -> default_baseline
        in
        let old = Lint.read_baseline file in
        let grown = Lint.growth ~baseline:old findings in
        if grown <> [] && not o.allow_growth then begin
          Printf.eprintf
            "fsynlint: refusing to grow the baseline (the ratchet only \
             shrinks).  Debt would grow for:\n";
          List.iter
            (fun (r, f) ->
              Printf.eprintf "  %s %s\n" (Lint.rule_name r) f)
            grown;
          Printf.eprintf
            "Fix the new violations, or pass --allow-growth to record them \
             deliberately.\n";
          1
        end
        else begin
          let oc = open_out file in
          output_string oc (Lint.render_baseline (Lint.counts findings));
          close_out oc;
          Printf.printf "fsynlint: baseline %s updated (%d entries)\n" file
            (Lint.KeyMap.cardinal (Lint.counts findings));
          0
        end
    | Check -> (
        match o.baseline with
        | None ->
            List.iter
              (fun f -> Format.printf "%a@." Lint.pp_finding f)
              findings;
            if findings = [] then begin
              print_endline "fsynlint: clean";
              0
            end
            else begin
              Printf.printf "fsynlint: %d finding(s)\n" (List.length findings);
              1
            end
        | Some file ->
            let baseline = Lint.read_baseline file in
            let v = Lint.check ~baseline findings in
            List.iter
              (fun (r, f, fs) ->
                Printf.printf
                  "fsynlint: new %s violation(s) in %s (baseline allows %d, \
                   found %d):\n"
                  (Lint.rule_name r) f
                  (Option.value
                     (Lint.KeyMap.find_opt (r, f) baseline)
                     ~default:0)
                  (List.length fs);
                List.iter
                  (fun x -> Format.printf "  %a@." Lint.pp_finding x)
                  fs;
                print_endline hint)
              v.new_violations;
            List.iter
              (fun (r, f, b, c) ->
                Printf.printf
                  "fsynlint: stale baseline for %s %s (recorded %d, found \
                   %d) — debt was paid down; lock it in with\n\
                  \  dune exec tools/lint/fsynlint.exe -- --update-baseline\n"
                  (Lint.rule_name r) f b c)
              v.stale;
            if Lint.clean v then begin
              Printf.printf
                "fsynlint: clean (%d finding(s) within baseline across %d \
                 file(s))\n"
                (List.length findings)
                (Lint.KeyMap.cardinal (Lint.counts findings));
              0
            end
            else 1)
  with
  | code -> exit code
  | exception Lint.Parse_error msg ->
      Printf.eprintf "fsynlint: %s\n" msg;
      exit 2
