(* fsynlint command-line driver.

   Usage (from the repository root):

     fsynlint [options] [roots...]

   Default roots are `lib bin bench`; the default mode checks findings
   against the baseline ratchet and exits non-zero on any new violation
   or stale baseline entry.  See `fsynlint --help`. *)

module Lint = Fsynlint_lib.Lint

let default_roots = [ "lib"; "bin"; "bench" ]
let default_baseline = "tools/lint/baseline.txt"

let usage =
  "fsynlint — repo-specific static analysis with a baseline ratchet\n\n\
   usage: fsynlint [options] [roots...]\n\n\
   Parses every .ml/.mli under the roots (default: lib bin bench) and\n\
   enforces the syntactic rules R1-R5 plus the R6-R9 dataflow rules\n\
   (see --explain).  Findings are compared against the baseline\n\
   (default: tools/lint/baseline.txt): new violations and stale\n\
   baseline entries fail the run.\n\n\
   options:\n\
  \  --baseline FILE     baseline file (default tools/lint/baseline.txt)\n\
  \  --no-baseline       ignore the baseline: report every finding\n\
  \  --update-baseline   rewrite the baseline from the current scan;\n\
  \                      refuses to grow existing debt unless --allow-growth\n\
  \  --allow-growth      permit --update-baseline to record new debt\n\
  \  --list              print every finding (not just deltas) and exit 0\n\
  \  --json FILE         also write the findings (and, in check mode,\n\
  \                      the baseline delta) as JSON to FILE\n\
  \  --explain           print the rationale for each rule and exit\n\
  \  --help              this message\n"

type mode = Check | Update | List_all

type opts = {
  mutable mode : mode;
  mutable baseline : string option;
  mutable allow_growth : bool;
  mutable json : string option;
  mutable roots : string list;
}

let parse_args argv =
  let o =
    { mode = Check; baseline = Some default_baseline; allow_growth = false;
      json = None; roots = [] }
  in
  let rec go = function
    | [] -> o
    | "--help" :: _ | "-h" :: _ ->
        print_string usage;
        exit 0
    | "--explain" :: _ ->
        List.iter
          (fun r -> Printf.printf "%s\n\n" (Lint.explain r))
          Lint.all_rules;
        exit 0
    | "--baseline" :: file :: rest ->
        o.baseline <- Some file;
        go rest
    | "--baseline" :: [] ->
        prerr_endline "fsynlint: --baseline needs a file argument";
        exit 2
    | "--no-baseline" :: rest ->
        o.baseline <- None;
        go rest
    | "--update-baseline" :: rest ->
        o.mode <- Update;
        go rest
    | "--allow-growth" :: rest ->
        o.allow_growth <- true;
        go rest
    | "--list" :: rest ->
        o.mode <- List_all;
        go rest
    | "--json" :: file :: rest ->
        o.json <- Some file;
        go rest
    | "--json" :: [] ->
        prerr_endline "fsynlint: --json needs a file argument";
        exit 2
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' ->
        Printf.eprintf "fsynlint: unknown option %s\n%s" arg usage;
        exit 2
    | root :: rest ->
        o.roots <- root :: o.roots;
        go rest
  in
  go (List.tl (Array.to_list argv))

let hint = "      (run with --explain for the rule rationale)"

let write_json o ?verdict findings =
  match o.json with
  | None -> ()
  | Some file ->
      let oc = open_out file in
      output_string oc (Lint.json_report ?verdict findings);
      close_out oc

(* "R6:2 R7:1" — totals per rule, in rule order, for the one-line
   failure summary CI surfaces. *)
let per_rule tally =
  Lint.all_rules
  |> List.filter_map (fun r ->
         match tally r with
         | 0 -> None
         | n -> Some (Printf.sprintf "%s:%d" (Lint.rule_name r) n))
  |> String.concat " "

let fail_summary (v : Lint.verdict) =
  let news r =
    List.fold_left
      (fun acc (r', _, fs) ->
        if Lint.rule_equal r r' then acc + List.length fs else acc)
      0 v.new_violations
  in
  let stale r =
    List.fold_left
      (fun acc (r', _, _, _) -> if Lint.rule_equal r r' then acc + 1 else acc)
      0 v.stale
  in
  let parts = [] in
  let parts =
    if v.stale = [] then parts
    else Printf.sprintf "stale entries %s" (per_rule stale) :: parts
  in
  let parts =
    if v.new_violations = [] then parts
    else Printf.sprintf "new violations %s" (per_rule news) :: parts
  in
  Printf.sprintf "fsynlint: FAIL — %s" (String.concat "; " parts)

let () =
  let o = parse_args Sys.argv in
  let roots = if o.roots = [] then default_roots else List.rev o.roots in
  match
    let findings = Lint.scan roots in
    match o.mode with
    | List_all ->
        List.iter
          (fun f -> Format.printf "%a@." Lint.pp_finding f)
          findings;
        write_json o findings;
        Printf.printf "fsynlint: %d finding(s) across %d rule/file pair(s)\n"
          (List.length findings)
          (Lint.KeyMap.cardinal (Lint.counts findings));
        0
    | Update ->
        let file =
          match o.baseline with Some f -> f | None -> default_baseline
        in
        let old = Lint.read_baseline file in
        let grown = Lint.growth ~baseline:old findings in
        if grown <> [] && not o.allow_growth then begin
          Printf.eprintf
            "fsynlint: refusing to grow the baseline (the ratchet only \
             shrinks).  Debt would grow for:\n";
          List.iter
            (fun (r, f) ->
              Printf.eprintf "  %s %s\n" (Lint.rule_name r) f)
            grown;
          Printf.eprintf
            "Fix the new violations, or pass --allow-growth to record them \
             deliberately.\n";
          1
        end
        else begin
          let oc = open_out file in
          output_string oc (Lint.render_baseline (Lint.counts findings));
          close_out oc;
          write_json o findings;
          Printf.printf "fsynlint: baseline %s updated (%d entries)\n" file
            (Lint.KeyMap.cardinal (Lint.counts findings));
          0
        end
    | Check -> (
        match o.baseline with
        | None ->
            List.iter
              (fun f -> Format.printf "%a@." Lint.pp_finding f)
              findings;
            write_json o findings;
            if findings = [] then begin
              print_endline "fsynlint: clean";
              0
            end
            else begin
              Printf.printf "fsynlint: %d finding(s)\n" (List.length findings);
              1
            end
        | Some file ->
            let baseline = Lint.read_baseline file in
            let v = Lint.check ~baseline findings in
            write_json o ~verdict:v findings;
            List.iter
              (fun (r, f, fs) ->
                Printf.printf
                  "fsynlint: new %s violation(s) in %s (baseline allows %d, \
                   found %d):\n"
                  (Lint.rule_name r) f
                  (Option.value
                     (Lint.KeyMap.find_opt (r, f) baseline)
                     ~default:0)
                  (List.length fs);
                List.iter
                  (fun x -> Format.printf "  %a@." Lint.pp_finding x)
                  fs;
                print_endline hint)
              v.new_violations;
            List.iter
              (fun (r, f, b, c) ->
                Printf.printf
                  "fsynlint: stale baseline for %s %s (recorded %d, found \
                   %d) — debt was paid down; lock it in with\n\
                  \  dune exec tools/lint/fsynlint.exe -- --update-baseline\n"
                  (Lint.rule_name r) f b c)
              v.stale;
            if Lint.clean v then begin
              Printf.printf
                "fsynlint: clean (%d finding(s) within baseline across %d \
                 file(s))\n"
                (List.length findings)
                (Lint.KeyMap.cardinal (Lint.counts findings));
              0
            end
            else begin
              print_endline (fail_summary v);
              1
            end)
  with
  | code -> exit code
  | exception Lint.Parse_error msg ->
      Printf.eprintf "fsynlint: %s\n" msg;
      exit 2
