(** fsynlint — repo-specific static analysis for the fsync code base.

    Parses [.ml]/[.mli] files with compiler-libs and enforces the repo's
    wire-determinism and crash-safety invariants: syntactic rules R1–R5
    plus the R6–R9 dataflow rules (resource leaks, tainted wire lengths,
    event-loop blocking, Io-mediated syscalls) implemented in
    {!Dataflow}.  Findings are diffed against a checked-in baseline
    ratchet.  See DESIGN.md §8. *)

type rule = Rule.t = R1 | R2 | R3 | R4 | R5 | R6 | R7 | R8 | R9

val all_rules : rule list
val rule_name : rule -> string
val rule_of_name : string -> rule option
val rule_equal : rule -> rule -> bool

val explain : rule -> string
(** One-paragraph rationale and remedy for a rule. *)

type finding = Rule.finding = {
  rule : rule;
  file : string;
  line : int;
  col : int;
  msg : string;
}

val pp_finding : Format.formatter -> finding -> unit
val finding_compare : finding -> finding -> int

exception Parse_error of string
(** A source or baseline file that does not parse.  Unlike a rule
    violation this is not ratchetable debt: it aborts the run. *)

val is_wire_sensitive : string -> bool
(** Whether a (normalized, repo-relative) path lies in one of the
    wire-sensitive libraries subject to R1/R5. *)

val rules_for : string -> rule list
(** The rules applicable to a repo-relative [.ml] path. *)

val scan_file : string -> finding list
(** Lint one file.  [.mli] files are parse-checked only.
    @raise Parse_error when the file does not lex/parse. *)

val scan : string list -> finding list
(** Lint every [.ml]/[.mli] under the given roots (files or directories,
    searched recursively, skipping [_build] and [.git]), sorted by
    position. *)

(** {1 Baseline ratchet} *)

module Key : sig
  type t = rule * string

  val compare : t -> t -> int
end

module KeyMap : Map.S with type key = Key.t

val counts : finding list -> int KeyMap.t
(** Findings folded to per-(rule, file) counts — the ratchet currency.
    Counts are robust to unrelated line churn in a way positions are
    not. *)

val read_baseline : string -> int KeyMap.t
(** Load a baseline file; a missing file is the empty baseline.
    @raise Parse_error on malformed entries. *)

val render_baseline : int KeyMap.t -> string
(** The canonical serialized form (sorted, commented header). *)

type verdict = {
  new_violations : (rule * string * finding list) list;
      (** (rule, file, findings) where the count exceeds the baseline *)
  stale : (rule * string * int * int) list;
      (** (rule, file, baseline, current) where the recorded debt
          overstates reality and the baseline must be regenerated *)
}

val check : baseline:int KeyMap.t -> finding list -> verdict
val clean : verdict -> bool

val growth : baseline:int KeyMap.t -> finding list -> Key.t list
(** The (rule, file) keys a baseline update would {e grow} — used to
    refuse [--update-baseline] unless explicitly forced. *)

(** {1 JSON report}

    The CI artifact format, schema ["fsynlint-findings/1"]: a top-level
    object carrying the full findings list and, when a ratchet verdict
    is attached, the [new]/[stale] delta the run failed on. *)

val json_schema : string

val json_report : ?verdict:verdict -> finding list -> string
(** Serialize findings (and optionally the ratchet delta) as JSON. *)

val findings_of_json : string -> finding list
(** Recover the [findings] array from a {!json_report} document.
    @raise Parse_error on malformed input or an unknown schema tag. *)
