(* The rule vocabulary shared by the syntactic pass ({!Lint}) and the
   dataflow engine ({!Dataflow}): identifiers, rationale text, and the
   finding record both passes produce.

   R1-R5 are syntactic (pattern matching on the Parsetree); R6-R9 are
   dataflow rules (per-function environments tracking acquired
   resources, wire-tainted integers, and call context).  Each rule
   machine-checks an invariant that was once restored by hand in a
   reviewed bug fix — the rationale strings name the incident. *)

type t = R1 | R2 | R3 | R4 | R5 | R6 | R7 | R8 | R9

let all = [ R1; R2; R3; R4; R5; R6; R7; R8; R9 ]

let name = function
  | R1 -> "R1"
  | R2 -> "R2"
  | R3 -> "R3"
  | R4 -> "R4"
  | R5 -> "R5"
  | R6 -> "R6"
  | R7 -> "R7"
  | R8 -> "R8"
  | R9 -> "R9"

let of_name s =
  match String.lowercase_ascii s with
  | "r1" -> Some R1
  | "r2" -> Some R2
  | "r3" -> Some R3
  | "r4" -> Some R4
  | "r5" -> Some R5
  | "r6" -> Some R6
  | "r7" -> Some R7
  | "r8" -> Some R8
  | "r9" -> Some R9
  | _ -> None

let equal a b = String.equal (name a) (name b)

let explain = function
  | R1 ->
      "R1 polymorphic-comparison: no `=`, `<>`, `compare` or `Hashtbl.hash` \
       in wire-sensitive libraries (core, net, reconcile, hashing, rsync, \
       delta, server) or in bin/ and bench/, which handle the same protocol \
       values.  Polymorphic comparison walks runtime representations, so \
       its verdict depends on in-memory layout rather than the wire \
       encoding both endpoints agreed on, and it is also slower than the \
       monomorphic equivalent on hot paths.  Use `String.equal`, \
       `Int.equal`, `Option.is_some`, a dedicated `equal`/`compare` for \
       the type, or pattern matching.  Comparisons against immediate \
       literals (`= 0`, `<> '\\n'`, `= true`, `= []`, `= ()`) are exempt: \
       the compiler specializes them and no protocol type is involved."
  | R2 ->
      "R2 crash-point: no `failwith`, `invalid_arg`, `assert false`, \
       `List.hd` or `Option.get` in library code.  Malformed or truncated \
       input reaching a decode/receive path must surface as a typed \
       `Fsync_core.Error`, never as an untyped exception that callers \
       cannot distinguish from a bug."
  | R3 ->
      "R3 direct-output: no `Printf.printf`, `print_string`, `prerr_*` \
       and friends in `lib/`.  Libraries report through `Fsync_net.Trace` \
       (or return data); only binaries talk to stdout/stderr."
  | R4 ->
      "R4 missing-interface: every `lib/**/*.ml` has a corresponding \
       `.mli`.  An unconstrained module leaks representation details the \
       wire format must not depend on."
  | R5 ->
      "R5 codec-asymmetry: every top-level `write_x`/`put_x` in a \
       wire-sensitive library has a matching `read_x`/`get_x` in the same \
       module.  An encoder without its decoder is either dead weight or a \
       message the peer cannot parse."
  | R6 ->
      "R6 resource-leak: a file descriptor or channel acquired with \
       `Unix.openfile`/`socket`/`accept`/`opendir`/`open_in*`/`open_out*` \
       must reach its close call on every control-flow path, be protected \
       by `Fun.protect ~finally`, or be handed off to an owner (returned, \
       stored, or passed to a wrapper that takes ownership).  A branch — \
       especially an error branch — that drops the value leaks one fd per \
       occurrence, and the daemon multiplies every per-session leak by \
       its session count.  PR 5 shipped exactly this bug: a write to a \
       dead peer dropped the outbox but left the fd open until the \
       process ran out of descriptors."
  | R7 ->
      "R7 tainted-length: an integer decoded from the wire (`Varint.read`, \
       a `get_*`/`read_*` reader in Msg/Wire/Frame/Meta_wire) is \
       attacker-controlled and must flow through a bounds guard — an \
       explicit comparison against a limit, or a `min`/`max` clamp — \
       before it reaches an allocation (`Bytes.create`, `String.make`, \
       `Array.make`, `*_init`) or any multiplication.  Multiplying first \
       and checking the product is not a guard: PR 5's `'S'` decode \
       multiplied a hostile varint near 2^61 by the hash width, \
       overflowed negative, and slipped past a sum-based check."
  | R8 ->
      "R8 event-loop-blocking: nothing inside `Daemon.step`/`Conn` \
       readable-writable paths may block the single-threaded select \
       loop: no `Unix.sleep*`/`Thread.delay`, no `Unix.system`/ \
       `Sys.command`/`Unix.wait*`, no `Unix.select` with a negative \
       (infinite) timeout, and no raw `Unix.read`/`write` outside the \
       non-blocking `Conn` buffers.  One blocking call parks every \
       session behind the slowest peer — the backpressure design \
       (DESIGN.md \xc2\xa710) only works because the loop never waits on any \
       single fd."
  | R9 ->
      "R9 io-mediated-syscalls: in `lib/store` and `lib/collection`, \
       mutating filesystem calls (`rename`, `unlink`/`remove`, `mkdir`, \
       `rmdir`, `fsync`, `open_out*`, `Unix.openfile` with write flags) \
       must go through the `Fsync_store.Io` record, never raw \
       `Unix`/`Sys`.  `Fault_io`'s crash-point sweep (the torture \
       harness) can only prove crash safety for syscalls it can \
       intercept; a raw call is an untested crash window.  `lib/store/ \
       io.ml` itself is the sanctioned boundary and is exempt."

type finding = { rule : t; file : string; line : int; col : int; msg : string }

let compare_finding a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> (
          match Int.compare a.col b.col with
          | 0 -> String.compare (name a.rule) (name b.rule)
          | c -> c)
      | c -> c)
  | c -> c

let pp_finding ppf f =
  Format.fprintf ppf "%s:%d:%d: [%s] %s" f.file f.line f.col (name f.rule)
    f.msg

let finding_of_loc rule ~file (loc : Location.t) msg =
  let p = loc.loc_start in
  { rule; file; line = p.pos_lnum; col = p.pos_cnum - p.pos_bol; msg }
