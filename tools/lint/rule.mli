(** The rule vocabulary shared by the syntactic pass ({!Lint}) and the
    dataflow engine ({!Dataflow}).  R1-R5 are syntactic; R6-R9 are
    dataflow rules.  See DESIGN.md §8. *)

type t = R1 | R2 | R3 | R4 | R5 | R6 | R7 | R8 | R9

val all : t list
val name : t -> string
val of_name : string -> t option
val equal : t -> t -> bool

val explain : t -> string
(** One-paragraph rationale and remedy, naming the historical incident
    the rule machine-checks. *)

type finding = { rule : t; file : string; line : int; col : int; msg : string }

val compare_finding : finding -> finding -> int
val pp_finding : Format.formatter -> finding -> unit

val finding_of_loc : t -> file:string -> Location.t -> string -> finding
(** A finding anchored at the start of [loc]. *)
