(* fsynlint — repo-specific static analysis for the fsync code base.

   The sync protocols only work when both endpoints compute byte-identical
   hashes, maps and wire encodings.  A single use of OCaml's polymorphic
   [=] / [compare] / [Hashtbl.hash] on a protocol type, or an untyped
   [failwith] escaping a decode path, silently breaks the guarantees the
   typed-error layer ({!Fsync_core.Error}) provides.  These invariants are
   machine-enforced here rather than left to convention.

   The tool parses every [.ml]/[.mli] under the requested roots with the
   compiler's own front end ([Parse] + [Ast_iterator] from
   compiler-libs.common — no new dependencies) and applies the rules
   below.  Findings are diffed against a checked-in baseline — the
   ratchet: pre-existing debt is recorded per (rule, file); new
   violations fail the build; fixing a violation makes the recorded
   baseline stale, which also fails until the baseline is regenerated —
   so the baseline can only shrink. *)

(* ------------------------------------------------------------------ *)
(* Rules and findings (vocabulary lives in {!Rule})                    *)
(* ------------------------------------------------------------------ *)

(* R1-R5 are the syntactic rules implemented below; R6-R9 are the
   dataflow rules implemented in {!Dataflow}.  Both passes share the
   rule identifiers, rationale text and finding record from {!Rule};
   the re-export keeps this module the single public face. *)

type rule = Rule.t = R1 | R2 | R3 | R4 | R5 | R6 | R7 | R8 | R9

let all_rules = Rule.all
let rule_name = Rule.name
let rule_of_name = Rule.of_name
let rule_equal = Rule.equal
let explain = Rule.explain

type finding = Rule.finding = {
  rule : rule;
  file : string;
  line : int;
  col : int;
  msg : string;
}

let finding_compare = Rule.compare_finding
let pp_finding = Rule.pp_finding

(* ------------------------------------------------------------------ *)
(* Scope: which rules apply to which paths                             *)
(* ------------------------------------------------------------------ *)

(* Libraries whose values travel on (or directly shape) the wire. *)
let wire_sensitive_dirs =
  [ "lib/core"; "lib/net"; "lib/reconcile"; "lib/hashing"; "lib/rsync";
    "lib/delta"; "lib/server"; "lib/swarm" ]

let normalize path =
  (* The tool is run from the repository root; strip a leading "./". *)
  if String.length path > 2 && String.equal (String.sub path 0 2) "./" then
    String.sub path 2 (String.length path - 2)
  else path

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let is_wire_sensitive path =
  List.exists (fun d -> starts_with ~prefix:(d ^ "/") path) wire_sensitive_dirs

let in_lib path = starts_with ~prefix:"lib/" path

(* bin/ and bench/ handle the same protocol values as lib/ and acquire
   the same fds, so R1/R2/R6/R7 apply; console I/O (R3) is their job. *)
let in_bin_or_bench path =
  starts_with ~prefix:"bin/" path || starts_with ~prefix:"bench/" path

(* R8's scope is exactly the single-threaded select loops. *)
let event_loop_files =
  [ "lib/server/daemon.ml"; "lib/server/conn.ml"; "lib/swarm/peer.ml" ]

(* R9: the crash-safe paths Fault_io must be able to intercept;
   lib/store/io.ml is the sanctioned raw-syscall boundary.  The swarm's
   replica persistence (vector table + content installs) is covered by
   the same crash sweeps, so it writes through Io too. *)
let io_mediated path =
  (starts_with ~prefix:"lib/store/" path
  || starts_with ~prefix:"lib/collection/" path
  || starts_with ~prefix:"lib/swarm/" path)
  && not (String.equal path "lib/store/io.ml")

(* Files whose local get_*/read_* functions are wire readers — inside
   them an unqualified reader call is an R7 taint source. *)
let decode_modules =
  [ "lib/server/msg.ml"; "lib/core/wire.ml"; "lib/net/frame.ml";
    "lib/collection/meta_wire.ml"; "lib/swarm/swarm_wire.ml";
    "lib/swarm/version_vector.ml"; "lib/swarm/replica.ml" ]

let rules_for path =
  (if is_wire_sensitive path then [ R1; R5 ] else [])
  @ (if in_lib path then [ R2; R3; R4 ] else [])
  @ (if in_bin_or_bench path then [ R1; R2 ] else [])
  @ (if in_lib path || in_bin_or_bench path then [ R6; R7 ] else [])
  @ (if List.exists (String.equal path) event_loop_files then [ R8 ] else [])
  @ if io_mediated path then [ R9 ] else []

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let with_lexbuf path f =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lexbuf = Lexing.from_channel ic in
      Lexing.set_filename lexbuf path;
      try f lexbuf
      with exn ->
        let detail =
          match Location.error_of_exn exn with
          | Some (`Ok (e : Location.error)) ->
              Format.asprintf "%a" Location.print_report e
          | _ -> Printexc.to_string exn
        in
        raise (Parse_error (Printf.sprintf "%s: %s" path detail)))

let parse_implementation path = with_lexbuf path Parse.implementation
let parse_interface path = with_lexbuf path Parse.interface

(* ------------------------------------------------------------------ *)
(* AST predicates                                                      *)
(* ------------------------------------------------------------------ *)

open Parsetree

(* R1: polymorphic comparison entry points.  [Stdlib.] qualification is
   recognized so aliasing does not dodge the rule. *)
let r1_ident (id : Longident.t) =
  match id with
  | Lident (("=" | "<>" | "compare") as n)
  | Ldot (Lident "Stdlib", (("=" | "<>" | "compare") as n)) ->
      Some n
  | Ldot (Lident "Hashtbl", "hash")
  | Ldot (Ldot (Lident "Stdlib", "Hashtbl"), "hash") ->
      Some "Hashtbl.hash"
  | _ -> None

(* Comparing against an immediate literal ([x = 0], [c <> '\n'],
   [flag = true], [l = []], [u = ()]) is specialized by the compiler and
   cannot involve a protocol type's structure; exempting it keeps the
   rule focused on real determinism and perf hazards. *)
let immediate_literal (e : expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_integer _ | Pconst_char _) -> true
  | Pexp_construct ({ txt = Lident ("true" | "false" | "()" | "[]"); _ }, None)
    ->
      true
  | _ -> false

(* R2: untyped crash points. *)
let r2_ident (id : Longident.t) =
  match id with
  | Lident (("failwith" | "invalid_arg") as n)
  | Ldot (Lident "Stdlib", (("failwith" | "invalid_arg") as n)) ->
      Some n
  | Ldot (Lident "List", "hd") -> Some "List.hd"
  | Ldot (Lident "Option", "get") -> Some "Option.get"
  | _ -> None

(* R3: direct console output. *)
let r3_ident (id : Longident.t) =
  let chan_fn n =
    match n with
    | "print_string" | "print_endline" | "print_newline" | "print_char"
    | "print_int" | "print_float" | "print_bytes" | "prerr_string"
    | "prerr_endline" | "prerr_newline" | "prerr_char" | "prerr_int"
    | "prerr_float" | "prerr_bytes" ->
        true
    | _ -> false
  in
  match id with
  | Lident n when chan_fn n -> Some n
  | Ldot (Lident "Stdlib", n) when chan_fn n -> Some ("Stdlib." ^ n)
  | Ldot (Lident (("Printf" | "Format") as m), (("printf" | "eprintf") as n))
    ->
      Some (m ^ "." ^ n)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Suppression                                                         *)
(* ------------------------------------------------------------------ *)

(* A deliberate, reviewed exception is annotated at the source:

     let print ch = print_string (render ch) [@@fsynlint.allow r3]

   The payload is a space-separated list of rule names.  Suppressions
   scope over the annotated binding or expression only, and are the
   escape hatch for sanctioned sinks (e.g. [Trace.print] is exactly the
   place where library output is allowed to reach stdout). *)
let allowed_rules_of_attrs (attrs : attributes) =
  List.concat_map
    (fun (a : attribute) ->
      if not (String.equal a.attr_name.txt "fsynlint.allow") then []
      else
        match a.attr_payload with
        | PStr
            [ { pstr_desc =
                  Pstr_eval
                    ( { pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ },
                      _ );
                _ } ] ->
            String.split_on_char ' ' s
            |> List.filter_map rule_of_name
        | _ -> [])
    attrs

(* ------------------------------------------------------------------ *)
(* The scanner                                                         *)
(* ------------------------------------------------------------------ *)

let scan_structure ~path (str : structure) =
  let applicable = rules_for path in
  let findings = ref [] in
  let suppressed = ref [] in
  let add rule (loc : Location.t) msg =
    if List.mem rule applicable && not (List.mem rule !suppressed) then
      let p = loc.loc_start in
      findings :=
        { rule; file = path; line = p.pos_lnum;
          col = p.pos_cnum - p.pos_bol; msg }
        :: !findings
  in
  let with_allows attrs k =
    match allowed_rules_of_attrs attrs with
    | [] -> k ()
    | allows ->
        let saved = !suppressed in
        suppressed := allows @ saved;
        Fun.protect ~finally:(fun () -> suppressed := saved) k
  in
  (* Top-level value names, for the R5 codec-symmetry check. *)
  let top_names = ref [] in
  let record_top_level (vb : value_binding) =
    match vb.pvb_pat.ppat_desc with
    | Ppat_var { txt; _ } -> top_names := (txt, vb.pvb_pat.ppat_loc) :: !top_names
    | _ -> ()
  in
  let super = Ast_iterator.default_iterator in
  let expr (it : Ast_iterator.iterator) (e : expression) =
    with_allows e.pexp_attributes @@ fun () ->
    match e.pexp_desc with
    | Pexp_apply
        ({ pexp_desc = Pexp_ident { txt; loc }; _ }, args)
      when r1_ident txt <> None
           || r2_ident txt <> None
           || r3_ident txt <> None -> (
        (match (r1_ident txt, args) with
        | Some (("=" | "<>") as n), [ (_, a); (_, b) ]
          when immediate_literal a || immediate_literal b ->
            ignore n (* literal comparison: exempt *)
        | Some (("=" | "<>") as n), _ ->
            add R1 loc
              (Printf.sprintf
                 "polymorphic `%s` — use a monomorphic equality \
                  (String.equal, Int.equal, a dedicated `equal`, or a match)"
                 n)
        | Some "compare", _ ->
            add R1 loc
              "polymorphic `compare` — use String.compare / Int.compare / a \
               dedicated `compare` for the type"
        | Some n, _ ->
            add R1 loc
              (Printf.sprintf
                 "`%s` mixes representation into the hash — use the \
                  repo's deterministic hash functions" n)
        | None, _ -> ());
        (match r2_ident txt with
        | Some n ->
            add R2 loc
              (Printf.sprintf
                 "`%s` is an untyped crash point — fail through \
                  Fsync_core.Error instead" n)
        | None -> ());
        (match r3_ident txt with
        | Some n ->
            add R3 loc
              (Printf.sprintf
                 "`%s` writes directly to the console — route library \
                  output through Trace" n)
        | None -> ());
        (* The callee ident was judged above; only the operands recurse. *)
        List.iter (fun (_, a) -> it.expr it a) args)
    | Pexp_ident { txt; loc } ->
        (match r1_ident txt with
        | Some n ->
            add R1 loc
              (Printf.sprintf
                 "polymorphic `%s` used as a value — pass a monomorphic \
                  function instead" n)
        | None -> ());
        (match r2_ident txt with
        | Some n ->
            add R2 loc
              (Printf.sprintf
                 "`%s` is an untyped crash point — fail through \
                  Fsync_core.Error instead" n)
        | None -> ());
        (match r3_ident txt with
        | Some n ->
            add R3 loc
              (Printf.sprintf
                 "`%s` writes directly to the console — route library \
                  output through Trace" n)
        | None -> ())
    | Pexp_assert
        { pexp_desc = Pexp_construct ({ txt = Lident "false"; _ }, None); _ }
      ->
        add R2 e.pexp_loc
          "`assert false` is an untyped crash point — fail through \
           Fsync_core.Error instead"
    | _ -> super.expr it e
  in
  let value_binding (it : Ast_iterator.iterator) (vb : value_binding) =
    with_allows vb.pvb_attributes @@ fun () -> super.value_binding it vb
  in
  let structure_item (it : Ast_iterator.iterator) (si : structure_item) =
    (match si.pstr_desc with
    | Pstr_value (_, vbs) -> List.iter record_top_level vbs
    | _ -> ());
    super.structure_item it si
  in
  let iter = { super with expr; value_binding; structure_item } in
  iter.structure iter str;
  (* R5: encoder/decoder symmetry by name. *)
  let names = List.map fst !top_names in
  let has n = List.exists (String.equal n) names in
  List.iter
    (fun (name, loc) ->
      let check ~w ~r =
        if starts_with ~prefix:w name then begin
          let suffix =
            String.sub name (String.length w)
              (String.length name - String.length w)
          in
          let want = r ^ suffix in
          if not (has want) then
            let p = (loc : Location.t).loc_start in
            findings :=
              { rule = R5; file = path; line = p.pos_lnum;
                col = p.pos_cnum - p.pos_bol;
                msg =
                  Printf.sprintf
                    "encoder `%s` has no matching decoder `%s` in this \
                     module" name want }
              :: !findings
        end
      in
      if List.mem R5 applicable then begin
        check ~w:"write_" ~r:"read_";
        check ~w:"put_" ~r:"get_"
      end)
    (List.rev !top_names);
  (* Second pass: the R6-R9 dataflow engine, sharing scope and
     [@fsynlint.allow] resolution with the syntactic rules above. *)
  let dataflow =
    Dataflow.scan_structure
      { Dataflow.file = path;
        enabled = (fun r -> List.exists (rule_equal r) applicable);
        allows = allowed_rules_of_attrs;
        decode_module = List.exists (String.equal path) decode_modules;
        conn_io_ok = String.equal path "lib/server/conn.ml" }
      str
  in
  dataflow @ !findings

(* R4 plus parse validation for an interface: nothing inside an [.mli]
   can violate R1–R3 (no expressions), but it must parse. *)
let scan_ml_file path =
  let str = parse_implementation path in
  let ast_findings = scan_structure ~path str in
  let r4 =
    if List.mem R4 (rules_for path) && not (Sys.file_exists (path ^ "i")) then
      [ { rule = R4; file = path; line = 1; col = 0;
          msg =
            Printf.sprintf "module has no interface — add %si to pin its \
                            public surface" path } ]
    else []
  in
  r4 @ ast_findings

let scan_file path =
  let path = normalize path in
  if Filename.check_suffix path ".mli" then begin
    ignore (parse_interface path);
    []
  end
  else List.sort finding_compare (scan_ml_file path)

(* ------------------------------------------------------------------ *)
(* File discovery                                                      *)
(* ------------------------------------------------------------------ *)

let rec walk dir acc =
  if not (Sys.file_exists dir) then acc
  else
    Array.fold_left
      (fun acc entry ->
        let p = Filename.concat dir entry in
        if Sys.is_directory p then
          if String.equal entry "_build" || String.equal entry ".git" then acc
          else walk p acc
        else if
          Filename.check_suffix p ".ml" || Filename.check_suffix p ".mli"
        then p :: acc
        else acc)
      acc
      (let entries = Sys.readdir dir in
       Array.sort String.compare entries;
       entries)

let discover roots =
  List.concat_map
    (fun root ->
      let root = normalize root in
      if Sys.file_exists root && not (Sys.is_directory root) then [ root ]
      else List.rev (walk root []))
    roots

let scan roots =
  discover roots |> List.concat_map scan_file |> List.sort finding_compare

(* ------------------------------------------------------------------ *)
(* Baseline ratchet                                                    *)
(* ------------------------------------------------------------------ *)

(* The baseline records known debt as one line per (rule, file):

     R2 lib/core/oneway.ml 3

   Comparing a fresh scan against it yields three error classes, all
   fatal in check mode:

   - a (rule, file) count above its baseline → new violations;
   - a (rule, file) not in the baseline at all → new violations;
   - a baseline count above the current count → the debt shrank but the
     baseline was not regenerated; refresh it so the improvement is
     locked in (this is what makes the ratchet one-way).  *)

module Key = struct
  type t = rule * string

  let compare (r1, f1) (r2, f2) =
    match String.compare (rule_name r1) (rule_name r2) with
    | 0 -> String.compare f1 f2
    | c -> c
end

module KeyMap = Map.Make (Key)

let counts findings =
  List.fold_left
    (fun m f ->
      KeyMap.update (f.rule, f.file)
        (fun v -> Some (1 + Option.value v ~default:0))
        m)
    KeyMap.empty findings

let parse_baseline_line ~file lineno line =
  let line = String.trim line in
  if String.equal line "" || line.[0] = '#' then None
  else
    match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
    | [ rule; path; count ] -> (
        match (rule_of_name rule, int_of_string_opt count) with
        | Some r, Some n when n > 0 -> Some ((r, path), n)
        | _ ->
            raise
              (Parse_error
                 (Printf.sprintf "%s:%d: malformed baseline entry %S" file
                    lineno line)))
    | _ ->
        raise
          (Parse_error
             (Printf.sprintf "%s:%d: malformed baseline entry %S" file lineno
                line))

let read_baseline file =
  if not (Sys.file_exists file) then KeyMap.empty
  else begin
    let ic = open_in file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go lineno acc =
          match input_line ic with
          | exception End_of_file -> acc
          | line -> (
              match parse_baseline_line ~file lineno line with
              | None -> go (lineno + 1) acc
              | Some (k, n) -> go (lineno + 1) (KeyMap.add k n acc))
        in
        go 1 KeyMap.empty)
  end

let render_baseline counts =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    "# fsynlint baseline — the ratchet of known violations.\n\
     # One line per (rule, file): `RULE path count`.\n\
     # New violations fail the build; when debt is paid down, regenerate\n\
     # with `dune exec tools/lint/fsynlint.exe -- --update-baseline` so\n\
     # the count can only shrink.  See DESIGN.md §8.\n";
  KeyMap.iter
    (fun (r, f) n ->
      Buffer.add_string b (Printf.sprintf "%s %s %d\n" (rule_name r) f n))
    counts;
  Buffer.contents b

type verdict = {
  new_violations : (rule * string * finding list) list;
      (* (rule, file, the findings) where count exceeds the baseline *)
  stale : (rule * string * int * int) list;
      (* (rule, file, baseline, current) where the baseline overstates *)
}

let clean v = v.new_violations = [] && v.stale = []

let check ~baseline findings =
  let cur = counts findings in
  let keys =
    KeyMap.union
      (fun _ a _ -> Some a)
      (KeyMap.map (fun _ -> ()) cur)
      (KeyMap.map (fun _ -> ()) baseline)
    |> KeyMap.bindings |> List.map fst
  in
  let v =
    List.fold_left
      (fun v k ->
        let r, file = k in
        let c = Option.value (KeyMap.find_opt k cur) ~default:0 in
        let b = Option.value (KeyMap.find_opt k baseline) ~default:0 in
        if c > b then
          let fs =
            List.filter
              (fun f -> rule_equal f.rule r && String.equal f.file file)
              findings
          in
          { v with new_violations = (r, file, fs) :: v.new_violations }
        else if c < b then { v with stale = (r, file, b, c) :: v.stale }
        else v)
      { new_violations = []; stale = [] }
      keys
  in
  { new_violations = List.rev v.new_violations; stale = List.rev v.stale }

let growth ~baseline findings =
  (* (rule, file) keys whose current count exceeds the baseline; used to
     refuse `--update-baseline` runs that would grow the debt. *)
  KeyMap.fold
    (fun k c acc ->
      let b = Option.value (KeyMap.find_opt k baseline) ~default:0 in
      if c > b then k :: acc else acc)
    (counts findings) []
  |> List.rev

(* ------------------------------------------------------------------ *)
(* JSON report (CI artifact)                                           *)
(* ------------------------------------------------------------------ *)

(* The schema is deliberately tiny — a top-level object with a version
   tag, the full findings list, and (when a ratchet verdict is
   attached) the delta CI failed on.  Both the emitter and the parser
   are hand-rolled so the lint tool keeps its zero-dependency rule. *)

let json_schema = "fsynlint-findings/1"

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let finding_to_json f =
  Printf.sprintf
    "{\"rule\":\"%s\",\"file\":\"%s\",\"line\":%d,\"col\":%d,\"msg\":\"%s\"}"
    (rule_name f.rule) (json_escape f.file) f.line f.col (json_escape f.msg)

let json_report ?verdict findings =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "{\"schema\":\"%s\",\"findings\":[" json_schema);
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (finding_to_json f))
    findings;
  Buffer.add_char b ']';
  (match verdict with
  | None -> ()
  | Some v ->
      Buffer.add_string b ",\"new\":[";
      let first = ref true in
      List.iter
        (fun (_, _, fs) ->
          List.iter
            (fun f ->
              if not !first then Buffer.add_char b ',';
              first := false;
              Buffer.add_string b (finding_to_json f))
            fs)
        v.new_violations;
      Buffer.add_string b "],\"stale\":[";
      List.iteri
        (fun i (r, file, base, cur) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf
               "{\"rule\":\"%s\",\"file\":\"%s\",\"baseline\":%d,\
                \"current\":%d}"
               (rule_name r) (json_escape file) base cur))
        v.stale;
      Buffer.add_char b ']');
  Buffer.add_string b "}\n";
  Buffer.contents b

(* Minimal recursive-descent parser for exactly the values the emitter
   produces (strings, integers, arrays, objects).  Anything else is a
   Parse_error — the round-trip test is the contract. *)

type json =
  | Jstr of string
  | Jint of int
  | Jlist of json list
  | Jobj of (string * json) list

let parse_json s =
  let pos = ref 0 in
  let len = String.length s in
  let fail msg =
    raise (Parse_error (Printf.sprintf "json:%d: %s" !pos msg))
  in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when Char.equal c c' -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 32 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> advance (); Buffer.add_char b '"'; go ()
          | Some '\\' -> advance (); Buffer.add_char b '\\'; go ()
          | Some '/' -> advance (); Buffer.add_char b '/'; go ()
          | Some 'n' -> advance (); Buffer.add_char b '\n'; go ()
          | Some 'r' -> advance (); Buffer.add_char b '\r'; go ()
          | Some 't' -> advance (); Buffer.add_char b '\t'; go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > len then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              (match int_of_string_opt ("0x" ^ hex) with
              | Some code when code < 0x80 ->
                  Buffer.add_char b (Char.chr code)
              | Some _ -> fail "non-ASCII \\u escape unsupported"
              | None -> fail "malformed \\u escape");
              go ()
          | _ -> fail "unknown escape")
      | Some c ->
          advance ();
          Buffer.add_char b c;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_int () =
    let start = !pos in
    (match peek () with Some '-' -> advance () | _ -> ());
    let rec digits () =
      match peek () with
      | Some '0' .. '9' ->
          advance ();
          digits ()
      | _ -> ()
    in
    digits ();
    match int_of_string_opt (String.sub s start (!pos - start)) with
    | Some n -> n
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Jstr (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Jobj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected , or } in object"
          in
          Jobj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Jlist []
        end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected , or ] in array"
          in
          Jlist (elems [])
        end
    | Some ('-' | '0' .. '9') -> Jint (parse_int ())
    | _ -> fail "expected a value"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then fail "trailing garbage";
  v

let findings_of_json text =
  let fail msg = raise (Parse_error ("json: " ^ msg)) in
  let obj = parse_json text in
  match obj with
  | Jobj members -> (
      (match List.assoc_opt "schema" members with
      | Some (Jstr s) when String.equal s json_schema -> ()
      | Some (Jstr s) ->
          fail (Printf.sprintf "unknown schema %S (want %S)" s json_schema)
      | _ -> fail "missing schema tag");
      match List.assoc_opt "findings" members with
      | Some (Jlist fs) ->
          List.map
            (fun f ->
              match f with
              | Jobj m -> (
                  let str k =
                    match List.assoc_opt k m with
                    | Some (Jstr s) -> s
                    | _ -> fail (Printf.sprintf "finding lacks string %S" k)
                  in
                  let int k =
                    match List.assoc_opt k m with
                    | Some (Jint n) -> n
                    | _ -> fail (Printf.sprintf "finding lacks int %S" k)
                  in
                  match rule_of_name (str "rule") with
                  | Some rule ->
                      { rule; file = str "file"; line = int "line";
                        col = int "col"; msg = str "msg" }
                  | None ->
                      fail (Printf.sprintf "unknown rule %S" (str "rule")))
              | _ -> fail "finding is not an object")
            fs
      | _ -> fail "missing findings array")
  | _ -> fail "top level is not an object"
