(* fsynlint — repo-specific static analysis for the fsync code base.

   The sync protocols only work when both endpoints compute byte-identical
   hashes, maps and wire encodings.  A single use of OCaml's polymorphic
   [=] / [compare] / [Hashtbl.hash] on a protocol type, or an untyped
   [failwith] escaping a decode path, silently breaks the guarantees the
   typed-error layer ({!Fsync_core.Error}) provides.  These invariants are
   machine-enforced here rather than left to convention.

   The tool parses every [.ml]/[.mli] under the requested roots with the
   compiler's own front end ([Parse] + [Ast_iterator] from
   compiler-libs.common — no new dependencies) and applies the rules
   below.  Findings are diffed against a checked-in baseline — the
   ratchet: pre-existing debt is recorded per (rule, file); new
   violations fail the build; fixing a violation makes the recorded
   baseline stale, which also fails until the baseline is regenerated —
   so the baseline can only shrink. *)

(* ------------------------------------------------------------------ *)
(* Rules                                                               *)
(* ------------------------------------------------------------------ *)

type rule = R1 | R2 | R3 | R4 | R5

let all_rules = [ R1; R2; R3; R4; R5 ]

let rule_name = function
  | R1 -> "R1"
  | R2 -> "R2"
  | R3 -> "R3"
  | R4 -> "R4"
  | R5 -> "R5"

let rule_of_name s =
  match String.lowercase_ascii s with
  | "r1" -> Some R1
  | "r2" -> Some R2
  | "r3" -> Some R3
  | "r4" -> Some R4
  | "r5" -> Some R5
  | _ -> None

let explain = function
  | R1 ->
      "R1 polymorphic-comparison: no `=`, `<>`, `compare` or `Hashtbl.hash` \
       in wire-sensitive libraries (core, net, reconcile, hashing, rsync, \
       delta).  Polymorphic comparison walks runtime representations, so \
       its verdict depends on in-memory layout rather than the wire \
       encoding both endpoints agreed on, and it is also slower than the \
       monomorphic equivalent on hot paths.  Use `String.equal`, \
       `Int.equal`, `Option.is_some`, a dedicated `equal`/`compare` for \
       the type, or pattern matching.  Comparisons against immediate \
       literals (`= 0`, `<> '\\n'`, `= true`, `= []`, `= ()`) are exempt: \
       the compiler specializes them and no protocol type is involved."
  | R2 ->
      "R2 crash-point: no `failwith`, `invalid_arg`, `assert false`, \
       `List.hd` or `Option.get` in library code.  Malformed or truncated \
       input reaching a decode/receive path must surface as a typed \
       `Fsync_core.Error`, never as an untyped exception that callers \
       cannot distinguish from a bug."
  | R3 ->
      "R3 direct-output: no `Printf.printf`, `print_string`, `prerr_*` \
       and friends in `lib/`.  Libraries report through `Fsync_net.Trace` \
       (or return data); only binaries talk to stdout/stderr."
  | R4 ->
      "R4 missing-interface: every `lib/**/*.ml` has a corresponding \
       `.mli`.  An unconstrained module leaks representation details the \
       wire format must not depend on."
  | R5 ->
      "R5 codec-asymmetry: every top-level `write_x`/`put_x` in a \
       wire-sensitive library has a matching `read_x`/`get_x` in the same \
       module.  An encoder without its decoder is either dead weight or a \
       message the peer cannot parse."

(* ------------------------------------------------------------------ *)
(* Findings                                                            *)
(* ------------------------------------------------------------------ *)

type finding = { rule : rule; file : string; line : int; col : int; msg : string }

let finding_compare a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> (
          match Int.compare a.col b.col with
          | 0 -> String.compare (rule_name a.rule) (rule_name b.rule)
          | c -> c)
      | c -> c)
  | c -> c

let pp_finding ppf f =
  Format.fprintf ppf "%s:%d:%d: [%s] %s" f.file f.line f.col (rule_name f.rule)
    f.msg

(* ------------------------------------------------------------------ *)
(* Scope: which rules apply to which paths                             *)
(* ------------------------------------------------------------------ *)

(* Libraries whose values travel on (or directly shape) the wire. *)
let wire_sensitive_dirs =
  [ "lib/core"; "lib/net"; "lib/reconcile"; "lib/hashing"; "lib/rsync";
    "lib/delta"; "lib/server" ]

let normalize path =
  (* The tool is run from the repository root; strip a leading "./". *)
  if String.length path > 2 && String.equal (String.sub path 0 2) "./" then
    String.sub path 2 (String.length path - 2)
  else path

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let is_wire_sensitive path =
  List.exists (fun d -> starts_with ~prefix:(d ^ "/") path) wire_sensitive_dirs

let in_lib path = starts_with ~prefix:"lib/" path

let rules_for path =
  (if is_wire_sensitive path then [ R1; R5 ] else [])
  @ if in_lib path then [ R2; R3; R4 ] else []

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let with_lexbuf path f =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lexbuf = Lexing.from_channel ic in
      Lexing.set_filename lexbuf path;
      try f lexbuf
      with exn ->
        let detail =
          match Location.error_of_exn exn with
          | Some (`Ok (e : Location.error)) ->
              Format.asprintf "%a" Location.print_report e
          | _ -> Printexc.to_string exn
        in
        raise (Parse_error (Printf.sprintf "%s: %s" path detail)))

let parse_implementation path = with_lexbuf path Parse.implementation
let parse_interface path = with_lexbuf path Parse.interface

(* ------------------------------------------------------------------ *)
(* AST predicates                                                      *)
(* ------------------------------------------------------------------ *)

open Parsetree

(* R1: polymorphic comparison entry points.  [Stdlib.] qualification is
   recognized so aliasing does not dodge the rule. *)
let r1_ident (id : Longident.t) =
  match id with
  | Lident (("=" | "<>" | "compare") as n)
  | Ldot (Lident "Stdlib", (("=" | "<>" | "compare") as n)) ->
      Some n
  | Ldot (Lident "Hashtbl", "hash")
  | Ldot (Ldot (Lident "Stdlib", "Hashtbl"), "hash") ->
      Some "Hashtbl.hash"
  | _ -> None

(* Comparing against an immediate literal ([x = 0], [c <> '\n'],
   [flag = true], [l = []], [u = ()]) is specialized by the compiler and
   cannot involve a protocol type's structure; exempting it keeps the
   rule focused on real determinism and perf hazards. *)
let immediate_literal (e : expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_integer _ | Pconst_char _) -> true
  | Pexp_construct ({ txt = Lident ("true" | "false" | "()" | "[]"); _ }, None)
    ->
      true
  | _ -> false

(* R2: untyped crash points. *)
let r2_ident (id : Longident.t) =
  match id with
  | Lident (("failwith" | "invalid_arg") as n)
  | Ldot (Lident "Stdlib", (("failwith" | "invalid_arg") as n)) ->
      Some n
  | Ldot (Lident "List", "hd") -> Some "List.hd"
  | Ldot (Lident "Option", "get") -> Some "Option.get"
  | _ -> None

(* R3: direct console output. *)
let r3_ident (id : Longident.t) =
  let chan_fn n =
    match n with
    | "print_string" | "print_endline" | "print_newline" | "print_char"
    | "print_int" | "print_float" | "print_bytes" | "prerr_string"
    | "prerr_endline" | "prerr_newline" | "prerr_char" | "prerr_int"
    | "prerr_float" | "prerr_bytes" ->
        true
    | _ -> false
  in
  match id with
  | Lident n when chan_fn n -> Some n
  | Ldot (Lident "Stdlib", n) when chan_fn n -> Some ("Stdlib." ^ n)
  | Ldot (Lident (("Printf" | "Format") as m), (("printf" | "eprintf") as n))
    ->
      Some (m ^ "." ^ n)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Suppression                                                         *)
(* ------------------------------------------------------------------ *)

(* A deliberate, reviewed exception is annotated at the source:

     let print ch = print_string (render ch) [@@fsynlint.allow r3]

   The payload is a space-separated list of rule names.  Suppressions
   scope over the annotated binding or expression only, and are the
   escape hatch for sanctioned sinks (e.g. [Trace.print] is exactly the
   place where library output is allowed to reach stdout). *)
let allowed_rules_of_attrs (attrs : attributes) =
  List.concat_map
    (fun (a : attribute) ->
      if not (String.equal a.attr_name.txt "fsynlint.allow") then []
      else
        match a.attr_payload with
        | PStr
            [ { pstr_desc =
                  Pstr_eval
                    ( { pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ },
                      _ );
                _ } ] ->
            String.split_on_char ' ' s
            |> List.filter_map rule_of_name
        | _ -> [])
    attrs

(* ------------------------------------------------------------------ *)
(* The scanner                                                         *)
(* ------------------------------------------------------------------ *)

let scan_structure ~path (str : structure) =
  let applicable = rules_for path in
  let findings = ref [] in
  let suppressed = ref [] in
  let add rule (loc : Location.t) msg =
    if List.mem rule applicable && not (List.mem rule !suppressed) then
      let p = loc.loc_start in
      findings :=
        { rule; file = path; line = p.pos_lnum;
          col = p.pos_cnum - p.pos_bol; msg }
        :: !findings
  in
  let with_allows attrs k =
    match allowed_rules_of_attrs attrs with
    | [] -> k ()
    | allows ->
        let saved = !suppressed in
        suppressed := allows @ saved;
        Fun.protect ~finally:(fun () -> suppressed := saved) k
  in
  (* Top-level value names, for the R5 codec-symmetry check. *)
  let top_names = ref [] in
  let record_top_level (vb : value_binding) =
    match vb.pvb_pat.ppat_desc with
    | Ppat_var { txt; _ } -> top_names := (txt, vb.pvb_pat.ppat_loc) :: !top_names
    | _ -> ()
  in
  let super = Ast_iterator.default_iterator in
  let expr (it : Ast_iterator.iterator) (e : expression) =
    with_allows e.pexp_attributes @@ fun () ->
    match e.pexp_desc with
    | Pexp_apply
        ({ pexp_desc = Pexp_ident { txt; loc }; _ }, args)
      when r1_ident txt <> None
           || r2_ident txt <> None
           || r3_ident txt <> None -> (
        (match (r1_ident txt, args) with
        | Some (("=" | "<>") as n), [ (_, a); (_, b) ]
          when immediate_literal a || immediate_literal b ->
            ignore n (* literal comparison: exempt *)
        | Some (("=" | "<>") as n), _ ->
            add R1 loc
              (Printf.sprintf
                 "polymorphic `%s` — use a monomorphic equality \
                  (String.equal, Int.equal, a dedicated `equal`, or a match)"
                 n)
        | Some "compare", _ ->
            add R1 loc
              "polymorphic `compare` — use String.compare / Int.compare / a \
               dedicated `compare` for the type"
        | Some n, _ ->
            add R1 loc
              (Printf.sprintf
                 "`%s` mixes representation into the hash — use the \
                  repo's deterministic hash functions" n)
        | None, _ -> ());
        (match r2_ident txt with
        | Some n ->
            add R2 loc
              (Printf.sprintf
                 "`%s` is an untyped crash point — fail through \
                  Fsync_core.Error instead" n)
        | None -> ());
        (match r3_ident txt with
        | Some n ->
            add R3 loc
              (Printf.sprintf
                 "`%s` writes directly to the console — route library \
                  output through Trace" n)
        | None -> ());
        (* The callee ident was judged above; only the operands recurse. *)
        List.iter (fun (_, a) -> it.expr it a) args)
    | Pexp_ident { txt; loc } ->
        (match r1_ident txt with
        | Some n ->
            add R1 loc
              (Printf.sprintf
                 "polymorphic `%s` used as a value — pass a monomorphic \
                  function instead" n)
        | None -> ());
        (match r2_ident txt with
        | Some n ->
            add R2 loc
              (Printf.sprintf
                 "`%s` is an untyped crash point — fail through \
                  Fsync_core.Error instead" n)
        | None -> ());
        (match r3_ident txt with
        | Some n ->
            add R3 loc
              (Printf.sprintf
                 "`%s` writes directly to the console — route library \
                  output through Trace" n)
        | None -> ())
    | Pexp_assert
        { pexp_desc = Pexp_construct ({ txt = Lident "false"; _ }, None); _ }
      ->
        add R2 e.pexp_loc
          "`assert false` is an untyped crash point — fail through \
           Fsync_core.Error instead"
    | _ -> super.expr it e
  in
  let value_binding (it : Ast_iterator.iterator) (vb : value_binding) =
    with_allows vb.pvb_attributes @@ fun () -> super.value_binding it vb
  in
  let structure_item (it : Ast_iterator.iterator) (si : structure_item) =
    (match si.pstr_desc with
    | Pstr_value (_, vbs) -> List.iter record_top_level vbs
    | _ -> ());
    super.structure_item it si
  in
  let iter = { super with expr; value_binding; structure_item } in
  iter.structure iter str;
  (* R5: encoder/decoder symmetry by name. *)
  let names = List.map fst !top_names in
  let has n = List.exists (String.equal n) names in
  List.iter
    (fun (name, loc) ->
      let check ~w ~r =
        if starts_with ~prefix:w name then begin
          let suffix =
            String.sub name (String.length w)
              (String.length name - String.length w)
          in
          let want = r ^ suffix in
          if not (has want) then
            let p = (loc : Location.t).loc_start in
            findings :=
              { rule = R5; file = path; line = p.pos_lnum;
                col = p.pos_cnum - p.pos_bol;
                msg =
                  Printf.sprintf
                    "encoder `%s` has no matching decoder `%s` in this \
                     module" name want }
              :: !findings
        end
      in
      if List.mem R5 applicable then begin
        check ~w:"write_" ~r:"read_";
        check ~w:"put_" ~r:"get_"
      end)
    (List.rev !top_names);
  !findings

(* R4 plus parse validation for an interface: nothing inside an [.mli]
   can violate R1–R3 (no expressions), but it must parse. *)
let scan_ml_file path =
  let str = parse_implementation path in
  let ast_findings = scan_structure ~path str in
  let r4 =
    if List.mem R4 (rules_for path) && not (Sys.file_exists (path ^ "i")) then
      [ { rule = R4; file = path; line = 1; col = 0;
          msg =
            Printf.sprintf "module has no interface — add %si to pin its \
                            public surface" path } ]
    else []
  in
  r4 @ ast_findings

let scan_file path =
  let path = normalize path in
  if Filename.check_suffix path ".mli" then begin
    ignore (parse_interface path);
    []
  end
  else List.sort finding_compare (scan_ml_file path)

(* ------------------------------------------------------------------ *)
(* File discovery                                                      *)
(* ------------------------------------------------------------------ *)

let rec walk dir acc =
  if not (Sys.file_exists dir) then acc
  else
    Array.fold_left
      (fun acc entry ->
        let p = Filename.concat dir entry in
        if Sys.is_directory p then
          if String.equal entry "_build" || String.equal entry ".git" then acc
          else walk p acc
        else if
          Filename.check_suffix p ".ml" || Filename.check_suffix p ".mli"
        then p :: acc
        else acc)
      acc
      (let entries = Sys.readdir dir in
       Array.sort String.compare entries;
       entries)

let discover roots =
  List.concat_map
    (fun root ->
      let root = normalize root in
      if Sys.file_exists root && not (Sys.is_directory root) then [ root ]
      else List.rev (walk root []))
    roots

let scan roots =
  discover roots |> List.concat_map scan_file |> List.sort finding_compare

(* ------------------------------------------------------------------ *)
(* Baseline ratchet                                                    *)
(* ------------------------------------------------------------------ *)

(* The baseline records known debt as one line per (rule, file):

     R2 lib/core/oneway.ml 3

   Comparing a fresh scan against it yields three error classes, all
   fatal in check mode:

   - a (rule, file) count above its baseline → new violations;
   - a (rule, file) not in the baseline at all → new violations;
   - a baseline count above the current count → the debt shrank but the
     baseline was not regenerated; refresh it so the improvement is
     locked in (this is what makes the ratchet one-way).  *)

module Key = struct
  type t = rule * string

  let compare (r1, f1) (r2, f2) =
    match String.compare (rule_name r1) (rule_name r2) with
    | 0 -> String.compare f1 f2
    | c -> c
end

module KeyMap = Map.Make (Key)

let counts findings =
  List.fold_left
    (fun m f ->
      KeyMap.update (f.rule, f.file)
        (fun v -> Some (1 + Option.value v ~default:0))
        m)
    KeyMap.empty findings

let parse_baseline_line ~file lineno line =
  let line = String.trim line in
  if String.equal line "" || line.[0] = '#' then None
  else
    match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
    | [ rule; path; count ] -> (
        match (rule_of_name rule, int_of_string_opt count) with
        | Some r, Some n when n > 0 -> Some ((r, path), n)
        | _ ->
            raise
              (Parse_error
                 (Printf.sprintf "%s:%d: malformed baseline entry %S" file
                    lineno line)))
    | _ ->
        raise
          (Parse_error
             (Printf.sprintf "%s:%d: malformed baseline entry %S" file lineno
                line))

let read_baseline file =
  if not (Sys.file_exists file) then KeyMap.empty
  else begin
    let ic = open_in file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go lineno acc =
          match input_line ic with
          | exception End_of_file -> acc
          | line -> (
              match parse_baseline_line ~file lineno line with
              | None -> go (lineno + 1) acc
              | Some (k, n) -> go (lineno + 1) (KeyMap.add k n acc))
        in
        go 1 KeyMap.empty)
  end

let render_baseline counts =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    "# fsynlint baseline — the ratchet of known violations.\n\
     # One line per (rule, file): `RULE path count`.\n\
     # New violations fail the build; when debt is paid down, regenerate\n\
     # with `dune exec tools/lint/fsynlint.exe -- --update-baseline` so\n\
     # the count can only shrink.  See DESIGN.md §8.\n";
  KeyMap.iter
    (fun (r, f) n ->
      Buffer.add_string b (Printf.sprintf "%s %s %d\n" (rule_name r) f n))
    counts;
  Buffer.contents b

type verdict = {
  new_violations : (rule * string * finding list) list;
      (* (rule, file, the findings) where count exceeds the baseline *)
  stale : (rule * string * int * int) list;
      (* (rule, file, baseline, current) where the baseline overstates *)
}

let clean v = v.new_violations = [] && v.stale = []

let rule_equal a b = String.equal (rule_name a) (rule_name b)

let check ~baseline findings =
  let cur = counts findings in
  let keys =
    KeyMap.union
      (fun _ a _ -> Some a)
      (KeyMap.map (fun _ -> ()) cur)
      (KeyMap.map (fun _ -> ()) baseline)
    |> KeyMap.bindings |> List.map fst
  in
  let v =
    List.fold_left
      (fun v k ->
        let r, file = k in
        let c = Option.value (KeyMap.find_opt k cur) ~default:0 in
        let b = Option.value (KeyMap.find_opt k baseline) ~default:0 in
        if c > b then
          let fs =
            List.filter
              (fun f -> rule_equal f.rule r && String.equal f.file file)
              findings
          in
          { v with new_violations = (r, file, fs) :: v.new_violations }
        else if c < b then { v with stale = (r, file, b, c) :: v.stale }
        else v)
      { new_violations = []; stale = [] }
      keys
  in
  { new_violations = List.rev v.new_violations; stale = List.rev v.stale }

let growth ~baseline findings =
  (* (rule, file) keys whose current count exceeds the baseline; used to
     refuse `--update-baseline` runs that would grow the debt. *)
  KeyMap.fold
    (fun k c acc ->
      let b = Option.value (KeyMap.find_opt k baseline) ~default:0 in
      if c > b then k :: acc else acc)
    (counts findings) []
  |> List.rev
