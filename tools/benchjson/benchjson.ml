(* benchjson — validator for the machine-readable JSON exports.

   CI runs the QUICK bench, which writes BENCH_metadata.json and
   BENCH_collection.json, then calls this on both; the serve-smoke
   harness also feeds it the daemon's admin "status" reply.  Each file
   is parsed with the same strict reader the exporters use
   (Fsync_obs.Json) and dispatched on its "schema" field:
   fsync-bench/1 (header fields, a non-empty [records] array, required
   typed fields per record) or fsyncd-status/1 (uptime, session
   aggregates, one well-typed entry per active session).  Any failure
   exits non-zero so a malformed export breaks the build instead of
   silently producing an unusable artifact. *)

module Json = Fsync_obs.Json

let errors = ref 0

let fail path fmt =
  Printf.ksprintf
    (fun msg ->
      incr errors;
      Printf.eprintf "benchjson: %s: %s\n" path msg)
    fmt

let check_record path i r =
  let where = Printf.sprintf "records[%d]" i in
  let str name =
    match Option.bind (Json.member name r) Json.to_string_opt with
    | Some _ -> ()
    | None -> fail path "%s: missing string field %S" where name
  in
  let num name =
    match Option.bind (Json.member name r) Json.to_float_opt with
    | Some v when v >= 0.0 -> ()
    | Some _ -> fail path "%s: field %S is negative" where name
    | None -> fail path "%s: missing numeric field %S" where name
  in
  str "scenario";
  str "config";
  num "bytes_up";
  num "bytes_down";
  num "rounds";
  num "elapsed_s";
  num "wall_ns";
  match Json.member "counters" r with
  | Some (Json.Obj kvs) ->
      List.iter
        (fun (name, v) ->
          match Json.to_int_opt v with
          | Some _ -> ()
          | None -> fail path "%s: counter %S is not an integer" where name)
        kvs
  | Some _ -> fail path "%s: \"counters\" is not an object" where
  | None -> fail path "%s: missing field \"counters\"" where

let check_bench path doc =
  (match Option.bind (Json.member "scale" doc) Json.to_string_opt with
  | Some _ -> ()
  | None -> fail path "missing \"scale\" field");
  match Option.bind (Json.member "records" doc) Json.to_list_opt with
  | Some [] -> fail path "\"records\" is empty"
  | Some records ->
      List.iteri (check_record path) records;
      if !errors = 0 then
        Printf.printf "benchjson: %s: ok (%d records)\n" path
          (List.length records)
  | None -> fail path "missing \"records\" array"

(* fsync-swarm/1 — the N-peer anti-entropy matrix (bench swarm).  Each
   cell writes one "gossip" and one "all-pairs" record; gossip records
   carry their bytes ratio against the baseline, and the PR's acceptance
   bar — gossip <= 50% of all-pairs at 1% change rate — is enforced
   here so a regression breaks the build. *)

let check_swarm_record path i r =
  let where = Printf.sprintf "records[%d]" i in
  let num name =
    match Option.bind (Json.member name r) Json.to_float_opt with
    | Some v when v >= 0.0 -> Some v
    | Some _ ->
        fail path "%s: field %S is negative" where name;
        None
    | None ->
        fail path "%s: missing numeric field %S" where name;
        None
  in
  let mode =
    match Option.bind (Json.member "mode" r) Json.to_string_opt with
    | Some ("gossip" | "all-pairs") as m -> m
    | Some other ->
        fail path "%s: unknown mode %S" where other;
        None
    | None ->
        fail path "%s: missing string field \"mode\"" where;
        None
  in
  ignore (num "peers");
  let rate = num "change_rate" in
  ignore (num "rounds");
  ignore (num "sessions");
  ignore (num "bytes");
  ignore (num "conflicts");
  (match Json.member "counters" r with
  | Some (Json.Obj _) -> ()
  | Some _ -> fail path "%s: \"counters\" is not an object" where
  | None -> fail path "%s: missing field \"counters\"" where);
  match mode with
  | Some "gossip" -> (
      match
        (rate, Option.bind (Json.member "baseline_ratio" r) Json.to_float_opt)
      with
      | _, None ->
          fail path "%s: gossip record lacks \"baseline_ratio\"" where
      | Some rate, Some ratio when rate <= 0.011 && ratio > 0.5 ->
          fail path
            "%s: gossip bytes are %.0f%% of the all-pairs baseline at \
             change rate %.3f (acceptance bar: <= 50%%)"
            where (100.0 *. ratio) rate
      | _ -> ())
  | _ -> ()

let check_swarm path doc =
  (match Option.bind (Json.member "scale" doc) Json.to_string_opt with
  | Some _ -> ()
  | None -> fail path "missing \"scale\" field");
  match Option.bind (Json.member "records" doc) Json.to_list_opt with
  | Some [] -> fail path "\"records\" is empty"
  | Some records ->
      List.iteri (check_swarm_record path) records;
      if !errors = 0 then
        Printf.printf "benchjson: %s: ok (%d records)\n" path
          (List.length records)
  | None -> fail path "missing \"records\" array"

(* fsyncd-status/1 — the daemon admin socket's "status" reply. *)

let check_active_session path i r =
  let where = Printf.sprintf "active_sessions[%d]" i in
  let str name =
    match Option.bind (Json.member name r) Json.to_string_opt with
    | Some _ -> ()
    | None -> fail path "%s: missing string field %S" where name
  in
  let num name =
    match Option.bind (Json.member name r) Json.to_float_opt with
    | Some v when v >= 0.0 -> ()
    | Some _ -> fail path "%s: field %S is negative" where name
    | None -> fail path "%s: missing numeric field %S" where name
  in
  str "peer";
  str "phase";
  num "age_s";
  num "idle_s";
  num "bytes_in";
  num "bytes_out"

let check_status path doc =
  let num name =
    match Option.bind (Json.member name doc) Json.to_float_opt with
    | Some v when v >= 0.0 -> ()
    | Some _ -> fail path "field %S is negative" name
    | None -> fail path "missing numeric field %S" name
  in
  num "uptime_s";
  num "files";
  (match Json.member "sessions" doc with
  | Some sessions ->
      List.iter
        (fun name ->
          match
            Option.bind (Json.member name sessions) Json.to_int_opt
          with
          | Some v when v >= 0 -> ()
          | Some _ -> fail path "sessions.%s is negative" name
          | None -> fail path "sessions: missing integer field %S" name)
        [ "active"; "accepted"; "completed"; "failed"; "timeouts"; "shed" ]
  | None -> fail path "missing \"sessions\" object");
  match Option.bind (Json.member "active_sessions" doc) Json.to_list_opt with
  | Some rows ->
      List.iteri (check_active_session path) rows;
      if !errors = 0 then
        Printf.printf "benchjson: %s: ok (%d active session(s))\n" path
          (List.length rows)
  | None -> fail path "missing \"active_sessions\" array"

let validate path =
  if not (Sys.file_exists path) then fail path "file not found"
  else begin
    let ic = open_in_bin path in
    let contents =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Json.parse (String.trim contents) with
    | Error e -> fail path "JSON parse error: %s" e
    | Ok doc -> (
        match Option.bind (Json.member "schema" doc) Json.to_string_opt with
        | Some "fsync-bench/1" -> check_bench path doc
        | Some "fsync-swarm/1" -> check_swarm path doc
        | Some "fsyncd-status/1" -> check_status path doc
        | Some other -> fail path "unknown schema %S" other
        | None -> fail path "missing \"schema\" field")
  end

let () =
  let paths =
    match Array.to_list Sys.argv with
    | [] | [ _ ] ->
        prerr_endline "usage: benchjson FILE.json [FILE.json ...]";
        exit 2
    | _ :: rest -> rest
  in
  List.iter validate paths;
  if !errors > 0 then exit 1
