(* fsync — command-line front end.

   Subcommands:
     sync     simulate synchronizing one file (old -> new), report costs
     dir      synchronize a directory tree against another, report costs
     delta    write a delta of TARGET relative to REFERENCE
     patch    apply a delta to REFERENCE
     rsync    run the rsync baseline on a file pair, report costs
     gen      generate a synthetic dataset onto disk
     serve    run the sync daemon over TCP for concurrent pull clients
     pull     synchronize a local replica from a running daemon
     push     upload a tree into a running daemon (store-deduplicated)
     store    inspect/maintain a persistent chunk store (stats|fsck|gc)
     info     describe a configuration preset *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path content =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc content)

(* ---- shared arguments ---- *)

let preset_conv =
  let parse = function
    | "basic" -> Ok Fsync_core.Config.basic
    | "cont" -> Ok (Fsync_core.Config.with_continuation Fsync_core.Config.basic)
    | "tuned" -> Ok Fsync_core.Config.tuned
    | s -> Error (`Msg (Printf.sprintf "unknown preset %S (basic|cont|tuned)" s))
  in
  let print ppf _ = Format.fprintf ppf "<config>" in
  Arg.conv (parse, print)

let config_arg =
  Arg.(
    value
    & opt preset_conv Fsync_core.Config.tuned
    & info [ "c"; "config" ] ~docv:"PRESET"
        ~doc:"Protocol preset: basic, cont, or tuned.")

let min_block_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "min-block" ] ~docv:"BYTES"
        ~doc:"Override the minimum global block size (power of two).")

let apply_overrides config min_block =
  match min_block with
  | None -> config
  | Some m -> { config with Fsync_core.Config.min_global_block = m }

(* ---- observability arguments (sync and dir) ---- *)

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:"Collect counters, histograms and spans during the run and \
              print a Prometheus-style text exposition after the summary.")

let trace_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-json" ] ~docv:"FILE"
        ~doc:"Collect metrics and spans and write a JSONL event stream \
              (one JSON object per line: meta, span, counter, gauge, \
              histogram) to $(docv).")

(* A registry is only allocated when either flag asks for it; otherwise
   the scope stays disabled and instrumentation costs one branch. *)
let make_obs ~metrics ~trace_json =
  if metrics || Option.is_some trace_json then
    let reg = Fsync_obs.Registry.create () in
    (Some reg, Fsync_obs.Scope.of_registry reg)
  else (None, Fsync_obs.Scope.disabled)

let emit_obs ~metrics ~trace_json reg_opt =
  Option.iter
    (fun reg ->
      Option.iter
        (fun path ->
          write_file path (Fsync_obs.Registry.to_jsonl reg);
          Format.printf "trace written to %s@." path)
        trace_json;
      if metrics then print_string (Fsync_obs.Registry.to_prometheus reg))
    reg_opt

let pp_report rep =
  Format.printf "%a@." Fsync_core.Protocol.pp_report rep

(* ---- sync ---- *)

let sync_cmd =
  let old_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"OLD"
           ~doc:"Outdated file (client side).")
  in
  let new_arg =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"NEW"
           ~doc:"Current file (server side).")
  in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"PATH"
           ~doc:"Write the reconstructed file here.")
  in
  let adaptive_arg =
    Arg.(value & flag & info [ "adaptive" ]
           ~doc:"Probe similarity first and choose the configuration (S7).")
  in
  let trace_arg =
    Arg.(value & flag & info [ "trace" ]
           ~doc:"Print the message timeline (Fig 5.2 style).")
  in
  let run config min_block adaptive trace metrics trace_json old_path
      new_path out =
    let config = apply_overrides config min_block in
    let old_file = read_file old_path and new_file = read_file new_path in
    let channel = Fsync_net.Channel.create () in
    let reg, scope = make_obs ~metrics ~trace_json in
    if Fsync_obs.Scope.is_enabled scope then
      Fsync_net.Channel.set_scope channel scope;
    let r =
      if adaptive then begin
        let pr = Fsync_core.Adaptive.probe ~old_file new_file in
        Format.printf "adaptive: similarity %.2f -> %s (probe %d+%d bytes)@."
          pr.similarity pr.rationale pr.probe_c2s pr.probe_s2c;
        Fsync_core.Protocol.run ~channel ~scope ~config:pr.chosen ~old_file
          new_file
      end
      else Fsync_core.Protocol.run ~channel ~scope ~config ~old_file new_file
    in
    assert (String.equal r.reconstructed new_file);
    if trace then Fsync_net.Trace.print channel;
    pp_report r.report;
    let total = Fsync_core.Protocol.total_bytes r.report in
    Format.printf "transfer: %d bytes for a %d-byte file (%.1f%%)@." total
      (String.length new_file)
      (100.0 *. float_of_int total /. float_of_int (max 1 (String.length new_file)));
    Option.iter (fun p -> write_file p r.reconstructed) out;
    emit_obs ~metrics ~trace_json reg
  in
  let term =
    Term.(
      const run $ config_arg $ min_block_arg $ adaptive_arg $ trace_arg
      $ metrics_arg $ trace_json_arg $ old_arg $ new_arg $ out_arg)
  in
  Cmd.v
    (Cmd.info "sync" ~doc:"Synchronize one file and report transfer costs.")
    term

(* ---- dir ---- *)

let dir_cmd =
  let client_arg =
    Arg.(required & pos 0 (some dir) None & info [] ~docv:"CLIENT"
           ~doc:"Directory holding the outdated replica.")
  in
  let server_arg =
    Arg.(required & pos 1 (some dir) None & info [] ~docv:"SERVER"
           ~doc:"Directory holding the current collection.")
  in
  let method_conv =
    let parse = function
      | "full" -> Ok Fsync_collection.Driver.Full_compressed
      | "rsync" -> Ok Fsync_collection.Driver.Rsync_default
      | "rsync-best" -> Ok Fsync_collection.Driver.Rsync_best
      | "fsync" -> Ok (Fsync_collection.Driver.Fsync Fsync_core.Config.tuned)
      | "zdelta" -> Ok (Fsync_collection.Driver.Delta_lower_bound Fsync_delta.Delta.Zdelta)
      | "cdc" -> Ok Fsync_collection.Driver.Cdc
      | s -> Error (`Msg (Printf.sprintf "unknown method %S" s))
    in
    Arg.conv (parse, fun ppf _ -> Format.fprintf ppf "<method>")
  in
  let method_arg =
    Arg.(value & opt method_conv (Fsync_collection.Driver.Fsync Fsync_core.Config.tuned)
         & info [ "m"; "method" ] ~docv:"METHOD"
             ~doc:"Transfer method: full, rsync, rsync-best, fsync, zdelta, cdc.")
  in
  let metadata_conv =
    let parse = function
      | "linear" -> Ok Fsync_collection.Driver.Linear
      | "merkle" -> Ok Fsync_collection.Driver.Merkle
      | s -> Error (`Msg (Printf.sprintf "unknown metadata mode %S (linear|merkle)" s))
    in
    Arg.conv (parse, fun ppf m ->
        Format.fprintf ppf "%s" (Fsync_collection.Driver.metadata_name m))
  in
  let metadata_arg =
    Arg.(value & opt metadata_conv Fsync_collection.Driver.Linear
         & info [ "metadata" ] ~docv:"MODE"
             ~doc:"Metadata reconciliation: linear (announce every \
                   fingerprint) or merkle (hash-tree descent, cost scales \
                   with the diff).")
  in
  let apply_arg =
    Arg.(value & flag & info [ "apply" ]
           ~doc:"Actually update CLIENT on disk (default: report only).")
  in
  let trace_arg =
    Arg.(value & flag & info [ "trace" ]
           ~doc:"Print the metadata-phase message timeline (shows the \
                 recon:level-k descent under --metadata merkle).")
  in
  let faults_conv =
    let parse s =
      match Fsync_net.Fault.parse s with
      | Ok spec -> Ok spec
      | Error e -> Error (`Msg e)
    in
    Arg.conv (parse, fun ppf s ->
        Format.fprintf ppf "%s" (Fsync_net.Fault.to_string s))
  in
  let faults_arg =
    Arg.(value & opt (some faults_conv) None
         & info [ "faults" ] ~docv:"SPEC"
             ~doc:"Inject link faults and run the resilient session \
                   (implies --resilient).  SPEC is 'none', 'dirty', or a \
                   comma list such as \
                   'drop=0.02,corrupt=0.01,disc=0.001'; keys: drop, \
                   corrupt, trunc, dup, disc, disc-after, max-disc.")
  in
  let seed_arg =
    Arg.(value & opt int 1
         & info [ "seed" ] ~docv:"N"
             ~doc:"Fault-schedule seed; the same seed replays the same \
                   faults exactly.")
  in
  let resilient_arg =
    Arg.(value & flag
         & info [ "resilient" ]
             ~doc:"Run the resilient session layer (CRC framing, \
                   retransmit, per-file verification, checkpoint/resume) \
                   even on a clean link.")
  in
  let no_frame_arg =
    Arg.(value & flag
         & info [ "no-frame" ]
             ~doc:"Disable the framing session layer (per-file \
                   verification and retries remain); only meaningful with \
                   --resilient or --faults.")
  in
  let run method_ metadata client_dir server_dir apply trace metrics
      trace_json faults seed resilient no_frame =
    let client = Fsync_collection.Snapshot.load_dir client_dir in
    let server = Fsync_collection.Snapshot.load_dir server_dir in
    let meta_channel = Fsync_net.Channel.create () in
    let reg, scope = make_obs ~metrics ~trace_json in
    let finish updated summary =
      if trace then Fsync_net.Trace.print meta_channel;
      (match reg with
      | Some registry when metrics ->
          Format.printf "%a@."
            (Fsync_collection.Driver.pp_summary_with_metrics ~registry)
            summary
      | _ -> Format.printf "%a@." Fsync_collection.Driver.pp_summary summary);
      if apply then begin
        Fsync_collection.Snapshot.store_dir client_dir updated;
        Format.printf "client updated in place@."
      end;
      emit_obs ~metrics ~trace_json reg;
      `Ok ()
    in
    if resilient || Option.is_some faults then begin
      let resilience =
        {
          Fsync_collection.Driver.default_resilience with
          faults =
            Option.value faults ~default:Fsync_net.Fault.none;
          seed;
          frame = not no_frame;
        }
      in
      match
        Fsync_collection.Driver.sync_resilient ~metadata ~resilience
          ~meta_channel ~scope method_ ~client ~server
      with
      | Ok (updated, summary) -> finish updated summary
      | Error e ->
          `Error (false,
                  Printf.sprintf "synchronization failed: %s"
                    (Fsync_core.Error.to_string e))
    end
    else
      let updated, summary =
        Fsync_collection.Driver.sync ~metadata ~meta_channel ~scope method_
          ~client ~server
      in
      finish updated summary
  in
  let term =
    Term.(ret
            (const run $ method_arg $ metadata_arg $ client_arg $ server_arg
            $ apply_arg $ trace_arg $ metrics_arg $ trace_json_arg
            $ faults_arg $ seed_arg $ resilient_arg $ no_frame_arg))
  in
  Cmd.v
    (Cmd.info "dir" ~doc:"Synchronize a directory tree and report costs.")
    term

(* ---- delta / patch ---- *)

let delta_cmd =
  let ref_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"REFERENCE" ~doc:"Reference file.")
  in
  let tgt_arg =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"TARGET" ~doc:"Target file.")
  in
  let out_arg =
    Arg.(required & pos 2 (some string) None & info [] ~docv:"OUT" ~doc:"Delta output path.")
  in
  let run ref_path tgt_path out =
    let reference = read_file ref_path and target = read_file tgt_path in
    let d = Fsync_delta.Delta.encode ~reference target in
    write_file out d;
    Format.printf "delta: %d bytes for a %d-byte target (%.2f%%)@."
      (String.length d) (String.length target)
      (100.0 *. float_of_int (String.length d)
       /. float_of_int (max 1 (String.length target)))
  in
  Cmd.v
    (Cmd.info "delta" ~doc:"Delta compress TARGET relative to REFERENCE.")
    Term.(const run $ ref_arg $ tgt_arg $ out_arg)

let patch_cmd =
  let ref_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"REFERENCE" ~doc:"Reference file.")
  in
  let delta_arg =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"DELTA" ~doc:"Delta file.")
  in
  let out_arg =
    Arg.(required & pos 2 (some string) None & info [] ~docv:"OUT" ~doc:"Output path.")
  in
  let run ref_path delta_path out =
    let reference = read_file ref_path and d = read_file delta_path in
    write_file out (Fsync_delta.Delta.decode ~reference d);
    Format.printf "patched -> %s@." out
  in
  Cmd.v (Cmd.info "patch" ~doc:"Apply a delta to REFERENCE.")
    Term.(const run $ ref_arg $ delta_arg $ out_arg)

(* ---- rsync baseline ---- *)

let rsync_cmd =
  let old_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"OLD" ~doc:"Outdated file.")
  in
  let new_arg =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"NEW" ~doc:"Current file.")
  in
  let block_arg =
    Arg.(value & opt int 700 & info [ "b"; "block-size" ] ~docv:"BYTES"
           ~doc:"rsync block size.")
  in
  let best_arg =
    Arg.(value & flag & info [ "best" ] ~doc:"Search for the best block size.")
  in
  let run old_path new_path block_size best =
    let old_file = read_file old_path and new_file = read_file new_path in
    if best then begin
      let bs, c = Fsync_rsync.Rsync.best_block_size ~old_file new_file in
      Format.printf "best block size %d: c2s=%d s2c=%d total=%d@." bs
        c.client_to_server c.server_to_client (Fsync_rsync.Rsync.total c)
    end
    else begin
      let r =
        Fsync_rsync.Rsync.sync
          ~config:{ Fsync_rsync.Rsync.default_config with block_size }
          ~old_file new_file
      in
      Format.printf
        "block %d: c2s=%d s2c=%d total=%d matched_blocks=%d literal_bytes=%d@."
        block_size r.cost.client_to_server r.cost.server_to_client
        (Fsync_rsync.Rsync.total r.cost) r.matched_blocks r.literal_bytes
    end
  in
  Cmd.v (Cmd.info "rsync" ~doc:"Run the rsync baseline on a file pair.")
    Term.(const run $ old_arg $ new_arg $ block_arg $ best_arg)

(* ---- gen ---- *)

let gen_cmd =
  let dataset_arg =
    Arg.(required & pos 0 (some (enum [ ("gcc", `Gcc); ("emacs", `Emacs); ("web", `Web) ])) None
         & info [] ~docv:"DATASET" ~doc:"Dataset: gcc, emacs, or web.")
  in
  let out_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"DIR" ~doc:"Output directory.")
  in
  let scale_arg =
    Arg.(value & opt float 0.02 & info [ "s"; "scale" ] ~docv:"FACTOR"
           ~doc:"Dataset scale; 1.0 approximates the paper's size.")
  in
  let run dataset out scale =
    let store sub files =
      let snap = Fsync_collection.Snapshot.of_files files in
      Fsync_collection.Snapshot.store_dir (Filename.concat out sub) snap;
      Format.printf "%s: %d files, %d bytes@." sub
        (Fsync_collection.Snapshot.count snap)
        (Fsync_collection.Snapshot.total_bytes snap)
    in
    let tree_files version =
      List.map (fun (f : Fsync_workload.Source_tree.file) -> (f.path, f.content)) version
    in
    match dataset with
    | `Gcc | `Emacs ->
        let preset =
          match dataset with
          | `Gcc -> Fsync_workload.Source_tree.gcc_preset ~scale
          | _ -> Fsync_workload.Source_tree.emacs_preset ~scale
        in
        let pair = Fsync_workload.Source_tree.generate preset in
        store "old" (tree_files pair.old_version);
        store "new" (tree_files pair.new_version)
    | `Web ->
        let preset = Fsync_workload.Web_collection.default_preset ~scale in
        let base = Fsync_workload.Web_collection.base preset in
        let page_files pages =
          Array.to_list
            (Array.mapi
               (fun i (p : Fsync_workload.Web_collection.page) ->
                 ignore p.url;
                 (Printf.sprintf "page%05d.html" i, p.content))
               pages)
        in
        store "day0" (page_files base);
        List.iter
          (fun d ->
            store
              (Printf.sprintf "day%d" d)
              (page_files (Fsync_workload.Web_collection.evolve preset base ~days:d)))
          [ 1; 2; 7 ]
  in
  Cmd.v (Cmd.info "gen" ~doc:"Generate a synthetic dataset onto disk.")
    Term.(const run $ dataset_arg $ out_arg $ scale_arg)

(* ---- serve / pull: the daemon over real sockets ---- *)

let host_port_conv =
  let parse s =
    match String.rindex_opt s ':' with
    | Some i -> (
        let host = String.sub s 0 i in
        let port = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt port with
        | Some p when p >= 0 && p < 65536 -> Ok (host, p)
        | Some _ | None ->
            Error (`Msg (Printf.sprintf "bad port in %S" s)))
    | None -> Error (`Msg (Printf.sprintf "expected HOST:PORT, got %S" s))
  in
  Arg.conv (parse, fun ppf (h, p) -> Format.fprintf ppf "%s:%d" h p)

let log_to_stderr () =
  Fsync_net.Trace.set_log_sink (Some (fun line -> Printf.eprintf "%s\n%!" line))

let serve_cmd =
  let root_arg =
    Arg.(
      required
      & pos 0 (some dir) None
      & info [] ~docv:"ROOT" ~doc:"Directory tree to serve.")
  in
  let host_arg =
    Arg.(
      value & opt string "0.0.0.0"
      & info [ "host" ] ~docv:"ADDR" ~doc:"Numeric address to bind.")
  in
  let port_arg =
    Arg.(
      value & opt int 9430
      & info [ "p"; "port" ] ~docv:"PORT"
          ~doc:"TCP port to listen on (0 picks an ephemeral port).")
  in
  let max_sessions_arg =
    Arg.(
      value & opt int 64
      & info [ "max-sessions" ] ~docv:"N"
          ~doc:"Stop accepting while this many sessions are live.")
  in
  let timeout_arg =
    Arg.(
      value & opt float 30.0
      & info [ "session-timeout" ] ~docv:"SECONDS"
          ~doc:"Idle sessions are torn down after this long.")
  in
  let cache_arg =
    Arg.(
      value & opt int 1024
      & info [ "cache-entries" ] ~docv:"N"
          ~doc:"Signature-cache capacity (level vectors, shared across \
                sessions).")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No per-event logging.")
  in
  let store_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR"
          ~doc:"Back the daemon with a persistent chunk store rooted at \
                $(docv) (created if absent): pushes deduplicate against \
                it, and signature-cache vectors persist under it so a \
                restarted daemon warm-starts.")
  in
  let admin_port_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "admin-port" ] ~docv:"PORT"
          ~doc:"Serve an admin socket on this port (0 picks an ephemeral \
                one) inside the same event loop: one framed 'metrics' \
                request returns a live Prometheus exposition, 'status' a \
                fsyncd-status/1 JSON document.  Implies --metrics.")
  in
  let event_log_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "event-log" ] ~docv:"FILE"
          ~doc:"Append structured JSONL lifecycle events (session start/end/\
                shed/timeout/resume, slow sessions) to $(docv).")
  in
  let event_log_max_arg =
    Arg.(
      value & opt int 0
      & info [ "event-log-max-bytes" ] ~docv:"BYTES"
          ~doc:"Rotate the event log (FILE -> FILE.1) when it would exceed \
                $(docv); 0 (default) never rotates.")
  in
  let slow_session_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "slow-session" ] ~docv:"SECONDS"
          ~doc:"Emit a slow_session event for sessions lasting longer than \
                $(docv) (requires --event-log).")
  in
  let run root host port max_sessions session_timeout_s cache_entries quiet
      store_dir admin_port event_log event_log_max_bytes slow_session metrics
      trace_json =
    if not quiet then log_to_stderr ();
    let files =
      Fsync_collection.Snapshot.files (Fsync_collection.Snapshot.load_dir root)
    in
    (* An admin socket without a registry would only see the native
       counters; force one so scrapes get the full series set.  The
       daemon's --trace-json streams per-session registries instead of
       dumping the shared one at exit. *)
    let metrics = metrics || Option.is_some admin_port in
    let reg, scope = make_obs ~metrics ~trace_json in
    let config =
      {
        Fsync_server.Daemon.default_config with
        Fsync_server.Daemon.max_sessions;
        session_timeout_s;
        cache_entries;
      }
    in
    match
      Option.map (fun dir -> Fsync_store.Store.open_store ~scope dir) store_dir
    with
    | exception Fsync_core.Error.E e ->
        `Error
          ( false,
            Printf.sprintf "cannot open store: %s"
              (Fsync_core.Error.to_string e) )
    | store -> (
        let daemon = Fsync_server.Daemon.create ~config ~scope ?store files in
        Option.iter
          (fun path ->
            Fsync_server.Daemon.set_event_log daemon
              ~max_bytes:event_log_max_bytes ?slow_s:slow_session path)
          event_log;
        Option.iter
          (fun path -> Fsync_server.Daemon.set_trace_stream daemon path)
          trace_json;
        match Fsync_server.Daemon.listen daemon ~host ~port with
        | actual_port ->
            Printf.eprintf "fsyncd: serving %d files from %s on %s:%d\n%!"
              (List.length files) root host actual_port;
            Option.iter
              (fun p ->
                let admin_port =
                  Fsync_server.Daemon.admin_listen daemon ~host ~port:p
                in
                Printf.eprintf "fsyncd: admin on %s:%d\n%!" host admin_port)
              admin_port;
            Option.iter
              (fun s ->
                Printf.eprintf
                  "fsyncd: store %s (%d sig vectors seeded)\n%!"
                  (Fsync_store.Store.root s)
                  (Fsync_server.Daemon.sigs_loaded daemon))
              store;
            let stop _ = Fsync_server.Daemon.request_stop daemon in
            Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
            Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
            Fsync_server.Daemon.run daemon;
            let st = Fsync_server.Daemon.stats daemon in
            let cache = Fsync_server.Daemon.cache daemon in
            let cs = Fsync_server.Sigcache.stats cache in
            Format.printf
              "sessions: %d accepted, %d completed, %d failed, %d timeouts, \
               %d shed busy@."
              st.Fsync_server.Daemon.accepted st.Fsync_server.Daemon.completed
              st.Fsync_server.Daemon.failed st.Fsync_server.Daemon.timeouts
              st.Fsync_server.Daemon.shed;
            if st.Fsync_server.Daemon.admin_requests > 0
               || st.Fsync_server.Daemon.admin_errors > 0
            then
              Format.printf "admin: %d requests, %d hostile/errored@."
                st.Fsync_server.Daemon.admin_requests
                st.Fsync_server.Daemon.admin_errors;
            let log_errors = Fsync_server.Daemon.event_log_errors daemon in
            if log_errors > 0 then
              Format.printf "event log: %d write errors absorbed@." log_errors;
            if st.Fsync_server.Daemon.sig_persist_errors > 0 then
              Format.printf "sig persist errors: %d@."
                st.Fsync_server.Daemon.sig_persist_errors;
            Format.printf
              "sig cache: %d hits, %d misses, %d entries, %d lookups, %d \
               warm hits, warm rate %.3f@."
              cs.Fsync_server.Sigcache.hits cs.Fsync_server.Sigcache.misses
              cs.Fsync_server.Sigcache.entries
              cs.Fsync_server.Sigcache.lookups
              cs.Fsync_server.Sigcache.warm_hits
              (Fsync_server.Sigcache.warm_hit_rate cache);
            Option.iter
              (fun s ->
                let ss = Fsync_store.Store.stats s in
                Format.printf
                  "store: %d chunks, %d bytes, %d manifests, %d bytes \
                   deduped@."
                  ss.Fsync_store.Store.chunks ss.Fsync_store.Store.bytes
                  ss.Fsync_store.Store.manifests
                  ss.Fsync_store.Store.bytes_deduped;
                Fsync_store.Store.close s)
              store;
            (* trace_json was consumed by the per-session stream above;
               only the --metrics exposition prints here. *)
            emit_obs ~metrics ~trace_json:None reg;
            `Ok ()
        | exception Unix.Unix_error (e, _, _) ->
            Option.iter Fsync_store.Store.close store;
            `Error
              ( false,
                Printf.sprintf "cannot listen on %s:%d: %s" host port
                  (Unix.error_message e) ))
  in
  let term =
    Term.(
      ret
        (const run $ root_arg $ host_arg $ port_arg $ max_sessions_arg
       $ timeout_arg $ cache_arg $ quiet_arg $ store_arg $ admin_port_arg
       $ event_log_arg $ event_log_max_arg $ slow_session_arg $ metrics_arg
       $ trace_json_arg))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve a directory tree to concurrent pull clients over TCP \
          (single-threaded event loop, shared signature cache).")
    term

let pull_cmd =
  let faults_conv =
    let parse s =
      match Fsync_net.Fault.parse s with
      | Ok spec -> Ok spec
      | Error e -> Error (`Msg e)
    in
    Arg.conv (parse, fun ppf s ->
        Format.pp_print_string ppf (Fsync_net.Fault.to_string s))
  in
  let addr_arg =
    Arg.(
      required
      & pos 0 (some host_port_conv) None
      & info [] ~docv:"HOST:PORT" ~doc:"Daemon address (numeric host).")
  in
  let dir_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"DIR" ~doc:"Local replica directory to update.")
  in
  let apply_arg =
    Arg.(
      value & flag
      & info [ "apply" ] ~doc:"Write the synchronized replica back to DIR.")
  in
  let faults_arg =
    Arg.(
      value
      & opt (some faults_conv) None
      & info [ "faults" ] ~docv:"SPEC"
          ~doc:"Inject link faults on the client side of the connection \
                (same SPEC syntax as $(b,dir) --faults); the pull retries \
                with a reseeded schedule on failure.")
  in
  let seed_arg =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"N" ~doc:"Base fault-schedule seed.")
  in
  let attempts_arg =
    Arg.(
      value & opt int 3
      & info [ "attempts" ] ~docv:"N" ~doc:"Connection attempts before giving up.")
  in
  let timeout_arg =
    Arg.(
      value & opt float 30.0
      & info [ "idle-timeout" ] ~docv:"SECONDS"
          ~doc:"Abort an attempt when the server is silent this long.")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No per-event logging.")
  in
  let run (host, port) dir apply fault seed attempts idle_timeout_s quiet
      metrics trace_json =
    if not quiet then log_to_stderr ();
    let reg, scope = make_obs ~metrics ~trace_json in
    (* A crash during a previous [--apply] leaves a staging journal;
       repair it before trusting the directory's contents as the old
       replica. *)
    (if Sys.file_exists dir && Sys.is_directory dir then
       match Fsync_collection.Apply.resume dir with
       | `Clean -> ()
       | `Rolled_back ->
           Format.printf "recovered: interrupted apply rolled back@."
       | `Rolled_forward n ->
           Format.printf
             "recovered: interrupted apply rolled forward (%d records)@." n);
    let old_files =
      if Sys.file_exists dir && Sys.is_directory dir then
        Fsync_collection.Snapshot.files
          (Fsync_collection.Snapshot.load_dir dir)
      else []
    in
    match
      Fsync_server.Pull.run ~attempts ?fault ~seed ~idle_timeout_s ~scope
        ~host ~port old_files
    with
    | r ->
        let total_new =
          List.fold_left
            (fun acc (_, c) -> acc + String.length c)
            0 r.Fsync_server.Pull.files
        in
        Format.printf
          "pulled %d files (%d bytes) in %d attempt(s); wire: %d up, %d \
           down@."
          (List.length r.Fsync_server.Pull.files)
          total_new r.Fsync_server.Pull.attempts
          r.Fsync_server.Pull.c2s_bytes r.Fsync_server.Pull.s2c_bytes;
        if apply then begin
          (* Journaled atomic apply: stage + commit + rename, so a crash
             here leaves either the old replica or the new one — never a
             torn mix (DESIGN.md §12). *)
          let st =
            Fsync_collection.Apply.apply ~root:dir ~old_files
              r.Fsync_server.Pull.files
          in
          Format.printf "replica updated (%d written, %d deleted)@."
            st.Fsync_collection.Apply.wrote st.Fsync_collection.Apply.deleted
        end;
        emit_obs ~metrics ~trace_json reg;
        `Ok ()
    | exception Fsync_core.Error.E e ->
        `Error
          (false, Printf.sprintf "pull failed: %s" (Fsync_core.Error.to_string e))
    | exception Unix.Unix_error (e, _, _) ->
        `Error
          ( false,
            Printf.sprintf "cannot reach %s:%d: %s" host port
              (Unix.error_message e) )
  in
  let term =
    Term.(
      ret
        (const run $ addr_arg $ dir_arg $ apply_arg $ faults_arg $ seed_arg
       $ attempts_arg $ timeout_arg $ quiet_arg $ metrics_arg
       $ trace_json_arg))
  in
  Cmd.v
    (Cmd.info "pull"
       ~doc:"Synchronize a local replica from a running fsync daemon.")
    term

let push_cmd =
  let addr_arg =
    Arg.(
      required
      & pos 0 (some host_port_conv) None
      & info [] ~docv:"HOST:PORT" ~doc:"Daemon address (numeric host).")
  in
  let dir_arg =
    Arg.(
      required
      & pos 1 (some dir) None
      & info [] ~docv:"DIR" ~doc:"Local directory tree to upload.")
  in
  let attempts_arg =
    Arg.(
      value & opt int 3
      & info [ "attempts" ] ~docv:"N"
          ~doc:"Connection attempts before giving up.")
  in
  let timeout_arg =
    Arg.(
      value & opt float 30.0
      & info [ "idle-timeout" ] ~docv:"SECONDS"
          ~doc:"Abort an attempt when the server is silent this long.")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No per-event logging.")
  in
  let run (host, port) dir attempts idle_timeout_s quiet metrics trace_json =
    if not quiet then log_to_stderr ();
    let reg, scope = make_obs ~metrics ~trace_json in
    let files =
      Fsync_collection.Snapshot.files (Fsync_collection.Snapshot.load_dir dir)
    in
    match
      Fsync_server.Push.run ~attempts ~idle_timeout_s ~scope ~host ~port
        files
    with
    | r ->
        let s = r.Fsync_server.Push.stats in
        Format.printf
          "pushed %d files in %d attempt(s); chunks: %d sent of %d, %d \
           bytes deduped; wire: %d up, %d down@."
          s.Fsync_server.Pusher.files_pushed r.Fsync_server.Push.attempts
          s.Fsync_server.Pusher.chunks_sent s.Fsync_server.Pusher.chunks_total
          s.Fsync_server.Pusher.bytes_deduped r.Fsync_server.Push.c2s_bytes
          r.Fsync_server.Push.s2c_bytes;
        emit_obs ~metrics ~trace_json reg;
        `Ok ()
    | exception Fsync_core.Error.E e ->
        `Error
          (false, Printf.sprintf "push failed: %s" (Fsync_core.Error.to_string e))
    | exception Unix.Unix_error (e, _, _) ->
        `Error
          ( false,
            Printf.sprintf "cannot reach %s:%d: %s" host port
              (Unix.error_message e) )
  in
  let term =
    Term.(
      ret
        (const run $ addr_arg $ dir_arg $ attempts_arg $ timeout_arg
       $ quiet_arg $ metrics_arg $ trace_json_arg))
  in
  Cmd.v
    (Cmd.info "push"
       ~doc:
         "Upload a directory tree into a running daemon; a store-backed \
          daemon only asks for the chunks it does not already hold.")
    term

(* ---- store maintenance ---- *)

let store_root_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"STORE" ~doc:"Chunk-store root directory.")

let with_store root f =
  match Fsync_store.Store.open_store root with
  | exception Fsync_core.Error.E e ->
      `Error
        (false, Printf.sprintf "store: %s" (Fsync_core.Error.to_string e))
  | store ->
      Fun.protect
        ~finally:(fun () -> Fsync_store.Store.close store)
        (fun () -> f store)

let store_stats_cmd =
  let run root =
    with_store root (fun store ->
        let s = Fsync_store.Store.stats store in
        Format.printf
          "store %s: %d chunks, %d bytes, %d manifests, %d compactions@."
          root s.Fsync_store.Store.chunks s.Fsync_store.Store.bytes
          s.Fsync_store.Store.manifests s.Fsync_store.Store.compactions;
        `Ok ())
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Print chunk, byte and manifest counts.")
    Term.(ret (const run $ store_root_arg))

let store_fsck_cmd =
  let run root =
    with_store root (fun store ->
        let report = Fsync_store.Store.fsck store in
        Format.printf "%a@." Fsync_store.Store.pp_fsck_report report;
        match Fsync_store.Store.fsck_errors report with
        | [] -> `Ok ()
        | errors ->
            `Error
              ( false,
                Printf.sprintf "fsck: %d error(s) in %s"
                  (List.length errors) root ))
  in
  Cmd.v
    (Cmd.info "fsck"
       ~doc:
         "Verify every chunk re-hashes to its key and every refcount \
          matches the manifests; non-zero exit on damage.")
    Term.(ret (const run $ store_root_arg))

let store_gc_cmd =
  let run root =
    with_store root (fun store ->
        let removed, bytes = Fsync_store.Store.gc store in
        Format.printf "gc: removed %d chunk(s), reclaimed %d bytes@." removed
          bytes;
        `Ok ())
  in
  Cmd.v
    (Cmd.info "gc"
       ~doc:"Delete unreferenced chunks and compact the index.")
    Term.(ret (const run $ store_root_arg))

let store_cmd =
  Cmd.group
    (Cmd.info "store"
       ~doc:"Inspect and maintain a persistent chunk store.")
    [ store_stats_cmd; store_fsck_cmd; store_gc_cmd ]

(* ---- admin / top / trace: the telemetry plane ---- *)

let admin_addr_arg =
  Arg.(
    required
    & pos 0 (some host_port_conv) None
    & info [] ~docv:"HOST:PORT"
        ~doc:"Admin address printed by $(b,fsync serve --admin-port).")

let admin_errmsg ~host ~port = function
  | Fsync_core.Error.E e ->
      Printf.sprintf "admin %s:%d: %s" host port
        (Fsync_core.Error.to_string e)
  | Unix.Unix_error (err, _, _) ->
      Printf.sprintf "admin %s:%d: %s" host port (Unix.error_message err)
  | e -> Printf.sprintf "admin %s:%d: %s" host port (Printexc.to_string e)

let admin_cmd =
  let what_arg =
    Arg.(
      value
      & pos 1 (enum [ ("status", "status"); ("metrics", "metrics") ]) "status"
      & info [] ~docv:"REQUEST"
          ~doc:
            "$(b,metrics) for the Prometheus text exposition, $(b,status) \
             for the fsyncd-status/1 JSON document.")
  in
  let timeout_arg =
    Arg.(
      value & opt float 5.0
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Give up waiting for the reply after this long.")
  in
  let run (host, port) what timeout_s =
    match Fsync_server.Admin.request ~timeout_s ~host ~port what with
    | reply ->
        print_string reply;
        if
          String.length reply > 0
          && reply.[String.length reply - 1] <> '\n'
        then print_newline ();
        `Ok ()
    | exception e -> `Error (false, admin_errmsg ~host ~port e)
  in
  Cmd.v
    (Cmd.info "admin"
       ~doc:
         "One framed request against a daemon's admin socket; prints the \
          reply verbatim.")
    Term.(ret (const run $ admin_addr_arg $ what_arg $ timeout_arg))

let top_cmd =
  let interval_arg =
    Arg.(
      value & opt float 1.0
      & info [ "interval" ] ~docv:"SECONDS"
          ~doc:"Seconds between refreshes.")
  in
  let count_arg =
    Arg.(
      value & opt int 0
      & info [ "count" ] ~docv:"N"
          ~doc:
            "Stop after $(docv) refreshes (0 = run until interrupted); \
             with a finite count the screen is not cleared, so the last \
             table survives in the scrollback.")
  in
  let module J = Fsync_obs.Json in
  let mem name j = Option.value ~default:J.Null (J.member name j) in
  let str name j = Option.value ~default:"-" (J.to_string_opt (mem name j)) in
  let num name j = Option.value ~default:0.0 (J.to_float_opt (mem name j)) in
  let int name j = Option.value ~default:0 (J.to_int_opt (mem name j)) in
  let render ~clear ~host ~port doc =
    if clear then print_string "\027[2J\027[H";
    let sessions = mem "sessions" doc in
    Printf.printf
      "fsyncd %s:%d  up %.0f s  active %d  accepted %d  completed %d  \
       failed %d  shed %d\n"
      host port (num "uptime_s" doc) (int "active" sessions)
      (int "accepted" sessions) (int "completed" sessions)
      (int "failed" sessions) (int "shed" sessions);
    Printf.printf "%-21s %-9s %-12s %7s %7s %11s %11s %11s\n" "PEER" "TRACE"
      "PHASE" "AGE" "IDLE" "IN" "OUT" "OUT/S";
    (match mem "active_sessions" doc with
    | J.List rows ->
        List.iter
          (fun row ->
            let age = num "age_s" row in
            let out = int "bytes_out" row in
            let rate = if age > 0.0 then float_of_int out /. age else 0.0 in
            let trace =
              let t = str "trace" row in
              if String.length t > 8 then String.sub t 0 8 else t
            in
            Printf.printf "%-21s %-9s %-12s %7.1f %7.1f %11d %11d %11.0f\n"
              (str "peer" row) trace (str "phase" row) age (num "idle_s" row)
              (int "bytes_in" row) out rate)
          rows
    | _ -> ());
    flush stdout
  in
  let run (host, port) interval count =
    let clear = count = 0 in
    let rec loop n =
      match Fsync_server.Admin.status ~host ~port () with
      | exception e -> `Error (false, admin_errmsg ~host ~port e)
      | doc ->
          render ~clear ~host ~port doc;
          if count > 0 && n + 1 >= count then `Ok ()
          else begin
            Unix.sleepf interval;
            loop (n + 1)
          end
    in
    loop 0
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Poll a daemon's admin socket and render a refreshing table of \
          active sessions (peer, trace id, live phase, age, bytes, rate).")
    Term.(ret (const run $ admin_addr_arg $ interval_arg $ count_arg))

let trace_report_cmd =
  let files_arg =
    Arg.(
      non_empty
      & pos_all non_dir_file []
      & info [] ~docv:"FILE"
          ~doc:
            "Trace-tagged JSONL streams: the client's $(b,--trace-json) \
             file and the daemon's $(b,serve --trace-json) stream.")
  in
  let read_lines path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | line -> go (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        go [])
  in
  let run files =
    let lines = List.concat_map read_lines files in
    match Fsync_obs.Trace_report.of_lines lines with
    | Error e -> `Error (false, Printf.sprintf "trace report: %s" e)
    | Ok [] -> `Error (false, "trace report: no trace events found")
    | Ok sessions ->
        List.iter
          (fun s -> Format.printf "%a@." Fsync_obs.Trace_report.pp s)
          sessions;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Join client and daemon trace streams by trace id into \
          per-session phase-latency and byte breakdowns.")
    Term.(ret (const run $ files_arg))

let trace_cmd =
  Cmd.group
    (Cmd.info "trace"
       ~doc:"Work with --trace-json event streams (DESIGN.md \194\1679).")
    [ trace_report_cmd ]

(* ---- swarm: N-peer anti-entropy (DESIGN.md §13) ---- *)

let swarm_root_arg =
  Arg.(
    required
    & pos 0 (some dir) None
    & info [] ~docv:"ROOT" ~doc:"Replica root directory.")

let swarm_id_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "id" ] ~docv:"PEER"
        ~doc:
          "This replica's peer id.  Version-vector counters are keyed by \
           it, so keep it stable across runs and unique across the swarm.")

let swarm_peers_arg =
  Arg.(
    value
    & opt_all host_port_conv []
    & info [ "peer" ] ~docv:"HOST:PORT"
        ~doc:"A swarm member to exchange with (repeatable).")

let load_replica ~root ~peer ~scope =
  Fsync_swarm.Replica.load ~scope ~root ~peer ()

let swarm_serve_cmd =
  let host_arg =
    Arg.(
      value & opt string "0.0.0.0"
      & info [ "host" ] ~docv:"ADDR" ~doc:"Numeric address to bind.")
  in
  let port_arg =
    Arg.(
      value & opt int 9431
      & info [ "p"; "port" ] ~docv:"PORT"
          ~doc:"TCP port to listen on (0 picks an ephemeral port).")
  in
  let run root id host port metrics trace_json =
    log_to_stderr ();
    let reg, scope = make_obs ~metrics ~trace_json in
    let replica = load_replica ~root ~peer:id ~scope in
    let peer = Fsync_swarm.Peer.create ~scope replica in
    match Fsync_swarm.Peer.listen peer ~host ~port with
    | bound ->
        Format.printf "swarm peer %s serving %s on %s:%d (%d files)@." id
          root host bound
          (List.length (Fsync_swarm.Replica.files replica));
        let stop _ = Fsync_swarm.Peer.request_stop peer in
        Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
        Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
        Fsync_swarm.Peer.run peer;
        let st = Fsync_swarm.Peer.stats peer in
        Format.printf
          "swarm peer done: %d accepted (%d gossip, %d plain), %d \
           completed, %d failed, %d timeouts@."
          st.Fsync_swarm.Peer.accepted st.Fsync_swarm.Peer.gossip_sessions
          st.Fsync_swarm.Peer.plain_sessions st.Fsync_swarm.Peer.completed
          st.Fsync_swarm.Peer.failed st.Fsync_swarm.Peer.timeouts;
        emit_obs ~metrics ~trace_json reg;
        `Ok ()
    | exception Unix.Unix_error (e, _, _) ->
        `Error
          ( false,
            Printf.sprintf "cannot listen on %s:%d: %s" host port
              (Unix.error_message e) )
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve this replica to the swarm: gossip exchanges and plain \
          pulls on one port.")
    Term.(
      ret
        (const run $ swarm_root_arg $ swarm_id_arg $ host_arg $ port_arg
       $ metrics_arg $ trace_json_arg))

let pp_gossip_stats who (s : Fsync_swarm.Gossip.stats) =
  Format.printf
    "%s: %s%d conflicts, %d pulled, %d installed, %d B in, %d B out@." who
    (if s.Fsync_swarm.Gossip.short_circuit then "already converged, " else "")
    s.Fsync_swarm.Gossip.conflicts s.Fsync_swarm.Gossip.files_pulled
    s.Fsync_swarm.Gossip.installs s.Fsync_swarm.Gossip.bytes_in
    s.Fsync_swarm.Gossip.bytes_out

let swarm_join_cmd =
  let rounds_arg =
    Arg.(
      value & opt int 1
      & info [ "rounds" ] ~docv:"N"
          ~doc:
            "Gossip rounds: each round exchanges with every listed peer \
             once, stopping early once every exchange short-circuits.")
  in
  let run root id peers rounds metrics trace_json =
    log_to_stderr ();
    if List.length peers = 0 then
      `Error (false, "swarm join: need at least one --peer HOST:PORT")
    else begin
      let reg, scope = make_obs ~metrics ~trace_json in
      let replica = load_replica ~root ~peer:id ~scope in
      let failures = ref 0 in
      let converged = ref false in
      let round = ref 0 in
      while (not !converged) && !round < max 1 rounds do
        incr round;
        let all_short = ref true in
        List.iter
          (fun (host, port) ->
            match
              Fsync_swarm.Peer.gossip ~scope ~host ~port replica
            with
            | s ->
                pp_gossip_stats (Printf.sprintf "%s:%d" host port) s;
                if not s.Fsync_swarm.Gossip.short_circuit then
                  all_short := false
            | exception e ->
                incr failures;
                all_short := false;
                Format.printf "%s:%d: failed: %s@." host port
                  (match Fsync_core.Error.of_exn e with
                  | Some err -> Fsync_core.Error.to_string err
                  | None -> Printexc.to_string e))
          peers;
        converged := !all_short
      done;
      Format.printf "root %s after %d round%s%s@."
        (Fsync_hash.Fingerprint.to_hex (Fsync_swarm.Replica.summary replica))
        !round
        (if !round = 1 then "" else "s")
        (if !converged then " (converged with every peer)" else "");
      emit_obs ~metrics ~trace_json reg;
      if !failures > 0 then
        `Error (false, Printf.sprintf "%d exchange(s) failed" !failures)
      else `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "join"
       ~doc:
         "Run anti-entropy exchanges against the listed peers until \
          converged (or the round budget runs out).")
    Term.(
      ret
        (const run $ swarm_root_arg $ swarm_id_arg $ swarm_peers_arg
       $ rounds_arg $ metrics_arg $ trace_json_arg))

let swarm_status_cmd =
  let verbose_arg =
    Arg.(
      value & flag
      & info [ "verbose"; "v" ] ~doc:"Print every entry's version vector.")
  in
  let run root id verbose =
    let replica =
      load_replica ~root ~peer:id ~scope:Fsync_obs.Scope.disabled
    in
    let entries = Fsync_swarm.Replica.entries replica in
    let present, tombstones =
      List.partition
        (fun (_, e) -> e.Fsync_swarm.Replica.present)
        entries
    in
    let conflicts =
      List.filter
        (fun (p, _) ->
          Fsync_swarm.Plan.is_conflict_path p)
        present
    in
    Format.printf "peer %s at %s@." id root;
    Format.printf "root %s@."
      (Fsync_hash.Fingerprint.to_hex (Fsync_swarm.Replica.summary replica));
    Format.printf "%d files, %d tombstones, %d unresolved conflict file%s@."
      (List.length present) (List.length tombstones)
      (List.length conflicts)
      (if List.length conflicts = 1 then "" else "s");
    List.iter
      (fun (p, _) -> Format.printf "  conflict: %s@." p)
      conflicts;
    if verbose then
      List.iter
        (fun (p, e) ->
          Format.printf "  %s %s by %s %s (%d B)@." p
            (if e.Fsync_swarm.Replica.present then "present" else "tombstone")
            e.Fsync_swarm.Replica.author
            (Fsync_swarm.Version_vector.pp e.Fsync_swarm.Replica.vv)
            e.Fsync_swarm.Replica.len)
        entries;
    `Ok ()
  in
  Cmd.v
    (Cmd.info "status"
       ~doc:
         "Show this replica's swarm state: root digest, entry counts, \
          unresolved conflict files.")
    Term.(ret (const run $ swarm_root_arg $ swarm_id_arg $ verbose_arg))

let swarm_repair_cmd =
  let path_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"PATH" ~doc:"Replica-relative path to repair.")
  in
  let run root id peers path =
    log_to_stderr ();
    if List.length peers = 0 then
      `Error (false, "swarm repair: need at least one --peer HOST:PORT")
    else begin
      let replica =
        load_replica ~root ~peer:id ~scope:Fsync_obs.Scope.disabled
      in
      let answered = ref 0 in
      List.iter
        (fun (host, port) ->
          match Fsync_swarm.Peer.repair ~host ~port replica ~path with
          | o ->
              incr answered;
              Format.printf "%s:%d (%s): %s, %d pulled, %d installed%s@."
                host port o.Fsync_swarm.Repair.peer
                (if o.Fsync_swarm.Repair.had_entry then "knows it"
                 else "never heard of it")
                o.Fsync_swarm.Repair.pulled o.Fsync_swarm.Repair.installed
                (if o.Fsync_swarm.Repair.conflict then ", CONFLICT surfaced"
                 else "")
          | exception e ->
              Format.printf "%s:%d: failed: %s@." host port
                (match Fsync_core.Error.of_exn e with
                | Some err -> Fsync_core.Error.to_string err
                | None -> Printexc.to_string e))
        peers;
      let quorum = (List.length peers / 2) + 1 in
      (match Fsync_swarm.Replica.find replica path with
      | Some e when e.Fsync_swarm.Replica.present ->
          Format.printf "%s: %d B, %s@." path e.Fsync_swarm.Replica.len
            (Fsync_swarm.Version_vector.pp e.Fsync_swarm.Replica.vv)
      | Some _ -> Format.printf "%s: deleted (tombstone)@." path
      | None -> Format.printf "%s: unknown everywhere@." path);
      if !answered >= quorum then begin
        Format.printf "quorum: %d/%d peers answered@." !answered
          (List.length peers);
        `Ok ()
      end
      else
        `Error
          ( false,
            Printf.sprintf "no quorum: %d/%d peers answered (need %d)"
              !answered (List.length peers) quorum )
    end
  in
  Cmd.v
    (Cmd.info "repair"
       ~doc:
         "Quorum read-repair one path: probe every listed peer, merge \
          their entries into the local replica, pull winning content.")
    Term.(
      ret
        (const run $ swarm_root_arg $ swarm_id_arg $ swarm_peers_arg
       $ path_arg))

let swarm_cmd =
  Cmd.group
    (Cmd.info "swarm"
       ~doc:
         "N-peer anti-entropy: version vectors, gossip reconciliation, \
          quorum read-repair (DESIGN.md \194\16713).")
    [ swarm_serve_cmd; swarm_join_cmd; swarm_status_cmd; swarm_repair_cmd ]

(* ---- info ---- *)

let info_cmd =
  let run config =
    Format.printf "%a@." Fsync_core.Config.pp config
  in
  Cmd.v (Cmd.info "info" ~doc:"Print the selected configuration preset.")
    Term.(const run $ config_arg)

let main =
  let doc = "bandwidth-efficient file synchronization (Suel-Noel-Trendafilov, ICDE 2004)" in
  Cmd.group (Cmd.info "fsync" ~version:"1.0.0" ~doc)
    [
      sync_cmd;
      dir_cmd;
      delta_cmd;
      patch_cmd;
      rsync_cmd;
      gen_cmd;
      serve_cmd;
      pull_cmd;
      push_cmd;
      store_cmd;
      admin_cmd;
      top_cmd;
      trace_cmd;
      swarm_cmd;
      info_cmd;
    ]

let () = exit (Cmd.eval main)
