(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§6) on the synthetic stand-ins for its datasets.

     fig61    Fig 6.1  basic protocol vs min block size (gcc)
     fig62    Fig 6.2  same on emacs
     fig63    Fig 6.3  continuation hashes (gcc + emacs)
     fig64    Fig 6.4  match verification strategies (gcc)
     table61  Table 6.1  best results, all techniques
     table62  Table 6.2  web collection update cost
     metadata linear vs Merkle collection-metadata reconciliation
              (QUICK=1 shrinks the matrix for CI smoke tests); also
              writes BENCH_metadata.json
     collection  web-collection update costs per method, exported as
              BENCH_collection.json (scenario x config records with
              bytes, rounds, times and observability counters)
     server   concurrent-daemon throughput: client fleets pulling one
              collection through Fsync_server over the loopback driver,
              exported as BENCH_server.json with the shared
              signature-cache hit rate per run
     store    chunk-store dedup: overlapping client pushes with and
              without the store (BENCH_store.json, dedup ratio and the
              warm-restart signature-cache rate)
     swarm    N-peer anti-entropy: peers x change-rate matrix, gossip
              rounds-to-convergence and bytes-on-wire vs the all-pairs
              pairwise baseline (BENCH_swarm.json, schema fsync-swarm/1)
     torture  crash-tolerance matrix: {crash point x disk-fault
              schedule} x {push, pull, gc, compact} under injected
              faults, restart + fsck + convergence asserted per cell,
              plus the resumed-pull payload bar (BENCH_torture.json;
              QUICK=1 shrinks the crash-point sweep)
     ablate   ablations: decomposable / skip rules / candidate cap / local
     speed    bechamel micro-benchmarks (hashes, compressors, protocol)
     all      everything above (default)

   Costs are reported in KB as in the paper.  Dataset scale is controlled
   by FSYNC_SCALE (default "small"); the absolute KB therefore differ from
   the paper, but every comparison the paper makes is reproduced. *)

module Table = Fsync_util.Table
module Config = Fsync_core.Config
module Protocol = Fsync_core.Protocol
module Rsync = Fsync_rsync.Rsync
module Delta = Fsync_delta.Delta
module Source_tree = Fsync_workload.Source_tree
module Datasets = Fsync_workload.Datasets
module Driver = Fsync_collection.Driver
module Snapshot = Fsync_collection.Snapshot

let kb = Table.cell_kb

(* Monomorphic comparisons for (path, content) trees — the harness
   asserts replica equality constantly and must not rely on polymorphic
   compare (lint R1). *)
let entry_compare (p1, c1) (p2, c2) =
  match String.compare p1 p2 with 0 -> String.compare c1 c2 | c -> c

let entries_equal a b =
  List.equal
    (fun (p1, c1) (p2, c2) -> String.equal p1 p2 && String.equal c1 c2)
    a b

(* ---- machine-readable export (BENCH_*.json) ----

   The [metadata] and [collection] targets additionally write one JSON
   document each so CI (and scripts) can track the trajectory without
   scraping tables.  Schema: a header plus a [records] array of
   scenario x config rows; each row carries the link costs, the
   simulated slow-link time, the measured wall clock, and every
   observability counter the run produced (DESIGN.md §9). *)

module Json = Fsync_obs.Json

(* [Table.print] left the library (console I/O is the binary's job, R3);
   render here and print ourselves. *)
let print_table t =
  print_string (Fsync_util.Table.render t);
  print_newline ()


let quick_mode () =
  match Sys.getenv_opt "QUICK" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

(* The default slow link of the paper's evaluation: 50 ms one-way
   latency, 1 Mbit/s. *)
let slow_link_time ~rounds bytes =
  (2.0 *. 0.05 *. float_of_int rounds)
  +. (float_of_int bytes /. (1_000_000.0 /. 8.0))

let bench_record ~scenario ~config ~bytes_up ~bytes_down ~rounds ~elapsed_s
    ~wall_ns reg =
  Json.Obj
    [
      ("scenario", Json.String scenario);
      ("config", Json.String config);
      ("bytes_up", Json.Int bytes_up);
      ("bytes_down", Json.Int bytes_down);
      ("rounds", Json.Int rounds);
      ("elapsed_s", Json.Float elapsed_s);
      ("wall_ns", Json.Int wall_ns);
      ( "counters",
        Json.Obj
          (List.map
             (fun (name, v) -> (name, Json.Int v))
             (Fsync_obs.Registry.counters reg)) );
    ]

let write_bench_json path records =
  let doc =
    Json.Obj
      [
        ("schema", Json.String "fsync-bench/1");
        ("generated_unix_s", Json.Float (Unix.gettimeofday ()));
        ("scale", Json.String (Datasets.scale_name ()));
        ("quick", Json.Bool (quick_mode ()));
        ("records", Json.List records);
      ]
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Json.to_string doc);
      output_char oc '\n');
  Printf.printf "wrote %s (%d records)\n" path (List.length records)

(* Run [f] under a fresh registry; returns its result, the registry, and
   the measured wall clock in nanoseconds. *)
let observed f =
  let reg = Fsync_obs.Registry.create () in
  let scope = Fsync_obs.Scope.of_registry reg in
  let w0 = Unix.gettimeofday () in
  let x = f scope in
  let wall_ns = int_of_float ((Unix.gettimeofday () -. w0) *. 1e9) in
  (x, reg, wall_ns)

(* ---- aggregated costs over a list of (old, new) file pairs ---- *)

type ours_cost = {
  map_s2c : int;
  map_c2s : int;
  delta : int;
  header : int;
  total : int;
  roundtrips : int; (* max over files: files are processed concurrently, so
                       the collection pays the deepest file's trips *)
}

let run_ours cfg pairs =
  List.fold_left
    (fun acc (old_file, new_file) ->
      let r = Protocol.run ~config:cfg ~old_file new_file in
      assert (String.equal r.reconstructed new_file);
      let rep = r.report in
      {
        map_s2c = acc.map_s2c + rep.map_s2c;
        map_c2s = acc.map_c2s + rep.map_c2s;
        delta = acc.delta + rep.delta_bytes + rep.fallback_bytes;
        header = acc.header + rep.header_c2s + rep.header_s2c;
        total = acc.total + Protocol.total_bytes rep;
        roundtrips = max acc.roundtrips rep.roundtrips;
      })
    { map_s2c = 0; map_c2s = 0; delta = 0; header = 0; total = 0; roundtrips = 0 }
    pairs

let run_rsync ?config pairs =
  List.fold_left
    (fun (c2s, s2c) (old_file, new_file) ->
      let c = Rsync.cost_only ?config ~old_file new_file in
      (c2s + c.client_to_server, s2c + c.server_to_client))
    (0, 0) pairs

let run_rsync_best pairs =
  List.fold_left
    (fun (c2s, s2c) (old_file, new_file) ->
      let _, c = Rsync.best_block_size ~old_file new_file in
      (c2s + c.client_to_server, s2c + c.server_to_client))
    (0, 0) pairs

let run_delta profile pairs =
  List.fold_left
    (fun acc (old_file, new_file) ->
      acc + Delta.encoded_size ~profile ~reference:old_file new_file)
    0 pairs

let pairs_of_tree (pair : Source_tree.pair) =
  List.map
    (fun ((o : Source_tree.file), (n : Source_tree.file)) -> (o.content, n.content))
    (Source_tree.changed_files pair)

let dataset_header (pair : Source_tree.pair) =
  Printf.printf "dataset %s [%s scale]: %d files, %.1f MB -> %.1f MB\n"
    pair.name (Datasets.scale_name ())
    (List.length pair.new_version)
    (float_of_int (Source_tree.total_bytes pair.old_version) /. 1048576.0)
    (float_of_int (Source_tree.total_bytes pair.new_version) /. 1048576.0)

(* ---- Fig 6.1 / 6.2: basic protocol vs minimum block size ---- *)

let fig_basic ~fig (pair : Source_tree.pair) =
  dataset_header pair;
  let pairs = pairs_of_tree pair in
  let t =
    Table.create
      ~caption:
        (Printf.sprintf
           "Figure %s: basic protocol (recursive halving + decomposable \
            hashes + per-candidate verification) on %s; costs in KB"
           fig pair.name)
      [
        ("variant", Table.Left); ("s2c map", Table.Right); ("c2s map", Table.Right);
        ("delta", Table.Right); ("header", Table.Right); ("total", Table.Right);
        ("rt", Table.Right);
      ]
  in
  List.iter
    (fun min_block ->
      let cfg = { Config.basic with min_global_block = min_block } in
      let c = run_ours cfg pairs in
      Table.add_row t
        [ Printf.sprintf "ours, min block %d" min_block;
          kb c.map_s2c; kb c.map_c2s; kb c.delta; kb c.header; kb c.total;
          string_of_int c.roundtrips ])
    [ 512; 256; 128; 64; 32; 16 ];
  Table.add_rule t;
  let c2s, s2c = run_rsync pairs in
  Table.add_row t
    [ "rsync (block 700)"; kb s2c; kb c2s; "-"; "-"; kb (c2s + s2c); "1" ];
  let bc2s, bs2c = run_rsync_best pairs in
  Table.add_row t
    [ "rsync (best block)"; kb bs2c; kb bc2s; "-"; "-"; kb (bc2s + bs2c); "1" ];
  let z = run_delta Delta.Zdelta pairs in
  Table.add_row t [ "zdelta (lower bound)"; "-"; "-"; kb z; "-"; kb z; "1" ];
  print_table t

(* ---- Fig 6.3: continuation hashes ---- *)

let fig63 () =
  List.iter
    (fun pair ->
      dataset_header pair;
      let pairs = pairs_of_tree pair in
      let base_cfg =
        { Config.basic with
          verification = Config.grouped_verification 1;
          min_global_block = 128 }
      in
      let t =
        Table.create
          ~caption:
            (Printf.sprintf
               "Figure 6.3: continuation hashes on %s (group verification \
                on, global hashes stop at 128 B); costs in KB"
               pair.name)
          [
            ("continuation", Table.Left); ("s2c map", Table.Right);
            ("c2s map", Table.Right); ("delta", Table.Right);
            ("total", Table.Right);
          ]
      in
      let run name cfg =
        let c = run_ours cfg pairs in
        Table.add_row t [ name; kb c.map_s2c; kb c.map_c2s; kb c.delta; kb c.total ]
      in
      run "none (group verify only)" base_cfg;
      List.iter
        (fun cont_min ->
          run
            (Printf.sprintf "down to %d B" cont_min)
            (Config.with_continuation ~cont_min_block:cont_min base_cfg))
        [ 64; 32; 16; 8 ];
      print_table t)
    [ Datasets.gcc (); Datasets.emacs () ]

(* ---- Fig 6.4: match verification strategies ---- *)

let fig64 () =
  let pair = Datasets.gcc () in
  dataset_header pair;
  let pairs = pairs_of_tree pair in
  let base = Config.with_continuation { Config.basic with min_global_block = 128 } in
  let t =
    Table.create
      ~caption:
        "Figure 6.4: match verification strategies on gcc (continuation on); \
         costs in KB; 'vrt' = verification round trips per round"
      [
        ("strategy", Table.Left); ("vrt", Table.Right); ("c2s map", Table.Right);
        ("s2c map", Table.Right); ("delta", Table.Right); ("total", Table.Right);
      ]
  in
  List.iter
    (fun (name, vrt, verification) ->
      let c = run_ours { base with verification } pairs in
      Table.add_row t
        [ name; string_of_int vrt; kb c.map_c2s; kb c.map_s2c; kb c.delta;
          kb c.total ])
    [
      ("trivial 16-bit per candidate", 1, Config.trivial_verification);
      ("weak filter + group", 2, Config.grouped_verification 1);
      ("+ individual salvage, retry", 3, Config.grouped_verification 2);
      ("+ growing groups", 4, Config.grouped_verification 3);
    ];
  print_table t

(* ---- Table 6.1: best results with all techniques ---- *)

let table61 () =
  let t =
    Table.create
      ~caption:"Table 6.1: best results using all techniques (KB)"
      [
        ("method", Table.Left); ("gcc", Table.Right); ("emacs", Table.Right);
        ("gcc vs rsync", Table.Right); ("emacs vs rsync", Table.Right);
      ]
  in
  let datasets = [ Datasets.gcc (); Datasets.emacs () ] in
  List.iter dataset_header datasets;
  let all_pairs = List.map pairs_of_tree datasets in
  let costs f = List.map f all_pairs in
  let rsync_costs = costs (fun pairs -> let a, b = run_rsync pairs in a + b) in
  let add name cs =
    let ratios =
      List.map2
        (fun c r -> Printf.sprintf "%.2fx" (float_of_int r /. float_of_int c))
        cs rsync_costs
    in
    Table.add_row t ((name :: List.map kb cs) @ ratios)
  in
  add "rsync (block 700)" rsync_costs;
  add "rsync (best block)" (costs (fun p -> let a, b = run_rsync_best p in a + b));
  add "cdc (LBFS-style)"
    (costs
       (List.fold_left
          (fun acc (old_file, new_file) ->
            acc
            + Fsync_cdc.Lbfs_sync.total
                (Fsync_cdc.Lbfs_sync.sync ~old_file new_file).cost)
          0));
  add "ours (single round)"
    (costs (fun p -> (run_ours Config.single_round p).total));
  add "ours (one-way broadcast)"
    (costs
       (List.fold_left
          (fun acc (old_file, new_file) ->
            acc
            + Fsync_core.Oneway.total_bytes
                (Fsync_core.Oneway.sync ~old_file new_file).report)
          0));
  add "ours (all techniques)" (costs (fun p -> (run_ours Config.tuned p).total));
  add "vcdiff (lower bound)" (costs (run_delta Delta.Vcdiff));
  add "zdelta (lower bound)" (costs (run_delta Delta.Zdelta));
  print_table t

(* ---- Table 6.2: web collection update cost ---- *)

let table62 () =
  let days = [ 1; 2; 7 ] in
  let base = Datasets.web_base () in
  let snapshots = Datasets.web_snapshots ~days in
  let n_pages = Array.length base in
  Printf.printf
    "web collection [%s scale]: %d pages, %.1f MB base; costs below are KB \
     for this scale (paper: 10,000 pages)\n"
    (Datasets.scale_name ()) n_pages
    (float_of_int (Fsync_workload.Web_collection.total_bytes base) /. 1048576.0);
  let t =
    Table.create
      ~caption:
        "Table 6.2: cost of updating the web collection, by update interval \
         (KB; per-file fingerprints skip unchanged pages)"
      [
        ("method", Table.Left); ("1 day", Table.Right); ("2 days", Table.Right);
        ("7 days", Table.Right);
      ]
  in
  let to_snapshot pages =
    Snapshot.of_files
      (Array.to_list
         (Array.map
            (fun (p : Fsync_workload.Web_collection.page) -> (p.url, p.content))
            pages))
  in
  let client = to_snapshot base in
  let servers = List.map to_snapshot snapshots in
  let methods =
    [
      Driver.Full_compressed;
      Driver.Rsync_default;
      Driver.Fsync Config.tuned;
      Driver.Delta_lower_bound Delta.Zdelta;
    ]
  in
  List.iter
    (fun m ->
      let cells =
        List.map
          (fun server ->
            let updated, summary = Driver.sync m ~client ~server in
            assert (entries_equal (Snapshot.files updated) (Snapshot.files server));
            kb (Driver.total summary))
          servers
      in
      Table.add_row t (Driver.method_name m :: cells))
    methods;
  print_table t

(* ---- ablations ---- *)

let ablate () =
  let pair = Datasets.gcc () in
  dataset_header pair;
  let pairs = pairs_of_tree pair in
  let t =
    Table.create
      ~caption:"Ablations on gcc (KB): each row toggles one design choice"
      [
        ("configuration", Table.Left); ("s2c map", Table.Right);
        ("c2s map", Table.Right); ("delta", Table.Right); ("total", Table.Right);
      ]
  in
  let run name cfg =
    let c = run_ours cfg pairs in
    Table.add_row t [ name; kb c.map_s2c; kb c.map_c2s; kb c.delta; kb c.total ]
  in
  let tuned = Config.tuned in
  run "tuned (reference)" tuned;
  run "- decomposable hashes" { tuned with decomposable = false };
  run "- continuation hashes"
    { tuned with continuation = { tuned.continuation with cont_enabled = false } };
  run "- skip sibling after cont" { tuned with skip_sibling_after_cont = false };
  run "+ omit global after cont miss"
    { tuned with omit_global_after_cont_miss = true };
  run "+ local hashes"
    { tuned with
      local =
        { local_enabled = true; local_bits = 10; local_window = 64;
          local_range = 4096 } };
  run "candidate cap 1" { tuned with candidate_cap = 1 };
  run "candidate cap 8" { tuned with candidate_cap = 8 };
  run "+ message compression" { tuned with compress_messages = true };
  run "vcdiff delta profile" { tuned with delta_profile = Delta.Vcdiff };
  run "single-round preset" Config.single_round;
  print_table t;
  (* Adaptive selection (S7): per-file probing then the chosen config. *)
  let ad_total, probe_total =
    List.fold_left
      (fun (t, p) (old_file, new_file) ->
        let r, pr = Fsync_core.Adaptive.sync ~old_file new_file in
        ( t + Protocol.total_bytes r.report,
          p + pr.probe_c2s + pr.probe_s2c ))
      (0, 0) pairs
  in
  Printf.printf "adaptive: %.1f KB + %.1f KB probe cost\n"
    (float_of_int ad_total /. 1024.) (float_of_int probe_total /. 1024.);
  (* Harvest rates (§6.2): the percentage of hashes that produce candidate
     matches and confirmed matches, per phase.  The paper observes that
     continuation hashes have a much higher harvest rate than global
     hashes, which is why they remain profitable at tiny block sizes. *)
  let tbl = Hashtbl.create 4 in
  List.iter
    (fun (old_file, new_file) ->
      let r = Protocol.run ~config:tuned ~old_file new_file in
      List.iter
        (fun (name, (st : Protocol.phase_stat)) ->
          let h, hit, c =
            match Hashtbl.find_opt tbl name with
            | Some v -> v
            | None -> (0, 0, 0)
          in
          Hashtbl.replace tbl name
            (h + st.hashes, hit + st.hits, c + st.confirms))
        r.report.phase_stats)
    pairs;
  let ht =
    Table.create ~caption:"harvest rate by phase (tuned config)"
      [
        ("phase", Table.Left); ("hashes", Table.Right); ("hits", Table.Right);
        ("confirmed", Table.Right); ("harvest", Table.Right);
      ]
  in
  List.iter
    (fun name ->
      match Hashtbl.find_opt tbl name with
      | None -> ()
      | Some (h, hit, c) ->
          Table.add_row ht
            [ name; string_of_int h; string_of_int hit; string_of_int c;
              Printf.sprintf "%.1f%%" (100.0 *. float_of_int c /. float_of_int (max h 1)) ])
    [ "cont"; "global"; "local" ];
  print_table ht

(* ---- broadcast: the asymmetric one-way setting (S7) ---- *)

let broadcast () =
  (* One current file, many clients holding slightly different outdated
     versions.  The interactive protocol repeats per-client work; the
     one-way signature is published once. *)
  let rng = Fsync_util.Prng.create 314L in
  let new_file = Fsync_workload.Text_gen.c_like rng ~lines:12_000 in
  let make_client i =
    let rng = Fsync_util.Prng.create (Int64.of_int (9000 + i)) in
    ( Fsync_workload.Edit_model.mutate rng
        ~profile:Fsync_workload.Edit_model.light
        ~gen_text:(fun rng n ->
          String.init n (fun _ -> Char.chr (97 + Fsync_util.Prng.int rng 26)))
        new_file,
      new_file )
  in
  Printf.printf "broadcast scenario: one %d-byte file, outdated clients\n"
    (String.length new_file);
  let t =
    Table.create
      ~caption:
        "server upload to bring N clients up to date (KB); one-way \
         publishes its signature once and does no per-client rounds"
      [
        ("clients", Table.Right); ("full (compressed)", Table.Right);
        ("interactive (tuned)", Table.Right); ("one-way", Table.Right);
        ("one-way/client", Table.Right);
      ]
  in
  let full_one = Fsync_compress.Deflate.compressed_size new_file in
  List.iter
    (fun n ->
      let clients = List.init n make_client in
      let interactive =
        List.fold_left
          (fun acc (old_file, nf) ->
            let r = Protocol.run ~config:Config.tuned ~old_file nf in
            acc + r.report.total_s2c)
          0 clients
      in
      let oneway = Fsync_core.Oneway.broadcast_cost ~clients () in
      Table.add_row t
        [
          string_of_int n; kb (full_one * n); kb interactive; kb oneway;
          kb (oneway / max n 1);
        ])
    [ 1; 4; 16; 64 ];
  print_table t;
  print_endline
    "one-way trades bytes for server passivity: no per-client rounds, a\n\
     broadcastable signature, ~4x below a full compressed send; the\n\
     interactive protocol stays the byte optimum when the server can\n\
     afford per-client work (S7's trade-off)."

(* ---- latency: roundtrip amortization on slow links (S2.3) ---- *)

let latency () =
  let pair = Datasets.gcc () in
  dataset_header pair;
  let triples =
    List.mapi
      (fun i (old_file, new_file) -> (string_of_int i, old_file, new_file))
      (pairs_of_tree pair)
  in
  let _, report = Fsync_collection.Pipeline.sync ~config:Config.tuned triples in
  let rsync_c2s, rsync_s2c = run_rsync (pairs_of_tree pair) in
  let rsync_bytes = rsync_c2s + rsync_s2c in
  Printf.printf
    "ours: %d KB, %d roundtrips sequentially, %d when rounds are batched \
     across files\n"
    (Fsync_collection.Pipeline.total_bytes report / 1024)
    report.sequential_roundtrips report.batched_roundtrips;
  let t =
    Table.create
      ~caption:
        "end-to-end time for the whole collection on a slow link (seconds; \
         rsync pays 1 batched round trip)"
      [
        ("link", Table.Left); ("rsync", Table.Right);
        ("ours sequential", Table.Right); ("ours batched", Table.Right);
      ]
  in
  List.iter
    (fun (name, latency_s, bandwidth_bps) ->
      let rsync_t =
        (2.0 *. latency_s) +. (float_of_int rsync_bytes /. (bandwidth_bps /. 8.0))
      in
      let seq =
        Fsync_collection.Pipeline.elapsed_s ~latency_s ~bandwidth_bps
          ~batched:false report
      in
      let bat =
        Fsync_collection.Pipeline.elapsed_s ~latency_s ~bandwidth_bps
          ~batched:true report
      in
      Table.add_row t
        [ name; Printf.sprintf "%.1f" rsync_t; Printf.sprintf "%.1f" seq;
          Printf.sprintf "%.1f" bat ])
    [
      ("DSL: 50 ms, 1 Mbit/s", 0.05, 1_000_000.0);
      ("modem: 150 ms, 56 kbit/s", 0.15, 56_000.0);
      ("LAN: 1 ms, 100 Mbit/s", 0.001, 100_000_000.0);
    ];
  print_table t

(* ---- dispersion: clustered vs dispersed changes (S2.3) ---- *)

let dispersion () =
  (* "If a single character is changed in each block, rsync will be
     completely ineffective; if all changes are clustered in a few areas,
     rsync will do well even with a large block size."  Same edit volume,
     varying clustering. *)
  let rng0 = Fsync_util.Prng.create 77L in
  let old_file = Fsync_workload.Text_gen.c_like rng0 ~lines:12_000 in
  let t =
    Table.create
      ~caption:
        (Printf.sprintf
           "clustered vs dispersed edits (%d-byte file, equal edit volume; \
            KB)"
           (String.length old_file))
      [
        ("clustering", Table.Left); ("rsync", Table.Right);
        ("ours (tuned)", Table.Right); ("zdelta", Table.Right);
        ("ours/rsync", Table.Right);
      ]
  in
  List.iter
    (fun clustering ->
      let rng = Fsync_util.Prng.create 78L in
      let profile =
        { Fsync_workload.Edit_model.medium with clustering }
      in
      let new_file =
        Fsync_workload.Edit_model.mutate rng ~profile
          ~gen_text:(fun rng n ->
            String.init n (fun _ ->
                Char.chr (97 + Fsync_util.Prng.int rng 26)))
          old_file
      in
      let rsync = Rsync.total (Rsync.cost_only ~old_file new_file) in
      let ours =
        Protocol.total_bytes
          (Protocol.run ~config:Config.tuned ~old_file new_file).report
      in
      let z = Delta.encoded_size ~reference:old_file new_file in
      Table.add_row t
        [
          Printf.sprintf "%.1f" clustering;
          kb rsync; kb ours; kb z;
          Printf.sprintf "%.2fx" (float_of_int rsync /. float_of_int ours);
        ])
    [ 0.95; 0.7; 0.4; 0.0 ];
  print_table t;
  (* The adversarial extreme: exactly one character changed every
     [stride] bytes, so no [stride]-sized block survives intact. *)
  let t2 =
    Table.create
      ~caption:"one changed character every N bytes (rsync's worst case; KB)"
      [
        ("stride", Table.Left); ("rsync", Table.Right);
        ("ours (tuned)", Table.Right); ("zdelta", Table.Right);
        ("ours/rsync", Table.Right);
      ]
  in
  List.iter
    (fun stride ->
      let bytes = Bytes.of_string old_file in
      let i = ref (stride / 2) in
      while !i < Bytes.length bytes do
        Bytes.set bytes !i '#';
        i := !i + stride
      done;
      let new_file = Bytes.to_string bytes in
      let rsync = Rsync.total (Rsync.cost_only ~old_file new_file) in
      let ours =
        Protocol.total_bytes
          (Protocol.run ~config:Config.tuned ~old_file new_file).report
      in
      let z = Delta.encoded_size ~reference:old_file new_file in
      Table.add_row t2
        [
          Printf.sprintf "%d B" stride;
          kb rsync; kb ours; kb z;
          Printf.sprintf "%.2fx" (float_of_int rsync /. float_of_int ours);
        ])
    [ 4096; 1024; 600; 256 ];
  print_table t2

(* ---- metadata: linear fingerprint exchange vs Merkle reconciliation ---- *)

let metadata () =
  (* The paper's collection driver spends O(total files) metadata bytes
     per sync even when almost nothing changed.  This scenario sweeps
     collection size x changed fraction and compares the linear exchange
     against the Merkle anti-entropy descent, including simulated time on
     the default slow link (50 ms one-way, 1 Mbit/s). *)
  let quick = quick_mode () in
  let sizes = if quick then [ 100; 1000 ] else [ 100; 1000; 10_000 ] in
  let fractions = if quick then [ 0.01; 0.1 ] else [ 0.001; 0.01; 0.1 ] in
  let latency_s = 0.05 and bandwidth_bps = 1_000_000.0 in
  let link_time ~rounds bytes =
    (2.0 *. latency_s *. float_of_int rounds)
    +. (float_of_int bytes /. (bandwidth_bps /. 8.0))
  in
  let plain_meta_bytes = ref 0 and framed_meta_bytes = ref 0 in
  let records = ref [] in
  let t =
    Table.create
      ~caption:
        "metadata reconciliation: bytes to agree on the changed/new/deleted \
         path sets (KB) and simulated metadata time on a 50 ms / 1 Mbit/s \
         link; the transfer phase is identical in both modes"
      [
        ("files", Table.Right); ("changed", Table.Right);
        ("linear KB", Table.Right); ("merkle KB", Table.Right);
        ("ratio", Table.Right); ("rounds", Table.Right);
        ("linear s", Table.Right); ("merkle s", Table.Right);
      ]
  in
  List.iter
    (fun n ->
      let rng = Fsync_util.Prng.create (Int64.of_int (7000 + n)) in
      let base =
        List.init n (fun i ->
            ( Printf.sprintf "site/d%02d/page%05d.html" (i mod 37) i,
              Printf.sprintf
                "<html><head><title>page %d</title></head><body>section %d \
                 content %d %d</body></html>"
                i (i mod 97)
                (Fsync_util.Prng.int rng 1_000_000)
                (Fsync_util.Prng.int rng 1_000_000) ))
      in
      let client = Snapshot.of_files base in
      List.iter
        (fun fraction ->
          let n_changed =
            int_of_float ((fraction *. float_of_int n) +. 0.5)
          in
          let server_files =
            List.mapi
              (fun i (p, c) ->
                (* Deterministically spread the changes over the
                   collection: every (n / n_changed)-th file is edited. *)
                if n_changed > 0 && i mod (max 1 (n / n_changed)) = 0
                   && i / max 1 (n / n_changed) < n_changed
                then (p, c ^ Printf.sprintf "<!-- edit %d -->" i)
                else (p, c))
              base
          in
          let server = Snapshot.of_files server_files in
          let run metadata =
            observed (fun scope ->
                let updated, summary =
                  Driver.sync ~metadata ~scope Driver.Full_raw ~client ~server
                in
                assert (entries_equal (Snapshot.files updated) (Snapshot.files server));
                summary)
          in
          let lin, lin_reg, lin_ns = run Driver.Linear in
          let mer, mer_reg, mer_ns = run Driver.Merkle in
          let lb = Driver.meta_total lin and mb = Driver.meta_total mer in
          let scenario =
            Printf.sprintf "metadata/files=%d/changed=%.3f" n fraction
          in
          let record (s : Driver.summary) reg wall_ns =
            bench_record ~scenario ~config:s.metadata_used
              ~bytes_up:s.meta_c2s ~bytes_down:s.meta_s2c
              ~rounds:s.meta_rounds
              ~elapsed_s:
                (slow_link_time ~rounds:s.meta_rounds (Driver.meta_total s))
              ~wall_ns reg
          in
          records :=
            record mer mer_reg mer_ns :: record lin lin_reg lin_ns
            :: !records;
          (* Framing-overhead audit: replay the same metadata dialogues
             over a channel with the reliability layer installed and
             accumulate both byte counts across the whole scenario. *)
          List.iter
            (fun metadata ->
              let measure framed =
                let ch = Fsync_net.Channel.create () in
                let frame =
                  if framed then Some (Fsync_net.Frame.attach ch) else None
                in
                let _ =
                  Driver.sync ~metadata ~meta_channel:ch Driver.Full_raw
                    ~client ~server
                in
                (match frame with
                | Some f -> Fsync_net.Frame.detach f
                | None -> ());
                Fsync_net.Channel.total_bytes ch
              in
              plain_meta_bytes := !plain_meta_bytes + measure false;
              framed_meta_bytes := !framed_meta_bytes + measure true)
            [ Driver.Linear; Driver.Merkle ];
          Table.add_row t
            [
              string_of_int n;
              Printf.sprintf "%.1f%%" (100.0 *. fraction);
              kb lb; kb mb;
              Printf.sprintf "%.1fx" (float_of_int lb /. float_of_int (max 1 mb));
              string_of_int mer.meta_rounds;
              Printf.sprintf "%.2f" (link_time ~rounds:lin.meta_rounds lb);
              Printf.sprintf "%.2f" (link_time ~rounds:mer.meta_rounds mb);
            ])
        fractions;
      Table.add_rule t)
    sizes;
  print_table t;
  let overhead =
    100.0
    *. float_of_int (!framed_meta_bytes - !plain_meta_bytes)
    /. float_of_int (max 1 !plain_meta_bytes)
  in
  Printf.printf
    "reliability framing overhead across the scenario: %d -> %d bytes \
     (+%.2f%%, target < 3%%)\n"
    !plain_meta_bytes !framed_meta_bytes overhead;
  print_endline
    "merkle wins when the changed fraction is small (the paper's nightly\n\
     recrawl regime); linear wins on heavily-changed collections where the\n\
     descent must open most subtrees anyway.  Rounds grow O(log n) and are\n\
     amortized across the collection exactly like the per-file protocol's.";
  write_bench_json "BENCH_metadata.json" (List.rev !records)

(* ---- collection: whole-driver costs, machine-readable ---- *)

let collection () =
  (* The web-collection scenario of Table 6.2, exported as
     BENCH_collection.json: one record per update interval x transfer
     method, carrying both directions' bytes, metadata rounds, the
     simulated slow-link time and the observability counters. *)
  let quick = quick_mode () in
  let days = if quick then [ 1 ] else [ 1; 2; 7 ] in
  let base = Datasets.web_base () in
  let snapshots = Datasets.web_snapshots ~days in
  Printf.printf "collection export [%s scale]: %d pages, %d update intervals\n"
    (Datasets.scale_name ()) (Array.length base) (List.length days);
  let to_snapshot pages =
    Snapshot.of_files
      (Array.to_list
         (Array.map
            (fun (p : Fsync_workload.Web_collection.page) -> (p.url, p.content))
            pages))
  in
  let client = to_snapshot base in
  let methods =
    if quick then [ Driver.Full_compressed; Driver.Fsync Config.tuned ]
    else
      [
        Driver.Full_compressed;
        Driver.Rsync_default;
        Driver.Fsync Config.tuned;
        Driver.Delta_lower_bound Delta.Zdelta;
      ]
  in
  let records =
    List.concat_map
      (fun (day, pages) ->
        let server = to_snapshot pages in
        List.map
          (fun m ->
            let (summary : Driver.summary), reg, wall_ns =
              observed (fun scope ->
                  let updated, summary =
                    Driver.sync ~metadata:Driver.Merkle ~scope m ~client
                      ~server
                  in
                  assert (entries_equal (Snapshot.files updated) (Snapshot.files server));
                  summary)
            in
            bench_record
              ~scenario:(Printf.sprintf "web/day=%d" day)
              ~config:(Driver.method_name m) ~bytes_up:summary.total_c2s
              ~bytes_down:summary.total_s2c ~rounds:summary.meta_rounds
              ~elapsed_s:
                (slow_link_time ~rounds:summary.meta_rounds
                   (Driver.total summary))
              ~wall_ns reg)
          methods)
      (List.combine days snapshots)
  in
  write_bench_json "BENCH_collection.json" records

(* ---- server: concurrent daemon throughput over the loopback driver ---- *)

let server () =
  (* Fleets of outdated clients pulling the same collection from one
     {!Fsync_server.Daemon} over socketpairs, exported as
     BENCH_server.json: one record per collection size x fleet size,
     with the aggregate bytes both ways, the max round-trip count of
     any client, the wall clock of the whole pump loop, and the shared
     signature cache's hit rate — the number the daemon exists for
     (every client after the first should find its level hashes hot). *)
  let module Daemon = Fsync_server.Daemon in
  let module Loopback = Fsync_server.Loopback in
  let module Sigcache = Fsync_server.Sigcache in
  let module Prng = Fsync_util.Prng in
  let quick = quick_mode () in
  let matrix =
    if quick then [ (12, 4) ]
    else [ (12, 2); (12, 8); (48, 2); (48, 8) ]
  in
  Printf.printf "server scenario [%s]: files x clients = %s\n"
    (if quick then "quick" else "full")
    (String.concat ", "
       (List.map (fun (f, c) -> Printf.sprintf "%dx%d" f c) matrix));
  let collection ~files seed =
    let rng = Prng.create (Int64.of_int seed) in
    List.init files (fun i ->
        ( Printf.sprintf "src/mod%02d.c" i,
          Fsync_workload.Text_gen.c_like rng ~lines:(80 + Prng.int rng 120) ))
  in
  let outdate ~seed files =
    (* Each client lags differently: some files intact, some locally
       edited (lines dropped and appended), one stale extra. *)
    let rng = Prng.create (Int64.of_int seed) in
    let lagged =
      List.filter_map
        (fun (path, content) ->
          if Prng.bernoulli rng 0.4 then Some (path, content)
          else if Prng.bernoulli rng 0.1 then None
          else
            let lines = String.split_on_char '\n' content in
            let kept =
              List.filteri (fun i _ -> not (Int.equal (i mod 17) (seed mod 17)))
                lines
            in
            Some
              ( path,
                String.concat "\n" kept
                ^ Fsync_workload.Text_gen.boilerplate rng ))
        files
    in
    ("old/stale.txt", Fsync_workload.Text_gen.boilerplate rng) :: lagged
  in
  let records =
    List.map
      (fun (files, clients) ->
        let server_files = collection ~files (files * 7) in
        let replicas =
          List.init clients (fun i -> outdate ~seed:((i * 131) + 17) server_files)
        in
        let (results, cache_rate), reg, wall_ns =
          observed (fun scope ->
              let daemon = Daemon.create ~scope server_files in
              let results = Loopback.run_pulls ~daemon replicas in
              let rate = Sigcache.hit_rate (Daemon.cache daemon) in
              Daemon.shutdown daemon;
              (results, rate))
        in
        List.iter
          (fun (r : Loopback.pull_result) ->
            assert (entries_equal r.files server_files))
          results;
        let sum f = List.fold_left (fun a r -> a + f r) 0 results in
        let bytes_up = sum (fun (r : Loopback.pull_result) -> r.c2s_bytes) in
        let bytes_down = sum (fun (r : Loopback.pull_result) -> r.s2c_bytes) in
        let rounds =
          List.fold_left
            (fun a (r : Loopback.pull_result) -> max a r.roundtrips)
            0 results
        in
        Printf.printf
          "  %2d files x %d clients: %6d up / %7d down, %2d rounds, \
           sig-cache %.0f%%\n"
          files clients bytes_up bytes_down rounds (100.0 *. cache_rate);
        bench_record
          ~scenario:(Printf.sprintf "server/files=%d" files)
          ~config:
            (Printf.sprintf "clients=%d,cache=%.3f" clients cache_rate)
          ~bytes_up ~bytes_down ~rounds
          ~elapsed_s:(slow_link_time ~rounds (bytes_up + bytes_down))
          ~wall_ns reg)
      matrix
  in
  write_bench_json "BENCH_server.json" records

(* ---- store: cross-client dedup and warm restart ---- *)

let store () =
  (* N clients push overlapping trees into one daemon, with and without
     a chunk store behind it, exported as BENCH_store.json: the
     store-less run is the PR-5 baseline, the store-backed run shows the
     trailing clients' upload collapsing to their unique content
     (dedup ratio in the config string).  A third record measures the
     warm restart: pull, kill the daemon, reopen the same store root,
     pull again — the signature cache must restart hot. *)
  let module Daemon = Fsync_server.Daemon in
  let module Loopback = Fsync_server.Loopback in
  let module Sigcache = Fsync_server.Sigcache in
  let module Store = Fsync_store.Store in
  let module Prng = Fsync_util.Prng in
  let quick = quick_mode () in
  let matrix = if quick then [ (8, 3) ] else [ (8, 3); (24, 6) ] in
  Printf.printf "store scenario [%s]: shared files x clients = %s\n"
    (if quick then "quick" else "full")
    (String.concat ", "
       (List.map (fun (f, c) -> Printf.sprintf "%dx%d" f c) matrix));
  let rec rm_rf path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
  in
  let with_store_root f =
    let dir = Filename.temp_file "fsync_bench_store" "" in
    Sys.remove dir;
    Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)
  in
  let trees ~shared ~clients =
    let rng = Prng.create (Int64.of_int ((shared * 1009) + clients)) in
    let gen lines = Fsync_workload.Text_gen.c_like rng ~lines in
    let shared_files =
      List.init shared (fun i -> (Printf.sprintf "shared/s%02d.c" i, gen 120))
    in
    List.init clients (fun c ->
        shared_files
        @ List.init
            (max 1 (shared / 4))
            (fun j -> (Printf.sprintf "c%d/u%02d.c" c j, gen 100)))
  in
  (* Sequential pushes: each client sees what its predecessors stored.
     Returns the per-client accounted upload bytes, in client order. *)
  let push_seq ~daemon ts =
    List.map
      (fun t ->
        match Loopback.run_pushes ~daemon [ t ] with
        | [ r ] -> r.Loopback.up_bytes
        | _ -> (0 : int))
      ts
  in
  let trailing = function [] -> 0 | _ :: rest -> List.fold_left ( + ) 0 rest in
  let records =
    List.concat_map
      (fun (shared, clients) ->
        let ts = trees ~shared ~clients in
        (* PR-5 baseline: no store, every push uploads everything. *)
        let base_ups, base_reg, base_wall =
          observed (fun scope ->
              let daemon = Daemon.create ~scope [] in
              let ups = push_seq ~daemon ts in
              Daemon.shutdown daemon;
              ups)
        in
        let base_rec =
          bench_record
            ~scenario:(Printf.sprintf "store/push shared=%d" shared)
            ~config:(Printf.sprintf "clients=%d,mode=baseline" clients)
            ~bytes_up:(List.fold_left ( + ) 0 base_ups)
            ~bytes_down:0 ~rounds:clients
            ~elapsed_s:
              (slow_link_time ~rounds:clients (List.fold_left ( + ) 0 base_ups))
            ~wall_ns:base_wall base_reg
        in
        let store_recs =
          with_store_root (fun root ->
              let (ups, warm), reg, wall =
                observed (fun scope ->
                    let st = Store.open_store ~scope root in
                    let daemon = Daemon.create ~scope ~store:st [] in
                    let ups = push_seq ~daemon ts in
                    (* Warm restart: an outdated replica pulls, the
                       daemon dies, a fresh one over the same root
                       serves the same pull from persisted vectors. *)
                    let lag (path, content) =
                      let lines = String.split_on_char '\n' content in
                      ( path,
                        String.concat "\n"
                          (List.filteri (fun i _ -> i mod 9 <> 0) lines) )
                    in
                    let merged = Daemon.files daemon in
                    let replica = List.map lag merged in
                    ignore (Loopback.run_pulls ~daemon [ replica ]);
                    Daemon.shutdown daemon;
                    Store.close st;
                    let st2 = Store.open_store ~scope root in
                    let d2 = Daemon.create ~scope ~store:st2 merged in
                    (match Loopback.run_pulls ~daemon:d2 [ replica ] with
                    | [ r ] -> ignore r.Loopback.files
                    | _ -> ());
                    let warm =
                      ( Daemon.sigs_loaded d2,
                        Sigcache.warm_hit_rate (Daemon.cache d2) )
                    in
                    Daemon.shutdown d2;
                    Store.close st2;
                    (ups, warm))
              in
              let dedup =
                1.0
                -. (float_of_int (trailing ups)
                   /. float_of_int (max 1 (trailing base_ups)))
              in
              let sigs_loaded, warm_rate = warm in
              Printf.printf
                "  %2d shared x %d clients: trailing up %6d -> %6d \
                 (dedup %.0f%%), warm restart %d sigs, rate %.2f\n"
                shared clients (trailing base_ups) (trailing ups)
                (100.0 *. dedup) sigs_loaded warm_rate;
              [
                bench_record
                  ~scenario:(Printf.sprintf "store/push shared=%d" shared)
                  ~config:
                    (Printf.sprintf "clients=%d,mode=store,dedup=%.3f" clients
                       dedup)
                  ~bytes_up:(List.fold_left ( + ) 0 ups)
                  ~bytes_down:0 ~rounds:clients
                  ~elapsed_s:
                    (slow_link_time ~rounds:clients (List.fold_left ( + ) 0 ups))
                  ~wall_ns:wall reg;
                bench_record
                  ~scenario:(Printf.sprintf "store/warm shared=%d" shared)
                  ~config:
                    (Printf.sprintf "sigs=%d,warm=%.3f" sigs_loaded warm_rate)
                  ~bytes_up:0 ~bytes_down:0 ~rounds:1 ~elapsed_s:0.0
                  ~wall_ns:wall reg;
              ])
        in
        base_rec :: store_recs)
      matrix
  in
  write_bench_json "BENCH_store.json" records

(* ---- torture: crash points x disk-fault schedules x workloads ---- *)

let torture () =
  (* Crash-tolerance matrix (DESIGN.md §12): every cell runs one store
     or apply workload under a seeded {!Fsync_store.Fault_io} schedule
     with a hard crash at the K-th mutating syscall, then models the
     restart — reopen with a clean [Io], assert {!Store.fsck} reports
     zero error findings (or roll the apply journal forward), re-run the
     workload to completion and verify byte-identical convergence.  Any
     violation aborts the run; a completed run means every cell held.
     The resumed-pull measurement at the end asserts the fsyncd/1 resume
     token re-transfers at most 25% of a cold pull's payload.  Exported
     as BENCH_torture.json. *)
  let module Store = Fsync_store.Store in
  let module Fault_io = Fsync_store.Fault_io in
  let module Apply = Fsync_collection.Apply in
  let module Session = Fsync_server.Session in
  let module Puller = Fsync_server.Puller in
  let module Sigcache = Fsync_server.Sigcache in
  let module Scope = Fsync_obs.Scope in
  let module Prng = Fsync_util.Prng in
  let quick = quick_mode () in
  let crash_points =
    if quick then [ 1; 3; 8; 21 ] else [ 1; 2; 3; 5; 8; 13; 21; 34 ]
  in
  let schedules =
    [
      { Fault_io.none with Fault_io.p_enospc = 0.05 };
      { Fault_io.none with Fault_io.p_eio = 0.05 };
      { Fault_io.none with Fault_io.p_short = 0.1; Fault_io.p_eio = 0.02 };
    ]
  in
  let rec rm_rf path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
  in
  let with_tmp_root f =
    let dir = Filename.temp_file "fsync_torture" "" in
    Sys.remove dir;
    Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)
  in
  let split content =
    let n = String.length content in
    if n = 0 then [ "" ]
    else begin
      let acc = ref [] in
      let i = ref 0 in
      while !i < n do
        let len = min 1024 (n - !i) in
        acc := String.sub content !i len :: !acc;
        i := !i + len
      done;
      List.rev !acc
    end
  in
  let tree seed n =
    List.init n (fun i ->
        ( Printf.sprintf "d%d/f%02d.txt" (i mod 3) i,
          Fsync_workload.Text_gen.c_like
            (Prng.create (Int64.of_int (seed + i)))
            ~lines:(10 + ((i mod 7) * 5)) ))
  in
  let files = tree 400 6 in
  let push_files st fs =
    List.iter
      (fun (path, content) ->
        let fps = List.map (Store.put st) (split content) in
        Store.set_manifest st ~path fps)
      fs
  in
  let reconstruct st path =
    match Store.manifest st ~path with
    | None -> None
    | Some chunks ->
        let buf = Buffer.create 256 in
        List.iter
          (fun (fp, _len) ->
            match Store.get st fp with
            | Some bytes -> Buffer.add_string buf bytes
            | None ->
                failwith (Printf.sprintf "torture: missing chunk of %s" path))
          chunks;
        Some (Buffer.contents buf)
  in
  let check_store st ~present ~absent =
    List.iter
      (fun (path, content) ->
        match reconstruct st path with
        | Some got when String.equal got content -> ()
        | Some _ -> failwith (Printf.sprintf "torture: %s diverged" path)
        | None -> failwith (Printf.sprintf "torture: %s missing" path))
      present;
    List.iter
      (fun (path, _) ->
        match Store.manifest st ~path with
        | None -> ()
        | Some _ ->
            failwith (Printf.sprintf "torture: %s survived removal" path))
      absent
  in
  let assert_fsck_clean what st =
    match Store.fsck_errors (Store.fsck st) with
    | [] -> ()
    | errs ->
        failwith
          (Printf.sprintf "torture %s: fsck found %d error(s) after restart"
             what (List.length errs))
  in
  (* Each workload: the faulty phase (crash/fault exceptions expected),
     then the restart — clean handle, fsck, re-run, convergence. *)
  let faulty f =
    match f () with
    | () -> ()
    | exception Fault_io.Crash_point _ -> ()
    | exception Fsync_core.Error.E _ -> ()
  in
  let run_push ~seed spec root =
    let io, stats = Fault_io.wrap ~seed spec in
    faulty (fun () ->
        let st = Store.open_store ~io root in
        push_files st files;
        Store.close st);
    let st = Store.open_store root in
    assert_fsck_clean "push" st;
    push_files st files;
    check_store st ~present:files ~absent:[];
    Store.close st;
    stats ()
  in
  let doomed = List.filteri (fun i _ -> i mod 2 = 0) files in
  let kept = List.filteri (fun i _ -> i mod 2 = 1) files in
  let run_gc ~seed spec root =
    let st0 = Store.open_store root in
    push_files st0 files;
    Store.close st0;
    let io, stats = Fault_io.wrap ~seed spec in
    let sweep st =
      List.iter (fun (path, _) -> Store.remove_manifest st ~path) doomed;
      ignore (Store.gc st : int * int)
    in
    faulty (fun () ->
        let st = Store.open_store ~io root in
        sweep st;
        Store.close st);
    let st = Store.open_store root in
    assert_fsck_clean "gc" st;
    sweep st;
    check_store st ~present:kept ~absent:doomed;
    Store.close st;
    stats ()
  in
  let rewritten =
    List.map (fun (p, c) -> (p, c ^ "\n/* rewritten */\n")) files
  in
  let run_compact ~seed spec root =
    let st0 = Store.open_store root in
    push_files st0 files;
    Store.close st0;
    let io, stats = Fault_io.wrap ~seed spec in
    let churn st =
      push_files st rewritten;
      Store.compact st;
      ignore (Store.gc st : int * int)
    in
    faulty (fun () ->
        let st = Store.open_store ~io root in
        churn st;
        Store.close st);
    let st = Store.open_store root in
    assert_fsck_clean "compact" st;
    churn st;
    check_store st ~present:rewritten ~absent:[];
    Store.close st;
    stats ()
  in
  let old_files = tree 500 6 in
  let new_files =
    (* Edit half, delete one, add one: every journal record kind. *)
    ("d0/added.txt", "fresh content\n")
    :: List.filteri (fun i _ -> i <> 1) (
         List.mapi
           (fun i (p, c) -> if i mod 2 = 0 then (p, c ^ "\n// edited\n") else (p, c))
           old_files)
  in
  let rec tree_of_dir acc dir rel =
    Array.fold_left
      (fun acc name ->
        if String.equal rel "" && String.equal name Apply.dirname then acc
        else
          let p = Filename.concat dir name in
          let r = if String.equal rel "" then name else rel ^ "/" ^ name in
          if Sys.is_directory p then tree_of_dir acc p r
          else
            let ic = open_in_bin p in
            let c =
              Fun.protect
                ~finally:(fun () -> close_in_noerr ic)
                (fun () -> really_input_string ic (in_channel_length ic))
            in
            (r, c) :: acc)
      acc (Sys.readdir dir)
  in
  let run_pull ~seed spec root =
    ignore (Apply.apply ~root ~old_files:[] old_files : Apply.stats);
    let io, stats = Fault_io.wrap ~seed spec in
    faulty (fun () ->
        ignore (Apply.apply ~io ~root ~old_files new_files : Apply.stats));
    ignore (Apply.resume root : Apply.resumed);
    let current = tree_of_dir [] root "" in
    ignore (Apply.apply ~root ~old_files:current new_files : Apply.stats);
    let final = List.sort entry_compare (tree_of_dir [] root "") in
    if not (entries_equal final (List.sort entry_compare new_files)) then
      failwith "torture pull: replica diverged after recovery";
    stats ()
  in
  let workloads =
    [
      ("push", run_push); ("pull", run_pull); ("gc", run_gc);
      ("compact", run_compact);
    ]
  in
  Printf.printf
    "torture [%s]: %d crash points x %d schedules x %d workloads\n"
    (if quick then "quick" else "full")
    (List.length crash_points) (List.length schedules)
    (List.length workloads);
  let records = ref [] in
  List.iteri
    (fun wi (wname, run) ->
      List.iteri
        (fun si spec ->
          let cells, reg, wall_ns =
            observed (fun scope ->
                List.fold_left
                  (fun cells k ->
                    let spec = { spec with Fault_io.crash_at = Some k } in
                    let seed = (wi * 1000) + (si * 100) + k in
                    let st =
                      with_tmp_root (fun root -> run ~seed spec root)
                    in
                    Scope.add scope "fault_ops" st.Fault_io.ops;
                    Scope.add scope "fault_enospc" st.Fault_io.enospc;
                    Scope.add scope "fault_eio" st.Fault_io.eio;
                    Scope.add scope "fault_short" st.Fault_io.short_writes;
                    if st.Fault_io.crashed then Scope.incr scope "crashes";
                    Scope.incr scope "cells_converged";
                    cells + 1)
                  0 crash_points)
          in
          let sched =
            Fault_io.to_string { spec with Fault_io.crash_at = None }
          in
          Printf.printf "  %-7s faults=%-24s %d cells converged, fsck clean\n"
            wname sched cells;
          records :=
            bench_record
              ~scenario:(Printf.sprintf "torture/%s" wname)
              ~config:(Printf.sprintf "faults=%s,cells=%d" sched cells)
              ~bytes_up:0 ~bytes_down:0 ~rounds:cells
              ~elapsed_s:(float_of_int wall_ns /. 1e9)
              ~wall_ns reg
            :: !records)
        schedules)
    workloads;
  (* Resume economy: kill a pull after 10 of 12 files, reconnect with
     the resume token, and compare re-transferred payload to a cold
     pull (the ISSUE 7 acceptance bar: at most 25%). *)
  let server_files =
    List.init 12 (fun i ->
        ( Printf.sprintf "f%02d.txt" i,
          Fsync_workload.Text_gen.c_like
            (Prng.create (Int64.of_int (900 + i)))
            ~lines:80 ))
  in
  let pump ?(abort_after = max_int) session puller =
    let s2c = ref 0 in
    let q = Queue.create () in
    List.iter (fun f -> Queue.add f q) (Puller.start puller);
    (try
       while not (Queue.is_empty q || Puller.finished puller) do
         let frame = Queue.pop q in
         List.iter
           (fun r ->
             s2c := !s2c + String.length r;
             let completed =
               match Puller.resume_token puller with
               | Some t -> List.length t.Puller.rt_completed
               | None -> 0
             in
             if completed >= abort_after then raise Exit;
             List.iter (fun f -> Queue.add f q) (Puller.on_message puller r))
           (Session.on_message session frame)
       done
     with Exit -> ());
    !s2c
  in
  let mk_session () = Session.create ~cache:(Sigcache.create ()) server_files in
  let ratio, reg, wall_ns =
    observed (fun scope ->
        let cold_puller = Puller.create [] in
        let cold = pump (mk_session ()) cold_puller in
        if not (Puller.finished cold_puller) then
          failwith "torture resume: cold pull did not finish";
        let p1 = Puller.create [] in
        let (_ : int) = pump ~abort_after:10 (mk_session ()) p1 in
        let token =
          match Puller.resume_token p1 with
          | Some t -> t
          | None -> failwith "torture resume: interrupted pull has no token"
        in
        let p2 = Puller.create ~resume:token [] in
        let resumed = pump (mk_session ()) p2 in
        if not (Puller.finished p2) then
          failwith "torture resume: resumed pull did not finish";
        Scope.add scope "cold_bytes" cold;
        Scope.add scope "resumed_bytes" resumed;
        let ratio = float_of_int resumed /. float_of_int (max 1 cold) in
        Printf.printf "  resume: cold %d B, resumed %d B (%.1f%% re-sent)\n"
          cold resumed (100.0 *. ratio);
        if ratio > 0.25 then
          failwith
            (Printf.sprintf
               "torture resume: re-transferred %.1f%% of the cold payload \
                (bar: 25%%)"
               (100.0 *. ratio));
        ratio)
  in
  records :=
    bench_record ~scenario:"torture/resume"
      ~config:(Printf.sprintf "killed_after=10of12,ratio=%.3f" ratio)
      ~bytes_up:0 ~bytes_down:0 ~rounds:1
      ~elapsed_s:(float_of_int wall_ns /. 1e9)
      ~wall_ns reg
    :: !records;
  write_bench_json "BENCH_torture.json" (List.rev !records)

(* ---- theory: group-testing planner and searching-with-liars ---- *)

let theory () =
  let module VP = Fsync_core.Verification_planner in
  let t =
    Table.create
      ~caption:
        "group-testing verification schedules: expected cost per candidate \
         (Monte-Carlo, n=64 candidates per round)"
      [
        ("schedule", Table.Left); ("p genuine", Table.Right);
        ("bits/cand", Table.Right); ("recall", Table.Right);
        ("false+", Table.Right); ("trips", Table.Right);
      ]
  in
  let name_of (v : Config.verification) =
    String.concat "+"
      (List.map
         (fun (b : Config.batch) -> Printf.sprintf "%dx%d" b.group_size b.bits)
         v.batches)
  in
  List.iter
    (fun p ->
      List.iter
        (fun v ->
          let o = VP.expected_cost ~p_genuine:p ~n:64 v in
          Table.add_row t
            [
              name_of v;
              Printf.sprintf "%.2f" p;
              Printf.sprintf "%.1f" o.bits_per_candidate;
              Printf.sprintf "%.3f" o.confirmed_genuine;
              Printf.sprintf "%.4f" o.false_confirms;
              Printf.sprintf "%.1f" o.roundtrips;
            ])
        VP.menu;
      Table.add_rule t)
    [ 0.5; 0.9; 0.99 ];
  print_table t;
  List.iter
    (fun p ->
      let v, o = VP.recommend ~p_genuine:p ~n:64 () in
      Printf.printf "recommended at p=%.2f: %s (%.1f bits/cand)\n" p (name_of v)
        o.bits_per_candidate)
    [ 0.5; 0.9; 0.99 ];
  print_newline ();
  let module LS = Fsync_core.Liar_search in
  let lt =
    Table.create
      ~caption:
        "searching with liars (continuation-hash extension, Ulam's problem): \
         locating the true extension length among 256 positions"
      [
        ("strategy", Table.Left); ("lie bits", Table.Right);
        ("avg bits", Table.Right); ("avg queries", Table.Right);
        ("errors", Table.Right);
      ]
  in
  List.iter
    (fun lie_bits ->
      List.iter
        (fun (s, (r : LS.result)) ->
          Table.add_row lt
            [
              LS.strategy_name s;
              string_of_int lie_bits;
              Printf.sprintf "%.1f" r.avg_query_bits;
              Printf.sprintf "%.1f" r.avg_queries;
              Printf.sprintf "%.3f" r.error_rate;
            ])
        (LS.compare_strategies ~lie_bits ~verify_bits:16 ~max_extent:256 ());
      Table.add_rule lt)
    [ 2; 4; 8 ];
  print_table lt

(* ---- bechamel micro-benchmarks ---- *)

let speed () =
  let open Bechamel in
  let mb = 1 lsl 20 in
  let rng = Fsync_util.Prng.create 42L in
  let text = Fsync_workload.Text_gen.c_like rng ~lines:(mb / 35) in
  let data = String.sub text 0 (min mb (String.length text)) in
  let small = String.sub data 0 (1 lsl 16) in
  let old_small =
    Fsync_workload.Edit_model.mutate rng
      ~profile:Fsync_workload.Edit_model.medium
      ~gen_text:(fun rng n ->
        String.init n (fun _ -> Char.chr (97 + Fsync_util.Prng.int rng 26)))
      small
  in
  let tests =
    Test.make_grouped ~name:"fsync"
      [
        Test.make ~name:"md5 1MB"
          (Staged.stage (fun () -> ignore (Fsync_hash.Md5.digest data)));
        Test.make ~name:"poly-roll 1MB"
          (Staged.stage (fun () ->
               let r =
                 Fsync_hash.Poly_hash.Roller.create data ~window:64 ~pos:0
               in
               while Fsync_hash.Poly_hash.Roller.can_roll r do
                 Fsync_hash.Poly_hash.Roller.roll r
               done));
        Test.make ~name:"adler-roll 1MB"
          (Staged.stage (fun () ->
               let a = ref (Fsync_hash.Adler32.of_sub data ~pos:0 ~len:64) in
               for p = 1 to String.length data - 64 do
                 a :=
                   Fsync_hash.Adler32.roll !a ~out:data.[p - 1]
                     ~in_:data.[p + 63]
               done));
        Test.make ~name:"deflate 64KB"
          (Staged.stage (fun () -> ignore (Fsync_compress.Deflate.compress small)));
        Test.make ~name:"zdelta 64KB"
          (Staged.stage (fun () ->
               ignore (Delta.encode ~reference:old_small small)));
        Test.make ~name:"rsync 64KB"
          (Staged.stage (fun () -> ignore (Rsync.sync ~old_file:old_small small)));
        Test.make ~name:"protocol 64KB (tuned)"
          (Staged.stage (fun () ->
               ignore (Protocol.run ~config:Config.tuned ~old_file:old_small small)));
      ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:(Some 100) () in
  let raw = Benchmark.all cfg instances tests in
  let results = List.map (fun i -> Analyze.all ols i raw) instances in
  let results = Analyze.merge ols instances results in
  print_endline "micro-benchmarks (per-run wall clock):";
  Hashtbl.iter
    (fun measure tbl ->
      if String.equal measure (Measure.label Toolkit.Instance.monotonic_clock) then
        Hashtbl.iter
          (fun name ols_result ->
            match Analyze.OLS.estimates ols_result with
            | Some [ est ] -> Printf.printf "  %-30s %10.3f ms\n" name (est /. 1e6)
            | _ -> Printf.printf "  %-30s (no estimate)\n" name)
          tbl)
    results;
  print_newline ()

(* ---- swarm: N-peer anti-entropy vs the all-pairs baseline ---- *)

(* Peers x change-rate matrix (DESIGN.md §13): K peers diverge from a
   common base by editing [rate * files] files each, then converge two
   ways — the swarm's seeded random gossip ({!Fsync_swarm.Swarm_loopback},
   O(log K) expected rounds, Merkle descent per session) and the
   pre-swarm baseline of every peer pairwise-pulling from every other
   peer (K*(K-1) rev-2 sessions, full metadata each).  Both are the real
   measured protocols; BENCH_swarm.json (schema fsync-swarm/1) records
   bytes-on-wire, rounds and conflicts per cell, and each gossip record
   carries its bytes ratio against the baseline — the acceptance bar
   (<= 0.5 at 1% change) is enforced by tools/benchjson. *)

let swarm () =
  let module Prng = Fsync_util.Prng in
  let module Text_gen = Fsync_workload.Text_gen in
  let module Replica = Fsync_swarm.Replica in
  let module Swarm = Fsync_swarm.Swarm_loopback in
  let module Sloop = Fsync_server.Loopback in
  let module Sigcache = Fsync_server.Sigcache in
  let module Io = Fsync_store.Io in
  let quick = quick_mode () in
  let peer_counts = if quick then [ 4; 8 ] else [ 4; 8; 16 ] in
  let rates = if quick then [ 0.01; 0.10 ] else [ 0.01; 0.05; 0.20 ] in
  let base_files = if quick then 60 else 200 in
  Printf.printf "swarm scenario [%s]: %d base files, peers x rate = %s\n"
    (if quick then "quick" else "full")
    base_files
    (String.concat ", "
       (List.concat_map
          (fun k -> List.map (fun r -> Printf.sprintf "%dx%.2f" k r) rates)
          peer_counts));
  let rec rm_rf path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
  in
  let with_swarm_root f =
    let dir = Filename.temp_file "fsync_bench_swarm" "" in
    Sys.remove dir;
    Unix.mkdir dir 0o755;
    Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)
  in
  (* The shared base every peer starts from, and the per-peer seeded
     edits ([max 1 (rate * files)] files each, appended lines at random
     positions).  Overlapping picks at high rates become genuine
     concurrent edits and must surface as conflict siblings. *)
  let base_tree ~peers =
    let rng = Prng.create (Int64.of_int ((peers * 7919) + base_files)) in
    List.init base_files (fun i ->
        (Printf.sprintf "src/f%03d.c" i, Text_gen.c_like rng ~lines:40))
  in
  let peer_edits ~peers ~rate base =
    let files = Array.of_list base in
    let changed = max 1 (int_of_float (rate *. float_of_int base_files)) in
    List.init peers (fun p ->
        let prng = Prng.create (Int64.of_int ((p * 104729) + peers)) in
        let picks = Hashtbl.create changed in
        while Hashtbl.length picks < changed do
          Hashtbl.replace picks (Prng.int prng base_files) ()
        done;
        let idxs =
          List.sort Int.compare
            (Hashtbl.fold (fun i () acc -> i :: acc) picks [])
        in
        List.map
          (fun i ->
            let path, content = files.(i) in
            (path, content ^ Text_gen.c_like prng ~lines:6))
          idxs)
  in
  let write_tree root tree =
    List.iter
      (fun (path, content) ->
        let dest = Filename.concat root path in
        Io.mkdir_p Io.real (Filename.dirname dest);
        let oc = open_out_bin dest in
        output_string oc content;
        close_out oc)
      tree
  in
  let counters reg =
    Json.Obj
      (List.map
         (fun (name, v) -> (name, Json.Int v))
         (Fsync_obs.Registry.counters reg))
  in
  let swarm_record ~peers ~rate ~mode ~rounds ~sessions ~bytes ~conflicts
      ?ratio reg =
    Json.Obj
      ([
         ("peers", Json.Int peers);
         ("change_rate", Json.Float rate);
         ("mode", Json.String mode);
         ("rounds", Json.Int rounds);
         ("sessions", Json.Int sessions);
         ("bytes", Json.Int bytes);
         ("conflicts", Json.Int conflicts);
       ]
      @ (match ratio with
        | Some r -> [ ("baseline_ratio", Json.Float r) ]
        | None -> [])
      @ [ ("counters", counters reg) ])
  in
  let records =
    List.concat_map
      (fun peers ->
        List.concat_map
          (fun rate ->
            let base = base_tree ~peers in
            let edits = peer_edits ~peers ~rate base in
            (* Each peer's divergent tree: the base with its own edits
               applied — the state both protocols start from. *)
            let trees =
              List.map
                (fun es ->
                  List.map
                    (fun (path, content) ->
                      match
                        List.find_opt (fun (p, _) -> String.equal p path) es
                      with
                      | Some (_, edited) -> (path, edited)
                      | None -> (path, content))
                    base)
                edits
            in
            (* Baseline: every ordered pair runs one rev-2 pairwise
               pull over the divergent state — what keeping K replicas
               fresh costs without the swarm layer. *)
            let (base_bytes, base_sessions), base_reg, _ =
              observed (fun scope ->
                  List.fold_left
                    (fun acc (i, client) ->
                      List.fold_left
                        (fun (bytes, sessions) (j, server) ->
                          if Int.equal i j then (bytes, sessions)
                          else begin
                            let cache = Sigcache.create ~scope () in
                            let r, _ =
                              Sloop.run_in_memory ~scope ~cache ~server
                                ~client ()
                            in
                            ( bytes + r.Sloop.c2s_bytes + r.Sloop.s2c_bytes,
                              sessions + 1 )
                          end)
                        acc
                        (List.mapi (fun j t -> (j, t)) trees))
                    (0, 0)
                    (List.mapi (fun i t -> (i, t)) trees))
            in
            (* The swarm: replicas sharing causal history (one warm-up
               convergence over the identical base), then the seeded
               divergent edits, then measured gossip until byte-identical
               convergence. *)
            let (gossip_bytes, rounds, sessions, conflicts), reg, _ =
              observed (fun scope ->
                  with_swarm_root (fun dir ->
                      let replicas =
                        List.init peers (fun i ->
                            let root =
                              Filename.concat dir (Printf.sprintf "p%d" i)
                            in
                            Unix.mkdir root 0o755;
                            write_tree root base;
                            Replica.load ~root
                              ~peer:(Printf.sprintf "p%d" i) ())
                      in
                      (* Merge the per-peer load vectors so divergence
                         below is the only difference being measured. *)
                      ignore
                        (Swarm.run
                           (Swarm.create ~seed:(Int64.of_int peers) replicas));
                      List.iter2
                        (fun r es ->
                          List.iter
                            (fun (path, content) ->
                              Replica.set r ~path content)
                            es)
                        replicas edits;
                      let sw =
                        Swarm.create
                          ~seed:(Int64.of_int ((peers * 31) + 1))
                          ~scope replicas
                      in
                      (* Swarm.run itself raises a typed error if the
                         replicas fail to reach a common root. *)
                      let rounds = Swarm.run sw in
                      ( Swarm.bytes sw,
                        rounds,
                        Swarm.sessions sw,
                        Swarm.conflicts sw )))
            in
            let ratio =
              float_of_int gossip_bytes /. float_of_int (max 1 base_bytes)
            in
            Printf.printf
              "  %2d peers @ %4.0f%%: gossip %8d B in %d rounds \
               (%d sessions, %d conflicts) vs all-pairs %9d B (%d pulls) \
               -> ratio %.2f\n"
              peers (100.0 *. rate) gossip_bytes rounds sessions conflicts
              base_bytes base_sessions ratio;
            [
              swarm_record ~peers ~rate ~mode:"all-pairs"
                ~rounds:base_sessions ~sessions:base_sessions
                ~bytes:base_bytes ~conflicts:0 base_reg;
              swarm_record ~peers ~rate ~mode:"gossip" ~rounds ~sessions
                ~bytes:gossip_bytes ~conflicts ~ratio reg;
            ])
          rates)
      peer_counts
  in
  let doc =
    Json.Obj
      [
        ("schema", Json.String "fsync-swarm/1");
        ("generated_unix_s", Json.Float (Unix.gettimeofday ()));
        ("scale", Json.String (Datasets.scale_name ()));
        ("quick", Json.Bool quick);
        ("records", Json.List records);
      ]
  in
  let oc = open_out "BENCH_swarm.json" in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Json.to_string doc);
      output_char oc '\n');
  Printf.printf "wrote BENCH_swarm.json (%d records)\n" (List.length records)

(* ---- driver ---- *)

let usage () =
  print_endline
    "usage: main.exe \
     [fig61|fig62|fig63|fig64|table61|table62|metadata|collection|server|store|swarm|torture|ablate|dispersion|latency|broadcast|theory|speed|all]"

let () =
  let targets =
    match Array.to_list Sys.argv with [] | [ _ ] -> [ "all" ] | _ :: rest -> rest
  in
  let run_target = function
    | "fig61" -> fig_basic ~fig:"6.1" (Datasets.gcc ())
    | "fig62" -> fig_basic ~fig:"6.2" (Datasets.emacs ())
    | "fig63" -> fig63 ()
    | "fig64" -> fig64 ()
    | "table61" -> table61 ()
    | "table62" -> table62 ()
    | "metadata" -> metadata ()
    | "collection" -> collection ()
    | "server" -> server ()
    | "store" -> store ()
    | "swarm" -> swarm ()
    | "torture" -> torture ()
    | "ablate" -> ablate ()
    | "dispersion" -> dispersion ()
    | "latency" -> latency ()
    | "broadcast" -> broadcast ()
    | "theory" -> theory ()
    | "speed" -> speed ()
    | "all" ->
        fig_basic ~fig:"6.1" (Datasets.gcc ());
        fig_basic ~fig:"6.2" (Datasets.emacs ());
        fig63 ();
        fig64 ();
        table61 ();
        table62 ();
        metadata ();
        collection ();
        server ();
        store ();
        swarm ();
        torture ();
        ablate ();
        dispersion ();
        latency ();
        broadcast ();
        theory ();
        speed ()
    | other ->
        Printf.printf "unknown target %s\n" other;
        usage ();
        exit 1
  in
  List.iter run_target targets
