(* Exploring the protocol's parameter space (§5.6: "a simple parameter
   file is used to specify all the options and techniques").

     dune exec examples/tuning.exe

   Shows how each §5 technique moves the cost components on one file
   pair, and how to build a custom configuration.  This is the example to
   start from when adapting the protocol to a new workload. *)

module Config = Fsync_core.Config
module Protocol = Fsync_core.Protocol
module Table = Fsync_util.Table
module Prng = Fsync_util.Prng

(* [Table.print] left the library (console I/O is the binary's job, R3);
   render here and print ourselves. *)
let print_table t =
  print_string (Fsync_util.Table.render t);
  print_newline ()


let () =
  (* A 256 KB file with moderately dispersed edits — the regime where
     parameter choice matters most. *)
  let rng = Prng.create 2024L in
  let old_file = Fsync_workload.Text_gen.c_like rng ~lines:7000 in
  let new_file =
    Fsync_workload.Edit_model.mutate rng
      ~profile:Fsync_workload.Edit_model.medium
      ~gen_text:(fun rng n ->
        String.init n (fun _ -> Char.chr (97 + Prng.int rng 26)))
      old_file
  in
  Printf.printf "file: %d bytes, edits: medium profile\n\n" (String.length old_file);
  let t =
    Table.create
      ~caption:"cost components per configuration (bytes)"
      [
        ("configuration", Table.Left); ("s2c map", Table.Right);
        ("c2s map", Table.Right); ("delta", Table.Right);
        ("total", Table.Right); ("rt", Table.Right);
      ]
  in
  let run name cfg =
    let r = Protocol.run ~config:cfg ~old_file new_file in
    assert (String.equal r.reconstructed new_file);
    let rep = r.report in
    Table.add_row t
      [
        name;
        string_of_int rep.map_s2c;
        string_of_int rep.map_c2s;
        string_of_int rep.delta_bytes;
        string_of_int (Protocol.total_bytes rep);
        string_of_int rep.roundtrips;
      ]
  in
  run "basic (halving only)" Config.basic;
  run "  + coarser stop (256 B)" { Config.basic with min_global_block = 256 };
  run "  + finer stop (16 B)" { Config.basic with min_global_block = 16 };
  run "+ continuation hashes" (Config.with_continuation Config.basic);
  run "+ group verification"
    { (Config.with_continuation Config.basic) with
      verification = Config.grouped_verification 1 };
  run "tuned preset" Config.tuned;
  (* A fully custom configuration: very weak first-pass verification with
     aggressive grouping, two salvage batches. *)
  let custom =
    {
      Config.tuned with
      verification =
        {
          batches =
            [ { group_size = 1; bits = 3 };
              { group_size = 4; bits = 10 };
              { group_size = 32; bits = 16 };
              { group_size = 1; bits = 16 } ];
          confirm_bits = 14;
          retry_alternates = true;
        };
      candidate_cap = 8;
    }
  in
  run "custom (aggressive groups)" custom;
  print_table t;
  print_endline
    "reading the table: a smaller minimum block size moves bytes from the\n\
     delta column into the map columns; continuation hashes shrink the\n\
     delta without paying the global-hash price; group verification\n\
     shrinks c2s at the price of extra round trips."
