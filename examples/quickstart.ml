(* Quickstart: synchronize one file and look at the cost report.

     dune exec examples/quickstart.exe

   The client holds yesterday's version of a document; the server holds
   today's.  [Fsync_core.Sync.file] runs the full multi-round protocol in
   memory and returns both the reconstruction and a byte-exact cost
   breakdown. *)

let yesterdays_version =
  String.concat "\n"
    (List.init 400 (fun i ->
         Printf.sprintf "%04d | quarterly figures, region %d, total %d" i
           (i mod 7) (i * 3571 mod 9973)))

let todays_version =
  (* A realistic edit: a few lines changed, one paragraph inserted. *)
  let lines = String.split_on_char '\n' yesterdays_version in
  let edited =
    List.mapi
      (fun i line ->
        if i = 42 then line ^ "  <-- REVISED"
        else if i = 200 then "0200 | figures restated after audit"
        else line)
      lines
  in
  String.concat "\n"
    (List.concat [ [ "REPORT v2 -- includes audit updates" ]; edited ])

let () =
  let result =
    Fsync_core.Sync.file ~old_file:yesterdays_version todays_version
  in
  assert (String.equal result.reconstructed todays_version);
  let rep = result.report in
  Printf.printf "file size:            %d bytes\n" (String.length todays_version);
  Printf.printf "bytes on the wire:    %d (%.1f%% of the file)\n"
    (Fsync_core.Protocol.total_bytes rep)
    (100.
    *. float_of_int (Fsync_core.Protocol.total_bytes rep)
    /. float_of_int (String.length todays_version));
  Printf.printf "  client -> server:   %d\n" rep.total_c2s;
  Printf.printf "  server -> client:   %d\n" rep.total_s2c;
  Printf.printf "  map construction:   %d + %d\n" rep.map_s2c rep.map_c2s;
  Printf.printf "  final delta:        %d\n" rep.delta_bytes;
  Printf.printf "round trips:          %d over %d rounds\n" rep.roundtrips rep.rounds;
  Printf.printf "confirmed matches:    %d covering %d bytes (%.1f%%)\n"
    rep.matches rep.covered_bytes
    (100. *. float_of_int rep.covered_bytes /. float_of_int (String.length todays_version));
  (* Compare with sending the whole file compressed, and with rsync. *)
  let gzip = Fsync_compress.Deflate.compressed_size todays_version in
  let rsync =
    Fsync_rsync.Rsync.total
      (Fsync_rsync.Rsync.cost_only ~old_file:yesterdays_version todays_version)
  in
  Printf.printf "\nfor comparison:\n";
  Printf.printf "  full compressed:    %d bytes\n" gzip;
  Printf.printf "  rsync:              %d bytes\n" rsync
