(* Mirroring a software release (the paper's gcc/emacs scenario).

     dune exec examples/source_tree_sync.exe

   A mirror holds release N of a source tree; upstream publishes N+1.
   We compare the bytes needed to update the mirror with every method the
   paper evaluates, using the collection driver (per-file fingerprints
   skip unchanged files for all methods). *)

module Driver = Fsync_collection.Driver
module Snapshot = Fsync_collection.Snapshot
module Table = Fsync_util.Table

(* [Table.print] left the library (console I/O is the binary's job, R3);
   render here and print ourselves. *)
let print_table t =
  print_string (Fsync_util.Table.render t);
  print_newline ()


let () =
  let pair =
    Fsync_workload.Source_tree.generate
      (Fsync_workload.Source_tree.gcc_preset ~scale:0.03)
  in
  let to_snapshot version =
    Snapshot.of_files
      (List.map
         (fun (f : Fsync_workload.Source_tree.file) -> (f.path, f.content))
         version)
  in
  let client = to_snapshot pair.old_version in
  let server = to_snapshot pair.new_version in
  Printf.printf "release update: %d files, %.2f MB\n\n" (Snapshot.count server)
    (float_of_int (Snapshot.total_bytes server) /. 1048576.0);
  let t =
    Table.create
      ~caption:"cost of updating the mirror"
      [
        ("method", Table.Left); ("c2s KB", Table.Right); ("s2c KB", Table.Right);
        ("total KB", Table.Right); ("% of tree", Table.Right);
      ]
  in
  List.iter
    (fun m ->
      let updated, summary = Driver.sync m ~client ~server in
      assert (Snapshot.files updated = Snapshot.files server);
      Table.add_row t
        [
          Driver.method_name m;
          Table.cell_kb summary.total_c2s;
          Table.cell_kb summary.total_s2c;
          Table.cell_kb (Driver.total summary);
          Printf.sprintf "%.2f%%"
            (100.
            *. float_of_int (Driver.total summary)
            /. float_of_int summary.bytes_new);
        ])
    [
      Driver.Full_raw;
      Driver.Full_compressed;
      Driver.Rsync_default;
      Driver.Rsync_best;
      Driver.Cdc;
      Driver.Fsync Fsync_core.Config.single_round;
      Driver.Fsync Fsync_core.Config.basic;
      Driver.Fsync Fsync_core.Config.tuned;
      Driver.Delta_lower_bound Fsync_delta.Delta.Zdelta;
    ];
  print_table t;
  print_endline
    "note: 'fsync' rows use multiple round trips per file; on a slow link\n\
     this is the right trade (files are pipelined), which is the paper's\n\
     central argument."
