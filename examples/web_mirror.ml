(* Maintaining a replicated web collection over a slow link (§6.3, the
   application that motivated the paper).

     dune exec examples/web_mirror.exe

   A client keeps a local mirror of a crawled page collection and
   refreshes it every night, every other night, or weekly.  We report the
   transfer per refresh and the simulated time on a 1 Mbit/s DSL-class
   link — the regime where "slightly more than 2 MB of data transfer
   suffices to maintain 10,000 pages at a client PC". *)

module Driver = Fsync_collection.Driver
module Snapshot = Fsync_collection.Snapshot
module Web = Fsync_workload.Web_collection
module Table = Fsync_util.Table

(* [Table.print] left the library (console I/O is the binary's job, R3);
   render here and print ourselves. *)
let print_table t =
  print_string (Fsync_util.Table.render t);
  print_newline ()


let link_bps = 1_000_000.0 (* DSL / cable class *)

let () =
  let preset = Web.default_preset ~scale:0.03 in
  let base = Web.base preset in
  Printf.printf "collection: %d pages, %.2f MB\n\n" (Array.length base)
    (float_of_int (Web.total_bytes base) /. 1048576.0);
  let to_snapshot pages =
    Snapshot.of_files
      (Array.to_list (Array.map (fun (p : Web.page) -> (p.url, p.content)) pages))
  in
  let client = to_snapshot base in
  let t =
    Table.create
      ~caption:
        (Printf.sprintf
           "per-refresh transfer and time on a %.0f kbit/s link" (link_bps /. 1000.))
      [
        ("refresh interval", Table.Left); ("method", Table.Left);
        ("KB", Table.Right); ("seconds", Table.Right);
        ("unchanged pages", Table.Right);
      ]
  in
  List.iter
    (fun days ->
      let server = to_snapshot (Web.evolve preset base ~days) in
      List.iter
        (fun m ->
          let updated, summary = Driver.sync m ~client ~server in
          assert (Snapshot.files updated = Snapshot.files server);
          let total = Driver.total summary in
          Table.add_row t
            [
              Printf.sprintf "every %d day(s)" days;
              Driver.method_name m;
              Table.cell_kb total;
              Printf.sprintf "%.1f" (float_of_int total /. (link_bps /. 8.));
              string_of_int summary.files_unchanged;
            ])
        [
          Driver.Full_compressed;
          Driver.Rsync_default;
          Driver.Fsync Fsync_core.Config.tuned;
        ];
      Table.add_rule t)
    [ 1; 2; 7 ];
  print_table t
