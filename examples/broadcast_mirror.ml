(* Asymmetric distribution (§7): one busy server, many outdated mirrors.

     dune exec examples/broadcast_mirror.exe

   Two deployment shapes for the same update:
   - interactive: each mirror runs the full multi-round protocol — fewest
     bytes, but the server does per-mirror work every round;
   - one-way: the server publishes a zsync-style signature once; each
     mirror matches locally and fetches only its missing blocks.

   The pipeline report also shows why the interactive shape is viable at
   all on slow links: its rounds batch across files/mirrors. *)

module Oneway = Fsync_core.Oneway
module Protocol = Fsync_core.Protocol
module Table = Fsync_util.Table
module Prng = Fsync_util.Prng

(* [Table.print] left the library (console I/O is the binary's job, R3);
   render here and print ourselves. *)
let print_table t =
  print_string (Fsync_util.Table.render t);
  print_newline ()


let () =
  let rng = Prng.create 404L in
  let current = Fsync_workload.Text_gen.c_like rng ~lines:9000 in
  let mirrors =
    List.init 8 (fun i ->
        let rng = Prng.create (Int64.of_int (7000 + i)) in
        let profile =
          if i mod 4 = 3 then Fsync_workload.Edit_model.medium
          else Fsync_workload.Edit_model.light
        in
        Fsync_workload.Edit_model.mutate rng ~profile
          ~gen_text:(fun rng n ->
            String.init n (fun _ -> Char.chr (97 + Prng.int rng 26)))
          current)
  in
  Printf.printf "one %d-byte file, %d outdated mirrors\n\n"
    (String.length current) (List.length mirrors);
  (* Interactive: per-mirror protocol runs. *)
  let interactive_up =
    List.fold_left
      (fun acc old_file ->
        let r = Protocol.run ~config:Fsync_core.Config.tuned ~old_file current in
        assert (String.equal r.reconstructed current);
        acc + r.report.total_s2c)
      0 mirrors
  in
  (* One-way: one published signature + per-mirror payloads. *)
  let clients = List.map (fun old_file -> (old_file, current)) mirrors in
  let broadcast_up = Oneway.broadcast_cost ~clients () in
  let one_report = (Oneway.sync ~old_file:(List.hd mirrors) current).report in
  let t =
    Table.create ~caption:"server upload to update all mirrors"
      [ ("shape", Table.Left); ("KB", Table.Right); ("server work", Table.Left) ]
  in
  Table.add_row t
    [ "full compressed, per mirror";
      Table.cell_kb
        (List.length mirrors * Fsync_compress.Deflate.compressed_size current);
      "one compression, repeated sends" ];
  Table.add_row t
    [ "interactive (tuned)"; Table.cell_kb interactive_up;
      "hash rounds per mirror" ];
  Table.add_row t
    [ "one-way signature"; Table.cell_kb broadcast_up;
      "signature once; range requests only" ];
  print_table t;
  Printf.printf
    "signature: %d B published once; a typical mirror fetched %d B and \
     matched %d/%d blocks locally\n"
    one_report.signature_bytes
    (Oneway.per_client_bytes one_report)
    one_report.blocks_matched one_report.blocks_total
