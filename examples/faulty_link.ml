(* Synchronizing over a link that actually misbehaves.

     dune exec examples/faulty_link.exe

   The paper's measurements assume a slow but *perfect* pipe.  This
   example walks the resilience stack on a link that corrupts, drops,
   truncates, duplicates and disconnects:

   1. the framing session layer surviving corruption transparently;
   2. a full collection sync over a dirty link — retransmits, per-file
      fallbacks and the end-to-end guarantee;
   3. a deterministic mid-session disconnect, showing checkpoint/resume
      costing far less than a cold restart. *)

open Fsync_net
module Prng = Fsync_util.Prng
module Snapshot = Fsync_collection.Snapshot
module Driver = Fsync_collection.Driver

let section title = Printf.printf "\n== %s ==\n" title

(* A small source-tree-ish collection plus an edited successor. *)
let make_collections () =
  let rng = Prng.create 31337L in
  let base =
    List.init 16 (fun i ->
        ( Printf.sprintf "src/mod%02d.ml" i,
          Fsync_workload.Text_gen.c_like rng ~lines:120 ))
  in
  let server =
    List.map
      (fun (p, c) ->
        if Prng.bernoulli rng 0.5 then
          ( p,
            Fsync_workload.Edit_model.mutate rng
              ~profile:Fsync_workload.Edit_model.light
              ~gen_text:(fun rng n ->
                String.init n (fun _ -> Char.chr (97 + Prng.int rng 26)))
              c )
        else (p, c))
      base
  in
  (Snapshot.of_files base, Snapshot.of_files server)

let () =
  (* 1. Framing under fire: payloads cross a corrupting wire intact. *)
  section "framing survives a corrupting wire";
  let ch = Channel.create () in
  let fault =
    Fault.attach ~seed:7 ch
      { Fault.none with p_corrupt = 0.2; p_drop = 0.1; p_truncate = 0.1 }
  in
  let frame = Frame.attach ch in
  let intact = ref 0 in
  for i = 1 to 100 do
    let payload = Printf.sprintf "block-%03d" i in
    Channel.send ch Channel.Client_to_server payload;
    match Channel.recv_opt ch Channel.Client_to_server with
    | Some m when String.equal m payload -> incr intact
    | _ -> ()
  done;
  let fst_ = Fault.stats fault and sst = Frame.stats frame in
  Printf.printf
    "100 messages: %d delivered intact; link dropped %d, corrupted %d, \
     truncated %d; frame layer sent %d NAKs, retransmitted %d, %d bytes \
     overhead\n"
    !intact fst_.Fault.dropped fst_.Fault.corrupted fst_.Fault.truncated
    sst.Frame.naks sst.Frame.retransmits sst.Frame.overhead_bytes;
  Frame.detach frame;
  Fault.detach fault;

  (* 2. A whole collection over a dirty link. *)
  section "collection sync over a dirty link";
  let client, server = make_collections () in
  let resilience =
    { Driver.default_resilience with faults = Fault.dirty; seed = 42 }
  in
  (match
     Driver.sync_resilient ~metadata:Driver.Merkle ~resilience
       Driver.Rsync_default ~client ~server
   with
  | Ok (updated, s) ->
      assert (Snapshot.files updated = Snapshot.files server);
      Format.printf "%a@." Driver.pp_summary s;
      Printf.printf "client converged exactly despite the faults\n"
  | Error e ->
      Printf.printf "typed failure (budgets exhausted): %s\n"
        (Fsync_core.Error.to_string e));

  (* 3. Disconnect mid-session: resume from the checkpoint. *)
  section "checkpoint/resume after a disconnect";
  let clean_bytes =
    match Driver.sync_resilient Driver.Full_compressed ~client ~server with
    | Ok (_, s) -> Driver.total s
    | Error _ -> assert false
  in
  let resilience =
    {
      Driver.default_resilience with
      faults =
        { Fault.none with disconnect_after = Some 4; max_disconnects = 1 };
    }
  in
  match Driver.sync_resilient ~resilience Driver.Full_compressed ~client ~server with
  | Ok (updated, s) ->
      assert (Snapshot.files updated = Snapshot.files server);
      Printf.printf
        "clean session: %d bytes\nwith a disconnect after 4 messages: %d \
         bytes, %d resume(s)\na cold restart would pay ~%d bytes; the \
         checkpoint saved %d\n"
        clean_bytes (Driver.total s) s.Driver.resumed (2 * clean_bytes)
        ((2 * clean_bytes) - Driver.total s)
  | Error e ->
      Printf.printf "typed failure: %s\n" (Fsync_core.Error.to_string e)
