(* Collection metadata reconciliation: linear fingerprints vs Merkle descent.

     dune exec examples/metadata_recon.exe

   Before any file content moves, both sides must agree on *which* paths
   changed.  The paper's fingerprint exchange announces every file —
   O(collection) bytes however small the diff.  The Merkle mode walks a
   hash tree instead, spending bytes only on subtrees that differ, at the
   price of extra round trips.  This example syncs the same lightly-edited
   collection both ways, then traces the descent on a small replica so the
   level-by-level narrowing is visible. *)

module Driver = Fsync_collection.Driver
module Snapshot = Fsync_collection.Snapshot
module Merkle = Fsync_reconcile.Merkle
module Recon = Fsync_reconcile.Recon
module Channel = Fsync_net.Channel
module Trace = Fsync_net.Trace
module Table = Fsync_util.Table
module Prng = Fsync_util.Prng

(* [Table.print] left the library (console I/O is the binary's job, R3);
   render here and print ourselves. *)
let print_table t =
  print_string (Fsync_util.Table.render t);
  print_newline ()


let mk_collection n =
  let boilerplate =
    Fsync_workload.Text_gen.boilerplate (Prng.create 9000L)
  in
  List.init n (fun i ->
      let rng = Prng.create (Int64.of_int (9001 + i)) in
      ( Printf.sprintf "site/d%02d/page%05d.html" (i mod 40) i,
        Fsync_workload.Text_gen.html_like rng ~body_words:200 ~boilerplate ))

let touch_some ~every files =
  List.mapi
    (fun i (p, c) ->
      if i mod every = 0 then (p, c ^ "<!-- edited -->\n") else (p, c))
    files

let () =
  let n = 2000 in
  let files = mk_collection n in
  let client = Snapshot.of_files files in
  let server = Snapshot.of_files (touch_some ~every:200 files) in
  Printf.printf "%d files, %d changed\n\n" n (n / 200);
  let t =
    Table.create ~caption:"metadata phase cost (file contents excluded)"
      [ ("metadata", Table.Left); ("c2s B", Table.Right); ("s2c B", Table.Right);
        ("rounds", Table.Right); ("link time", Table.Right) ]
  in
  List.iter
    (fun mode ->
      let updated, s = Driver.sync ~metadata:mode Driver.Full_raw ~client ~server in
      assert (Snapshot.files updated = Snapshot.files server);
      let bytes = Driver.meta_total s in
      let secs = (2.0 *. 0.05 *. float_of_int s.meta_rounds)
                 +. (float_of_int bytes /. 125_000.0) in
      Table.add_row t
        [ s.metadata_used; string_of_int s.meta_c2s; string_of_int s.meta_s2c;
          string_of_int s.meta_rounds; Printf.sprintf "%.3f s" secs ])
    [ Driver.Linear; Driver.Merkle ];
  print_table t;
  (* Trace the descent itself on a smaller replica. *)
  let small = List.filteri (fun i _ -> i < 256) files in
  let ctree = Merkle.of_files small in
  let stree =
    Merkle.of_files
      (List.map (fun (p, c) -> if p < "site/d01" then (p, c ^ "!") else (p, c)) small)
  in
  let ch = Channel.create () in
  let r = Recon.run ~channel:ch ~client:ctree ~server:stree () in
  Printf.printf "\n256-file replica, %d paths differ — descent transcript:\n"
    (List.length r.Recon.changed);
  Trace.print ch;
  Format.printf "%a@." Recon.pp_result r
