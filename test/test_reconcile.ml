(* Tests for Fsync_reconcile: the Merkle tree over the path space and the
   recursive-descent reconciliation protocol, checked against a naive
   path-map diff across fanouts, digest widths, and random edit scripts. *)

module Merkle = Fsync_reconcile.Merkle
module Recon = Fsync_reconcile.Recon
module Fp = Fsync_hash.Fingerprint
module Prng = Fsync_util.Prng

let gen_text rng n =
  String.init n (fun _ -> Char.chr (97 + Prng.int rng 26))

let mk_files seed n =
  let rng = Prng.create (Int64.of_int seed) in
  List.init n (fun i ->
      ( Printf.sprintf "dir%d/sub%d/file%04d.txt" (i mod 5) (i mod 11) i,
        Fsync_workload.Text_gen.c_like rng ~lines:(3 + Prng.int rng 12) ))

(* Random collection mutation: edit some contents through the paper's
   edit model, delete some paths, add some fresh ones. *)
let mutate_collection rng files =
  let edited =
    List.filter_map
      (fun (path, content) ->
        if Prng.bernoulli rng 0.15 then None (* deleted *)
        else if Prng.bernoulli rng 0.3 then
          Some
            ( path,
              Fsync_workload.Edit_model.mutate rng
                ~profile:Fsync_workload.Edit_model.medium ~gen_text content )
        else Some (path, content))
      files
  in
  let added =
    List.init (Prng.int rng 6) (fun i ->
        (Printf.sprintf "fresh/new%04d_%d.txt" (Prng.int rng 10_000) i,
         gen_text rng (10 + Prng.int rng 50)))
  in
  edited @ added

(* The reference answer: a naive diff over path maps. *)
let naive_diff client_files server_files =
  let ct = Hashtbl.create 64 and st = Hashtbl.create 64 in
  List.iter (fun (p, c) -> Hashtbl.replace ct p c) client_files;
  List.iter (fun (p, c) -> Hashtbl.replace st p c) server_files;
  let changed =
    List.filter_map
      (fun (p, c) ->
        match Hashtbl.find_opt ct p with
        | Some old when not (String.equal old c) -> Some p
        | _ -> None)
      server_files
  and added =
    List.filter_map
      (fun (p, _) -> if Hashtbl.mem ct p then None else Some p)
      server_files
  and deleted =
    List.filter_map
      (fun (p, _) -> if Hashtbl.mem st p then None else Some p)
      client_files
  in
  (List.sort compare changed, List.sort compare added, List.sort compare deleted)

let check_exact ~cfg ~digest_bytes client_files server_files =
  let client = Merkle.of_files ~config:cfg client_files in
  let server = Merkle.of_files ~config:cfg server_files in
  let r = Recon.run ~config:{ digest_bytes } ~client ~server () in
  let changed, added, deleted = naive_diff client_files server_files in
  let sl = Alcotest.(check (list string)) in
  sl "changed" changed r.changed;
  sl "added" added r.added;
  sl "deleted" deleted r.deleted;
  r

(* ---- Merkle tree ---- *)

let test_merkle_root_stability () =
  let files = mk_files 10 40 in
  let a = Merkle.of_files files in
  let b = Merkle.of_files (List.rev files) in
  Alcotest.(check string) "order independent" (Merkle.root_digest a)
    (Merkle.root_digest b);
  Alcotest.(check int) "cardinal" 40 (Merkle.cardinal a);
  let paths = List.map fst (Merkle.leaves a) in
  Alcotest.(check (list string)) "leaves sorted by path"
    (List.sort compare (List.map fst files)) paths

let test_merkle_duplicate () =
  Alcotest.check_raises "duplicate"
    (Fsync_core.Error.E (Malformed "Merkle.build: duplicate path a")) (fun () ->
      ignore (Merkle.of_files [ ("a", "1"); ("a", "2") ]))

let test_merkle_incremental_update () =
  (* set/remove must agree with a from-scratch rebuild, including bucket
     splits (insertions past bucket_size) and collapses (deletions). *)
  let cfg = { Merkle.fanout = 4; bucket_size = 2 } in
  let files = mk_files 11 30 in
  let t = ref (Merkle.of_files ~config:cfg []) in
  List.iter (fun (p, c) -> t := Merkle.set !t p (Fp.of_string c)) files;
  let rebuilt = Merkle.of_files ~config:cfg files in
  Alcotest.(check string) "inserts" (Merkle.root_digest rebuilt)
    (Merkle.root_digest !t);
  (* replace one leaf *)
  let p0 = fst (List.hd files) in
  let t2 = Merkle.set !t p0 (Fp.of_string "other content") in
  Alcotest.(check bool) "root moved" false
    (String.equal (Merkle.root_digest t2) (Merkle.root_digest !t));
  Alcotest.(check string) "replace = rebuild"
    (Merkle.root_digest
       (Merkle.of_files ~config:cfg
          ((p0, "other content") :: List.tl files)))
    (Merkle.root_digest t2);
  (* delete down to a handful of leaves: splits must collapse back *)
  let kept = List.filteri (fun i _ -> i < 3) files in
  let t3 =
    List.fold_left
      (fun t (p, _) -> Merkle.remove t p)
      !t
      (List.filteri (fun i _ -> i >= 3) files)
  in
  Alcotest.(check string) "deletes = rebuild"
    (Merkle.root_digest (Merkle.of_files ~config:cfg kept))
    (Merkle.root_digest t3);
  Alcotest.(check int) "cardinal after deletes" 3 (Merkle.cardinal t3)

let test_merkle_find () =
  let files = mk_files 12 25 in
  let t = Merkle.of_files files in
  List.iter
    (fun (p, c) ->
      match Merkle.find t p with
      | Some fp -> Alcotest.(check bool) p true (Fp.equal fp (Fp.of_string c))
      | None -> Alcotest.failf "%s not found" p)
    files;
  Alcotest.(check bool) "missing" true (Merkle.find t "no/such/path" = None)

let test_merkle_range_digest_agreement () =
  (* digest_of_range must be structure-independent: a replica holding only
     a few of the leaves (big buckets) and one holding many (deep splits)
     agree on every canonical range where their leaf sets agree. *)
  let files = mk_files 13 60 in
  let small = { Merkle.fanout = 2; bucket_size = 1 } in
  let big = { Merkle.fanout = 2; bucket_size = 64 } in
  let a = Merkle.of_files ~config:small files in
  let b = Merkle.of_files ~config:small files in
  let shallow = Merkle.of_files ~config:big files in
  ignore shallow;
  let rec walk r depth =
    Alcotest.(check string)
      (Printf.sprintf "range lo=%d size=%d" r.Merkle.lo r.Merkle.size)
      (Merkle.digest_of_range a r) (Merkle.digest_of_range b r);
    if depth > 0 then
      Array.iter (fun c -> walk c (depth - 1)) (Merkle.children small r)
  in
  walk Merkle.root_range 4

(* ---- reconciliation: exactness across fanouts and digest widths ---- *)

let test_recon_matches_naive () =
  List.iter
    (fun fanout ->
      List.iter
        (fun digest_bytes ->
          List.iter
            (fun seed ->
              let rng = Prng.create (Int64.of_int (900 + seed)) in
              let base = mk_files seed (10 + Prng.int rng 50) in
              let server_files = mutate_collection rng base in
              let cfg = { Merkle.fanout; bucket_size = 1 + Prng.int rng 6 } in
              ignore (check_exact ~cfg ~digest_bytes base server_files))
            [ 1; 2; 3 ])
        [ 2; 4; 16 ])
    [ 2; 4; 16 ]

let test_recon_narrow_digests_exact () =
  (* 1-byte digests collide constantly; the confirmation round plus
     full-width re-descent must still deliver the exact diff. *)
  let widened = ref false in
  for seed = 1 to 12 do
    let rng = Prng.create (Int64.of_int (3000 + seed)) in
    let base = mk_files (40 + seed) 80 in
    let server_files = mutate_collection rng base in
    let r =
      check_exact
        ~cfg:{ Merkle.fanout = 2; bucket_size = 1 }
        ~digest_bytes:1 base server_files
    in
    if r.widened then widened := true
  done;
  ignore !widened

let test_recon_empty_diff () =
  let files = mk_files 20 30 in
  let cfg = Merkle.default_config in
  let r = check_exact ~cfg ~digest_bytes:4 files files in
  Alcotest.(check int) "single round" 1 r.rounds;
  Alcotest.(check bool) "tiny cost" true (Recon.total_bytes r < 64);
  Alcotest.(check bool) "no widening" true (not r.widened && not r.fell_back)

let test_recon_everything_changed () =
  let files = mk_files 21 40 in
  let rng = Prng.create 99L in
  let server_files =
    List.map (fun (p, c) -> (p, c ^ gen_text rng 8)) files
  in
  let r =
    check_exact ~cfg:{ Merkle.fanout = 4; bucket_size = 2 } ~digest_bytes:4
      files server_files
  in
  Alcotest.(check int) "all changed" 40 (List.length r.changed)

let test_recon_one_side_empty () =
  let files = mk_files 22 25 in
  let cfg = Merkle.default_config in
  let r = check_exact ~cfg ~digest_bytes:4 [] files in
  Alcotest.(check int) "all added" 25 (List.length r.added);
  let r' = check_exact ~cfg ~digest_bytes:4 files [] in
  Alcotest.(check int) "all deleted" 25 (List.length r'.deleted);
  let r'' = check_exact ~cfg ~digest_bytes:4 [] [] in
  Alcotest.(check int) "empty vs empty is free" 1 r''.rounds

let test_recon_long_paths () =
  (* Paths of >= 256 bytes must survive the varint framing. *)
  let long i = String.concat "/" (List.init 40 (fun j -> Printf.sprintf "d%02d_%02d" i j)) in
  let client = List.init 8 (fun i -> (long i, Printf.sprintf "body %d" i)) in
  let server =
    List.map (fun (p, c) -> if String.length c mod 2 = 0 then (p, c ^ "!") else (p, c)) client
  in
  List.iter (fun (p, _) -> Alcotest.(check bool) "long" true (String.length p >= 256)) client;
  ignore (check_exact ~cfg:Merkle.default_config ~digest_bytes:4 client server)

let test_recon_config_mismatch () =
  let a = Merkle.of_files ~config:{ Merkle.fanout = 2; bucket_size = 2 } [] in
  let b = Merkle.of_files ~config:{ Merkle.fanout = 4; bucket_size = 2 } [] in
  Alcotest.check_raises "mismatch"
    (Fsync_core.Error.E
       (Malformed "Recon.run: replicas must agree on the tree configuration"))
    (fun () -> ignore (Recon.run ~client:a ~server:b ()))

(* ---- malformed input: typed errors, never bare exceptions ----

   Every precondition and decode failure in Merkle/Recon must surface as
   [Fsync_core.Error] (raised as [Error.E], or returned as [Error _] by
   [run_result]); the fault-matrix suite (test_resilience) fuzzes the
   corrupting-link side of the same contract. *)

let test_merkle_bad_config () =
  Alcotest.check_raises "fanout < 2"
    (Fsync_core.Error.E (Malformed "Merkle: fanout must be >= 2"))
    (fun () ->
      ignore (Merkle.of_files ~config:{ Merkle.fanout = 1; bucket_size = 4 } []));
  Alcotest.check_raises "bucket_size < 1"
    (Fsync_core.Error.E (Malformed "Merkle: bucket_size must be >= 1"))
    (fun () ->
      ignore (Merkle.of_files ~config:{ Merkle.fanout = 4; bucket_size = 0 } []))

let test_recon_bad_digest_width () =
  let t = Merkle.of_files [ ("a", "1") ] in
  List.iter
    (fun digest_bytes ->
      Alcotest.check_raises
        (Printf.sprintf "digest_bytes %d" digest_bytes)
        (Fsync_core.Error.E
           (Malformed
              (Printf.sprintf "Recon.run: digest_bytes %d out of 1..16"
                 digest_bytes)))
        (fun () ->
          ignore (Recon.run ~config:{ digest_bytes } ~client:t ~server:t ())))
    [ 0; 17; -1 ]

let test_recon_run_result_is_total () =
  (* [run_result] turns the typed raise into a value, so a driver probing
     a peer with an incompatible configuration branches on [Error] instead
     of catching exceptions. *)
  let a = Merkle.of_files ~config:{ Merkle.fanout = 2; bucket_size = 2 } [] in
  let b = Merkle.of_files ~config:{ Merkle.fanout = 4; bucket_size = 2 } [] in
  (match Recon.run_result ~client:a ~server:b () with
  | Ok _ -> Alcotest.fail "expected Error on config mismatch"
  | Error (Fsync_core.Error.Malformed _) -> ()
  | Error e ->
      Alcotest.failf "unexpected error class: %s" (Fsync_core.Error.to_string e));
  match
    Recon.run_result ~config:{ digest_bytes = 99 } ~client:a ~server:a ()
  with
  | Ok _ -> Alcotest.fail "expected Error on bad digest width"
  | Error (Fsync_core.Error.Malformed _) -> ()
  | Error e ->
      Alcotest.failf "unexpected error class: %s" (Fsync_core.Error.to_string e)

(* ---- trace: the descent must be visible per level ---- *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec loop i = i + nn <= nh && (String.sub haystack i nn = needle || loop (i + 1)) in
  nn = 0 || loop 0

let test_recon_trace_labels () =
  let rng = Prng.create 55L in
  let base = mk_files 30 60 in
  let server_files = mutate_collection rng base in
  let cfg = { Merkle.fanout = 4; bucket_size = 2 } in
  let client = Merkle.of_files ~config:cfg base in
  let server = Merkle.of_files ~config:cfg server_files in
  let ch = Fsync_net.Channel.create () in
  let r = Recon.run ~channel:ch ~client ~server () in
  let rendered = Fsync_net.Trace.render ch in
  (* Every level of the descent appears with its own label, the way
     Figure 5.2 shows map construction round by round. *)
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("mentions " ^ needle) true (contains rendered needle))
    [ "recon:level-0"; "recon:level-1"; "recon:level-2"; "recon:confirm" ];
  (* The channel agrees with the protocol's own accounting. *)
  let c2s, s2c = Fsync_net.Trace.bytes_with_prefix ch "recon:" in
  Alcotest.(check int) "c2s accounted" r.c2s_bytes c2s;
  Alcotest.(check int) "s2c accounted" r.s2c_bytes s2c;
  Alcotest.(check int) "roundtrips = rounds" r.rounds
    (Fsync_net.Channel.roundtrips ch);
  (* summary_by_label sees one entry per level, two messages each. *)
  List.iter
    (fun (label, count, bytes) ->
      if contains label "recon:level-" then begin
        Alcotest.(check int) (label ^ " messages") 2 count;
        Alcotest.(check bool) (label ^ " nonempty") true (bytes > 0)
      end)
    (Fsync_net.Trace.summary_by_label ch)

(* ---- cost scaling: the point of the subsystem ---- *)

let test_recon_cost_scales_with_diff () =
  let n = 1500 in
  let base =
    List.init n (fun i ->
        (Printf.sprintf "c/%03d/f%05d.dat" (i mod 41) i, Printf.sprintf "content-%d" i))
  in
  let server_files =
    List.mapi (fun i (p, c) -> if i mod 150 = 7 then (p, c ^ "x") else (p, c)) base
  in
  let client = Merkle.of_files base in
  let server = Merkle.of_files server_files in
  let r = Recon.run ~client ~server () in
  let linear_cost =
    List.fold_left
      (fun acc (p, _) ->
        acc + Fsync_util.Varint.size (String.length p) + String.length p + 16)
      0 base
  in
  Alcotest.(check int) "ten changed" 10 (List.length r.changed);
  Alcotest.(check bool)
    (Printf.sprintf "merkle %d << linear %d" (Recon.total_bytes r) linear_cost)
    true
    (Recon.total_bytes r * 5 < linear_cost)

let suite =
  [
    ("merkle root stability", `Quick, test_merkle_root_stability);
    ("merkle duplicate path", `Quick, test_merkle_duplicate);
    ("merkle incremental update", `Quick, test_merkle_incremental_update);
    ("merkle find", `Quick, test_merkle_find);
    ("merkle range digests agree", `Quick, test_merkle_range_digest_agreement);
    ("recon matches naive diff", `Slow, test_recon_matches_naive);
    ("recon exact under narrow digests", `Slow, test_recon_narrow_digests_exact);
    ("recon empty diff", `Quick, test_recon_empty_diff);
    ("recon everything changed", `Quick, test_recon_everything_changed);
    ("recon one side empty", `Quick, test_recon_one_side_empty);
    ("recon long paths", `Quick, test_recon_long_paths);
    ("recon config mismatch", `Quick, test_recon_config_mismatch);
    ("merkle bad config is typed", `Quick, test_merkle_bad_config);
    ("recon bad digest width is typed", `Quick, test_recon_bad_digest_width);
    ("recon run_result is total", `Quick, test_recon_run_result_is_total);
    ("recon trace labels", `Quick, test_recon_trace_labels);
    ("recon cost scales with diff", `Quick, test_recon_cost_scales_with_diff);
  ]
