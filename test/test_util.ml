(* Tests for Fsync_util: bit IO, varints, PRNG, segments, bytes, stats. *)

open Fsync_util

let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ---- Bitio ---- *)

let test_bitio_simple () =
  let w = Bitio.Writer.create () in
  Bitio.Writer.put_bits w 0b101 ~width:3;
  Bitio.Writer.put_bits w 0xff ~width:8;
  Bitio.Writer.put_bit w 1;
  Alcotest.(check int) "bit length" 12 (Bitio.Writer.bit_length w);
  let r = Bitio.Reader.of_string (Bitio.Writer.contents w) in
  Alcotest.(check int) "first" 0b101 (Bitio.Reader.get_bits r ~width:3);
  Alcotest.(check int) "second" 0xff (Bitio.Reader.get_bits r ~width:8);
  Alcotest.(check int) "third" 1 (Bitio.Reader.get_bit r)

let test_bitio_align () =
  let w = Bitio.Writer.create () in
  Bitio.Writer.put_bits w 0b11 ~width:2;
  Bitio.Writer.align_byte w;
  Bitio.Writer.put_bits w 0xab ~width:8;
  let r = Bitio.Reader.of_string (Bitio.Writer.contents w) in
  ignore (Bitio.Reader.get_bits r ~width:2);
  Bitio.Reader.align_byte r;
  Alcotest.(check int) "aligned byte" 0xab (Bitio.Reader.get_bits r ~width:8)

let test_bitio_empty () =
  let w = Bitio.Writer.create () in
  Alcotest.(check string) "empty" "" (Bitio.Writer.contents w);
  let r = Bitio.Reader.of_string "" in
  Alcotest.(check int) "no bits" 0 (Bitio.Reader.bits_left r);
  Alcotest.check_raises "read past end" (Invalid_argument "Bitio.Reader.get_bit: past end")
    (fun () -> ignore (Bitio.Reader.get_bit r))

let test_bitio_width_bounds () =
  let w = Bitio.Writer.create () in
  Alcotest.check_raises "width 58"
    (Invalid_argument "Bitio.Writer.put_bits: width out of [0,57]") (fun () ->
      Bitio.Writer.put_bits w 0 ~width:58)

let test_bitio_64 () =
  let w = Bitio.Writer.create () in
  Bitio.Writer.put_bits64 w 0xDEADBEEFCAFEBABEL ~width:64;
  let r = Bitio.Reader.of_string (Bitio.Writer.contents w) in
  Alcotest.(check int64) "64-bit roundtrip" 0xDEADBEEFCAFEBABEL
    (Bitio.Reader.get_bits64 r ~width:64)

let bitio_roundtrip_prop =
  let gen =
    QCheck2.Gen.(
      small_list (pair (int_bound 0xffffff) (int_range 1 24)))
  in
  qtest "bitio: mixed-width roundtrip" gen (fun fields ->
      let w = Bitio.Writer.create () in
      List.iter
        (fun (v, width) -> Bitio.Writer.put_bits w (v land ((1 lsl width) - 1)) ~width)
        fields;
      let r = Bitio.Reader.of_string (Bitio.Writer.contents w) in
      List.for_all
        (fun (v, width) ->
          Bitio.Reader.get_bits r ~width = v land ((1 lsl width) - 1))
        fields)

(* ---- Varint ---- *)

let test_varint_known () =
  let enc n =
    let b = Buffer.create 8 in
    Varint.write b n;
    Buffer.contents b
  in
  Alcotest.(check string) "0" "\x00" (enc 0);
  Alcotest.(check string) "127" "\x7f" (enc 127);
  Alcotest.(check string) "128" "\x80\x01" (enc 128);
  Alcotest.(check int) "size 300" 2 (Varint.size 300);
  Alcotest.check_raises "negative" (Invalid_argument "Varint.write: negative")
    (fun () -> ignore (enc (-1)))

let varint_roundtrip_prop =
  qtest "varint: roundtrip" QCheck2.Gen.(list nat) (fun ns ->
      let b = Buffer.create 64 in
      List.iter (Varint.write b) ns;
      let s = Buffer.contents b in
      let rec loop pos = function
        | [] -> pos = String.length s
        | n :: rest ->
            let v, pos = Varint.read s ~pos in
            v = n && loop pos rest
      in
      loop 0 ns)

let varint_signed_prop =
  qtest "varint: signed roundtrip" QCheck2.Gen.(list int) (fun ns ->
      let ns = List.map (fun n -> n asr 2) ns in
      let b = Buffer.create 64 in
      List.iter (Varint.write_signed b) ns;
      let s = Buffer.contents b in
      let rec loop pos = function
        | [] -> true
        | n :: rest ->
            let v, pos = Varint.read_signed s ~pos in
            v = n && loop pos rest
      in
      loop 0 ns)

let test_varint_truncated () =
  Alcotest.check_raises "truncated" (Invalid_argument "Varint.read: truncated")
    (fun () -> ignore (Varint.read "\x80" ~pos:0))

(* ---- Prng ---- *)

let test_prng_deterministic () =
  let a = Prng.create 42L and b = Prng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next64 a) (Prng.next64 b)
  done

let test_prng_int_range () =
  let rng = Prng.create 7L in
  for _ = 1 to 1000 do
    let v = Prng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.fail "out of range"
  done;
  for _ = 1 to 1000 do
    let v = Prng.int_in rng (-5) 5 in
    if v < -5 || v > 5 then Alcotest.fail "int_in out of range"
  done

let test_prng_bernoulli_mean () =
  let rng = Prng.create 9L in
  let hits = ref 0 in
  let n = 20000 in
  for _ = 1 to n do
    if Prng.bernoulli rng 0.3 then incr hits
  done;
  let p = float_of_int !hits /. float_of_int n in
  if p < 0.27 || p > 0.33 then
    Alcotest.failf "bernoulli mean off: %.3f" p

let test_prng_split_independent () =
  let a = Prng.create 1L in
  let child = Prng.split a in
  (* Parent advanced; child produces a different stream. *)
  let xs = List.init 10 (fun _ -> Prng.next64 a) in
  let ys = List.init 10 (fun _ -> Prng.next64 child) in
  Alcotest.(check bool) "different streams" false (xs = ys)

let test_prng_shuffle_permutation () =
  let rng = Prng.create 3L in
  let a = Array.init 50 Fun.id in
  Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_prng_pareto_min () =
  let rng = Prng.create 5L in
  for _ = 1 to 1000 do
    if Prng.pareto rng ~alpha:1.5 ~x_min:10.0 < 10.0 then
      Alcotest.fail "pareto below x_min"
  done

(* ---- Segments ---- *)

let seg_testable =
  Alcotest.testable Segments.pp Segments.equal

let test_segments_normalize () =
  let s = Segments.of_list [ (5, 10); (0, 3); (9, 12); (3, 4) ] in
  Alcotest.(check (list (pair int int))) "merged" [ (0, 4); (5, 12) ]
    (Segments.to_list s)

let test_segments_empty_spans_dropped () =
  let s = Segments.of_list [ (5, 5); (7, 6) ] in
  Alcotest.(check bool) "empty" true (Segments.is_empty s)

let test_segments_ops () =
  let a = Segments.of_list [ (0, 10); (20, 30) ] in
  let b = Segments.of_list [ (5, 25) ] in
  Alcotest.check seg_testable "union"
    (Segments.of_list [ (0, 30) ])
    (Segments.union a b);
  Alcotest.check seg_testable "inter"
    (Segments.of_list [ (5, 10); (20, 25) ])
    (Segments.inter a b);
  Alcotest.check seg_testable "diff"
    (Segments.of_list [ (0, 5); (25, 30) ])
    (Segments.diff a b);
  Alcotest.check seg_testable "complement"
    (Segments.of_list [ (10, 20) ])
    (Segments.complement a ~lo:0 ~hi:30)

let test_segments_mem () =
  let s = Segments.of_list [ (2, 5) ] in
  Alcotest.(check bool) "in" true (Segments.mem s 2);
  Alcotest.(check bool) "hi exclusive" false (Segments.mem s 5);
  Alcotest.(check bool) "contains" true (Segments.contains_span s ~lo:3 ~hi:5);
  Alcotest.(check bool) "not contains" false (Segments.contains_span s ~lo:3 ~hi:6);
  Alcotest.(check bool) "empty span contained" true
    (Segments.contains_span s ~lo:9 ~hi:9)

(* Model-based property: compare against a boolean-array implementation on
   a small universe. *)
let seg_gen =
  QCheck2.Gen.(small_list (pair (int_bound 40) (int_bound 40)))

let to_bools s =
  Array.init 64 (fun i -> Segments.mem s i)

let model_of pairs =
  let a = Array.make 64 false in
  List.iter
    (fun (x, y) ->
      let lo = min x y and hi = max x y in
      for i = lo to hi - 1 do
        a.(i) <- true
      done)
    pairs;
  a

let norm_pairs pairs = List.map (fun (x, y) -> (min x y, max x y)) pairs

let segments_model_union =
  qtest "segments: union matches model" QCheck2.Gen.(pair seg_gen seg_gen)
    (fun (p1, p2) ->
      let s =
        Segments.union
          (Segments.of_list (norm_pairs p1))
          (Segments.of_list (norm_pairs p2))
      in
      let m = model_of p1 and m2 = model_of p2 in
      to_bools s = Array.mapi (fun i v -> v || m2.(i)) m)

let segments_model_inter =
  qtest "segments: inter matches model" QCheck2.Gen.(pair seg_gen seg_gen)
    (fun (p1, p2) ->
      let s =
        Segments.inter
          (Segments.of_list (norm_pairs p1))
          (Segments.of_list (norm_pairs p2))
      in
      let m = model_of p1 and m2 = model_of p2 in
      to_bools s = Array.mapi (fun i v -> v && m2.(i)) m)

let segments_model_diff =
  qtest "segments: diff matches model" QCheck2.Gen.(pair seg_gen seg_gen)
    (fun (p1, p2) ->
      let s =
        Segments.diff
          (Segments.of_list (norm_pairs p1))
          (Segments.of_list (norm_pairs p2))
      in
      let m = model_of p1 and m2 = model_of p2 in
      to_bools s = Array.mapi (fun i v -> v && not m2.(i)) m)

let segments_total_length =
  qtest "segments: total_length = covered points" seg_gen (fun pairs ->
      let s = Segments.of_list (norm_pairs pairs) in
      let m = model_of pairs in
      Segments.total_length s = Array.fold_left (fun acc v -> if v then acc + 1 else acc) 0 m)

(* ---- Bytes_util ---- *)

let test_hex_roundtrip () =
  let s = "\x00\x01\xfe\xff random" in
  Alcotest.(check string) "roundtrip" s (Bytes_util.of_hex (Bytes_util.to_hex s));
  Alcotest.(check string) "hex" "00ff" (Bytes_util.to_hex "\x00\xff")

let test_hex_invalid () =
  Alcotest.check_raises "odd" (Invalid_argument "Bytes_util.of_hex: odd length")
    (fun () -> ignore (Bytes_util.of_hex "abc"));
  Alcotest.check_raises "bad digit" (Invalid_argument "Bytes_util.of_hex: bad digit")
    (fun () -> ignore (Bytes_util.of_hex "zz"))

let test_common_prefix_suffix () =
  Alcotest.(check int) "prefix" 3 (Bytes_util.common_prefix "abcde" 0 "abcxy" 0);
  Alcotest.(check int) "prefix offset" 2 (Bytes_util.common_prefix "xxab" 2 "ab" 0);
  Alcotest.(check int) "suffix" 2 (Bytes_util.common_suffix "xyab" 4 "zzab" 4);
  Alcotest.(check int) "suffix zero" 0 (Bytes_util.common_suffix "a" 0 "a" 0)

let test_equal_sub () =
  Alcotest.(check bool) "eq" true (Bytes_util.equal_sub "hello" 1 "yell" 1 3);
  Alcotest.(check bool) "neq" false (Bytes_util.equal_sub "hello" 0 "jello" 0 5);
  Alcotest.(check bool) "oob" false (Bytes_util.equal_sub "abc" 1 "abc" 0 3)

let test_chunks () =
  Alcotest.(check (list (pair int int))) "chunks" [ (0, 4); (4, 4); (8, 2) ]
    (Bytes_util.chunks "0123456789" ~size:4);
  Alcotest.(check (list (pair int int))) "empty" [] (Bytes_util.chunks "" ~size:4)

let test_hamming () =
  Alcotest.(check int) "zero" 0 (Bytes_util.hamming_bits "abc" "abc");
  Alcotest.(check int) "one bit" 1 (Bytes_util.hamming_bits "\x00" "\x01");
  Alcotest.(check int) "all bits" 8 (Bytes_util.hamming_bits "\x00" "\xff")

(* ---- Stats / Table ---- *)

let test_stats_summary () =
  let s = Stats.summarize [ 1.0; 2.0; 3.0; 4.0 ] in
  Alcotest.(check int) "count" 4 s.count;
  Alcotest.(check (float 1e-9)) "mean" 2.5 s.mean;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.min;
  Alcotest.(check (float 1e-9)) "max" 4.0 s.max

let test_stats_kb () =
  Alcotest.(check (float 1e-9)) "kb" 2.0 (Stats.kb 2048)

let test_table_render () =
  let t = Table.create ~caption:"cap" [ ("name", Table.Left); ("v", Table.Right) ] in
  Table.add_row t [ "a"; "10" ];
  Table.add_row t [ "bb"; "5" ];
  let out = Table.render t in
  Alcotest.(check bool) "caption" true (String.length out > 0 && String.sub out 0 3 = "cap");
  (* Short rows are padded, long ones truncated — rendering is total. *)
  Table.add_row t [ "only-one" ];
  Table.add_row t [ "x"; "1"; "extra" ];
  let padded = Table.render t in
  Alcotest.(check bool) "padded row renders" true
    (String.length padded > String.length out)

let suite =
  [
    ("bitio simple", `Quick, test_bitio_simple);
    ("bitio align", `Quick, test_bitio_align);
    ("bitio empty", `Quick, test_bitio_empty);
    ("bitio width bounds", `Quick, test_bitio_width_bounds);
    ("bitio 64-bit", `Quick, test_bitio_64);
    bitio_roundtrip_prop;
    ("varint known", `Quick, test_varint_known);
    varint_roundtrip_prop;
    varint_signed_prop;
    ("varint truncated", `Quick, test_varint_truncated);
    ("prng deterministic", `Quick, test_prng_deterministic);
    ("prng ranges", `Quick, test_prng_int_range);
    ("prng bernoulli mean", `Quick, test_prng_bernoulli_mean);
    ("prng split", `Quick, test_prng_split_independent);
    ("prng shuffle", `Quick, test_prng_shuffle_permutation);
    ("prng pareto min", `Quick, test_prng_pareto_min);
    ("segments normalize", `Quick, test_segments_normalize);
    ("segments empties", `Quick, test_segments_empty_spans_dropped);
    ("segments ops", `Quick, test_segments_ops);
    ("segments mem", `Quick, test_segments_mem);
    segments_model_union;
    segments_model_inter;
    segments_model_diff;
    segments_total_length;
    ("hex roundtrip", `Quick, test_hex_roundtrip);
    ("hex invalid", `Quick, test_hex_invalid);
    ("common prefix/suffix", `Quick, test_common_prefix_suffix);
    ("equal_sub", `Quick, test_equal_sub);
    ("chunks", `Quick, test_chunks);
    ("hamming", `Quick, test_hamming);
    ("stats summary", `Quick, test_stats_summary);
    ("stats kb", `Quick, test_stats_kb);
    ("table render", `Quick, test_table_render);
  ]
