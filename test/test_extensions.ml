(* Tests for the extension modules: verification planner, liar search,
   in-place reconstruction, adaptive configuration, and content-defined
   chunking. *)

module Prng = Fsync_util.Prng

let qtest ?(count = 60) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ---- Verification_planner ---- *)

module VP = Fsync_core.Verification_planner

let test_planner_trivial_cost () =
  let o = VP.expected_cost ~p_genuine:0.9 ~n:32 Fsync_core.Config.trivial_verification in
  Alcotest.(check (float 0.01)) "exactly 16 bits" 16.0 o.bits_per_candidate;
  Alcotest.(check (float 0.001)) "full recall" 1.0 o.confirmed_genuine;
  Alcotest.(check (float 0.01)) "one trip" 1.0 o.roundtrips

let test_planner_grouped_cheaper () =
  let trivial =
    VP.expected_cost ~p_genuine:0.9 ~n:64 Fsync_core.Config.trivial_verification
  in
  let grouped =
    VP.expected_cost ~p_genuine:0.9 ~n:64 (Fsync_core.Config.grouped_verification 2)
  in
  Alcotest.(check bool)
    (Printf.sprintf "grouped %.1f < trivial %.1f" grouped.bits_per_candidate
       trivial.bits_per_candidate)
    true
    (grouped.bits_per_candidate < trivial.bits_per_candidate);
  Alcotest.(check bool) "grouped keeps recall" true (grouped.confirmed_genuine > 0.98)

let test_planner_false_confirms_low () =
  List.iter
    (fun v ->
      let o = VP.expected_cost ~p_genuine:0.5 ~n:64 v in
      Alcotest.(check bool) "few false confirms" true (o.false_confirms < 0.01))
    VP.menu

let test_planner_recommend () =
  let v, o = VP.recommend ~p_genuine:0.9 ~n:64 () in
  Alcotest.(check bool) "recall constraint" true (o.confirmed_genuine >= 0.98);
  Alcotest.(check bool) "beats trivial" true (o.bits_per_candidate < 16.0);
  Alcotest.(check bool) "schedule nonempty" true (v.batches <> [])

let test_planner_invalid () =
  Alcotest.check_raises "bad p"
    (Fsync_core.Error.E
       (Fsync_core.Error.Malformed
          "Verification_planner.expected_cost: p_genuine out of [0,1]"))
    (fun () ->
      ignore
        (VP.expected_cost ~p_genuine:1.5 ~n:4 Fsync_core.Config.trivial_verification));
  Alcotest.check_raises "bad n"
    (Fsync_core.Error.E
       (Fsync_core.Error.Malformed "Verification_planner.expected_cost: n <= 0"))
    (fun () ->
      ignore
        (VP.expected_cost ~p_genuine:0.5 ~n:0 Fsync_core.Config.trivial_verification))

(* ---- Liar_search ---- *)

module LS = Fsync_core.Liar_search

let test_liar_no_lies_is_binary_search () =
  (* With 30-bit hashes lies are essentially impossible: the optimistic
     strategy needs exactly ceil(log2 257) = 9 comparisons and never errs. *)
  let r = LS.simulate LS.Optimistic ~lie_bits:20 ~verify_bits:16 ~max_extent:256 in
  Alcotest.(check (float 0.6)) "~log2(257) queries" 8.5 r.avg_queries;
  Alcotest.(check (float 0.01)) "no errors" 0.0 r.error_rate

let test_liar_unverified_errs () =
  let r = LS.simulate LS.Optimistic ~lie_bits:2 ~verify_bits:16 ~max_extent:256 in
  Alcotest.(check bool) (Printf.sprintf "errors %.3f" r.error_rate) true
    (r.error_rate > 0.3)

let test_liar_halving_reliable () =
  let r = LS.simulate LS.Halving ~lie_bits:4 ~verify_bits:16 ~max_extent:256 in
  Alcotest.(check bool) "reliable" true (r.error_rate < 0.01)

let test_liar_halving_beats_verify_each_at_4bits () =
  (* The design point behind the 4-bit continuation hash default. *)
  let h = LS.simulate LS.Halving ~lie_bits:4 ~verify_bits:16 ~max_extent:256 in
  let v = LS.simulate LS.Verify_each ~lie_bits:4 ~verify_bits:16 ~max_extent:256 in
  Alcotest.(check bool)
    (Printf.sprintf "halving %.1f < verify-each %.1f" h.avg_query_bits
       v.avg_query_bits)
    true
    (h.avg_query_bits < v.avg_query_bits)

let test_liar_invalid () =
  Alcotest.check_raises "bad params"
    (Fsync_core.Error.E
       (Fsync_core.Error.Malformed "Liar_search.simulate: non-positive parameter"))
    (fun () ->
      ignore (LS.simulate LS.Halving ~lie_bits:0 ~verify_bits:16 ~max_extent:10))

(* ---- In_place ---- *)

module Rsync = Fsync_rsync.Rsync
module Signature = Fsync_rsync.Signature
module Matcher = Fsync_rsync.Matcher
module Token = Fsync_rsync.Token
module In_place = Fsync_rsync.In_place

let lines_file seed n =
  let rng = Prng.create (Int64.of_int seed) in
  let buf = Buffer.create (n * 20) in
  for i = 0 to n - 1 do
    Buffer.add_string buf
      (Printf.sprintf "line %04d salt %d content abcdef\n" i (Prng.int rng 1000))
  done;
  Buffer.contents buf

let in_place_case ~block_size old_file new_file =
  let sg = Signature.create ~block_size old_file in
  let ops = Matcher.run sg ~new_file in
  let expected = Token.apply sg ~old_file ops in
  let via_plan, _ = In_place.plan sg ~old_file ops in
  let planned = Token.apply sg ~old_file via_plan in
  let direct, stats = In_place.apply sg ~old_file ops in
  Alcotest.(check string) "plan preserves semantics" expected planned;
  Alcotest.(check string) "in-place apply" expected direct;
  stats

let test_in_place_simple_edit () =
  let old_file = lines_file 1 300 in
  let new_file = "PREFIX-" ^ old_file in
  let stats = in_place_case ~block_size:256 old_file new_file in
  Alcotest.(check bool) "few ops" true (stats.ops_total > 0)

let test_in_place_swap_cycle () =
  (* Swapping two halves forces a dependency cycle: each copy's source is
     the other's target. *)
  let a = String.concat "" (List.init 16 (fun i -> Printf.sprintf "A%06d!" i)) in
  let b = String.concat "" (List.init 16 (fun i -> Printf.sprintf "B%06d?" i)) in
  let old_file = a ^ b and new_file = b ^ a in
  let stats = in_place_case ~block_size:(String.length a) old_file new_file in
  Alcotest.(check bool)
    (Printf.sprintf "cycle broken (%d)" stats.cycles_broken)
    true (stats.cycles_broken >= 1);
  Alcotest.(check bool) "extra literal accounted" true (stats.extra_literal_bytes > 0)

let test_in_place_identity () =
  let f = lines_file 2 200 in
  let stats = in_place_case ~block_size:128 f f in
  Alcotest.(check int) "no cycles on identity" 0 stats.cycles_broken

let in_place_random =
  qtest ~count:40 "in-place: reconstructs under random edits"
    QCheck2.Gen.(pair (int_bound 1000) (int_range 32 500))
    (fun (seed, block_size) ->
      let rng = Prng.create (Int64.of_int seed) in
      let old_file = lines_file seed 120 in
      let new_file =
        Fsync_workload.Edit_model.mutate rng
          ~profile:Fsync_workload.Edit_model.heavy
          ~gen_text:(fun rng n ->
            String.init n (fun _ -> Char.chr (97 + Prng.int rng 26)))
          old_file
      in
      let sg = Signature.create ~block_size old_file in
      let ops = Matcher.run sg ~new_file in
      let direct, _ = In_place.apply sg ~old_file ops in
      String.equal direct (Token.apply sg ~old_file ops))

(* ---- Adaptive ---- *)

module Adaptive = Fsync_core.Adaptive

let test_adaptive_identical () =
  let f = lines_file 3 2000 in
  let pr = Adaptive.probe ~old_file:f f in
  Alcotest.(check bool) (Printf.sprintf "similarity %.2f" pr.similarity) true
    (pr.similarity > 0.9);
  Alcotest.(check bool) "probe cost small" true (pr.probe_s2c < 200)

let test_adaptive_unrelated () =
  let rng = Prng.create 4L in
  let a = Bytes.to_string (Prng.bytes rng 100_000) in
  let b = Bytes.to_string (Prng.bytes rng 100_000) in
  let pr = Adaptive.probe ~old_file:a b in
  Alcotest.(check bool) (Printf.sprintf "similarity %.2f" pr.similarity) true
    (pr.similarity < 0.1);
  (* Chosen config skips deep recursion. *)
  Alcotest.(check bool) "shallow" true (pr.chosen.min_global_block >= 512)

let test_adaptive_sync_reconstructs () =
  List.iter
    (fun (o, n) ->
      let r, _ = Adaptive.sync ~old_file:o n in
      Alcotest.(check bool) "reconstructs" true (String.equal r.reconstructed n))
    [
      (lines_file 5 500, lines_file 5 500);
      (lines_file 6 500, lines_file 7 500);
      ("", "abc");
      ("tiny", lines_file 8 100);
    ]

let test_adaptive_config_valid () =
  List.iter
    (fun sim ->
      let chosen, _ =
        (* internal choose is not exposed; probe against crafted pairs *)
        let f = lines_file 9 1000 in
        let g = if sim then f else Bytes.to_string (Prng.bytes (Prng.create 9L) 50_000) in
        let pr = Adaptive.probe ~old_file:f g in
        (pr.chosen, pr.rationale)
      in
      match Fsync_core.Config.validate chosen with
      | Ok () -> ()
      | Error e -> Alcotest.failf "invalid adaptive config: %s" e)
    [ true; false ]

(* ---- Chunker / Lbfs_sync ---- *)

module Chunker = Fsync_cdc.Chunker
module Lbfs = Fsync_cdc.Lbfs_sync

let test_chunker_covers () =
  let rng = Prng.create 10L in
  let s = Fsync_workload.Text_gen.c_like rng ~lines:2000 in
  let cs = Chunker.chunks s in
  let total = List.fold_left (fun acc (c : Chunker.chunk) -> acc + c.len) 0 cs in
  Alcotest.(check int) "covers input" (String.length s) total;
  let rec contiguous pos = function
    | [] -> true
    | (c : Chunker.chunk) :: rest -> c.off = pos && contiguous (pos + c.len) rest
  in
  Alcotest.(check bool) "contiguous" true (contiguous 0 cs)

let test_chunker_bounds () =
  let rng = Prng.create 11L in
  let s = Bytes.to_string (Prng.bytes rng 200_000) in
  let params = Chunker.default_params in
  let cs = Chunker.chunks ~params s in
  List.iteri
    (fun i (c : Chunker.chunk) ->
      if i < List.length cs - 1 then begin
        if c.len < params.min_size then Alcotest.fail "chunk below min";
        if c.len > params.max_size then Alcotest.fail "chunk above max"
      end)
    cs;
  Alcotest.(check bool) "plausible count" true
    (List.length cs > 40 && List.length cs < 1000)

let test_chunker_shift_resistance () =
  (* Insert a byte near the front: almost all chunk boundaries survive. *)
  let rng = Prng.create 12L in
  let s = Bytes.to_string (Prng.bytes rng 100_000) in
  let shifted = "X" ^ s in
  let b1 = Chunker.boundaries s in
  let b2 = Chunker.boundaries shifted in
  let set2 = List.fold_left (fun acc b -> b :: acc) [] b2 in
  let survived =
    List.length (List.filter (fun b -> List.mem (b + 1) set2) b1)
  in
  Alcotest.(check bool)
    (Printf.sprintf "%d/%d boundaries survive" survived (List.length b1))
    true
    (survived * 10 > List.length b1 * 9)

let test_chunker_empty_and_small () =
  Alcotest.(check int) "empty" 0 (List.length (Chunker.chunks ""));
  let cs = Chunker.chunks "tiny" in
  Alcotest.(check int) "single" 1 (List.length cs)

let test_chunker_below_min () =
  (* Anything shorter than [min_size] is one undersized final chunk
     with no cut points at all. *)
  let params = Chunker.default_params in
  let s = String.init (params.Chunker.min_size - 1) (fun i -> Char.chr (i land 0xff)) in
  (match Chunker.chunks ~params s with
  | [ (c : Chunker.chunk) ] ->
      Alcotest.(check int) "offset" 0 c.off;
      Alcotest.(check int) "whole input" (String.length s) c.len
  | cs -> Alcotest.failf "expected 1 chunk, got %d" (List.length cs));
  Alcotest.(check (list int)) "no boundaries" [] (Chunker.boundaries ~params s)

let test_chunker_deterministic () =
  (* Same bytes, same boundaries — across repeated runs and across a
     physically distinct copy of the string. *)
  let rng = Prng.create 14L in
  let s = Bytes.to_string (Prng.bytes rng 80_000) in
  let copy = String.init (String.length s) (String.get s) in
  let b = Chunker.boundaries s in
  Alcotest.(check (list int)) "re-run identical" b (Chunker.boundaries s);
  Alcotest.(check (list int)) "copy identical" b (Chunker.boundaries copy);
  Alcotest.(check bool) "has cuts" true (b <> [])

let test_chunker_concat_local_damage () =
  (* Concatenating two streams only perturbs boundaries near the join.
     Two exact facts fall out of chunking being a left-to-right scan:
     every cut of [a] was decided from [a]'s own prefix, so it is also a
     cut of [a ^ b]; and once a post-join cut of [a ^ b] coincides with
     a cut of [b], the chunker state matches from there on, so the tails
     agree exactly. *)
  let rng = Prng.create 15L in
  let a = Bytes.to_string (Prng.bytes rng 100_000) in
  let b = Bytes.to_string (Prng.bytes rng 100_000) in
  let la = String.length a in
  let ba = Chunker.boundaries a in
  let bb = Chunker.boundaries b in
  let bab = Chunker.boundaries (a ^ b) in
  List.iter
    (fun cut ->
      if not (List.mem cut bab) then
        Alcotest.failf "prefix cut %d lost in concatenation" cut)
    ba;
  (* Post-join cuts, re-based to [b]'s coordinates. *)
  let tail = List.filter_map
      (fun cut -> if cut > la then Some (cut - la) else None) bab
  in
  let params = Chunker.default_params in
  (match List.find_opt (fun cut -> List.mem cut bb) tail with
  | None -> Alcotest.fail "chunking never resynchronized after the join"
  | Some sync ->
      Alcotest.(check bool)
        (Printf.sprintf "resync within 3 max chunks (at %d)" sync)
        true
        (sync <= 3 * params.Chunker.max_size);
      let after l = List.filter (fun cut -> cut >= sync) l in
      Alcotest.(check (list int))
        "tails identical after resync" (after bb) (after tail))

let test_lbfs_reconstructs () =
  let rng = Prng.create 13L in
  let old_file = Fsync_workload.Text_gen.c_like rng ~lines:3000 in
  let new_file =
    Fsync_workload.Edit_model.mutate rng ~profile:Fsync_workload.Edit_model.medium
      ~gen_text:(fun rng n -> String.init n (fun _ -> Char.chr (97 + Prng.int rng 26)))
      old_file
  in
  let r = Lbfs.sync ~old_file new_file in
  Alcotest.(check bool) "reconstructs" true (String.equal r.reconstructed new_file);
  Alcotest.(check bool) "some chunks matched" true (r.chunks_matched > 0);
  Alcotest.(check bool) "cheaper than full" true
    (Lbfs.total r.cost < Fsync_compress.Deflate.compressed_size new_file)

let test_lbfs_identical () =
  let rng = Prng.create 14L in
  let f = Fsync_workload.Text_gen.c_like rng ~lines:2000 in
  let r = Lbfs.sync ~old_file:f f in
  Alcotest.(check int) "all matched" r.chunks_total r.chunks_matched;
  (* Only the chunk index crosses the wire. *)
  Alcotest.(check bool) "small cost" true
    (Lbfs.total r.cost < r.chunks_total * 10 + 64)

let test_driver_cdc_method () =
  let files =
    List.init 6 (fun i ->
        let rng = Prng.create (Int64.of_int (100 + i)) in
        ( Printf.sprintf "f%d.html" i,
          Fsync_workload.Text_gen.c_like rng ~lines:(100 + (i * 40)) ))
  in
  let rng = Prng.create 15L in
  let mutated =
    List.map
      (fun (p, c) ->
        ( p,
          Fsync_workload.Edit_model.mutate rng
            ~profile:Fsync_workload.Edit_model.medium
            ~gen_text:(fun rng n ->
              String.init n (fun _ -> Char.chr (97 + Prng.int rng 26)))
            c ))
      files
  in
  let client = Fsync_collection.Snapshot.of_files files in
  let server = Fsync_collection.Snapshot.of_files mutated in
  let updated, summary = Fsync_collection.Driver.sync Fsync_collection.Driver.Cdc ~client ~server in
  Alcotest.(check bool) "cdc reconstructs" true
    (Fsync_collection.Snapshot.files updated = Fsync_collection.Snapshot.files server);
  Alcotest.(check bool) "cdc beats full" true
    (Fsync_collection.Driver.total summary
    < Fsync_collection.Snapshot.total_bytes server)

(* ---- Oneway (broadcast) ---- *)

module Oneway = Fsync_core.Oneway

let test_oneway_reconstructs () =
  let rng = Prng.create 20L in
  let old_file = Fsync_workload.Text_gen.c_like rng ~lines:3000 in
  let new_file =
    Fsync_workload.Edit_model.mutate rng ~profile:Fsync_workload.Edit_model.light
      ~gen_text:(fun rng n -> String.init n (fun _ -> Char.chr (97 + Prng.int rng 26)))
      old_file
  in
  let r = Oneway.sync ~old_file new_file in
  Alcotest.(check bool) "reconstructs" true (String.equal r.reconstructed new_file);
  Alcotest.(check bool)
    (Printf.sprintf "matched most blocks (%d/%d)" r.report.blocks_matched
       r.report.blocks_total)
    true
    (r.report.blocks_matched * 2 > r.report.blocks_total);
  Alcotest.(check bool) "cheaper than full send" true
    (Oneway.total_bytes r.report
    < Fsync_compress.Deflate.compressed_size new_file)

let test_oneway_edges () =
  List.iter
    (fun (o, n) ->
      let r = Oneway.sync ~old_file:o n in
      Alcotest.(check bool) "edge" true (String.equal r.reconstructed n))
    [ ("", ""); ("abc", ""); ("", "abc"); ("same", "same");
      (String.make 5000 'x', String.make 5000 'x');
      (String.make 5000 'x', String.make 5000 'y') ]

let test_oneway_identical_payload_tiny () =
  let rng = Prng.create 21L in
  let f = Fsync_workload.Text_gen.c_like rng ~lines:2000 in
  let r = Oneway.sync ~old_file:f f in
  Alcotest.(check int) "all blocks matched" r.report.blocks_total
    r.report.blocks_matched;
  (* Only the sub-block tail is ever carried as payload. *)
  Alcotest.(check bool)
    (Printf.sprintf "payload %d < block" r.report.payload_bytes)
    true
    (r.report.payload_bytes < 1024)

let test_oneway_no_delta_mode () =
  let rng = Prng.create 22L in
  let old_file = Fsync_workload.Text_gen.c_like rng ~lines:1500 in
  let new_file =
    Fsync_workload.Edit_model.mutate rng ~profile:Fsync_workload.Edit_model.light
      ~gen_text:(fun rng n -> String.init n (fun _ -> Char.chr (97 + Prng.int rng 26)))
      old_file
  in
  let cfg = { Oneway.default_config with delta_missing = false } in
  let r = Oneway.sync ~config:cfg ~old_file new_file in
  Alcotest.(check bool) "reconstructs (plain mode)" true
    (String.equal r.reconstructed new_file)

let test_oneway_broadcast_amortizes () =
  let rng = Prng.create 23L in
  let new_file = Fsync_workload.Text_gen.c_like rng ~lines:3000 in
  let clients =
    List.init 5 (fun i ->
        let rng = Prng.create (Int64.of_int (500 + i)) in
        let old_file =
          Fsync_workload.Edit_model.mutate rng
            ~profile:Fsync_workload.Edit_model.light
            ~gen_text:(fun rng n ->
              String.init n (fun _ -> Char.chr (97 + Prng.int rng 26)))
            new_file
        in
        (old_file, new_file))
  in
  let broadcast = Oneway.broadcast_cost ~clients () in
  let separate =
    List.fold_left
      (fun acc (old_file, nf) ->
        acc + Oneway.total_bytes (Oneway.sync ~old_file nf).report)
      0 clients
  in
  Alcotest.(check bool)
    (Printf.sprintf "broadcast %d < separate %d" broadcast separate)
    true (broadcast < separate)

let test_oneway_broadcast_disagreement () =
  Alcotest.check_raises "disagree"
    (Fsync_core.Error.E
       (Fsync_core.Error.Malformed
          "Oneway.broadcast_cost: clients disagree on the new file"))
    (fun () ->
      ignore (Oneway.broadcast_cost ~clients:[ ("a", "x"); ("b", "y") ] ()))

let oneway_random =
  qtest ~count:25 "oneway: reconstructs under random edits"
    QCheck2.Gen.(pair (int_bound 5000) (int_bound 2))
    (fun (seed, profile_i) ->
      let profile =
        List.nth
          [ Fsync_workload.Edit_model.light;
            Fsync_workload.Edit_model.medium;
            Fsync_workload.Edit_model.heavy ]
          profile_i
      in
      let rng = Prng.create (Int64.of_int seed) in
      let old_file = Fsync_workload.Text_gen.c_like rng ~lines:400 in
      let new_file =
        Fsync_workload.Edit_model.mutate rng ~profile
          ~gen_text:(fun rng n ->
            String.init n (fun _ -> Char.chr (97 + Prng.int rng 26)))
          old_file
      in
      let r = Oneway.sync ~old_file new_file in
      String.equal r.reconstructed new_file)

(* ---- single-round preset and phase stats ---- *)

let test_single_round_preset () =
  (match Fsync_core.Config.validate Fsync_core.Config.single_round with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid: %s" e);
  let old_file = lines_file 16 1500 in
  let rng = Prng.create 16L in
  let new_file =
    Fsync_workload.Edit_model.mutate rng ~profile:Fsync_workload.Edit_model.light
      ~gen_text:(fun rng n -> String.init n (fun _ -> Char.chr (97 + Prng.int rng 26)))
      old_file
  in
  let r =
    Fsync_core.Protocol.run ~config:Fsync_core.Config.single_round ~old_file new_file
  in
  Alcotest.(check bool) "reconstructs" true (String.equal r.reconstructed new_file);
  Alcotest.(check int) "one hash round" 1 r.report.rounds;
  Alcotest.(check bool) "few roundtrips" true (r.report.roundtrips <= 4)

let test_phase_stats_reported () =
  let old_file = lines_file 17 1500 in
  let rng = Prng.create 17L in
  let new_file =
    Fsync_workload.Edit_model.mutate rng ~profile:Fsync_workload.Edit_model.medium
      ~gen_text:(fun rng n -> String.init n (fun _ -> Char.chr (97 + Prng.int rng 26)))
      old_file
  in
  let r = Fsync_core.Protocol.run ~config:Fsync_core.Config.tuned ~old_file new_file in
  let stats = r.report.phase_stats in
  Alcotest.(check bool) "global phase present" true (List.mem_assoc "global" stats);
  Alcotest.(check bool) "cont phase present" true (List.mem_assoc "cont" stats);
  List.iter
    (fun (_, (st : Fsync_core.Protocol.phase_stat)) ->
      Alcotest.(check bool) "hits <= hashes" true (st.hits <= st.hashes);
      Alcotest.(check bool) "confirms <= hits" true (st.confirms <= st.hits))
    stats;
  let total_hashes =
    List.fold_left (fun acc (_, (st : Fsync_core.Protocol.phase_stat)) -> acc + st.hashes) 0 stats
  in
  Alcotest.(check int) "phases sum to hashes_sent" r.report.hashes_sent total_hashes

let suite =
  [
    ("planner trivial cost", `Quick, test_planner_trivial_cost);
    ("planner grouped cheaper", `Quick, test_planner_grouped_cheaper);
    ("planner false confirms low", `Quick, test_planner_false_confirms_low);
    ("planner recommend", `Quick, test_planner_recommend);
    ("planner invalid", `Quick, test_planner_invalid);
    ("liar no lies = binary search", `Quick, test_liar_no_lies_is_binary_search);
    ("liar unverified errs", `Quick, test_liar_unverified_errs);
    ("liar halving reliable", `Quick, test_liar_halving_reliable);
    ("liar halving beats verify-each", `Quick, test_liar_halving_beats_verify_each_at_4bits);
    ("liar invalid", `Quick, test_liar_invalid);
    ("in-place simple edit", `Quick, test_in_place_simple_edit);
    ("in-place swap cycle", `Quick, test_in_place_swap_cycle);
    ("in-place identity", `Quick, test_in_place_identity);
    in_place_random;
    ("adaptive identical", `Quick, test_adaptive_identical);
    ("adaptive unrelated", `Quick, test_adaptive_unrelated);
    ("adaptive sync reconstructs", `Quick, test_adaptive_sync_reconstructs);
    ("adaptive config valid", `Quick, test_adaptive_config_valid);
    ("chunker covers", `Quick, test_chunker_covers);
    ("chunker bounds", `Quick, test_chunker_bounds);
    ("chunker shift resistance", `Quick, test_chunker_shift_resistance);
    ("chunker empty/small", `Quick, test_chunker_empty_and_small);
    ("chunker below min", `Quick, test_chunker_below_min);
    ("chunker deterministic", `Quick, test_chunker_deterministic);
    ("chunker concat local damage", `Quick, test_chunker_concat_local_damage);
    ("lbfs reconstructs", `Quick, test_lbfs_reconstructs);
    ("lbfs identical", `Quick, test_lbfs_identical);
    ("driver cdc method", `Quick, test_driver_cdc_method);
    ("oneway reconstructs", `Quick, test_oneway_reconstructs);
    ("oneway edges", `Quick, test_oneway_edges);
    ("oneway identical", `Quick, test_oneway_identical_payload_tiny);
    ("oneway plain mode", `Quick, test_oneway_no_delta_mode);
    ("oneway broadcast amortizes", `Quick, test_oneway_broadcast_amortizes);
    ("oneway broadcast disagreement", `Quick, test_oneway_broadcast_disagreement);
    oneway_random;
    ("single-round preset", `Quick, test_single_round_preset);
    ("phase stats reported", `Quick, test_phase_stats_reported);
  ]
