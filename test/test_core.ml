(* Tests for Fsync_core: configuration validation, the match map, block
   tree, group testing engine, candidate index, wire packing, and the full
   protocol end to end. *)

open Fsync_core
module Prng = Fsync_util.Prng
module Segments = Fsync_util.Segments

let qtest ?(count = 60) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ---- Config ---- *)

let test_config_presets_valid () =
  List.iter
    (fun (name, cfg) ->
      match Config.validate cfg with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s invalid: %s" name e)
    [
      ("basic", Config.basic);
      ("basic+cont", Config.with_continuation Config.basic);
      ("tuned", Config.tuned);
      ("grouped1", { Config.basic with verification = Config.grouped_verification 1 });
      ("grouped3", { Config.basic with verification = Config.grouped_verification 3 });
    ]

let test_config_invalid () =
  let check name cfg =
    match Config.validate cfg with
    | Ok () -> Alcotest.failf "%s should be invalid" name
    | Error _ -> ()
  in
  check "start not pow2" { Config.basic with start_block = 1000 };
  check "min > start" { Config.basic with min_global_block = 4096; start_block = 2048 };
  check "no batches"
    { Config.basic with
      verification = { Config.basic.verification with batches = [] } };
  check "cap" { Config.basic with candidate_cap = 0 }

let test_config_global_bits () =
  let bits = Config.global_bits Config.basic ~old_file_len:(1 lsl 20) in
  Alcotest.(check int) "1MB file" (20 + 3) bits;
  Alcotest.(check bool) "capped" true
    (Config.global_bits Config.basic ~old_file_len:max_int <= 32)

(* ---- Match_map ---- *)

let test_match_map_merge () =
  let m = Match_map.empty in
  let m = Match_map.add m { t_off = 0; s_off = 100; len = 10 } in
  let m = Match_map.add m { t_off = 10; s_off = 110; len = 10 } in
  (* Contiguous in both spaces: merged into one entry. *)
  Alcotest.(check int) "merged" 1 (Match_map.count m);
  let m = Match_map.add m { t_off = 20; s_off = 500; len = 5 } in
  (* Contiguous in target only: separate entries. *)
  Alcotest.(check int) "not merged" 2 (Match_map.count m);
  Alcotest.(check int) "covered" 25 (Match_map.covered_bytes m)

let test_match_map_merge_backward () =
  let m = Match_map.add Match_map.empty { t_off = 10; s_off = 110; len = 10 } in
  let m = Match_map.add m { t_off = 0; s_off = 100; len = 10 } in
  Alcotest.(check int) "merged backward" 1 (Match_map.count m);
  match Match_map.entries m with
  | [ e ] ->
      Alcotest.(check int) "t_off" 0 e.t_off;
      Alcotest.(check int) "len" 20 e.len
  | _ -> Alcotest.fail "expected single entry"

let test_match_map_overlap_rejected () =
  let m = Match_map.add Match_map.empty { t_off = 0; s_off = 0; len = 10 } in
  Alcotest.check_raises "overlap"
    (Fsync_core.Error.E (Fsync_core.Error.Malformed "Match_map.add: overlap"))
    (fun () -> ignore (Match_map.add m { t_off = 5; s_off = 50; len = 10 }))

let test_match_map_lookups () =
  let m = Match_map.add Match_map.empty { t_off = 10; s_off = 200; len = 20 } in
  (match Match_map.find_ending_at m 30 with
  | Some e -> Alcotest.(check int) "ending" 10 e.t_off
  | None -> Alcotest.fail "find_ending_at");
  Alcotest.(check bool) "no ending" true (Match_map.find_ending_at m 29 = None);
  (match Match_map.find_starting_at m 10 with
  | Some e -> Alcotest.(check int) "starting s_off" 200 e.s_off
  | None -> Alcotest.fail "find_starting_at");
  (match Match_map.nearest m 1000 with
  | Some e -> Alcotest.(check int) "nearest" 10 e.t_off
  | None -> Alcotest.fail "nearest");
  Alcotest.(check bool) "nearest empty" true (Match_map.nearest Match_map.empty 5 = None)

let test_match_map_known_target () =
  let m = Match_map.add Match_map.empty { t_off = 0; s_off = 7; len = 5 } in
  let m = Match_map.add m { t_off = 5; s_off = 100; len = 5 } in
  Alcotest.(check (list (pair int int))) "known merged" [ (0, 10) ]
    (Segments.to_list (Match_map.known_target m))

(* ---- Block_tree ---- *)

let test_block_tree_initial () =
  let t = Block_tree.create ~file_len:5000 ~start_block:2048 in
  let blocks = Block_tree.active_blocks t in
  Alcotest.(check int) "count" 3 (List.length blocks);
  Alcotest.(check (list int)) "lens" [ 2048; 2048; 904 ]
    (List.map (fun (b : Block_tree.block) -> b.len) blocks);
  Alcotest.(check int) "size" 2048 (Block_tree.current_size t)

let test_block_tree_small_file () =
  (* The initial size shrinks to a power of two <= file length. *)
  let t = Block_tree.create ~file_len:1500 ~start_block:2048 in
  Alcotest.(check int) "size" 1024 (Block_tree.current_size t);
  Alcotest.(check int) "blocks" 2 (List.length (Block_tree.active_blocks t))

let test_block_tree_empty_file () =
  let t = Block_tree.create ~file_len:0 ~start_block:2048 in
  Alcotest.(check (list unit)) "no blocks" []
    (List.map (fun _ -> ()) (Block_tree.active_blocks t))

let coverage_ok t file_len =
  (* Active (incl. confirmed) blocks partition the file. *)
  let blocks =
    List.sort
      (fun (a : Block_tree.block) b -> compare a.off b.off)
      (Block_tree.active_blocks t)
  in
  let rec walk pos = function
    | [] -> pos <= file_len
    | (b : Block_tree.block) :: rest -> b.off >= pos && walk (b.off + b.len) rest
  in
  walk 0 blocks

let test_block_tree_split_partition () =
  let t = Block_tree.create ~file_len:5000 ~start_block:2048 in
  Block_tree.split t;
  Alcotest.(check int) "size halved" 1024 (Block_tree.current_size t);
  Alcotest.(check bool) "partition" true (coverage_ok t 5000);
  Alcotest.(check int) "unknown bytes" 5000 (Block_tree.unknown_bytes t);
  Block_tree.split t;
  Alcotest.(check bool) "partition again" true (coverage_ok t 5000)

let test_block_tree_confirmed_not_split () =
  let t = Block_tree.create ~file_len:4096 ~start_block:2048 in
  (match Block_tree.active_blocks t with
  | b :: _ -> b.confirmed <- true
  | [] -> Alcotest.fail "no blocks");
  Block_tree.split t;
  Alcotest.(check int) "only unconfirmed split" 2
    (List.length (Block_tree.active_blocks t));
  Alcotest.(check int) "unknown" 2048 (Block_tree.unknown_bytes t);
  Alcotest.(check (float 1e-9)) "ratio" 0.5 (Block_tree.confirmed_ratio t)

let test_block_tree_derive_links () =
  let t = Block_tree.create ~file_len:4096 ~start_block:2048 in
  List.iter (fun (b : Block_tree.block) -> b.known_bits <- 20) (Block_tree.active_blocks t);
  Block_tree.split t;
  let blocks = Block_tree.active_blocks t in
  Alcotest.(check int) "four children" 4 (List.length blocks);
  List.iteri
    (fun i (b : Block_tree.block) ->
      if i mod 2 = 0 then
        Alcotest.(check bool) "left no derive" true (b.derive_from = None)
      else begin
        match b.derive_from with
        | Some (_, left_id, pbits) ->
            Alcotest.(check int) "parent bits" 20 pbits;
            let left = Block_tree.find t left_id in
            Alcotest.(check int) "left adjacency" b.off (left.off + left.len)
        | None -> Alcotest.fail "right child should derive"
      end)
    blocks

let test_block_tree_deterministic_ids () =
  (* Two trees driven identically allocate identical ids — the property the
     protocol relies on for id-free messages. *)
  let t1 = Block_tree.create ~file_len:10_000 ~start_block:2048 in
  let t2 = Block_tree.create ~file_len:10_000 ~start_block:2048 in
  let confirm t i =
    List.iteri
      (fun j (b : Block_tree.block) -> if j = i then b.confirmed <- true)
      (Block_tree.active_blocks t)
  in
  confirm t1 1;
  confirm t2 1;
  Block_tree.split t1;
  Block_tree.split t2;
  let ids t =
    List.map (fun (b : Block_tree.block) -> (b.id, b.off, b.len)) (Block_tree.active_blocks t)
  in
  Alcotest.(check (list (triple int int int))) "identical" (ids t1) (ids t2)

(* ---- Group_testing ---- *)

let v_trivial = Config.trivial_verification

let test_group_trivial_pass_fail () =
  let e = Group_testing.create ~n:3 v_trivial in
  (match Group_testing.current_batch e with
  | Some b -> Alcotest.(check int) "individual" 1 b.group_size
  | None -> Alcotest.fail "expected batch");
  Alcotest.(check int) "three groups" 3 (List.length (Group_testing.groups e));
  Group_testing.apply_results e [| true; false; true |];
  Alcotest.(check bool) "finished" true (Group_testing.finished e);
  Alcotest.(check (array bool)) "confirmed" [| true; false; true |]
    (Group_testing.confirmed e)

let test_group_empty () =
  let e = Group_testing.create ~n:0 v_trivial in
  Alcotest.(check bool) "finished immediately" true (Group_testing.finished e)

let test_group_grouped_schedule () =
  (* Schedule: weak individual filter then one strong group test. *)
  let v = Config.grouped_verification 1 in
  let e = Group_testing.create ~n:4 v in
  Group_testing.apply_results e [| true; true; false; true |];
  (* Candidate 2 dead (no retry in schedule 1); others uncertain with 6 bits. *)
  Alcotest.(check bool) "not finished" false (Group_testing.finished e);
  let gs = Group_testing.groups e in
  Alcotest.(check int) "one group of survivors" 1 (List.length gs);
  Alcotest.(check (list (list int))) "members" [ [ 0; 1; 3 ] ] gs;
  Group_testing.apply_results e [| true |];
  Alcotest.(check (array bool)) "confirmed" [| true; true; false; true |]
    (Group_testing.confirmed e);
  Alcotest.(check bool) "finished" true (Group_testing.finished e)

let test_group_failed_group_salvage () =
  (* Schedule 2 ends with an individual salvage batch. *)
  let v = Config.grouped_verification 2 in
  let e = Group_testing.create ~n:3 v in
  Group_testing.apply_results e [| true; true; true |];   (* batch 1: individuals pass *)
  Group_testing.apply_results e [| false |];              (* batch 2: the group fails *)
  Alcotest.(check bool) "still unfinished" false (Group_testing.finished e);
  let gs = Group_testing.groups e in
  Alcotest.(check int) "salvage individuals" 3 (List.length gs);
  Group_testing.apply_results e [| true; false; true |];
  Alcotest.(check (array bool)) "salvaged" [| true; false; true |]
    (Group_testing.confirmed e)

let test_group_retry_flow () =
  let v =
    {
      Config.batches =
        [ { group_size = 1; bits = 5 }; { group_size = 1; bits = 16 } ];
      confirm_bits = 14;
      retry_alternates = true;
    }
  in
  let e = Group_testing.create ~n:2 v in
  Group_testing.apply_results e [| false; true |];
  (* Candidate 0 awaits the client's retry decision. *)
  Alcotest.(check (list int)) "pending" [ 0 ] (Group_testing.pending_retries e);
  Alcotest.(check bool) "batch blocked" true (Group_testing.current_batch e = None);
  Group_testing.resolve_retries e [| true |];
  (* Next batch: candidate 0 retried (reset), candidate 1 has 5 bits. *)
  Group_testing.apply_results e [| true; true |];
  Alcotest.(check (array bool)) "both confirmed" [| true; true |]
    (Group_testing.confirmed e)

let test_group_retry_declined () =
  let v =
    {
      Config.batches =
        [ { group_size = 1; bits = 5 }; { group_size = 1; bits = 16 } ];
      confirm_bits = 14;
      retry_alternates = true;
    }
  in
  let e = Group_testing.create ~n:1 v in
  Group_testing.apply_results e [| false |];
  Group_testing.resolve_retries e [| false |];
  Alcotest.(check bool) "dead" true (Group_testing.status e 0 = Group_testing.Dead);
  Alcotest.(check bool) "finished" true (Group_testing.finished e)

let test_group_weak_pass_insufficient () =
  (* Passing only a 5-bit test never reaches confirm_bits = 14. *)
  let v =
    { Config.batches = [ { group_size = 1; bits = 5 } ]; confirm_bits = 14;
      retry_alternates = false }
  in
  let e = Group_testing.create ~n:1 v in
  Group_testing.apply_results e [| true |];
  Alcotest.(check (array bool)) "not confirmed" [| false |] (Group_testing.confirmed e)

let test_group_arity_mismatch () =
  let e = Group_testing.create ~n:2 v_trivial in
  Alcotest.check_raises "arity"
    (Fsync_core.Error.E
       (Malformed "Group_testing.apply_results: arity mismatch")) (fun () ->
      Group_testing.apply_results e [| true |])

(* ---- Candidates ---- *)

let candidates_match_naive =
  qtest "candidates: index agrees with naive scan"
    QCheck2.Gen.(pair (string_size ~gen:(char_range 'a' 'd') (int_range 10 300)) (int_range 2 16))
    (fun (s, window) ->
      let bits = 12 in
      let idx = Candidates.build s ~window ~bits in
      let module P = Fsync_hash.Poly_hash in
      let naive key =
        let acc = ref [] in
        for p = String.length s - window downto 0 do
          if P.truncate (P.hash_sub s ~pos:p ~len:window) ~bits = key then
            acc := p :: !acc
        done;
        !acc
      in
      (* Probe with the true hash of a few windows plus a random key. *)
      let probes =
        [ 0; (String.length s - window) / 2; String.length s - window ]
        |> List.filter (fun p -> p >= 0 && p + window <= String.length s)
        |> List.map (fun p -> P.truncate (P.hash_sub s ~pos:p ~len:window) ~bits)
      in
      List.for_all (fun key -> Candidates.lookup idx key = naive key) (0xabc :: probes))

let test_candidates_empty () =
  let idx = Candidates.build "abc" ~window:10 ~bits:12 in
  Alcotest.(check (list int)) "no positions" [] (Candidates.lookup idx 5)

let test_candidates_select () =
  Alcotest.(check (list int)) "cap" [ 1; 2 ]
    (Candidates.select ~cap:2 ~predicted:None [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "nearest first" [ 99; 5 ]
    (Candidates.select ~cap:2 ~predicted:(Some 100) [ 5; 99; 300 ])

(* ---- Wire ---- *)

let test_wire_roundtrip () =
  let msg =
    Wire.pack (fun w ->
        Wire.put_bitmap w [ true; false; true ];
        Wire.put_hash w 0x3ff ~width:10;
        Wire.put_varint w 300;
        Wire.put_string w "payload")
  in
  let r = Wire.unpack msg in
  Alcotest.(check (array bool)) "bitmap" [| true; false; true |] (Wire.get_bitmap r ~n:3);
  Alcotest.(check int) "hash" 0x3ff (Wire.get_hash r ~width:10);
  Alcotest.(check int) "varint" 300 (Wire.get_varint r);
  Alcotest.(check string) "string" "payload" (Wire.get_string r)

let test_wire_bad_flag () =
  (* Malformed envelopes surface as typed errors, never bare exceptions. *)
  let typed what f =
    match f () with
    | _ -> Alcotest.failf "%s: expected a typed error" what
    | exception Fsync_core.Error.E (Fsync_core.Error.Malformed _) -> ()
    | exception Fsync_core.Error.E (Fsync_core.Error.Truncated _) -> ()
  in
  typed "bad flag" (fun () -> Wire.unpack ~compress:true "\002zzz");
  typed "empty" (fun () -> Wire.unpack ~compress:true "")

let test_wire_compressed () =
  let msg =
    Wire.pack ~compress:true (fun w ->
        for _ = 1 to 1000 do
          Wire.put_bitmap w [ true; true; false; false ]
        done)
  in
  let r = Wire.unpack ~compress:true msg in
  Alcotest.(check (array bool)) "first bits" [| true; true; false; false |]
    (Wire.get_bitmap r ~n:4);
  Alcotest.(check bool) "compressed smaller" true (String.length msg < 450)

(* ---- Protocol end-to-end ---- *)

let mk_source seed n_lines =
  let rng = Prng.create (Int64.of_int seed) in
  Fsync_workload.Text_gen.c_like rng ~lines:n_lines

let mutate seed profile s =
  let rng = Prng.create (Int64.of_int (seed + 77)) in
  Fsync_workload.Edit_model.mutate rng ~profile
    ~gen_text:(fun rng n -> String.init n (fun _ -> Char.chr (97 + Prng.int rng 26)))
    s

let configs =
  [
    ("basic", Config.basic);
    ("basic-nodecomp", { Config.basic with decomposable = false });
    ("cont", Config.with_continuation Config.basic);
    ("tuned", Config.tuned);
    ("grouped1", { Config.basic with verification = Config.grouped_verification 1 });
    ("grouped3",
     Config.with_continuation
       { Config.basic with verification = Config.grouped_verification 3 });
    ("local",
     { (Config.with_continuation Config.basic) with
       local = { local_enabled = true; local_bits = 10; local_window = 32; local_range = 2048 } });
    ("compressed-messages", { Config.basic with compress_messages = true });
    ("omit-miss",
     { (Config.with_continuation Config.basic) with omit_global_after_cont_miss = true });
  ]

let test_protocol_reconstructs_all_configs () =
  let old_file = mk_source 1 800 in
  let new_file = mutate 1 Fsync_workload.Edit_model.medium old_file in
  List.iter
    (fun (name, cfg) ->
      let r = Protocol.run ~config:cfg ~old_file new_file in
      if not (String.equal r.reconstructed new_file) then
        Alcotest.failf "%s failed to reconstruct" name)
    configs

let protocol_random_edits =
  qtest ~count:25 "protocol: reconstructs under random edits"
    QCheck2.Gen.(pair (int_bound 10_000) (int_bound 2))
    (fun (seed, profile_i) ->
      let profile =
        List.nth
          [ Fsync_workload.Edit_model.light;
            Fsync_workload.Edit_model.medium;
            Fsync_workload.Edit_model.heavy ]
          profile_i
      in
      let old_file = mk_source seed 300 in
      let new_file = mutate seed profile old_file in
      let r = Protocol.run ~config:Config.tuned ~old_file new_file in
      String.equal r.reconstructed new_file)

let test_protocol_edge_files () =
  List.iter
    (fun (o, n) ->
      let r = Protocol.run ~config:Config.tuned ~old_file:o n in
      Alcotest.(check bool) "edge" true (String.equal r.reconstructed n))
    [ ("", ""); ("abc", ""); ("", "abc"); ("same", "same");
      ("tiny", String.make 100_000 'z');
      (String.make 100_000 'z', "tiny") ]

let test_protocol_unchanged_shortcut () =
  let f = mk_source 3 500 in
  let r = Protocol.run ~config:Config.tuned ~old_file:f f in
  Alcotest.(check bool) "unchanged" true r.report.unchanged;
  (* Only the fingerprint exchange is paid. *)
  Alcotest.(check bool) "tiny cost" true (Protocol.total_bytes r.report < 64);
  Alcotest.(check int) "no rounds" 0 r.report.rounds

let test_protocol_beats_rsync () =
  let old_file = mk_source 4 2500 in
  let new_file = mutate 4 Fsync_workload.Edit_model.light old_file in
  let ours =
    Protocol.total_bytes
      (Protocol.run ~config:Config.tuned ~old_file new_file).report
  in
  let rsync =
    Fsync_rsync.Rsync.total (Fsync_rsync.Rsync.cost_only ~old_file new_file)
  in
  Alcotest.(check bool)
    (Printf.sprintf "ours(%d) < rsync(%d)" ours rsync)
    true (ours < rsync)

let test_protocol_decomposable_saves () =
  let old_file = mk_source 5 2000 in
  let new_file = mutate 5 Fsync_workload.Edit_model.medium old_file in
  let run cfg = (Protocol.run ~config:cfg ~old_file new_file).report in
  let with_d = run Config.basic in
  let without = run { Config.basic with decomposable = false } in
  Alcotest.(check bool)
    (Printf.sprintf "decomposable map_s2c %d <= %d" with_d.map_s2c without.map_s2c)
    true
    (with_d.map_s2c <= without.map_s2c)

let test_protocol_continuation_improves_coverage () =
  let old_file = mk_source 6 2000 in
  let new_file = mutate 6 Fsync_workload.Edit_model.medium old_file in
  let run cfg = (Protocol.run ~config:cfg ~old_file new_file).report in
  let base = run Config.basic in
  let cont = run (Config.with_continuation Config.basic) in
  Alcotest.(check bool)
    (Printf.sprintf "coverage %d >= %d" cont.covered_bytes base.covered_bytes)
    true
    (cont.covered_bytes >= base.covered_bytes)

let test_protocol_report_consistency () =
  let old_file = mk_source 7 600 in
  let new_file = mutate 7 Fsync_workload.Edit_model.medium old_file in
  let r = Protocol.run ~config:Config.tuned ~old_file new_file in
  let rep = r.report in
  Alcotest.(check int) "c2s components"
    rep.total_c2s
    (rep.header_c2s + rep.map_c2s);
  Alcotest.(check int) "s2c components"
    rep.total_s2c
    (rep.header_s2c + rep.map_s2c + rep.delta_bytes + rep.fallback_bytes);
  Alcotest.(check bool) "covered <= file" true
    (rep.covered_bytes <= String.length new_file);
  Alcotest.(check bool) "roundtrips >= rounds" true (rep.roundtrips >= rep.rounds)

let test_protocol_fallback_on_collisions () =
  (* A pathological configuration (1-bit verification accepted as proof)
     confirms false matches; the fingerprint check must catch it and fall
     back to a full transfer, still reconstructing exactly. *)
  let cfg =
    {
      Config.basic with
      global_slack_bits = 0;
      candidate_cap = 1;
      verification =
        { batches = [ { group_size = 1; bits = 1 } ]; confirm_bits = 1;
          retry_alternates = false };
    }
  in
  let rng = Prng.create 99L in
  let old_file = Bytes.to_string (Prng.bytes rng 40_000) in
  let new_file = Bytes.to_string (Prng.bytes rng 40_000) in
  let r = Protocol.run ~config:cfg ~old_file new_file in
  Alcotest.(check bool) "reconstructed anyway" true (String.equal r.reconstructed new_file)

let test_protocol_channel_reuse () =
  let ch = Fsync_net.Channel.create () in
  let old_file = mk_source 8 200 in
  let new_file = mutate 8 Fsync_workload.Edit_model.light old_file in
  let r = Protocol.run ~channel:ch ~config:Config.basic ~old_file new_file in
  Alcotest.(check int) "channel total = report total"
    (Fsync_net.Channel.total_bytes ch)
    (Protocol.total_bytes r.report);
  Alcotest.(check bool) "transcript labelled" true
    (List.exists (fun (_, l, _) -> String.equal l "delta") (Fsync_net.Channel.transcript ch))

let test_protocol_invalid_config () =
  Alcotest.check_raises "invalid config"
    (Fsync_core.Error.E
       (Malformed "Protocol.run: start_block 1000 not a power of two"))
    (fun () ->
      ignore
        (Protocol.run
           ~config:{ Config.basic with start_block = 1000 }
           ~old_file:"a" "b"))

let test_protocol_deterministic () =
  (* Two runs over identical inputs produce byte-identical transcripts:
     nothing in the protocol depends on ambient randomness. *)
  let old_file = mk_source 10 400 in
  let new_file = mutate 10 Fsync_workload.Edit_model.medium old_file in
  let transcript () =
    let ch = Fsync_net.Channel.create () in
    ignore (Protocol.run ~channel:ch ~config:Config.tuned ~old_file new_file);
    List.map (fun (d, l, s) -> (d = Fsync_net.Channel.Client_to_server, l, s))
      (Fsync_net.Channel.transcript ch)
  in
  Alcotest.(check bool) "identical transcripts" true (transcript () = transcript ())

let test_protocol_swapped_roles () =
  (* Syncing new->old also works (the protocol is direction-agnostic about
     which version is "newer"). *)
  let a = mk_source 11 500 in
  let b = mutate 11 Fsync_workload.Edit_model.medium a in
  let r1 = Protocol.run ~config:Config.tuned ~old_file:a b in
  let r2 = Protocol.run ~config:Config.tuned ~old_file:b a in
  Alcotest.(check bool) "forward" true (String.equal r1.reconstructed b);
  Alcotest.(check bool) "backward" true (String.equal r2.reconstructed a)

let test_protocol_binary_safe () =
  (* Arbitrary bytes, including NULs and 0xFF runs. *)
  let rng = Prng.create 12L in
  let a = Bytes.to_string (Prng.bytes rng 50_000) in
  let b =
    String.sub a 0 20_000 ^ String.make 500 '\000'
    ^ String.sub a 20_000 30_000
  in
  let r = Protocol.run ~config:Config.tuned ~old_file:a b in
  Alcotest.(check bool) "binary reconstructs" true (String.equal r.reconstructed b)

let test_protocol_grows_and_shrinks () =
  let base = mk_source 13 300 in
  let doubled = base ^ base in
  let r1 = Protocol.run ~config:Config.tuned ~old_file:base doubled in
  Alcotest.(check bool) "grow" true (String.equal r1.reconstructed doubled);
  (* The doubled file is fully constructible from the old one: cheap. *)
  Alcotest.(check bool) "grow is cheap" true
    (Protocol.total_bytes r1.report * 5 < String.length doubled);
  let r2 = Protocol.run ~config:Config.tuned ~old_file:doubled base in
  Alcotest.(check bool) "shrink" true (String.equal r2.reconstructed base);
  Alcotest.(check bool) "shrink is cheap" true
    (Protocol.total_bytes r2.report * 5 < String.length base)

let test_sync_facade () =
  let old_file = mk_source 9 300 in
  let new_file = mutate 9 Fsync_workload.Edit_model.light old_file in
  let r = Sync.file ~old_file new_file in
  Alcotest.(check bool) "sync reconstructs" true (String.equal r.reconstructed new_file);
  Alcotest.(check int) "cost consistent" (Protocol.total_bytes r.report)
    (Sync.cost ~old_file new_file)

let suite =
  [
    ("config presets valid", `Quick, test_config_presets_valid);
    ("config invalid", `Quick, test_config_invalid);
    ("config global bits", `Quick, test_config_global_bits);
    ("match map merge", `Quick, test_match_map_merge);
    ("match map merge backward", `Quick, test_match_map_merge_backward);
    ("match map overlap", `Quick, test_match_map_overlap_rejected);
    ("match map lookups", `Quick, test_match_map_lookups);
    ("match map known target", `Quick, test_match_map_known_target);
    ("block tree initial", `Quick, test_block_tree_initial);
    ("block tree small file", `Quick, test_block_tree_small_file);
    ("block tree empty file", `Quick, test_block_tree_empty_file);
    ("block tree split partition", `Quick, test_block_tree_split_partition);
    ("block tree confirmed not split", `Quick, test_block_tree_confirmed_not_split);
    ("block tree derive links", `Quick, test_block_tree_derive_links);
    ("block tree deterministic ids", `Quick, test_block_tree_deterministic_ids);
    ("group trivial", `Quick, test_group_trivial_pass_fail);
    ("group empty", `Quick, test_group_empty);
    ("group grouped schedule", `Quick, test_group_grouped_schedule);
    ("group salvage", `Quick, test_group_failed_group_salvage);
    ("group retry flow", `Quick, test_group_retry_flow);
    ("group retry declined", `Quick, test_group_retry_declined);
    ("group weak pass insufficient", `Quick, test_group_weak_pass_insufficient);
    ("group arity", `Quick, test_group_arity_mismatch);
    candidates_match_naive;
    ("candidates empty", `Quick, test_candidates_empty);
    ("candidates select", `Quick, test_candidates_select);
    ("wire roundtrip", `Quick, test_wire_roundtrip);
    ("wire compressed", `Quick, test_wire_compressed);
    ("wire bad flag", `Quick, test_wire_bad_flag);
    ("protocol all configs", `Slow, test_protocol_reconstructs_all_configs);
    protocol_random_edits;
    ("protocol edges", `Quick, test_protocol_edge_files);
    ("protocol unchanged", `Quick, test_protocol_unchanged_shortcut);
    ("protocol beats rsync", `Slow, test_protocol_beats_rsync);
    ("protocol decomposable saves", `Slow, test_protocol_decomposable_saves);
    ("protocol continuation coverage", `Slow, test_protocol_continuation_improves_coverage);
    ("protocol report consistency", `Quick, test_protocol_report_consistency);
    ("protocol fallback on collisions", `Quick, test_protocol_fallback_on_collisions);
    ("protocol channel reuse", `Quick, test_protocol_channel_reuse);
    ("protocol invalid config", `Quick, test_protocol_invalid_config);
    ("protocol deterministic", `Quick, test_protocol_deterministic);
    ("protocol swapped roles", `Quick, test_protocol_swapped_roles);
    ("protocol binary safe", `Quick, test_protocol_binary_safe);
    ("protocol grows and shrinks", `Quick, test_protocol_grows_and_shrinks);
    ("sync facade", `Quick, test_sync_facade);
  ]
