(* Tests for Fsync_obs: registry semantics, span nesting under an
   injected clock, exporter round-trips through the strict JSON reader,
   the disabled-scope contract, and the end-to-end claim that a faulty
   merkle collection sync actually populates the paper-metric
   counters. *)

module Json = Fsync_obs.Json
module Registry = Fsync_obs.Registry
module Scope = Fsync_obs.Scope

(* ---- registry: counters / gauges / histograms ---- *)

let test_counters () =
  let reg = Registry.create () in
  Alcotest.(check int) "untouched counter reads 0" 0 (Registry.counter reg "x");
  Registry.incr reg "b";
  Registry.incr reg "b";
  Registry.add reg "a" 5;
  Registry.add reg "b" 3;
  Alcotest.(check int) "a" 5 (Registry.counter reg "a");
  Alcotest.(check int) "b" 5 (Registry.counter reg "b");
  Alcotest.(check (list (pair string int))) "sorted by name"
    [ ("a", 5); ("b", 5) ] (Registry.counters reg)

let test_gauges_histograms () =
  let reg = Registry.create () in
  Alcotest.(check (option (float 0.0))) "unset gauge" None
    (Registry.gauge reg "g");
  Registry.set_gauge reg "g" 1.5;
  Registry.set_gauge reg "g" 2.5;
  Alcotest.(check (option (float 0.0))) "gauge keeps last" (Some 2.5)
    (Registry.gauge reg "g");
  List.iter (Registry.observe reg "h") [ 1.0; 3.0; 2.0 ];
  Alcotest.(check (list (float 0.0))) "raw observations in order"
    [ 1.0; 3.0; 2.0 ]
    (Registry.histogram reg "h");
  match Registry.histograms reg with
  | [ ("h", Some s) ] ->
      Alcotest.(check int) "count" 3 s.Fsync_util.Stats.count;
      Alcotest.(check (float 1e-9)) "mean" 2.0 s.Fsync_util.Stats.mean
  | _ -> Alcotest.fail "expected one summarized histogram"

(* ---- spans ---- *)

(* A deterministic clock: every read advances time by 1.0 s. *)
let ticking_clock () =
  let t = ref 0.0 in
  fun () ->
    let now = !t in
    t := now +. 1.0;
    now

let test_span_nesting () =
  let reg = Registry.create ~clock:(ticking_clock ()) () in
  let outer = Registry.span_enter reg "outer" in
  let inner = Registry.span_enter reg "inner" in
  Registry.span_exit reg inner;
  Registry.span_exit reg outer;
  Registry.with_span reg "sibling" (fun () -> ());
  match Registry.spans reg with
  | [ o; i; s ] ->
      Alcotest.(check string) "outer name" "outer" o.Registry.name;
      Alcotest.(check int) "outer is root" (-1) o.Registry.parent;
      Alcotest.(check int) "inner nests under outer" o.Registry.id
        i.Registry.parent;
      Alcotest.(check int) "sibling is root" (-1) s.Registry.parent;
      (* Injected clock: outer spans [t=0, t=3], inner [1, 2]. *)
      Alcotest.(check (float 1e-9)) "inner duration" 1.0
        (i.Registry.t1 -. i.Registry.t0);
      Alcotest.(check (float 1e-9)) "outer duration" 3.0
        (o.Registry.t1 -. o.Registry.t0);
      Alcotest.(check bool) "well nested" true
        (o.Registry.t0 <= i.Registry.t0 && i.Registry.t1 <= o.Registry.t1)
  | l -> Alcotest.failf "expected 3 spans, got %d" (List.length l)

let test_span_exit_closes_children () =
  let reg = Registry.create ~clock:(ticking_clock ()) () in
  let outer = Registry.span_enter reg "outer" in
  let _inner = Registry.span_enter reg "inner" in
  (* Exiting the outer span force-closes the still-open inner one. *)
  Registry.span_exit reg outer;
  List.iter
    (fun (s : Registry.span) ->
      Alcotest.(check bool) (s.Registry.name ^ " closed") true
        (s.Registry.t1 >= s.Registry.t0))
    (Registry.spans reg);
  (* An unknown id is ignored, not an error. *)
  Registry.span_exit reg 999;
  Alcotest.(check int) "span count" 2 (Registry.span_count reg)

(* ---- exporters ---- *)

let test_jsonl_round_trip () =
  let reg = Registry.create ~clock:(ticking_clock ()) () in
  Registry.add reg "group_tests_total" 7;
  Registry.set_gauge reg "similarity" 0.25;
  Registry.observe reg "round_hashes" 12.0;
  Registry.with_span reg "round" (fun () -> ());
  let lines =
    List.filter
      (fun l -> String.trim l <> "")
      (String.split_on_char '\n' (Registry.to_jsonl reg))
  in
  let events =
    List.map
      (fun line ->
        match Json.parse line with
        | Ok j -> j
        | Error e -> Alcotest.failf "unparseable JSONL line %S: %s" line e)
      lines
  in
  let typ j =
    match Option.bind (Json.member "type" j) Json.to_string_opt with
    | Some t -> t
    | None -> Alcotest.fail "event without a type"
  in
  (match events with
  | meta :: _ -> Alcotest.(check string) "meta first" "meta" (typ meta)
  | [] -> Alcotest.fail "empty JSONL export");
  let find t name =
    List.find_opt
      (fun j ->
        typ j = t
        && Option.bind (Json.member "name" j) Json.to_string_opt = Some name)
      events
  in
  (match find "counter" "group_tests_total" with
  | Some j ->
      Alcotest.(check (option int)) "counter value" (Some 7)
        (Option.bind (Json.member "value" j) Json.to_int_opt)
  | None -> Alcotest.fail "missing counter event");
  (match find "gauge" "similarity" with
  | Some j ->
      Alcotest.(check (option (float 1e-9))) "gauge value" (Some 0.25)
        (Option.bind (Json.member "value" j) Json.to_float_opt)
  | None -> Alcotest.fail "missing gauge event");
  (match find "histogram" "round_hashes" with
  | Some j ->
      Alcotest.(check (option int)) "histogram count" (Some 1)
        (Option.bind (Json.member "count" j) Json.to_int_opt)
  | None -> Alcotest.fail "missing histogram event");
  match find "span" "round" with
  | Some j ->
      Alcotest.(check bool) "span has duration" true
        (Option.bind (Json.member "dur_s" j) Json.to_float_opt <> None)
  | None -> Alcotest.fail "missing span event"

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec loop i =
    i + nn <= nh && (String.sub haystack i nn = needle || loop (i + 1))
  in
  nn = 0 || loop 0

let test_prometheus_export () =
  let reg = Registry.create ~clock:(ticking_clock ()) () in
  Registry.add reg "frame_naks" 3;
  Registry.set_gauge reg "similarity" 0.5;
  List.iter (Registry.observe reg "file_bytes_sent") [ 10.0; 20.0; 30.0 ];
  Registry.with_span reg "phase cont" (fun () -> ());
  let out = Registry.to_prometheus reg in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("mentions " ^ needle) true (contains out needle))
    [
      (* Scrape-grade exposition: HELP/TYPE per family, real cumulative
         histogram series instead of pre-quantiled summaries. *)
      "# HELP fsync_frame_naks";
      "# TYPE fsync_frame_naks counter";
      "fsync_frame_naks 3";
      "# TYPE fsync_similarity gauge";
      "fsync_similarity 0.5";
      "# TYPE fsync_file_bytes_sent histogram";
      "fsync_file_bytes_sent_bucket{le=\"+Inf\"} 3";
      "fsync_file_bytes_sent_sum 60";
      "fsync_file_bytes_sent_count 3";
      (* span names are sanitized to [a-zA-Z0-9_] *)
      "fsync_span_phase_cont_seconds";
    ];
  Alcotest.(check bool) "no unsanitized name" true
    (not (contains out "phase cont"));
  Alcotest.(check bool) "summaries gone" true
    (not (contains out "quantile"));
  (* Bucket counts are cumulative: each series line is >= the one
     before it, ending at the +Inf count. *)
  let bucket_counts =
    List.filter_map
      (fun line ->
        if contains line "fsync_file_bytes_sent_bucket" then
          String.rindex_opt line ' '
          |> Option.map (fun i ->
                 int_of_string
                   (String.sub line (i + 1) (String.length line - i - 1)))
        else None)
      (String.split_on_char '\n' out)
  in
  Alcotest.(check bool) "several buckets" true (List.length bucket_counts > 3);
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "buckets cumulative" true (monotone bucket_counts);
  Alcotest.(check int) "+Inf bucket equals count" 3
    (List.nth bucket_counts (List.length bucket_counts - 1))

(* ---- monotonic clock ---- *)

let test_monotonic_clamp () =
  (* A base clock that steps backwards mid-sequence (an NTP step):
     the wrapped clock must never decrease. *)
  let readings = ref [ 10.0; 11.0; 5.0; 6.0; 12.0 ] in
  let base () =
    match !readings with
    | [] -> 100.0
    | r :: rest ->
        readings := rest;
        r
  in
  let clock = Fsync_obs.Monotonic.wrap base in
  let seen = List.init 5 (fun _ -> clock ()) in
  Alcotest.(check (list (float 1e-9)))
    "clamped non-decreasing"
    [ 10.0; 11.0; 11.0; 11.0; 12.0 ]
    seen;
  (* The shared process clock also never goes backwards. *)
  let a = Fsync_obs.Monotonic.now () in
  let b = Fsync_obs.Monotonic.now () in
  Alcotest.(check bool) "process clock monotone" true (b >= a)

(* ---- trace ids ---- *)

let test_trace_id () =
  let module Tid = Fsync_obs.Trace_id in
  let id = Tid.mint () in
  Alcotest.(check int) "raw size" Tid.size (String.length (Tid.to_raw id));
  let hex = Tid.to_hex id in
  Alcotest.(check int) "hex size" (2 * Tid.size) (String.length hex);
  String.iter
    (fun c ->
      Alcotest.(check bool) "lowercase hex" true
        ((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')))
    hex;
  (match Tid.of_hex hex with
  | Some id' -> Alcotest.(check bool) "hex roundtrip" true (Tid.equal id id')
  | None -> Alcotest.fail "of_hex rejected its own to_hex");
  (match Tid.of_raw (Tid.to_raw id) with
  | Some id' -> Alcotest.(check bool) "raw roundtrip" true (Tid.equal id id')
  | None -> Alcotest.fail "of_raw rejected its own to_raw");
  Alcotest.(check bool) "of_raw rejects short" true
    (Tid.of_raw "short" = None);
  Alcotest.(check bool) "of_raw rejects long" true
    (Tid.of_raw (String.make 17 'x') = None);
  Alcotest.(check bool) "of_hex rejects junk" true
    (Tid.of_hex (String.make 32 'g') = None);
  Alcotest.(check bool) "distinct mints" false
    (Tid.equal (Tid.mint ()) (Tid.mint ()))

let test_tagged_events () =
  let reg = Registry.create ~clock:(ticking_clock ()) () in
  Registry.set_trace reg ~trace:"cafe0123" ~role:"server";
  Alcotest.(check (option (pair string string))) "trace_tag"
    (Some ("cafe0123", "server"))
    (Registry.trace_tag reg);
  Registry.add reg "bytes_in" 5;
  Registry.with_span reg "session" (fun () -> ());
  List.iter
    (fun j ->
      let field name =
        Option.bind (Json.member name j) Json.to_string_opt
      in
      Alcotest.(check (option string)) "trace on every event"
        (Some "cafe0123") (field "trace");
      Alcotest.(check (option string)) "role on every event"
        (Some "server") (field "role"))
    (Registry.jsonl_events reg)

(* ---- trace report: merging client + server streams ---- *)

let test_trace_report () =
  let module Report = Fsync_obs.Trace_report in
  (* Two registries sharing a trace id, as a real pull produces: the
     client and server halves of one session, each with a session span
     tiled by phase spans.  Ticking clocks make the durations exact. *)
  let mk role spans counters =
    let reg = Registry.create ~clock:(ticking_clock ()) () in
    Registry.set_trace reg ~trace:"deadbeef" ~role;
    let sess = Registry.span_enter reg "session" in
    List.iter (fun name -> Registry.with_span reg name (fun () -> ())) spans;
    Registry.span_exit reg sess;
    List.iter (fun (n, v) -> Registry.add reg n v) counters;
    Registry.to_jsonl reg
  in
  let client =
    mk "client" [ "phase:metadata"; "phase:hash_rounds"; "phase:literals" ] []
  in
  let server =
    mk "server" [ "phase:metadata"; "phase:hash_rounds" ]
      [ ("bytes_out", 4096); ("rounds", 3) ]
  in
  let lines =
    List.filter
      (fun l -> String.trim l <> "")
      (String.split_on_char '\n' (client ^ server))
  in
  match Report.of_lines lines with
  | Error e -> Alcotest.failf "of_lines: %s" e
  | Ok [ s ] ->
      Alcotest.(check string) "joined on trace id" "deadbeef" s.Report.trace;
      Alcotest.(check (list string)) "both roles" [ "client"; "server" ]
        (List.sort compare s.Report.roles);
      (* Client session span: enter at t=1, each phase span takes 1 s of
         clock (enter+exit reads), exit at t=8 => 7 s;  phases cover
         3 s of it on the client, 2 of 5 on the server.  Coverage is
         the worst role. *)
      Alcotest.(check bool) "wall time positive" true (s.Report.wall_s > 0.0);
      Alcotest.(check bool) "coverage in range" true
        (s.Report.coverage > 0.0 && s.Report.coverage <= 1.0);
      let phase role name =
        List.find_opt
          (fun p -> p.Report.p_role = role && p.Report.p_name = name)
          s.Report.phases
      in
      Alcotest.(check bool) "client literals present" true
        (phase "client" "phase:literals" <> None);
      Alcotest.(check bool) "server metadata present" true
        (phase "server" "phase:metadata" <> None);
      Alcotest.(check bool) "server literals absent" true
        (phase "server" "phase:literals" = None);
      Alcotest.(check bool) "counter carried" true
        (List.exists
           (fun (role, n, v) -> role = "server" && n = "bytes_out" && v = 4096)
           s.Report.counters)
  | Ok l -> Alcotest.failf "expected 1 merged session, got %d" (List.length l)

let test_trace_report_edge_cases () =
  let module Report = Fsync_obs.Trace_report in
  (* Untagged events group under the "" trace instead of vanishing. *)
  let reg = Registry.create ~clock:(ticking_clock ()) () in
  Registry.with_span reg "session" (fun () -> ());
  let untagged =
    List.filter
      (fun l -> String.trim l <> "")
      (String.split_on_char '\n' (Registry.to_jsonl reg))
  in
  (match Report.of_lines untagged with
  | Ok [ s ] -> Alcotest.(check string) "untagged trace" "" s.Report.trace
  | Ok l -> Alcotest.failf "expected 1 session, got %d" (List.length l)
  | Error e -> Alcotest.failf "of_lines: %s" e);
  (* A zero-duration session reports coverage 1.0, not 0/0. *)
  let frozen = Registry.create ~clock:(fun () -> 42.0) () in
  Registry.set_trace frozen ~trace:"ff00" ~role:"client";
  Registry.with_span frozen "session" (fun () -> ());
  let lines =
    List.filter
      (fun l -> String.trim l <> "")
      (String.split_on_char '\n' (Registry.to_jsonl frozen))
  in
  (match Report.of_lines lines with
  | Ok [ s ] ->
      Alcotest.(check (float 1e-9)) "degenerate coverage" 1.0
        s.Report.coverage
  | Ok l -> Alcotest.failf "expected 1 session, got %d" (List.length l)
  | Error e -> Alcotest.failf "of_lines: %s" e);
  (* A malformed line is a typed error naming the line, not a crash. *)
  match Report.of_lines [ "{\"ok\":true}"; "not json" ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed line accepted"

(* ---- the disabled-scope contract ---- *)

let test_disabled_scope () =
  let s = Scope.disabled in
  Alcotest.(check bool) "disabled" false (Scope.is_enabled s);
  Alcotest.(check bool) "no registry" true (Scope.registry s = None);
  (* All operations are no-ops and enter hands back -1. *)
  Scope.incr s "c";
  Scope.add s "c" 10;
  Scope.set_gauge s "g" 1.0;
  Scope.observe s "h" 1.0;
  Alcotest.(check int) "enter returns -1" (-1) (Scope.enter s "span");
  Scope.leave s (-1);
  Alcotest.(check int) "timed runs f" 41 (Scope.timed s "t" (fun () -> 41))

let test_enabled_scope () =
  let reg = Registry.create ~clock:(ticking_clock ()) () in
  let s = Scope.of_registry reg in
  Alcotest.(check bool) "enabled" true (Scope.is_enabled s);
  Scope.incr s "c";
  Scope.add s "c" 2;
  let id = Scope.enter s "span" in
  Alcotest.(check bool) "real id" true (id >= 0);
  Scope.leave s id;
  Alcotest.(check int) "counter reaches registry" 3 (Registry.counter reg "c");
  Alcotest.(check int) "span recorded" 1 (Registry.span_count reg)

(* ---- paper metrics populate on a faulty merkle collection sync ---- *)

let test_faulty_merkle_counters () =
  let module Driver = Fsync_collection.Driver in
  let module Snapshot = Fsync_collection.Snapshot in
  (* Changed files differ in a handful of lines only, so the protocol
     finds plenty of genuine weak candidates to confirm. *)
  let mk ?(edited = false) i =
    ( Printf.sprintf "dir%d/file%02d.txt" (i mod 3) i,
      String.concat "\n"
        (List.init 120 (fun l ->
             if edited && l mod 40 = 7 then
               Printf.sprintf "EDITED line %d of file %d" l i
             else Printf.sprintf "line %d of file %d, some shared payload" l i))
    )
  in
  let client = Snapshot.of_files (List.init 12 (fun i -> mk i)) in
  let server =
    Snapshot.of_files (List.init 12 (fun i -> mk ~edited:(i mod 4 = 0) i))
  in
  let reg = Registry.create () in
  let scope = Scope.of_registry reg in
  let resilience =
    {
      Driver.default_resilience with
      faults =
        {
          Fsync_net.Fault.none with
          Fsync_net.Fault.p_corrupt = 0.05;
          max_disconnects = 0;
        };
      seed = 3;
    }
  in
  match
    Driver.sync_resilient ~metadata:Driver.Merkle ~resilience ~scope
      (Driver.Fsync Fsync_core.Config.tuned) ~client ~server
  with
  | Error e ->
      Alcotest.failf "resilient sync failed: %s" (Fsync_core.Error.to_string e)
  | Ok (updated, _summary) ->
      Alcotest.(check bool) "converged" true
        (Snapshot.files updated = Snapshot.files server);
      let positive name =
        Alcotest.(check bool)
          (name ^ " > 0")
          true
          (Registry.counter reg name > 0)
      in
      (* Metadata phase: the merkle descent ran and visited nodes. *)
      positive "merkle_leaves_built";
      positive "merkle_nodes_visited";
      positive "recon_rounds";
      (* Transfer phase: the multi-round protocol found and verified
         weak candidates via group testing. *)
      positive "weak_candidates_found";
      positive "weak_candidates_confirmed";
      positive "group_tests_total";
      positive "group_tests_passed";
      (* Link accounting flowed through the channel scope. *)
      positive "channel_messages";
      positive "channel_bytes_c2s";
      positive "channel_bytes_s2c";
      (* The corrupting link forced the frame layer to reject and
         recover at least one frame. *)
      positive "frame_bad";
      positive "frame_naks";
      positive "frame_retransmits"

let suite =
  [
    ("registry counters", `Quick, test_counters);
    ("registry gauges and histograms", `Quick, test_gauges_histograms);
    ("span nesting", `Quick, test_span_nesting);
    ("span exit closes children", `Quick, test_span_exit_closes_children);
    ("jsonl round trip", `Quick, test_jsonl_round_trip);
    ("prometheus export", `Quick, test_prometheus_export);
    ("monotonic clamp", `Quick, test_monotonic_clamp);
    ("trace id", `Quick, test_trace_id);
    ("tagged events", `Quick, test_tagged_events);
    ("trace report", `Quick, test_trace_report);
    ("trace report edge cases", `Quick, test_trace_report_edge_cases);
    ("disabled scope", `Quick, test_disabled_scope);
    ("enabled scope", `Quick, test_enabled_scope);
    ("faulty merkle counters", `Quick, test_faulty_merkle_counters);
  ]
