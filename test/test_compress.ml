(* Tests for Fsync_compress: Huffman code construction, LZ77 tokenization,
   Deflate container roundtrips. *)

open Fsync_compress
module Bitio = Fsync_util.Bitio
module Prng = Fsync_util.Prng

let qtest ?(count = 150) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ---- Huffman ---- *)

let kraft lengths =
  Array.fold_left
    (fun acc l -> if l > 0 then acc +. (1.0 /. float_of_int (1 lsl l)) else acc)
    0.0 lengths

let freqs_gen =
  QCheck2.Gen.(array_size (int_range 2 80) (int_bound 1000))

let huffman_kraft_prop =
  qtest "huffman: Kraft equality" freqs_gen (fun freqs ->
      let nonzero = Array.fold_left (fun a f -> if f > 0 then a + 1 else a) 0 freqs in
      let lengths = Huffman.lengths_of_freqs freqs in
      if nonzero = 0 then Array.for_all (fun l -> l = 0) lengths
      else if nonzero = 1 then Array.exists (fun l -> l = 1) lengths
      else abs_float (kraft lengths -. 1.0) < 1e-9)

let huffman_limit_prop =
  qtest "huffman: length limit respected"
    QCheck2.Gen.(array_size (int_range 2 60) (int_bound 1000))
    (fun freqs ->
      let lengths = Huffman.lengths_of_freqs ~limit:6 freqs in
      Array.for_all (fun l -> l <= 6) lengths
      &&
      (* Kraft still holds after limiting. *)
      let nonzero = Array.fold_left (fun a f -> if f > 0 then a + 1 else a) 0 freqs in
      nonzero < 2 || abs_float (kraft lengths -. 1.0) < 1e-9)

let test_huffman_limit_too_small () =
  Alcotest.check_raises "alphabet too large"
    (Invalid_argument "Huffman.lengths_of_freqs: alphabet too large for limit")
    (fun () -> ignore (Huffman.lengths_of_freqs ~limit:2 [| 1; 1; 1; 1; 1 |]))

let huffman_roundtrip_prop =
  qtest "huffman: encode/decode roundtrip"
    QCheck2.Gen.(
      pair (array_size (int_range 2 40) (int_range 1 100))
        (list_size (int_range 1 200) (int_bound 39)))
    (fun (freqs, raw_syms) ->
      let n = Array.length freqs in
      let syms = List.map (fun s -> s mod n) raw_syms in
      let lengths = Huffman.lengths_of_freqs freqs in
      let enc = Huffman.encoder_of_lengths lengths in
      let dec = Huffman.decoder_of_lengths lengths in
      let w = Bitio.Writer.create () in
      List.iter (fun s -> Huffman.encode enc w s) syms;
      let r = Bitio.Reader.of_string (Bitio.Writer.contents w) in
      List.for_all (fun s -> Huffman.decode dec r = s) syms)

let test_huffman_optimality_simple () =
  (* Highly skewed frequencies: the frequent symbol gets a shorter code. *)
  let lengths = Huffman.lengths_of_freqs [| 1000; 1; 1; 1 |] in
  Alcotest.(check bool) "skew" true (lengths.(0) < lengths.(1))

let test_huffman_single_symbol () =
  let lengths = Huffman.lengths_of_freqs [| 0; 7; 0 |] in
  Alcotest.(check (array int)) "single" [| 0; 1; 0 |] lengths;
  let enc = Huffman.encoder_of_lengths lengths in
  let dec = Huffman.decoder_of_lengths lengths in
  let w = Bitio.Writer.create () in
  Huffman.encode enc w 1;
  let r = Bitio.Reader.of_string (Bitio.Writer.contents w) in
  Alcotest.(check int) "decode" 1 (Huffman.decode dec r)

let test_huffman_no_code () =
  let enc = Huffman.encoder_of_lengths [| 1; 1; 0 |] in
  let w = Bitio.Writer.create () in
  Alcotest.check_raises "no code" (Invalid_argument "Huffman.encode: symbol has no code")
    (fun () -> Huffman.encode enc w 2)

let test_huffman_cost_bits () =
  let lengths = [| 1; 2; 2 |] and freqs = [| 10; 5; 5 |] in
  Alcotest.(check int) "cost" 30 (Huffman.cost_bits lengths freqs)

(* ---- LZ77 ---- *)

let text_gen =
  QCheck2.Gen.(
    let* words = list_size (int_range 0 300) (int_bound 20) in
    return
      (String.concat " "
         (List.map (fun w -> Printf.sprintf "word%d" w) words)))

let lz77_roundtrip_text =
  qtest "lz77: roundtrip on text" text_gen (fun s ->
      Lz77.check_stream s (Lz77.tokenize s))

let lz77_roundtrip_binary =
  qtest "lz77: roundtrip on binary"
    QCheck2.Gen.(string_size ~gen:char (int_bound 2000))
    (fun s -> Lz77.check_stream s (Lz77.tokenize s))

let lz77_levels =
  qtest ~count:50 "lz77: all levels roundtrip" text_gen (fun s ->
      List.for_all
        (fun level -> Lz77.check_stream s (Lz77.tokenize ~level s))
        [ Lz77.Fast; Lz77.Normal; Lz77.Best ])

let test_lz77_finds_repeats () =
  let s = String.concat "" (List.init 50 (fun _ -> "abcdefgh")) in
  let tokens = Lz77.tokenize s in
  let matches =
    List.exists (function Lz77.Match _ -> true | Lz77.Literal _ -> false) tokens
  in
  Alcotest.(check bool) "found matches" true matches;
  (* The stream should be much shorter than the input. *)
  Alcotest.(check bool) "few tokens" true (List.length tokens < 60)

let test_lz77_run () =
  (* A long single-char run is representable with overlapping matches. *)
  let s = String.make 5000 'x' in
  Alcotest.(check bool) "run roundtrip" true (Lz77.check_stream s (Lz77.tokenize s))

let test_lz77_short_inputs () =
  List.iter
    (fun s -> Alcotest.(check string) ("short " ^ s) s (Lz77.expand (Lz77.tokenize s)))
    [ ""; "a"; "ab"; "abc" ]

let test_lz77_expand_bad_distance () =
  Alcotest.check_raises "bad distance" (Invalid_argument "Lz77.expand: bad distance")
    (fun () -> ignore (Lz77.expand [ Lz77.Match { length = 3; distance = 1 } ]))

(* ---- Deflate ---- *)

let deflate_roundtrip_text =
  qtest "deflate: roundtrip on text" text_gen (fun s ->
      Deflate.decompress (Deflate.compress s) = s)

let deflate_roundtrip_binary =
  qtest "deflate: roundtrip on binary"
    QCheck2.Gen.(string_size ~gen:char (int_bound 3000))
    (fun s -> Deflate.decompress (Deflate.compress s) = s)

let test_deflate_empty () =
  Alcotest.(check string) "empty" "" (Deflate.decompress (Deflate.compress ""))

let test_deflate_compresses_text () =
  let b = Buffer.create 0 in
  for i = 0 to 500 do
    Buffer.add_string b (Printf.sprintf "line %d: the quick brown fox\n" (i mod 37))
  done;
  let s = Buffer.contents b in
  let c = Deflate.compress s in
  Alcotest.(check bool) "ratio < 0.25" true
    (String.length c * 4 < String.length s)

let test_deflate_incompressible_bounded () =
  let rng = Prng.create 99L in
  let s = Bytes.to_string (Prng.bytes rng 10_000) in
  let c = Deflate.compress s in
  (* Stored fallback bounds the expansion to the container overhead. *)
  Alcotest.(check bool) "bounded expansion" true
    (String.length c <= String.length s + Deflate.overhead_bytes)

let test_deflate_levels () =
  let s = String.concat "" (List.init 200 (fun i -> Printf.sprintf "chunk-%d;" (i mod 13))) in
  List.iter
    (fun level ->
      Alcotest.(check string) "level roundtrip" s
        (Deflate.decompress (Deflate.compress ~level s)))
    [ Deflate.Fast; Deflate.Normal; Deflate.Best ]

let test_deflate_malformed () =
  (* Unknown mode byte *)
  let bad = "\x05\x09garbage" in
  match Deflate.decompress bad with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected failure on malformed input"

let test_deflate_size_helper () =
  let s = "hello hello hello hello" in
  Alcotest.(check int) "compressed_size" (String.length (Deflate.compress s))
    (Deflate.compressed_size s)

let suite =
  [
    huffman_kraft_prop;
    huffman_limit_prop;
    huffman_roundtrip_prop;
    ("huffman limit too small", `Quick, test_huffman_limit_too_small);
    ("huffman skew", `Quick, test_huffman_optimality_simple);
    ("huffman single symbol", `Quick, test_huffman_single_symbol);
    ("huffman missing code", `Quick, test_huffman_no_code);
    ("huffman cost_bits", `Quick, test_huffman_cost_bits);
    lz77_roundtrip_text;
    lz77_roundtrip_binary;
    lz77_levels;
    ("lz77 finds repeats", `Quick, test_lz77_finds_repeats);
    ("lz77 long run", `Quick, test_lz77_run);
    ("lz77 short inputs", `Quick, test_lz77_short_inputs);
    ("lz77 bad distance", `Quick, test_lz77_expand_bad_distance);
    deflate_roundtrip_text;
    deflate_roundtrip_binary;
    ("deflate empty", `Quick, test_deflate_empty);
    ("deflate compresses text", `Quick, test_deflate_compresses_text);
    ("deflate incompressible bounded", `Quick, test_deflate_incompressible_bounded);
    ("deflate levels", `Quick, test_deflate_levels);
    ("deflate malformed", `Quick, test_deflate_malformed);
    ("deflate size helper", `Quick, test_deflate_size_helper);
  ]
