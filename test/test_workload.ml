(* Tests for Fsync_workload: generator determinism, the edit model's
   semantics, and the statistical shape of the synthetic datasets. *)

open Fsync_workload
module Prng = Fsync_util.Prng

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ---- Edit_model.apply semantics ---- *)

let test_apply_insert () =
  Alcotest.(check string) "insert" "abXcd"
    (Edit_model.apply "abcd" [ Edit_model.Insert { pos = 2; text = "X" } ])

let test_apply_delete () =
  Alcotest.(check string) "delete" "ad"
    (Edit_model.apply "abcd" [ Edit_model.Delete { pos = 1; len = 2 } ])

let test_apply_replace () =
  Alcotest.(check string) "replace" "aXYd"
    (Edit_model.apply "abcd" [ Edit_model.Replace { pos = 1; len = 2; text = "XY" } ])

let test_apply_multiple_order_independent () =
  let edits =
    [ Edit_model.Delete { pos = 4; len = 1 };
      Edit_model.Insert { pos = 0; text = ">" } ]
  in
  Alcotest.(check string) "combined" ">abcd" (Edit_model.apply "abcde" edits);
  Alcotest.(check string) "reversed list same result" ">abcd"
    (Edit_model.apply "abcde" (List.rev edits))

let test_apply_touching_edits () =
  let edits =
    [ Edit_model.Delete { pos = 0; len = 2 };
      Edit_model.Insert { pos = 2; text = "X" } ]
  in
  Alcotest.(check string) "touching" "Xcd" (Edit_model.apply "abcd" edits)

let test_apply_overlap_rejected () =
  Alcotest.check_raises "overlap"
    (Invalid_argument "Edit_model.apply: overlapping edits") (fun () ->
      ignore
        (Edit_model.apply "abcdef"
           [ Edit_model.Delete { pos = 0; len = 3 };
             Edit_model.Replace { pos = 2; len = 2; text = "z" } ]))

let test_apply_out_of_range () =
  Alcotest.check_raises "oob" (Invalid_argument "Edit_model.apply: out of range")
    (fun () -> ignore (Edit_model.apply "ab" [ Edit_model.Delete { pos = 1; len = 5 } ]))

let gen_text rng n = String.init n (fun _ -> Char.chr (97 + Prng.int rng 26))

let random_edits_valid =
  qtest "edit model: random scripts apply cleanly"
    QCheck2.Gen.(pair (int_bound 100_000) (int_range 100 5000))
    (fun (seed, size) ->
      let rng = Prng.create (Int64.of_int seed) in
      let s = Bytes.to_string (Prng.bytes rng size) in
      let edits = Edit_model.random_edits rng ~profile:Edit_model.medium ~gen_text s in
      let out = Edit_model.apply s edits in
      String.length out >= 0)

let test_profiles_magnitude () =
  (* Heavier profiles change more bytes (measured by delta size). *)
  let rng = Prng.create 5L in
  let s = Text_gen.c_like rng ~lines:3000 in
  let changed profile =
    let rng = Prng.create 6L in
    let out = Edit_model.mutate rng ~profile ~gen_text s in
    Fsync_delta.Delta.encoded_size ~reference:s out
  in
  let l = changed Edit_model.light in
  let m = changed Edit_model.medium in
  let h = changed Edit_model.heavy in
  Alcotest.(check bool) (Printf.sprintf "light(%d) < medium(%d)" l m) true (l < m);
  Alcotest.(check bool) (Printf.sprintf "medium(%d) < heavy(%d)" m h) true (m < h)

(* ---- Text_gen ---- *)

let test_text_gen_deterministic () =
  let a = Text_gen.c_like (Prng.create 1L) ~lines:100 in
  let b = Text_gen.c_like (Prng.create 1L) ~lines:100 in
  Alcotest.(check string) "same seed same text" a b;
  let c = Text_gen.c_like (Prng.create 2L) ~lines:100 in
  Alcotest.(check bool) "different seed different text" false (a = c)

let test_text_gen_compressible () =
  (* Token-repetitive text must compress like source code (< 40%). *)
  List.iter
    (fun s ->
      let ratio =
        float_of_int (Fsync_compress.Deflate.compressed_size s)
        /. float_of_int (String.length s)
      in
      Alcotest.(check bool) (Printf.sprintf "ratio %.2f" ratio) true (ratio < 0.4))
    [
      Text_gen.c_like (Prng.create 3L) ~lines:1000;
      Text_gen.lisp_like (Prng.create 4L) ~lines:1000;
      Text_gen.html_like (Prng.create 5L) ~body_words:2000
        ~boilerplate:(Text_gen.boilerplate (Prng.create 6L));
    ]

let test_text_gen_sizes () =
  let s = Text_gen.c_like (Prng.create 7L) ~lines:500 in
  let actual_lines = List.length (String.split_on_char '\n' s) in
  Alcotest.(check bool)
    (Printf.sprintf "line count %d" actual_lines)
    true
    (actual_lines > 250 && actual_lines < 1500)

(* ---- Source_tree ---- *)

let small_gcc = Source_tree.gcc_preset ~scale:0.02
let small_emacs = Source_tree.emacs_preset ~scale:0.02

let test_source_tree_deterministic () =
  let p1 = Source_tree.generate small_gcc in
  let p2 = Source_tree.generate small_gcc in
  Alcotest.(check bool) "same pair" true
    (List.map (fun (f : Source_tree.file) -> f.content) p1.new_version
    = List.map (fun (f : Source_tree.file) -> f.content) p2.new_version)

let test_source_tree_change_profile () =
  let pair = Source_tree.generate small_gcc in
  let files = Source_tree.changed_files pair in
  Alcotest.(check int) "file count" small_gcc.n_files (List.length files);
  let unchanged =
    List.length (List.filter (fun ((o : Source_tree.file), (n : Source_tree.file)) -> o.content = n.content) files)
  in
  let frac = float_of_int unchanged /. float_of_int (List.length files) in
  (* Preset says ~55% unchanged; allow a wide band for a small sample. *)
  Alcotest.(check bool) (Printf.sprintf "unchanged frac %.2f" frac) true
    (frac > 0.3 && frac < 0.8)

let test_source_tree_distinct_paths () =
  let pair = Source_tree.generate small_emacs in
  let paths = List.map (fun (f : Source_tree.file) -> f.path) pair.old_version in
  Alcotest.(check int) "unique paths" (List.length paths)
    (List.length (List.sort_uniq compare paths))

let test_source_tree_versions_similar () =
  (* Changed files should still be highly similar: total delta is a small
     fraction of the collection size. *)
  let pair = Source_tree.generate small_gcc in
  let total = Source_tree.total_bytes pair.new_version in
  let delta_total =
    List.fold_left
      (fun acc ((o : Source_tree.file), (n : Source_tree.file)) ->
        acc + Fsync_delta.Delta.encoded_size ~reference:o.content n.content)
      0
      (Source_tree.changed_files pair)
  in
  let frac = float_of_int delta_total /. float_of_int total in
  Alcotest.(check bool) (Printf.sprintf "delta fraction %.3f" frac) true (frac < 0.10)

(* ---- Web_collection ---- *)

let web_preset = Web_collection.default_preset ~scale:0.01

let test_web_deterministic () =
  let a = Web_collection.base web_preset in
  let b = Web_collection.base web_preset in
  Alcotest.(check bool) "deterministic" true (a = b)

let test_web_evolution_fraction () =
  let base = Web_collection.base web_preset in
  let day1 = Web_collection.evolve web_preset base ~days:1 in
  Alcotest.(check int) "same page count" (Array.length base) (Array.length day1);
  let changed = ref 0 in
  Array.iteri
    (fun i (p : Web_collection.page) ->
      if p.content <> day1.(i).content then incr changed)
    base;
  let frac = float_of_int !changed /. float_of_int (Array.length base) in
  (* p_change 0.18 plus churny pages: expect roughly 15-35%. *)
  Alcotest.(check bool) (Printf.sprintf "changed frac %.2f" frac) true
    (frac > 0.08 && frac < 0.45)

let test_web_evolution_cumulative () =
  let base = Web_collection.base web_preset in
  let d1 = Web_collection.evolve web_preset base ~days:1 in
  let d7 = Web_collection.evolve web_preset base ~days:7 in
  let delta_vs snap =
    Array.to_list snap
    |> List.mapi (fun i (p : Web_collection.page) ->
           Fsync_delta.Delta.encoded_size ~reference:base.(i).content p.content)
    |> List.fold_left ( + ) 0
  in
  let c1 = delta_vs d1 and c7 = delta_vs d7 in
  Alcotest.(check bool) (Printf.sprintf "more days more change %d < %d" c1 c7)
    true (c1 < c7)

let test_web_urls_stable () =
  let base = Web_collection.base web_preset in
  let d3 = Web_collection.evolve web_preset base ~days:3 in
  Array.iteri
    (fun i (p : Web_collection.page) ->
      if p.url <> d3.(i).url then Alcotest.fail "url changed")
    base

let test_datasets_scale_env () =
  (* Datasets honours FSYNC_SCALE; just check the accessor parses. *)
  let s = Datasets.scale () in
  Alcotest.(check bool) "positive" true (s > 0.0);
  Alcotest.(check bool) "name nonempty" true (String.length (Datasets.scale_name ()) > 0)

let suite =
  [
    ("apply insert", `Quick, test_apply_insert);
    ("apply delete", `Quick, test_apply_delete);
    ("apply replace", `Quick, test_apply_replace);
    ("apply order independent", `Quick, test_apply_multiple_order_independent);
    ("apply touching", `Quick, test_apply_touching_edits);
    ("apply overlap rejected", `Quick, test_apply_overlap_rejected);
    ("apply out of range", `Quick, test_apply_out_of_range);
    random_edits_valid;
    ("profiles magnitude", `Slow, test_profiles_magnitude);
    ("text gen deterministic", `Quick, test_text_gen_deterministic);
    ("text gen compressible", `Quick, test_text_gen_compressible);
    ("text gen sizes", `Quick, test_text_gen_sizes);
    ("source tree deterministic", `Slow, test_source_tree_deterministic);
    ("source tree change profile", `Slow, test_source_tree_change_profile);
    ("source tree distinct paths", `Quick, test_source_tree_distinct_paths);
    ("source tree versions similar", `Slow, test_source_tree_versions_similar);
    ("web deterministic", `Quick, test_web_deterministic);
    ("web evolution fraction", `Quick, test_web_evolution_fraction);
    ("web evolution cumulative", `Quick, test_web_evolution_cumulative);
    ("web urls stable", `Quick, test_web_urls_stable);
    ("datasets scale env", `Quick, test_datasets_scale_env);
  ]
