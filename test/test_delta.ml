(* Tests for Fsync_delta: instruction semantics and end-to-end delta
   encode/decode against both profiles. *)

open Fsync_delta
module Prng = Fsync_util.Prng

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* Generator of (reference, similar-target) pairs: the target reuses chunks
   of the reference with local perturbations. *)
let similar_pair_gen =
  QCheck2.Gen.(
    let* seed = int_bound 1_000_000 in
    return
      (let rng = Prng.create (Int64.of_int seed) in
       let buf = Buffer.create 1024 in
       for i = 0 to 60 + Prng.int rng 100 do
         Buffer.add_string buf
           (Printf.sprintf "record %d field %d payload %d\n" i (Prng.int rng 20)
              (Prng.int rng 1000))
       done;
       let reference = Buffer.contents buf in
       let out = Buffer.create 1024 in
       let n = String.length reference in
       let pos = ref 0 in
       while !pos < n do
         let len = min (n - !pos) (50 + Prng.int rng 400) in
         if Prng.bernoulli rng 0.75 then
           Buffer.add_substring out reference !pos len
         else begin
           Buffer.add_string out
             (Printf.sprintf "<inserted %d>" (Prng.int rng 10000));
           if Prng.bernoulli rng 0.5 then Buffer.add_substring out reference !pos len
         end;
         pos := !pos + len
       done;
       (reference, Buffer.contents out)))

let delta_roundtrip profile =
  qtest
    (Printf.sprintf "delta: roundtrip (%s)"
       (match profile with Delta.Zdelta -> "zdelta" | Delta.Vcdiff -> "vcdiff"))
    similar_pair_gen
    (fun (reference, target) ->
      Delta.decode ~reference (Delta.encode ~profile ~reference target) = target)

let delta_random_binary =
  qtest "delta: roundtrip on unrelated binary"
    QCheck2.Gen.(pair (string_size ~gen:char (int_bound 2000))
                   (string_size ~gen:char (int_bound 2000)))
    (fun (reference, target) ->
      Delta.decode ~reference (Delta.encode ~reference target) = target)

let test_delta_edges () =
  List.iter
    (fun (r, t) ->
      Alcotest.(check string)
        (Printf.sprintf "edge %S->%S" r t)
        t
        (Delta.decode ~reference:r (Delta.encode ~reference:r t)))
    [ ("", ""); ("abc", ""); ("", "abc"); ("same", "same"); ("ab", "ababababab") ]

let test_delta_identical_is_tiny () =
  let s = String.concat "" (List.init 300 (fun i -> Printf.sprintf "line %d\n" i)) in
  let d = Delta.encode ~reference:s s in
  Alcotest.(check bool) "tiny delta" true (String.length d < 64)

let test_delta_beats_compression_on_similar () =
  let rng = Prng.create 5L in
  let buf = Buffer.create 0 in
  for i = 0 to 2000 do
    Buffer.add_string buf (Printf.sprintf "item %d value %Ld\n" i (Prng.next64 rng))
  done;
  let v1 = Buffer.contents buf in
  let v2 = String.sub v1 0 2000 ^ "CHANGED" ^ String.sub v1 2010 (String.length v1 - 2010) in
  let delta_size = Delta.encoded_size ~reference:v1 v2 in
  let gzip_size = Fsync_compress.Deflate.compressed_size v2 in
  Alcotest.(check bool) "delta much smaller than gzip" true (delta_size * 5 < gzip_size)

let test_zdelta_not_worse_than_vcdiff () =
  let rng = Prng.create 17L in
  let buf = Buffer.create 0 in
  for i = 0 to 3000 do
    Buffer.add_string buf (Printf.sprintf "func_%d(%d);\n" (i mod 61) (i mod 7))
  done;
  let v1 = Buffer.contents buf in
  let v2 =
    Fsync_workload.Edit_model.mutate rng ~profile:Fsync_workload.Edit_model.medium
      ~gen_text:(fun rng n -> String.init n (fun _ -> Char.chr (97 + Prng.int rng 26)))
      v1
  in
  let z = Delta.encoded_size ~profile:Delta.Zdelta ~reference:v1 v2 in
  let v = Delta.encoded_size ~profile:Delta.Vcdiff ~reference:v1 v2 in
  Alcotest.(check bool) (Printf.sprintf "zdelta(%d) <= vcdiff(%d) * 1.1" z v) true
    (float_of_int z <= float_of_int v *. 1.1)

let test_instructions_apply () =
  let reference = "0123456789" in
  let instrs =
    [ Delta.Copy_ref { off = 0; len = 5 };
      Delta.Insert "XY";
      Delta.Copy_tgt { off = 0; len = 3 };
      Delta.Copy_ref { off = 8; len = 2 } ]
  in
  Alcotest.(check string) "apply" "01234XY01289" (Delta.apply ~reference instrs)

let test_instructions_out_of_range () =
  Alcotest.check_raises "ref oob"
    (Invalid_argument "Delta.apply: reference copy out of range") (fun () ->
      ignore (Delta.apply ~reference:"abc" [ Delta.Copy_ref { off = 1; len = 5 } ]));
  Alcotest.check_raises "tgt oob"
    (Invalid_argument "Delta.apply: target copy out of range") (fun () ->
      ignore (Delta.apply ~reference:"abc" [ Delta.Copy_tgt { off = 0; len = 1 } ]))

let test_instructions_expand_target () =
  let reference = "the quick brown fox jumps over the lazy dog" in
  let target = reference ^ " -- " ^ reference in
  let instrs = Delta.instructions ~reference target in
  Alcotest.(check string) "instructions apply" target (Delta.apply ~reference instrs);
  (* Should be dominated by copies, not literals. *)
  let literal_bytes =
    List.fold_left
      (fun acc i ->
        match i with Delta.Insert s -> acc + String.length s | _ -> acc)
      0 instrs
  in
  Alcotest.(check bool) "few literals" true (literal_bytes < 12)

let test_delta_malformed () =
  match Delta.decode ~reference:"abc" "not a delta" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected malformed-delta failure"

let suite =
  [
    delta_roundtrip Delta.Zdelta;
    delta_roundtrip Delta.Vcdiff;
    delta_random_binary;
    ("delta edges", `Quick, test_delta_edges);
    ("delta identical tiny", `Quick, test_delta_identical_is_tiny);
    ("delta beats gzip on similar", `Quick, test_delta_beats_compression_on_similar);
    ("zdelta <= vcdiff", `Quick, test_zdelta_not_worse_than_vcdiff);
    ("instructions apply", `Quick, test_instructions_apply);
    ("instructions out of range", `Quick, test_instructions_out_of_range);
    ("instructions mostly copies", `Quick, test_instructions_expand_target);
    ("delta malformed", `Quick, test_delta_malformed);
  ]
