(* Tests for Fsync_net.Channel: byte accounting, round-trip counting, the
   message queue, and the simulated link time. *)

open Fsync_net

(* [Channel.recv] is gone from the API (protocol code must handle an
   empty queue as a typed condition); tests materialize the option. *)
let recv_exn ch dir =
  match Channel.recv_opt ch dir with
  | Some p -> p
  | None -> Alcotest.fail "expected a pending message"

let test_byte_counters () =
  let ch = Channel.create () in
  Channel.send ch Channel.Client_to_server "abc";
  Channel.send ch Channel.Server_to_client "defgh";
  Channel.send ch Channel.Client_to_server "";
  Alcotest.(check int) "c2s" 3 (Channel.bytes ch Channel.Client_to_server);
  Alcotest.(check int) "s2c" 5 (Channel.bytes ch Channel.Server_to_client);
  Alcotest.(check int) "total" 8 (Channel.total_bytes ch);
  Alcotest.(check int) "messages" 3 (Channel.messages ch)

let test_roundtrips () =
  let ch = Channel.create () in
  Alcotest.(check int) "none yet" 0 (Channel.roundtrips ch);
  Channel.send ch Channel.Client_to_server "q1";
  (* Consecutive same-direction messages piggyback on one trip. *)
  Channel.send ch Channel.Client_to_server "q2";
  Channel.send ch Channel.Server_to_client "a1";
  Alcotest.(check int) "one roundtrip" 1 (Channel.roundtrips ch);
  Channel.send ch Channel.Client_to_server "q3";
  Channel.send ch Channel.Server_to_client "a2";
  Alcotest.(check int) "two roundtrips" 2 (Channel.roundtrips ch)

let test_queue_fifo () =
  let ch = Channel.create () in
  Channel.send ch Channel.Client_to_server "first";
  Channel.send ch Channel.Client_to_server "second";
  Alcotest.(check string) "fifo 1" "first" (recv_exn ch Channel.Client_to_server);
  Alcotest.(check string) "fifo 2" "second" (recv_exn ch Channel.Client_to_server);
  Alcotest.(check (option string)) "empty" None
    (Channel.recv_opt ch Channel.Client_to_server)

let test_directions_independent () =
  let ch = Channel.create () in
  Channel.send ch Channel.Client_to_server "up";
  Channel.send ch Channel.Server_to_client "down";
  Alcotest.(check string) "down" "down" (recv_exn ch Channel.Server_to_client);
  Alcotest.(check string) "up" "up" (recv_exn ch Channel.Client_to_server)

let test_elapsed () =
  let ch = Channel.create ~latency_s:0.1 ~bandwidth_bps:8000.0 () in
  Channel.send ch Channel.Client_to_server (String.make 1000 'x');
  Channel.send ch Channel.Server_to_client "ok";
  (* 1 roundtrip * 2 * 0.1s + 1002 bytes / 1000 B/s *)
  let t = Channel.elapsed_s ch in
  Alcotest.(check bool) (Printf.sprintf "elapsed %.3f" t) true
    (t > 1.19 && t < 1.22)

let test_transcript_and_reset () =
  let ch = Channel.create () in
  Channel.send ch ~label:"hello" Channel.Client_to_server "xy";
  let tr = Channel.transcript ch in
  (match tr with
  | [ (Channel.Client_to_server, "hello", 2) ] -> ()
  | _ -> Alcotest.fail "unexpected transcript");
  Channel.reset ch;
  Alcotest.(check int) "reset bytes" 0 (Channel.total_bytes ch);
  Alcotest.(check int) "reset messages" 0 (Channel.messages ch);
  Alcotest.(check (list unit)) "reset transcript" []
    (List.map (fun _ -> ()) (Channel.transcript ch))

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec loop i =
    i + nn <= nh && (String.sub haystack i nn = needle || loop (i + 1))
  in
  nn = 0 || loop 0

let test_trace_render () =
  let ch = Channel.create () in
  Channel.send ch ~label:"hello" Channel.Client_to_server "abc";
  Channel.send ch ~label:"info" Channel.Server_to_client "defg";
  Channel.send ch ~label:"resp" Channel.Client_to_server "x";
  let out = Fsync_net.Trace.render ch in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("mentions " ^ needle) true (contains out needle))
    [ "hello"; "info"; "resp"; "round trip 2" ]

let test_trace_summary () =
  let ch = Channel.create () in
  Channel.send ch ~label:"a" Channel.Client_to_server "12345";
  Channel.send ch ~label:"b" Channel.Server_to_client "123";
  Channel.send ch ~label:"a" Channel.Client_to_server "12";
  match Fsync_net.Trace.summary_by_label ch with
  | [ ("a", 2, 7); ("b", 1, 3) ] -> ()
  | other ->
      Alcotest.failf "unexpected summary: %s"
        (String.concat ";"
           (List.map (fun (l, c, b) -> Printf.sprintf "%s/%d/%d" l c b) other))

let test_trace_roundtrip_numbering () =
  (* Render numbers trips exactly like Channel.roundtrips: a c2s message
     after s2c traffic (or at the very start) opens the next trip. *)
  let ch = Channel.create () in
  Channel.send ch ~label:"q1" Channel.Client_to_server "aa";
  Channel.send ch ~label:"a1" Channel.Server_to_client "bb";
  Channel.send ch ~label:"q2" Channel.Client_to_server "cc";
  Channel.send ch ~label:"q2b" Channel.Client_to_server "dd";
  Channel.send ch ~label:"a2" Channel.Server_to_client "ee";
  Channel.send ch ~label:"q3" Channel.Client_to_server "ff";
  let out = Fsync_net.Trace.render ch in
  let index needle =
    let nn = String.length needle and nh = String.length out in
    let rec loop i =
      if i + nn > nh then Alcotest.failf "missing %S in render" needle
      else if String.sub out i nn = needle then i
      else loop (i + 1)
    in
    loop 0
  in
  let i1 = index "-- round trip 1 --"
  and i2 = index "-- round trip 2 --"
  and i3 = index "-- round trip 3 --" in
  Alcotest.(check bool) "trips in order" true (i1 < i2 && i2 < i3);
  Alcotest.(check bool) "no fourth trip" true (not (contains out "round trip 4"));
  (* The trailing q3 has no reply yet: the channel counts completed
     trips (2) while render numbers each initiated one (3). *)
  Alcotest.(check bool) "footer agrees" true (contains out "2 round trips");
  Alcotest.(check int) "channel agrees" 2 (Channel.roundtrips ch)

let test_trace_summary_ties () =
  (* Equal byte totals must come back in a deterministic order: label
     ascending. *)
  let ch = Channel.create () in
  Channel.send ch ~label:"zeta" Channel.Client_to_server "1234";
  Channel.send ch ~label:"alpha" Channel.Server_to_client "12";
  Channel.send ch ~label:"alpha" Channel.Client_to_server "34";
  Channel.send ch ~label:"mid" Channel.Server_to_client "123456";
  match Fsync_net.Trace.summary_by_label ch with
  | [ ("mid", 1, 6); ("alpha", 2, 4); ("zeta", 1, 4) ] -> ()
  | other ->
      Alcotest.failf "unexpected summary: %s"
        (String.concat ";"
           (List.map (fun (l, c, b) -> Printf.sprintf "%s/%d/%d" l c b) other))

let test_bytes_with_prefix () =
  let ch = Channel.create () in
  Channel.send ch ~label:"recon:level-1" Channel.Client_to_server "abc";
  Channel.send ch ~label:"recon:level-1" Channel.Server_to_client "defgh";
  Channel.send ch ~label:"recon" Channel.Client_to_server "zz";
  Channel.send ch ~label:"file" Channel.Server_to_client "0123456";
  (* The empty prefix matches every label. *)
  Alcotest.(check (pair int int)) "empty prefix = totals" (5, 12)
    (Fsync_net.Trace.bytes_with_prefix ch "");
  (* A prefix exactly as long as the label still matches it. *)
  Alcotest.(check (pair int int)) "exact-length label" (5, 5)
    (Fsync_net.Trace.bytes_with_prefix ch "recon");
  Alcotest.(check (pair int int)) "longer prefix excludes short label" (3, 5)
    (Fsync_net.Trace.bytes_with_prefix ch "recon:");
  Alcotest.(check (pair int int)) "no match" (0, 0)
    (Fsync_net.Trace.bytes_with_prefix ch "recon:level-10")

(* ---- Fd_transport: the fd-backed channel ---- *)

let test_fd_transport_roundtrip () =
  let tr = Fd_transport.of_socketpair () in
  let ch = Fd_transport.channel tr in
  Channel.send ch ~label:"t" Channel.Client_to_server "hello daemon";
  Channel.send ch ~label:"t" Channel.Server_to_client "hello client";
  Alcotest.(check (option string))
    "c2s frame" (Some "hello daemon")
    (Channel.recv_opt ch Channel.Client_to_server);
  Alcotest.(check (option string))
    "s2c frame" (Some "hello client")
    (Channel.recv_opt ch Channel.Server_to_client);
  Alcotest.(check (option string))
    "empty again" None
    (Channel.recv_opt ch Channel.Client_to_server);
  (* Accounting covers payload plus the 4-byte frame header. *)
  Alcotest.(check int)
    "c2s bytes" (12 + 4)
    (Channel.bytes ch Channel.Client_to_server);
  Fd_transport.close tr

let test_fd_transport_framing () =
  (* Several frames in flight arrive intact and in order, including an
     empty one. *)
  let tr = Fd_transport.of_socketpair () in
  let ch = Fd_transport.channel tr in
  let payloads = [ "a"; ""; String.make 100_000 'x'; "tail" ] in
  List.iter
    (fun p -> Channel.send ch ~label:"t" Channel.Client_to_server p)
    payloads;
  List.iter
    (fun expect ->
      Alcotest.(check (option string))
        "in order" (Some expect)
        (Channel.recv_opt ch Channel.Client_to_server))
    payloads;
  Fd_transport.close tr

let test_fd_transport_faults () =
  (* The same wire hooks the in-memory channel runs — a lost frame never
     reaches the fd but is still charged to the sender. *)
  let tr = Fd_transport.of_socketpair () in
  let ch = Fd_transport.channel tr in
  Channel.set_wire_hook ch
    (Some
       (fun _dir payload ->
         if String.length payload > 5 then
           [ Channel.Lost (String.length payload) ]
         else [ Channel.Delivered payload ]));
  Channel.send ch ~label:"t" Channel.Client_to_server "dropped frame";
  Channel.send ch ~label:"t" Channel.Client_to_server "ok";
  Alcotest.(check (option string))
    "survivor only" (Some "ok")
    (Channel.recv_opt ch Channel.Client_to_server);
  Alcotest.(check int)
    "both charged"
    (13 + 4 + 2 + 4)
    (Channel.bytes ch Channel.Client_to_server);
  Fd_transport.close tr

let test_fd_transport_closed () =
  let tr = Fd_transport.of_socketpair () in
  let ch = Fd_transport.channel tr in
  Fd_transport.close tr;
  Alcotest.check_raises "send after close" Fd_transport.Closed (fun () ->
      Channel.send ch ~label:"t" Channel.Client_to_server "x")

let suite =
  [
    ("byte counters", `Quick, test_byte_counters);
    ("roundtrip counting", `Quick, test_roundtrips);
    ("queue fifo", `Quick, test_queue_fifo);
    ("directions independent", `Quick, test_directions_independent);
    ("elapsed time", `Quick, test_elapsed);
    ("transcript and reset", `Quick, test_transcript_and_reset);
    ("trace render", `Quick, test_trace_render);
    ("trace summary", `Quick, test_trace_summary);
    ("trace roundtrip numbering", `Quick, test_trace_roundtrip_numbering);
    ("trace summary ties", `Quick, test_trace_summary_ties);
    ("trace bytes_with_prefix", `Quick, test_bytes_with_prefix);
    ("fd transport roundtrip", `Quick, test_fd_transport_roundtrip);
    ("fd transport framing", `Quick, test_fd_transport_framing);
    ("fd transport faults", `Quick, test_fd_transport_faults);
    ("fd transport closed", `Quick, test_fd_transport_closed);
  ]
