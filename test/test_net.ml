(* Tests for Fsync_net.Channel: byte accounting, round-trip counting, the
   message queue, and the simulated link time. *)

open Fsync_net

let test_byte_counters () =
  let ch = Channel.create () in
  Channel.send ch Channel.Client_to_server "abc";
  Channel.send ch Channel.Server_to_client "defgh";
  Channel.send ch Channel.Client_to_server "";
  Alcotest.(check int) "c2s" 3 (Channel.bytes ch Channel.Client_to_server);
  Alcotest.(check int) "s2c" 5 (Channel.bytes ch Channel.Server_to_client);
  Alcotest.(check int) "total" 8 (Channel.total_bytes ch);
  Alcotest.(check int) "messages" 3 (Channel.messages ch)

let test_roundtrips () =
  let ch = Channel.create () in
  Alcotest.(check int) "none yet" 0 (Channel.roundtrips ch);
  Channel.send ch Channel.Client_to_server "q1";
  (* Consecutive same-direction messages piggyback on one trip. *)
  Channel.send ch Channel.Client_to_server "q2";
  Channel.send ch Channel.Server_to_client "a1";
  Alcotest.(check int) "one roundtrip" 1 (Channel.roundtrips ch);
  Channel.send ch Channel.Client_to_server "q3";
  Channel.send ch Channel.Server_to_client "a2";
  Alcotest.(check int) "two roundtrips" 2 (Channel.roundtrips ch)

let test_queue_fifo () =
  let ch = Channel.create () in
  Channel.send ch Channel.Client_to_server "first";
  Channel.send ch Channel.Client_to_server "second";
  Alcotest.(check string) "fifo 1" "first" (Channel.recv ch Channel.Client_to_server);
  Alcotest.(check string) "fifo 2" "second" (Channel.recv ch Channel.Client_to_server);
  Alcotest.check_raises "empty" (Invalid_argument "Channel.recv: no pending message")
    (fun () -> ignore (Channel.recv ch Channel.Client_to_server))

let test_directions_independent () =
  let ch = Channel.create () in
  Channel.send ch Channel.Client_to_server "up";
  Channel.send ch Channel.Server_to_client "down";
  Alcotest.(check string) "down" "down" (Channel.recv ch Channel.Server_to_client);
  Alcotest.(check string) "up" "up" (Channel.recv ch Channel.Client_to_server)

let test_elapsed () =
  let ch = Channel.create ~latency_s:0.1 ~bandwidth_bps:8000.0 () in
  Channel.send ch Channel.Client_to_server (String.make 1000 'x');
  Channel.send ch Channel.Server_to_client "ok";
  (* 1 roundtrip * 2 * 0.1s + 1002 bytes / 1000 B/s *)
  let t = Channel.elapsed_s ch in
  Alcotest.(check bool) (Printf.sprintf "elapsed %.3f" t) true
    (t > 1.19 && t < 1.22)

let test_transcript_and_reset () =
  let ch = Channel.create () in
  Channel.send ch ~label:"hello" Channel.Client_to_server "xy";
  let tr = Channel.transcript ch in
  (match tr with
  | [ (Channel.Client_to_server, "hello", 2) ] -> ()
  | _ -> Alcotest.fail "unexpected transcript");
  Channel.reset ch;
  Alcotest.(check int) "reset bytes" 0 (Channel.total_bytes ch);
  Alcotest.(check int) "reset messages" 0 (Channel.messages ch);
  Alcotest.(check (list unit)) "reset transcript" []
    (List.map (fun _ -> ()) (Channel.transcript ch))

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec loop i =
    i + nn <= nh && (String.sub haystack i nn = needle || loop (i + 1))
  in
  nn = 0 || loop 0

let test_trace_render () =
  let ch = Channel.create () in
  Channel.send ch ~label:"hello" Channel.Client_to_server "abc";
  Channel.send ch ~label:"info" Channel.Server_to_client "defg";
  Channel.send ch ~label:"resp" Channel.Client_to_server "x";
  let out = Fsync_net.Trace.render ch in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("mentions " ^ needle) true (contains out needle))
    [ "hello"; "info"; "resp"; "round trip 2" ]

let test_trace_summary () =
  let ch = Channel.create () in
  Channel.send ch ~label:"a" Channel.Client_to_server "12345";
  Channel.send ch ~label:"b" Channel.Server_to_client "123";
  Channel.send ch ~label:"a" Channel.Client_to_server "12";
  match Fsync_net.Trace.summary_by_label ch with
  | [ ("a", 2, 7); ("b", 1, 3) ] -> ()
  | other ->
      Alcotest.failf "unexpected summary: %s"
        (String.concat ";"
           (List.map (fun (l, c, b) -> Printf.sprintf "%s/%d/%d" l c b) other))

let suite =
  [
    ("byte counters", `Quick, test_byte_counters);
    ("roundtrip counting", `Quick, test_roundtrips);
    ("queue fifo", `Quick, test_queue_fifo);
    ("directions independent", `Quick, test_directions_independent);
    ("elapsed time", `Quick, test_elapsed);
    ("transcript and reset", `Quick, test_transcript_and_reset);
    ("trace render", `Quick, test_trace_render);
    ("trace summary", `Quick, test_trace_summary);
  ]
