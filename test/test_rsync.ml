(* Tests for Fsync_rsync: signatures, token streams, the matcher, and the
   end-to-end baseline. *)

open Fsync_rsync
module Prng = Fsync_util.Prng

let qtest ?(count = 80) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let lines_file seed n =
  let rng = Prng.create (Int64.of_int seed) in
  let buf = Buffer.create (n * 20) in
  for i = 0 to n - 1 do
    Buffer.add_string buf
      (Printf.sprintf "line %04d salt %d payload xyz\n" i (Prng.int rng 1000))
  done;
  Buffer.contents buf

(* ---- Signature ---- *)

let test_signature_blocks () =
  let sg = Signature.create ~block_size:100 (String.make 250 'a') in
  Alcotest.(check int) "count" 3 (Array.length sg.blocks);
  Alcotest.(check int) "tail len" 50 sg.blocks.(2).len;
  Alcotest.(check int) "start" 200 (Signature.block_start sg 2)

let test_signature_wire_bytes () =
  let sg = Signature.create ~block_size:100 (String.make 1000 'a') in
  (* 10 blocks * (4 + 2) + header *)
  Alcotest.(check int) "wire" (12 + 60) (Signature.wire_bytes sg)

let test_signature_invalid () =
  (* Non-positive block sizes are clamped to 1 rather than crashing. *)
  let sg = Signature.create ~block_size:0 "xy" in
  Alcotest.(check int) "clamped block size" 1 sg.Signature.block_size;
  Alcotest.(check int) "one block per byte" 2 (Array.length sg.Signature.blocks)

let test_signature_empty_file () =
  let sg = Signature.create ~block_size:100 "" in
  Alcotest.(check int) "no blocks" 0 (Array.length sg.blocks)

(* ---- Token ---- *)

let test_token_coalesce () =
  let ops =
    [ Token.Data "ab"; Token.Data "cd";
      Token.Copy { index = 0; count = 1 }; Token.Copy { index = 1; count = 2 };
      Token.Copy { index = 5; count = 1 }; Token.Data "" ]
  in
  Alcotest.(check int) "coalesced" 3 (List.length (Token.coalesce ops))

let test_token_roundtrip () =
  let ops =
    [ Token.Data "hello"; Token.Copy { index = 3; count = 2 }; Token.Data "world" ]
  in
  let decoded = Token.decode (Token.encode ops) in
  Alcotest.(check int) "ops" (List.length ops) (List.length decoded)

let test_token_apply_oob () =
  let sg = Signature.create ~block_size:4 "0123456789" in
  Alcotest.check_raises "oob" (Invalid_argument "Token.apply: block run out of range")
    (fun () ->
      ignore (Token.apply sg ~old_file:"0123456789" [ Token.Copy { index = 2; count = 5 } ]))

(* ---- end-to-end ---- *)

let rsync_reconstructs =
  qtest "rsync: reconstructs for random edits"
    QCheck2.Gen.(pair (int_bound 10_000) (int_range 16 900))
    (fun (seed, block_size) ->
      let rng = Prng.create (Int64.of_int seed) in
      let old_file = lines_file seed 150 in
      let new_file =
        Fsync_workload.Edit_model.mutate rng
          ~profile:Fsync_workload.Edit_model.medium
          ~gen_text:(fun rng n -> String.init n (fun _ -> Char.chr (97 + Prng.int rng 26)))
          old_file
      in
      let r =
        Rsync.sync ~config:{ Rsync.default_config with block_size } ~old_file new_file
      in
      r.reconstructed = new_file)

let test_rsync_identical_files () =
  let f = lines_file 1 500 in
  let r = Rsync.sync ~old_file:f f in
  Alcotest.(check string) "reconstruct" f r.reconstructed;
  (* Everything matches: the stream is a single block run, tiny. *)
  Alcotest.(check bool) "tiny stream" true (r.cost.server_to_client < 64);
  Alcotest.(check int) "no literals" 0 r.literal_bytes

let test_rsync_disjoint_files () =
  let a = lines_file 2 200 and b = lines_file 3 200 in
  let r = Rsync.sync ~old_file:a b in
  Alcotest.(check string) "reconstruct" b r.reconstructed;
  Alcotest.(check int) "no matches" 0 r.matched_blocks

let test_rsync_shifted_content () =
  (* An insertion at the front misaligns every block; the rolling search
     must still find all of them. *)
  let f = lines_file 4 400 in
  let shifted = "INSERTED PREFIX 123\n" ^ f in
  let r = Rsync.sync ~config:{ Rsync.default_config with block_size = 256 } ~old_file:f shifted in
  Alcotest.(check string) "reconstruct" shifted r.reconstructed;
  Alcotest.(check bool) "most blocks matched" true
    (r.matched_blocks * 256 > String.length f * 3 / 4)

let test_rsync_edge_files () =
  List.iter
    (fun (o, n) ->
      let r = Rsync.sync ~old_file:o n in
      Alcotest.(check string) "edge reconstruct" n r.reconstructed)
    [ ("", ""); ("abc", ""); ("", "abc"); ("short", "short");
      (String.make 699 'a', String.make 699 'a');
      (String.make 700 'b', String.make 1400 'b') ]

let test_rsync_tail_block_match () =
  (* File whose length is not a multiple of the block size, unchanged: the
     short tail must be matched, not re-sent. *)
  let f = lines_file 5 123 in
  let r = Rsync.sync ~config:{ Rsync.default_config with block_size = 512 } ~old_file:f f in
  Alcotest.(check int) "no literal bytes" 0 r.literal_bytes

let test_rsync_cost_direction () =
  let f = lines_file 6 300 in
  let r = Rsync.sync ~old_file:f f in
  let expected_sig =
    Signature.wire_bytes (Signature.create ~block_size:700 f)
  in
  Alcotest.(check int) "c2s = signature bytes" expected_sig r.cost.client_to_server

let test_best_block_size () =
  let old_file = lines_file 7 800 in
  let rng = Prng.create 7L in
  let new_file =
    Fsync_workload.Edit_model.mutate rng ~profile:Fsync_workload.Edit_model.light
      ~gen_text:(fun rng n -> String.init n (fun _ -> Char.chr (97 + Prng.int rng 26)))
      old_file
  in
  let bs, best = Rsync.best_block_size ~old_file new_file in
  Alcotest.(check bool) "candidate" true (List.mem bs Rsync.candidate_block_sizes);
  let default_cost = Rsync.total (Rsync.cost_only ~old_file new_file) in
  Alcotest.(check bool) "best <= default" true (Rsync.total best <= default_cost)

let test_best_block_size_no_candidates () =
  (* An empty grid degenerates to the default block size, totally. *)
  let bs, _ = Rsync.best_block_size ~candidates:[] ~old_file:"a" "b" in
  Alcotest.(check int) "default block size"
    Rsync.default_config.Rsync.block_size bs

let suite =
  [
    ("signature blocks", `Quick, test_signature_blocks);
    ("signature wire bytes", `Quick, test_signature_wire_bytes);
    ("signature invalid", `Quick, test_signature_invalid);
    ("signature empty file", `Quick, test_signature_empty_file);
    ("token coalesce", `Quick, test_token_coalesce);
    ("token roundtrip", `Quick, test_token_roundtrip);
    ("token apply oob", `Quick, test_token_apply_oob);
    rsync_reconstructs;
    ("rsync identical", `Quick, test_rsync_identical_files);
    ("rsync disjoint", `Quick, test_rsync_disjoint_files);
    ("rsync shifted", `Quick, test_rsync_shifted_content);
    ("rsync edges", `Quick, test_rsync_edge_files);
    ("rsync tail match", `Quick, test_rsync_tail_block_match);
    ("rsync cost direction", `Quick, test_rsync_cost_direction);
    ("rsync best block size", `Quick, test_best_block_size);
    ("rsync best block no candidates", `Quick, test_best_block_size_no_candidates);
  ]
