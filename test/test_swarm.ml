(* Tests for Fsync_swarm: version-vector algebra (qcheck laws), entry
   and recon codecs, the rev-3 swarm Hello, deterministic K-peer gossip
   convergence with typed conflict surfacing, read-repair, replay and
   peer-death robustness, and crash-tolerant persistence under injected
   disk faults. *)

module Vv = Fsync_swarm.Version_vector
module Replica = Fsync_swarm.Replica
module Resolve = Fsync_swarm.Resolve
module Plan = Fsync_swarm.Plan
module Swarm_wire = Fsync_swarm.Swarm_wire
module Gossip = Fsync_swarm.Gossip
module Repair = Fsync_swarm.Repair
module Loopback = Fsync_swarm.Swarm_loopback
module Peer = Fsync_swarm.Peer
module Msg = Fsync_server.Msg
module Fp = Fsync_hash.Fingerprint
module Error = Fsync_core.Error
module Io = Fsync_store.Io
module Fault_io = Fsync_store.Fault_io
module Scope = Fsync_obs.Scope
module Prng = Fsync_util.Prng

let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ---- filesystem scaffolding ---- *)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let with_root f =
  let dir = Filename.temp_file "fsync_swarm" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let subdir root name =
  let d = Filename.concat root name in
  Unix.mkdir d 0o755;
  d

let write_raw root path content =
  let dest = Filename.concat root path in
  Io.mkdir_p Io.real (Filename.dirname dest);
  let oc = open_out_bin dest in
  output_string oc content;
  close_out oc

(* ---- version-vector laws ---- *)

let vv_gen =
  QCheck2.Gen.(
    map Vv.of_list
      (list_size (int_bound 5)
         (pair (oneofl [ "a"; "b"; "c"; "d"; "e" ]) (int_range 1 4))))

let vv_pair = QCheck2.Gen.pair vv_gen vv_gen
let vv_triple = QCheck2.Gen.triple vv_gen vv_gen vv_gen

let vv_laws =
  [
    qtest "merge commutative" vv_pair (fun (a, b) ->
        Vv.equal (Vv.merge a b) (Vv.merge b a));
    qtest "merge associative" vv_triple (fun (a, b, c) ->
        Vv.equal (Vv.merge a (Vv.merge b c)) (Vv.merge (Vv.merge a b) c));
    qtest "merge idempotent" vv_gen (fun a -> Vv.equal (Vv.merge a a) a);
    qtest "merge is an upper bound" vv_pair (fun (a, b) ->
        let m = Vv.merge a b in
        (Vv.equal m a || Vv.dominates m a)
        && (Vv.equal m b || Vv.dominates m b));
    qtest "dominates irreflexive" vv_gen (fun a -> not (Vv.dominates a a));
    qtest "dominates asymmetric" vv_pair (fun (a, b) ->
        not (Vv.dominates a b && Vv.dominates b a));
    qtest "dominates transitive" vv_triple (fun (a, b, c) ->
        (not (Vv.dominates a b && Vv.dominates b c)) || Vv.dominates a c);
    qtest "bump dominates" vv_gen (fun a -> Vv.dominates (Vv.bump a "z") a);
    qtest "concurrent iff neither dominates" vv_pair (fun (a, b) ->
        Bool.equal (Vv.concurrent a b)
          ((not (Vv.equal a b))
          && (not (Vv.dominates a b))
          && not (Vv.dominates b a)));
    qtest "codec roundtrip" vv_gen (fun a ->
        let b = Buffer.create 32 in
        Vv.put_vv b a;
        let got, pos = Vv.get_vv (Buffer.contents b) ~pos:0 in
        Vv.equal got a && Int.equal pos (Buffer.length b));
  ]

(* ---- entry and recon codecs ---- *)

let entry_gen =
  QCheck2.Gen.(
    map
      (fun (vv, author, present, content) ->
        if present then
          {
            Replica.vv;
            author;
            present = true;
            fp = Fp.of_string content;
            len = String.length content;
          }
        else
          { Replica.vv; author; present = false; fp = Fp.of_string ""; len = 0 })
      (quad vv_gen
         (oneofl [ "a"; "b"; "long-peer-name" ])
         bool
         (string_size ~gen:printable (int_bound 40))))

let codec_tests =
  [
    qtest "entry codec roundtrip" entry_gen (fun e ->
        let b = Buffer.create 64 in
        Replica.put_entry b e;
        let got, pos = Replica.get_entry (Buffer.contents b) ~pos:0 in
        Replica.entry_equal got e && Int.equal pos (Buffer.length b));
    qtest "table codec roundtrip"
      QCheck2.Gen.(
        list_size (int_bound 6)
          (pair (string_size ~gen:printable (int_range 1 12)) (option entry_gen)))
      (fun table ->
        let got = Swarm_wire.decode_table (Swarm_wire.encode_table table) in
        List.for_all2
          (fun (p, e) (p', e') ->
            String.equal p p'
            &&
            match (e, e') with
            | None, None -> true
            | Some a, Some b -> Replica.entry_equal a b
            | _ -> false)
          table got);
  ]

let test_recon_codec () =
  let q (lo, size) d = { Swarm_wire.range = { lo; size }; digest = d } in
  let d c = String.make 16 c in
  let cases =
    [
      Swarm_wire.Greet { peer = "peer-1"; root = d 'r' };
      Swarm_wire.Queries [ q (0, 1024) (d 'a'); q (64, 64) (d 'b') ];
      Swarm_wire.Answers
        [
          Swarm_wire.Equal { lo = 0; size = 16 };
          Swarm_wire.Leaves
            ( { lo = 16; size = 16 },
              [ ("x.txt", Fp.of_string "x"); ("y/z.txt", Fp.of_string "z") ] );
          Swarm_wire.Descend
            ({ lo = 32; size = 32 }, [ q (32, 16) (d 'c'); q (48, 16) (d 'd') ]);
        ];
    ]
  in
  List.iter
    (fun r ->
      let got = Swarm_wire.decode_recon (Swarm_wire.encode_recon r) in
      Alcotest.(check bool) "recon roundtrip" true (got = r))
    cases

let test_recon_malformed () =
  let check_err what s =
    match Swarm_wire.decode_recon s with
    | _ -> Alcotest.failf "%s must raise" what
    | exception Error.E _ -> ()
  in
  check_err "empty" "";
  check_err "bad kind" "Z";
  check_err "truncated greet" "H\005pe";
  (* query count claiming more entries than the body holds *)
  check_err "overrun count" "Q\255\255\003";
  match Swarm_wire.decode_fetch "\003abc" with
  | _ -> Alcotest.fail "truncated fetch must raise"
  | exception Error.E _ -> ()

let test_swarm_hello_codec () =
  let config = Msg.default_sync_config in
  let summary = Fp.of_string "root" in
  let cases =
    [
      Msg.Hello
        {
          version = 3;
          trace = None;
          swarm = Some { Msg.peer = "alpha"; summary };
        };
      Msg.Hello
        {
          version = 3;
          trace = Some (String.make Msg.trace_bytes '\007');
          swarm = Some { Msg.peer = "beta"; summary };
        };
      Msg.Swarm_table "table-bytes";
      Msg.Swarm_recon "recon-bytes";
      Msg.Swarm_query "a/path";
      Msg.Swarm_fetch "fetch-bytes";
      Msg.Swarm_end;
    ]
  in
  List.iter
    (fun m ->
      let got = Msg.decode ~config (Msg.encode ~config m) in
      Alcotest.(check bool) "swarm msg roundtrip" true (got = m))
    cases

(* ---- plan ---- *)

let mk_entry ?(present = true) ~vv ~author content =
  if present then
    {
      Replica.vv;
      author;
      present = true;
      fp = Fp.of_string content;
      len = String.length content;
    }
  else { Replica.vv; author; present = false; fp = Fp.of_string ""; len = 0 }

let test_plan_rules () =
  let v peers = Vv.of_list peers in
  (* theirs dominates: adopt from the wire *)
  let ours = mk_entry ~vv:(v [ ("a", 1) ]) ~author:"a" "old" in
  let theirs = mk_entry ~vv:(v [ ("a", 1); ("b", 1) ]) ~author:"b" "new" in
  let o = Plan.decide ~path:"f" ~ours:(Some ours) ~theirs:(Some theirs) () in
  Alcotest.(check bool) "adopt no conflict" false o.Plan.conflict;
  (match o.Plan.installs with
  | [ { Plan.dest = "f"; source = Plan.Remote "f"; entry } ] ->
      Alcotest.(check bool) "adopted entry" true
        (Replica.entry_equal entry theirs)
  | _ -> Alcotest.fail "expected one remote install");
  (* ours dominates: nothing to do *)
  let o = Plan.decide ~path:"f" ~ours:(Some theirs) ~theirs:(Some ours) () in
  Alcotest.(check int) "behind peer ignored" 0 (List.length o.Plan.installs);
  (* concurrent, same content: silent vector merge *)
  let e1 = mk_entry ~vv:(v [ ("a", 1) ]) ~author:"a" "same" in
  let e2 = mk_entry ~vv:(v [ ("b", 1) ]) ~author:"b" "same" in
  let o = Plan.decide ~path:"f" ~ours:(Some e1) ~theirs:(Some e2) () in
  Alcotest.(check bool) "same-fp merge no conflict" false o.Plan.conflict;
  (match o.Plan.installs with
  | [ { Plan.entry; _ } ] ->
      Alcotest.(check bool) "vv merged" true
        (Vv.equal entry.Replica.vv (Vv.merge e1.Replica.vv e2.Replica.vv))
  | _ -> Alcotest.fail "expected one merge install");
  (* concurrent, different content: conflict sibling pair *)
  let e1 = mk_entry ~vv:(v [ ("a", 1) ]) ~author:"a" "mine" in
  let e2 = mk_entry ~vv:(v [ ("b", 1) ]) ~author:"b" "theirs" in
  let o = Plan.decide ~path:"f" ~ours:(Some e1) ~theirs:(Some e2) () in
  Alcotest.(check bool) "conflict surfaced" true o.Plan.conflict;
  Alcotest.(check int) "winner + sibling" 2 (List.length o.Plan.installs);
  let sibling =
    List.find (fun i -> Plan.is_conflict_path i.Plan.dest) o.Plan.installs
  in
  let winner =
    List.find (fun i -> not (Plan.is_conflict_path i.Plan.dest)) o.Plan.installs
  in
  Alcotest.(check bool) "both carry the merged vector" true
    (Vv.equal winner.Plan.entry.Replica.vv sibling.Plan.entry.Replica.vv);
  (* the mirror decision on the other side lands the same outcome *)
  let o' = Plan.decide ~path:"f" ~ours:(Some e2) ~theirs:(Some e1) () in
  let digests oc =
    List.sort compare
      (List.map
         (fun i -> (i.Plan.dest, Fp.to_hex (Replica.entry_digest i.Plan.entry)))
         oc.Plan.installs)
  in
  Alcotest.(check bool) "mirror-image plans" true (digests o = digests o');
  (* concurrent edit-vs-delete: the edit wins, no sibling *)
  let tomb = mk_entry ~present:false ~vv:(v [ ("b", 1) ]) ~author:"b" "" in
  let o = Plan.decide ~path:"f" ~ours:(Some e1) ~theirs:(Some tomb) () in
  Alcotest.(check bool) "edit-vs-delete no conflict" false o.Plan.conflict;
  match o.Plan.installs with
  | [ { Plan.entry; _ } ] ->
      Alcotest.(check bool) "edit survives" true entry.Replica.present
  | _ -> Alcotest.fail "expected the surviving edit"

(* ---- gossip convergence ---- *)

let load ?io root peer = Replica.load ?io ~root ~peer ()

let check_all_equal what replicas =
  let first = Replica.summary (List.hd replicas) in
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s converged" what (Replica.peer r))
        true
        (Fp.equal (Replica.summary r) first))
    replicas;
  (* byte-identical, not just digest-identical *)
  let files = Replica.files (List.hd replicas) in
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s byte-identical" what (Replica.peer r))
        true
        (files = Replica.files r))
    replicas

let test_two_peer_convergence () =
  with_root (fun dir ->
      let ra = subdir dir "a" and rb = subdir dir "b" in
      write_raw ra "shared.txt" "common";
      write_raw rb "shared.txt" "common";
      write_raw ra "a/deep/only-a.txt" (String.make 9000 'a');
      write_raw rb "only-b.txt" "beta";
      let a = load ra "A" and b = load rb "B" in
      let r = Loopback.session ~initiator:a ~responder:b () in
      check_all_equal "pair" [ a; b ];
      Alcotest.(check int) "no conflicts" 0 r.Loopback.initiator.Gossip.conflicts;
      Alcotest.(check bool) "not short-circuited" false
        r.Loopback.initiator.Gossip.short_circuit;
      (* a converged pair short-circuits in four tiny frames *)
      let r2 = Loopback.session ~initiator:a ~responder:b () in
      Alcotest.(check bool) "short-circuit" true
        r2.Loopback.initiator.Gossip.short_circuit;
      Alcotest.(check bool) "short-circuit is cheap" true
        (r2.Loopback.c2s_bytes + r2.Loopback.s2c_bytes < 200);
      (* and survives a reload from disk *)
      let a' = load ra "A" and b' = load rb "B" in
      check_all_equal "reloaded" [ a'; b' ])

let test_single_peer_noop () =
  with_root (fun dir ->
      let ra = subdir dir "solo" in
      write_raw ra "f.txt" "alone";
      let sw = Loopback.create ~seed:7L [ load ra "solo" ] in
      Alcotest.(check bool) "trivially converged" true (Loopback.converged sw);
      Alcotest.(check int) "zero rounds" 0 (Loopback.run sw);
      Alcotest.(check int) "zero sessions" 0 (Loopback.sessions sw))

(* The acceptance bar: 8 peers with seeded divergent edits converge
   byte-identically within 5 gossip rounds, and every concurrent-edit
   pair surfaces as a typed conflict sibling rather than a silent
   last-writer-wins. *)
let test_eight_peer_convergence () =
  with_root (fun dir ->
      let rng = Prng.create 0x5eedL in
      let peers = List.init 8 (fun i -> Printf.sprintf "p%d" i) in
      let replicas =
        List.map
          (fun p ->
            let root = subdir dir p in
            write_raw root "base.txt" "every peer starts from this";
            load root p)
          peers
      in
      (* divergent seeded edits: each peer adds its own files... *)
      List.iteri
        (fun i r ->
          Replica.set r ~path:(Printf.sprintf "from-%d.txt" i)
            (String.init (200 + Prng.int rng 800) (fun j ->
                 Char.chr (97 + ((i + j) mod 26))));
          Replica.set r ~path:"popular.txt"
            (if i < 4 then "faction one" else "faction two"))
        replicas;
      let scope = Scope.of_registry (Fsync_obs.Registry.create ()) in
      let sw = Loopback.create ~seed:0xabcdeL ~scope replicas in
      let rounds = Loopback.run ~max_rounds:5 sw in
      Alcotest.(check bool) "within five rounds" true (rounds <= 5);
      check_all_equal "swarm" replicas;
      (* the concurrent popular.txt pair surfaced as a conflict... *)
      Alcotest.(check bool) "conflicts surfaced" true (Loopback.conflicts sw > 0);
      let files = Replica.files (List.hd replicas) in
      Alcotest.(check bool) "conflict sibling exists" true
        (List.exists (fun (p, _) -> Plan.is_conflict_path p) files);
      (* ...and both factions' bytes survived somewhere *)
      let contents = List.map snd files in
      Alcotest.(check bool) "faction one bytes survive" true
        (List.mem "faction one" contents);
      Alcotest.(check bool) "faction two bytes survive" true
        (List.mem "faction two" contents);
      (* converged: one more round is all short-circuits, no new state *)
      let before = Replica.summary (List.hd replicas) in
      Loopback.round sw;
      Alcotest.(check bool) "stable after convergence" true
        (Fp.equal before (Replica.summary (List.hd replicas))))

let test_conflict_files_do_not_reconflict () =
  with_root (fun dir ->
      let ra = subdir dir "a" and rb = subdir dir "b" in
      write_raw ra "f.txt" "ancestor";
      write_raw rb "f.txt" "ancestor";
      let a = load ra "A" and b = load rb "B" in
      ignore (Loopback.session ~initiator:a ~responder:b ());
      Replica.set a ~path:"f.txt" "edit by A";
      Replica.set b ~path:"f.txt" "edit by B";
      let r = Loopback.session ~initiator:a ~responder:b () in
      Alcotest.(check bool) "conflict detected" true
        (r.Loopback.initiator.Gossip.conflicts > 0);
      check_all_equal "post-conflict" [ a; b ];
      let conflict_files =
        List.filter
          (fun (p, _) -> Plan.is_conflict_path p)
          (Replica.files a)
      in
      Alcotest.(check int) "exactly one sibling" 1 (List.length conflict_files);
      (* further gossip must not conflict again or mutate anything *)
      let r2 = Loopback.session ~initiator:a ~responder:b () in
      Alcotest.(check int) "no re-conflict" 0
        r2.Loopback.initiator.Gossip.conflicts;
      Alcotest.(check bool) "short-circuits" true
        r2.Loopback.initiator.Gossip.short_circuit)

(* Three peers concurrently rewrite the same path with three distinct
   contents.  As the conflicts propagate, a later round's fresh sibling
   can collide with a sibling that an earlier round already installed on
   one side — the plans must still be mirror images and the swarm must
   still converge (regression: compute_plan dedupes same-dest installs,
   keeping the conflict sibling on both sides). *)
let test_three_way_conflict_converges () =
  with_root (fun dir ->
      let peers = [ "A"; "B"; "C" ] in
      let replicas =
        List.map
          (fun p ->
            let root = subdir dir p in
            write_raw root "f.txt" "ancestor";
            load root p)
          peers
      in
      ignore (Loopback.run (Loopback.create ~seed:1L replicas));
      List.iter2
        (fun r p -> Replica.set r ~path:"f.txt" ("edit by " ^ p))
        replicas peers;
      let sw = Loopback.create ~seed:2L replicas in
      ignore (Loopback.run sw);
      check_all_equal "three-way" replicas;
      Alcotest.(check bool) "conflicts surfaced" true (Loopback.conflicts sw > 0);
      let files = Replica.files (List.hd replicas) in
      Alcotest.(check bool) "sibling exists" true
        (List.exists (fun (p, _) -> Plan.is_conflict_path p) files);
      (* one more swarm over the converged state stays silent *)
      let sw2 = Loopback.create ~seed:3L replicas in
      Alcotest.(check int) "stable" 0 (Loopback.run sw2))

(* Drive one session by hand so frames can be captured / withheld. *)
let drive_session ?(drop_after = max_int) a b =
  let ini = Gossip.Initiator.create a in
  let resp = Gossip.Responder.create b in
  let c2s = Queue.create () and s2c = Queue.create () in
  let sent = ref [] in
  let push_all q ms = List.iter (fun m -> Queue.push m q) ms in
  push_all c2s (Gossip.Initiator.start ini);
  let steps = ref 0 in
  (try
     while
       (not (Gossip.Initiator.finished ini))
       && (not (Queue.is_empty c2s && Queue.is_empty s2c))
       && !steps < drop_after
     do
       incr steps;
       if not (Queue.is_empty c2s) then begin
         let f = Queue.pop c2s in
         sent := f :: !sent;
         push_all s2c (Gossip.Responder.on_message resp f)
       end
       else begin
         let f = Queue.pop s2c in
         push_all c2s (Gossip.Initiator.on_message ini f)
       end
     done
   with Error.E _ -> ());
  (List.rev !sent, Gossip.Initiator.finished ini)

let test_stale_replay_harmless () =
  with_root (fun dir ->
      let ra = subdir dir "a" and rb = subdir dir "b" in
      write_raw ra "x.txt" "from a";
      write_raw rb "y.txt" "from b";
      let a = load ra "A" and b = load rb "B" in
      let frames, finished = drive_session a b in
      Alcotest.(check bool) "original session completed" true finished;
      check_all_equal "pre-replay" [ a; b ];
      let root_before = Replica.summary b in
      (* replay the initiator's captured frames against a fresh responder:
         every entry is stale now, so nothing may change *)
      let resp = Gossip.Responder.create b in
      (try List.iter (fun f -> ignore (Gossip.Responder.on_message resp f)) frames
       with Error.E _ -> ());
      Alcotest.(check bool) "replay left the replica untouched" true
        (Fp.equal root_before (Replica.summary b));
      check_all_equal "post-replay" [ a; b ])

let test_peer_death_mid_round () =
  with_root (fun dir ->
      let ra = subdir dir "a" and rb = subdir dir "b" in
      write_raw ra "x.txt" (String.make 5000 'x');
      write_raw rb "y.txt" (String.make 5000 'y');
      let a = load ra "A" and b = load rb "B" in
      let root_a = Replica.summary a and root_b = Replica.summary b in
      (* the peer dies after a few frames, on every prefix length *)
      for cut = 1 to 6 do
        let _, finished = drive_session ~drop_after:cut a b in
        Alcotest.(check bool)
          (Printf.sprintf "cut=%d did not finish" cut)
          false finished;
        (* no partial apply: both replicas exactly as before *)
        Alcotest.(check bool) "a untouched" true
          (Fp.equal root_a (Replica.summary a));
        Alcotest.(check bool) "b untouched" true
          (Fp.equal root_b (Replica.summary b))
      done;
      (* and survivors still converge afterwards *)
      ignore (Loopback.session ~initiator:a ~responder:b ());
      check_all_equal "after deaths" [ a; b ];
      (* disk state is consistent too *)
      check_all_equal "after reload" [ load ra "A"; load rb "B" ])

let test_responder_rejects_plain_hello () =
  with_root (fun dir ->
      let rb = subdir dir "b" in
      let b = load rb "B" in
      let resp = Gossip.Responder.create b in
      let config = Msg.default_sync_config in
      let plain =
        Msg.encode ~config
          (Msg.Hello { version = 3; trace = None; swarm = None })
      in
      match Gossip.Responder.on_message resp plain with
      | _ -> Alcotest.fail "plain Hello must be rejected"
      | exception Error.E _ ->
          Alcotest.(check bool) "failed" true (Gossip.Responder.failed resp))

(* ---- read-repair ---- *)

let test_repair_pulls_missing_path () =
  with_root (fun dir ->
      let ra = subdir dir "a" and rb = subdir dir "b" and rc = subdir dir "c" in
      write_raw ra "data.txt" "authoritative";
      write_raw rb "data.txt" "authoritative";
      let a = load ra "A" and b = load rb "B" in
      ignore (Loopback.session ~initiator:a ~responder:b ());
      let c = load rc "C" in
      let outcomes =
        Loopback.repair ~replica:c ~peers:[ a; b ] ~path:"data.txt" ()
      in
      Alcotest.(check int) "both peers probed" 2 (List.length outcomes);
      (match outcomes with
      | [ o1; o2 ] ->
          Alcotest.(check bool) "first peer had it" true o1.Repair.had_entry;
          Alcotest.(check int) "first peer delivered" 1 o1.Repair.pulled;
          Alcotest.(check int) "second peer agreed" 0 o2.Repair.pulled;
          Alcotest.(check bool) "no conflict" false
            (o1.Repair.conflict || o2.Repair.conflict)
      | _ -> Alcotest.fail "expected two outcomes");
      Alcotest.(check (option string)) "content repaired"
        (Some "authoritative")
        (Replica.content c "data.txt");
      (* the repaired entry carries the peers' vector: a later full
         gossip has nothing left to transfer for it *)
      let r = Loopback.session ~initiator:c ~responder:a () in
      Alcotest.(check int) "nothing re-pulled" 0
        r.Loopback.initiator.Gossip.files_pulled)

let test_repair_concurrent_conflict () =
  with_root (fun dir ->
      let ra = subdir dir "a" and rc = subdir dir "c" in
      write_raw ra "f.txt" "quorum copy";
      write_raw rc "f.txt" "local divergent";
      let a = load ra "A" in
      let c = load rc "C" in
      let outcomes = Loopback.repair ~replica:c ~peers:[ a ] ~path:"f.txt" () in
      (match outcomes with
      | [ o ] -> Alcotest.(check bool) "conflict surfaced" true o.Repair.conflict
      | _ -> Alcotest.fail "expected one outcome");
      (* both versions live on: winner at the path, loser as sibling *)
      let files = Replica.files c in
      let contents = List.map snd files in
      Alcotest.(check bool) "local bytes survive" true
        (List.mem "local divergent" contents);
      Alcotest.(check bool) "quorum bytes survive" true
        (List.mem "quorum copy" contents);
      match Repair.create c ~path:"../evil" with
      | _ -> Alcotest.fail "invalid repair path must be rejected"
      | exception Error.E _ -> ())

(* ---- the peer daemon over real descriptors ---- *)

let pump_against_peer peer tr machine_on_message machine_finished start =
  let module Ch = Fsync_net.Channel in
  let module Tr = Fsync_net.Fd_transport in
  let ch = Tr.channel tr in
  let send ms = List.iter (fun m -> Ch.send ch Ch.Client_to_server m) ms in
  send start;
  let iters = ref 0 in
  while (not (machine_finished ())) && !iters < 200_000 do
    incr iters;
    Peer.step ~timeout_s:0.0 peer;
    match Ch.recv_opt ch Ch.Server_to_client with
    | Some f -> send (machine_on_message f)
    | None -> ()
  done;
  Alcotest.(check bool) "pump completed" true (machine_finished ())

let test_peer_daemon_routes_both_dialects () =
  with_root (fun dir ->
      let rs = subdir dir "server" and rc = subdir dir "client" in
      write_raw rs "srv.txt" "server data";
      write_raw rc "cli.txt" "client data";
      let server = load rs "S" and client = load rc "C" in
      let peer = Peer.create server in
      let module Tr = Fsync_net.Fd_transport in
      (* dialect one: a swarm gossip exchange *)
      let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Peer.add_connection peer b;
      let tr = Tr.of_fd a in
      let ini = Gossip.Initiator.create client in
      pump_against_peer peer tr
        (Gossip.Initiator.on_message ini)
        (fun () -> Gossip.Initiator.finished ini)
        (Gossip.Initiator.start ini);
      Tr.close tr;
      check_all_equal "socket gossip" [ server; client ];
      (* dialect two: a plain rev-2-style pull from the same endpoint
         sees the post-gossip collection *)
      let a2, b2 = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Peer.add_connection peer b2;
      let tr2 = Tr.of_fd a2 in
      let pull = Fsync_server.Puller.create [] in
      pump_against_peer peer tr2
        (Fsync_server.Puller.on_message pull)
        (fun () -> Fsync_server.Puller.finished pull)
        (Fsync_server.Puller.start pull);
      Tr.close tr2;
      let got = List.sort compare (Fsync_server.Puller.result pull) in
      Alcotest.(check bool) "plain pull serves the converged swarm state"
        true
        (got = Replica.files server);
      let st = Peer.stats peer in
      Alcotest.(check int) "one gossip session" 1 st.Peer.gossip_sessions;
      Alcotest.(check int) "one plain session" 1 st.Peer.plain_sessions;
      Peer.shutdown peer)

(* ---- crash-tolerant persistence ---- *)

(* Sweep a hard crash across every mutating syscall of a responder's
   apply: whatever instant the process dies, a clean reload must come
   back consistent and the next gossip round must converge. *)
let test_crash_sweep_during_apply () =
  let k = ref 1 in
  let sweeping = ref true in
  while !sweeping do
    if !k > 200 then Alcotest.fail "crash sweep did not terminate";
    with_root (fun dir ->
        let ra = subdir dir "a" and rb = subdir dir "b" in
        write_raw ra "one.txt" (String.make 2000 '1');
        write_raw ra "two/deep.txt" "fresh";
        write_raw rb "stale.txt" "stale";
        let a = load ra "A" in
        let io, _stats =
          Fault_io.wrap ~seed:!k
            { Fault_io.none with Fault_io.crash_at = Some !k }
        in
        let crashed = ref false in
        (try
           let b = load ~io rb "B" in
           ignore (Loopback.session ~initiator:a ~responder:b ())
         with
        | Fault_io.Crash_point _ -> crashed := true
        | Error.E _ -> crashed := true);
        if not !crashed then sweeping := false
        else begin
          (* the replica wrote content files before the vector table;
             a clean reload may see unrecorded bytes as local edits but
             must never lose data or corrupt the table *)
          let b' = load rb "B" in
          let a' = load ra "A" in
          ignore (Loopback.session ~initiator:a' ~responder:b' ());
          check_all_equal (Printf.sprintf "crash_at=%d" !k) [ a'; b' ]
        end);
    incr k
  done

let suite =
  vv_laws @ codec_tests
  @ [
      Alcotest.test_case "recon codec" `Quick test_recon_codec;
      Alcotest.test_case "recon malformed" `Quick test_recon_malformed;
      Alcotest.test_case "swarm hello codec" `Quick test_swarm_hello_codec;
      Alcotest.test_case "plan rules" `Quick test_plan_rules;
      Alcotest.test_case "two-peer convergence" `Quick
        test_two_peer_convergence;
      Alcotest.test_case "single-peer no-op" `Quick test_single_peer_noop;
      Alcotest.test_case "eight-peer convergence" `Quick
        test_eight_peer_convergence;
      Alcotest.test_case "conflict files do not re-conflict" `Quick
        test_conflict_files_do_not_reconflict;
      Alcotest.test_case "three-way conflict converges" `Quick
        test_three_way_conflict_converges;
      Alcotest.test_case "stale replay harmless" `Quick
        test_stale_replay_harmless;
      Alcotest.test_case "peer death mid-round" `Quick
        test_peer_death_mid_round;
      Alcotest.test_case "responder rejects plain hello" `Quick
        test_responder_rejects_plain_hello;
      Alcotest.test_case "repair pulls missing path" `Quick
        test_repair_pulls_missing_path;
      Alcotest.test_case "repair surfaces concurrent conflict" `Quick
        test_repair_concurrent_conflict;
      Alcotest.test_case "peer daemon routes both dialects" `Quick
        test_peer_daemon_routes_both_dialects;
      Alcotest.test_case "crash sweep during apply" `Quick
        test_crash_sweep_during_apply;
    ]
