(* Tests for Fsync_store: the content-addressed chunk store — put/get,
   manifest-driven refcounts, index replay across close/reopen,
   compaction, gc, fsck's corruption detectors, and the persisted
   signature vectors (Sig_persist). *)

module Store = Fsync_store.Store
module Sig_persist = Fsync_store.Sig_persist
module Fp = Fsync_hash.Fingerprint
module Error = Fsync_core.Error

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let with_root f =
  let dir = Filename.temp_file "fsync_store" "" in
  Sys.remove dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let with_store f =
  with_root (fun dir ->
      let s = Store.open_store dir in
      Fun.protect ~finally:(fun () -> Store.close s) (fun () -> f dir s))

(* Locate the on-disk file of a chunk (chunks/<2-hex>/<32-hex>). *)
let chunk_file root fp =
  let hex = Fp.to_hex fp in
  Filename.concat
    (Filename.concat (Filename.concat root "chunks") (String.sub hex 0 2))
    hex

let test_put_get_roundtrip () =
  with_store (fun root s ->
      let a = String.make 4000 'a' and b = "small chunk" in
      let fa = Store.put s a and fb = Store.put s b in
      Alcotest.(check bool) "a resident" true (Store.mem s fa);
      Alcotest.(check bool) "b resident" true (Store.mem s fb);
      Alcotest.(check bool) "key is the hash" true
        (Fp.equal fa (Fp.of_string a));
      Alcotest.(check (option string)) "a bytes" (Some a) (Store.get s fa);
      Alcotest.(check (option string)) "b bytes" (Some b) (Store.get s fb);
      Alcotest.(check (option string)) "absent" None
        (Store.get s (Fp.of_string "never stored"));
      Alcotest.(check bool) "chunk file exists" true
        (Sys.file_exists (chunk_file root fa));
      (* A second put of the same bytes is free and accounted as dedup. *)
      let fa' = Store.put s a in
      Alcotest.(check bool) "same key" true (Fp.equal fa fa');
      let st = Store.stats s in
      Alcotest.(check int) "chunks" 2 st.Store.chunks;
      Alcotest.(check int) "bytes" (4000 + String.length b) st.Store.bytes;
      Alcotest.(check int) "dedup_puts" 1 st.Store.dedup_puts;
      Alcotest.(check int) "bytes_deduped" 4000 st.Store.bytes_deduped)

let test_manifest_refcounts () =
  with_store (fun _root s ->
      let shared = Store.put s (String.make 600 's') in
      let only1 = Store.put s (String.make 600 'x') in
      let only2 = Store.put s (String.make 600 'y') in
      (* put alone takes no references *)
      Alcotest.(check int) "put is ref-neutral" 0 (Store.refs s shared);
      Store.set_manifest s ~path:"one.txt" [ shared; only1 ];
      Store.set_manifest s ~path:"two.txt" [ shared; only2 ];
      Alcotest.(check int) "shared twice" 2 (Store.refs s shared);
      Alcotest.(check int) "only1 once" 1 (Store.refs s only1);
      Alcotest.(check (list string)) "paths sorted"
        [ "one.txt"; "two.txt" ]
        (Store.manifest_paths s);
      (match Store.manifest s ~path:"one.txt" with
      | Some [ (c0, l0); (c1, _) ] ->
          Alcotest.(check bool) "manifest order" true (Fp.equal c0 shared);
          Alcotest.(check bool) "then only1" true (Fp.equal c1 only1);
          Alcotest.(check int) "length recorded" 600 l0
      | _ -> Alcotest.fail "manifest of one.txt");
      (* Replacing a manifest releases what it no longer uses. *)
      Store.set_manifest s ~path:"one.txt" [ only1 ];
      Alcotest.(check int) "shared released" 1 (Store.refs s shared);
      Store.remove_manifest s ~path:"two.txt";
      Alcotest.(check int) "shared unreferenced" 0 (Store.refs s shared);
      Alcotest.(check int) "only2 unreferenced" 0 (Store.refs s only2);
      (* Declaring a manifest over an absent chunk is a typed error. *)
      match
        Store.set_manifest s ~path:"bad.txt" [ Fp.of_string "not stored" ]
      with
      | () -> Alcotest.fail "expected a typed error"
      | exception Error.E _ -> ())

let test_replay_across_reopen () =
  with_root (fun dir ->
      let content = List.init 5 (fun i -> String.make (300 + i) 'k') in
      let fps =
        let s = Store.open_store dir in
        let fps = List.map (Store.put s) content in
        Store.set_manifest s ~path:"a/b c%d.txt" [ List.nth fps 0; List.nth fps 1 ];
        Store.set_manifest s ~path:"plain.txt" [ List.nth fps 0 ];
        Store.set_manifest s ~path:"dropped.txt" [ List.nth fps 2 ];
        Store.remove_manifest s ~path:"dropped.txt";
        Store.close s;
        fps
      in
      let s = Store.open_store dir in
      Fun.protect
        ~finally:(fun () -> Store.close s)
        (fun () ->
          List.iter2
            (fun fp c ->
              Alcotest.(check (option string))
                "chunk survives reopen" (Some c) (Store.get s fp))
            fps content;
          (* The escaped path replays byte-identical. *)
          Alcotest.(check (list string))
            "manifests survive"
            [ "a/b c%d.txt"; "plain.txt" ]
            (Store.manifest_paths s);
          Alcotest.(check int) "refs replayed" 2
            (Store.refs s (List.nth fps 0));
          Alcotest.(check int) "drop replayed" 0
            (Store.refs s (List.nth fps 2));
          (* Re-declaring the identical manifest must not grow the log. *)
          let before = (Store.stats s).Store.index_appends in
          Store.set_manifest s ~path:"plain.txt" [ List.nth fps 0 ];
          Alcotest.(check int) "idempotent redeclare" before
            (Store.stats s).Store.index_appends))

let test_compaction_and_gc () =
  with_root (fun dir ->
      let s = Store.open_store dir in
      let keep = Store.put s (String.make 512 'K') in
      let drop = Store.put s (String.make 2048 'D') in
      Store.set_manifest s ~path:"keep.txt" [ keep ];
      (* Churn one path many times: the live state is 2 chunks + 2
         manifests but the log holds every revision, so the append
         threshold trips and compaction rewrites it small. *)
      for i = 1 to 200 do
        Store.set_manifest s ~path:"churn.txt"
          [ (if i mod 2 = 0 then keep else drop) ]
      done;
      Alcotest.(check bool) "auto-compacted" true
        ((Store.stats s).Store.compactions > 0);
      Store.set_manifest s ~path:"churn.txt" [ keep ];
      let removed, reclaimed = Store.gc s in
      Alcotest.(check int) "one chunk collected" 1 removed;
      Alcotest.(check int) "its bytes reclaimed" 2048 reclaimed;
      Alcotest.(check bool) "file gone" false
        (Sys.file_exists (chunk_file dir drop));
      Alcotest.(check bool) "kept chunk intact" true (Store.mem s keep);
      Store.close s;
      (* The compacted log replays to the same live state. *)
      let s2 = Store.open_store dir in
      Fun.protect
        ~finally:(fun () -> Store.close s2)
        (fun () ->
          Alcotest.(check int) "chunks after gc" 1 (Store.stats s2).Store.chunks;
          Alcotest.(check int) "refs after churn" 2 (Store.refs s2 keep);
          Alcotest.(check bool) "dropped stays dropped" false
            (Store.mem s2 drop)))

let finding_names report =
  List.map
    (function
      | Store.Corrupt_chunk _ -> "corrupt"
      | Store.Missing_chunk _ -> "missing"
      | Store.Orphan_chunk _ -> "orphan"
      | Store.Refcount_skew _ -> "skew")
    (List.sort compare report.Store.findings)

let test_fsck_clean () =
  with_store (fun _root s ->
      let a = Store.put s (String.make 700 'a') in
      let b = Store.put s (String.make 800 'b') in
      Store.set_manifest s ~path:"f.txt" [ a; b ];
      let r = Store.fsck s in
      Alcotest.(check int) "chunks checked" 2 r.Store.chunks_checked;
      Alcotest.(check int) "manifests checked" 1 r.Store.manifests_checked;
      Alcotest.(check (list string)) "no findings" [] (finding_names r);
      Alcotest.(check int) "no garbage" 0 r.Store.garbage_chunks)

let test_fsck_detects_damage () =
  with_root (fun dir ->
      let corrupt, missing =
        let s = Store.open_store dir in
        let corrupt = Store.put s (String.make 900 'c') in
        let missing = Store.put s (String.make 900 'm') in
        Store.set_manifest s ~path:"f.txt" [ corrupt; missing ];
        Store.close s;
        (corrupt, missing)
      in
      (* Corrupt one chunk in place, delete the other outright, and
         plant an orphan file the index has never heard of. *)
      let oc = open_out_bin (chunk_file dir corrupt) in
      output_string oc (String.make 900 'X');
      close_out oc;
      Sys.remove (chunk_file dir missing);
      let orphan_hex = String.make 32 '0' in
      let fan = Filename.concat (Filename.concat dir "chunks") "00" in
      (if not (Sys.file_exists fan) then Sys.mkdir fan 0o755);
      let oc = open_out_bin (Filename.concat fan orphan_hex) in
      output_string oc "stray bytes";
      close_out oc;
      let s = Store.open_store dir in
      Fun.protect
        ~finally:(fun () -> Store.close s)
        (fun () ->
          let r = Store.fsck s in
          Alcotest.(check (list string))
            "all three found"
            [ "corrupt"; "missing"; "orphan" ]
            (finding_names r);
          (* Orphans are warnings, not errors. *)
          Alcotest.(check int) "two errors" 2
            (List.length (Store.fsck_errors r));
          Alcotest.(check bool) "orphan not an error" true
            (List.for_all
               (function Store.Orphan_chunk _ -> false | _ -> true)
               (Store.fsck_errors r))))

let test_fsck_detects_refcount_skew () =
  with_root (fun dir ->
      let fp =
        let s = Store.open_store dir in
        let fp = Store.put s (String.make 400 'r') in
        Store.set_manifest s ~path:"f.txt" [ fp ];
        Store.close s;
        fp
      in
      (* Forge a compaction-style refcount assertion that contradicts
         the manifests: replay trusts it, fsck re-derives and objects. *)
      let oc =
        open_out_gen
          [ Open_append; Open_binary ]
          0o644
          (Filename.concat dir "index.log")
      in
      output_string oc (Printf.sprintf "R %s 7\n" (Fp.to_hex fp));
      close_out oc;
      let s = Store.open_store dir in
      Fun.protect
        ~finally:(fun () -> Store.close s)
        (fun () ->
          Alcotest.(check int) "forged count replayed" 7 (Store.refs s fp);
          let r = Store.fsck s in
          match Store.fsck_errors r with
          | [ Store.Refcount_skew { index_refs; manifest_refs; _ } ] ->
              Alcotest.(check int) "index side" 7 index_refs;
              Alcotest.(check int) "manifest side" 1 manifest_refs
          | _ -> Alcotest.failf "expected exactly a refcount skew"))

let test_torn_index_append () =
  with_root (fun dir ->
      let fp =
        let s = Store.open_store dir in
        let fp = Store.put s (String.make 300 't') in
        Store.set_manifest s ~path:"t.txt" [ fp ];
        Store.close s;
        fp
      in
      (* A crash mid-append leaves a final line with no newline; replay
         must drop it and keep everything before. *)
      let oc =
        open_out_gen
          [ Open_append; Open_binary ]
          0o644
          (Filename.concat dir "index.log")
      in
      output_string oc "M torn-manif";
      close_out oc;
      let s = Store.open_store dir in
      Fun.protect
        ~finally:(fun () -> Store.close s)
        (fun () ->
          Alcotest.(check (list string)) "only committed state"
            [ "t.txt" ] (Store.manifest_paths s);
          Alcotest.(check int) "refs intact" 1 (Store.refs s fp)))

let test_sig_persist_roundtrip () =
  with_store (fun _root s ->
      let dir = Store.sig_dir s in
      let v1 = [| 0; 1; 0x3fffffff; 123456; 42 |] in
      let v2 = [| 7 |] in
      let fp1 = Fp.of_string "file one" and fp2 = Fp.of_string "file two" in
      Alcotest.(check bool) "save one" true
        (Sig_persist.save ~dir ~fp:fp1 ~size:2048 ~bits:30 v1);
      Alcotest.(check bool) "save two" true
        (Sig_persist.save ~dir ~fp:fp2 ~size:512 ~bits:16 v2);
      (* Unparseable droppings must be skipped, not fatal. *)
      let oc = open_out_bin (Filename.concat dir "junk-file") in
      output_string oc "not a vector";
      close_out oc;
      let seen = ref [] in
      let n =
        Sig_persist.load_all ~dir (fun ~fp ~size ~bits v ->
            seen := (Fp.to_hex fp, size, bits, Array.to_list v) :: !seen)
      in
      Alcotest.(check int) "two loaded" 2 n;
      let expect =
        List.sort compare
          [
            (Fp.to_hex fp1, 2048, 30, Array.to_list v1);
            (Fp.to_hex fp2, 512, 16, Array.to_list v2);
          ]
      in
      Alcotest.(check bool) "vectors roundtrip" true
        (List.sort compare !seen = expect);
      (* Overwrite is last-writer-wins for the same key. *)
      Alcotest.(check bool) "save overwrite" true
        (Sig_persist.save ~dir ~fp:fp1 ~size:2048 ~bits:30 v2);
      let got = ref None in
      ignore
        (Sig_persist.load_all ~dir (fun ~fp ~size ~bits:_ v ->
             if Fp.equal fp fp1 && size = 2048 then got := Some (Array.to_list v)));
      Alcotest.(check (option (list int))) "overwritten" (Some [ 7 ]) !got)

(* ---- injected disk faults (Fault_io) ---- *)

module Fault_io = Fsync_store.Fault_io

let test_fault_spec_roundtrip () =
  List.iter
    (fun s ->
      match Fault_io.parse s with
      | Ok spec ->
          Alcotest.(check string) ("canonical " ^ s) s
            (Fault_io.to_string spec)
      | Error e -> Alcotest.failf "parse %S: %s" s e)
    [ "none"; "enospc=0.1"; "eio=0.05,short=0.02"; "enospc=0.1,crash=7" ];
  (match Fault_io.parse "crash=0" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "crash=0 must be rejected");
  match Fault_io.parse "bogus=1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown field must be rejected"

let test_fault_io_deterministic () =
  (* Same seed and schedule, same workload: identical fault stats. *)
  let run () =
    with_root (fun dir ->
        let io, stats =
          Fault_io.wrap ~seed:99
            { Fault_io.none with Fault_io.p_eio = 0.2; p_short = 0.2 }
        in
        let s = Store.open_store ~io dir in
        for i = 0 to 30 do
          match Store.put s (String.make (100 + i) 'z') with
          | _ -> ()
          | exception Error.E _ -> ()
        done;
        (match Store.close s with () -> () | exception Error.E _ -> ());
        stats ())
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "faults actually fired" true
    (a.Fault_io.eio + a.Fault_io.short_writes > 0);
  Alcotest.(check int) "eio deterministic" a.Fault_io.eio b.Fault_io.eio;
  Alcotest.(check int) "short deterministic" a.Fault_io.short_writes
    b.Fault_io.short_writes;
  Alcotest.(check int) "ops deterministic" a.Fault_io.ops b.Fault_io.ops

(* Sweep the crash point across every mutating syscall of a small
   put/manifest workload: whatever instant the process "dies", a clean
   reopen must fsck clean and the workload must complete on retry. *)
let test_crash_point_sweep () =
  let workload s =
    let c1 = Store.put s (String.make 700 'p') in
    let c2 = Store.put s (String.make 700 'q') in
    Store.set_manifest s ~path:"one.txt" [ c1; c2 ];
    Store.set_manifest s ~path:"two.txt" [ c2 ]
  in
  let k = ref 1 in
  let sweeping = ref true in
  while !sweeping do
    if !k > 100 then Alcotest.fail "crash sweep did not terminate";
    with_root (fun dir ->
        let io, stats =
          Fault_io.wrap ~seed:!k
            { Fault_io.none with Fault_io.crash_at = Some !k }
        in
        (match
           let s = Store.open_store ~io dir in
           workload s;
           Store.close s
         with
        | () -> sweeping := false (* schedule never fired: sweep done *)
        | exception Fault_io.Crash_point _ ->
            Alcotest.(check bool) (Printf.sprintf "crashed at %d" !k) true
              (stats ()).Fault_io.crashed;
            (* Restart: clean Io over whatever the crash left behind. *)
            let s = Store.open_store dir in
            let report = Store.fsck s in
            (match Store.fsck_errors report with
            | [] -> ()
            | errs ->
                Alcotest.failf "fsck after crash at %d: %d error finding(s)"
                  !k (List.length errs));
            workload s;
            Alcotest.(check (option string))
              (Printf.sprintf "converged after crash at %d" !k)
              (Some (String.make 700 'p'))
              (Store.get s (Fp.of_string (String.make 700 'p')));
            Store.close s);
        incr k)
  done

let test_enospc_schedule_recovers () =
  (* Probabilistic ENOSPC/EIO bursts surface as typed errors, never as
     silent corruption: after the weather clears, fsck is clean and the
     data all lands. *)
  with_root (fun dir ->
      let io, stats =
        Fault_io.wrap ~seed:7
          { Fault_io.none with Fault_io.p_enospc = 0.25; p_eio = 0.1 }
      in
      let s = Store.open_store ~io dir in
      let failures = ref 0 in
      for i = 0 to 40 do
        match Store.put s (Printf.sprintf "chunk %d %s" i (String.make 300 'e'))
        with
        | _ -> ()
        | exception Error.E _ -> incr failures
      done;
      Alcotest.(check bool) "some puts failed" true (!failures > 0);
      Alcotest.(check bool) "faults accounted" true
        ((stats ()).Fault_io.enospc + (stats ()).Fault_io.eio > 0);
      (match Store.close s with () -> () | exception Error.E _ -> ());
      let s = Store.open_store dir in
      let report = Store.fsck s in
      Alcotest.(check int) "fsck clean after faults" 0
        (List.length (Store.fsck_errors report));
      for i = 0 to 40 do
        ignore
          (Store.put s (Printf.sprintf "chunk %d %s" i (String.make 300 'e')))
      done;
      for i = 0 to 40 do
        let c = Printf.sprintf "chunk %d %s" i (String.make 300 'e') in
        Alcotest.(check (option string)) (Printf.sprintf "chunk %d" i) (Some c)
          (Store.get s (Fp.of_string c))
      done;
      Store.close s)

let test_sig_persist_fault_returns_false () =
  with_store (fun _root s ->
      let dir = Store.sig_dir s in
      (* Every mutating syscall fails: the best-effort save must report
         failure, not raise. *)
      let io, _ =
        Fault_io.wrap ~seed:3 { Fault_io.none with Fault_io.p_eio = 1.0 }
      in
      Alcotest.(check bool) "save fails typed" false
        (Sig_persist.save ~io ~dir ~fp:(Fp.of_string "x") ~size:1024 ~bits:30
           [| 1; 2; 3 |]);
      (* And a Crash_point is not swallowed: a dead process cannot
         return [false]. *)
      let io, _ =
        Fault_io.wrap ~seed:4 { Fault_io.none with Fault_io.crash_at = Some 1 }
      in
      match
        Sig_persist.save ~io ~dir ~fp:(Fp.of_string "y") ~size:1024 ~bits:30
          [| 4 |]
      with
      | (_ : bool) -> Alcotest.fail "Crash_point must propagate"
      | exception Fault_io.Crash_point _ -> ())

let suite =
  [
    ("put/get roundtrip", `Quick, test_put_get_roundtrip);
    ("manifest refcounts", `Quick, test_manifest_refcounts);
    ("replay across reopen", `Quick, test_replay_across_reopen);
    ("compaction and gc", `Quick, test_compaction_and_gc);
    ("fsck clean", `Quick, test_fsck_clean);
    ("fsck detects damage", `Quick, test_fsck_detects_damage);
    ("fsck detects refcount skew", `Quick, test_fsck_detects_refcount_skew);
    ("torn index append", `Quick, test_torn_index_append);
    ("sig_persist roundtrip", `Quick, test_sig_persist_roundtrip);
    ("fault spec roundtrip", `Quick, test_fault_spec_roundtrip);
    ("fault io deterministic", `Quick, test_fault_io_deterministic);
    ("crash point sweep", `Quick, test_crash_point_sweep);
    ("enospc schedule recovers", `Quick, test_enospc_schedule_recovers);
    ("sig persist under faults", `Quick, test_sig_persist_fault_returns_false);
  ]
