(* Tests for Fsync_server: message codec, signature cache, the
   session/puller state machines (in memory and over socketpairs against
   the daemon event loop), timeouts, backpressure, and the blocking TCP
   pull client against a forked daemon. *)

open Fsync_server
module Prng = Fsync_util.Prng
module Fp = Fsync_hash.Fingerprint
module Channel = Fsync_net.Channel
module Meta_wire = Fsync_collection.Meta_wire

let cfg = Msg.default_sync_config

let mk_files seed n =
  let rng = Prng.create (Int64.of_int seed) in
  List.init n (fun i ->
      ( Printf.sprintf "dir%d/file%03d.txt" (i mod 3) i,
        Fsync_workload.Text_gen.c_like rng ~lines:(20 + Prng.int rng 80) ))

let mutate_some seed files =
  let rng = Prng.create (Int64.of_int ((seed * 37) + 5)) in
  List.map
    (fun (path, content) ->
      if Prng.bernoulli rng 0.5 then (path, content)
      else
        ( path,
          Fsync_workload.Edit_model.mutate rng
            ~profile:Fsync_workload.Edit_model.medium
            ~gen_text:(fun rng n ->
              String.init n (fun _ -> Char.chr (97 + Prng.int rng 26)))
            content ))
    files

let sorted files =
  List.sort (fun (a, _) (b, _) -> String.compare a b) files

let check_files what expected actual =
  Alcotest.(check (list (pair string string))) what (sorted expected) actual

(* ---- Msg codec ---- *)

let roundtrip m =
  Msg.decode ~config:cfg (Msg.encode ~config:cfg m)

let test_msg_roundtrip () =
  let fp = Fp.of_string "content" in
  let check_eq what a b =
    Alcotest.(check string)
      what
      (Msg.encode ~config:cfg a)
      (Msg.encode ~config:cfg b)
  in
  List.iter
    (fun m -> check_eq (Msg.label m) m (roundtrip m))
    [
      Msg.Hello { version = Msg.version; trace = None; swarm = None };
      Msg.Welcome
        { version = 1; file_count = 42; root = fp; config = cfg };
      Msg.Announce "announce-bytes";
      Msg.Verdict "verdict-bytes";
      Msg.File_begin { path = "a/b.txt"; new_len = 123_456; fp };
      Msg.Hashes [| 0; 1; 0x3fffffff; 12345 |];
      Msg.Matched "\x80\x01";
      Msg.Tail "literals";
      Msg.Full "full-bytes";
      Msg.File_ack true;
      Msg.File_ack false;
      Msg.Bye { root = fp };
      Msg.Error_msg "went wrong";
      Msg.Push_begin
        {
          path = "up/loaded.txt";
          file_len = 123;
          fp;
          manifest = [ (fp, 100); (Fp.of_string "other chunk", 23) ];
        };
      Msg.Push_begin { path = "empty.txt"; file_len = 0; fp; manifest = [] };
      Msg.Chunk_need "\x05\x80";
      Msg.Chunk_data "deflated-chunk-bytes";
      Msg.Push_done;
      Msg.Resume { root = fp; bitmap = "\x05\xff\x00" };
      Msg.Resume { root = fp; bitmap = "" };
      Msg.Busy { retry_after_ms = 0 };
      Msg.Busy { retry_after_ms = 1500 };
    ]

let test_msg_malformed () =
  let expect_error raw =
    match Msg.decode ~config:cfg raw with
    | _ -> Alcotest.fail "expected a typed error"
    | exception Fsync_core.Error.E _ -> ()
  in
  expect_error "";
  expect_error "L";
  expect_error "B\x05ab";
  (* hash array overrunning the message *)
  expect_error "S\x7f";
  (* hostile varint count (2^61): [count * width] would overflow
     negative and slip past a sum-based bounds check *)
  expect_error "S\x80\x80\x80\x80\x80\x80\x80\x80\x20abcd";
  expect_error "K"

let test_bitmap_roundtrip () =
  let cases =
    [ []; [ true ]; [ false ]; [ true; false; true ];
      List.init 17 (fun i -> Int.equal (i mod 3) 0) ]
  in
  List.iter
    (fun bits ->
      let encoded = Msg.encode_bitmap bits in
      Alcotest.(check int)
        "byte length"
        ((List.length bits + 7) / 8)
        (String.length encoded);
      Alcotest.(check (list bool))
        "roundtrip" bits
        (Array.to_list (Msg.decode_bitmap ~count:(List.length bits) encoded)))
    cases

(* ---- Sigcache ---- *)

let test_sigcache_hits_and_eviction () =
  let c = Sigcache.create ~max_entries:2 () in
  let content = String.make 5000 'a' ^ String.make 3000 'b' in
  let fp = Fp.of_string content in
  let v1, hit1 = Sigcache.find_or_compute c ~fp ~size:2048 ~bits:30 content in
  Alcotest.(check bool) "first is a miss" false hit1;
  Alcotest.(check int) "vector covers the file" 4 (Array.length v1);
  Alcotest.(check (array int))
    "pure function" v1
    (Sigcache.compute content ~size:2048 ~bits:30);
  let v2, hit2 = Sigcache.find_or_compute c ~fp ~size:2048 ~bits:30 content in
  Alcotest.(check bool) "second is a hit" true hit2;
  Alcotest.(check (array int)) "same vector" v1 v2;
  (* Distinct levels are distinct entries; a third evicts the LRU. *)
  ignore (Sigcache.find_or_compute c ~fp ~size:1024 ~bits:30 content);
  ignore (Sigcache.find_or_compute c ~fp ~size:512 ~bits:30 content);
  let s = Sigcache.stats c in
  Alcotest.(check int) "bounded" 2 s.Sigcache.entries;
  Alcotest.(check int) "evicted one" 1 s.Sigcache.evictions;
  Alcotest.(check int) "hits" 1 s.Sigcache.hits;
  Alcotest.(check int) "misses" 3 s.Sigcache.misses

(* ---- session + puller, in memory ---- *)

let test_in_memory_sync () =
  let server_files = mk_files 1 12 in
  (* Old replica: mutated copies, one deleted file, one extra file the
     server no longer has. *)
  let client_files =
    mutate_some 1 (List.filteri (fun i _ -> i < 11) server_files)
    @ [ ("zzz/stale.txt", "to be deleted") ]
  in
  let cache = Sigcache.create () in
  let r, st =
    Loopback.run_in_memory ~cache ~server:server_files ~client:client_files ()
  in
  check_files "replica converges" server_files r.Loopback.files;
  Alcotest.(check bool)
    "hash rounds happened" true
    (st.Session.rounds > 0);
  Alcotest.(check bool)
    "old bytes reused" true
    (r.Loopback.stats.Puller.matched_bytes > 0)

let test_in_memory_identical_and_empty () =
  let files = mk_files 2 5 in
  let cache = Sigcache.create () in
  let r, st = Loopback.run_in_memory ~cache ~server:files ~client:files () in
  check_files "identical replicas" files r.Loopback.files;
  Alcotest.(check int) "no rounds" 0 st.Session.rounds;
  let r2, _ = Loopback.run_in_memory ~cache ~server:[] ~client:[] () in
  check_files "empty collections" [] r2.Loopback.files;
  let r3, _ = Loopback.run_in_memory ~cache ~server:files ~client:[] () in
  check_files "bootstrap from nothing" files r3.Loopback.files

let test_sigcache_across_clients () =
  (* Second client syncing the same outdated replica must be served
     almost entirely from the shared cache. *)
  let server_files = mk_files 3 10 in
  let client_files = mutate_some 3 server_files in
  let cache = Sigcache.create () in
  let _, st1 =
    Loopback.run_in_memory ~cache ~server:server_files ~client:client_files ()
  in
  let _, st2 =
    Loopback.run_in_memory ~cache ~server:server_files ~client:client_files ()
  in
  Alcotest.(check bool)
    "first client computes" true
    (st1.Session.hashes_total > 0);
  let ratio =
    float_of_int st2.Session.hashes_cached
    /. float_of_int (max 1 st2.Session.hashes_total)
  in
  if ratio < 0.9 then
    Alcotest.failf "second client cached ratio %.2f < 0.9 (%d/%d)" ratio
      st2.Session.hashes_cached st2.Session.hashes_total

(* ---- the daemon over socketpairs: concurrent interleaved sessions ---- *)

let test_loopback_eight_clients () =
  let server_files = mk_files 7 10 in
  let daemon = Daemon.create server_files in
  let clients = List.init 8 (fun i -> mutate_some (i + 10) server_files) in
  let results = Loopback.run_pulls ~daemon clients in
  Alcotest.(check int) "eight results" 8 (List.length results);
  List.iteri
    (fun i r ->
      check_files
        (Printf.sprintf "client %d converges" i)
        server_files r.Loopback.files)
    results;
  let ds = Daemon.stats daemon in
  Alcotest.(check int) "eight accepted" 8 ds.Daemon.accepted;
  Alcotest.(check int) "eight completed" 8 ds.Daemon.completed;
  Alcotest.(check int) "none failed" 0 ds.Daemon.failed;
  (* The shared cache was exercised across the fleet. *)
  let cs = Sigcache.stats (Daemon.cache daemon) in
  Alcotest.(check bool) "cache hits across clients" true (cs.Sigcache.hits > 0);
  Daemon.shutdown daemon

let test_loopback_matches_in_memory () =
  (* The socket path and the in-memory path run the same state
     machines: results byte-identical, payload bytes identical (the
     transport only adds the 4-byte frame headers). *)
  (* Realistically sized files: the 4-byte frame headers are the only
     difference between the accountings and must stay inside the 3%
     budget. *)
  let rng = Prng.create 99L in
  let server_files =
    List.init 8 (fun i ->
        ( Printf.sprintf "src/mod%02d.ml" i,
          Fsync_workload.Text_gen.c_like rng ~lines:(250 + Prng.int rng 150)
        ))
  in
  let client_files = mutate_some 9 server_files in
  let daemon = Daemon.create server_files in
  let tcp =
    match Loopback.run_pulls ~daemon [ client_files ] with
    | [ r ] -> r
    | _ -> Alcotest.fail "one result expected"
  in
  Daemon.shutdown daemon;
  let mem, _ =
    Loopback.run_in_memory
      ~cache:(Sigcache.create ())
      ~server:server_files ~client:client_files ()
  in
  check_files "same replica" mem.Loopback.files tcp.Loopback.files;
  Alcotest.(check int)
    "same roundtrips" mem.Loopback.roundtrips tcp.Loopback.roundtrips;
  (* Same machines, same frames: stripping the 4-byte frame header from
     the socket accounting must recover the in-memory payload exactly —
     which trivially lands inside the 3% parity budget. *)
  let payload bytes msgs = bytes - (4 * msgs) in
  Alcotest.(check int)
    "c2s payload identical" mem.Loopback.c2s_bytes
    (payload tcp.Loopback.c2s_bytes tcp.Loopback.c2s_msgs);
  Alcotest.(check int)
    "s2c payload identical" mem.Loopback.s2c_bytes
    (payload tcp.Loopback.s2c_bytes tcp.Loopback.s2c_msgs);
  (* And even with headers included the slack stays single-digit
     percent on a realistic collection. *)
  let total_mem = mem.Loopback.c2s_bytes + mem.Loopback.s2c_bytes in
  let total_tcp = tcp.Loopback.c2s_bytes + tcp.Loopback.s2c_bytes in
  if float_of_int (total_tcp - total_mem) > 0.10 *. float_of_int total_mem
  then
    Alcotest.failf "transport overhead %d of %d bytes (> 10%%)"
      (total_tcp - total_mem) total_mem

let test_timeout_teardown () =
  let config =
    { Daemon.default_config with Daemon.session_timeout_s = 0.05 }
  in
  let daemon = Daemon.create ~config (mk_files 4 3) in
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Daemon.add_connection daemon b;
  (* Say hello, then go silent. *)
  let tr = Fsync_net.Fd_transport.of_fd a in
  let ch = Fsync_net.Fd_transport.channel tr in
  Channel.send ch ~label:"t" Channel.Client_to_server
    (Msg.encode ~config:cfg (Msg.Hello { version = Msg.version; trace = None; swarm = None }));
  let deadline = Unix.gettimeofday () +. 5.0 in
  while Daemon.active_sessions daemon > 0 && Unix.gettimeofday () < deadline do
    Daemon.step ~timeout_s:0.01 daemon
  done;
  Alcotest.(check int) "session reaped" 0 (Daemon.active_sessions daemon);
  let ds = Daemon.stats daemon in
  Alcotest.(check int) "one timeout" 1 ds.Daemon.timeouts;
  Alcotest.(check int) "one failure" 1 ds.Daemon.failed;
  (* The teardown is typed: Welcome first, then Error_msg. *)
  (match Channel.recv_opt ch Channel.Server_to_client with
  | Some raw -> (
      match Msg.decode ~config:cfg raw with
      | Msg.Welcome _ -> ()
      | m -> Alcotest.failf "expected Welcome, got %s" (Msg.label m))
  | None -> Alcotest.fail "expected the Welcome reply");
  (match Channel.recv_opt ch Channel.Server_to_client with
  | Some raw -> (
      match Msg.decode ~config:cfg raw with
      | Msg.Error_msg _ -> ()
      | m -> Alcotest.failf "expected Error_msg, got %s" (Msg.label m))
  | None -> Alcotest.fail "expected the typed teardown");
  Fsync_net.Fd_transport.close tr;
  Daemon.shutdown daemon

let test_protocol_violation_teardown () =
  let daemon = Daemon.create (mk_files 5 2) in
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Daemon.add_connection daemon b;
  let tr = Fsync_net.Fd_transport.of_fd a in
  let ch = Fsync_net.Fd_transport.channel tr in
  (* An Announce before Hello is a protocol violation. *)
  Channel.send ch ~label:"t" Channel.Client_to_server
    (Msg.encode ~config:cfg (Msg.Announce "x"));
  let deadline = Unix.gettimeofday () +. 5.0 in
  while Daemon.active_sessions daemon > 0 && Unix.gettimeofday () < deadline do
    Daemon.step ~timeout_s:0.01 daemon
  done;
  let ds = Daemon.stats daemon in
  Alcotest.(check int) "failed, not completed" 1 ds.Daemon.failed;
  Alcotest.(check int) "not completed" 0 ds.Daemon.completed;
  (match Channel.recv_opt ch Channel.Server_to_client with
  | Some raw -> (
      match Msg.decode ~config:cfg raw with
      | Msg.Error_msg _ -> ()
      | m -> Alcotest.failf "expected Error_msg, got %s" (Msg.label m))
  | None -> Alcotest.fail "expected the typed teardown");
  Fsync_net.Fd_transport.close tr;
  Daemon.shutdown daemon

(* ---- Conn: backpressure ---- *)

let test_conn_backpressure () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let conn = Conn.create ~max_outbox:1024 a in
  Conn.queue_msg conn (String.make 4096 'x');
  Alcotest.(check bool) "wants write" true (Conn.wants_write conn);
  Alcotest.(check bool)
    "over backpressure" true
    (Conn.over_backpressure conn);
  (* Drain by reading the peer until the outbox empties. *)
  let buf = Bytes.create 65536 in
  let deadline = Unix.gettimeofday () +. 5.0 in
  let received = ref 0 in
  while Conn.wants_write conn && Unix.gettimeofday () < deadline do
    Conn.handle_writable conn;
    match Unix.read b buf 0 (Bytes.length buf) with
    | n -> received := !received + n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        ()
  done;
  Alcotest.(check bool) "drained" false (Conn.over_backpressure conn);
  Alcotest.(check int) "frame on the wire" (4096 + 4) !received;
  Alcotest.(check int) "payload accounting" 4096 (Conn.bytes_out conn);
  Conn.close conn;
  (match Unix.close b with
  | () -> ()
  | exception Unix.Unix_error _ -> ());
  (* Close is idempotent and queue_msg after close is a no-op. *)
  Conn.close conn;
  Conn.queue_msg conn "late";
  Alcotest.(check bool) "still closed" true (Conn.closed conn)

let test_oversized_frame_teardown () =
  (* A non-protocol peer (e.g. an HTTP probe) whose first 4 bytes decode
     to a frame length over the limit must fail only its own session —
     the daemon keeps serving everyone else. *)
  let server_files = mk_files 13 6 in
  let daemon = Daemon.create server_files in
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Daemon.add_connection daemon b;
  let probe = "GET / HTTP/1.1\r\n\r\n" in
  let n = Unix.write_substring a probe 0 (String.length probe) in
  Alcotest.(check int) "probe written" (String.length probe) n;
  let deadline = Unix.gettimeofday () +. 5.0 in
  while Daemon.active_sessions daemon > 0 && Unix.gettimeofday () < deadline do
    Daemon.step ~timeout_s:0.01 daemon
  done;
  Alcotest.(check int) "probe reaped" 0 (Daemon.active_sessions daemon);
  let ds = Daemon.stats daemon in
  Alcotest.(check int) "one failure" 1 ds.Daemon.failed;
  Alcotest.(check int) "no completion" 0 ds.Daemon.completed;
  (* The typed teardown reached the probe's socket. *)
  let tr = Fsync_net.Fd_transport.of_fd a in
  (match
     Channel.recv_opt (Fsync_net.Fd_transport.channel tr)
       Channel.Server_to_client
   with
  | Some raw -> (
      match Msg.decode ~config:cfg raw with
      | Msg.Error_msg _ -> ()
      | m -> Alcotest.failf "expected Error_msg, got %s" (Msg.label m))
  | None -> Alcotest.fail "expected the typed teardown");
  Fsync_net.Fd_transport.close tr;
  (* The daemon survived: a real client still syncs through it. *)
  let client_files = mutate_some 13 server_files in
  (match Loopback.run_pulls ~daemon [ client_files ] with
  | [ r ] -> check_files "daemon still serves" server_files r.Loopback.files
  | _ -> Alcotest.fail "one result expected");
  Daemon.shutdown daemon

let test_conn_peer_gone () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let conn = Conn.create a in
  Unix.close b;
  Conn.queue_msg conn "undeliverable";
  let deadline = Unix.gettimeofday () +. 5.0 in
  while (not (Conn.peer_gone conn)) && Unix.gettimeofday () < deadline do
    if not (Conn.wants_write conn) then Conn.queue_msg conn "undeliverable";
    Conn.handle_writable conn
  done;
  Alcotest.(check bool) "peer gone" true (Conn.peer_gone conn);
  Alcotest.(check bool) "not closed yet" false (Conn.closed conn);
  Alcotest.(check bool) "outbox dropped" false (Conn.wants_write conn);
  Alcotest.(check int) "no unsent bytes" 0 (Conn.pending_out conn);
  (* queue_msg after peer_gone is a no-op. *)
  Conn.queue_msg conn "late";
  Alcotest.(check int) "still empty" 0 (Conn.pending_out conn);
  (* close really releases the fd (regression: the old code marked the
     connection closed on EPIPE and leaked the descriptor). *)
  let fd = Conn.fd conn in
  Conn.close conn;
  match Unix.fstat fd with
  | _ -> Alcotest.fail "fd still open after close"
  | exception Unix.Unix_error (Unix.EBADF, _, _) -> ()

let test_daemon_peer_gone_accounting () =
  (* A peer that vanishes while a teardown notification is still queued
     must be closed AND counted, not silently dropped from the stats. *)
  let daemon = Daemon.create (mk_files 6 2) in
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Daemon.add_connection daemon b;
  let tr = Fsync_net.Fd_transport.of_fd a in
  (* Announce before Hello: the violation queues a typed Error_msg... *)
  Channel.send
    (Fsync_net.Fd_transport.channel tr)
    ~label:"t" Channel.Client_to_server
    (Msg.encode ~config:cfg (Msg.Announce "x"));
  Daemon.step ~timeout_s:0.0 daemon;
  (* ...but the peer is gone before the outbox can flush it. *)
  Fsync_net.Fd_transport.close tr;
  let deadline = Unix.gettimeofday () +. 5.0 in
  while Daemon.active_sessions daemon > 0 && Unix.gettimeofday () < deadline do
    Daemon.step ~timeout_s:0.01 daemon
  done;
  Alcotest.(check int) "reaped" 0 (Daemon.active_sessions daemon);
  let ds = Daemon.stats daemon in
  Alcotest.(check int) "counted as failed" 1 ds.Daemon.failed;
  Alcotest.(check int) "not completed" 0 ds.Daemon.completed;
  Daemon.shutdown daemon

let test_conn_chunked_frames () =
  (* Frames arriving in many small pieces (and one large frame) must
     reassemble byte-identically through the offset input buffer. *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let conn = Conn.create b in
  let frame s =
    let len = String.length s in
    let h = Bytes.create 4 in
    Bytes.set h 0 (Char.chr ((len lsr 24) land 0xff));
    Bytes.set h 1 (Char.chr ((len lsr 16) land 0xff));
    Bytes.set h 2 (Char.chr ((len lsr 8) land 0xff));
    Bytes.set h 3 (Char.chr (len land 0xff));
    Bytes.to_string h ^ s
  in
  let big = String.init 200_000 (fun i -> Char.chr (i mod 251)) in
  let small = "tiny" in
  let raw = frame big ^ frame small in
  let frames = ref [] in
  let drain () =
    match Conn.handle_readable conn with
    | `Msgs (fs, _) -> frames := !frames @ fs
    | `Eof -> Alcotest.fail "unexpected eof"
  in
  let pos = ref 0 in
  while !pos < String.length raw do
    let n = min 8192 (String.length raw - !pos) in
    let w = Unix.write_substring a raw !pos n in
    pos := !pos + w;
    drain ()
  done;
  drain ();
  (match !frames with
  | [ f1; f2 ] ->
      Alcotest.(check string) "big frame intact" big f1;
      Alcotest.(check string) "small frame intact" small f2
  | fs -> Alcotest.failf "expected 2 frames, got %d" (List.length fs));
  Alcotest.(check int)
    "payload accounting"
    (String.length big + String.length small)
    (Conn.bytes_in conn);
  Conn.close conn;
  match Unix.close a with
  | () -> ()
  | exception Unix.Unix_error _ -> ()

(* ---- the real thing: TCP against a forked daemon ---- *)

let with_forked_daemon ?config files f =
  let daemon = Daemon.create ?config files in
  let port = Daemon.listen daemon ~host:"127.0.0.1" ~port:0 in
  match Unix.fork () with
  | 0 ->
      (* Child: serve until SIGTERM flips the stop flag. *)
      Sys.set_signal Sys.sigterm
        (Sys.Signal_handle (fun _ -> Daemon.request_stop daemon));
      (match Daemon.run ~timeout_s:0.02 ~drain_s:1.0 daemon with
      | () -> ()
      | exception _ -> ());
      Unix._exit 0
  | pid ->
      Fun.protect
        ~finally:(fun () ->
          (match Unix.kill pid Sys.sigterm with
          | () -> ()
          | exception Unix.Unix_error _ -> ());
          ignore (Unix.waitpid [] pid))
        (fun () -> f port)

let test_tcp_pull () =
  let server_files = mk_files 11 8 in
  let client_files = mutate_some 11 server_files in
  with_forked_daemon server_files (fun port ->
      let r =
        Pull.run ~host:"127.0.0.1" ~port ~idle_timeout_s:10.0 client_files
      in
      check_files "tcp pull converges" server_files r.Pull.files;
      Alcotest.(check int) "first attempt" 1 r.Pull.attempts;
      (* A pull under a faulty link retries until it converges.  The
         schedule is a pure function of the seed; this one corrupts
         frames on the first attempts and lets a later one through. *)
      let fault =
        match Fsync_net.Fault.parse "corrupt=0.05" with
        | Ok spec -> spec
        | Error e -> Alcotest.fail e
      in
      let r2 =
        Pull.run ~attempts:12 ~fault ~seed:42 ~host:"127.0.0.1" ~port
          ~idle_timeout_s:5.0 client_files
      in
      check_files "faulted pull converges" server_files r2.Pull.files;
      Alcotest.(check bool) "needed a retry" true (r2.Pull.attempts > 1))

(* ---- sigcache lookup accounting (stats contract) ---- *)

let test_sigcache_lookup_stats () =
  let c = Sigcache.create () in
  (* The zero-lookup convention: an untouched cache reports rate 0.0,
     not NaN and not a flattering 1.0. *)
  Alcotest.(check int) "no lookups yet" 0 (Sigcache.stats c).Sigcache.lookups;
  Alcotest.(check (float 0.0)) "hit rate at zero lookups" 0.0
    (Sigcache.hit_rate c);
  Alcotest.(check (float 0.0)) "warm rate at zero lookups" 0.0
    (Sigcache.warm_hit_rate c);
  let saves = ref [] in
  Sigcache.set_persist c
    { Sigcache.save = (fun ~fp:_ ~size ~bits:_ _ -> saves := size :: !saves) };
  let content = String.make 4096 'q' in
  let fp = Fp.of_string content in
  ignore (Sigcache.find_or_compute c ~fp ~size:2048 ~bits:30 content);
  ignore (Sigcache.find_or_compute c ~fp ~size:2048 ~bits:30 content);
  let s = Sigcache.stats c in
  Alcotest.(check int) "lookups = hits + misses" 2 s.Sigcache.lookups;
  Alcotest.(check int) "one hit" 1 s.Sigcache.hits;
  Alcotest.(check int) "one miss" 1 s.Sigcache.misses;
  Alcotest.(check (float 1e-9)) "hit rate" 0.5 (Sigcache.hit_rate c);
  Alcotest.(check (list int)) "miss persisted, hit not" [ 2048 ] !saves;
  (* Seeding is not a lookup; a hit on the seeded entry is a warm hit. *)
  let content2 = String.make 4096 'w' in
  let fp2 = Fp.of_string content2 in
  Sigcache.seed c ~fp:fp2 ~size:1024 ~bits:30
    (Sigcache.compute content2 ~size:1024 ~bits:30);
  Alcotest.(check int) "seed is no lookup" 2
    (Sigcache.stats c).Sigcache.lookups;
  Alcotest.(check int) "warmed" 1 (Sigcache.stats c).Sigcache.warmed;
  let v, hit = Sigcache.find_or_compute c ~fp:fp2 ~size:1024 ~bits:30 content2 in
  Alcotest.(check bool) "warm entry hits" true hit;
  Alcotest.(check (array int)) "warm vector correct"
    (Sigcache.compute content2 ~size:1024 ~bits:30) v;
  Alcotest.(check int) "warm hit counted" 1
    (Sigcache.stats c).Sigcache.warm_hits;
  Alcotest.(check (list int)) "warm hit not re-persisted" [ 2048 ] !saves

(* ---- push direction: loopback, dedup, warm restart ---- *)

module Store = Fsync_store.Store

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let with_store_root f =
  let dir = Filename.temp_file "fsync_sstore" "" in
  Sys.remove dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let test_push_loopback () =
  (* Storeless daemon: every chunk is requested, the pushed tree
     replaces/extends the served collection. *)
  let served = mk_files 21 4 in
  let tree = mk_files 22 6 in
  let daemon = Daemon.create served in
  (match Loopback.run_pushes ~daemon [ tree ] with
  | [ r ] ->
      Alcotest.(check int) "all files pushed" 6
        r.Loopback.pusher.Pusher.files_pushed;
      Alcotest.(check int) "no store, everything uploaded"
        r.Loopback.pusher.Pusher.chunks_total
        r.Loopback.pusher.Pusher.chunks_sent
  | _ -> Alcotest.fail "one result expected");
  (* mk_files 22 6 covers every path of mk_files 21 4, so the daemon
     now serves exactly the pushed tree — visible to the next puller. *)
  (match Loopback.run_pulls ~daemon [ [] ] with
  | [ r ] -> check_files "pushed tree served" tree r.Loopback.files
  | _ -> Alcotest.fail "one result expected");
  let ds = Daemon.stats daemon in
  Alcotest.(check int) "both sessions completed" 2 ds.Daemon.completed;
  Alcotest.(check int) "none failed" 0 ds.Daemon.failed;
  Daemon.shutdown daemon

let overlap_trees seed =
  (* Two trees sharing > 50% of their content by byte volume. *)
  let rng = Prng.create (Int64.of_int seed) in
  let gen lines = Fsync_workload.Text_gen.c_like rng ~lines in
  let shared =
    List.init 6 (fun i -> (Printf.sprintf "shared/f%02d.txt" i, gen 120))
  in
  let uniq tag =
    List.init 2 (fun i -> (Printf.sprintf "%s/g%02d.txt" tag i, gen 100))
  in
  (shared @ uniq "a", shared @ uniq "b")

let push_two ~daemon tree_a tree_b =
  (* Sequential runs so the second push sees what the first stored. *)
  let first l = match l with [ r ] -> r | _ -> Alcotest.fail "one result" in
  let _ = first (Loopback.run_pushes ~daemon [ tree_a ]) in
  first (Loopback.run_pushes ~daemon [ tree_b ])

let test_push_dedup_two_clients () =
  let tree_a, tree_b = overlap_trees 33 in
  (* Baseline: no store, the second client re-uploads everything. *)
  let d0 = Daemon.create [] in
  let base = push_two ~daemon:d0 tree_a tree_b in
  Daemon.shutdown d0;
  Alcotest.(check int) "baseline uploads all chunks"
    base.Loopback.pusher.Pusher.chunks_total
    base.Loopback.pusher.Pusher.chunks_sent;
  with_store_root (fun root ->
      let store = Store.open_store root in
      let d1 = Daemon.create ~store [] in
      let dedup = push_two ~daemon:d1 tree_a tree_b in
      Daemon.shutdown d1;
      Alcotest.(check bool) "shared chunks skipped" true
        (dedup.Loopback.pusher.Pusher.chunks_sent
        < dedup.Loopback.pusher.Pusher.chunks_total);
      Alcotest.(check bool) "dedup bytes accounted" true
        (dedup.Loopback.pusher.Pusher.bytes_deduped > 0);
      (* The acceptance bar: the second client's wire bytes drop by at
         least 40% against the store-less daemon. *)
      let up = float_of_int dedup.Loopback.up_bytes in
      let base_up = float_of_int base.Loopback.up_bytes in
      if up > 0.6 *. base_up then
        Alcotest.failf "second push sent %.0f bytes, baseline %.0f (%.0f%%)"
          up base_up (100.0 *. up /. base_up);
      (* Both full trees are served back intact. *)
      (match Loopback.run_pulls ~daemon:d1 [ [] ] with
      | [ r ] ->
          check_files "merged collection served"
            (sorted tree_b
            @ List.filter (fun (p, _) -> not (List.mem_assoc p tree_b)) tree_a)
            r.Loopback.files
      | _ -> Alcotest.fail "one result expected");
      Store.close store)

let test_daemon_restart_warm () =
  let server_files = mk_files 41 10 in
  let client_files = mutate_some 41 server_files in
  with_store_root (fun root ->
      let misses_first =
        let store = Store.open_store root in
        let d = Daemon.create ~store server_files in
        (match Loopback.run_pulls ~daemon:d [ client_files ] with
        | [ r ] -> check_files "first pull converges" server_files r.Loopback.files
        | _ -> Alcotest.fail "one result expected");
        let s = Sigcache.stats (Daemon.cache d) in
        Daemon.shutdown d;
        Store.close store;
        s.Sigcache.misses
      in
      Alcotest.(check bool) "first run computed vectors" true
        (misses_first > 0);
      (* Kill/restart: a fresh store handle and daemon over the same
         root must warm-start from the persisted vectors. *)
      let store = Store.open_store root in
      let d = Daemon.create ~store server_files in
      Alcotest.(check int) "every vector reloaded" misses_first
        (Daemon.sigs_loaded d);
      (match Loopback.run_pulls ~daemon:d [ client_files ] with
      | [ r ] -> check_files "second pull converges" server_files r.Loopback.files
      | _ -> Alcotest.fail "one result expected");
      let c = Daemon.cache d in
      let s = Sigcache.stats c in
      Alcotest.(check int) "nothing recomputed" 0 s.Sigcache.misses;
      let rate = Sigcache.warm_hit_rate c in
      if rate < 0.9 then
        Alcotest.failf "warm hit rate %.2f < 0.9 (%d/%d)" rate
          s.Sigcache.warm_hits s.Sigcache.lookups;
      Daemon.shutdown d;
      Store.close store)

(* ---- resumable sessions, busy shedding, SIGKILL soak ---- *)

(* Drive puller<->session over an in-memory exchange; stop abruptly (a
   simulated client kill) once [abort_after] files completed.  Returns
   server-to-client payload bytes. *)
let pump ?(abort_after = max_int) session puller =
  let s2c = ref 0 in
  let q = Queue.create () in
  List.iter (fun f -> Queue.add f q) (Puller.start puller);
  (try
     while not (Queue.is_empty q || Puller.finished puller) do
       let frame = Queue.pop q in
       List.iter
         (fun r ->
           s2c := !s2c + String.length r;
           let completed =
             match Puller.resume_token puller with
             | Some t -> List.length t.Puller.rt_completed
             | None -> 0
           in
           if completed >= abort_after then raise Exit;
           List.iter (fun f -> Queue.add f q) (Puller.on_message puller r))
         (Session.on_message session frame)
     done
   with Exit -> ());
  !s2c

let test_resume_pull () =
  let server_files =
    List.init 12 (fun i ->
        ( Printf.sprintf "f%02d.txt" i,
          Fsync_workload.Text_gen.c_like
            (Prng.create (Int64.of_int (50 + i)))
            ~lines:60 ))
  in
  let mk_session () = Session.create ~cache:(Sigcache.create ()) server_files in
  (* Cold pull from nothing: the baseline payload. *)
  let cold_puller = Puller.create [] in
  let cold = pump (mk_session ()) cold_puller in
  Alcotest.(check bool) "cold pull finishes" true (Puller.finished cold_puller);
  (* Kill the client after 10 of 12 files, reconnect with the token. *)
  let p1 = Puller.create [] in
  let (_ : int) = pump ~abort_after:10 (mk_session ()) p1 in
  Alcotest.(check bool) "interrupted mid-session" false (Puller.finished p1);
  let token =
    match Puller.resume_token p1 with
    | Some t -> t
    | None -> Alcotest.fail "interrupted puller must yield a token"
  in
  Alcotest.(check int) "token carries completed files" 10
    (List.length token.Puller.rt_completed);
  let p2 = Puller.create ~resume:token [] in
  let s2 = mk_session () in
  let resumed = pump s2 p2 in
  Alcotest.(check bool) "resumed pull finishes" true (Puller.finished p2);
  check_files "resumed replica converges" server_files (Puller.result p2);
  Alcotest.(check int) "server skipped the completed jobs" 10
    (Session.stats s2).Session.resumed_jobs;
  Alcotest.(check int) "client accounted the skips" 10
    (Puller.stats p2).Puller.resumed_files;
  (* The acceptance bar: a resumed pull re-transfers at most 25% of the
     cold payload. *)
  if float_of_int resumed > 0.25 *. float_of_int cold then
    Alcotest.failf "resumed pull re-transferred %d of %d cold bytes (> 25%%)"
      resumed cold;
  (* A server whose collection moved on ignores the stale token: no
     skips, but the pull still converges. *)
  let changed =
    ("f00.txt", "entirely different contents") :: List.tl server_files
  in
  let s3 = Session.create ~cache:(Sigcache.create ()) changed in
  let p3 = Puller.create ~resume:token [] in
  let (_ : int) = pump s3 p3 in
  Alcotest.(check bool) "stale-token pull finishes" true (Puller.finished p3);
  check_files "stale token converges on the new tree" changed
    (Puller.result p3);
  Alcotest.(check int) "stale token skips nothing" 0
    (Session.stats s3).Session.resumed_jobs

let test_busy_shed () =
  (* max_sessions = 0: every connection is shed with a typed Busy. *)
  let config = { Daemon.default_config with Daemon.max_sessions = 0 } in
  with_forked_daemon ~config (mk_files 61 3) (fun port ->
      (match
         Pull.run ~attempts:1 ~host:"127.0.0.1" ~port ~idle_timeout_s:5.0 []
       with
      | _ -> Alcotest.fail "pull against a full daemon must raise Busy"
      | exception
          Fsync_core.Error.E (Fsync_core.Error.Busy { retry_after_s }) ->
          Alcotest.(check bool) "retry-after carried" true
            (retry_after_s > 0.0));
      (* A retrying push honours the server's retry-after between
         attempts before giving up with the same typed error. *)
      let t0 = Unix.gettimeofday () in
      match
        Push.run ~attempts:2 ~host:"127.0.0.1" ~port ~idle_timeout_s:5.0
          [ ("x.txt", "y") ]
      with
      | _ -> Alcotest.fail "push against a full daemon must raise Busy"
      | exception Fsync_core.Error.E (Fsync_core.Error.Busy _) ->
          let elapsed = Unix.gettimeofday () -. t0 in
          Alcotest.(check bool)
            (Printf.sprintf "slept retry-after between attempts (%.3fs)"
               elapsed)
            true
            (elapsed >= 0.3))

let fork_store_daemon ~root files =
  let store = Store.open_store root in
  let daemon = Daemon.create ~store files in
  let port = Daemon.listen daemon ~host:"127.0.0.1" ~port:0 in
  match Unix.fork () with
  | 0 ->
      Sys.set_signal Sys.sigterm
        (Sys.Signal_handle (fun _ -> Daemon.request_stop daemon));
      (match Daemon.run ~timeout_s:0.02 ~drain_s:1.0 daemon with
      | () -> ()
      | exception _ -> ());
      Unix._exit 0
  | pid ->
      (* The child owns the store from here; drop the parent's handle. *)
      Store.close store;
      (port, pid)

let test_sigkill_mid_push_soak () =
  let base = mk_files 71 4 in
  let tree = mk_files 72 10 in
  with_store_root (fun root ->
      (* SIGKILL the daemon at seeded instants mid-push; after every
         kill the store must reopen fsck-clean. *)
      List.iter
        (fun delay ->
          let port, pid = fork_store_daemon ~root base in
          let killer =
            match Unix.fork () with
            | 0 ->
                Unix.sleepf delay;
                (match Unix.kill pid Sys.sigkill with
                | () -> ()
                | exception Unix.Unix_error _ -> ());
                Unix._exit 0
            | kpid -> kpid
          in
          (match
             Push.run ~attempts:1 ~host:"127.0.0.1" ~port ~idle_timeout_s:2.0
               tree
           with
          | (_ : Push.outcome) -> () (* the push beat the killer: fine *)
          | exception Fsync_core.Error.E _ -> ()
          | exception Fsync_net.Fd_transport.Closed -> ()
          | exception Unix.Unix_error _ -> ());
          (match Unix.kill pid Sys.sigkill with
          | () -> ()
          | exception Unix.Unix_error _ -> ());
          ignore (Unix.waitpid [] pid);
          ignore (Unix.waitpid [] killer);
          let s = Store.open_store root in
          (match Store.fsck_errors (Store.fsck s) with
          | [] -> ()
          | errs ->
              Alcotest.failf "fsck after SIGKILL at +%.3fs: %d error(s)" delay
                (List.length errs));
          Store.close s)
        [ 0.005; 0.015; 0.03; 0.06 ];
      (* Weather cleared: push then pull must converge byte-identically
         (the pushed tree covers every base path). *)
      let port, pid = fork_store_daemon ~root base in
      Fun.protect
        ~finally:(fun () ->
          (match Unix.kill pid Sys.sigterm with
          | () -> ()
          | exception Unix.Unix_error _ -> ());
          ignore (Unix.waitpid [] pid))
        (fun () ->
          let (_ : Push.outcome) =
            Push.run ~host:"127.0.0.1" ~port ~idle_timeout_s:10.0 tree
          in
          let r = Pull.run ~host:"127.0.0.1" ~port ~idle_timeout_s:10.0 [] in
          check_files "post-crash push+pull converges" tree r.Pull.files))

(* ---- telemetry: trace propagation, admin plane, event log ---- *)

module Scope = Fsync_obs.Scope
module Registry = Fsync_obs.Registry
module Trace_id = Fsync_obs.Trace_id
module Json = Fsync_obs.Json

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec loop i =
    i + nn <= nh && (String.sub haystack i nn = needle || loop (i + 1))
  in
  nn = 0 || loop 0

let read_lines path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (if String.trim line = "" then acc else line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let test_hello_version_compat () =
  let files = mk_files 91 2 in
  let mk () = Session.create ~cache:(Sigcache.create ()) files in
  let hello v trace = Msg.encode ~config:cfg (Msg.Hello { version = v; trace; swarm = None }) in
  (* A v1 client sends no trace id.  The server accepts, answers with
     the client's own version (so the old equality check passes) and
     mints a trace id of its own. *)
  let s1 = mk () in
  (match Session.on_message s1 (hello 1 None) with
  | [ reply ] -> (
      match Msg.decode ~config:cfg reply with
      | Msg.Welcome { version; _ } ->
          Alcotest.(check int) "welcome echoes v1" 1 version
      | m -> Alcotest.failf "expected Welcome, got %s" (Msg.label m))
  | l -> Alcotest.failf "expected 1 reply, got %d" (List.length l));
  Alcotest.(check bool) "server minted an id" true
    (Session.trace_id s1 <> None);
  (* A v2 client's id is adopted verbatim. *)
  let id = Trace_id.mint () in
  let s2 = mk () in
  let (_ : string list) =
    Session.on_message s2 (hello Msg.version (Some (Trace_id.to_raw id)))
  in
  (match Session.trace_id s2 with
  | Some sid ->
      Alcotest.(check bool) "wire id adopted" true (Trace_id.equal id sid)
  | None -> Alcotest.fail "v2 hello left no trace id");
  (* Versions outside [min_version, version] are rejected as malformed. *)
  List.iter
    (fun v ->
      let s = mk () in
      match Session.on_message s (hello v None) with
      | exception Fsync_core.Error.E _ -> ()
      | _ -> Alcotest.failf "version %d accepted" v)
    [ 0; Msg.version + 1 ]

let test_trace_shared_id_and_coverage () =
  let server_files = mk_files 83 6 in
  let client_files = mutate_some 83 server_files in
  let creg = Registry.create () and sreg = Registry.create () in
  let tid = Trace_id.mint () in
  (* What Pull.run does for the client half; the server half happens
     inside the session when the Hello arrives. *)
  Registry.set_trace creg ~trace:(Trace_id.to_hex tid) ~role:"client";
  let session =
    Session.create
      ~trace:(Scope.of_registry sreg)
      ~cache:(Sigcache.create ()) server_files
  in
  let puller =
    Puller.create ~scope:(Scope.of_registry creg) ~trace_id:tid client_files
  in
  let (_ : int) = pump session puller in
  Alcotest.(check bool) "pull finished" true (Puller.finished puller);
  check_files "converged" server_files (Puller.result puller);
  (match Session.trace_id session with
  | Some sid ->
      Alcotest.(check bool) "server adopted the wire id" true
        (Trace_id.equal tid sid)
  | None -> Alcotest.fail "server has no trace id");
  (* Both streams merge into one session keyed by the shared id, with
     phase spans tiling the session span on both roles. *)
  let lines =
    List.filter
      (fun l -> String.trim l <> "")
      (String.split_on_char '\n'
         (Registry.to_jsonl creg ^ Registry.to_jsonl sreg))
  in
  let module R = Fsync_obs.Trace_report in
  match R.of_lines lines with
  | Error e -> Alcotest.failf "trace report: %s" e
  | Ok [ s ] ->
      Alcotest.(check string) "merged on the shared id"
        (Trace_id.to_hex tid) s.R.trace;
      Alcotest.(check (list string)) "both roles" [ "client"; "server" ]
        (List.sort compare s.R.roles);
      if s.R.coverage < 0.95 then
        Alcotest.failf "phase coverage %.3f < 0.95" s.R.coverage;
      List.iter
        (fun name ->
          Alcotest.(check bool) (name ^ " present") true
            (List.exists (fun p -> p.R.p_name = name) s.R.phases))
        [ "phase:metadata"; "phase:hash_rounds" ]
  | Ok l -> Alcotest.failf "expected 1 merged session, got %d" (List.length l)

let with_forked_admin_daemon ?config files f =
  let daemon = Daemon.create ?config files in
  let port = Daemon.listen daemon ~host:"127.0.0.1" ~port:0 in
  let admin_port = Daemon.admin_listen daemon ~host:"127.0.0.1" ~port:0 in
  match Unix.fork () with
  | 0 ->
      Sys.set_signal Sys.sigterm
        (Sys.Signal_handle (fun _ -> Daemon.request_stop daemon));
      (match Daemon.run ~timeout_s:0.02 ~drain_s:1.0 daemon with
      | () -> ()
      | exception _ -> ());
      Unix._exit 0
  | pid ->
      Fun.protect
        ~finally:(fun () ->
          (match Unix.kill pid Sys.sigterm with
          | () -> ()
          | exception Unix.Unix_error _ -> ());
          ignore (Unix.waitpid [] pid))
        (fun () -> f port admin_port)

let test_admin_socket_tcp () =
  let server_files = mk_files 71 5 in
  let client_files = mutate_some 71 server_files in
  with_forked_admin_daemon server_files (fun port admin_port ->
      let host = "127.0.0.1" in
      (* A well-formed scrape names the native daemon series. *)
      let metrics = Admin.metrics ~host ~port:admin_port () in
      List.iter
        (fun needle ->
          Alcotest.(check bool) ("scrape has " ^ needle) true
            (contains metrics needle))
        [
          "# TYPE fsync_sessions_active gauge";
          "fsync_sessions_accepted";
          "fsync_uptime_s";
        ];
      (* The status document is schema-tagged and structured. *)
      let doc = Admin.status ~host ~port:admin_port () in
      Alcotest.(check (option string)) "schema" (Some "fsyncd-status/1")
        (Option.bind (Json.member "schema" doc) Json.to_string_opt);
      Alcotest.(check bool) "sessions object present" true
        (Json.member "sessions" doc <> None);
      (* A hostile HTTP probe: "GET " reads as a ~1.2 GB frame header,
         which the framing layer rejects; the daemon must close only
         that one connection. *)
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, admin_port));
      let probe = "GET / HTTP/1.0\r\n\r\n" in
      let (_ : int) =
        Unix.write_substring fd probe 0 (String.length probe)
      in
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
      let buf = Bytes.create 64 in
      (match Unix.read fd buf 0 64 with
      | 0 -> ()
      | n -> Alcotest.failf "HTTP probe got %d reply bytes" n
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
          ());
      Unix.close fd;
      (* Data sessions never noticed: a pull still converges... *)
      let r = Pull.run ~host ~port ~idle_timeout_s:10.0 client_files in
      check_files "pull after probe converges" server_files r.Pull.files;
      (* ...and the daemon accounted exactly one hostile teardown. *)
      let doc2 = Admin.status ~host ~port:admin_port () in
      let admin = Option.value ~default:Json.Null (Json.member "admin" doc2) in
      Alcotest.(check (option int)) "one admin error" (Some 1)
        (Option.bind (Json.member "errors" admin) Json.to_int_opt))

let test_scrape_parity () =
  let server_files = mk_files 73 6 in
  let client_files = mutate_some 73 server_files in
  let run ~scrape =
    let daemon = Daemon.create server_files in
    let admin_port = Daemon.admin_listen daemon ~host:"127.0.0.1" ~port:0 in
    let afd =
      if not scrape then None
      else begin
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect fd
          (Unix.ADDR_INET (Unix.inet_addr_loopback, admin_port));
        (* A pending "metrics" frame, answered by the same select loop
           that is pumping the pull below — a scrape mid-session. *)
        let frame = "\000\000\000\007metrics" in
        let (_ : int) =
          Unix.write_substring fd frame 0 (String.length frame)
        in
        Some fd
      end
    in
    let result =
      match Loopback.run_pulls ~daemon [ client_files ] with
      | [ r ] -> r
      | _ -> Alcotest.fail "expected one pull result"
    in
    (match afd with
    | Some fd ->
        (* Let the loop flush the reply, then check the scrape got a
           real exposition back. *)
        for _ = 1 to 20 do
          Daemon.step ~timeout_s:0.0 daemon
        done;
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
        let buf = Bytes.create 65536 in
        let n = Unix.read fd buf 0 65536 in
        Alcotest.(check bool) "scrape replied" true (n > 4);
        Alcotest.(check bool) "reply is an exposition" true
          (contains (Bytes.sub_string buf 0 n) "fsync_sessions_accepted");
        Unix.close fd
    | None -> ());
    check_files "pull converges" server_files result.Loopback.files;
    Daemon.shutdown daemon;
    result
  in
  let plain = run ~scrape:false in
  let scraped = run ~scrape:true in
  (* The scrape perturbed nothing: byte-for-byte identical accounting. *)
  Alcotest.(check int) "c2s bytes identical" plain.Loopback.c2s_bytes
    scraped.Loopback.c2s_bytes;
  Alcotest.(check int) "s2c bytes identical" plain.Loopback.s2c_bytes
    scraped.Loopback.s2c_bytes;
  Alcotest.(check int) "roundtrips identical" plain.Loopback.roundtrips
    scraped.Loopback.roundtrips

let test_event_log_daemon_lifecycle () =
  let root = Filename.temp_file "fsync_evlog" "" in
  Unix.unlink root;
  Unix.mkdir root 0o700;
  Fun.protect
    ~finally:(fun () -> rm_rf root)
    (fun () ->
      let evpath = Filename.concat root "events.jsonl" in
      let trpath = Filename.concat root "trace.jsonl" in
      let server_files = mk_files 79 4 in
      let daemon = Daemon.create server_files in
      (* slow_s = 0: every session is "slow", so the threshold event is
         exercised deterministically. *)
      Daemon.set_event_log daemon ~slow_s:0.0 evpath;
      Daemon.set_trace_stream daemon trpath;
      (match Loopback.run_pulls ~daemon [ mutate_some 79 server_files ] with
      | [ r ] -> check_files "pull converges" server_files r.Loopback.files
      | _ -> Alcotest.fail "expected one result");
      (* run_pulls returns as soon as the puller is done; step until the
         daemon reaps the session and writes its end-of-life events. *)
      let rec settle n =
        if n > 0 && Daemon.active_sessions daemon > 0 then begin
          Daemon.step ~timeout_s:0.0 daemon;
          settle (n - 1)
        end
      in
      settle 100;
      Daemon.shutdown daemon;
      let events =
        List.map
          (fun l ->
            match Json.parse l with
            | Ok j -> j
            | Error e -> Alcotest.failf "bad event line %S: %s" l e)
          (read_lines evpath)
      in
      let kind j = Option.bind (Json.member "event" j) Json.to_string_opt in
      List.iter
        (fun k ->
          Alcotest.(check bool) (k ^ " logged") true
            (List.exists (fun j -> kind j = Some k) events))
        [ "session_start"; "slow_session"; "session_end"; "daemon_stop" ];
      let e =
        List.find (fun j -> kind j = Some "session_end") events
      in
      (match Option.bind (Json.member "trace" e) Json.to_string_opt with
      | Some hex ->
          Alcotest.(check int) "trace id is 32 hex chars" 32
            (String.length hex)
      | None -> Alcotest.fail "session_end without trace id");
      (match Json.member "ok" e with
      | Some (Json.Bool true) -> ()
      | _ -> Alcotest.fail "session_end not ok:true");
      Alcotest.(check bool) "session_end counts bytes" true
        (match Option.bind (Json.member "bytes_out" e) Json.to_int_opt with
        | Some n -> n > 0
        | None -> false);
      (* The per-session trace stream is a joinable server-side trace
         with near-total phase coverage. *)
      let module R = Fsync_obs.Trace_report in
      match R.of_lines (read_lines trpath) with
      | Error err -> Alcotest.failf "trace stream: %s" err
      | Ok [ s ] ->
          Alcotest.(check (list string)) "server role" [ "server" ]
            s.R.roles;
          if s.R.coverage < 0.95 then
            Alcotest.failf "server phase coverage %.3f < 0.95" s.R.coverage
      | Ok l ->
          Alcotest.failf "expected 1 traced session, got %d" (List.length l))

let test_event_log_rotation_and_faults () =
  let root = Filename.temp_file "fsync_evrot" "" in
  Unix.unlink root;
  Unix.mkdir root 0o700;
  Fun.protect
    ~finally:(fun () -> rm_rf root)
    (fun () ->
      let path = Filename.concat root "ev.jsonl" in
      (* Size-based rotation: a cap of 256 bytes forces FILE -> FILE.1
         and both generations hold only whole lines. *)
      let log = Event_log.create ~max_bytes:256 path in
      for i = 1 to 40 do
        Event_log.write log
          (Json.Obj [ ("event", Json.String "tick"); ("i", Json.Int i) ])
      done;
      Event_log.close log;
      Alcotest.(check int) "no errors on the real fs" 0
        (Event_log.errors log);
      Alcotest.(check bool) "rotated generation exists" true
        (Sys.file_exists (path ^ ".1"));
      List.iter
        (fun p ->
          List.iter
            (fun l ->
              match Json.parse l with
              | Ok _ -> ()
              | Error e -> Alcotest.failf "%s: torn line %S: %s" p l e)
            (read_lines p))
        [ path; path ^ ".1" ];
      (* Under an injected always-EIO disk the sink absorbs every
         failure: errors are counted, nothing raises, and the daemon
         would keep running. *)
      let fio, _stats =
        Fsync_store.Fault_io.wrap ~seed:7
          { Fsync_store.Fault_io.none with Fsync_store.Fault_io.p_eio = 1.0 }
      in
      let flog =
        Event_log.create ~io:fio (Filename.concat root "faulty.jsonl")
      in
      for i = 1 to 5 do
        Event_log.write flog
          (Json.Obj [ ("event", Json.String "tick"); ("i", Json.Int i) ])
      done;
      Event_log.close flog;
      Alcotest.(check bool) "faulted writes counted" true
        (Event_log.errors flog > 0))

let suite =
  [
    ("msg roundtrip", `Quick, test_msg_roundtrip);
    ("msg malformed", `Quick, test_msg_malformed);
    ("bitmap roundtrip", `Quick, test_bitmap_roundtrip);
    ("sigcache hits and eviction", `Quick, test_sigcache_hits_and_eviction);
    ("in-memory sync", `Quick, test_in_memory_sync);
    ("in-memory identical and empty", `Quick, test_in_memory_identical_and_empty);
    ("sigcache across clients", `Quick, test_sigcache_across_clients);
    ("loopback eight clients", `Quick, test_loopback_eight_clients);
    ("loopback matches in-memory", `Quick, test_loopback_matches_in_memory);
    ("timeout teardown", `Quick, test_timeout_teardown);
    ("protocol violation teardown", `Quick, test_protocol_violation_teardown);
    ("conn backpressure", `Quick, test_conn_backpressure);
    ("oversized frame teardown", `Quick, test_oversized_frame_teardown);
    ("conn peer gone", `Quick, test_conn_peer_gone);
    ("daemon peer gone accounting", `Quick, test_daemon_peer_gone_accounting);
    ("conn chunked frames", `Quick, test_conn_chunked_frames);
    ("tcp pull with faults", `Quick, test_tcp_pull);
    ("sigcache lookup stats", `Quick, test_sigcache_lookup_stats);
    ("push loopback", `Quick, test_push_loopback);
    ("push dedup two clients", `Quick, test_push_dedup_two_clients);
    ("daemon restart warm", `Quick, test_daemon_restart_warm);
    ("resume pull", `Quick, test_resume_pull);
    ("busy shed", `Quick, test_busy_shed);
    ("sigkill mid-push soak", `Quick, test_sigkill_mid_push_soak);
    ("hello version compat", `Quick, test_hello_version_compat);
    ("trace shared id and coverage", `Quick, test_trace_shared_id_and_coverage);
    ("admin socket over tcp", `Quick, test_admin_socket_tcp);
    ("scrape parity", `Quick, test_scrape_parity);
    ("event log daemon lifecycle", `Quick, test_event_log_daemon_lifecycle);
    ("event log rotation and faults", `Quick, test_event_log_rotation_and_faults);
  ]
