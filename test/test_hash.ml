(* Tests for Fsync_hash: MD5/MD4 vectors, Adler rolling, the decomposable
   polynomial hash's algebraic identities. *)

open Fsync_hash
module Bytes_util = Fsync_util.Bytes_util
module Prng = Fsync_util.Prng

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ---- MD5 ---- *)

let md5_vectors =
  [
    ("", "d41d8cd98f00b204e9800998ecf8427e");
    ("a", "0cc175b9c0f1b6a831c399e269772661");
    ("abc", "900150983cd24fb0d6963f7d28e17f72");
    ("message digest", "f96b697d7cb7938d525a2f31aaf161d0");
    ("abcdefghijklmnopqrstuvwxyz", "c3fcd3d76192e4007dfb496cca67e13b");
    ( "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
      "d174ab98d277d9f5a5611c2c9f419d9f" );
    ( "12345678901234567890123456789012345678901234567890123456789012345678901234567890",
      "57edf4a22be3c955ac49da2e2107b67a" );
  ]

let test_md5_vectors () =
  List.iter
    (fun (input, expect) ->
      Alcotest.(check string) ("md5 " ^ input) expect (Md5.hex input))
    md5_vectors

let test_md5_against_stdlib () =
  let rng = Prng.create 11L in
  for _ = 1 to 20 do
    let s = Bytes.to_string (Prng.bytes rng (Prng.int rng 5000)) in
    Alcotest.(check string) "matches Digest"
      (Digest.to_hex (Digest.string s))
      (Bytes_util.to_hex (Md5.digest s))
  done

let test_md5_incremental () =
  (* Feeding in odd-sized pieces must agree with one-shot digests. *)
  let s = String.init 10_000 (fun i -> Char.chr ((i * 131) land 0xff)) in
  let ctx = Md5.init () in
  let rec feed pos step =
    if pos < String.length s then begin
      let len = min step (String.length s - pos) in
      Md5.feed ctx s ~pos ~len;
      feed (pos + len) ((step * 2 mod 97) + 1)
    end
  in
  feed 0 1;
  Alcotest.(check string) "incremental" (Md5.digest s) (Md5.finalize ctx)

let test_md5_sub () =
  let s = "xxhelloyy" in
  Alcotest.(check string) "digest_sub" (Md5.digest "hello")
    (Md5.digest_sub s ~pos:2 ~len:5)

let test_md5_truncated () =
  let t = Md5.truncated "abc" ~bits:16 in
  Alcotest.(check bool) "in range" true (t >= 0 && t < 65536);
  let dg = Md5.digest "abc" in
  Alcotest.(check int) "consistent with digest" t (Md5.truncated_digest dg ~bits:16);
  Alcotest.(check int) "0 bits" 0 (Md5.truncated "abc" ~bits:0)

let test_md5_feed_bounds () =
  let ctx = Md5.init () in
  Alcotest.check_raises "bad range" (Invalid_argument "Md5.feed: bad range")
    (fun () -> Md5.feed ctx "abc" ~pos:1 ~len:5)

(* ---- MD4 ---- *)

let md4_vectors =
  [
    ("", "31d6cfe0d16ae931b73c59d7e0c089c0");
    ("a", "bde52cb31de33e46245e05fbdbd6fb24");
    ("abc", "a448017aaf21d8525fc10ae87aa6729d");
    ("message digest", "d9130a8164549fe818874806e1c7014b");
    ("abcdefghijklmnopqrstuvwxyz", "d79e1c308aa5bbcdeea8ed63df412da9");
    ( "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
      "043f8582f241db351ce627e153e7f0e4" );
    ( "12345678901234567890123456789012345678901234567890123456789012345678901234567890",
      "e33b4ddc9c38f2199c3e7b164fcc0536" );
  ]

let test_md4_vectors () =
  List.iter
    (fun (input, expect) ->
      Alcotest.(check string) ("md4 " ^ input) expect (Md4.hex input))
    md4_vectors

let test_md4_sub_truncated () =
  Alcotest.(check string) "sub" (Md4.digest "lo wor")
    (Md4.digest_sub "hello world" ~pos:3 ~len:6);
  Alcotest.(check int) "trunc len" 2
    (String.length (Md4.truncated_sub "hello" ~pos:0 ~len:5 ~bytes_used:2))

(* ---- Adler32 ---- *)

let test_adler_known () =
  (* Adler-32 of "Wikipedia" is 0x11E60398 (well-known example). *)
  Alcotest.(check int) "wikipedia" 0x11E60398 (Adler32.digest "Wikipedia")

let adler_roll_prop =
  qtest "adler32: roll = recompute"
    QCheck2.Gen.(pair (string_size ~gen:char (int_range 80 300)) (int_range 1 64))
    (fun (s, wl) ->
      let n = String.length s in
      let w = min wl (n - 1) in
      let a = ref (Adler32.of_sub s ~pos:0 ~len:w) in
      let ok = ref true in
      for p = 1 to n - w do
        a := Adler32.roll !a ~out:s.[p - 1] ~in_:s.[p + w - 1];
        if Adler32.value !a <> Adler32.value (Adler32.of_sub s ~pos:p ~len:w) then
          ok := false
      done;
      !ok)

let test_adler_value_packing () =
  let t = Adler32.of_sub "abc" ~pos:0 ~len:3 in
  Alcotest.(check bool) "32-bit" true (Adler32.value t >= 0 && Adler32.value t < 1 lsl 32);
  Alcotest.(check bool) "equal_value" true (Adler32.equal_value t t)

(* ---- Poly_hash ---- *)

let string_gen = QCheck2.Gen.(string_size ~gen:char (int_range 2 400))

let poly_combine_prop =
  qtest "poly: combine(left,right) = whole" string_gen (fun s ->
      let n = String.length s in
      let m = n / 2 in
      let whole = Poly_hash.hash_sub s ~pos:0 ~len:n in
      let left = Poly_hash.hash_sub s ~pos:0 ~len:m in
      let right = Poly_hash.hash_sub s ~pos:m ~len:(n - m) in
      Poly_hash.combine ~left ~right ~right_len:(n - m) = whole)

let poly_derive_prop =
  qtest "poly: derive siblings" string_gen (fun s ->
      let n = String.length s in
      let m = n / 2 in
      let parent = Poly_hash.hash_sub s ~pos:0 ~len:n in
      let left = Poly_hash.hash_sub s ~pos:0 ~len:m in
      let right = Poly_hash.hash_sub s ~pos:m ~len:(n - m) in
      Poly_hash.derive_right ~parent ~left ~right_len:(n - m) = right
      && Poly_hash.derive_left ~parent ~right ~right_len:(n - m) = left)

let poly_bit_prefix_prop =
  qtest "poly: bit-prefix decomposability"
    QCheck2.Gen.(pair string_gen (int_range 1 30))
    (fun (s, bits) ->
      let n = String.length s in
      let m = n / 2 in
      let parent = Poly_hash.hash_sub s ~pos:0 ~len:n in
      let left = Poly_hash.hash_sub s ~pos:0 ~len:m in
      let right = Poly_hash.hash_sub s ~pos:m ~len:(n - m) in
      Poly_hash.derive_right_trunc
        ~parent:(Poly_hash.truncate parent ~bits)
        ~left:(Poly_hash.truncate left ~bits)
        ~right_len:(n - m) ~bits
      = Poly_hash.truncate right ~bits
      && Poly_hash.derive_left_trunc
           ~parent:(Poly_hash.truncate parent ~bits)
           ~right:(Poly_hash.truncate right ~bits)
           ~right_len:(n - m) ~bits
         = Poly_hash.truncate left ~bits)

let poly_roller_prop =
  qtest "poly: roller = recompute"
    QCheck2.Gen.(pair (string_size ~gen:char (int_range 50 300)) (int_range 1 40))
    (fun (s, wl) ->
      let n = String.length s in
      let w = min wl (n - 1) in
      let r = Poly_hash.Roller.create s ~window:w ~pos:0 in
      let ok = ref true in
      while Poly_hash.Roller.can_roll r do
        Poly_hash.Roller.roll r;
        let p = Poly_hash.Roller.pos r in
        if Poly_hash.Roller.value r <> Poly_hash.hash_sub s ~pos:p ~len:w then
          ok := false
      done;
      !ok)

let test_poly_position_independence () =
  (* The same content at different offsets hashes identically. *)
  let s = "abcXYZabc" in
  Alcotest.(check bool) "same content same hash" true
    (Poly_hash.hash_sub s ~pos:0 ~len:3 = Poly_hash.hash_sub s ~pos:6 ~len:3)

let test_poly_permutation_sensitive () =
  (* Unlike a plain Adler sum, permuted strings hash differently. *)
  Alcotest.(check bool) "ab <> ba" true
    (Poly_hash.hash_sub "ab" ~pos:0 ~len:2 <> Poly_hash.hash_sub "ba" ~pos:0 ~len:2)

let test_poly_pow_inverse () =
  for n = 0 to 20 do
    Alcotest.(check int) "pow * pow_inv = 1" 1
      (Poly_hash.pow n * Poly_hash.pow_inv n)
  done

let window_hashes_prop =
  qtest "poly: window_hashes = per-position truncation"
    QCheck2.Gen.(pair (string_size ~gen:char (int_range 20 300)) (int_range 1 32))
    (fun (s, wl) ->
      let w = min wl (String.length s - 1) in
      let bits = 19 in
      let hs = Poly_hash.window_hashes s ~window:w ~bits in
      Array.length hs = String.length s - w + 1
      && Array.for_all Fun.id
           (Array.mapi
              (fun p h ->
                h = Poly_hash.truncate (Poly_hash.hash_sub s ~pos:p ~len:w) ~bits)
              hs))

let test_poly_bounds () =
  Alcotest.check_raises "bad range" (Invalid_argument "Poly_hash.hash_sub: bad range")
    (fun () -> ignore (Poly_hash.hash_sub "abc" ~pos:0 ~len:4));
  Alcotest.check_raises "roll at end" (Invalid_argument "Poly_hash.Roller.roll: at end")
    (fun () ->
      let r = Poly_hash.Roller.create "abc" ~window:3 ~pos:0 in
      Poly_hash.Roller.roll r)

let test_poly_collision_rate () =
  (* Truncated to k bits, distinct random 16-byte strings should collide at
     roughly 2^-k; sanity-check it is not catastrophically worse. *)
  let rng = Prng.create 123L in
  let bits = 16 in
  let n = 2000 in
  let seen = Hashtbl.create n in
  let collisions = ref 0 in
  for _ = 1 to n do
    let s = Bytes.to_string (Prng.bytes rng 16) in
    let h = Poly_hash.truncate (Poly_hash.hash_sub s ~pos:0 ~len:16) ~bits in
    if Hashtbl.mem seen h then incr collisions else Hashtbl.replace seen h ()
  done;
  (* Expected birthday collisions: ~ n^2 / 2^(bits+1) = ~30.  Allow 4x. *)
  if !collisions > 120 then
    Alcotest.failf "too many collisions: %d" !collisions

(* ---- Fingerprint ---- *)

let test_fingerprint () =
  let fp = Fingerprint.of_string "hello" in
  Alcotest.(check bool) "equal" true (Fingerprint.equal fp (Fingerprint.of_string "hello"));
  Alcotest.(check bool) "not equal" false (Fingerprint.equal fp (Fingerprint.of_string "hellp"));
  Alcotest.(check int) "raw size" 16 (String.length (Fingerprint.to_raw fp));
  Alcotest.(check bool) "raw roundtrip" true
    (Fingerprint.equal fp (Fingerprint.of_raw (Fingerprint.to_raw fp)));
  Alcotest.check_raises "bad raw"
    (Invalid_argument "Fingerprint.of_raw: expected 16 bytes") (fun () ->
      ignore (Fingerprint.of_raw "short"))

let suite =
  [
    ("md5 RFC vectors", `Quick, test_md5_vectors);
    ("md5 vs stdlib", `Quick, test_md5_against_stdlib);
    ("md5 incremental", `Quick, test_md5_incremental);
    ("md5 digest_sub", `Quick, test_md5_sub);
    ("md5 truncated", `Quick, test_md5_truncated);
    ("md5 feed bounds", `Quick, test_md5_feed_bounds);
    ("md4 RFC vectors", `Quick, test_md4_vectors);
    ("md4 sub/truncated", `Quick, test_md4_sub_truncated);
    ("adler known value", `Quick, test_adler_known);
    adler_roll_prop;
    ("adler packing", `Quick, test_adler_value_packing);
    poly_combine_prop;
    poly_derive_prop;
    poly_bit_prefix_prop;
    poly_roller_prop;
    ("poly position independence", `Quick, test_poly_position_independence);
    ("poly permutation sensitive", `Quick, test_poly_permutation_sensitive);
    ("poly pow inverse", `Quick, test_poly_pow_inverse);
    window_hashes_prop;
    ("poly bounds", `Quick, test_poly_bounds);
    ("poly collision rate", `Quick, test_poly_collision_rate);
    ("fingerprint", `Quick, test_fingerprint);
  ]
