let () =
  Alcotest.run "fsync"
    [
      ("util", Test_util.suite);
      ("hash", Test_hash.suite);
      ("compress", Test_compress.suite);
      ("delta", Test_delta.suite);
      ("rsync", Test_rsync.suite);
      ("net", Test_net.suite);
      ("obs", Test_obs.suite);
      ("resilience", Test_resilience.suite);
      ("core", Test_core.suite);
      ("collection", Test_collection.suite);
      ("reconcile", Test_reconcile.suite);
      ("extensions", Test_extensions.suite);
      ("workload", Test_workload.suite);
      ("server", Test_server.suite);
      ("store", Test_store.suite);
      ("swarm", Test_swarm.suite);
    ]
