(* The robustness stack: CRC32, fault injection, the framing session
   layer, typed decode errors under fuzzed input, and the resilient
   collection driver — including the ≥200-schedule soak the design
   demands: every run ends with an exact reconstruction or a clean typed
   error, never an escaped exception and never silent corruption. *)

open Fsync_net
module Crc32 = Fsync_util.Crc32
module Prng = Fsync_util.Prng
module Wire = Fsync_core.Wire
module Error = Fsync_core.Error
module Snapshot = Fsync_collection.Snapshot
module Driver = Fsync_collection.Driver

let prop ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ---- CRC32 ---- *)

let test_crc32_vectors () =
  (* The standard check value. *)
  Alcotest.(check int) "123456789" 0xCBF43926 (Crc32.string "123456789");
  Alcotest.(check int) "empty" 0 (Crc32.string "");
  (* Incremental chaining equals the one-shot digest. *)
  let a = "hello, " and b = "world" in
  Alcotest.(check int) "chained"
    (Crc32.string (a ^ b))
    (Crc32.update (Crc32.update 0 a ~pos:0 ~len:(String.length a)) b ~pos:0
       ~len:(String.length b));
  let c = Crc32.string "some frame payload" in
  Alcotest.(check int) "le round-trip" c
    (Crc32.of_bytes_le (Crc32.to_bytes_le c) ~pos:0)

let crc32_detects =
  prop ~count:300 "crc32 detects bit flips"
    QCheck2.Gen.(pair (string_size ~gen:char (int_range 1 200)) (int_range 0 10_000))
    (fun (s, r) ->
      let bit = r mod (8 * String.length s) in
      let b = Bytes.of_string s in
      Bytes.set b (bit / 8)
        (Char.chr (Char.code (Bytes.get b (bit / 8)) lxor (1 lsl (bit mod 8))));
      Crc32.string s <> Crc32.string (Bytes.to_string b))

(* ---- fault injection ---- *)

let spec_probs d c t u =
  { Fault.none with p_drop = d; p_corrupt = c; p_truncate = t; p_duplicate = u }

let test_fault_deterministic () =
  let run () =
    let ch = Channel.create () in
    let f = Fault.attach ~seed:42 ch (spec_probs 0.2 0.2 0.1 0.1) in
    let delivered = ref [] in
    for i = 1 to 200 do
      Channel.send ch Channel.Client_to_server (Printf.sprintf "msg-%03d" i);
      match Channel.recv_opt ch Channel.Client_to_server with
      | Some m -> delivered := m :: !delivered
      | None -> ()
    done;
    let st = Fault.stats f in
    Fault.detach f;
    (!delivered, st)
  in
  let d1, s1 = run () and d2, s2 = run () in
  Alcotest.(check bool) "same deliveries" true (d1 = d2);
  Alcotest.(check bool) "same stats" true (s1 = s2);
  Alcotest.(check bool) "faults occurred" true
    (s1.Fault.dropped > 0 && s1.Fault.corrupted > 0)

let test_fault_drop_charges_bytes () =
  let ch = Channel.create () in
  let f = Fault.attach ~seed:7 ch { Fault.none with p_drop = 1.0 } in
  Channel.send ch Channel.Client_to_server "twelve bytes";
  Alcotest.(check (option string)) "lost" None
    (Channel.recv_opt ch Channel.Client_to_server);
  Alcotest.(check int) "bytes still charged" 12
    (Channel.bytes ch Channel.Client_to_server);
  Fault.detach f

let test_fault_disconnect_after () =
  let ch = Channel.create () in
  let f =
    Fault.attach ~seed:1 ch
      { Fault.none with disconnect_after = Some 3; max_disconnects = 1 }
  in
  Channel.send ch Channel.Client_to_server "one";
  Channel.send ch Channel.Server_to_client "two";
  (match Channel.send ch Channel.Client_to_server "three" with
  | () -> Alcotest.fail "expected a disconnect on the 3rd transmission"
  | exception Fault.Disconnected _ -> ());
  Alcotest.(check bool) "disconnected" false (Fault.connected f);
  (* Every send fails until reconnect. *)
  (match Channel.send ch Channel.Client_to_server "again" with
  | () -> Alcotest.fail "still disconnected"
  | exception Fault.Disconnected _ -> ());
  Fault.reconnect f;
  Channel.send ch Channel.Client_to_server "after";
  Alcotest.(check bool) "delivered after reconnect" true
    (Channel.recv_opt ch Channel.Client_to_server <> None);
  Fault.detach f

let test_fault_parse () =
  (match Fault.parse "drop=0.02,corrupt=0.01,disc=0.001" with
  | Ok s ->
      Alcotest.(check (float 1e-9)) "drop" 0.02 s.Fault.p_drop;
      Alcotest.(check (float 1e-9)) "corrupt" 0.01 s.Fault.p_corrupt;
      Alcotest.(check (float 1e-9)) "disc" 0.001 s.Fault.p_disconnect;
      Alcotest.(check bool) "disc budget implied" true (s.Fault.max_disconnects > 0)
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (match Fault.parse "dirty" with
  | Ok s -> Alcotest.(check bool) "dirty preset" true (s = Fault.dirty)
  | Error e -> Alcotest.failf "dirty failed: %s" e);
  (match Fault.parse "drop=2.0" with
  | Ok _ -> Alcotest.fail "out-of-range probability accepted"
  | Error _ -> ());
  (match Fault.parse "bogus=1" with
  | Ok _ -> Alcotest.fail "unknown key accepted"
  | Error _ -> ());
  (* Round-trip through the printer. *)
  match Fault.parse (Fault.to_string Fault.dirty) with
  | Ok s -> Alcotest.(check bool) "to_string round-trip" true (s = Fault.dirty)
  | Error e -> Alcotest.failf "round-trip failed: %s" e

(* ---- framing ---- *)

let test_frame_transparent () =
  let ch = Channel.create () in
  let f = Frame.attach ch in
  let payloads = [ "alpha"; ""; String.make 5000 'x'; "omega" ] in
  List.iter (fun p -> Channel.send ch Channel.Client_to_server p) payloads;
  let got =
    List.map
      (fun _ ->
        match Channel.recv_opt ch Channel.Client_to_server with
        | Some m -> m
        | None -> Alcotest.fail "frame lost on a clean link")
      payloads
  in
  Alcotest.(check (list string)) "payloads unchanged" payloads got;
  let st = Frame.stats f in
  Alcotest.(check int) "no retransmits" 0 st.Frame.retransmits;
  Alcotest.(check bool) "overhead accounted" true (st.Frame.overhead_bytes > 0);
  Alcotest.(check int) "channel sees payload + overhead"
    (List.fold_left (fun a p -> a + String.length p) 0 payloads
    + st.Frame.overhead_bytes)
    (Channel.bytes ch Channel.Client_to_server);
  Frame.detach f

let test_frame_survives_corruption () =
  let ch = Channel.create () in
  let fault = Fault.attach ~seed:11 ch (spec_probs 0.15 0.15 0.1 0.1) in
  let frame = Frame.attach ch in
  let n = 300 in
  let lost = ref 0 in
  for i = 1 to n do
    let payload = Printf.sprintf "payload-%04d:%s" i (String.make (i mod 97) 'q') in
    Channel.send ch Channel.Client_to_server payload;
    match Channel.recv_opt ch Channel.Client_to_server with
    | Some m ->
        Alcotest.(check string) (Printf.sprintf "frame %d intact" i) payload m
    | None -> incr lost
  done;
  let st = Frame.stats frame in
  Alcotest.(check int) "nothing lost" 0 !lost;
  Alcotest.(check bool) "retransmissions happened" true (st.Frame.retransmits > 0);
  Alcotest.(check bool) "bad frames detected" true (st.Frame.bad_frames > 0);
  Frame.detach frame;
  Fault.detach fault

let test_frame_retry_exhaustion () =
  let ch = Channel.create () in
  let fault = Fault.attach ~seed:3 ch { Fault.none with p_drop = 1.0 } in
  let frame = Frame.attach ~config:{ Frame.default_config with max_retries = 4 } ch in
  Channel.send ch Channel.Client_to_server "doomed";
  (match Channel.recv_opt ch Channel.Client_to_server with
  | _ -> Alcotest.fail "expected retry exhaustion"
  | exception Frame.Failed (Frame.Retry_exhausted r) ->
      Alcotest.(check int) "attempts" 4 r.attempts);
  (* [Error.guard] turns the session-layer failure into a typed error. *)
  Channel.send ch Channel.Client_to_server "doomed too";
  (match Error.guard (fun () -> Channel.recv_opt ch Channel.Client_to_server) with
  | Error (Error.Retry_exhausted _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Error.to_string e)
  | Ok _ -> Alcotest.fail "expected retry exhaustion");
  Frame.detach frame;
  Fault.detach fault

let test_frame_resync () =
  let ch = Channel.create () in
  let frame = Frame.attach ch in
  (* An abandoned exchange leaves frames in flight. *)
  Channel.send ch Channel.Client_to_server "stale-1";
  Channel.send ch Channel.Client_to_server "stale-2";
  Frame.resync frame;
  Alcotest.(check (option string)) "queue drained" None
    (Channel.recv_opt ch Channel.Client_to_server);
  Channel.send ch Channel.Client_to_server "fresh";
  Alcotest.(check (option string)) "fresh traffic flows" (Some "fresh")
    (Channel.recv_opt ch Channel.Client_to_server);
  Frame.detach frame

(* ---- decoder fuzz: typed errors only ---- *)

exception Escaped of string

(* Run a decoder on hostile bytes: success and typed errors are both
   fine; any other exception is a hardening bug. *)
let contained f =
  match Error.guard f with
  | Ok _ | Error _ -> true
  | exception e -> raise (Escaped (Printexc.to_string e))

let hostile_bytes =
  QCheck2.Gen.(string_size ~gen:char (int_range 0 400))

let wire_fuzz_random =
  prop ~count:500 "wire readers contain random bytes" hostile_bytes (fun s ->
      contained (fun () ->
          let r = Wire.unpack s in
          let _ = Wire.get_varint r in
          let _ = Wire.get_string r in
          let _ = Wire.get_bitmap r ~n:32 in
          Wire.get_hash r ~width:24)
      && contained (fun () -> Wire.unpack ~compress:true s)
      && contained (fun () -> Wire.get_string (Wire.unpack s)))

let wire_fuzz_mangled =
  prop ~count:500 "wire readers contain mangled valid messages"
    QCheck2.Gen.(triple (string_size ~gen:char (int_range 0 120)) (int_range 0 7) (int_range 0 10_000))
    (fun (payload, kind, r) ->
      let msg =
        Wire.pack ~compress:true (fun w ->
            Wire.put_varint w (String.length payload);
            Wire.put_string w payload;
            Wire.put_bitmap w [ true; false; true; true ];
            Wire.put_hash w 0x1234 ~width:20)
      in
      let mangled =
        let n = String.length msg in
        match kind with
        | 0 -> String.sub msg 0 (r mod (n + 1)) (* truncate *)
        | 1 ->
            let b = Bytes.of_string msg in
            let bit = r mod (8 * n) in
            Bytes.set b (bit / 8)
              (Char.chr
                 (Char.code (Bytes.get b (bit / 8)) lxor (1 lsl (bit mod 8))));
            Bytes.to_string b
        | 2 -> msg ^ "\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff"
        | 3 -> String.make 1 '\001' ^ String.sub msg 0 (r mod (n + 1))
        | _ -> msg
      in
      contained (fun () ->
          let rd = Wire.unpack ~compress:true mangled in
          let n = Wire.get_varint rd in
          let s = Wire.get_string rd in
          ignore (n, s);
          let _ = Wire.get_bitmap rd ~n:4 in
          Wire.get_hash rd ~width:20))

let varint_overlong () =
  (* Ten continuation septets cannot encode an OCaml int: the reader
     must stop with a typed error instead of shifting past the word. *)
  let evil =
    Wire.unpack (String.concat "" (List.init 10 (fun _ -> "\xff")))
  in
  match Wire.get_varint evil with
  | _ -> Alcotest.fail "overlong varint accepted"
  | exception Error.E (Error.Limit_exceeded _) -> ()

(* Recon over an actively hostile link (no framing): the result must be
   a value or a typed error; correctness under corruption is the
   driver's job, non-crashing decode is Recon's. *)
let recon_fuzz =
  prop ~count:120 "recon decoding contains a corrupting link"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Prng.create (Int64.of_int (seed + 77)) in
      let files n =
        List.init n (fun i ->
            ( Printf.sprintf "f%02d" i,
              Bytes.to_string (Prng.bytes rng (1 + Prng.int rng 40)) ))
      in
      let client = Fsync_reconcile.Merkle.of_files (files 12) in
      let server = Fsync_reconcile.Merkle.of_files (files 12) in
      let ch = Channel.create () in
      let fault = Fault.attach ~seed ch (spec_probs 0.1 0.25 0.2 0.1) in
      let ok =
        match Fsync_reconcile.Recon.run_result ~channel:ch ~client ~server () with
        | Ok _ | Error _ -> true
        | exception e -> raise (Escaped (Printexc.to_string e))
      in
      Fault.detach fault;
      ok)

(* Protocol endpoints over a corrupting link.  Bare link: the protocol
   cannot promise exactness (its own verdict messages can be corrupted —
   the driver's per-file fingerprints exist for that), but it must
   contain every decode failure as a typed error.  Framed link: CRC +
   retransmit hand the protocol clean messages, so a successful run
   must have reconstructed the file exactly. *)
let protocol_fuzz_files seed =
  let rng = Prng.create (Int64.of_int (seed + 1234)) in
  let old_file = Bytes.to_string (Prng.bytes rng 3000) in
  let new_file =
    let b = Bytes.of_string old_file in
    Bytes.blit (Prng.bytes rng 100) 0 b (Prng.int rng 2900) 100;
    Bytes.to_string b
  in
  (old_file, new_file)

let protocol_fuzz_bare =
  prop ~count:120 "protocol decoding contains a corrupting link"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let old_file, new_file = protocol_fuzz_files seed in
      let ch = Channel.create () in
      let fault = Fault.attach ~seed ch (spec_probs 0.05 0.15 0.1 0.05) in
      let ok =
        match
          Fsync_core.Protocol.run_result ~channel:ch
            ~config:Fsync_core.Config.tuned ~old_file new_file
        with
        | Ok _ | Error _ -> true
        | exception e -> raise (Escaped (Printexc.to_string e))
      in
      Fault.detach fault;
      ok)

let protocol_fuzz_framed =
  prop ~count:60 "protocol over framed corrupting link is exact"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let old_file, new_file = protocol_fuzz_files seed in
      let ch = Channel.create () in
      let fault = Fault.attach ~seed ch (spec_probs 0.05 0.1 0.05 0.05) in
      let frame = Frame.attach ch in
      let ok =
        match
          Fsync_core.Protocol.run_result ~channel:ch
            ~config:Fsync_core.Config.tuned ~old_file new_file
        with
        | Ok r -> String.equal r.Fsync_core.Protocol.reconstructed new_file
        | Error _ -> true (* retry budget exhausted: a clean typed failure *)
        | exception e -> raise (Escaped (Printexc.to_string e))
      in
      Frame.detach frame;
      Fault.detach fault;
      ok)

(* ---- resilient driver ---- *)

let mk_collections rng n =
  let base =
    List.init n (fun i ->
        let chunk = Bytes.to_string (Prng.bytes rng 64) in
        let reps = 4 + Prng.int rng 30 in
        let b = Buffer.create (64 * reps) in
        for _ = 1 to reps do
          Buffer.add_string b chunk;
          Buffer.add_string b (Bytes.to_string (Prng.bytes rng 16))
        done;
        (Printf.sprintf "d%d/file%02d.dat" (i mod 3) i, Buffer.contents b))
  in
  let edit content =
    let b = Bytes.of_string content in
    let n = Bytes.length b in
    for _ = 1 to 1 + Prng.int rng 3 do
      let off = Prng.int rng n in
      let len = min (1 + Prng.int rng 64) (n - off) in
      Bytes.blit (Prng.bytes rng len) 0 b off len
    done;
    Bytes.to_string b
  in
  let server =
    List.filteri (fun i _ -> i <> 1) base
    |> List.map (fun (p, c) ->
           if Prng.bernoulli rng 0.4 then (p, edit c) else (p, c))
  in
  let server = ("d0/newfile.dat", Bytes.to_string (Prng.bytes rng 500)) :: server in
  (Snapshot.of_files base, Snapshot.of_files server)

let test_resilient_clean_link () =
  let rng = Prng.create 99L in
  let client, server = mk_collections rng 10 in
  List.iter
    (fun method_ ->
      match Driver.sync_resilient method_ ~client ~server with
      | Ok (snap, s) ->
          Alcotest.(check bool) "converged" true
            (Snapshot.files snap = Snapshot.files server);
          Alcotest.(check int) "no fallbacks" 0 s.Driver.fallbacks;
          Alcotest.(check int) "no retransmits" 0 s.Driver.retransmits;
          Alcotest.(check int) "no resumes" 0 s.Driver.resumed
      | Error e -> Alcotest.failf "clean link failed: %s" (Error.to_string e))
    [
      Driver.Full_raw;
      Driver.Rsync_default;
      Driver.Fsync Fsync_core.Config.tuned;
    ]

let test_resilient_dirty_link () =
  let rng = Prng.create 123L in
  let client, server = mk_collections rng 10 in
  let resilience =
    { Driver.default_resilience with faults = Fault.dirty; seed = 5 }
  in
  match
    Driver.sync_resilient ~metadata:Driver.Merkle ~resilience
      Driver.Rsync_default ~client ~server
  with
  | Ok (snap, _) ->
      Alcotest.(check bool) "converged over a dirty link" true
        (Snapshot.files snap = Snapshot.files server)
  | Error e -> Alcotest.failf "dirty link failed: %s" (Error.to_string e)

let test_resume_cheaper_than_cold () =
  let rng = Prng.create 2024L in
  let client, server = mk_collections rng 24 in
  let clean =
    match Driver.sync_resilient Driver.Full_compressed ~client ~server with
    | Ok (_, s) -> Driver.total s
    | Error e -> Alcotest.failf "clean run failed: %s" (Error.to_string e)
  in
  (* Break the link deterministically mid-transfer; the session must
     resume from its checkpoint, not start over. *)
  let resilience =
    {
      Driver.default_resilience with
      faults =
        { Fault.none with disconnect_after = Some 12; max_disconnects = 1 };
      seed = 3;
    }
  in
  match Driver.sync_resilient ~resilience Driver.Full_compressed ~client ~server with
  | Ok (snap, s) ->
      Alcotest.(check bool) "converged after resume" true
        (Snapshot.files snap = Snapshot.files server);
      Alcotest.(check int) "resumed once" 1 s.Driver.resumed;
      (* A cold restart pays the whole session again on top of the
         partial work; a resume must stay well under that. *)
      Alcotest.(check bool)
        (Printf.sprintf "resume %d < cold restart %d" (Driver.total s)
           (2 * clean))
        true
        (Driver.total s < 2 * clean)
  | Error e -> Alcotest.failf "resumed run failed: %s" (Error.to_string e)

let test_fallback_ladder () =
  (* A link so corrupt that the method cannot get a delta through intact
     often enough: the per-file ladder must still converge (fallback or
     retries) or fail with a typed error — and when it converges, the
     outcome records tell the story. *)
  let rng = Prng.create 555L in
  let client, server = mk_collections rng 6 in
  let resilience =
    {
      Driver.default_resilience with
      frame = false;
      faults = spec_probs 0.0 0.45 0.0 0.0;
      seed = 9;
      max_restarts = 20;
      file_retries = 4;
    }
  in
  match Driver.sync_resilient ~resilience Driver.Rsync_default ~client ~server with
  | Ok (snap, _) ->
      Alcotest.(check bool) "converged" true
        (Snapshot.files snap = Snapshot.files server)
  | Error _ -> () (* a clean typed failure is an acceptable outcome *)

(* ---- the soak: ≥200 randomized seeded fault schedules ---- *)

let soak_methods =
  [|
    Driver.Rsync_default;
    Driver.Fsync Fsync_core.Config.tuned;
    Driver.Full_compressed;
  |]

let soak_one i =
  let rng = Prng.create (Int64.of_int (0x50AC + (i * 7919))) in
  let client, server = mk_collections rng (6 + Prng.int rng 6) in
  let p bound = Prng.float rng bound in
  let faults =
    {
      Fault.p_drop = p 0.04;
      p_corrupt = p 0.05;
      p_truncate = p 0.03;
      p_duplicate = p 0.03;
      p_disconnect = p 0.006;
      disconnect_after = None;
      max_disconnects = 2;
    }
  in
  let resilience =
    {
      Driver.default_resilience with
      faults;
      seed = i;
      frame = i mod 4 <> 3 (* every 4th run: bare link, no framing *);
    }
  in
  let metadata = if i mod 2 = 0 then Driver.Linear else Driver.Merkle in
  let method_ = soak_methods.(i mod Array.length soak_methods) in
  match Driver.sync_resilient ~metadata ~resilience method_ ~client ~server with
  | Ok (snap, _) ->
      if Snapshot.files snap <> Snapshot.files server then
        Alcotest.failf "soak %d: silent corruption (method %s, %s metadata)" i
          (Driver.method_name method_)
          (Driver.metadata_name metadata);
      `Converged
  | Error _ -> `Typed_failure
  | exception e ->
      Alcotest.failf "soak %d: exception escaped: %s" i (Printexc.to_string e)

let test_soak () =
  let runs = 200 in
  let converged = ref 0 and failed = ref 0 in
  for i = 0 to runs - 1 do
    match soak_one i with
    | `Converged -> incr converged
    | `Typed_failure -> incr failed
  done;
  (* Clean typed failures are legal but must be the exception: the
     resilience stack is supposed to win against these fault rates. *)
  Alcotest.(check bool)
    (Printf.sprintf "most runs converge (%d/%d, %d typed failures)" !converged
       runs !failed)
    true
    (!converged * 10 >= runs * 9)

(* ---- framing overhead on the metadata scenario ---- *)

let test_framing_overhead_bounded () =
  (* The acceptance bound: with faults disabled, the framing layer adds
     < 3% bytes over the whole metadata bench scenario (both metadata
     modes across several change fractions). *)
  let rng = Prng.create 7L in
  let base =
    List.init 120 (fun i ->
        (Printf.sprintf "site/page%03d.html" i, Bytes.to_string (Prng.bytes rng 400)))
  in
  let perturb frac =
    List.mapi
      (fun i (p, c) ->
        if float_of_int i < frac *. 120.0 then
          (p, c ^ Bytes.to_string (Prng.bytes rng 8))
        else (p, c))
      base
  in
  let client = Snapshot.of_files base in
  let scenario framed =
    let bytes = ref 0 in
    List.iter
      (fun metadata ->
        List.iter
          (fun frac ->
            let server = Snapshot.of_files (perturb frac) in
            let ch = Channel.create () in
            let frame = if framed then Some (Frame.attach ch) else None in
            let _, _ =
              Driver.sync ~metadata ~meta_channel:ch Driver.Full_raw ~client
                ~server
            in
            (match frame with Some f -> Frame.detach f | None -> ());
            bytes := !bytes + Channel.total_bytes ch)
          [ 0.01; 0.1; 0.5 ])
      [ Driver.Linear; Driver.Merkle ];
    !bytes
  in
  let plain = scenario false in
  let framed = scenario true in
  let overhead = float_of_int (framed - plain) /. float_of_int plain in
  Alcotest.(check bool)
    (Printf.sprintf "framing overhead %.2f%% < 3%%" (100.0 *. overhead))
    true (overhead < 0.03)

let suite =
  [
    ("crc32 vectors", `Quick, test_crc32_vectors);
    crc32_detects;
    ("fault schedule deterministic", `Quick, test_fault_deterministic);
    ("fault drop charges bytes", `Quick, test_fault_drop_charges_bytes);
    ("fault disconnect after", `Quick, test_fault_disconnect_after);
    ("fault spec parse", `Quick, test_fault_parse);
    ("frame transparent on clean link", `Quick, test_frame_transparent);
    ("frame survives corruption", `Quick, test_frame_survives_corruption);
    ("frame retry exhaustion", `Quick, test_frame_retry_exhaustion);
    ("frame resync", `Quick, test_frame_resync);
    wire_fuzz_random;
    wire_fuzz_mangled;
    ("varint overlong bounded", `Quick, varint_overlong);
    recon_fuzz;
    protocol_fuzz_bare;
    protocol_fuzz_framed;
    ("resilient sync, clean link", `Quick, test_resilient_clean_link);
    ("resilient sync, dirty link", `Quick, test_resilient_dirty_link);
    ("resume cheaper than cold restart", `Quick, test_resume_cheaper_than_cold);
    ("fallback ladder", `Quick, test_fallback_ladder);
    ("soak: 200 fault schedules", `Slow, test_soak);
    ("framing overhead < 3%", `Quick, test_framing_overhead_bounded);
  ]
