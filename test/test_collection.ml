(* Tests for Fsync_collection: snapshots (including disk roundtrip) and the
   collection-level synchronization driver. *)

open Fsync_collection
module Prng = Fsync_util.Prng

let mk_files seed n =
  let rng = Prng.create (Int64.of_int seed) in
  List.init n (fun i ->
      ( Printf.sprintf "dir%d/file%03d.txt" (i mod 3) i,
        Fsync_workload.Text_gen.c_like rng ~lines:(20 + Prng.int rng 80) ))

let mutate_some seed files =
  let rng = Prng.create (Int64.of_int (seed * 31)) in
  List.map
    (fun (path, content) ->
      if Prng.bernoulli rng 0.5 then (path, content)
      else
        ( path,
          Fsync_workload.Edit_model.mutate rng
            ~profile:Fsync_workload.Edit_model.medium
            ~gen_text:(fun rng n ->
              String.init n (fun _ -> Char.chr (97 + Prng.int rng 26)))
            content ))
    files

(* ---- Snapshot ---- *)

let test_snapshot_basic () =
  let s = Snapshot.of_files [ ("a", "1"); ("b", "22") ] in
  Alcotest.(check int) "count" 2 (Snapshot.count s);
  Alcotest.(check int) "bytes" 3 (Snapshot.total_bytes s);
  Alcotest.(check (option string)) "find" (Some "22") (Snapshot.find s "b");
  Alcotest.(check (option string)) "missing" None (Snapshot.find s "c");
  Alcotest.(check (list string)) "paths sorted" [ "a"; "b" ] (Snapshot.paths s)

let test_snapshot_duplicate () =
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Snapshot.of_files: duplicate path a") (fun () ->
      ignore (Snapshot.of_files [ ("a", "1"); ("a", "2") ]))

let test_snapshot_disk_roundtrip () =
  let dir = Filename.temp_file "fsync_snap" "" in
  Sys.remove dir;
  let s = Snapshot.of_files (mk_files 1 7) in
  Snapshot.store_dir dir s;
  let loaded = Snapshot.load_dir dir in
  Alcotest.(check (list (pair string string))) "roundtrip" (Snapshot.files s)
    (Snapshot.files loaded);
  (* Cleanup. *)
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  rm dir

let test_snapshot_load_missing () =
  match Snapshot.load_dir "/nonexistent/fsync/dir" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected failure"

let test_snapshot_prune_empty_dirs () =
  let root = Filename.temp_file "fsync_prune" "" in
  Sys.remove root;
  Snapshot.store_dir root
    (Snapshot.of_files
       [ ("keep/a.txt", "x"); ("deep/one/two/stale.txt", "y") ]);
  (* Simulate --apply's stale-file deletion leaving a dir chain behind,
     plus a branch that was always empty. *)
  Sys.remove (Filename.concat root "deep/one/two/stale.txt");
  let rec mkdir_p dir =
    if not (Sys.file_exists dir) then begin
      mkdir_p (Filename.dirname dir);
      Sys.mkdir dir 0o755
    end
  in
  mkdir_p (Filename.concat root "empty/branch/leaf");
  let removed = Snapshot.prune_empty_dirs root in
  (* deep/one/two, deep/one, deep + empty/branch/leaf, empty/branch,
     empty — pruned bottom-up. *)
  Alcotest.(check int) "six dirs removed" 6 removed;
  Alcotest.(check bool) "chain gone" false
    (Sys.file_exists (Filename.concat root "deep"));
  Alcotest.(check bool) "empty branch gone" false
    (Sys.file_exists (Filename.concat root "empty"));
  Alcotest.(check bool) "populated dir kept" true
    (Sys.file_exists (Filename.concat root "keep/a.txt"));
  (* Idempotent, and the root itself is never removed. *)
  Alcotest.(check int) "second pass is a no-op" 0
    (Snapshot.prune_empty_dirs root);
  Alcotest.(check bool) "root survives" true (Sys.is_directory root);
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  rm root

(* ---- journaled atomic apply ---- *)

module Fault_io = Fsync_store.Fault_io

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let with_tmp_dir f =
  let dir = Filename.temp_file "fsync_apply" "" in
  Sys.remove dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let tree_of root =
  if Sys.file_exists root then Snapshot.files (Snapshot.load_dir root) else []

let check_tree what expected root =
  Alcotest.(check (list (pair string string)))
    what
    (List.sort (fun (a, _) (b, _) -> String.compare a b) expected)
    (tree_of root)

let test_apply_basic () =
  with_tmp_dir (fun root ->
      let old_files =
        [
          ("a.txt", "alpha");
          ("deep/one/two/b.txt", "beta");
          ("keep.txt", "kept");
        ]
      in
      Snapshot.store_dir root (Snapshot.of_files old_files);
      (* The new-path name exercises journal escaping: a space and a
         percent sign. *)
      let new_files =
        [ ("a.txt", "alpha v2"); ("keep.txt", "kept"); ("new dir/c%d.txt", "gamma") ]
      in
      let st = Apply.apply ~root ~old_files new_files in
      Alcotest.(check int) "wrote changed+new" 2 st.Apply.wrote;
      Alcotest.(check int) "deleted stale" 1 st.Apply.deleted;
      check_tree "tree matches target" new_files root;
      Alcotest.(check bool) "staging cleaned up" false
        (Sys.file_exists (Filename.concat root Apply.dirname));
      Alcotest.(check bool) "stale dirs pruned" false
        (Sys.file_exists (Filename.concat root "deep"));
      (* Unchanged target: nothing to stage, nothing touched. *)
      let st2 = Apply.apply ~root ~old_files:new_files new_files in
      Alcotest.(check int) "no-op writes nothing" 0 st2.Apply.wrote;
      Alcotest.(check int) "no-op deletes nothing" 0 st2.Apply.deleted;
      (* Fresh root: apply bootstraps the directory. *)
      let fresh = Filename.concat root "fresh-replica" in
      ignore (Apply.apply ~root:fresh ~old_files:[] new_files);
      check_tree "fresh root bootstrapped" new_files fresh)

let test_apply_resume_clean () =
  with_tmp_dir (fun root ->
      Snapshot.store_dir root (Snapshot.of_files [ ("a", "1") ]);
      match Apply.resume root with
      | `Clean -> ()
      | `Rolled_back | `Rolled_forward _ ->
          Alcotest.fail "nothing to resume in a clean tree")

let test_apply_corrupt_journal_refused () =
  with_tmp_dir (fun root ->
      Snapshot.store_dir root (Snapshot.of_files [ ("a", "1") ]);
      let sdir = Filename.concat root Apply.dirname in
      Sys.mkdir sdir 0o755;
      let oc = open_out_bin (Filename.concat sdir "journal") in
      output_string oc "fsync-apply/1\nW a 0 1 deadbeef\n";
      (* no commit trailer *)
      close_out oc;
      match Apply.resume root with
      | _ -> Alcotest.fail "truncated journal must be refused"
      | exception Fsync_core.Error.E _ -> ())

(* The tentpole invariant: kill the applier at the K-th syscall for
   every K, and the replica is never torn — every file is wholly old or
   wholly new at all times, and after recovery the tree is exactly the
   old one (crash before the journal committed) or exactly the new one
   (after).  Recovery itself may crash and is re-runnable. *)
let test_apply_crash_matrix () =
  let old_files =
    [
      ("a.txt", "old contents of a, long enough to notice tearing");
      ("sub/b.txt", "old b");
      ("gone/stale.txt", "stale");
    ]
  in
  let new_files =
    [
      ("a.txt", "NEW contents of a, rather different from before");
      ("sub/b.txt", "old b");
      ("sub/new c.txt", "fresh file");
    ]
  in
  let content_of l p =
    Option.map snd (List.find_opt (fun (q, _) -> String.equal q p) l)
  in
  let no_torn_files what root =
    List.iter
      (fun (p, got) ->
        let matches l =
          match content_of l p with
          | Some c -> String.equal c got
          | None -> false
        in
        if not (matches old_files || matches new_files) then
          Alcotest.failf "%s: %s holds torn bytes" what p)
      (tree_of root)
  in
  let old_or_new what root =
    let actual = tree_of root in
    let s l = List.sort (fun (a, _) (b, _) -> String.compare a b) l in
    if actual <> s old_files && actual <> s new_files then
      Alcotest.failf "%s: torn replica [%s]" what
        (String.concat ";" (List.map fst actual))
  in
  let k = ref 1 in
  let sweeping = ref true in
  while !sweeping do
    if !k > 120 then Alcotest.fail "crash sweep did not terminate";
    with_tmp_dir (fun root ->
        Snapshot.store_dir root (Snapshot.of_files old_files);
        let io, _ =
          Fault_io.wrap ~seed:!k
            { Fault_io.none with Fault_io.crash_at = Some !k }
        in
        match Apply.apply ~io ~root ~old_files new_files with
        | (_ : Apply.stats) ->
            check_tree "uncrashed apply converges" new_files root;
            sweeping := false
        | exception Fault_io.Crash_point _ ->
            let tag fmt = Printf.sprintf fmt !k in
            no_torn_files (tag "after crash at %d") root;
            (* Recovery can die too; a second recovery still converges. *)
            let io2, _ =
              Fault_io.wrap ~seed:(!k * 7)
                { Fault_io.none with Fault_io.crash_at = Some 2 }
            in
            (match Apply.resume ~io:io2 root with
            | (_ : Apply.resumed) -> ()
            | exception Fault_io.Crash_point _ -> ());
            no_torn_files (tag "after crashed resume at %d") root;
            (match Apply.resume root with
            | `Clean | `Rolled_back | `Rolled_forward _ -> ());
            old_or_new (tag "after resume at %d") root;
            (* And a clean re-apply lands the target exactly. *)
            ignore (Apply.apply ~root ~old_files:(tree_of root) new_files);
            check_tree (tag "re-apply after crash at %d") new_files root);
    incr k
  done

(* ---- Driver ---- *)

let methods =
  [
    Driver.Full_raw;
    Driver.Full_compressed;
    Driver.Rsync_default;
    Driver.Rsync_best;
    Driver.Fsync Fsync_core.Config.tuned;
    Driver.Delta_lower_bound Fsync_delta.Delta.Zdelta;
    Driver.Delta_lower_bound Fsync_delta.Delta.Vcdiff;
  ]

let test_driver_all_methods_reconstruct () =
  let old_files = mk_files 2 10 in
  let new_files = mutate_some 2 old_files in
  let client = Snapshot.of_files old_files in
  let server = Snapshot.of_files new_files in
  List.iter
    (fun m ->
      let result, summary = Driver.sync m ~client ~server in
      if Snapshot.files result <> Snapshot.files server then
        Alcotest.failf "%s did not reconstruct" (Driver.method_name m);
      Alcotest.(check int) "files_total" 10 summary.files_total)
    methods

let test_driver_unchanged_skipped () =
  let files = mk_files 3 6 in
  let client = Snapshot.of_files files in
  let server = Snapshot.of_files files in
  let _, summary = Driver.sync Driver.Full_raw ~client ~server in
  Alcotest.(check int) "all unchanged" 6 summary.files_unchanged;
  (* Only fingerprints and verdicts cross the wire. *)
  List.iter
    (fun (o : Driver.file_outcome) ->
      Alcotest.(check bool) "skipped" true o.skipped;
      Alcotest.(check int) "no bytes" 0 (o.c2s + o.s2c))
    summary.outcomes

let test_driver_new_and_deleted () =
  let client = Snapshot.of_files [ ("stays", "same"); ("goes", "away") ] in
  let server = Snapshot.of_files [ ("stays", "same"); ("arrives", "fresh content") ] in
  let result, summary = Driver.sync Driver.Rsync_default ~client ~server in
  Alcotest.(check int) "new" 1 summary.files_new;
  Alcotest.(check int) "deleted" 1 summary.files_deleted;
  Alcotest.(check (option string)) "new present" (Some "fresh content")
    (Snapshot.find result "arrives");
  Alcotest.(check (option string)) "deleted gone" None (Snapshot.find result "goes")

let test_driver_ordering () =
  (* fsync < rsync <= full on a lightly-edited collection; zdelta lowest. *)
  let old_files = mk_files 4 8 in
  let rng = Prng.create 44L in
  let new_files =
    List.map
      (fun (p, c) ->
        ( p,
          Fsync_workload.Edit_model.mutate rng
            ~profile:Fsync_workload.Edit_model.light
            ~gen_text:(fun rng n ->
              String.init n (fun _ -> Char.chr (97 + Prng.int rng 26)))
            c ))
      old_files
  in
  let client = Snapshot.of_files old_files in
  let server = Snapshot.of_files new_files in
  let cost m = Driver.total (snd (Driver.sync m ~client ~server)) in
  let full = cost Driver.Full_compressed in
  let rsync = cost Driver.Rsync_default in
  let ours = cost (Driver.Fsync Fsync_core.Config.tuned) in
  let zdelta = cost (Driver.Delta_lower_bound Fsync_delta.Delta.Zdelta) in
  Alcotest.(check bool) (Printf.sprintf "ours(%d) < rsync(%d)" ours rsync) true (ours < rsync);
  Alcotest.(check bool) (Printf.sprintf "rsync(%d) < full(%d)" rsync full) true (rsync < full);
  Alcotest.(check bool) (Printf.sprintf "zdelta(%d) <= ours(%d)" zdelta ours) true (zdelta <= ours)

let test_driver_accounting () =
  let old_files = mk_files 5 5 in
  let new_files = mutate_some 5 old_files in
  let client = Snapshot.of_files old_files in
  let server = Snapshot.of_files new_files in
  let _, summary = Driver.sync Driver.Rsync_default ~client ~server in
  let sum_c2s =
    List.fold_left (fun acc (o : Driver.file_outcome) -> acc + o.c2s) 0 summary.outcomes
  in
  Alcotest.(check bool) "c2s >= file costs" true (summary.total_c2s >= sum_c2s);
  Alcotest.(check int) "bytes_new" (Snapshot.total_bytes server) summary.bytes_new

let test_driver_merkle_metadata () =
  (* Every method must still reconstruct exactly under Merkle metadata, and
     the resulting snapshot must be identical to the Linear-mode result. *)
  let old_files = mk_files 6 12 in
  let new_files = mutate_some 6 old_files in
  let client = Snapshot.of_files old_files in
  let server = Snapshot.of_files new_files in
  List.iter
    (fun m ->
      let linear, _ = Driver.sync ~metadata:Driver.Linear m ~client ~server in
      let merkle, summary = Driver.sync ~metadata:Driver.Merkle m ~client ~server in
      if Snapshot.files merkle <> Snapshot.files server then
        Alcotest.failf "%s (merkle) did not reconstruct" (Driver.method_name m);
      Alcotest.(check (list (pair string string)))
        "same result across metadata modes" (Snapshot.files linear)
        (Snapshot.files merkle);
      Alcotest.(check string) "metadata_used" "merkle" summary.metadata_used;
      Alcotest.(check bool) "rounds >= 1" true (summary.meta_rounds >= 1);
      Alcotest.(check bool) "meta bytes counted" true
        (Driver.meta_total summary > 0))
    methods

let test_driver_merkle_cheaper_when_little_changed () =
  (* On a collection where only one file changed, the recursive-descent
     metadata exchange must beat the linear fingerprint announcement. *)
  let files = mk_files 7 400 in
  let changed =
    List.mapi
      (fun i (p, c) -> if i = 123 then (p, c ^ "\n// touched\n") else (p, c))
      files
  in
  let client = Snapshot.of_files files in
  let server = Snapshot.of_files changed in
  let _, lin = Driver.sync ~metadata:Driver.Linear Driver.Full_raw ~client ~server in
  let _, mrk = Driver.sync ~metadata:Driver.Merkle Driver.Full_raw ~client ~server in
  Alcotest.(check int) "linear finds the change" 399 lin.files_unchanged;
  Alcotest.(check int) "merkle finds the change" 399 mrk.files_unchanged;
  Alcotest.(check bool)
    (Printf.sprintf "merkle meta (%d) < linear meta (%d)" (Driver.meta_total mrk)
       (Driver.meta_total lin))
    true
    (Driver.meta_total mrk < Driver.meta_total lin);
  (* Linear resolves in one round; merkle pays extra rounds for the savings. *)
  Alcotest.(check int) "linear rounds" 1 lin.meta_rounds;
  Alcotest.(check bool) "merkle descends" true (mrk.meta_rounds > 1)

let test_driver_merkle_empty_diff () =
  let files = mk_files 8 50 in
  let client = Snapshot.of_files files in
  let server = Snapshot.of_files files in
  let result, summary =
    Driver.sync ~metadata:Driver.Merkle Driver.Rsync_default ~client ~server
  in
  Alcotest.(check (list (pair string string)))
    "identical" (Snapshot.files server) (Snapshot.files result);
  Alcotest.(check int) "all unchanged" 50 summary.files_unchanged;
  (* Equal roots: one round, a few dozen bytes, no file content moved. *)
  Alcotest.(check int) "one round" 1 summary.meta_rounds;
  Alcotest.(check bool) "tiny metadata" true (Driver.meta_total summary < 64);
  Alcotest.(check int) "total = metadata" (Driver.meta_total summary)
    (Driver.total summary)

(* ---- Pipeline ---- *)

let test_pipeline_reconstructs () =
  let triples =
    List.init 5 (fun i ->
        let rng = Prng.create (Int64.of_int (400 + i)) in
        let old_file = Fsync_workload.Text_gen.c_like rng ~lines:(150 + (i * 30)) in
        let new_file =
          Fsync_workload.Edit_model.mutate rng
            ~profile:Fsync_workload.Edit_model.medium
            ~gen_text:(fun rng n ->
              String.init n (fun _ -> Char.chr (97 + Prng.int rng 26)))
            old_file
        in
        (Printf.sprintf "f%d" i, old_file, new_file))
  in
  let outs, report = Pipeline.sync triples in
  List.iter2
    (fun (name, _, new_file) (name', out) ->
      Alcotest.(check string) "name" name name';
      Alcotest.(check bool) "content" true (String.equal out new_file))
    triples outs;
  Alcotest.(check int) "files" 5 report.files;
  (* Batched trips = deepest file; far fewer than the sum. *)
  Alcotest.(check bool)
    (Printf.sprintf "batched %d < sequential %d" report.batched_roundtrips
       report.sequential_roundtrips)
    true
    (report.batched_roundtrips < report.sequential_roundtrips);
  (* Bytes match the per-file reports. *)
  let sum =
    List.fold_left
      (fun acc (_, (r : Fsync_core.Protocol.report)) ->
        acc + r.total_c2s + r.total_s2c)
      0 report.per_file
  in
  Alcotest.(check int) "bytes add up" sum (Pipeline.total_bytes report)

let test_pipeline_empty () =
  let outs, report = Pipeline.sync [] in
  Alcotest.(check (list (pair string string))) "no files" [] outs;
  Alcotest.(check int) "zero bytes" 0 (Pipeline.total_bytes report);
  Alcotest.(check int) "zero trips" 0 report.batched_roundtrips

let test_driver_empty_collections () =
  let empty = Snapshot.of_files [] in
  let result, summary = Driver.sync Driver.Rsync_default ~client:empty ~server:empty in
  Alcotest.(check int) "no files" 0 (Snapshot.count result);
  Alcotest.(check int) "no cost" 0 (Driver.total summary)

let test_pipeline_elapsed () =
  let triples = [ ("a", "same content here", "same content here") ] in
  let _, report = Pipeline.sync triples in
  let seq = Pipeline.elapsed_s ~batched:false report in
  let bat = Pipeline.elapsed_s ~batched:true report in
  Alcotest.(check bool) "batched <= sequential" true (bat <= seq);
  Alcotest.(check bool) "positive" true (bat > 0.0)

let suite =
  [
    ("snapshot basic", `Quick, test_snapshot_basic);
    ("snapshot duplicate", `Quick, test_snapshot_duplicate);
    ("snapshot disk roundtrip", `Quick, test_snapshot_disk_roundtrip);
    ("snapshot prune empty dirs", `Quick, test_snapshot_prune_empty_dirs);
    ("snapshot load missing", `Quick, test_snapshot_load_missing);
    ("apply basic", `Quick, test_apply_basic);
    ("apply resume clean", `Quick, test_apply_resume_clean);
    ("apply corrupt journal refused", `Quick, test_apply_corrupt_journal_refused);
    ("apply crash matrix", `Quick, test_apply_crash_matrix);
    ("driver all methods reconstruct", `Slow, test_driver_all_methods_reconstruct);
    ("driver unchanged skipped", `Quick, test_driver_unchanged_skipped);
    ("driver new and deleted", `Quick, test_driver_new_and_deleted);
    ("driver cost ordering", `Slow, test_driver_ordering);
    ("driver accounting", `Quick, test_driver_accounting);
    ("driver merkle metadata", `Slow, test_driver_merkle_metadata);
    ("driver merkle cheaper", `Quick, test_driver_merkle_cheaper_when_little_changed);
    ("driver merkle empty diff", `Quick, test_driver_merkle_empty_diff);
    ("pipeline reconstructs", `Quick, test_pipeline_reconstructs);
    ("pipeline empty", `Quick, test_pipeline_empty);
    ("driver empty collections", `Quick, test_driver_empty_collections);
    ("pipeline elapsed", `Quick, test_pipeline_elapsed);
  ]
