module Prng = Fsync_util.Prng

let nouns =
  [| "buffer"; "cache"; "node"; "index"; "table"; "stream"; "packet"; "frame";
     "block"; "chunk"; "record"; "field"; "cursor"; "handle"; "socket";
     "widget"; "parser"; "lexer"; "symbol"; "scope"; "value"; "entry";
     "bucket"; "queue"; "stack"; "heap"; "page"; "sector"; "inode"; "extent" |]

let verbs =
  [| "alloc"; "free"; "init"; "reset"; "update"; "flush"; "read"; "write";
     "parse"; "emit"; "scan"; "lookup"; "insert"; "remove"; "merge"; "split";
     "copy"; "move"; "check"; "validate"; "encode"; "decode"; "open"; "close" |]

let types = [| "int"; "long"; "char *"; "size_t"; "void"; "unsigned"; "struct buf *" |]

let words =
  [| "the"; "a"; "of"; "to"; "and"; "in"; "for"; "with"; "on"; "that"; "is";
     "data"; "file"; "update"; "server"; "network"; "page"; "site"; "new";
     "latest"; "report"; "today"; "market"; "science"; "research"; "study";
     "results"; "analysis"; "system"; "design"; "performance"; "time";
     "world"; "people"; "information"; "service"; "online"; "archive" |]

let ident rng =
  Prng.pick rng verbs ^ "_" ^ Prng.pick rng nouns
  ^ if Prng.bernoulli rng 0.3 then string_of_int (Prng.int rng 10) else ""

let c_like rng ~lines =
  let buf = Buffer.create (lines * 40) in
  let emitted = ref 0 in
  while !emitted < lines do
    let kind = Prng.int rng 10 in
    if kind < 5 then begin
      (* function definition *)
      let name = ident rng in
      let ret = Prng.pick rng types in
      Buffer.add_string buf (Printf.sprintf "%s %s(%s x, %s n)\n{\n" ret name
        (Prng.pick rng types) (Prng.pick rng types));
      let body = 2 + Prng.int rng 6 in
      for _ = 1 to body do
        (match Prng.int rng 4 with
        | 0 -> Buffer.add_string buf (Printf.sprintf "    %s = %s(%s, %d);\n"
                 (Prng.pick rng nouns) (ident rng) (Prng.pick rng nouns) (Prng.int rng 256))
        | 1 -> Buffer.add_string buf (Printf.sprintf "    if (%s < %d)\n        return %s;\n"
                 (Prng.pick rng nouns) (Prng.int rng 100) (Prng.pick rng nouns))
        | 2 -> Buffer.add_string buf (Printf.sprintf "    %s += %s->%s;\n"
                 (Prng.pick rng nouns) (Prng.pick rng nouns) (Prng.pick rng nouns))
        | _ -> Buffer.add_string buf (Printf.sprintf "    /* %s %s %s */\n"
                 (Prng.pick rng words) (Prng.pick rng words) (Prng.pick rng words)))
      done;
      Buffer.add_string buf "}\n\n";
      emitted := !emitted + body + 4
    end
    else if kind < 7 then begin
      Buffer.add_string buf (Printf.sprintf "#define %s_%s %d\n"
        (String.uppercase_ascii (Prng.pick rng nouns))
        (String.uppercase_ascii (Prng.pick rng verbs))
        (Prng.int rng 4096));
      incr emitted
    end
    else if kind < 9 then begin
      Buffer.add_string buf (Printf.sprintf "static %s %s[%d];\n"
        (Prng.pick rng types) (ident rng) (1 + Prng.int rng 128));
      incr emitted
    end
    else begin
      Buffer.add_string buf (Printf.sprintf "/* %s: %s %s %s %s. */\n"
        (ident rng) (Prng.pick rng words) (Prng.pick rng words)
        (Prng.pick rng words) (Prng.pick rng words));
      incr emitted
    end
  done;
  Buffer.contents buf

let lisp_like rng ~lines =
  let buf = Buffer.create (lines * 40) in
  let emitted = ref 0 in
  while !emitted < lines do
    let kind = Prng.int rng 10 in
    if kind < 5 then begin
      let name = Prng.pick rng verbs ^ "-" ^ Prng.pick rng nouns in
      Buffer.add_string buf (Printf.sprintf "(defun %s (%s &optional %s)\n"
        name (Prng.pick rng nouns) (Prng.pick rng nouns));
      Buffer.add_string buf (Printf.sprintf "  \"%s %s %s %s.\"\n"
        (String.capitalize_ascii (Prng.pick rng words)) (Prng.pick rng words)
        (Prng.pick rng words) (Prng.pick rng words));
      let body = 2 + Prng.int rng 5 in
      for _ = 1 to body do
        Buffer.add_string buf (Printf.sprintf "  (%s %s (%s %s %d))\n"
          (Prng.pick rng [| "setq"; "when"; "unless"; "let"; "if" |])
          (Prng.pick rng nouns)
          (Prng.pick rng [| "+"; "-"; "car"; "cdr"; "nth"; "aref" |])
          (Prng.pick rng nouns) (Prng.int rng 100))
      done;
      Buffer.add_string buf ")\n\n";
      emitted := !emitted + body + 4
    end
    else if kind < 8 then begin
      Buffer.add_string buf (Printf.sprintf "(defvar %s-%s %d\n  \"%s %s.\")\n"
        (Prng.pick rng nouns) (Prng.pick rng nouns) (Prng.int rng 1000)
        (String.capitalize_ascii (Prng.pick rng words)) (Prng.pick rng words));
      emitted := !emitted + 2
    end
    else begin
      Buffer.add_string buf (Printf.sprintf ";; %s %s %s\n"
        (Prng.pick rng words) (Prng.pick rng words) (Prng.pick rng words));
      incr emitted
    end
  done;
  Buffer.contents buf

let paragraph rng ~words:nwords =
  let buf = Buffer.create (nwords * 6) in
  for i = 0 to nwords - 1 do
    if i > 0 then Buffer.add_char buf ' ';
    let word = Prng.pick rng words in
    Buffer.add_string buf (if i mod 12 = 0 then String.capitalize_ascii word else word);
    if i mod 12 = 11 then Buffer.add_char buf '.'
  done;
  Buffer.add_char buf '.';
  Buffer.contents buf

let boilerplate rng =
  let site = Prng.pick rng nouns ^ Prng.pick rng [| ".com"; ".org"; ".net" |] in
  Printf.sprintf
    "<!DOCTYPE html>\n<html>\n<head>\n<title>%s</title>\n\
     <meta name=\"generator\" content=\"sitebuilder-%d\">\n\
     <link rel=\"stylesheet\" href=\"/style-%d.css\">\n</head>\n<body>\n\
     <div class=\"nav\"><a href=\"/\">home</a> | <a href=\"/news\">news</a> | \
     <a href=\"/archive\">archive</a> | <a href=\"/about\">about</a></div>\n"
    site (Prng.int rng 10) (Prng.int rng 10)

let html_like rng ~body_words ~boilerplate:bp =
  let buf = Buffer.create (body_words * 7) in
  Buffer.add_string buf bp;
  let remaining = ref body_words in
  while !remaining > 0 do
    let n = min !remaining (20 + Prng.int rng 60) in
    Buffer.add_string buf "<p>";
    Buffer.add_string buf (paragraph rng ~words:n);
    Buffer.add_string buf "</p>\n";
    remaining := !remaining - n
  done;
  Buffer.add_string buf "<div class=\"footer\">generated page; all rights reserved.</div>\n</body>\n</html>\n";
  Buffer.contents buf
