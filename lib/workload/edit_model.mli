(** Edit scripts and the random change model.

    Real file updates are insertions, deletions and replacements that move
    byte alignments arbitrarily (§1: "files may be modified in arbitrary
    ways, including insertion and deletion operations that change byte and
    page alignments").  Random edits are drawn either clustered — a few
    localities receive several edits each, the regime where rsync does
    well — or dispersed, the regime where it degrades. *)

type edit =
  | Insert of { pos : int; text : string }
  | Delete of { pos : int; len : int }
  | Replace of { pos : int; len : int; text : string }

val apply : string -> edit list -> string
(** Apply edits whose positions refer to the original string.  Edits must
    be non-overlapping; they may touch.
    @raise Invalid_argument on overlap or out-of-range edits. *)

type profile = {
  edits_per_kb : float;       (** expected edit count per KB of input *)
  clustering : float;         (** 0 = uniform positions; 1 = a handful of
                                  tight clusters *)
  mean_edit_len : int;        (** geometric mean length of each edit *)
  insert_bias : float;        (** fraction of inserts among edits (the
                                  rest split between delete/replace) *)
}

val light : profile
(** Small maintenance diff (minor release / nightly page tweak). *)

val medium : profile

val heavy : profile
(** Substantial rewrite. *)

val random_edits :
  Fsync_util.Prng.t ->
  profile:profile ->
  gen_text:(Fsync_util.Prng.t -> int -> string) ->
  string ->
  edit list
(** Draw a non-overlapping edit script for the given string;
    [gen_text rng n] supplies inserted/replacement content of length
    roughly [n]. *)

val mutate :
  Fsync_util.Prng.t ->
  profile:profile ->
  gen_text:(Fsync_util.Prng.t -> int -> string) ->
  string ->
  string
(** [apply] of [random_edits]. *)
