module Prng = Fsync_util.Prng

type edit =
  | Insert of { pos : int; text : string }
  | Delete of { pos : int; len : int }
  | Replace of { pos : int; len : int; text : string }

let span = function
  | Insert { pos; _ } -> (pos, pos)
  | Delete { pos; len } -> (pos, pos + len)
  | Replace { pos; len; _ } -> (pos, pos + len)

let apply s edits =
  let n = String.length s in
  let sorted =
    List.sort (fun a b -> compare (fst (span a)) (fst (span b))) edits
  in
  (* Validate: in-range and non-overlapping. *)
  let _ =
    List.fold_left
      (fun prev_hi e ->
        let lo, hi = span e in
        if lo < 0 || hi > n then invalid_arg "Edit_model.apply: out of range";
        if lo < prev_hi then invalid_arg "Edit_model.apply: overlapping edits";
        hi)
      0 sorted
  in
  let buf = Buffer.create (n + 256) in
  let cursor = ref 0 in
  List.iter
    (fun e ->
      let lo, hi = span e in
      Buffer.add_substring buf s !cursor (lo - !cursor);
      (match e with
      | Insert { text; _ } -> Buffer.add_string buf text
      | Delete _ -> ()
      | Replace { text; _ } -> Buffer.add_string buf text);
      cursor := hi)
    sorted;
  Buffer.add_substring buf s !cursor (n - !cursor);
  Buffer.contents buf

type profile = {
  edits_per_kb : float;
  clustering : float;
  mean_edit_len : int;
  insert_bias : float;
}

let light =
  { edits_per_kb = 0.25; clustering = 0.8; mean_edit_len = 30; insert_bias = 0.4 }

let medium =
  { edits_per_kb = 1.2; clustering = 0.6; mean_edit_len = 45; insert_bias = 0.4 }

let heavy =
  { edits_per_kb = 5.0; clustering = 0.2; mean_edit_len = 80; insert_bias = 0.35 }

let random_edits rng ~profile ~gen_text s =
  let n = String.length s in
  if n = 0 then []
  else begin
    let expected = profile.edits_per_kb *. (float_of_int n /. 1024.0) in
    let count =
      let base = int_of_float expected in
      base + (if Prng.bernoulli rng (expected -. float_of_int base) then 1 else 0)
    in
    if count = 0 then []
    else begin
      (* Positions: a mix of uniform and cluster-centered draws. *)
      let n_clusters = max 1 (1 + (count / 6)) in
      let centers = Array.init n_clusters (fun _ -> Prng.int rng n) in
      let draw_pos () =
        if Prng.bernoulli rng profile.clustering then begin
          let c = Prng.pick rng centers in
          let spread = max 64 (n / 64) in
          let p = c + Prng.int_in rng (-spread) spread in
          max 0 (min (n - 1) p)
        end
        else Prng.int rng n
      in
      let draw_len () =
        let mean = float_of_int profile.mean_edit_len in
        max 1 (int_of_float (Prng.exponential rng mean))
      in
      (* Greedily take non-overlapping edits; a few rejected draws are fine. *)
      let taken = ref [] in
      let overlaps lo hi =
        List.exists
          (fun e ->
            let l, h = span e in
            lo < h + 1 && l < hi + 1)
          !taken
      in
      let attempts = ref 0 in
      while List.length !taken < count && !attempts < count * 8 do
        incr attempts;
        let pos = draw_pos () in
        let r = Prng.float rng 1.0 in
        let candidate =
          if r < profile.insert_bias then
            Insert { pos; text = gen_text rng (draw_len ()) }
          else begin
            let len = min (draw_len ()) (n - pos) in
            if len = 0 then Insert { pos; text = gen_text rng (draw_len ()) }
            else if r < profile.insert_bias +. ((1.0 -. profile.insert_bias) /. 2.0)
            then Delete { pos; len }
            else Replace { pos; len; text = gen_text rng (draw_len ()) }
          end
        in
        let lo, hi = span candidate in
        if not (overlaps lo hi) then taken := candidate :: !taken
      done;
      !taken
    end
  end

let mutate rng ~profile ~gen_text s = apply s (random_edits rng ~profile ~gen_text s)
