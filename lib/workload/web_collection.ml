module Prng = Fsync_util.Prng

type page = { url : string; content : string }

type preset = {
  n_pages : int;
  mean_body_words : int;
  n_sites : int;
  seed : int64;
  p_change_per_day : float;
  churn_fraction : float;
}

let default_preset ~scale =
  {
    n_pages = max 4 (int_of_float (10_000.0 *. scale));
    mean_body_words = 450;
    n_sites = max 2 (int_of_float (200.0 *. scale));
    seed = 0xB45E_2001L;
    p_change_per_day = 0.18;
    churn_fraction = 0.05;
  }

let base preset =
  let rng = Prng.create preset.seed in
  let templates =
    Array.init preset.n_sites (fun _ -> Text_gen.boilerplate rng)
  in
  Array.init preset.n_pages (fun i ->
      let site = Prng.int rng preset.n_sites in
      let words =
        let w =
          Prng.pareto rng ~alpha:1.8
            ~x_min:(float_of_int preset.mean_body_words /. 2.0)
        in
        min (int_of_float w) (preset.mean_body_words * 40)
      in
      {
        url = Printf.sprintf "http://site%03d.example/page%05d.html" site i;
        content = Text_gen.html_like rng ~body_words:words ~boilerplate:templates.(site);
      })

let edit_text rng n =
  let buf = Buffer.create n in
  while Buffer.length buf < n do
    Buffer.add_string buf (Text_gen.paragraph rng ~words:8);
    Buffer.add_char buf ' '
  done;
  Buffer.sub buf 0 n

let nightly preset rng ~day pages =
  Array.mapi
    (fun i p ->
      let churny =
        (* The same pages churn every night: derive from the page index. *)
        float_of_int ((i * 2654435761) land 0xffff) /. 65536.0
        < preset.churn_fraction
      in
      let changes =
        churny || Prng.bernoulli rng preset.p_change_per_day
      in
      if not changes then p
      else begin
        let profile =
          if churny then Edit_model.medium
          else Edit_model.light
        in
        let content =
          Edit_model.mutate rng ~profile ~gen_text:edit_text p.content
        in
        (* Most live pages also carry a changing date/counter line. *)
        let content =
          if Prng.bernoulli rng 0.7 then
            content
            ^ Printf.sprintf "<!-- last-updated: day %d; hits: %d -->\n" day
                (Prng.int rng 1_000_000)
          else content
        in
        { p with content }
      end)
    pages

let evolve preset pages ~days =
  let rng = Prng.create (Int64.add preset.seed 0x9_1dL) in
  let rec loop day pages =
    if day > days then pages
    else loop (day + 1) (nightly preset rng ~day pages)
  in
  loop 1 pages

let total_bytes pages =
  Array.fold_left (fun acc p -> acc + String.length p.content) 0 pages
