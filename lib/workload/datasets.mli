(** Named dataset presets at a controllable scale.

    Paper-scale datasets (gcc/emacs ~27 MB, web 10,000 pages) make the full
    benchmark run take a long while; the default scale keeps every
    experiment's statistics (change profiles, size distributions) while
    shrinking file counts.  Set [FSYNC_SCALE=full|small|tiny] or a float
    (e.g. [FSYNC_SCALE=0.25]) to override. *)

val scale : unit -> float
(** From [FSYNC_SCALE]; default 0.08 ("small"). *)

val scale_name : unit -> string

val gcc : unit -> Source_tree.pair
val emacs : unit -> Source_tree.pair

val web_base : unit -> Web_collection.page array

val web_snapshots : days:int list -> Web_collection.page array list
(** Snapshots after each requested number of days (the base evolves
    cumulatively, so snapshots share a consistent history). *)
