(** Synthetic text generators.

    The experiments need corpora with the statistical properties that
    drive delta/sync performance: natural-language-like token repetition
    (so gzip-family compressors get realistic ratios), line structure (so
    edits align with lines as real source diffs do), and shared
    boilerplate across documents.  Three families mirror the paper's data:
    C-like source (gcc), Lisp-like source (emacs), and HTML-like pages
    (the web collection). *)

val c_like : Fsync_util.Prng.t -> lines:int -> string
(** Function definitions, declarations, comments, preprocessor noise. *)

val lisp_like : Fsync_util.Prng.t -> lines:int -> string
(** defuns, setqs, doc strings. *)

val html_like :
  Fsync_util.Prng.t -> body_words:int -> boilerplate:string -> string
(** A page: header boilerplate (shared across a site), paragraphs of
    body text, a footer. *)

val boilerplate : Fsync_util.Prng.t -> string
(** Site-level template shared by many pages. *)

val paragraph : Fsync_util.Prng.t -> words:int -> string
(** Plain filler prose, used for inserted edit content. *)
