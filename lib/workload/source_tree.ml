module Prng = Fsync_util.Prng

type file = { path : string; content : string }

type pair = { name : string; old_version : file list; new_version : file list }

type preset = {
  preset_name : string;
  n_files : int;
  mean_file_bytes : int;
  seed : int64;
  dialect : [ `C | `Lisp ];
  p_unchanged : float;
  p_light : float;
  p_medium : float;
}

let gcc_preset ~scale =
  {
    preset_name = "gcc";
    n_files = max 4 (int_of_float (1000.0 *. scale));
    mean_file_bytes = 27_000;
    seed = 0x6CC_2701L;
    dialect = `C;
    p_unchanged = 0.55;
    p_light = 0.30;
    p_medium = 0.10;
  }

let emacs_preset ~scale =
  {
    preset_name = "emacs";
    n_files = max 4 (int_of_float (1250.0 *. scale));
    mean_file_bytes = 21_000;
    seed = 0xE11AC5_1928L;
    dialect = `Lisp;
    p_unchanged = 0.40;
    p_light = 0.30;
    p_medium = 0.20;
  }

let dirs = [| "src"; "lib"; "config"; "doc"; "include"; "tools"; "tests" |]

let gen_content preset rng ~bytes =
  (* Roughly [bytes] of source text; the line generators overshoot a bit. *)
  let lines = max 4 (bytes / 35) in
  match preset.dialect with
  | `C -> Text_gen.c_like rng ~lines
  | `Lisp -> Text_gen.lisp_like rng ~lines

let edit_text rng n =
  (* Replacement/insert content resembling surrounding source. *)
  let buf = Buffer.create n in
  while Buffer.length buf < n do
    Buffer.add_string buf (Text_gen.paragraph rng ~words:6);
    Buffer.add_char buf '\n'
  done;
  Buffer.sub buf 0 n

let generate preset =
  let rng = Prng.create preset.seed in
  let ext = match preset.dialect with `C -> ".c" | `Lisp -> ".el" in
  let files =
    List.init preset.n_files (fun i ->
        let size =
          (* Heavy-tailed sizes: many small files, a few large ones. *)
          let x = Prng.pareto rng ~alpha:1.6 ~x_min:(float_of_int preset.mean_file_bytes /. 2.5) in
          min (int_of_float x) (preset.mean_file_bytes * 30)
        in
        let dir = Prng.pick rng dirs in
        let path = Printf.sprintf "%s/%s_%04d%s" dir preset.preset_name i ext in
        { path; content = gen_content preset rng ~bytes:size })
  in
  let mutate_file f =
    let r = Prng.float rng 1.0 in
    if r < preset.p_unchanged then f
    else begin
      let profile =
        if r < preset.p_unchanged +. preset.p_light then Edit_model.light
        else if r < preset.p_unchanged +. preset.p_light +. preset.p_medium then
          Edit_model.medium
        else Edit_model.heavy
      in
      { f with content = Edit_model.mutate rng ~profile ~gen_text:edit_text f.content }
    end
  in
  let new_version = List.map mutate_file files in
  { name = preset.preset_name; old_version = files; new_version }

let total_bytes files =
  List.fold_left (fun acc f -> acc + String.length f.content) 0 files

let changed_files pair =
  let tbl = Hashtbl.create 64 in
  List.iter (fun f -> Hashtbl.replace tbl f.path f) pair.old_version;
  List.filter_map
    (fun nf ->
      match Hashtbl.find_opt tbl nf.path with
      | Some old -> Some (old, nf)
      | None -> None)
    pair.new_version
