(** Synthetic source-tree version pairs standing in for the gcc
    2.7.0 -> 2.7.1 and emacs 19.28 -> 19.29 datasets of §6.1.

    The generators are calibrated to the update profile of those
    datasets: a minor release touches a modest fraction of files with
    small, clustered diffs (gcc), a larger release touches more files
    more heavily (emacs).  File sizes are heavy-tailed. *)

type file = { path : string; content : string }

type pair = {
  name : string;
  old_version : file list;
  new_version : file list;
}

type preset = {
  preset_name : string;
  n_files : int;
  mean_file_bytes : int;
  seed : int64;
  dialect : [ `C | `Lisp ];
  p_unchanged : float;          (** files identical across versions *)
  p_light : float;              (** small clustered edits *)
  p_medium : float;
  (* remainder: heavy rewrite *)
}

val gcc_preset : scale:float -> preset
(** [scale = 1.0] approximates the paper's dataset (~1000 files, ~27 MB);
    smaller scales shrink the file count proportionally. *)

val emacs_preset : scale:float -> preset

val generate : preset -> pair

val total_bytes : file list -> int

val changed_files : pair -> (file * file) list
(** (old, new) for paths present in both versions, unchanged ones
    included — the synchronization experiments iterate over these. *)
