let scale () =
  match Sys.getenv_opt "FSYNC_SCALE" with
  | None -> 0.08
  | Some "full" -> 1.0
  | Some "small" -> 0.08
  | Some "tiny" -> 0.02
  | Some s -> ( match float_of_string_opt s with Some f when f > 0.0 -> f | _ -> 0.08)

let scale_name () =
  let s = scale () in
  if s >= 1.0 then "full"
  else if s <= 0.02 then "tiny"
  else Printf.sprintf "%.2fx" s

let gcc () = Source_tree.generate (Source_tree.gcc_preset ~scale:(scale ()))

let emacs () = Source_tree.generate (Source_tree.emacs_preset ~scale:(scale ()))

let web_preset () = Web_collection.default_preset ~scale:(scale ())

let web_base () = Web_collection.base (web_preset ())

let web_snapshots ~days =
  let preset = web_preset () in
  let base = Web_collection.base preset in
  List.map (fun d -> Web_collection.evolve preset base ~days:d) days
