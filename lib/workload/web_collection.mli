(** The recrawled web collection of §6.3: ten thousand pages crawled
    nightly, base set plus snapshots 1, 2 and 7 days later.

    The change process matches what the paper observes: "Some of the files
    are not updated at all between crawls, while others change only
    slightly" — each night a page changes with a per-page probability;
    most changed pages get small localized edits (dates, counters, one new
    item), and a small population of high-churn pages (news front pages)
    changes heavily every night.  Pages of one site share boilerplate. *)

type page = { url : string; content : string }

type preset = {
  n_pages : int;
  mean_body_words : int;        (** body length scale; ~15 KB/page at 450 *)
  n_sites : int;                (** pages per site share a template *)
  seed : int64;
  p_change_per_day : float;     (** ordinary pages *)
  churn_fraction : float;       (** pages that change heavily every day *)
}

val default_preset : scale:float -> preset
(** [scale = 1.0]: 10,000 pages, ~150 MB. *)

val base : preset -> page array

val evolve : preset -> page array -> days:int -> page array
(** Apply [days] nights of the change process (deterministic in the
    preset seed and day count). *)

val total_bytes : page array -> int
