(** The complete multi-round synchronization protocol (§5.6).

    Runs both endpoints in-process, exchanging genuinely serialized
    messages through a {!Fsync_net.Channel} so that every reported byte was
    actually packed onto and parsed back off the wire.  Per round:

    + continuation phase — tiny hashes for blocks adjacent to confirmed
      matches, compared at the predicted positions only;
    + local phase (optional) — small hashes compared in a neighborhood of
      a predicted position;
    + global phase — weak hashes (decomposably encoded) for remaining
      full-size blocks, matched against every window of the old file;

    each phase's candidates verified by the group-testing schedule of the
    configuration.  After the last round the unknown regions are delta
    compressed against the known ones and shipped. *)

type report = {
  header_c2s : int;       (** request + fingerprint bytes *)
  header_s2c : int;
  map_c2s : int;          (** candidate bitmaps + verification hashes *)
  map_s2c : int;          (** block hashes + confirmation bitmaps *)
  delta_bytes : int;
  fallback_bytes : int;   (** compressed full file after a detected failure *)
  total_c2s : int;
  total_s2c : int;
  roundtrips : int;
  rounds : int;
  matches : int;          (** confirmed map entries *)
  covered_bytes : int;    (** target bytes the map construction resolved *)
  hashes_sent : int;
  candidates_tested : int;
  phase_stats : (string * phase_stat) list;
      (** per phase ("cont" / "local" / "global"): hashes sent, candidate
          hits, confirmed matches — the "harvest rate" data of §6.2 *)
  unchanged : bool;
  fallback : bool;
}

and phase_stat = { hashes : int; hits : int; confirms : int }

val total_bytes : report -> int

type result = { reconstructed : string; report : report }

val run :
  ?channel:Fsync_net.Channel.t ->
  ?scope:Fsync_obs.Scope.t ->
  config:Config.t ->
  old_file:string ->
  string ->
  result
(** [run ~config ~old_file new_file] synchronizes one file; the returned
    reconstruction always equals [new_file] (via fallback in the
    collision case).

    An enabled [scope] records per-round spans ([round], [phase_cont],
    [phase_local], [phase_global], [phase_delta]), paper-metric counters
    ([weak_candidates_found] / [weak_candidates_confirmed],
    [cont_accepts] / [cont_rejects], [salvage_retries] /
    [salvage_recoveries], [protocol_fallbacks], and the group-testing
    counters via the server-side engine) and a [round_hashes] histogram.
    The default disabled scope costs one branch per event.
    @raise Error.E ([Malformed]) if the configuration fails
    {!Config.validate}.
    @raise Error.E if the channel delivers corrupt or missing messages
    (only possible over a faulty link — see {!Fsync_net.Fault}); use
    {!run_result} in that setting. *)

val run_result :
  ?channel:Fsync_net.Channel.t ->
  ?scope:Fsync_obs.Scope.t ->
  config:Config.t ->
  old_file:string ->
  string ->
  (result, Error.t) Stdlib.result
(** {!run} wrapped in {!Error.guard}: over a faulty channel, corrupt or
    missing messages surface as a typed error instead of an exception.
    {!Fsync_net.Fault.Disconnected} still propagates so a session driver
    can checkpoint and resume. *)

val pp_report : Format.formatter -> report -> unit
