type t =
  | Truncated of string
  | Malformed of string
  | Limit_exceeded of string
  | Channel_empty of string
  | Retry_exhausted of string
  | Disconnected of string
  | Verification_failed of string
  | Busy of { retry_after_s : float }

exception E of t

let fail e = raise (E e)

let truncated fmt = Printf.ksprintf (fun s -> fail (Truncated s)) fmt
let malformed fmt = Printf.ksprintf (fun s -> fail (Malformed s)) fmt
let limit fmt = Printf.ksprintf (fun s -> fail (Limit_exceeded s)) fmt
let channel_empty fmt = Printf.ksprintf (fun s -> fail (Channel_empty s)) fmt

let to_string = function
  | Truncated s -> "truncated message: " ^ s
  | Malformed s -> "malformed message: " ^ s
  | Limit_exceeded s -> "decode limit exceeded: " ^ s
  | Channel_empty s -> "no pending message: " ^ s
  | Retry_exhausted s -> "retry budget exhausted: " ^ s
  | Disconnected s -> "disconnected: " ^ s
  | Verification_failed s -> "verification failed: " ^ s
  | Busy { retry_after_s } ->
      Printf.sprintf "server busy: retry after %.3f s" retry_after_s

let pp ppf e = Format.pp_print_string ppf (to_string e)

let () =
  Printexc.register_printer (function
    | E e -> Some ("Fsync_core.Error.E: " ^ to_string e)
    | _ -> None)

let of_exn = function
  | E e -> Some e
  | Invalid_argument msg | Failure msg -> Some (Malformed msg)
  | Not_found -> Some (Malformed "lookup failed on malformed input")
  | Fsync_net.Frame.Failed err ->
      Some (Retry_exhausted (Fsync_net.Frame.error_message err))
  | Fsync_net.Fd_transport.Closed -> Some (Disconnected "peer closed")
  | Fsync_net.Fd_transport.Oversized n ->
      Some (Limit_exceeded (Printf.sprintf "frame of %d bytes" n))
  | _ -> None

let guard f =
  match f () with
  | v -> Ok v
  | exception (Fsync_net.Fault.Disconnected _ as e) ->
      (* Deliberately not converted: session drivers catch disconnects to
         checkpoint and resume.  Re-raise. *)
      raise e
  | exception exn -> (
      match of_exn exn with Some e -> Error e | None -> raise exn)
