(** Group-testing engine for optimized match verification (§5.3).

    Candidate matches are "items", false matches are the "defective" ones;
    each test asks "are all candidates in this group genuine?" by
    comparing one k-bit hash over the group's concatenated contents.  A
    passing test is trusted to 2^-k; a failing test proves at least one
    defective member.  The engine tracks, identically on both endpoints,
    which candidates are still uncertain, which accumulated enough passed
    bits to be confirmed, and which are dead — so the two sides always
    agree on the next batch's group partition without exchanging ids.

    The client additionally decides, after a failed individual test,
    whether to retry the block with an alternate candidate position; that
    decision is the only asymmetric input and enters through
    {!resolve_retries} (driven by an explicit bitmap on the wire). *)

type status = Uncertain | Confirmed | Dead | Await_retry

type t

val create : ?scope:Fsync_obs.Scope.t -> n:int -> Config.verification -> t
(** Engine over [n] candidates, all initially uncertain.  An enabled
    [scope] counts [group_tests_total] / [group_tests_passed] /
    [group_tests_failed] as results are applied. *)

val current_batch : t -> Config.batch option
(** [None] once the schedule is exhausted (or nothing is uncertain). *)

val groups : t -> int list list
(** Partition of the currently uncertain candidate indices into groups of
    the current batch's size, in canonical order. *)

val apply_results : t -> bool array -> unit
(** One pass/fail bit per group of {!groups}; updates statuses and, if no
    retries are pending, advances to the next batch.
    @raise Error.E ([Malformed]) on arity mismatch. *)

val pending_retries : t -> int list
(** Candidates waiting for the client's retry decision, canonical order. *)

val resolve_retries : t -> bool array -> unit
(** One bit per {!pending_retries} element: retried (back to uncertain,
    evidence reset) or abandoned (dead).  Advances to the next batch. *)

val status : t -> int -> status
val confirmed : t -> bool array
(** Final (or current) confirmation flags per candidate. *)

val finished : t -> bool
