(** Searching with lies: the model behind continuation hashes (§5.4).

    Extending a confirmed match rightwards is a binary search for the true
    extension length with unreliable comparisons: a continuation test at
    depth asks "does the match extend through this block?" and a k-bit
    continuation hash answers — truthfully when the answer is "yes it
    extends" is false... precisely, the paper's model: when the correct
    answer is "go right" it is always returned; otherwise a wrong answer
    is returned with probability 2^-k (a hash collision pretends the
    extension continues).  This is Ulam's problem with one-sided lies
    ([37], [49]).

    This module simulates strategies for that game so their costs can be
    compared, which is how the default continuation hash width (4 bits)
    was chosen:
    - {!Halving}: recursive halving with a single continuation test per
      level and a full verification of the final answer — the strategy
      the protocol implements;
    - {!Verify_each}: verify every positive answer immediately with a
      strong hash (the "not optimal" strategy the paper cites known
      results against);
    - {!Optimistic}: descend on weak answers only, then verify the final
      position once and restart on failure. *)

type strategy = Halving | Verify_each | Optimistic

type result = {
  avg_query_bits : float;   (** expected bits of hash material consumed *)
  avg_queries : float;      (** expected number of comparisons *)
  error_rate : float;       (** fraction of searches ending on a wrong answer *)
}

val simulate :
  ?trials:int ->
  ?seed:int64 ->
  ?scope:Fsync_obs.Scope.t ->
  strategy ->
  lie_bits:int ->
  verify_bits:int ->
  max_extent:int ->
  result
(** [simulate strategy ~lie_bits ~verify_bits ~max_extent]: the true
    extension length is uniform in [\[0, max_extent\]]; each weak
    comparison costs [lie_bits] and lies one-sidedly with probability
    [2^-lie_bits]; strong verifications cost [verify_bits] and are exact.
    An enabled [scope] accumulates the total comparison count in the
    [liar_search_rounds] counter.
    @raise Error.E (Malformed) on non-positive parameters. *)

val compare_strategies :
  ?trials:int -> lie_bits:int -> verify_bits:int -> max_extent:int -> unit ->
  (strategy * result) list
(** All three strategies under the same parameters. *)

val strategy_name : strategy -> string
