module Poly_hash = Fsync_hash.Poly_hash

(* Counting sort on the low bits of the truncated hash: O(n) build, O(1)
   expected lookup, no boxed comparisons — this index is rebuilt for every
   round's window size, so it dominates client CPU time. *)

type t = {
  keys : int array;    (* full truncated key per slot, bucket-sorted *)
  pos : int array;     (* window position per slot *)
  offsets : int array; (* bucket -> first slot; length nbuckets + 1 *)
  bucket_mask : int;
  window : int;
}

let max_bucket_bits = 20

let build data ~window ~bits =
  let n = String.length data in
  if window <= 0 then Error.malformed "Candidates.build: window <= 0";
  let count = n - window + 1 in
  if count <= 0 then
    { keys = [||]; pos = [||]; offsets = [| 0; 0 |]; bucket_mask = 0; window }
  else begin
    (* Bucket count ~ position count: a wider table would be dominated by
       its own clearing cost on small files. *)
    let rec log2_ceil k v = if v >= count then k else log2_ceil (k + 1) (v * 2) in
    let bbits = min (min bits max_bucket_bits) (log2_ceil 1 2) in
    let nbuckets = 1 lsl bbits in
    let bucket_mask = nbuckets - 1 in
    let raw_keys = Poly_hash.window_hashes data ~window ~bits in
    let counts = Array.make (nbuckets + 1) 0 in
    for i = 0 to count - 1 do
      let b = raw_keys.(i) land bucket_mask in
      counts.(b + 1) <- counts.(b + 1) + 1
    done;
    for b = 1 to nbuckets do
      counts.(b) <- counts.(b) + counts.(b - 1)
    done;
    let offsets = Array.copy counts in
    let keys = Array.make count 0 and pos = Array.make count 0 in
    for i = 0 to count - 1 do
      let b = raw_keys.(i) land bucket_mask in
      let slot = counts.(b) in
      counts.(b) <- slot + 1;
      keys.(slot) <- raw_keys.(i);
      pos.(slot) <- i
    done;
    { keys; pos; offsets; bucket_mask; window }
  end

let lookup t key =
  if Array.length t.keys = 0 then []
  else begin
    let b = key land t.bucket_mask in
    let lo = t.offsets.(b) and hi = t.offsets.(b + 1) in
    let acc = ref [] in
    for s = hi - 1 downto lo do
      if Int.equal t.keys.(s) key then acc := t.pos.(s) :: !acc
    done;
    (* Positions ascend within a bucket because the placement pass scans
       ascending positions. *)
    !acc
  end

let window t = t.window

let select ~cap ~predicted positions =
  let ranked =
    match predicted with
    | None -> positions
    | Some p ->
        List.stable_sort
          (fun a b -> Int.compare (abs (a - p)) (abs (b - p)))
          positions
  in
  List.filteri (fun i _ -> i < cap) ranked
