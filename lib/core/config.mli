(** Protocol configuration (§5.6: "a simple parameter file is used to
    specify all the options and techniques that should be used in each
    round").

    Every technique of §5 is an independent knob so the benchmarks can
    reproduce each figure's ablation: recursive splitting bounds, weak
    hash widths, the verification schedule (trivial vs. group testing with
    1-3 batches), continuation and local hashes, decomposable hash
    transmission. *)

type batch = {
  group_size : int;  (** 1 = individual tests; n > 1 = group tests *)
  bits : int;        (** verification hash width for this batch *)
}

type verification = {
  batches : batch list;    (** executed in order; each batch is one
                               client->server->client round trip *)
  confirm_bits : int;      (** accumulated passed-test bits needed to
                               declare a candidate a confirmed match *)
  retry_alternates : bool; (** after a failed individual test, retry the
                               block with its next candidate position *)
}

type continuation = {
  cont_enabled : bool;
  cont_bits : int;           (** hash width; "even a very small number of
                                 bits (say, 3 or 4) per hash" *)
  cont_min_block : int;      (** recurse extensions down to this size *)
}

type local = {
  local_enabled : bool;
  local_bits : int;
  local_window : int;        (** candidate positions searched around the
                                 prediction: [pred - w, pred + w] *)
  local_range : int;         (** max target-space distance to the nearest
                                 confirmed match for a block to qualify *)
}

type t = {
  start_block : int;          (** largest (power-of-two) block size *)
  min_global_block : int;     (** stop sending global hashes below this *)
  global_slack_bits : int;    (** global hash width =
                                  ceil(log2 old-file-size) + slack *)
  decomposable : bool;        (** derive right-sibling hashes, send only
                                  top-up bits (§5.5) *)
  verification : verification;
  continuation : continuation;
  local : local;
  skip_sibling_after_cont : bool;
      (** §5.4: omit the global hash of a block whose sibling was confirmed
          by a continuation hash this round *)
  omit_global_after_cont_miss : bool;
      (** §5.4: omit the global hash of a block whose continuation hash
          found no match this round *)
  candidate_cap : int;        (** client-side bound on remembered candidate
                                  positions per block *)
  compress_messages : bool;   (** deflate protocol messages; off by default:
                                  hash bits are incompressible and the flag
                                  byte outweighs the bitmap savings on
                                  typical message sizes (see the ablation
                                  bench) *)
  delta_profile : Fsync_delta.Delta.profile;
}

val trivial_verification : verification
(** One 16-bit hash per candidate, single batch. *)

val grouped_verification : int -> verification
(** [grouped_verification n_roundtrips] for n in 1-3: the optimized
    schedules of Fig 6.4 — a weak individual filter, then growing group
    tests, then individual salvage. *)

val basic : t
(** Fig 6.1/6.2 configuration: recursive halving, decomposable hashes,
    trivial per-candidate verification; no continuation, no grouping. *)

val with_continuation : ?cont_min_block:int -> t -> t
(** Enable continuation hashes (Fig 6.3). *)

val tuned : t
(** All techniques, the Table 6.1 configuration. *)

val single_round : t
(** §7's restricted setting: one block size, one hash round plus the
    delta — two to three round trips total, for latency-bound links
    where the full recursion is not worth it. *)

val global_bits : t -> old_file_len:int -> int
(** Width of global hashes for this old-file size. *)

val validate : t -> (unit, string) result
(** Sanity-check parameter ranges and power-of-two constraints. *)

val pp : Format.formatter -> t -> unit
