module Prng = Fsync_util.Prng
module Scope = Fsync_obs.Scope

type strategy = Halving | Verify_each | Optimistic

type result = {
  avg_query_bits : float;
  avg_queries : float;
  error_rate : float;
}

let strategy_name = function
  | Halving -> "halving + final verify"
  | Verify_each -> "verify every positive"
  | Optimistic -> "no verification"

(* Ground truth: true extent [l].  A weak query "is extent >= m?" answers
   truthfully when the extent does reach m, and lies "yes" with
   probability 2^-lie_bits when it does not (a continuation hash
   collision).  A strong query is exact. *)
let simulate ?(trials = 2000) ?(seed = 11L) ?(scope = Scope.disabled) strategy
    ~lie_bits ~verify_bits ~max_extent =
  if lie_bits <= 0 || verify_bits <= 0 || max_extent <= 0 then
    Error.malformed "Liar_search.simulate: non-positive parameter";
  let rng = Prng.create seed in
  let lie_p = 1.0 /. float_of_int (1 lsl min lie_bits 30) in
  let total_bits = ref 0 and total_queries = ref 0 and errors = ref 0 in
  for _ = 1 to trials do
    let l = Prng.int rng (max_extent + 1) in
    let bits = ref 0 and queries = ref 0 in
    let weak m =
      bits := !bits + lie_bits;
      incr queries;
      l >= m || Prng.bernoulli rng lie_p
    in
    let strong m =
      bits := !bits + verify_bits;
      incr queries;
      l >= m
    in
    let binary_search query =
      let lo = ref 0 and hi = ref max_extent in
      while !lo < !hi do
        let m = (!lo + !hi + 1) / 2 in
        if query m then lo := m else hi := m - 1
      done;
      !lo
    in
    let answer =
      match strategy with
      | Optimistic -> binary_search weak
      | Verify_each ->
          (* A positive weak answer is immediately confirmed; negatives are
             trusted (they cannot be lies in this one-sided model). *)
          binary_search (fun m -> weak m && strong m)
      | Halving ->
          (* Weak-only descent, one exact check of the final answer,
             restart on detected failure. *)
          let rec attempt k =
            let a = binary_search weak in
            let ok =
              (* verify "extent >= a" and "extent < a+1" with one strong
                 hash over the a-byte extension *)
              bits := !bits + verify_bits;
              incr queries;
              Int.equal a l
            in
            if ok || k >= 10 then (a, ok) else attempt (k + 1)
          in
          let a, ok = attempt 1 in
          if not ok then incr errors;
          a
    in
    (match strategy with
    | Halving -> () (* errors already counted *)
    | Verify_each | Optimistic -> if not (Int.equal answer l) then incr errors);
    total_bits := !total_bits + !bits;
    total_queries := !total_queries + !queries
  done;
  Scope.add scope "liar_search_rounds" !total_queries;
  let fl = float_of_int in
  {
    avg_query_bits = fl !total_bits /. fl trials;
    avg_queries = fl !total_queries /. fl trials;
    error_rate = fl !errors /. fl trials;
  }

let compare_strategies ?trials ~lie_bits ~verify_bits ~max_extent () =
  List.map
    (fun s -> (s, simulate ?trials s ~lie_bits ~verify_bits ~max_extent))
    [ Optimistic; Halving; Verify_each ]
