(** Cost model for match-verification strategies (§5.3).

    The optimized verification of §5.3 is a group-testing problem: given
    [n] candidate matches of which each is genuine independently with
    probability [p] (the precision of the weak filter hashes), and tests
    that compare a k-bit hash over a group — always passing for an
    all-genuine group, passing with probability 2^-k otherwise — find the
    schedule minimizing expected transmitted bits while confirming genuine
    candidates with at least [confirm_bits] bits of evidence.

    The paper reports that "using only two or three batches of tests
    already gives close to optimal results"; this module quantifies that:
    {!expected_cost} evaluates any {!Config.verification} schedule by
    Monte-Carlo simulation of the engine actually used on the wire
    ({!Group_testing}), and {!recommend} searches a menu of schedules.
    The ['theory'] bench target prints the comparison. *)

type outcome = {
  bits_per_candidate : float;
      (** expected client->server verification bits / candidate *)
  reply_bits_per_candidate : float;
      (** expected server->client confirmation bits / candidate *)
  confirmed_genuine : float;
      (** fraction of genuine candidates that end confirmed (recall) *)
  false_confirms : float;
      (** fraction of spurious candidates that end confirmed *)
  roundtrips : float;  (** average verification round trips used *)
}

val expected_cost :
  ?trials:int ->
  ?seed:int64 ->
  p_genuine:float ->
  n:int ->
  Config.verification ->
  outcome
(** Simulate the schedule on [n] candidates per trial.
    @raise Error.E ([Malformed]) if [p_genuine] is outside [0,1] or [n <= 0]. *)

val menu : Config.verification list
(** The schedules searched by {!recommend}: trivial, the 1-3 round-trip
    grouped schedules, and a few additional group-size ladders. *)

val recommend :
  ?trials:int -> ?seed:int64 -> p_genuine:float -> n:int -> unit ->
  Config.verification * outcome
(** Cheapest menu schedule whose recall is at least 0.98 and whose false
    confirm rate is below 1e-3. *)
