module Poly = Fsync_hash.Poly_hash
module Prng = Fsync_util.Prng

type probe_result = {
  similarity : float;
  probe_c2s : int;
  probe_s2c : int;
  chosen : Config.t;
  rationale : string;
}

let probe_block = 256

let choose ~similarity ~new_len =
  if new_len < 4 * probe_block then
    ( { Config.tuned with start_block = 256; min_global_block = 64 },
      "small file: shallow recursion from 256 B" )
  else if similarity >= 0.10 then (Config.tuned, "similar: tuned preset")
  else if similarity > 0.01 then
    ( { Config.tuned with min_global_block = 512; start_block = 2048 },
      "low similarity: shallow map construction only" )
  else
    ( {
        Config.tuned with
        (* Degenerate map phase: one round at the largest size, then
           delta (which, with an empty reference, is a compressed send). *)
        start_block = 4096;
        min_global_block = 4096;
        continuation = { Config.tuned.continuation with cont_enabled = false };
      },
      "no detected similarity: skip to compressed transfer" )

let probe ?(probes = 16) ?(seed = 0xADA9L) ~old_file new_file =
  let bits = 20 in
  let n_new = String.length new_file in
  let usable = n_new - probe_block in
  let positions =
    if usable <= 0 then []
    else begin
      let rng = Prng.create seed in
      List.init (min probes (max 1 (usable / probe_block))) (fun i ->
          let stride = usable / min probes (max 1 (usable / probe_block)) in
          min usable ((i * stride) + Prng.int rng (max 1 (stride / 2))))
    end
  in
  let hits =
    if positions = [] || String.length old_file < probe_block then 0
    else begin
      let idx = Candidates.build old_file ~window:probe_block ~bits in
      List.fold_left
        (fun acc pos ->
          let h =
            Poly.truncate (Poly.hash_sub new_file ~pos ~len:probe_block) ~bits
          in
          if Candidates.lookup idx h <> [] then acc + 1 else acc)
        0 positions
    end
  in
  let n_probes = List.length positions in
  let similarity =
    if n_probes = 0 then 0.0 else float_of_int hits /. float_of_int n_probes
  in
  let chosen, rationale = choose ~similarity ~new_len:n_new in
  {
    similarity;
    (* server sends n hashes of [bits] bits; client replies with a count *)
    probe_s2c = ((n_probes * bits) + 7) / 8;
    probe_c2s = 2;
    chosen;
    rationale;
  }

let sync ?probes ~old_file new_file =
  let pr = probe ?probes ~old_file new_file in
  (Protocol.run ~config:pr.chosen ~old_file new_file, pr)
