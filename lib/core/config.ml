type batch = { group_size : int; bits : int }

type verification = {
  batches : batch list;
  confirm_bits : int;
  retry_alternates : bool;
}

type continuation = {
  cont_enabled : bool;
  cont_bits : int;
  cont_min_block : int;
}

type local = {
  local_enabled : bool;
  local_bits : int;
  local_window : int;
  local_range : int;
}

type t = {
  start_block : int;
  min_global_block : int;
  global_slack_bits : int;
  decomposable : bool;
  verification : verification;
  continuation : continuation;
  local : local;
  skip_sibling_after_cont : bool;
  omit_global_after_cont_miss : bool;
  candidate_cap : int;
  compress_messages : bool;
  delta_profile : Fsync_delta.Delta.profile;
}

let trivial_verification =
  { batches = [ { group_size = 1; bits = 16 } ]; confirm_bits = 14; retry_alternates = false }

let grouped_verification = function
  | 1 ->
      (* One extra round trip: weak individual filter + one strong group. *)
      {
        batches = [ { group_size = 1; bits = 6 }; { group_size = 8; bits = 16 } ];
        confirm_bits = 14;
        retry_alternates = false;
      }
  | 2 ->
      {
        batches =
          [ { group_size = 1; bits = 5 };
            { group_size = 8; bits = 16 };
            { group_size = 1; bits = 16 } ];
        confirm_bits = 14;
        retry_alternates = true;
      }
  | 3 ->
      {
        batches =
          [ { group_size = 1; bits = 4 };
            { group_size = 4; bits = 12 };
            { group_size = 16; bits = 16 };
            { group_size = 1; bits = 16 } ];
        confirm_bits = 14;
        retry_alternates = true;
      }
  | n -> Error.malformed "grouped_verification: %d not in 1-3" n

let no_continuation = { cont_enabled = false; cont_bits = 4; cont_min_block = 16 }

let no_local =
  { local_enabled = false; local_bits = 10; local_window = 64; local_range = 4096 }

let basic =
  {
    start_block = 2048;
    min_global_block = 64;
    global_slack_bits = 3;
    decomposable = true;
    verification = trivial_verification;
    continuation = no_continuation;
    local = no_local;
    skip_sibling_after_cont = false;
    omit_global_after_cont_miss = false;
    candidate_cap = 4;
    compress_messages = false;
    delta_profile = Fsync_delta.Delta.Zdelta;
  }

let with_continuation ?(cont_min_block = 16) t =
  {
    t with
    continuation = { cont_enabled = true; cont_bits = 4; cont_min_block };
    skip_sibling_after_cont = true;
  }

let tuned =
  (* Swept over {32,64,128,256} x cont {8,16} on both source-tree presets:
     64-byte global stop with 8-byte continuation wins by ~9%. *)
  with_continuation ~cont_min_block:8
    { basic with verification = grouped_verification 2; min_global_block = 64 }

let single_round =
  {
    basic with
    start_block = 512;
    min_global_block = 512;
    verification = trivial_verification;
  }

let ceil_log2 n =
  let rec loop k v =
    (* v doubles; guard the shift against overflow for huge n *)
    if v >= n || k >= 62 then k else loop (k + 1) (v * 2)
  in
  if n <= 1 then 0 else loop 0 1

let global_bits t ~old_file_len =
  let bits = ceil_log2 (max old_file_len 2) + t.global_slack_bits in
  min bits 32

let is_pow2 n = n > 0 && n land (n - 1) = 0

let validate t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if not (is_pow2 t.start_block) then err "start_block %d not a power of two" t.start_block
  else if not (is_pow2 t.min_global_block) then
    err "min_global_block %d not a power of two" t.min_global_block
  else if t.min_global_block > t.start_block then
    err "min_global_block exceeds start_block"
  else if t.global_slack_bits < 0 || t.global_slack_bits > 16 then
    err "global_slack_bits %d out of [0,16]" t.global_slack_bits
  else if t.verification.batches = [] then err "verification needs at least one batch"
  else if
    List.exists
      (fun b -> b.group_size < 1 || b.bits < 1 || b.bits > 32)
      t.verification.batches
  then err "verification batch out of range"
  else if t.continuation.cont_enabled && not (is_pow2 t.continuation.cont_min_block)
  then err "cont_min_block not a power of two"
  else if t.continuation.cont_bits < 1 || t.continuation.cont_bits > 16 then
    err "cont_bits out of [1,16]"
  else if t.candidate_cap < 1 then err "candidate_cap must be >= 1"
  else Ok ()

let pp ppf t =
  let v = t.verification in
  Format.fprintf ppf
    "@[<v>start=%d min_global=%d slack=+%d decomposable=%b@ verification: \
     confirm>=%d retry=%b batches=[%s]@ continuation: %b bits=%d min=%d@ \
     local: %b@ skip_sibling=%b omit_after_miss=%b cap=%d@]"
    t.start_block t.min_global_block t.global_slack_bits t.decomposable
    v.confirm_bits v.retry_alternates
    (String.concat "; "
       (List.map
          (fun b -> Printf.sprintf "%dx%db" b.group_size b.bits)
          v.batches))
    t.continuation.cont_enabled t.continuation.cont_bits
    t.continuation.cont_min_block t.local.local_enabled
    t.skip_sibling_after_cont t.omit_global_after_cont_miss t.candidate_cap
