module Seg = Fsync_util.Segments
module Poly = Fsync_hash.Poly_hash
module Md5 = Fsync_hash.Md5
module Fp = Fsync_hash.Fingerprint
module Channel = Fsync_net.Channel
module Delta = Fsync_delta.Delta
module Deflate = Fsync_compress.Deflate
module Scope = Fsync_obs.Scope

type report = {
  header_c2s : int;
  header_s2c : int;
  map_c2s : int;
  map_s2c : int;
  delta_bytes : int;
  fallback_bytes : int;
  total_c2s : int;
  total_s2c : int;
  roundtrips : int;
  rounds : int;
  matches : int;
  covered_bytes : int;
  hashes_sent : int;
  candidates_tested : int;
  phase_stats : (string * phase_stat) list;
  unchanged : bool;
  fallback : bool;
}

and phase_stat = {
  hashes : int;      (* hashes transmitted for this phase *)
  hits : int;        (* blocks for which the client found a candidate *)
  confirms : int;    (* blocks confirmed by verification *)
}

let total_bytes r = r.total_c2s + r.total_s2c

type result = { reconstructed : string; report : report }

type counters = {
  mutable c_header_c2s : int;
  mutable c_header_s2c : int;
  mutable c_map_c2s : int;
  mutable c_map_s2c : int;
  mutable c_delta : int;
  mutable c_fallback : int;
  mutable c_hashes : int;
  mutable c_cands : int;
  mutable c_phase : (string * phase_stat) list;
}

type kind = Header | Map | Delta_k | Fallback_k

(* Which phase of a round a hash message belongs to; phases share the
   verification machinery but construct hashes differently. *)
type phase = Cont | Local | Global

let phase_label = function Cont -> "cont" | Local -> "local" | Global -> "global"

(* Monomorphic equality for the phase marker (R1): phases select wire
   behavior, so their comparison must not go through polymorphic [=]. *)
let equal_phase a b =
  match (a, b) with
  | Cont, Cont | Local, Local | Global, Global -> true
  | (Cont | Local | Global), _ -> false

let mask_bits bits = (1 lsl bits) - 1

let run ?channel ?(scope = Scope.disabled) ~config ~old_file new_file =
  (match Config.validate config with
  | Ok () -> ()
  | Error e -> Error.malformed "Protocol.run: %s" e);
  let cfg : Config.t = config in
  let ch = match channel with Some c -> c | None -> Channel.create () in
  let f_old = old_file and f_new = new_file in
  let n_old = String.length f_old and n_new = String.length f_new in
  let cnt =
    {
      c_header_c2s = 0;
      c_header_s2c = 0;
      c_map_c2s = 0;
      c_map_s2c = 0;
      c_delta = 0;
      c_fallback = 0;
      c_hashes = 0;
      c_cands = 0;
      c_phase = [];
    }
  in
  let send dir kind label msg =
    Channel.send ch ~label dir msg;
    let len = String.length msg in
    match (dir, kind) with
    | Channel.Client_to_server, Header -> cnt.c_header_c2s <- cnt.c_header_c2s + len
    | Channel.Server_to_client, Header -> cnt.c_header_s2c <- cnt.c_header_s2c + len
    | Channel.Client_to_server, Map -> cnt.c_map_c2s <- cnt.c_map_c2s + len
    | Channel.Server_to_client, Map -> cnt.c_map_s2c <- cnt.c_map_s2c + len
    | _, Delta_k -> cnt.c_delta <- cnt.c_delta + len
    | _, Fallback_k -> cnt.c_fallback <- cnt.c_fallback + len
  in
  let recv dir =
    match Channel.recv_opt ch dir with
    | Some msg -> msg
    | None ->
        Error.channel_empty "Protocol: expected a %s message"
          (match dir with
          | Channel.Client_to_server -> "client-to-server"
          | Channel.Server_to_client -> "server-to-client")
  in
  let bump_phase name f =
    let cur =
      match List.assoc_opt name cnt.c_phase with
      | Some st -> st
      | None -> { hashes = 0; hits = 0; confirms = 0 }
    in
    cnt.c_phase <- (name, f cur) :: List.remove_assoc name cnt.c_phase
  in
  let compress = cfg.compress_messages in

  (* ---- header exchange ---- *)
  let fp_old = Fp.of_string f_old and fp_new = Fp.of_string f_new in
  send Client_to_server Header "hello"
    (Wire.pack ~compress (fun w ->
         Wire.put_varint w n_old;
         Wire.put_string w (Fp.to_raw fp_old)));
  (* server *)
  let r = Wire.unpack ~compress (recv Client_to_server) in
  let srv_n_old = Wire.get_varint r in
  let srv_fp_old = Fp.of_raw (Wire.get_string r) in
  let unchanged = Fp.equal srv_fp_old fp_new in
  send Server_to_client Header "info"
    (Wire.pack ~compress (fun w ->
         Wire.put_hash w (if unchanged then 1 else 0) ~width:1;
         Wire.put_varint w n_new;
         Wire.put_string w (Fp.to_raw fp_new)));
  (* client *)
  let r = Wire.unpack ~compress (recv Server_to_client) in
  let cli_unchanged = Wire.get_hash r ~width:1 = 1 in
  let cli_n_new = Wire.get_varint r in
  let cli_fp_new = Fp.of_raw (Wire.get_string r) in

  let make_report ~unchanged ~fallback ~rounds ~matches ~covered =
    {
      header_c2s = cnt.c_header_c2s;
      header_s2c = cnt.c_header_s2c;
      map_c2s = cnt.c_map_c2s;
      map_s2c = cnt.c_map_s2c;
      delta_bytes = cnt.c_delta;
      fallback_bytes = cnt.c_fallback;
      total_c2s = Channel.bytes ch Client_to_server;
      total_s2c = Channel.bytes ch Server_to_client;
      roundtrips = Channel.roundtrips ch;
      rounds;
      matches;
      covered_bytes = covered;
      hashes_sent = cnt.c_hashes;
      candidates_tested = cnt.c_cands;
      phase_stats =
        List.sort (fun (a, _) (b, _) -> String.compare a b) cnt.c_phase;
      unchanged;
      fallback;
    }
  in
  if cli_unchanged then
    {
      reconstructed = f_old;
      report = make_report ~unchanged:true ~fallback:false ~rounds:0 ~matches:0 ~covered:n_new;
    }
  else begin
    (* ---- map construction ---- *)
    let tree_c = Block_tree.create ~file_len:cli_n_new ~start_block:cfg.start_block in
    let tree_s = Block_tree.create ~file_len:n_new ~start_block:cfg.start_block in
    let map = ref Match_map.empty in
    (* Confirmed target segments: common knowledge of both endpoints (each
       observes every confirmation), kept once. *)
    let segs = ref Seg.empty in
    (* Client store of reconstructed block hashes for §5.5 derivation. *)
    let hash_store : (int, int * int) Hashtbl.t = Hashtbl.create 256 in
    let k_global = Config.global_bits cfg ~old_file_len:srv_n_old in

    let seg_edges () =
      let starts = Hashtbl.create 16 and ends = Hashtbl.create 16 in
      List.iter
        (fun (lo, hi) ->
          Hashtbl.replace starts lo ();
          Hashtbl.replace ends hi ())
        (Seg.to_list !segs);
      (starts, ends)
    in

    (* ---- verification sub-protocol (§5.3), shared by all phases ----

       [tested]: blocks in canonical order, same objects on both trees via
       ids.  [cand_lists]: client-side candidate positions per tested
       block, best first.  Returns per-tested-block confirmation with the
       winning position. *)
    let verify ~phase ~tested ~cand_lists =
      let n = Array.length tested in
      let found = Array.map (fun l -> l <> []) cand_lists in
      let cur = Array.map (fun l -> ref l) cand_lists in
      let found_idx =
        Array.of_list
          (List.filteri (fun i _ -> found.(i)) (List.init n Fun.id))
      in
      let nf = Array.length found_idx in
      let eng_c = Group_testing.create ~n:nf cfg.verification in
      (* Only the server engine carries the scope so each group test is
         counted once, not once per endpoint. *)
      let eng_s = Group_testing.create ~scope ~n:nf cfg.verification in
      Scope.add scope "weak_candidates_found" nf;
      let retried = Array.make (max nf 1) false in
      Array.iter (fun l -> cnt.c_cands <- cnt.c_cands + if l <> [] then 1 else 0) cand_lists;
      bump_phase (phase_label phase) (fun st ->
          { st with hits = st.hits + Array.length found_idx });
      let client_group_hash group bits =
        let ctx = Md5.init () in
        List.iter
          (fun gk ->
            let ti = found_idx.(gk) in
            let b : Block_tree.block = fst tested.(ti) in
            match !(cur.(ti)) with
            | pos :: _ -> Md5.feed ctx f_old ~pos ~len:b.len
            | [] ->
                Error.malformed
                  "Protocol: verification group references a block with no \
                   remaining candidate")
          group;
        Md5.truncated_digest (Md5.finalize ctx) ~bits
      in
      let server_group_hash group bits =
        let ctx = Md5.init () in
        List.iter
          (fun gk ->
            let ti = found_idx.(gk) in
            let b : Block_tree.block = snd tested.(ti) in
            Md5.feed ctx f_new ~pos:b.off ~len:b.len)
          group;
        Md5.truncated_digest (Md5.finalize ctx) ~bits
      in
      (* Message: candidate bitmap piggybacking the first verification
         batch (Fig 5.2: bitmap "immediately followed by a set of
         verification hashes"). *)
      let first_batch = Group_testing.current_batch eng_c in
      send Client_to_server Map
        (phase_label phase ^ ":resp")
        (Wire.pack ~compress (fun w ->
             Wire.put_bitmap w (Array.to_list found);
             match first_batch with
             | None -> ()
             | Some (b : Config.batch) ->
                 List.iter
                   (fun g -> Wire.put_hash w (client_group_hash g b.bits) ~width:b.bits)
                   (Group_testing.groups eng_c)));
      (* server side *)
      let r = Wire.unpack ~compress (recv Client_to_server) in
      let srv_found = Wire.get_bitmap r ~n in
      ignore srv_found;
      (* Mark continuation hits on both trees (used by the skip rules). *)
      if equal_phase phase Cont then
        Array.iteri
          (fun i (bc, bs) ->
            bc.Block_tree.cont_hit <- found.(i);
            bs.Block_tree.cont_hit <- found.(i))
          tested;
      let step_server reader =
        (* Parse one batch of group hashes, judge them, return results. *)
        match Group_testing.current_batch eng_s with
        | None -> [||]
        | Some (b : Config.batch) ->
            let gs = Group_testing.groups eng_s in
            let results =
              List.map
                (fun g ->
                  let got = Wire.get_hash reader ~width:b.bits in
                  Int.equal got (server_group_hash g b.bits))
                gs
            in
            Array.of_list results
      in
      let results = step_server r in
      if Array.length results > 0 || Option.is_some (Group_testing.current_batch eng_s)
      then begin
        send Server_to_client Map
          (phase_label phase ^ ":confirm")
          (Wire.pack ~compress (fun w ->
               Wire.put_bitmap w (Array.to_list results)));
        let rc = Wire.unpack ~compress (recv Server_to_client) in
        let n_groups_c = List.length (Group_testing.groups eng_c) in
        let cli_results = Wire.get_bitmap rc ~n:n_groups_c in
        if Option.is_some (Group_testing.current_batch eng_s) then
          Group_testing.apply_results eng_s results;
        if Option.is_some (Group_testing.current_batch eng_c) then
          Group_testing.apply_results eng_c cli_results
      end;
      (* Subsequent batches. *)
      let continue_ = ref true in
      while !continue_ do
        let pending = Group_testing.pending_retries eng_c in
        if pending <> [] then begin
          (* Client decides retries (alternate candidate positions). *)
          let decisions =
            List.map
              (fun gk ->
                let ti = found_idx.(gk) in
                match !(cur.(ti)) with
                | _ :: (_ :: _ as rest) ->
                    cur.(ti) := rest;
                    retried.(gk) <- true;
                    Scope.incr scope "salvage_retries";
                    true
                | _ -> false)
              pending
          in
          Group_testing.resolve_retries eng_c (Array.of_list decisions);
          match Group_testing.current_batch eng_c with
          | None ->
              (* Still announce the decisions so the server's engine stays
                 in sync, even though no further hashes follow. *)
              send Client_to_server Map
                (phase_label phase ^ ":retry")
                (Wire.pack ~compress (fun w -> Wire.put_bitmap w decisions));
              let r = Wire.unpack ~compress (recv Client_to_server) in
              let srv_pending = List.length (Group_testing.pending_retries eng_s) in
              let srv_dec = Wire.get_bitmap r ~n:srv_pending in
              Group_testing.resolve_retries eng_s srv_dec;
              continue_ := Option.is_some (Group_testing.current_batch eng_s)
          | Some (b : Config.batch) ->
              send Client_to_server Map
                (phase_label phase ^ ":verif")
                (Wire.pack ~compress (fun w ->
                     Wire.put_bitmap w decisions;
                     List.iter
                       (fun g ->
                         Wire.put_hash w (client_group_hash g b.bits) ~width:b.bits)
                       (Group_testing.groups eng_c)));
              let r = Wire.unpack ~compress (recv Client_to_server) in
              let srv_pending = List.length (Group_testing.pending_retries eng_s) in
              let srv_dec = Wire.get_bitmap r ~n:srv_pending in
              Group_testing.resolve_retries eng_s srv_dec;
              let results = step_server r in
              send Server_to_client Map
                (phase_label phase ^ ":confirm")
                (Wire.pack ~compress (fun w ->
                     Wire.put_bitmap w (Array.to_list results)));
              let rc = Wire.unpack ~compress (recv Server_to_client) in
              let n_groups_c = List.length (Group_testing.groups eng_c) in
              let cli_results = Wire.get_bitmap rc ~n:n_groups_c in
              if Array.length results > 0 then begin
                Group_testing.apply_results eng_s results;
                Group_testing.apply_results eng_c cli_results
              end
        end
        else
          match Group_testing.current_batch eng_c with
          | None -> continue_ := false
          | Some (b : Config.batch) ->
              send Client_to_server Map
                (phase_label phase ^ ":verif")
                (Wire.pack ~compress (fun w ->
                     List.iter
                       (fun g ->
                         Wire.put_hash w (client_group_hash g b.bits) ~width:b.bits)
                       (Group_testing.groups eng_c)));
              let r = Wire.unpack ~compress (recv Client_to_server) in
              let results = step_server r in
              send Server_to_client Map
                (phase_label phase ^ ":confirm")
                (Wire.pack ~compress (fun w ->
                     Wire.put_bitmap w (Array.to_list results)));
              let rc = Wire.unpack ~compress (recv Server_to_client) in
              let n_groups_c = List.length (Group_testing.groups eng_c) in
              let cli_results = Wire.get_bitmap rc ~n:n_groups_c in
              if Array.length results > 0 then begin
                Group_testing.apply_results eng_s results;
                Group_testing.apply_results eng_c cli_results
              end
      done;
      (* Apply confirmations on both endpoints. *)
      let conf_c = Group_testing.confirmed eng_c in
      let n_confirmed =
        Array.fold_left (fun a ok -> if ok then a + 1 else a) 0 conf_c
      in
      bump_phase (phase_label phase) (fun st ->
          { st with confirms = st.confirms + n_confirmed });
      Scope.add scope "weak_candidates_confirmed" n_confirmed;
      if equal_phase phase Cont then begin
        Scope.add scope "cont_accepts" n_confirmed;
        Scope.add scope "cont_rejects" (nf - n_confirmed)
      end;
      Array.iteri
        (fun gk ok ->
          if ok then begin
            if retried.(gk) then Scope.incr scope "salvage_recoveries";
            let ti = found_idx.(gk) in
            let bc, bs = tested.(ti) in
            let pos =
              match !(cur.(ti)) with
              | pos :: _ -> pos
              | [] ->
                  Error.malformed
                    "Protocol: confirmed block has no candidate position"
            in
            bc.Block_tree.confirmed <- true;
            bs.Block_tree.confirmed <- true;
            if equal_phase phase Cont then begin
              bc.Block_tree.confirmed_by_cont <- true;
              bs.Block_tree.confirmed_by_cont <- true
            end;
            map :=
              Match_map.add !map
                { t_off = bc.Block_tree.off; s_off = pos; len = bc.Block_tree.len };
            segs :=
              Seg.add !segs ~lo:bc.Block_tree.off
                ~hi:(bc.Block_tree.off + bc.Block_tree.len)
          end)
        conf_c
    in

    (* ---- phase drivers ---- *)
    let pair_blocks ids =
      (* Same ids exist in both trees; pair client and server views. *)
      List.map (fun id -> (Block_tree.find tree_c id, Block_tree.find tree_s id)) ids
    in

    let run_cont_phase () =
      let starts, ends = seg_edges () in
      let eligible =
        List.filter
          (fun (b : Block_tree.block) ->
            b.len >= cfg.continuation.cont_min_block
            && (Hashtbl.mem ends b.off || Hashtbl.mem starts (b.off + b.len)))
          (Block_tree.active_blocks tree_s)
      in
      if eligible <> [] then begin
        let bits = cfg.continuation.cont_bits in
        let ids = List.map (fun (b : Block_tree.block) -> b.id) eligible in
        let tested = Array.of_list (pair_blocks ids) in
        Array.iter
          (fun ((bc : Block_tree.block), (bs : Block_tree.block)) ->
            bc.cont_tested <- true;
            bs.cont_tested <- true)
          tested;
        cnt.c_hashes <- cnt.c_hashes + Array.length tested;
        bump_phase "cont" (fun st -> { st with hashes = st.hashes + Array.length tested });
        (* server sends the continuation hashes *)
        send Server_to_client Map "cont:hash"
          (Wire.pack ~compress (fun w ->
               Array.iter
                 (fun (_, (bs : Block_tree.block)) ->
                   let h = Poly.hash_sub f_new ~pos:bs.off ~len:bs.len in
                   Wire.put_hash w (Poly.truncate h ~bits) ~width:bits)
                 tested));
        (* client parses and probes the predicted positions *)
        let r = Wire.unpack ~compress (recv Server_to_client) in
        let cand_lists =
          Array.map
            (fun ((bc : Block_tree.block), _) ->
              let h = Wire.get_hash r ~width:bits in
              let preds = ref [] in
              (match Match_map.find_ending_at !map bc.off with
              | Some e -> preds := (e.s_off + e.len) :: !preds
              | None -> ());
              (match Match_map.find_starting_at !map (bc.off + bc.len) with
              | Some e -> preds := (e.s_off - bc.len) :: !preds
              | None -> ());
              List.filter
                (fun p ->
                  p >= 0
                  && p + bc.len <= n_old
                  && Int.equal (Poly.truncate (Poly.hash_sub f_old ~pos:p ~len:bc.len) ~bits) h)
                (List.sort_uniq Int.compare !preds))
            tested
        in
        verify ~phase:Cont ~tested ~cand_lists
      end
    in

    let run_local_phase () =
      if cfg.local.local_enabled then begin
        let bits = cfg.local.local_bits in
        let size = Block_tree.current_size tree_s in
        let starts, ends = seg_edges () in
        let near_confirmed (b : Block_tree.block) =
          (* Shared eligibility: some confirmed segment edge within range
             of the block, but not directly adjacent (continuation covers
             that case). *)
          let adjacent =
            Hashtbl.mem ends b.off || Hashtbl.mem starts (b.off + b.len)
          in
          (not adjacent)
          && List.exists
               (fun (lo, hi) ->
                 abs (lo - b.off) <= cfg.local.local_range
                 || abs (hi - b.off) <= cfg.local.local_range)
               (Seg.to_list !segs)
        in
        let eligible =
          List.filter
            (fun (b : Block_tree.block) -> Int.equal b.len size && near_confirmed b)
            (Block_tree.active_blocks tree_s)
        in
        if eligible <> [] then begin
          let ids = List.map (fun (b : Block_tree.block) -> b.id) eligible in
          let tested = Array.of_list (pair_blocks ids) in
          cnt.c_hashes <- cnt.c_hashes + Array.length tested;
          bump_phase "local" (fun st -> { st with hashes = st.hashes + Array.length tested });
          send Server_to_client Map "local:hash"
            (Wire.pack ~compress (fun w ->
                 Array.iter
                   (fun (_, (bs : Block_tree.block)) ->
                     let h = Poly.hash_sub f_new ~pos:bs.off ~len:bs.len in
                     Wire.put_hash w (Poly.truncate h ~bits) ~width:bits)
                   tested));
          let r = Wire.unpack ~compress (recv Server_to_client) in
          let wnd = cfg.local.local_window in
          let cand_lists =
            Array.map
              (fun ((bc : Block_tree.block), _) ->
                let h = Wire.get_hash r ~width:bits in
                match Match_map.nearest !map bc.off with
                | None -> []
                | Some e ->
                    let pred = e.s_off + (bc.off - e.t_off) in
                    let lo = max 0 (pred - wnd) in
                    let hi = min (n_old - bc.len) (pred + wnd) in
                    if hi < lo then []
                    else begin
                      let hits = ref [] in
                      let roller = Poly.Roller.create f_old ~window:bc.len ~pos:lo in
                      let rec scan () =
                        let p = Poly.Roller.pos roller in
                        if Int.equal (Poly.truncate (Poly.Roller.value roller) ~bits) h then
                          hits := p :: !hits;
                        if p < hi && Poly.Roller.can_roll roller then begin
                          Poly.Roller.roll roller;
                          scan ()
                        end
                      in
                      scan ();
                      Candidates.select ~cap:cfg.candidate_cap ~predicted:(Some pred)
                        (List.rev !hits)
                    end)
              tested
          in
          verify ~phase:Local ~tested ~cand_lists
        end
      end
    in

    let run_global_phase () =
      let size = Block_tree.current_size tree_s in
      if size >= cfg.min_global_block then begin
        let skip (b : Block_tree.block) =
          let sibling_cont_confirmed =
            cfg.skip_sibling_after_cont
            &&
            match b.sibling_id with
            | Some sid -> (
                match Block_tree.find tree_s sid with
                | s -> s.confirmed_by_cont
                | exception Not_found -> false)
            | None -> false
          in
          let cont_missed =
            cfg.omit_global_after_cont_miss && b.cont_tested && not b.cont_hit
          in
          sibling_cont_confirmed || cont_missed
        in
        let eligible =
          List.filter
            (fun (b : Block_tree.block) -> Int.equal b.len size && not (skip b))
            (Block_tree.active_blocks tree_s)
        in
        if eligible <> [] then begin
          let ids = List.map (fun (b : Block_tree.block) -> b.id) eligible in
          let id_set = Hashtbl.create (List.length ids) in
          List.iter (fun id -> Hashtbl.replace id_set id ()) ids;
          let tested = Array.of_list (pair_blocks ids) in
          cnt.c_hashes <- cnt.c_hashes + Array.length tested;
          bump_phase "global" (fun st -> { st with hashes = st.hashes + Array.length tested });
          let width_of (b : Block_tree.block) =
            if not cfg.decomposable then k_global
            else
              match b.derive_from with
              | Some (_, left_id, pbits) when Hashtbl.mem id_set left_id ->
                  k_global - min pbits k_global
              | _ -> k_global
          in
          (* server: emit hash (or top-up) bits per block *)
          send Server_to_client Map "global:hash"
            (Wire.pack ~compress (fun w ->
                 Array.iter
                   (fun (_, (bs : Block_tree.block)) ->
                     let h = Poly.hash_sub f_new ~pos:bs.off ~len:bs.len in
                     let trunc = Poly.truncate h ~bits:k_global in
                     let width = width_of bs in
                     if width > 0 then
                       Wire.put_hash w (trunc lsr (k_global - width)) ~width;
                     bs.known_bits <- k_global)
                   tested));
          (* client: reconstruct hashes, search the index *)
          let idx = Candidates.build f_old ~window:size ~bits:k_global in
          let r = Wire.unpack ~compress (recv Server_to_client) in
          let cand_lists =
            Array.map
              (fun ((bc : Block_tree.block), _) ->
                let width = width_of bc in
                let top = if width > 0 then Wire.get_hash r ~width else 0 in
                let h_k =
                  if Int.equal width k_global then top
                  else begin
                    let pbits = k_global - width in
                    match bc.derive_from with
                    | Some (parent_id, left_id, _) ->
                        let parent_val, _ = Hashtbl.find hash_store parent_id in
                        let left_val, _ = Hashtbl.find hash_store left_id in
                        let low =
                          Poly.derive_right_trunc
                            ~parent:(parent_val land mask_bits pbits)
                            ~left:(left_val land mask_bits pbits)
                            ~right_len:bc.len ~bits:pbits
                        in
                        low lor (top lsl pbits)
                    | None ->
                        Error.malformed
                          "Protocol: truncated global hash for a block with \
                           no derivation parent"
                  end
                in
                Hashtbl.replace hash_store bc.id (h_k, k_global);
                bc.known_bits <- k_global;
                let predicted =
                  match Match_map.nearest !map bc.off with
                  | Some e -> Some (e.s_off + (bc.off - e.t_off))
                  | None -> None
                in
                Candidates.select ~cap:cfg.candidate_cap ~predicted
                  (Candidates.lookup idx h_k))
              tested
          in
          verify ~phase:Global ~tested ~cand_lists
        end
      end
    in

    (* ---- round loop ---- *)
    let rounds = ref 0 in
    let continue_rounds = ref (Block_tree.active_blocks tree_s <> []) in
    while !continue_rounds do
      incr rounds;
      let sp_round = Scope.enter scope "round" in
      let hashes_before = cnt.c_hashes in
      Scope.timed scope "phase_cont" run_cont_phase;
      Scope.timed scope "phase_local" run_local_phase;
      Scope.timed scope "phase_global" run_global_phase;
      Scope.observe scope "round_hashes"
        (float_of_int (cnt.c_hashes - hashes_before));
      Scope.leave scope sp_round;
      let size = Block_tree.current_size tree_s in
      let next = size / 2 in
      let global_possible = next >= cfg.min_global_block in
      let cont_possible =
        cfg.continuation.cont_enabled && next >= cfg.continuation.cont_min_block
      in
      if
        next >= 1
        && (global_possible || cont_possible)
        && Block_tree.active_blocks tree_s <> []
      then begin
        Block_tree.split tree_c;
        Block_tree.split tree_s
      end
      else continue_rounds := false
    done;

    (* ---- delta phase (§5.1 phase 2) ---- *)
    let sp_delta = Scope.enter scope "phase_delta" in
    let known_spans = Seg.to_list !segs in
    let unknown_spans = Seg.to_list (Seg.complement !segs ~lo:0 ~hi:n_new) in
    (* server reference: the matched parts of the current file *)
    let ref_s =
      String.concat ""
        (List.map (fun (lo, hi) -> String.sub f_new lo (hi - lo)) known_spans)
    in
    let unknown_s =
      String.concat ""
        (List.map (fun (lo, hi) -> String.sub f_new lo (hi - lo)) unknown_spans)
    in
    let delta = Delta.encode ~profile:cfg.delta_profile ~reference:ref_s unknown_s in
    send Server_to_client Delta_k "delta" delta;
    (* client: rebuild the reference from the old file via the map *)
    let delta_msg = recv Server_to_client in
    let ref_c =
      String.concat ""
        (List.map
           (fun (e : Match_map.entry) -> String.sub f_old e.s_off e.len)
           (Match_map.entries !map))
    in
    let reconstruct () =
      let unknown_c = Delta.decode ~reference:ref_c delta_msg in
      let buf = Buffer.create n_new in
      let upos = ref 0 in
      let known = Array.of_list known_spans in
      let ki = ref 0 in
      let entries = Array.of_list (Match_map.entries !map) in
      let ei = ref 0 in
      let pos = ref 0 in
      while !pos < cli_n_new do
        if !ki < Array.length known && Int.equal (fst known.(!ki)) !pos then begin
          let _lo, hi = known.(!ki) in
          (* copy the covered entries from the old file *)
          while
            !ei < Array.length entries && entries.(!ei).t_off < hi
          do
            let e = entries.(!ei) in
            Buffer.add_substring buf f_old e.s_off e.len;
            incr ei
          done;
          pos := hi;
          incr ki
        end
        else begin
          let hi =
            if !ki < Array.length known then fst known.(!ki) else cli_n_new
          in
          let len = hi - !pos in
          Buffer.add_substring buf unknown_c !upos len;
          upos := !upos + len;
          pos := hi
        end
      done;
      Buffer.contents buf
    in
    let candidate =
      match reconstruct () with
      | s -> s
      | exception Invalid_argument _ -> ""
    in
    let ok =
      Int.equal (String.length candidate) cli_n_new
      && Fp.equal (Fp.of_string candidate) cli_fp_new
    in
    Scope.leave scope sp_delta;
    if ok then
      {
        reconstructed = candidate;
        report =
          make_report ~unchanged:false ~fallback:false ~rounds:!rounds
            ~matches:(Match_map.count !map)
            ~covered:(Match_map.covered_bytes !map);
      }
    else begin
      (* Residual hash-collision failure: fall back to a full compressed
         transfer (§2.2: "or we can simply transfer the entire file"). *)
      Scope.incr scope "protocol_fallbacks";
      send Client_to_server Header "resend" "!";
      ignore (recv Client_to_server);
      send Server_to_client Fallback_k "full" (Deflate.compress f_new);
      let full = Deflate.decompress (recv Server_to_client) in
      {
        reconstructed = full;
        report =
          make_report ~unchanged:false ~fallback:true ~rounds:!rounds
            ~matches:(Match_map.count !map)
            ~covered:(Match_map.covered_bytes !map);
      }
    end
  end

let run_result ?channel ?scope ~config ~old_file new_file =
  Error.guard (fun () -> run ?channel ?scope ~config ~old_file new_file)

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>total: c2s=%d s2c=%d (%d bytes, %d roundtrips, %d rounds)@ header: \
     %d/%d map: c2s=%d s2c=%d delta=%d fallback=%d@ matches=%d covered=%d \
     hashes=%d candidates=%d unchanged=%b fallback=%b@]"
    r.total_c2s r.total_s2c (total_bytes r) r.roundtrips r.rounds r.header_c2s
    r.header_s2c r.map_c2s r.map_s2c r.delta_bytes r.fallback_bytes r.matches
    r.covered_bytes r.hashes_sent r.candidates_tested r.unchanged r.fallback
