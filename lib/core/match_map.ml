module Segments = Fsync_util.Segments

type entry = { t_off : int; s_off : int; len : int }

module M = Map.Make (Int)

type t = entry M.t
(* Keyed by t_off; invariant: target ranges disjoint. *)

let empty = M.empty

let overlaps a b =
  a.t_off < b.t_off + b.len && b.t_off < a.t_off + a.len

let add t e =
  if e.len <= 0 then Error.malformed "Match_map.add: empty entry";
  (* Check the neighbors for overlap. *)
  let pred = M.find_last_opt (fun k -> k <= e.t_off) t in
  let succ = M.find_first_opt (fun k -> k > e.t_off) t in
  let check = function
    | Some (_, n) when overlaps n e -> Error.malformed "Match_map.add: overlap"
    | _ -> ()
  in
  check pred;
  check succ;
  (* Merge with a predecessor contiguous in both spaces. *)
  let e, t =
    match pred with
    | Some (k, p)
      when Int.equal (p.t_off + p.len) e.t_off && Int.equal (p.s_off + p.len) e.s_off ->
        ({ t_off = p.t_off; s_off = p.s_off; len = p.len + e.len }, M.remove k t)
    | _ -> (e, t)
  in
  let e, t =
    match succ with
    | Some (k, s)
      when Int.equal (e.t_off + e.len) s.t_off && Int.equal (e.s_off + e.len) s.s_off ->
        ({ e with len = e.len + s.len }, M.remove k t)
    | _ -> (e, t)
  in
  M.add e.t_off e t

let entries t = List.map snd (M.bindings t)

let known_target t =
  Segments.of_list (List.map (fun e -> (e.t_off, e.t_off + e.len)) (entries t))

let covered_bytes t = M.fold (fun _ e acc -> acc + e.len) t 0

let find_ending_at t pos =
  match M.find_last_opt (fun k -> k < pos) t with
  | Some (_, e) when Int.equal (e.t_off + e.len) pos -> Some e
  | _ -> None

let find_starting_at t pos = M.find_opt pos t

let nearest t pos =
  let before = M.find_last_opt (fun k -> k <= pos) t in
  let after = M.find_first_opt (fun k -> k > pos) t in
  match (before, after) with
  | None, None -> None
  | Some (_, e), None | None, Some (_, e) -> Some e
  | Some (_, b), Some (_, a) ->
      if pos - b.t_off <= a.t_off - pos then Some b else Some a

let count = M.cardinal
