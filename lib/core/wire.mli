(** Bit-level message packing for the protocol.

    Messages never carry block identifiers: both endpoints derive the block
    order, hash widths and group partitions deterministically
    (see {!Block_tree}), so a message is just densely packed hash bits and
    bitmaps.  Messages are optionally passed through {!Fsync_compress.Deflate}
    (bitmaps and literal streams compress; raw hash bits do not, and the
    stored mode keeps the overhead bounded).

    Every reader is hardened against malformed input: lengths and widths
    are validated against the remaining message budget {e before} any
    read or allocation, and varints are bounded, so corrupt bytes raise
    {!Error.E} (a typed error) — never a bare exception, an over-read,
    an unbounded loop or an unbounded allocation.  Wrap decoding
    endpoints in {!Error.guard} to obtain a [result]. *)

val pack : ?compress:bool -> (Fsync_util.Bitio.Writer.t -> unit) -> string
(** Build a message with a writer callback. *)

val unpack : ?compress:bool -> string -> Fsync_util.Bitio.Reader.t
(** Open a message for reading.
    @raise Error.E on an empty or malformed compressed envelope. *)

val put_bitmap : Fsync_util.Bitio.Writer.t -> bool list -> unit

val get_bitmap : Fsync_util.Bitio.Reader.t -> n:int -> bool array
(** @raise Error.E if fewer than [n] bits remain. *)

val put_hash : Fsync_util.Bitio.Writer.t -> int -> width:int -> unit

val get_hash : Fsync_util.Bitio.Reader.t -> width:int -> int
(** @raise Error.E on an invalid width or truncated input. *)

val put_varint : Fsync_util.Bitio.Writer.t -> int -> unit
(** LEB128-in-bits: 7 value bits + continuation bit per septet. *)

val get_varint : Fsync_util.Bitio.Reader.t -> int
(** @raise Error.E on truncation or an overlong (> 9 septet) encoding. *)

val put_string : Fsync_util.Bitio.Writer.t -> string -> unit
(** Length-prefixed, byte-aligned. *)

val get_string : Fsync_util.Bitio.Reader.t -> string
(** @raise Error.E if the declared length exceeds the bytes present
    (checked before allocating). *)
