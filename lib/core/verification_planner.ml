module Prng = Fsync_util.Prng

type outcome = {
  bits_per_candidate : float;
  reply_bits_per_candidate : float;
  confirmed_genuine : float;
  false_confirms : float;
  roundtrips : float;
}

(* One simulated run of the wire engine on [n] candidates with known
   ground truth.  A test over an all-genuine group always passes; a group
   containing a spurious candidate passes only on a hash collision
   (probability 2^-bits).  Retries are always declined: the model is the
   schedule's intrinsic cost, not the candidate queue's depth. *)
let simulate_once rng (v : Config.verification) ~p_genuine ~n =
  let genuine = Array.init n (fun _ -> Prng.bernoulli rng p_genuine) in
  let eng = Group_testing.create ~n v in
  let sent = ref 0 and replied = ref 0 and trips = ref 0 in
  let rec loop () =
    let pending = Group_testing.pending_retries eng in
    if pending <> [] then begin
      sent := !sent + List.length pending;
      Group_testing.resolve_retries eng
        (Array.make (List.length pending) false);
      loop ()
    end
    else
      match Group_testing.current_batch eng with
      | None -> ()
      | Some (b : Config.batch) ->
          let gs = Group_testing.groups eng in
          incr trips;
          let results =
            List.map
              (fun g ->
                sent := !sent + b.bits;
                let all_genuine = List.for_all (fun i -> genuine.(i)) g in
                all_genuine
                || Prng.bernoulli rng (1.0 /. float_of_int (1 lsl min b.bits 30)))
              gs
          in
          replied := !replied + List.length gs;
          Group_testing.apply_results eng (Array.of_list results);
          loop ()
  in
  loop ();
  let confirmed = Group_testing.confirmed eng in
  let g_total = ref 0 and g_conf = ref 0 and s_total = ref 0 and s_conf = ref 0 in
  Array.iteri
    (fun i ok ->
      if genuine.(i) then begin
        incr g_total;
        if ok then incr g_conf
      end
      else begin
        incr s_total;
        if ok then incr s_conf
      end)
    confirmed;
  (!sent, !replied, !trips, !g_total, !g_conf, !s_total, !s_conf)

let expected_cost ?(trials = 400) ?(seed = 7L) ~p_genuine ~n v =
  if p_genuine < 0.0 || p_genuine > 1.0 then
    Error.malformed "Verification_planner.expected_cost: p_genuine out of [0,1]";
  if n <= 0 then Error.malformed "Verification_planner.expected_cost: n <= 0";
  let rng = Prng.create seed in
  let sent = ref 0 and replied = ref 0 and trips = ref 0 in
  let g_total = ref 0 and g_conf = ref 0 and s_total = ref 0 and s_conf = ref 0 in
  for _ = 1 to trials do
    let s, r, t, gt, gc, st, sc = simulate_once rng v ~p_genuine ~n in
    sent := !sent + s;
    replied := !replied + r;
    trips := !trips + t;
    g_total := !g_total + gt;
    g_conf := !g_conf + gc;
    s_total := !s_total + st;
    s_conf := !s_conf + sc
  done;
  let fl = float_of_int in
  let per_cand x = fl x /. fl (trials * n) in
  {
    bits_per_candidate = per_cand !sent;
    reply_bits_per_candidate = per_cand !replied;
    confirmed_genuine = (if !g_total = 0 then 1.0 else fl !g_conf /. fl !g_total);
    false_confirms = (if !s_total = 0 then 0.0 else fl !s_conf /. fl !s_total);
    roundtrips = fl !trips /. fl trials;
  }

let menu =
  let mk batches retry =
    { Config.batches; confirm_bits = 14; retry_alternates = retry }
  in
  [
    Config.trivial_verification;
    Config.grouped_verification 1;
    Config.grouped_verification 2;
    Config.grouped_verification 3;
    (* Deeper ladders than the paper explored: *)
    mk [ { group_size = 1; bits = 8 }; { group_size = 16; bits = 16 } ] false;
    mk
      [ { group_size = 1; bits = 3 };
        { group_size = 2; bits = 8 };
        { group_size = 8; bits = 14 };
        { group_size = 32; bits = 16 };
        { group_size = 1; bits = 16 } ]
      true;
    mk [ { group_size = 4; bits = 16 }; { group_size = 1; bits = 16 } ] false;
  ]

let recommend ?trials ?seed ~p_genuine ~n () =
  let scored =
    List.map (fun v -> (v, expected_cost ?trials ?seed ~p_genuine ~n v)) menu
  in
  let acceptable =
    List.filter
      (fun (_, o) -> o.confirmed_genuine >= 0.98 && o.false_confirms < 1e-3)
      scored
  in
  let pool = if acceptable = [] then scored else acceptable in
  match pool with
  | [] -> Error.malformed "Verification_planner.recommend: empty menu"
  | first :: rest ->
      List.fold_left
        (fun (bv, bo) (v, o) ->
          if o.bits_per_candidate < bo.bits_per_candidate then (v, o)
          else (bv, bo))
        first rest
