type block = {
  id : int;
  off : int;
  len : int;
  derive_from : (int * int * int) option;
  sibling_id : int option;
  mutable known_bits : int;
  mutable confirmed : bool;
  mutable confirmed_by_cont : bool;
  mutable cont_tested : bool;
  mutable cont_hit : bool;
}

type t = {
  flen : int;
  mutable size : int;
  mutable rnd : int;
  mutable active : block list; (* ascending offset, unconfirmed and confirmed alike;
                                  [active_blocks] filters *)
  mutable next_id : int;
  tbl : (int, block) Hashtbl.t; (* id -> block, including retired parents *)
}

let pow2_floor n =
  let rec loop p = if p * 2 <= n then loop (p * 2) else p in
  if n < 1 then 1 else loop 1

let fresh t ~off ~len ~derive_from ~sibling_id =
  let b =
    {
      id = t.next_id;
      off;
      len;
      derive_from;
      sibling_id;
      known_bits = 0;
      confirmed = false;
      confirmed_by_cont = false;
      cont_tested = false;
      cont_hit = false;
    }
  in
  t.next_id <- t.next_id + 1;
  Hashtbl.replace t.tbl b.id b;
  b

let create ~file_len ~start_block =
  if start_block <= 0 then Error.malformed "Block_tree.create: start_block <= 0";
  let size = min start_block (pow2_floor (max file_len 1)) in
  let t =
    {
      flen = file_len;
      size;
      rnd = 0;
      active = [];
      next_id = 0;
      tbl = Hashtbl.create 64;
    }
  in
  let rec blocks off acc =
    if off >= file_len then List.rev acc
    else
      let len = min size (file_len - off) in
      blocks (off + len)
        (fresh t ~off ~len ~derive_from:None ~sibling_id:None :: acc)
  in
  t.active <- blocks 0 [];
  t

let file_len t = t.flen
let current_size t = t.size
let round t = t.rnd

let active_blocks t = List.filter (fun b -> not b.confirmed) t.active

let find t id =
  match Hashtbl.find_opt t.tbl id with
  | Some b -> b
  | None -> raise Not_found

let split t =
  let size' = t.size / 2 in
  if size' < 1 then Error.malformed "Block_tree.split: cannot split below 1";
  let split_one b =
    if b.confirmed then [ b ]
    else if b.len <= size' then begin
      (* Carried over: stale per-round flags are cleared; sibling/parent
         links only make sense in the round right after the split. *)
      b.cont_tested <- false;
      b.cont_hit <- false;
      [ b ]
    end
    else begin
      (* Reserve the two ids in left-then-right order so both endpoints
         allocate identically. *)
      let left_id = t.next_id and right_id = t.next_id + 1 in
      let left =
        fresh t ~off:b.off ~len:size' ~derive_from:None
          ~sibling_id:(Some right_id)
      in
      let right =
        fresh t ~off:(b.off + size') ~len:(b.len - size')
          ~derive_from:
            (if b.known_bits > 0 then Some (b.id, left_id, b.known_bits)
             else None)
          ~sibling_id:(Some left_id)
      in
      [ left; right ]
    end
  in
  t.active <- List.concat_map split_one t.active;
  t.size <- size';
  t.rnd <- t.rnd + 1

let unknown_bytes t =
  List.fold_left (fun acc b -> if b.confirmed then acc else acc + b.len) 0 t.active

let confirmed_ratio t =
  if t.flen = 0 then 1.0
  else 1.0 -. (float_of_int (unknown_bytes t) /. float_of_int t.flen)
