(** Recursive block structure over the current file (§5.2a).

    Both endpoints maintain an identical copy of this structure: it is a
    deterministic function of the file length, the configuration, and the
    publicly observed per-round confirmations — so protocol messages never
    need to carry block identifiers, only hash bits and bitmaps in the
    canonical block order.

    A round works on the unconfirmed blocks of the current nominal size;
    splitting halves the nominal size and replaces every unconfirmed block
    longer than the new size by its two children.  The right child records
    how many bits of its hash the client will be able to derive from the
    parent and left-sibling hashes (§5.5). *)

type block = {
  id : int;
  off : int;
  len : int;
  derive_from : (int * int * int) option;
      (** [(parent_id, left_sibling_id, parent_known_bits)] for a right
          child whose parent hash the client knows *)
  sibling_id : int option;
  mutable known_bits : int;   (** hash bits of this block the client holds *)
  mutable confirmed : bool;
  mutable confirmed_by_cont : bool;
  mutable cont_tested : bool; (** a continuation hash was sent this round *)
  mutable cont_hit : bool;    (** ... and the client reported a candidate *)
}

type t

val create : file_len:int -> start_block:int -> t
(** The initial partition uses the largest power of two that is at most
    [start_block] and at most the file length (so small files start at a
    sensible size). *)

val file_len : t -> int
val current_size : t -> int
(** Nominal block size of the current round. *)

val round : t -> int

val active_blocks : t -> block list
(** Unconfirmed blocks, ascending offset. *)

val find : t -> int -> block
(** By id.  @raise Not_found. *)

val split : t -> unit
(** Advance to the next round: halve the nominal size, split unconfirmed
    blocks, clear per-round flags. *)

val unknown_bytes : t -> int
(** Bytes not yet covered by confirmed blocks. *)

val confirmed_ratio : t -> float
