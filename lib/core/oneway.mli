(** One-way (broadcast) synchronization — §7's asymmetric setting:
    "synchronization in asymmetric cases, e.g., in cases with server
    broadcast capability, lower upload speed, or a bottleneck at a busy
    server".

    The interactive protocol makes the server do per-client work every
    round.  Here the server instead {e publishes} one static signature of
    the current file — per-block weak (rolling-searchable) and strong
    (self-verifying) hashes, like the later zsync tool — and any number
    of clients independently determine which blocks they can already
    produce from their own old files.  Each client then sends one request
    (a bitmap of missing blocks) and receives the missing bytes, delta
    coded against the blocks the client proved it has.

    Trade-off vs. the interactive protocol: no recursion and no
    continuation hashes, so more bytes per client; but the signature is
    broadcastable and the per-client server cost collapses — the
    {!broadcast_cost} helper quantifies the crossover. *)

type config = {
  block_size : int;     (** single-level block size, default 1024 *)
  weak_bits : int;      (** rolling hash bits in the signature, default 24 *)
  strong_bits : int;    (** self-verification hash bits, default 40 *)
  delta_missing : bool; (** delta code the payload against matched blocks
                            (our server can; plain zsync-over-HTTP cannot) *)
}

val default_config : config

type report = {
  signature_bytes : int;  (** published once, shareable by every client *)
  request_bytes : int;    (** per client *)
  payload_bytes : int;    (** per client *)
  blocks_total : int;
  blocks_matched : int;
}

val per_client_bytes : report -> int
(** request + payload (excludes the shared signature). *)

val total_bytes : report -> int
(** signature + request + payload: the single-client cost. *)

type result = { reconstructed : string; report : report }

val sync :
  ?config:config -> ?scope:Fsync_obs.Scope.t -> old_file:string -> string -> result
(** [sync ~old_file new_file].  The reconstruction always equals the new
    file: the final fingerprint check falls back to a full compressed
    payload on (improbable) strong-hash collisions.  An enabled [scope]
    records an [oneway_sync] span and the [oneway_blocks_total] /
    [oneway_blocks_matched] counters. *)

val broadcast_cost : ?config:config -> clients:(string * string) list -> unit -> int
(** Total server upload to synchronize all [(old, new)] clients of the
    same new file: one signature plus each client's payload.
    @raise Error.E (Malformed) if the clients disagree on the new file. *)
