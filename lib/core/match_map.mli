(** The client's map of the current file (§5.1).

    Each confirmed match asserts "the current file's bytes
    [\[t_off, t_off+len)] equal my old file's bytes [\[s_off, s_off+len)]".
    Entries adjacent in both spaces are merged, which is what makes
    continuation hashes cheap to anchor: extensions of a match keep a
    single growing entry. *)

type entry = { t_off : int; s_off : int; len : int }

type t

val empty : t
val add : t -> entry -> t
(** Insert a confirmed match.  Overlapping target ranges are not expected
    from the protocol and raise {!Error.E} ([Malformed]); touching entries that
    are also contiguous in source space are merged. *)

val entries : t -> entry list
(** Sorted by target offset. *)

val known_target : t -> Fsync_util.Segments.t
(** Target-space intervals the client knows. *)

val covered_bytes : t -> int

val find_ending_at : t -> int -> entry option
(** Entry whose target range ends exactly at the given offset (anchor for
    a rightward continuation). *)

val find_starting_at : t -> int -> entry option
(** Entry whose target range starts exactly at the given offset (anchor
    for a leftward continuation). *)

val nearest : t -> int -> entry option
(** Entry whose target offset is closest to the given target position
    (anchor for local hashes). *)

val count : t -> int
