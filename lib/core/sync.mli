(** One-call synchronization API over {!Protocol}.

    This is the public entry point downstream users want: give it the
    outdated and current contents (or whole collections via
    {!Fsync_collection}) and a {!Config.t}, get the reconstruction and a
    cost report. *)

type t = Protocol.result = {
  reconstructed : string;
  report : Protocol.report;
}

val file : ?config:Config.t -> old_file:string -> string -> t
(** [file ~old_file new_file] with {!Config.tuned} by default.  The
    result's [reconstructed] field always equals the new file. *)

val cost : ?config:Config.t -> old_file:string -> string -> int
(** Total bytes both directions. *)

val report_only : ?config:Config.t -> old_file:string -> string -> Protocol.report
