module Bitio = Fsync_util.Bitio
module Deflate = Fsync_compress.Deflate

let pack ?(compress = false) f =
  let w = Bitio.Writer.create () in
  f w;
  let raw = Bitio.Writer.contents w in
  if not compress then raw
  else begin
    (* One flag byte: 0 = raw, 1 = deflated.  Compress only when it pays. *)
    let packed = Deflate.compress raw in
    if String.length packed < String.length raw then "\001" ^ packed
    else "\000" ^ raw
  end

let unpack ?(compress = false) s =
  let raw =
    if not compress then s
    else if String.length s = 0 then Error.truncated "Wire.unpack: empty message"
    else
      let body = String.sub s 1 (String.length s - 1) in
      match s.[0] with
      | '\000' -> body
      | '\001' -> (
          (* The decompressor is bounded by its declared output length,
             but corrupt input makes it raise; surface that as a typed
             error. *)
          match Deflate.decompress body with
          | raw -> raw
          | exception Invalid_argument msg -> Error.malformed "Wire.unpack: %s" msg)
      | c -> Error.malformed "Wire.unpack: bad flag byte %#x" (Char.code c)
  in
  Bitio.Reader.of_string raw

(* Every read checks the remaining bit budget before touching the
   reader, so malformed input yields a typed error instead of an
   [Invalid_argument] escaping from {!Fsync_util.Bitio}. *)

let need r ~bits what =
  if bits < 0 then Error.malformed "Wire.%s: negative size" what;
  if Bitio.Reader.bits_left r < bits then
    Error.truncated "Wire.%s: %d bits needed, %d left" what bits
      (Bitio.Reader.bits_left r)

let put_bitmap w bits = List.iter (fun b -> Bitio.Writer.put_bit w (if b then 1 else 0)) bits

let get_bitmap r ~n =
  need r ~bits:n "get_bitmap";
  Array.init n (fun _ -> Bitio.Reader.get_bit r = 1)

let put_hash w v ~width = Bitio.Writer.put_bits w v ~width

let get_hash r ~width =
  if width < 0 || width > 57 then
    Error.malformed "Wire.get_hash: width %d out of [0,57]" width;
  need r ~bits:width "get_hash";
  Bitio.Reader.get_bits r ~width

let rec put_varint w v =
  if v < 0 then Error.malformed "Wire.put_varint: negative value %d" v;
  if v < 0x80 then Bitio.Writer.put_bits w v ~width:8
  else begin
    Bitio.Writer.put_bits w (0x80 lor (v land 0x7f)) ~width:8;
    put_varint w (v lsr 7)
  end

let get_varint r =
  let rec loop shift acc =
    (* More than 9 septets cannot encode an OCaml int we produced; an
       attacker-supplied run of continuation bytes must not shift past
       the word size or walk the whole message. *)
    if shift > 56 then Error.limit "Wire.get_varint: overlong encoding";
    need r ~bits:8 "get_varint";
    let b = Bitio.Reader.get_bits r ~width:8 in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b < 0x80 then acc else loop (shift + 7) acc
  in
  loop 0 0

let put_string w s =
  put_varint w (String.length s);
  Bitio.Writer.align_byte w;
  String.iter (fun c -> Bitio.Writer.put_bits w (Char.code c) ~width:8) s

let get_string r =
  let n = get_varint r in
  Bitio.Reader.align_byte r;
  (* Check the declared length against what is actually present before
     allocating: a corrupted length prefix must not trigger an
     arbitrarily large allocation or an over-read. *)
  if n < 0 || n > Bitio.Reader.bits_left r / 8 then
    Error.truncated "Wire.get_string: declared %d bytes, %d available" n
      (Bitio.Reader.bits_left r / 8);
  String.init n (fun _ -> Char.chr (Bitio.Reader.get_bits r ~width:8))
