module Bitio = Fsync_util.Bitio
module Deflate = Fsync_compress.Deflate

let pack ?(compress = false) f =
  let w = Bitio.Writer.create () in
  f w;
  let raw = Bitio.Writer.contents w in
  if not compress then raw
  else begin
    (* One flag byte: 0 = raw, 1 = deflated.  Compress only when it pays. *)
    let packed = Deflate.compress raw in
    if String.length packed < String.length raw then "\001" ^ packed
    else "\000" ^ raw
  end

let unpack ?(compress = false) s =
  let raw =
    if not compress then s
    else if String.length s = 0 then invalid_arg "Wire.unpack: empty message"
    else
      let body = String.sub s 1 (String.length s - 1) in
      match s.[0] with
      | '\000' -> body
      | '\001' -> Deflate.decompress body
      | _ -> invalid_arg "Wire.unpack: bad flag"
  in
  Bitio.Reader.of_string raw

let put_bitmap w bits = List.iter (fun b -> Bitio.Writer.put_bit w (if b then 1 else 0)) bits

let get_bitmap r ~n = Array.init n (fun _ -> Bitio.Reader.get_bit r = 1)

let put_hash w v ~width = Bitio.Writer.put_bits w v ~width

let get_hash r ~width = Bitio.Reader.get_bits r ~width

let rec put_varint w v =
  if v < 0 then invalid_arg "Wire.put_varint: negative";
  if v < 0x80 then Bitio.Writer.put_bits w v ~width:8
  else begin
    Bitio.Writer.put_bits w (0x80 lor (v land 0x7f)) ~width:8;
    put_varint w (v lsr 7)
  end

let get_varint r =
  let rec loop shift acc =
    let b = Bitio.Reader.get_bits r ~width:8 in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b < 0x80 then acc else loop (shift + 7) acc
  in
  loop 0 0

let put_string w s =
  put_varint w (String.length s);
  Bitio.Writer.align_byte w;
  String.iter (fun c -> Bitio.Writer.put_bits w (Char.code c) ~width:8) s

let get_string r =
  let n = get_varint r in
  Bitio.Reader.align_byte r;
  String.init n (fun _ -> Char.chr (Bitio.Reader.get_bits r ~width:8))
