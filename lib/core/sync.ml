type t = Protocol.result = {
  reconstructed : string;
  report : Protocol.report;
}

let file ?(config = Config.tuned) ~old_file new_file =
  Protocol.run ~config ~old_file new_file

let cost ?config ~old_file new_file =
  Protocol.total_bytes (file ?config ~old_file new_file).report

let report_only ?config ~old_file new_file =
  (file ?config ~old_file new_file).report
