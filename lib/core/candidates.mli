(** Client-side candidate search: all window positions of the old file,
    indexed by truncated rolling hash.

    "comparing received hashes not just with the corresponding block in
    the other file, but with all substrings of the same size" (§2.2) —
    done once per round with the O(1)-rolling {!Fsync_hash.Poly_hash} and
    a sorted (key, position) index. *)

type t

val build : string -> window:int -> bits:int -> t
(** Index of every window position of the string.  Empty if the string is
    shorter than the window. *)

val lookup : t -> int -> int list
(** Ascending positions whose truncated window hash equals the key. *)

val window : t -> int

val select :
  cap:int -> predicted:int option -> int list -> int list
(** Order candidate positions best-first — nearest to the predicted
    position when one exists — and keep at most [cap]. *)
