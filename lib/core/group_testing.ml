module Scope = Fsync_obs.Scope

type status = Uncertain | Confirmed | Dead | Await_retry

(* Monomorphic equality: verification state drives wire messages, so its
   comparisons must not depend on runtime representation (R1). *)
let equal_status a b =
  match (a, b) with
  | Uncertain, Uncertain
  | Confirmed, Confirmed
  | Dead, Dead
  | Await_retry, Await_retry ->
      true
  | (Uncertain | Confirmed | Dead | Await_retry), _ -> false

type cand = { mutable acc_bits : int; mutable st : status }

type t = {
  cands : cand array;
  confirm_bits : int;
  retry : bool;
  scope : Scope.t;
  mutable remaining : Config.batch list;
  mutable awaiting_retry : bool;
}

let create ?(scope = Scope.disabled) ~n (v : Config.verification) =
  {
    cands = Array.init n (fun _ -> { acc_bits = 0; st = Uncertain });
    confirm_bits = v.confirm_bits;
    retry = v.retry_alternates;
    scope;
    remaining = v.batches;
    awaiting_retry = false;
  }

let uncertain_indices t =
  let acc = ref [] in
  Array.iteri (fun i c -> if equal_status c.st Uncertain then acc := i :: !acc) t.cands;
  List.rev !acc

let has_uncertain t = Array.exists (fun c -> equal_status c.st Uncertain) t.cands

let current_batch t =
  if t.awaiting_retry then None
  else
    match t.remaining with
    | b :: _ when has_uncertain t -> Some b
    | _ -> None

let chunk size xs =
  let rec loop acc cur k = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
        if Int.equal k size then loop (List.rev cur :: acc) [ x ] 1 rest
        else loop acc (x :: cur) (k + 1) rest
  in
  loop [] [] 0 xs

let groups t =
  match current_batch t with
  | None -> []
  | Some b -> chunk b.group_size (uncertain_indices t)

let pending_retries t =
  let acc = ref [] in
  Array.iteri (fun i c -> if equal_status c.st Await_retry then acc := i :: !acc) t.cands;
  List.rev !acc

let apply_results t results =
  match current_batch t with
  | None -> Error.malformed "Group_testing.apply_results: no active batch"
  | Some b ->
      let gs = groups t in
      if not (Int.equal (Array.length results) (List.length gs)) then
        Error.malformed "Group_testing.apply_results: arity mismatch";
      let more_batches = List.length t.remaining > 1 in
      List.iteri
        (fun gi members ->
          let pass = results.(gi) in
          Scope.incr t.scope "group_tests_total";
          Scope.incr t.scope (if pass then "group_tests_passed" else "group_tests_failed");
          List.iter
            (fun i ->
              let c = t.cands.(i) in
              if pass then begin
                c.acc_bits <- c.acc_bits + b.bits;
                if c.acc_bits >= t.confirm_bits then c.st <- Confirmed
              end
              else if Int.equal b.group_size 1 then begin
                c.acc_bits <- 0;
                c.st <-
                  (if t.retry && more_batches then Await_retry else Dead)
              end
              (* failed group test with several members: all stay
                 uncertain, their accumulated evidence unchanged *))
            members)
        gs;
      t.awaiting_retry <- pending_retries t <> [];
      if not t.awaiting_retry then t.remaining <- List.tl t.remaining

let resolve_retries t decisions =
  let pending = pending_retries t in
  if not (Int.equal (Array.length decisions) (List.length pending)) then
    Error.malformed "Group_testing.resolve_retries: arity mismatch";
  List.iteri
    (fun k i ->
      let c = t.cands.(i) in
      c.st <- (if decisions.(k) then Uncertain else Dead))
    pending;
  t.awaiting_retry <- false;
  t.remaining <- (match t.remaining with [] -> [] | _ :: rest -> rest)

let status t i = t.cands.(i).st

let confirmed t = Array.map (fun c -> equal_status c.st Confirmed) t.cands

let finished t = Option.is_none (current_batch t) && not t.awaiting_retry
