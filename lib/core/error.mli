(** Typed protocol errors.

    Every decoder in the stack ({!Wire}, {!Protocol},
    {!Fsync_reconcile.Recon}, the collection driver) reports malformed,
    truncated or missing input through this one type instead of crashing
    with a bare [Invalid_argument] or [Failure].  Internally decoders
    raise {!E}; the [*_result] entry points wrap execution in {!guard}
    so no exception escapes to callers — corrupt bytes can produce a
    typed error, never a crash and never an unbounded allocation. *)

type t =
  | Truncated of string          (** input ended before the field did *)
  | Malformed of string          (** structurally invalid input *)
  | Limit_exceeded of string     (** a defensive decode limit tripped *)
  | Channel_empty of string      (** expected message never arrived *)
  | Retry_exhausted of string    (** the session layer gave up *)
  | Disconnected of string       (** connection loss, resume budget spent *)
  | Verification_failed of string
      (** end-to-end strong-hash check failed even after fallback *)
  | Busy of { retry_after_s : float }
      (** the server shed this session at its capacity limit; retry
          after the given delay (fsyncd/1 [Busy], DESIGN.md §12) *)

exception E of t

val fail : t -> 'a

val truncated : ('a, unit, string, 'b) format4 -> 'a
val malformed : ('a, unit, string, 'b) format4 -> 'a
val limit : ('a, unit, string, 'b) format4 -> 'a
val channel_empty : ('a, unit, string, 'b) format4 -> 'a

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val of_exn : exn -> t option
(** Typed view of an exception: {!E} unwrapped; [Invalid_argument],
    [Failure] and [Not_found] (raised by hardened lower layers on bad
    input) as [Malformed]; {!Fsync_net.Frame.Failed} as
    [Retry_exhausted]; {!Fsync_net.Fd_transport.Closed} as
    [Disconnected] and {!Fsync_net.Fd_transport.Oversized} as
    [Limit_exceeded]; anything else [None]. *)

val guard : (unit -> 'a) -> ('a, t) result
(** Run a decoder or protocol endpoint, converting every recognized
    exception to a typed error.  {!Fsync_net.Fault.Disconnected} is
    deliberately {e not} converted — session drivers catch it above the
    guard to checkpoint and resume.  Unrecognized exceptions (genuine
    bugs) propagate. *)
