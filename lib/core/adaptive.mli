(** Adaptive parameter selection (§7: "Ideally, such a tool would be
    adaptive and thus choose the best set of parameters and number of
    roundtrips based on the characteristics of the data set and
    communication link").

    Before the main protocol, the endpoints run one cheap probe round:
    the server sends [probes] weak hashes of evenly spaced 256 B blocks of
    the current file, the client reports how many match anywhere in its
    old file.  The measured similarity and the file size then select a
    configuration:

    - similar files: the tuned configuration;
    - barely similar: shallow recursion (map construction cannot pay off);
    - tiny files or no similarity: skip map construction entirely and
      send the file compressed (the map phase would cost more than it
      saves).

    The probe's bytes are accounted for in the returned estimate so
    callers can fold them into totals. *)

type probe_result = {
  similarity : float;      (** fraction of probe blocks found in the old file *)
  probe_c2s : int;         (** bytes the probe itself cost *)
  probe_s2c : int;
  chosen : Config.t;
  rationale : string;
}

val probe_block : int
(** 256. *)

val probe :
  ?probes:int -> ?seed:int64 -> old_file:string -> string -> probe_result
(** [probe ~old_file new_file] with a default of 16 sampled blocks. *)

val sync :
  ?probes:int -> old_file:string -> string -> Protocol.result * probe_result
(** Probe, then run the protocol with the chosen configuration.  The
    returned report does {e not} include the probe bytes; add
    [probe_c2s]/[probe_s2c] for end-to-end accounting. *)
