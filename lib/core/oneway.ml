module Poly = Fsync_hash.Poly_hash
module Md5 = Fsync_hash.Md5
module Fp = Fsync_hash.Fingerprint
module Seg = Fsync_util.Segments
module Delta = Fsync_delta.Delta
module Deflate = Fsync_compress.Deflate
module Scope = Fsync_obs.Scope

type config = {
  block_size : int;
  weak_bits : int;
  strong_bits : int;
  delta_missing : bool;
}

let default_config =
  { block_size = 1024; weak_bits = 24; strong_bits = 40; delta_missing = true }

type report = {
  signature_bytes : int;
  request_bytes : int;
  payload_bytes : int;
  blocks_total : int;
  blocks_matched : int;
}

let per_client_bytes r = r.request_bytes + r.payload_bytes
let total_bytes r = r.signature_bytes + per_client_bytes r

type result = { reconstructed : string; report : report }

(* The published signature: header + per full-size block (weak, strong).
   The short tail block is carried as data in the payload, never matched
   (its window size differs, so clients cannot roll for it). *)
let signature_size cfg ~n_new =
  let n_blocks = n_new / cfg.block_size in
  Fsync_util.Varint.size n_new + Fp.size_bytes
  + ((n_blocks * (cfg.weak_bits + cfg.strong_bits)) + 7) / 8

(* Client-side matching: for each published block, search every window of
   the old file by weak hash, then self-verify with the strong hash. *)
let match_blocks cfg ~old_file ~new_file =
  let b = cfg.block_size in
  let n_blocks = String.length new_file / b in
  let idx = Candidates.build old_file ~window:b ~bits:cfg.weak_bits in
  Array.init n_blocks (fun i ->
      let pos = i * b in
      let weak =
        Poly.truncate (Poly.hash_sub new_file ~pos ~len:b) ~bits:cfg.weak_bits
      in
      let strong =
        Md5.truncated_sub new_file ~pos ~len:b ~bits:(min cfg.strong_bits 57)
      in
      let candidates = Candidates.lookup idx weak in
      List.find_opt
        (fun p ->
          Int.equal
            (Md5.truncated_sub old_file ~pos:p ~len:b ~bits:(min cfg.strong_bits 57))
            strong)
        candidates)

let sync ?(config = default_config) ?(scope = Scope.disabled) ~old_file new_file =
  let cfg = config in
  let b = cfg.block_size in
  let n_new = String.length new_file in
  let sp = Scope.enter scope "oneway_sync" in
  let matches = match_blocks cfg ~old_file ~new_file in
  let n_blocks = Array.length matches in
  let matched = Array.fold_left (fun a m -> if Option.is_some m then a + 1 else a) 0 matches in
  Scope.add scope "oneway_blocks_total" n_blocks;
  Scope.add scope "oneway_blocks_matched" matched;
  (* Known target segments = matched blocks. *)
  let known =
    Seg.of_list
      (List.filteri
         (fun i _ -> Option.is_some matches.(i))
         (List.init n_blocks (fun i -> (i * b, (i + 1) * b))))
  in
  let unknown_spans = Seg.to_list (Seg.complement known ~lo:0 ~hi:n_new) in
  let concat spans src =
    String.concat "" (List.map (fun (lo, hi) -> String.sub src lo (hi - lo)) spans)
  in
  let unknown_content = concat unknown_spans new_file in
  (* Server builds the payload knowing only the request bitmap: the
     reference is the matched blocks of the new file itself. *)
  let reference =
    if cfg.delta_missing then concat (Seg.to_list known) new_file else ""
  in
  let payload =
    if cfg.delta_missing then Delta.encode ~reference unknown_content
    else Deflate.compress unknown_content
  in
  (* Client reconstruction from its own old file + the payload. *)
  let client_reference =
    String.concat ""
      (List.filter_map
         (Option.map (fun p -> String.sub old_file p b))
         (Array.to_list matches))
  in
  let reconstruct () =
    let unknown_c =
      if cfg.delta_missing then Delta.decode ~reference:client_reference payload
      else Deflate.decompress payload
    in
    let buf = Buffer.create n_new in
    let upos = ref 0 in
    let pos = ref 0 in
    while !pos < n_new do
      let block_i = !pos / b in
      if block_i < n_blocks && Option.is_some matches.(block_i) then begin
        (match matches.(block_i) with
        | Some p -> Buffer.add_substring buf old_file p b
        | None -> Error.malformed "Oneway: unmatched block %d during reconstruction" block_i);
        pos := !pos + b
      end
      else begin
        (* consume unknown bytes until the next matched block *)
        let next_known =
          let rec find i =
            if i >= n_blocks then n_new
            else if Option.is_some matches.(i) then i * b
            else find (i + 1)
          in
          find (block_i + 1)
        in
        let len = next_known - !pos in
        Buffer.add_substring buf unknown_c !upos len;
        upos := !upos + len;
        pos := next_known
      end
    done;
    Buffer.contents buf
  in
  let candidate = reconstruct () in
  let ok = Fp.equal (Fp.of_string candidate) (Fp.of_string new_file) in
  let reconstructed, payload_bytes =
    if ok then (candidate, String.length payload)
    else begin
      (* Strong-hash collision: the client detects the fingerprint
         mismatch and re-requests the whole file compressed. *)
      let full = Deflate.compress new_file in
      (Deflate.decompress full, String.length payload + String.length full)
    end
  in
  Scope.leave scope sp;
  {
    reconstructed;
    report =
      {
        signature_bytes = signature_size cfg ~n_new;
        request_bytes = (n_blocks + 7) / 8;
        payload_bytes;
        blocks_total = n_blocks;
        blocks_matched = matched;
      };
  }

let broadcast_cost ?config ~clients () =
  match clients with
  | [] -> 0
  | (_, first_new) :: rest ->
      if List.exists (fun (_, nf) -> not (String.equal nf first_new)) rest then
        Error.malformed "Oneway.broadcast_cost: clients disagree on the new file";
      let reports =
        List.map
          (fun (old_file, new_file) -> (sync ?config ~old_file new_file).report)
          clients
      in
      match reports with
      | [] -> 0
      | first :: _ ->
          first.signature_bytes
          + List.fold_left (fun acc r -> acc + r.payload_bytes) 0 reports
