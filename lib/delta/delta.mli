(** Delta compression: encode a target file relative to a reference file.

    This is the substitute for the zdelta and vcdiff tools the paper uses
    (§6.1): an LZ77-style encoder whose match space is the whole reference
    plus the already-emitted target prefix, producing a
    copy/insert instruction stream that is then entropy-coded by
    {!Fsync_compress.Deflate}.  Delta compression both provides the
    practical lower bound the paper compares against and implements the
    second phase of the synchronization framework (§5.1), where the
    "reference" is the part of the current file the client already knows.

    Two profiles:
    - [Zdelta]: deep hash chains, 4-byte minimum match, copy-offset
      prediction per source — approximates the zdelta tool.
    - [Vcdiff]: shallower search and coarser minimum match — approximates
      the (somewhat weaker, per the paper) vcdiff tool. *)

type profile = Zdelta | Vcdiff

type instruction =
  | Copy_ref of { off : int; len : int }  (** copy from the reference *)
  | Copy_tgt of { off : int; len : int }  (** copy from the decoded target prefix *)
  | Insert of string                      (** literal bytes *)

val encode : ?profile:profile -> reference:string -> string -> string
(** [encode ~reference target] is a self-contained compressed delta. *)

val decode : reference:string -> string -> string
(** Reconstruct the target.
    @raise Invalid_argument on a malformed delta or wrong reference. *)

val encoded_size : ?profile:profile -> reference:string -> string -> int

val instructions : ?profile:profile -> reference:string -> string -> instruction list
(** The raw instruction stream (exposed for tests and inspection). *)

val apply : reference:string -> instruction list -> string
(** Execute an instruction stream.
    @raise Invalid_argument on out-of-range copies. *)
