module Varint = Fsync_util.Varint
module Deflate = Fsync_compress.Deflate

type profile = Zdelta | Vcdiff

type instruction =
  | Copy_ref of { off : int; len : int }
  | Copy_tgt of { off : int; len : int }
  | Insert of string

type params = {
  chain_depth : int;
  min_match : int;
  predict_offsets : bool; (* encode copy offsets relative to the previous
                             copy's end, per source *)
}

let params_of = function
  | Zdelta -> { chain_depth = 256; min_match = 4; predict_offsets = true }
  | Vcdiff -> { chain_depth = 32; min_match = 8; predict_offsets = false }

(* --- match finder: hash chains over reference and target prefix --- *)

let hash_bits = 16
let hash_size = 1 lsl hash_bits

let hash4 s i =
  let v =
    Char.code (String.unsafe_get s i)
    lor (Char.code (String.unsafe_get s (i + 1)) lsl 8)
    lor (Char.code (String.unsafe_get s (i + 2)) lsl 16)
    lor (Char.code (String.unsafe_get s (i + 3)) lsl 24)
  in
  (v * 0x9E3779B1) lsr (32 - hash_bits) land (hash_size - 1)

type index = {
  head : int array;  (* hash -> last position + 1, 0 = empty *)
  prev : int array;  (* position -> previous position + 1 *)
  data : string;
}

let index_create data =
  {
    head = Array.make hash_size 0;
    prev = Array.make (max (String.length data) 1) 0;
    data;
  }

let index_insert idx i =
  if i + 4 <= String.length idx.data then begin
    let h = hash4 idx.data i in
    idx.prev.(i) <- idx.head.(h);
    idx.head.(h) <- i + 1
  end

let index_all data =
  let idx = index_create data in
  for i = 0 to String.length data - 4 do
    index_insert idx i
  done;
  idx

(* Longest match of [target] at [tpos] against [idx.data] starting at a
   chain of candidate positions; [limit] bounds positions we may read in
   idx.data (for self-reference, only the already-emitted prefix). *)
let best_in_index idx ~limit ~target ~tpos ~depth =
  let n = String.length target in
  if tpos + 4 > n then (0, -1)
  else begin
    let h = hash4 target tpos in
    let max_len = n - tpos in
    let rec scan cand depth best_len best_pos =
      if cand = 0 || depth = 0 then (best_len, best_pos)
      else begin
        let j = cand - 1 in
        if j >= limit then scan idx.prev.(j) depth best_len best_pos
        else begin
          let cap = min max_len (limit - j) in
          (* For self-reference (idx.data == target physically) copying may
             overlap the cursor; we restrict to non-overlapping copies,
             which keeps decode trivial and loses little. *)
          let rec run k =
            if k < cap
               && Char.equal
                    (String.unsafe_get idx.data (j + k))
                    (String.unsafe_get target (tpos + k))
            then run (k + 1)
            else k
          in
          let l = run 0 in
          if l > best_len then scan idx.prev.(j) (depth - 1) l j
          else scan idx.prev.(j) (depth - 1) best_len best_pos
        end
      end
    in
    scan idx.head.(h) depth 0 (-1)
  end

let instructions ?(profile = Zdelta) ~reference target =
  let p = params_of profile in
  let ref_idx = index_all reference in
  let tgt_idx = index_create target in
  let n = String.length target in
  let acc = ref [] in
  let lit = Buffer.create 64 in
  let flush_lit () =
    if Buffer.length lit > 0 then begin
      acc := Insert (Buffer.contents lit) :: !acc;
      Buffer.clear lit
    end
  in
  let i = ref 0 in
  while !i < n do
    let rl, rp =
      best_in_index ref_idx ~limit:(String.length reference) ~target ~tpos:!i
        ~depth:p.chain_depth
    in
    let tl, tp =
      best_in_index tgt_idx ~limit:!i ~target ~tpos:!i ~depth:p.chain_depth
    in
    let len, instr =
      if rl >= tl && rl >= p.min_match then (rl, Some (Copy_ref { off = rp; len = rl }))
      else if tl >= p.min_match then (tl, Some (Copy_tgt { off = tp; len = tl }))
      else (1, None)
    in
    (match instr with
    | Some ins ->
        flush_lit ();
        acc := ins :: !acc
    | None -> Buffer.add_char lit target.[!i]);
    (* Index the target positions we just passed. *)
    let stop = min (!i + len) (n - 4) in
    let j = ref !i in
    while !j < stop do
      index_insert tgt_idx !j;
      incr j
    done;
    i := !i + len
  done;
  flush_lit ();
  List.rev !acc

let apply ~reference instrs =
  let buf = Buffer.create 1024 in
  List.iter
    (function
      | Insert s -> Buffer.add_string buf s
      | Copy_ref { off; len } ->
          if off < 0 || len < 0 || off + len > String.length reference then
            invalid_arg "Delta.apply: reference copy out of range";
          Buffer.add_substring buf reference off len
      | Copy_tgt { off; len } ->
          if off < 0 || len < 0 || off + len > Buffer.length buf then
            invalid_arg "Delta.apply: target copy out of range";
          (* Contents so far; non-overlapping by construction. *)
          Buffer.add_string buf (Buffer.sub buf off len))
    instrs;
  Buffer.contents buf

(* --- serialization ---

   op tag varint: 0 = insert, 1 = copy_ref, 2 = copy_tgt.
   insert: len, bytes.  copy: len, then offset — as a zig-zag delta from
   the predicted offset when the profile enables prediction (flag bit in
   the header). *)

let serialize ~predict instrs =
  let buf = Buffer.create 1024 in
  Buffer.add_char buf (if predict then '\001' else '\000');
  let expect_ref = ref 0 and expect_tgt = ref 0 in
  List.iter
    (fun ins ->
      match ins with
      | Insert s ->
          Varint.write buf 0;
          Varint.write buf (String.length s);
          Buffer.add_string buf s
      | Copy_ref { off; len } ->
          Varint.write buf 1;
          Varint.write buf len;
          if predict then begin
            Varint.write_signed buf (off - !expect_ref);
            expect_ref := off + len
          end
          else Varint.write buf off
      | Copy_tgt { off; len } ->
          Varint.write buf 2;
          Varint.write buf len;
          if predict then begin
            Varint.write_signed buf (off - !expect_tgt);
            expect_tgt := off + len
          end
          else Varint.write buf off)
    instrs;
  Buffer.contents buf

let deserialize s =
  if String.length s = 0 then invalid_arg "Delta: empty stream";
  let predict = s.[0] = '\001' in
  let n = String.length s in
  let expect_ref = ref 0 and expect_tgt = ref 0 in
  let rec loop pos acc =
    if pos >= n then List.rev acc
    else begin
      let tag, pos = Varint.read s ~pos in
      match tag with
      | 0 ->
          let len, pos = Varint.read s ~pos in
          if pos + len > n then invalid_arg "Delta: truncated insert";
          loop (pos + len) (Insert (String.sub s pos len) :: acc)
      | 1 ->
          let len, pos = Varint.read s ~pos in
          let off, pos =
            if predict then begin
              let d, pos = Varint.read_signed s ~pos in
              let off = !expect_ref + d in
              expect_ref := off + len;
              (off, pos)
            end
            else Varint.read s ~pos
          in
          loop pos (Copy_ref { off; len } :: acc)
      | 2 ->
          let len, pos = Varint.read s ~pos in
          let off, pos =
            if predict then begin
              let d, pos = Varint.read_signed s ~pos in
              let off = !expect_tgt + d in
              expect_tgt := off + len;
              (off, pos)
            end
            else Varint.read s ~pos
          in
          loop pos (Copy_tgt { off; len } :: acc)
      | _ -> invalid_arg "Delta: unknown op"
    end
  in
  loop 1 []

let encode ?(profile = Zdelta) ~reference target =
  let p = params_of profile in
  let instrs = instructions ~profile ~reference target in
  Deflate.compress (serialize ~predict:p.predict_offsets instrs)

let decode ~reference packed =
  let instrs = deserialize (Deflate.decompress packed) in
  apply ~reference instrs

let encoded_size ?profile ~reference target =
  String.length (encode ?profile ~reference target)
