(** The rsync server -> client stream (§2.2 step 2): literal data
    interleaved with references to blocks of the client's old file, the
    whole stream compressed "using an algorithm similar to gzip". *)

type op =
  | Data of string                         (** literal bytes *)
  | Copy of { index : int; count : int }   (** [count] consecutive blocks
                                               starting at block [index] *)

val encode : ?level:Fsync_compress.Deflate.level -> op list -> string
(** Serialized and compressed stream. *)

val decode : string -> op list
(** @raise Invalid_argument on malformed input. *)

val apply : Signature.t -> old_file:string -> op list -> string
(** Reconstruct the new file on the client.
    @raise Invalid_argument if a block reference is out of range. *)

val coalesce : op list -> op list
(** Merge adjacent [Data] ops and consecutive [Copy] runs (normal form). *)
