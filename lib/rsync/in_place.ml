type stats = {
  ops_total : int;
  cycles_broken : int;
  extra_literal_bytes : int;
}

type node = {
  idx : int;
  write_lo : int;
  write_hi : int;
  (* Source range in old-file coordinates for copies; None for literals. *)
  mutable read : (int * int) option;
  mutable op : Token.op;
}

let nodes_of_stream (sg : Signature.t) ops =
  let pos = ref 0 in
  List.mapi
    (fun idx op ->
      let len =
        match op with
        | Token.Data s -> String.length s
        | Token.Copy { index; count } ->
            if index < 0 || count < 0 || index + count > Array.length sg.blocks
            then invalid_arg "In_place: block run out of range";
            let rec total i n acc =
              if n = 0 then acc else total (i + 1) (n - 1) (acc + sg.blocks.(i).len)
            in
            total index count 0
      in
      let read =
        match op with
        | Token.Data _ -> None
        | Token.Copy { index; _ } -> Some (Signature.block_start sg index, len)
      in
      let n =
        {
          idx;
          write_lo = !pos;
          write_hi = !pos + len;
          read = Option.map (fun (lo, l) -> (lo, lo + l)) read;
          op;
        }
      in
      pos := !pos + len;
      n)
    ops

let overlaps (a_lo, a_hi) (b_lo, b_hi) = a_lo < b_hi && b_lo < a_hi

(* Order nodes so that every copy reads its source range before any node
   overwrites it.  Kahn's algorithm on reader -> clobberer edges; cycles
   are broken by materializing one remaining copy as a literal. *)
let analyze (sg : Signature.t) ~old_file ops =
  let nodes = Array.of_list (nodes_of_stream sg ops) in
  let n = Array.length nodes in
  let cycles = ref 0 and extra = ref 0 in
  let materialize node =
    match node.read with
    | None -> ()
    | Some (lo, hi) ->
        node.read <- None;
        node.op <- Token.Data (String.sub old_file lo (hi - lo));
        incr cycles;
        extra := !extra + (hi - lo)
  in
  (* reader A -> clobberer B means A must run before B. *)
  let must_precede a b =
    (not (Int.equal a.idx b.idx))
    &&
    match a.read with
    | None -> false
    | Some r -> overlaps r (b.write_lo, b.write_hi)
  in
  let order = ref [] in
  let placed = Array.make n false in
  let remaining = ref n in
  while !remaining > 0 do
    let progress = ref false in
    for i = 0 to n - 1 do
      if not placed.(i) then begin
        let a = nodes.(i) in
        (* a may run once no unplaced reader still needs the range a is
           about to overwrite. *)
        let blocked = ref false in
        for j = 0 to n - 1 do
          if (not placed.(j)) && not (Int.equal j i) && must_precede nodes.(j) a
          then
            blocked := true
        done;
        if not !blocked then begin
          placed.(i) <- true;
          order := i :: !order;
          decr remaining;
          progress := true
        end
      end
    done;
    if not !progress then begin
      (* Every remaining node participates in a cycle; break one: convert
         the first remaining copy into a literal, freeing its readers. *)
      let rec first i =
        if i >= n then None
        else if (not placed.(i)) && Option.is_some nodes.(i).read then Some i
        else first (i + 1)
      in
      match first 0 with
      | Some i -> materialize nodes.(i)
      | None ->
          (* Only literals remain yet nothing progresses: impossible, as
             literals have no read constraints. *)
          assert false
    end
  done;
  let exec_order = List.rev_map (fun i -> nodes.(i)) !order in
  ( nodes,
    exec_order,
    { ops_total = n; cycles_broken = !cycles; extra_literal_bytes = !extra } )

let plan sg ~old_file ops =
  let nodes, _, stats = analyze sg ~old_file ops in
  (Array.to_list (Array.map (fun nd -> nd.op) nodes), stats)

let apply sg ~old_file ops =
  let nodes, exec, stats = analyze sg ~old_file ops in
  let new_len =
    Array.fold_left (fun acc nd -> max acc nd.write_hi) 0 nodes
  in
  let buf = Bytes.make (max new_len (String.length old_file)) '\000' in
  Bytes.blit_string old_file 0 buf 0 (String.length old_file);
  List.iter
    (fun nd ->
      match nd.op with
      | Token.Data s -> Bytes.blit_string s 0 buf nd.write_lo (String.length s)
      | Token.Copy _ -> (
          match nd.read with
          | Some (lo, hi) ->
              (* O(block) scratch: the source may overlap the target. *)
              let tmp = Bytes.sub buf lo (hi - lo) in
              Bytes.blit tmp 0 buf nd.write_lo (hi - lo)
          | None -> assert false))
    exec;
  (Bytes.sub_string buf 0 new_len, stats)
