module Adler32 = Fsync_hash.Adler32
module Md4 = Fsync_hash.Md4

(* Two-level lookup as in rsync proper: a table keyed by the 16-bit fold of
   the rolling checksum holding the list of blocks, each then compared on
   the full 32-bit value before the strong hash is computed. *)

let fold16 w = (w lxor (w lsr 16)) land 0xffff

let run (sg : Signature.t) ~new_file =
  let n = String.length new_file in
  let b = sg.block_size in
  let table = Array.make 0x10000 [] in
  (* Only full-size blocks participate in sliding matches; a short tail
     block is handled separately at the end. *)
  let tail_block =
    let nb = Array.length sg.blocks in
    if nb > 0 && sg.blocks.(nb - 1).len < b then Some sg.blocks.(nb - 1) else None
  in
  Array.iter
    (fun (blk : Signature.block) ->
      if Int.equal blk.len b then begin
        let k = fold16 blk.weak in
        table.(k) <- blk :: table.(k)
      end)
    sg.blocks;
  let ops = ref [] in
  let lit_start = ref 0 in
  let emit_literal upto =
    if upto > !lit_start then
      ops := Token.Data (String.sub new_file !lit_start (upto - !lit_start)) :: !ops
  in
  let try_tail pos =
    (* Try to match the short tail block against the file suffix. *)
    match tail_block with
    | Some blk when Int.equal (n - pos) blk.len && blk.len > 0 ->
        let strong =
          Md4.truncated_sub new_file ~pos ~len:blk.len ~bytes_used:sg.strong_bytes
        in
        if String.equal strong blk.strong then Some blk else None
    | _ -> None
  in
  if n >= b then begin
    let roll = ref (Adler32.of_sub new_file ~pos:0 ~len:b) in
    let pos = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      let weak = Adler32.value !roll in
      let matched =
        List.find_opt
          (fun (blk : Signature.block) ->
            Int.equal blk.weak weak
            && String.equal
                 (Md4.truncated_sub new_file ~pos:!pos ~len:b
                    ~bytes_used:sg.strong_bytes)
                 blk.strong)
          table.(fold16 weak)
      in
      match matched with
      | Some blk ->
          emit_literal !pos;
          ops := Token.Copy { index = blk.index; count = 1 } :: !ops;
          let next = !pos + b in
          lit_start := next;
          if next + b <= n then begin
            roll := Adler32.of_sub new_file ~pos:next ~len:b;
            pos := next
          end
          else begin
            pos := next;
            continue_ := false
          end
      | None ->
          if !pos + b < n then begin
            roll := Adler32.roll !roll ~out:new_file.[!pos] ~in_:new_file.[!pos + b];
            incr pos
          end
          else continue_ := false
    done
  end;
  (* Trailing bytes: maybe the tail block, otherwise a literal. *)
  (match try_tail !lit_start with
  | Some blk ->
      emit_literal !lit_start;
      ops := Token.Copy { index = blk.index; count = 1 } :: !ops
  | None -> emit_literal n);
  Token.coalesce (List.rev !ops)
