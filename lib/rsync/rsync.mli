(** The rsync baseline, end to end (§2.2).

    Client holds [old_file], server holds [new_file]; the client sends
    block signatures, the server replies with a compressed literal/copy
    stream, the client reconstructs.  Costs are reported per direction so
    benchmarks can stack them the way the paper's figures do. *)

type config = {
  block_size : int;     (** default 700, the historical rsync default *)
  strong_bytes : int;   (** truncated MD4 width, default 2 *)
  level : Fsync_compress.Deflate.level;
}

val default_config : config

type cost = {
  client_to_server : int;  (** signature bytes *)
  server_to_client : int;  (** compressed stream bytes *)
}

val total : cost -> int

type result = {
  reconstructed : string;
  cost : cost;
  matched_blocks : int;
  literal_bytes : int;
}

val sync : ?config:config -> old_file:string -> string -> result
(** [sync ~old_file new_file] runs the full protocol in memory. *)

val cost_only : ?config:config -> old_file:string -> string -> cost

val candidate_block_sizes : int list
(** The geometric grid that {!best_block_size} searches. *)

val best_block_size :
  ?candidates:int list -> old_file:string -> string -> int * cost
(** The idealized rsync of the paper's figures: the per-file block size
    minimizing total transfer.  An empty [candidates] list degenerates
    to the default configuration's block size. *)
