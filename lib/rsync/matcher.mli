(** Server-side rsync matching (§2.2 step 2): slide a window over the
    current file, look up the rolling checksum among the client's block
    signatures, confirm candidates with the strong checksum, and emit the
    literal/copy stream. *)

val run : Signature.t -> new_file:string -> Token.op list
(** Stream whose {!Token.apply} against the old file reconstructs
    [new_file] exactly (up to strong-hash collisions, whose probability the
    whole-file check of the driver covers). *)
