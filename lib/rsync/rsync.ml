type config = {
  block_size : int;
  strong_bytes : int;
  level : Fsync_compress.Deflate.level;
}

let default_config = { block_size = 700; strong_bytes = 2; level = Normal }

type cost = { client_to_server : int; server_to_client : int }

let total c = c.client_to_server + c.server_to_client

type result = {
  reconstructed : string;
  cost : cost;
  matched_blocks : int;
  literal_bytes : int;
}

let sync ?(config = default_config) ~old_file new_file =
  let sg =
    Signature.create ~strong_bytes:config.strong_bytes
      ~block_size:config.block_size old_file
  in
  let ops = Matcher.run sg ~new_file in
  let stream = Token.encode ~level:config.level ops in
  let reconstructed = Token.apply sg ~old_file ops in
  let matched_blocks, literal_bytes =
    List.fold_left
      (fun (m, l) op ->
        match op with
        | Token.Copy { count; _ } -> (m + count, l)
        | Token.Data s -> (m, l + String.length s))
      (0, 0) ops
  in
  {
    reconstructed;
    cost =
      {
        client_to_server = Signature.wire_bytes sg;
        server_to_client = String.length stream;
      };
    matched_blocks;
    literal_bytes;
  }

let cost_only ?config ~old_file new_file =
  (sync ?config ~old_file new_file).cost

let candidate_block_sizes = [ 128; 256; 512; 700; 1024; 2048; 4096; 8192 ]

let best_block_size ?(candidates = candidate_block_sizes) ~old_file new_file =
  let eval bs =
    cost_only ~config:{ default_config with block_size = bs } ~old_file
      new_file
  in
  (* An empty candidate list would leave nothing to pick from; fall back
     to the default configuration's block size so the search is total. *)
  let first, rest =
    match candidates with
    | [] -> (default_config.block_size, [])
    | first :: rest -> (first, rest)
  in
  List.fold_left
    (fun (best_bs, best_cost) bs ->
      let c = eval bs in
      if total c < total best_cost then (bs, c) else (best_bs, best_cost))
    (first, eval first) rest
