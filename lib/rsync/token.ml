module Varint = Fsync_util.Varint
module Deflate = Fsync_compress.Deflate

type op =
  | Data of string
  | Copy of { index : int; count : int }

let coalesce ops =
  let rec loop acc = function
    | [] -> List.rev acc
    | Data "" :: rest -> loop acc rest
    | Data a :: Data b :: rest -> loop acc (Data (a ^ b) :: rest)
    | Copy { index = i1; count = c1 } :: Copy { index = i2; count = c2 } :: rest
      when Int.equal (i1 + c1) i2 ->
        loop acc (Copy { index = i1; count = c1 + c2 } :: rest)
    | op :: rest -> loop (op :: acc) rest
  in
  loop [] ops

let serialize ops =
  let buf = Buffer.create 1024 in
  List.iter
    (function
      | Data s ->
          Varint.write buf 0;
          Varint.write buf (String.length s);
          Buffer.add_string buf s
      | Copy { index; count } ->
          Varint.write buf 1;
          Varint.write buf index;
          Varint.write buf count)
    ops;
  Buffer.contents buf

let deserialize s =
  let n = String.length s in
  let rec loop pos acc =
    if pos >= n then List.rev acc
    else begin
      let tag, pos = Varint.read s ~pos in
      match tag with
      | 0 ->
          let len, pos = Varint.read s ~pos in
          if pos + len > n then invalid_arg "Token: truncated literal";
          loop (pos + len) (Data (String.sub s pos len) :: acc)
      | 1 ->
          let index, pos = Varint.read s ~pos in
          let count, pos = Varint.read s ~pos in
          loop pos (Copy { index; count } :: acc)
      | _ -> invalid_arg "Token: unknown tag"
    end
  in
  loop 0 []

let encode ?level ops = Deflate.compress ?level (serialize (coalesce ops))

let decode s = deserialize (Deflate.decompress s)

let apply (sg : Signature.t) ~old_file ops =
  let buf = Buffer.create (String.length old_file) in
  List.iter
    (function
      | Data s -> Buffer.add_string buf s
      | Copy { index; count } ->
          if index < 0 || count < 0 || index + count > Array.length sg.blocks
          then invalid_arg "Token.apply: block run out of range";
          for i = index to index + count - 1 do
            let b = sg.blocks.(i) in
            Buffer.add_substring buf old_file (Signature.block_start sg i) b.len
          done)
    ops;
  Buffer.contents buf
