module Adler32 = Fsync_hash.Adler32
module Md4 = Fsync_hash.Md4

type block = { index : int; weak : int; strong : string; len : int }

type t = {
  block_size : int;
  strong_bytes : int;
  blocks : block array;
  file_len : int;
}

let header_bytes = 12 (* block size, strong width, block count *)

let create ?(strong_bytes = 2) ~block_size data =
  (* A non-positive block size cannot tile anything; clamp to one byte
     per block so construction is total. *)
  let block_size = max 1 block_size in
  let n = String.length data in
  let nblocks = (n + block_size - 1) / block_size in
  let blocks =
    Array.init nblocks (fun i ->
        let pos = i * block_size in
        let len = min block_size (n - pos) in
        {
          index = i;
          weak = Adler32.value (Adler32.of_sub data ~pos ~len);
          strong = Md4.truncated_sub data ~pos ~len ~bytes_used:strong_bytes;
          len;
        })
  in
  { block_size; strong_bytes; blocks; file_len = n }

let wire_bytes t =
  header_bytes + (Array.length t.blocks * (4 + t.strong_bytes))

let block_start t i = i * t.block_size
