(** In-place reconstruction (the in-place rsync of Rasch and Burns,
    USENIX '03, cited in §4): apply a literal/copy stream to the old file
    {e in a single buffer}, without holding both versions in memory —
    what a mobile or embedded client with tight storage needs.

    Copy operations read block ranges of the old file that later
    operations may overwrite.  We order the operations so every copy
    reads its source before any operation clobbers it (a topological sort
    of the write->read dependency graph) and break dependency cycles by
    materializing one copy's source bytes as a literal (the stream-size
    cost the paper's reference measures). *)

type stats = {
  ops_total : int;
  cycles_broken : int;       (** copies converted to literals *)
  extra_literal_bytes : int; (** bytes those conversions added *)
}

val plan : Signature.t -> old_file:string -> Token.op list -> Token.op list * stats
(** Rewrite the stream into an executable order, converting copies whose
    dependencies form cycles into literals.  The returned stream still
    reconstructs the same file via {!Token.apply}. *)

val apply : Signature.t -> old_file:string -> Token.op list -> string * stats
(** [apply sg ~old_file ops] reconstructs the new file inside one buffer
    seeded with the old file's contents, resizing only at the end —
    equivalent to {!Token.apply} but exercising the in-place order.
    @raise Invalid_argument on out-of-range block references. *)
