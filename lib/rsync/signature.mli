(** rsync block signatures (client side, §2.2 step 1).

    The client partitions its outdated file into fixed-size blocks (the
    final block may be short) and computes for each a fast rolling
    checksum (Adler-32) and a truncated strong checksum (MD4, 2 bytes by
    default — "only two bytes of the MD4 hash are used since this provides
    sufficient power"). *)

type block = {
  index : int;
  weak : int;          (** Adler-32 value *)
  strong : string;     (** truncated MD4 *)
  len : int;
}

type t = {
  block_size : int;
  strong_bytes : int;
  blocks : block array;
  file_len : int;
}

val create : ?strong_bytes:int -> block_size:int -> string -> t
(** Block sizes below 1 are clamped to 1. *)

val wire_bytes : t -> int
(** Bytes the client sends: 4 (rolling) + [strong_bytes] per block, plus a
    small fixed header. *)

val block_start : t -> int -> int
(** Byte offset of block [i] in the old file. *)
