(** Journaled atomic application of a pulled replica to a directory
    (DESIGN.md §12).

    [pull --apply] used to write files in place: a crash mid-apply left
    a torn replica — some files new, some old, some half-written.  This
    module stages instead: every new or changed file is written (and
    fsynced) under [root/.fsync-apply/], then a journal of intent
    records is fsynced and renamed into place — the commit point — and
    only then are staged files renamed over their destinations, stale
    files unlinked (deletes last), and empty directories pruned.

    A crash therefore leaves one of two states, and {!resume} repairs
    both: no committed journal — the staging directory is discarded and
    the replica is untouched (roll back); committed journal — every
    record is replayed idempotently (roll forward): a staged file still
    present is renamed, one already renamed is verified against the
    journal's length and fingerprint, deletes tolerate ENOENT.

    All filesystem traffic goes through an injectable
    {!Fsync_store.Io.t}, so the torture harness can drive this path
    through seeded fault schedules and crash points. *)

val dirname : string
(** [".fsync-apply"] — the staging directory's name under the replica
    root.  {!Snapshot.load_dir} skips it. *)

type resumed =
  [ `Clean  (** no interrupted apply found *)
  | `Rolled_back  (** uncommitted staging discarded; replica untouched *)
  | `Rolled_forward of int  (** committed journal replayed, [n] records *)
  ]

val resume : ?io:Fsync_store.Io.t -> string -> resumed
(** Repair any interrupted apply under [root].  Idempotent; crashing
    inside [resume] and running it again converges.  Raises typed
    {!Fsync_core.Error} values on unreadable/corrupt journals or when a
    replayed file fails verification. *)

type stats = { wrote : int; deleted : int }

val apply :
  ?io:Fsync_store.Io.t ->
  root:string ->
  old_files:(string * string) list ->
  (string * string) list ->
  stats
(** Make [root] hold exactly the given [(path, content)] files, given
    that it currently holds [old_files]: unchanged paths are left
    alone, new/changed paths staged and renamed in, paths absent from
    the target unlinked.  Runs {!resume} first, so a torn earlier apply
    never compounds.  Raises typed {!Fsync_core.Error} values on
    filesystem failure (a {!Fsync_store.Fault_io.Crash_point}
    propagates untyped, like the real crash it stands for). *)
