(** Round-trip amortization across a collection (§2.3: "the roundtrip
    latencies are not incurred for each file since many files can be
    processed simultaneously. Thus, for large collections additional
    roundtrips are not a problem").

    Every file's protocol follows the same deterministic round schedule
    (block sizes descend from the same start), so the round-r messages of
    all files can ride one physical round trip.  [sync] runs the per-file
    protocols over one shared channel and reports both views:

    - [sequential_roundtrips]: what a naive one-file-at-a-time deployment
      would pay (the sum);
    - [batched_roundtrips]: what the pipelined deployment pays (the
      maximum over files — each round's messages are batched).

    [elapsed_s] converts both into wall-clock time on a configurable
    link, which is the experiment behind the paper's "slow networks"
    claim. *)

type report = {
  files : int;
  total_c2s : int;
  total_s2c : int;
  sequential_roundtrips : int;
  batched_roundtrips : int;
  per_file : (string * Fsync_core.Protocol.report) list;
}

val total_bytes : report -> int

val sync :
  ?config:Fsync_core.Config.t ->
  (string * string * string) list ->
  (string * string) list * report
(** [sync pairs] with [(name, old_file, new_file)] triples; returns the
    reconstructed files (always equal to the new versions) and the
    report. *)

val elapsed_s :
  ?latency_s:float -> ?bandwidth_bps:float -> batched:bool -> report -> float
(** Simulated wall-clock time of the whole synchronization on the given
    link (defaults: 50 ms one-way, 1 Mbit/s). *)
