(** A named collection of files — one replica's view.

    In-memory representation used by the collection synchronizer, with
    directory load/store so the CLI can operate on real trees. *)

type t

val of_files : (string * string) list -> t
(** (path, content) pairs; paths must be unique.
    @raise Invalid_argument on duplicates. *)

val files : t -> (string * string) list
(** Sorted by path. *)

val find : t -> string -> string option
val paths : t -> string list
val count : t -> int
val total_bytes : t -> int

val load_dir : string -> t
(** Read every regular file under the root (paths relative to it). *)

val store_dir : ?io:Fsync_store.Io.t -> string -> t -> unit
(** Write all files under the root, creating directories as needed.
    Mutations go through [io] (default: the real filesystem) so fault
    injection covers them. *)

val prune_empty_dirs : ?io:Fsync_store.Io.t -> string -> int
(** Remove every directory under [root] (never [root] itself) that
    contains no files, bottom-up, so directories left empty by
    stale-file deletion disappear too.  Returns how many were
    removed.  Mutations go through [io] (default: the real
    filesystem). *)
