module Io = Fsync_store.Io
module Error = Fsync_core.Error
module Fp = Fsync_hash.Fingerprint

let dirname = ".fsync-apply"

let staging_dir root = Filename.concat root dirname

let journal_path root = Filename.concat (staging_dir root) "journal"

let staged_name n = Printf.sprintf "f%d" n

(* The real syscalls raise Sys_error/Unix_error; map them to the typed
   discipline (same policy as the store's wrapper).  A Crash_point is
   not an error to report — it is the simulated machine dying — so it
   passes through untouched. *)
let guard what f =
  try f () with
  | Sys_error msg -> Error.malformed "Apply: %s: %s" what msg
  | Unix.Unix_error (e, fn, arg) ->
      Error.malformed "Apply: %s: %s(%s): %s" what fn arg
        (Unix.error_message e)

(* ---- journal records ---- *)

type record =
  | W of { path : string; n : int; len : int; fp_hex : string }
  | D of string

(* Paths are percent-escaped so the journal stays one record per line
   with space-separated fields, whatever bytes the path contains. *)
let esc path =
  let b = Buffer.create (String.length path) in
  String.iter
    (fun c ->
      if Char.code c <= 0x20 || Char.equal c '%' || Int.equal (Char.code c) 0x7f
      then Buffer.add_string b (Printf.sprintf "%%%02x" (Char.code c))
      else Buffer.add_char b c)
    path;
  Buffer.contents b

let unesc s =
  let n = String.length s in
  let b = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '%' ->
        if !i + 2 >= n then Error.malformed "Apply: truncated escape in %S" s;
        (match int_of_string_opt ("0x" ^ String.sub s (!i + 1) 2) with
        | Some v -> Buffer.add_char b (Char.chr v)
        | None -> Error.malformed "Apply: bad escape in %S" s);
        i := !i + 2
    | c -> Buffer.add_char b c);
    incr i
  done;
  Buffer.contents b

let header = "fsync-apply/1"

let encode_journal records =
  let b = Buffer.create 256 in
  Buffer.add_string b header;
  Buffer.add_char b '\n';
  List.iter
    (fun r ->
      (match r with
      | W { path; n; len; fp_hex } ->
          Buffer.add_string b
            (Printf.sprintf "W %s %d %d %s" (esc path) n len fp_hex)
      | D path -> Buffer.add_string b (Printf.sprintf "D %s" (esc path)));
      Buffer.add_char b '\n')
    records;
  Buffer.add_string b "commit\n";
  Buffer.contents b

let parse_record line =
  match String.split_on_char ' ' line with
  | [ "W"; p; n; len; fp_hex ] -> (
      match (int_of_string_opt n, int_of_string_opt len) with
      | Some n, Some len when n >= 0 && len >= 0 ->
          W { path = unesc p; n; len; fp_hex }
      | _ -> Error.malformed "Apply: bad W record %S" line)
  | [ "D"; p ] -> D (unesc p)
  | _ -> Error.malformed "Apply: bad journal record %S" line

(* The journal was fsynced before the rename that published it, so a
   committed journal is complete; a missing trailer means something
   other than a crash damaged it, and we refuse to guess. *)
let parse_journal data =
  match String.split_on_char '\n' data with
  | h :: rest when String.equal h header ->
      let rec go acc = function
        | [ "commit" ] | [ "commit"; "" ] -> List.rev acc
        | line :: tl -> go (parse_record line :: acc) tl
        | [] -> Error.malformed "Apply: journal missing commit trailer"
      in
      go [] rest
  | _ -> Error.malformed "Apply: bad journal header"

(* ---- repair ---- *)

let unlink_if_exists (io : Io.t) path =
  match io.Io.unlink path with
  | () -> ()
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

(* Empty directories left by the deletes, bottom-up; the staging
   directory is the journal's home and is cleaned separately. *)
let prune_dirs (io : Io.t) root =
  let rec walk abs =
    if io.Io.is_dir abs then begin
      Array.iter (fun name -> walk (Filename.concat abs name)) (io.Io.readdir abs);
      if Int.equal (Array.length (io.Io.readdir abs)) 0 then
        match io.Io.rmdir abs with
        | () -> ()
        | exception Unix.Unix_error _ -> ()
    end
  in
  if io.Io.is_dir root then
    Array.iter
      (fun name ->
        if not (String.equal name dirname) then
          walk (Filename.concat root name))
      (io.Io.readdir root)

let clear_staging (io : Io.t) root =
  let sdir = staging_dir root in
  if io.Io.is_dir sdir then begin
    Array.iter
      (fun name -> unlink_if_exists io (Filename.concat sdir name))
      (io.Io.readdir sdir);
    match io.Io.rmdir sdir with
    | () -> ()
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  end

(* Replay a committed journal.  Every step is idempotent, so crashing
   anywhere inside and replaying again converges: renames re-run or
   verify, deletes tolerate ENOENT, the prune only removes what is
   empty. *)
let roll_forward (io : Io.t) root records =
  let sdir = staging_dir root in
  List.iter
    (fun r ->
      match r with
      | D _ -> ()
      | W { path; n; len; fp_hex } ->
          let staged = Filename.concat sdir (staged_name n) in
          let final = Filename.concat root path in
          if io.Io.exists staged then begin
            Io.mkdir_p io (Filename.dirname final);
            io.Io.rename ~src:staged ~dst:final
          end
          else
            (* Renamed before the crash: verify the journal's promise
               instead of assuming it. *)
            let data = io.Io.read_file final in
            if
              not
                (Int.equal (String.length data) len
                && String.equal (Fp.to_hex (Fp.of_string data)) fp_hex)
            then
              Error.fail
                (Error.Verification_failed
                   (Printf.sprintf
                      "Apply: replayed %s does not match its journal record"
                      path)))
    records;
  (* Deletes last: a crash during the writes never costs data that the
     old replica still had. *)
  List.iter
    (fun r ->
      match r with
      | W _ -> ()
      | D path -> unlink_if_exists io (Filename.concat root path))
    records;
  prune_dirs io root;
  unlink_if_exists io (journal_path root);
  clear_staging io root

type resumed = [ `Clean | `Rolled_back | `Rolled_forward of int ]

let resume_unguarded (io : Io.t) root : resumed =
  let sdir = staging_dir root in
  if not (io.Io.is_dir sdir) then `Clean
  else begin
    let j = journal_path root in
    if io.Io.exists j then begin
      let records = parse_journal (io.Io.read_file j) in
      roll_forward io root records;
      `Rolled_forward (List.length records)
    end
    else begin
      (* No commit point reached: the replica was never touched, the
         staging is garbage. *)
      clear_staging io root;
      `Rolled_back
    end
  end

let resume ?(io = Io.real) root =
  guard ("resume apply under " ^ root) (fun () -> resume_unguarded io root)

(* ---- apply ---- *)

type stats = { wrote : int; deleted : int }

let plan ~old_files files =
  let find_old p =
    List.find_opt (fun (q, _) -> String.equal q p) old_files
  in
  let writes =
    List.filter
      (fun (p, c) ->
        match find_old p with
        | Some (_, old) -> not (String.equal old c)
        | None -> true)
      files
  in
  let deletes =
    List.filter_map
      (fun (p, _) ->
        if List.exists (fun (q, _) -> String.equal q p) files then None
        else Some p)
      old_files
  in
  (writes, deletes)

let apply ?(io = Io.real) ~root ~old_files files =
  guard ("apply under " ^ root) (fun () ->
      ignore (resume_unguarded io root);
      match plan ~old_files files with
      | [], [] -> { wrote = 0; deleted = 0 }
      | writes, deletes ->
          Io.mkdir_p io root;
          io.Io.mkdir (staging_dir root);
          let records =
            List.mapi
              (fun n (path, content) ->
                Io.write_file io
                  (Filename.concat (staging_dir root) (staged_name n))
                  content;
                W
                  {
                    path;
                    n;
                    len = String.length content;
                    fp_hex = Fp.to_hex (Fp.of_string content);
                  })
              writes
            @ List.map (fun p -> D p) deletes
          in
          (* Commit point: the fsynced journal renamed into place. *)
          Io.write_file_atomic io
            ~staging:(journal_path root ^ ".tmp")
            ~dest:(journal_path root) (encode_journal records);
          roll_forward io root records;
          { wrote = List.length writes; deleted = List.length deletes })
