module Deflate = Fsync_compress.Deflate
module Delta = Fsync_delta.Delta
module Rsync = Fsync_rsync.Rsync
module Fp = Fsync_hash.Fingerprint
module Varint = Fsync_util.Varint
module Channel = Fsync_net.Channel
module Merkle = Fsync_reconcile.Merkle
module Recon = Fsync_reconcile.Recon

type metadata_mode = Linear | Merkle

let metadata_name = function Linear -> "linear" | Merkle -> "merkle"

type method_ =
  | Full_raw
  | Full_compressed
  | Rsync_default
  | Rsync_best
  | Fsync of Fsync_core.Config.t
  | Delta_lower_bound of Fsync_delta.Delta.profile
  | Cdc

let method_name = function
  | Full_raw -> "full (raw)"
  | Full_compressed -> "full (compressed)"
  | Rsync_default -> "rsync"
  | Rsync_best -> "rsync (best block)"
  | Fsync _ -> "fsync (this paper)"
  | Delta_lower_bound Delta.Zdelta -> "zdelta (lower bound)"
  | Delta_lower_bound Delta.Vcdiff -> "vcdiff (lower bound)"
  | Cdc -> "cdc (LBFS-style)"

type file_outcome = {
  path : string;
  old_bytes : int;
  new_bytes : int;
  c2s : int;
  s2c : int;
  skipped : bool;
}

type summary = {
  method_used : string;
  metadata_used : string;
  files_total : int;
  files_unchanged : int;
  files_new : int;
  files_deleted : int;
  bytes_old : int;
  bytes_new : int;
  meta_c2s : int;
  meta_s2c : int;
  meta_rounds : int;
  total_c2s : int;
  total_s2c : int;
  outcomes : file_outcome list;
}

let total s = s.total_c2s + s.total_s2c
let meta_total s = s.meta_c2s + s.meta_s2c

(* One file through the chosen method; returns (reconstructed, c2s, s2c).
   The per-file header/fingerprint exchange is accounted at collection
   level, so the protocol's own header bytes are deducted. *)
let transfer method_ ~old_file ~new_file =
  match method_ with
  | Full_raw -> (new_file, 0, String.length new_file)
  | Full_compressed ->
      let payload = Deflate.compress new_file in
      (Deflate.decompress payload, 0, String.length payload)
  | Rsync_default ->
      let r = Rsync.sync ~old_file new_file in
      (r.reconstructed, r.cost.client_to_server, r.cost.server_to_client)
  | Rsync_best ->
      let bs, cost = Rsync.best_block_size ~old_file new_file in
      let r =
        Rsync.sync ~config:{ Rsync.default_config with block_size = bs } ~old_file
          new_file
      in
      (r.reconstructed, cost.client_to_server, cost.server_to_client)
  | Fsync config ->
      let r = Fsync_core.Protocol.run ~config ~old_file new_file in
      let rep = r.report in
      ( r.reconstructed,
        rep.total_c2s - rep.header_c2s,
        rep.total_s2c - rep.header_s2c )
  | Delta_lower_bound profile ->
      let d = Delta.encode ~profile ~reference:old_file new_file in
      (Delta.decode ~reference:old_file d, 0, String.length d)
  | Cdc ->
      let r = Fsync_cdc.Lbfs_sync.sync ~old_file new_file in
      (* Truncated chunk hashes can collide; restore the guarantee the
         other methods provide by falling back to a compressed send. *)
      if String.equal r.reconstructed new_file then
        (r.reconstructed, r.cost.client_to_server, r.cost.server_to_client)
      else
        let payload = Deflate.compress new_file in
        ( Deflate.decompress payload,
          r.cost.client_to_server,
          r.cost.server_to_client + String.length payload )

(* ---- metadata phase ----

   Before any file content moves, the two sides must agree on *which*
   paths changed.  [Linear] is the paper's fingerprint exchange: the
   client announces every (path, fingerprint) pair and the server answers
   with a verdict bitmap plus the list of new paths — O(total files)
   bytes however small the diff.  [Merkle] runs the hash-tree
   reconciliation of {!Fsync_reconcile.Recon}: cost proportional to the
   diff, at the price of O(log n) round trips. *)

type meta_outcome = {
  unchanged_paths : (string, unit) Hashtbl.t;
  new_count : int;
  deleted_count : int;
  m_c2s : int;
  m_s2c : int;
  m_rounds : int;
}

let linear_metadata ch ~client_files ~server_files ~client_map ~server_map =
  (* Client leg: (varint path length, path, 16-byte fingerprint) per
     file.  The varint width matters: a 1-byte prefix silently
     undercounts paths of 128 bytes or more. *)
  let announce =
    let b = Buffer.create (64 * List.length client_files) in
    List.iter
      (fun (path, content) ->
        Varint.write b (String.length path);
        Buffer.add_string b path;
        Buffer.add_string b (Fp.to_raw (Fp.of_string content)))
      client_files;
    Buffer.contents b
  in
  Channel.send ch ~label:"linear:announce" Channel.Client_to_server announce;
  (* Server leg: parse the announcement, answer one verdict bit per
     announced path (1 = unchanged) plus the new-path list, again with
     varint-prefixed paths. *)
  let msg = Channel.recv ch Channel.Client_to_server in
  let announced = ref [] in
  let pos = ref 0 in
  while !pos < String.length msg do
    let len, p = Varint.read msg ~pos:!pos in
    let path = String.sub msg p len in
    let fp = Fp.of_raw (String.sub msg (p + len) Fp.size_bytes) in
    pos := p + len + Fp.size_bytes;
    announced := (path, fp) :: !announced
  done;
  let announced = List.rev !announced in
  let n = List.length announced in
  let bitmap = Bytes.make ((n + 7) / 8) '\000' in
  List.iteri
    (fun i (path, fp) ->
      let same =
        match Hashtbl.find_opt server_map path with
        | Some content -> Fp.equal fp (Fp.of_string content)
        | None -> false
      in
      if same then
        Bytes.set bitmap (i / 8)
          (Char.chr (Char.code (Bytes.get bitmap (i / 8)) lor (1 lsl (i mod 8)))))
    announced;
  let verdict =
    let b = Buffer.create 64 in
    Buffer.add_bytes b bitmap;
    let new_paths =
      List.filter (fun (p, _) -> not (Hashtbl.mem client_map p)) server_files
    in
    (* The new-path section is omitted entirely when empty (the bitmap
       length is implied by the announcement, so parsing stays unambiguous). *)
    if new_paths <> [] then begin
      Varint.write b (List.length new_paths);
      List.iter
        (fun (p, _) ->
          Varint.write b (String.length p);
          Buffer.add_string b p)
        new_paths
    end;
    Buffer.contents b
  in
  Channel.send ch ~label:"linear:verdict" Channel.Server_to_client verdict;
  (* Client leg: read the verdict back. *)
  let msg = Channel.recv ch Channel.Server_to_client in
  let unchanged_paths = Hashtbl.create 64 in
  List.iteri
    (fun i (path, _) ->
      if Char.code msg.[i / 8] land (1 lsl (i mod 8)) <> 0 then
        Hashtbl.replace unchanged_paths path ())
    announced;
  let n_new =
    if Bytes.length bitmap >= String.length msg then 0
    else fst (Varint.read msg ~pos:(Bytes.length bitmap))
  in
  let deleted_count =
    List.length
      (List.filter (fun (p, _) -> not (Hashtbl.mem server_map p)) client_files)
  in
  {
    unchanged_paths;
    new_count = n_new;
    deleted_count;
    m_c2s = String.length announce;
    m_s2c = String.length verdict;
    m_rounds = 1;
  }

let merkle_metadata ch ~client_files ~server_files ~client_map =
  let ctree = Merkle.of_files client_files in
  let stree = Merkle.of_files server_files in
  let r = Recon.run ~channel:ch ~client:ctree ~server:stree () in
  let changed = Hashtbl.create 64 in
  List.iter (fun p -> Hashtbl.replace changed p ()) r.Recon.changed;
  let unchanged_paths = Hashtbl.create 64 in
  List.iter
    (fun (p, _) ->
      if Hashtbl.mem client_map p && not (Hashtbl.mem changed p) then
        Hashtbl.replace unchanged_paths p ())
    server_files;
  {
    unchanged_paths;
    new_count = List.length r.Recon.added;
    deleted_count = List.length r.Recon.deleted;
    m_c2s = r.Recon.c2s_bytes;
    m_s2c = r.Recon.s2c_bytes;
    m_rounds = r.Recon.rounds;
  }

let sync ?(metadata = Linear) ?meta_channel method_ ~client ~server =
  let client_files = Snapshot.files client in
  let server_files = Snapshot.files server in
  let ch = match meta_channel with Some c -> c | None -> Channel.create () in
  let server_map = Hashtbl.create 64 in
  List.iter (fun (p, c) -> Hashtbl.replace server_map p c) server_files;
  let client_map = Hashtbl.create 64 in
  List.iter (fun (p, c) -> Hashtbl.replace client_map p c) client_files;
  let meta =
    match metadata with
    | Linear -> linear_metadata ch ~client_files ~server_files ~client_map ~server_map
    | Merkle -> merkle_metadata ch ~client_files ~server_files ~client_map
  in
  let outcomes = ref [] in
  let unchanged = ref 0 in
  let updated =
    List.map
      (fun (path, new_content) ->
        match Hashtbl.find_opt client_map path with
        | Some old_content when Hashtbl.mem meta.unchanged_paths path ->
            incr unchanged;
            outcomes :=
              {
                path;
                old_bytes = String.length old_content;
                new_bytes = String.length new_content;
                c2s = 0;
                s2c = 0;
                skipped = true;
              }
              :: !outcomes;
            (path, old_content)
        | Some old_content ->
            let reconstructed, c2s, s2c =
              transfer method_ ~old_file:old_content ~new_file:new_content
            in
            outcomes :=
              {
                path;
                old_bytes = String.length old_content;
                new_bytes = String.length new_content;
                c2s;
                s2c;
                skipped = false;
              }
              :: !outcomes;
            (path, reconstructed)
        | None ->
            (* New file: sent compressed regardless of method. *)
            let payload = Deflate.compress new_content in
            outcomes :=
              {
                path;
                old_bytes = 0;
                new_bytes = String.length new_content;
                c2s = 0;
                s2c = String.length payload;
                skipped = false;
              }
              :: !outcomes;
            (path, Deflate.decompress payload))
      server_files
  in
  let outcomes = List.rev !outcomes in
  let sum f = List.fold_left (fun acc o -> acc + f o) 0 outcomes in
  let result = Snapshot.of_files updated in
  ( result,
    {
      method_used = method_name method_;
      metadata_used = metadata_name metadata;
      files_total = List.length server_files;
      files_unchanged = !unchanged;
      files_new = meta.new_count;
      files_deleted = meta.deleted_count;
      bytes_old = Snapshot.total_bytes client;
      bytes_new = Snapshot.total_bytes server;
      meta_c2s = meta.m_c2s;
      meta_s2c = meta.m_s2c;
      meta_rounds = meta.m_rounds;
      total_c2s = meta.m_c2s + sum (fun o -> o.c2s);
      total_s2c = meta.m_s2c + sum (fun o -> o.s2c);
      outcomes;
    } )

let pp_summary ppf s =
  Format.fprintf ppf
    "@[<v>%s: %d files (%d unchanged, %d new, %d deleted)@ old=%d new=%d \
     bytes; c2s=%d s2c=%d total=%d@ metadata (%s): c2s=%d s2c=%d rounds=%d@]"
    s.method_used s.files_total s.files_unchanged s.files_new s.files_deleted
    s.bytes_old s.bytes_new s.total_c2s s.total_s2c (total s) s.metadata_used
    s.meta_c2s s.meta_s2c s.meta_rounds
