module Deflate = Fsync_compress.Deflate
module Delta = Fsync_delta.Delta
module Rsync = Fsync_rsync.Rsync
module Fp = Fsync_hash.Fingerprint

type method_ =
  | Full_raw
  | Full_compressed
  | Rsync_default
  | Rsync_best
  | Fsync of Fsync_core.Config.t
  | Delta_lower_bound of Fsync_delta.Delta.profile
  | Cdc

let method_name = function
  | Full_raw -> "full (raw)"
  | Full_compressed -> "full (compressed)"
  | Rsync_default -> "rsync"
  | Rsync_best -> "rsync (best block)"
  | Fsync _ -> "fsync (this paper)"
  | Delta_lower_bound Delta.Zdelta -> "zdelta (lower bound)"
  | Delta_lower_bound Delta.Vcdiff -> "vcdiff (lower bound)"
  | Cdc -> "cdc (LBFS-style)"

type file_outcome = {
  path : string;
  old_bytes : int;
  new_bytes : int;
  c2s : int;
  s2c : int;
  skipped : bool;
}

type summary = {
  method_used : string;
  files_total : int;
  files_unchanged : int;
  files_new : int;
  files_deleted : int;
  bytes_old : int;
  bytes_new : int;
  total_c2s : int;
  total_s2c : int;
  outcomes : file_outcome list;
}

let total s = s.total_c2s + s.total_s2c

(* One file through the chosen method; returns (reconstructed, c2s, s2c).
   The per-file header/fingerprint exchange is accounted at collection
   level, so the protocol's own header bytes are deducted. *)
let transfer method_ ~old_file ~new_file =
  match method_ with
  | Full_raw -> (new_file, 0, String.length new_file)
  | Full_compressed ->
      let payload = Deflate.compress new_file in
      (Deflate.decompress payload, 0, String.length payload)
  | Rsync_default ->
      let r = Rsync.sync ~old_file new_file in
      (r.reconstructed, r.cost.client_to_server, r.cost.server_to_client)
  | Rsync_best ->
      let bs, cost = Rsync.best_block_size ~old_file new_file in
      let r =
        Rsync.sync ~config:{ Rsync.default_config with block_size = bs } ~old_file
          new_file
      in
      (r.reconstructed, cost.client_to_server, cost.server_to_client)
  | Fsync config ->
      let r = Fsync_core.Protocol.run ~config ~old_file new_file in
      let rep = r.report in
      ( r.reconstructed,
        rep.total_c2s - rep.header_c2s,
        rep.total_s2c - rep.header_s2c )
  | Delta_lower_bound profile ->
      let d = Delta.encode ~profile ~reference:old_file new_file in
      (Delta.decode ~reference:old_file d, 0, String.length d)
  | Cdc ->
      let r = Fsync_cdc.Lbfs_sync.sync ~old_file new_file in
      (* Truncated chunk hashes can collide; restore the guarantee the
         other methods provide by falling back to a compressed send. *)
      if String.equal r.reconstructed new_file then
        (r.reconstructed, r.cost.client_to_server, r.cost.server_to_client)
      else
        let payload = Deflate.compress new_file in
        ( Deflate.decompress payload,
          r.cost.client_to_server,
          r.cost.server_to_client + String.length payload )

let sync method_ ~client ~server =
  let client_files = Snapshot.files client in
  let server_files = Snapshot.files server in
  (* Fingerprint exchange: client announces (path, fingerprint) for each of
     its files; the server answers with a per-file verdict bit and the list
     of new paths. *)
  let fp_c2s =
    List.fold_left
      (fun acc (path, content) ->
        ignore content;
        acc + String.length path + 1 + Fp.size_bytes)
      0 client_files
  in
  let server_map = Hashtbl.create 64 in
  List.iter (fun (p, c) -> Hashtbl.replace server_map p c) server_files;
  let client_map = Hashtbl.create 64 in
  List.iter (fun (p, c) -> Hashtbl.replace client_map p c) client_files;
  let new_paths =
    List.filter (fun (p, _) -> not (Hashtbl.mem client_map p)) server_files
  in
  let deleted =
    List.filter (fun (p, _) -> not (Hashtbl.mem server_map p)) client_files
  in
  let verdict_s2c =
    ((List.length client_files + 7) / 8)
    + List.fold_left (fun acc (p, _) -> acc + String.length p + 1) 0 new_paths
  in
  let outcomes = ref [] in
  let unchanged = ref 0 in
  let updated =
    List.map
      (fun (path, new_content) ->
        match Hashtbl.find_opt client_map path with
        | Some old_content when String.equal old_content new_content ->
            incr unchanged;
            outcomes :=
              {
                path;
                old_bytes = String.length old_content;
                new_bytes = String.length new_content;
                c2s = 0;
                s2c = 0;
                skipped = true;
              }
              :: !outcomes;
            (path, old_content)
        | Some old_content ->
            let reconstructed, c2s, s2c =
              transfer method_ ~old_file:old_content ~new_file:new_content
            in
            outcomes :=
              {
                path;
                old_bytes = String.length old_content;
                new_bytes = String.length new_content;
                c2s;
                s2c;
                skipped = false;
              }
              :: !outcomes;
            (path, reconstructed)
        | None ->
            (* New file: sent compressed regardless of method. *)
            let payload = Deflate.compress new_content in
            outcomes :=
              {
                path;
                old_bytes = 0;
                new_bytes = String.length new_content;
                c2s = 0;
                s2c = String.length payload;
                skipped = false;
              }
              :: !outcomes;
            (path, Deflate.decompress payload))
      server_files
  in
  let outcomes = List.rev !outcomes in
  let sum f = List.fold_left (fun acc o -> acc + f o) 0 outcomes in
  let result = Snapshot.of_files updated in
  ( result,
    {
      method_used = method_name method_;
      files_total = List.length server_files;
      files_unchanged = !unchanged;
      files_new = List.length new_paths;
      files_deleted = List.length deleted;
      bytes_old = Snapshot.total_bytes client;
      bytes_new = Snapshot.total_bytes server;
      total_c2s = fp_c2s + sum (fun o -> o.c2s);
      total_s2c = verdict_s2c + sum (fun o -> o.s2c);
      outcomes;
    } )

let pp_summary ppf s =
  Format.fprintf ppf
    "@[<v>%s: %d files (%d unchanged, %d new, %d deleted)@ old=%d new=%d \
     bytes; c2s=%d s2c=%d total=%d@]"
    s.method_used s.files_total s.files_unchanged s.files_new s.files_deleted
    s.bytes_old s.bytes_new s.total_c2s s.total_s2c (total s)
