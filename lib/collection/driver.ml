module Deflate = Fsync_compress.Deflate
module Delta = Fsync_delta.Delta
module Rsync = Fsync_rsync.Rsync
module Fp = Fsync_hash.Fingerprint
module Channel = Fsync_net.Channel
module Fault = Fsync_net.Fault
module Frame = Fsync_net.Frame
module Merkle = Fsync_reconcile.Merkle
module Recon = Fsync_reconcile.Recon
module Protocol = Fsync_core.Protocol
module Error = Fsync_core.Error
module Scope = Fsync_obs.Scope

type metadata_mode = Linear | Merkle

let metadata_name = function Linear -> "linear" | Merkle -> "merkle"

type method_ =
  | Full_raw
  | Full_compressed
  | Rsync_default
  | Rsync_best
  | Fsync of Fsync_core.Config.t
  | Delta_lower_bound of Fsync_delta.Delta.profile
  | Cdc

let method_name = function
  | Full_raw -> "full (raw)"
  | Full_compressed -> "full (compressed)"
  | Rsync_default -> "rsync"
  | Rsync_best -> "rsync (best block)"
  | Fsync _ -> "fsync (this paper)"
  | Delta_lower_bound Delta.Zdelta -> "zdelta (lower bound)"
  | Delta_lower_bound Delta.Vcdiff -> "vcdiff (lower bound)"
  | Cdc -> "cdc (LBFS-style)"

type file_outcome = {
  path : string;
  old_bytes : int;
  new_bytes : int;
  c2s : int;
  s2c : int;
  skipped : bool;
  fell_back : bool;
}

type summary = {
  method_used : string;
  metadata_used : string;
  files_total : int;
  files_unchanged : int;
  files_new : int;
  files_deleted : int;
  bytes_old : int;
  bytes_new : int;
  meta_c2s : int;
  meta_s2c : int;
  meta_rounds : int;
  total_c2s : int;
  total_s2c : int;
  fallbacks : int;
  retransmits : int;
  resumed : int;
  outcomes : file_outcome list;
}

let total s = s.total_c2s + s.total_s2c
let meta_total s = s.meta_c2s + s.meta_s2c

(* One file through the chosen method; returns (reconstructed, c2s, s2c).
   The per-file header/fingerprint exchange is accounted at collection
   level, so the protocol's own header bytes are deducted. *)
let transfer ?(scope = Scope.disabled) method_ ~old_file ~new_file =
  match method_ with
  | Full_raw -> (new_file, 0, String.length new_file)
  | Full_compressed ->
      let payload = Deflate.compress new_file in
      (Deflate.decompress payload, 0, String.length payload)
  | Rsync_default ->
      let r = Rsync.sync ~old_file new_file in
      (r.reconstructed, r.cost.client_to_server, r.cost.server_to_client)
  | Rsync_best ->
      let bs, cost = Rsync.best_block_size ~old_file new_file in
      let r =
        Rsync.sync ~config:{ Rsync.default_config with block_size = bs } ~old_file
          new_file
      in
      (r.reconstructed, cost.client_to_server, cost.server_to_client)
  | Fsync config ->
      let r = Fsync_core.Protocol.run ~scope ~config ~old_file new_file in
      let rep = r.report in
      ( r.reconstructed,
        rep.total_c2s - rep.header_c2s,
        rep.total_s2c - rep.header_s2c )
  | Delta_lower_bound profile ->
      let d = Delta.encode ~profile ~reference:old_file new_file in
      (Delta.decode ~reference:old_file d, 0, String.length d)
  | Cdc ->
      let r = Fsync_cdc.Lbfs_sync.sync ~old_file new_file in
      (* Truncated chunk hashes can collide; restore the guarantee the
         other methods provide by falling back to a compressed send. *)
      if String.equal r.reconstructed new_file then
        (r.reconstructed, r.cost.client_to_server, r.cost.server_to_client)
      else
        let payload = Deflate.compress new_file in
        ( Deflate.decompress payload,
          r.cost.client_to_server,
          r.cost.server_to_client + String.length payload )

(* ---- metadata phase ----

   Before any file content moves, the two sides must agree on *which*
   paths changed.  [Linear] is the paper's fingerprint exchange: the
   client announces every (path, fingerprint) pair and the server answers
   with a verdict bitmap plus the list of new paths — O(total files)
   bytes however small the diff.  [Merkle] runs the hash-tree
   reconciliation of {!Fsync_reconcile.Recon}: cost proportional to the
   diff, at the price of O(log n) round trips. *)

(* Typed receive: over a faulty link a missing message is a condition to
   handle (retry, resume), not a caller bug. *)
let recv_or_fail ch dir what =
  match Channel.recv_opt ch dir with
  | Some msg -> msg
  | None -> Error.channel_empty "Driver: expected %s" what

type meta_outcome = {
  unchanged_paths : (string, unit) Hashtbl.t;
  new_count : int;
  deleted_count : int;
  m_c2s : int;
  m_s2c : int;
  m_rounds : int;
}

let linear_metadata ch ~client_files ~server_files ~client_map ~server_map =
  (* Client leg: one (path, fingerprint) entry per file — the encoding
     lives in {!Meta_wire} so the daemon serves identical bytes. *)
  let announce =
    Meta_wire.encode_announce
      (List.map (fun (path, content) -> (path, Fp.of_string content))
         client_files)
  in
  Channel.send ch ~label:"linear:announce" Channel.Client_to_server announce;
  (* Server leg: parse the announcement, answer one verdict bit per
     announced path (1 = unchanged) plus the new-path list. *)
  let msg = recv_or_fail ch Channel.Client_to_server "the linear announcement" in
  let announced = Meta_wire.decode_announce msg in
  let bits =
    List.map
      (fun (path, fp) ->
        match Hashtbl.find_opt server_map path with
        | Some content -> Fp.equal fp (Fp.of_string content)
        | None -> false)
      announced
  in
  let new_paths =
    List.filter_map
      (fun (p, _) -> if Hashtbl.mem client_map p then None else Some p)
      server_files
  in
  let verdict = Meta_wire.encode_verdict ~bits ~new_paths in
  Channel.send ch ~label:"linear:verdict" Channel.Server_to_client verdict;
  (* Client leg: read the verdict back. *)
  let msg = recv_or_fail ch Channel.Server_to_client "the linear verdict" in
  let verdict_bits, verdict_new =
    Meta_wire.decode_verdict ~n_announced:(List.length announced) msg
  in
  let unchanged_paths = Hashtbl.create 64 in
  List.iteri
    (fun i (path, _) ->
      if verdict_bits.(i) then Hashtbl.replace unchanged_paths path ())
    announced;
  let deleted_count =
    List.length
      (List.filter (fun (p, _) -> not (Hashtbl.mem server_map p)) client_files)
  in
  {
    unchanged_paths;
    new_count = List.length verdict_new;
    deleted_count;
    m_c2s = String.length announce;
    m_s2c = String.length verdict;
    m_rounds = 1;
  }

let merkle_metadata ?scope ch ~client_files ~server_files ~client_map =
  let ctree = Merkle.of_files ?scope client_files in
  let stree = Merkle.of_files server_files in
  let r = Recon.run ~channel:ch ?scope ~client:ctree ~server:stree () in
  let changed = Hashtbl.create 64 in
  List.iter (fun p -> Hashtbl.replace changed p ()) r.Recon.changed;
  let unchanged_paths = Hashtbl.create 64 in
  List.iter
    (fun (p, _) ->
      if Hashtbl.mem client_map p && not (Hashtbl.mem changed p) then
        Hashtbl.replace unchanged_paths p ())
    server_files;
  {
    unchanged_paths;
    new_count = List.length r.Recon.added;
    deleted_count = List.length r.Recon.deleted;
    m_c2s = r.Recon.c2s_bytes;
    m_s2c = r.Recon.s2c_bytes;
    m_rounds = r.Recon.rounds;
  }

let sync ?(metadata = Linear) ?meta_channel ?(scope = Scope.disabled) method_
    ~client ~server =
  let client_files = Snapshot.files client in
  let server_files = Snapshot.files server in
  let ch = match meta_channel with Some c -> c | None -> Channel.create () in
  if Scope.is_enabled scope then Channel.set_scope ch scope;
  let server_map = Hashtbl.create 64 in
  List.iter (fun (p, c) -> Hashtbl.replace server_map p c) server_files;
  let client_map = Hashtbl.create 64 in
  List.iter (fun (p, c) -> Hashtbl.replace client_map p c) client_files;
  let meta =
    Scope.timed scope "metadata" (fun () ->
        match metadata with
        | Linear ->
            linear_metadata ch ~client_files ~server_files ~client_map
              ~server_map
        | Merkle -> merkle_metadata ~scope ch ~client_files ~server_files ~client_map)
  in
  let outcomes = ref [] in
  let unchanged = ref 0 in
  let sp_transfer = Scope.enter scope "transfer" in
  let updated =
    List.map
      (fun (path, new_content) ->
        match Hashtbl.find_opt client_map path with
        | Some old_content when Hashtbl.mem meta.unchanged_paths path ->
            incr unchanged;
            outcomes :=
              {
                path;
                old_bytes = String.length old_content;
                new_bytes = String.length new_content;
                c2s = 0;
                s2c = 0;
                skipped = true;
                fell_back = false;
              }
              :: !outcomes;
            (path, old_content)
        | Some old_content ->
            let reconstructed, c2s, s2c =
              transfer ~scope method_ ~old_file:old_content ~new_file:new_content
            in
            Scope.observe scope "file_bytes_sent" (float_of_int (c2s + s2c));
            outcomes :=
              {
                path;
                old_bytes = String.length old_content;
                new_bytes = String.length new_content;
                c2s;
                s2c;
                skipped = false;
                fell_back = false;
              }
              :: !outcomes;
            (path, reconstructed)
        | None ->
            (* New file: sent compressed regardless of method. *)
            let payload = Deflate.compress new_content in
            Scope.observe scope "file_bytes_sent"
              (float_of_int (String.length payload));
            outcomes :=
              {
                path;
                old_bytes = 0;
                new_bytes = String.length new_content;
                c2s = 0;
                s2c = String.length payload;
                skipped = false;
                fell_back = false;
              }
              :: !outcomes;
            (path, Deflate.decompress payload))
      server_files
  in
  Scope.leave scope sp_transfer;
  let outcomes = List.rev !outcomes in
  let sum f = List.fold_left (fun acc o -> acc + f o) 0 outcomes in
  let result = Snapshot.of_files updated in
  ( result,
    {
      method_used = method_name method_;
      metadata_used = metadata_name metadata;
      files_total = List.length server_files;
      files_unchanged = !unchanged;
      files_new = meta.new_count;
      files_deleted = meta.deleted_count;
      bytes_old = Snapshot.total_bytes client;
      bytes_new = Snapshot.total_bytes server;
      meta_c2s = meta.m_c2s;
      meta_s2c = meta.m_s2c;
      meta_rounds = meta.m_rounds;
      total_c2s = meta.m_c2s + sum (fun o -> o.c2s);
      total_s2c = meta.m_s2c + sum (fun o -> o.s2c);
      fallbacks = 0;
      retransmits = 0;
      resumed = 0;
      outcomes;
    } )

(* ---- resilient session ----

   [sync] above assumes a perfect link: every message arrives intact, so
   decode failures are caller bugs and no verification is needed.
   [sync_resilient] makes the same two-phase synchronization survive a
   faulty link ({!Fsync_net.Fault}): optional CRC framing with
   NAK/retransmit underneath ({!Fsync_net.Frame}), end-to-end strong
   fingerprints per file, a per-file fallback ladder ending in a
   compressed full transfer, and checkpoint/resume across disconnects.

   The transfer phase runs over the channel so faults actually hit it.
   [Fsync _] runs the paper's real multi-round protocol on the shared
   link; every other method is normalized to one self-contained verified
   message per file — [varint |path| ‖ path ‖ fp ‖ tag ‖ body] with tag
   'R' (raw), 'Z' (deflate) or 'D' (delta vs. the client's old copy) —
   since those methods have no interactive wire form.  Method cost
   comparisons belong to [sync]; this layer's product is the guarantee
   that the run ends with [reconstructed = server] or a typed error,
   never silent corruption. *)

type resilience = {
  frame : bool;
  frame_config : Frame.config;
  faults : Fault.spec;
  seed : int;
  max_restarts : int;
  file_retries : int;
}

let default_resilience =
  {
    frame = true;
    frame_config = Frame.default_config;
    faults = Fault.none;
    seed = 1;
    max_restarts = 8;
    file_retries = 2;
  }

(* The collection digest and the verified per-file message live in
   {!Meta_wire}, shared with the daemon. *)
let collection_root = Meta_wire.collection_root
let encode_file_msg = Meta_wire.encode_file_msg
let decode_file_msg = Meta_wire.decode_file_msg

(* What the server ships for a changed file, per method.  The 'D' body
   uses the method's own delta profile when it has one and the zdelta
   profile otherwise — a representative delta-shaped payload. *)
let resilient_payload method_ ~old_content ~new_content =
  match method_ with
  | Full_raw -> ('R', new_content)
  | Full_compressed -> ('Z', Deflate.compress new_content)
  | Delta_lower_bound profile ->
      ('D', Delta.encode ~profile ~reference:old_content new_content)
  | Rsync_default | Rsync_best | Cdc ->
      ('D', Delta.encode ~profile:Delta.Zdelta ~reference:old_content new_content)
  | Fsync _ ->
      (* Handled interactively by the caller; reaching here is a driver
         bug surfaced as a typed error rather than a crash. *)
      Error.malformed "Driver: resilient_payload called on the fsync method"

let sync_resilient ?(metadata = Linear) ?(resilience = default_resilience)
    ?meta_channel ?(scope = Scope.disabled) method_ ~client ~server =
  if resilience.max_restarts < 0 || resilience.file_retries < 0 then
    Error.malformed "Driver.sync_resilient: negative retry budget";
  let client_files = Snapshot.files client in
  let server_files = Snapshot.files server in
  let ch = match meta_channel with Some c -> c | None -> Channel.create () in
  if Scope.is_enabled scope then Channel.set_scope ch scope;
  let base_c2s = Channel.bytes ch Channel.Client_to_server in
  let base_s2c = Channel.bytes ch Channel.Server_to_client in
  let fault =
    if resilience.faults = Fault.none then None
    else Some (Fault.attach ~seed:resilience.seed ch resilience.faults)
  in
  let frame =
    if resilience.frame then
      Some (Frame.attach ~config:resilience.frame_config ~scope ch)
    else None
  in
  let detach_layers () =
    (match frame with Some f -> Frame.detach f | None -> ());
    match fault with Some f -> Fault.detach f | None -> ()
  in
  let resync_link () =
    match frame with
    | Some f -> Frame.resync f
    | None ->
        let rec drain dir =
          match Channel.raw_recv_opt ch dir with
          | Some _ -> drain dir
          | None -> ()
        in
        drain Channel.Client_to_server;
        drain Channel.Server_to_client
  in
  let server_map = Hashtbl.create 64 in
  List.iter (fun (p, c) -> Hashtbl.replace server_map p c) server_files;
  let client_map = Hashtbl.create 64 in
  List.iter (fun (p, c) -> Hashtbl.replace client_map p c) client_files;
  (* Session checkpoint: the metadata verdict and every file already
     reconstructed and verified.  A resume after a disconnect skips both. *)
  let meta_ckpt = ref None in
  let done_files : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let outcomes_tbl : (string, file_outcome) Hashtbl.t = Hashtbl.create 64 in
  let fallbacks = ref 0 in
  let resumed = ref 0 in
  let mark () =
    ( Channel.bytes ch Channel.Client_to_server,
      Channel.bytes ch Channel.Server_to_client )
  in
  let run_metadata () =
    match !meta_ckpt with
    | Some m -> m
    | None ->
        (* Guarded: over a faulty link a corrupted announcement must
           surface as a typed error the session loop can retry, not as a
           bare [Invalid_argument] from a length or varint check. *)
        let m =
          match
            Error.guard (fun () ->
                Scope.timed scope "metadata" (fun () ->
                    match metadata with
                    | Linear ->
                        linear_metadata ch ~client_files ~server_files
                          ~client_map ~server_map
                    | Merkle ->
                        merkle_metadata ~scope ch ~client_files ~server_files
                          ~client_map))
          with
          | Ok m -> m
          | Stdlib.Error e -> Error.fail e
        in
        meta_ckpt := Some m;
        m
  in
  (* One file: attempt the method, retry on typed decode/link errors,
     then fall back to a compressed full transfer, then give up with a
     typed error.  [Fault.Disconnected] propagates to the session loop
     (the checkpoint keeps everything finished so far). *)
  let transfer_file meta path new_content =
    if not (Hashtbl.mem done_files path) then
      match Hashtbl.find_opt client_map path with
      | Some old_content when Hashtbl.mem meta.unchanged_paths path ->
          Hashtbl.replace done_files path old_content;
          Hashtbl.replace outcomes_tbl path
            {
              path;
              old_bytes = String.length old_content;
              new_bytes = String.length new_content;
              c2s = 0;
              s2c = 0;
              skipped = true;
              fell_back = false;
            }
      | old_opt ->
          let old_content = Option.value old_opt ~default:"" in
          let c0, s0 = mark () in
          let attempt_once ~fb =
            Error.guard (fun () ->
                match (method_, old_opt) with
                | Fsync config, Some _ when not fb ->
                    let r =
                      Protocol.run ~channel:ch ~scope ~config
                        ~old_file:old_content new_content
                    in
                    if not (String.equal r.Protocol.reconstructed new_content)
                    then
                      Error.fail
                        (Error.Verification_failed
                           (Printf.sprintf
                              "Driver: %S failed its end-to-end check" path));
                    r.Protocol.reconstructed
                | _ ->
                    let tag, body =
                      if fb || old_opt = None then
                        ('Z', Deflate.compress new_content)
                      else resilient_payload method_ ~old_content ~new_content
                    in
                    let fp = Fp.of_string new_content in
                    Channel.send ch ~label:"file:data" Channel.Server_to_client
                      (encode_file_msg ~path ~fp ~tag ~body);
                    let msg =
                      recv_or_fail ch Channel.Server_to_client
                        (Printf.sprintf "file data for %S" path)
                    in
                    let rpath, content = decode_file_msg ~old_content msg in
                    if not (String.equal rpath path) then
                      Error.malformed "Driver: got %S, expected %S" rpath path;
                    content)
          in
          let rec attempt tries ~fb =
            match attempt_once ~fb with
            | Ok content -> (content, fb)
            | Error _ when tries < resilience.file_retries ->
                resync_link ();
                attempt (tries + 1) ~fb
            | Error _ when not fb ->
                resync_link ();
                attempt 0 ~fb:true
            | Error e -> Error.fail e
          in
          let content, fb = attempt 0 ~fb:false in
          if fb then begin
            incr fallbacks;
            Scope.incr scope "ladder_fallbacks"
          end;
          let c1, s1 = mark () in
          Scope.observe scope "file_bytes_sent"
            (float_of_int (c1 - c0 + s1 - s0));
          Hashtbl.replace done_files path content;
          Hashtbl.replace outcomes_tbl path
            {
              path;
              old_bytes = String.length old_content;
              new_bytes = String.length new_content;
              c2s = c1 - c0;
              s2c = s1 - s0;
              skipped = false;
              fell_back = fb;
            }
  in
  (* Final whole-session check: the client hashes its reconstructed
     collection; the server answers with a one-byte verdict.  A negative
     verdict (a CRC-collision corruption that also beat a per-file
     check — or hit the metadata phase) discards the checkpoint and
     redoes the session. *)
  let verify_session () =
    let rec go tries =
      match
        Error.guard (fun () ->
            let mine =
              collection_root
                (List.map (fun (p, _) -> (p, Hashtbl.find done_files p))
                   server_files)
            in
            Channel.send ch ~label:"verify:collection"
              Channel.Client_to_server (Fp.to_raw mine);
            let claim =
              recv_or_fail ch Channel.Client_to_server "the collection claim"
            in
            let verdict =
              if String.equal claim (Fp.to_raw (collection_root server_files))
              then "\001"
              else "\000"
            in
            Channel.send ch ~label:"verify:collection"
              Channel.Server_to_client verdict;
            String.equal
              (recv_or_fail ch Channel.Server_to_client "the verdict")
              "\001")
      with
      | Ok ok -> Ok ok
      | Error _ when tries < resilience.file_retries ->
          resync_link ();
          go (tries + 1)
      | Error e -> Error e
    in
    go 0
  in
  let rec session restarts =
    let step =
      try
        let meta = run_metadata () in
        List.iter (fun (p, c) -> transfer_file meta p c) server_files;
        match verify_session () with
        | Ok true -> `Done
        | Ok false -> `Redo
        | Error e -> `Err e
      with
      | Fault.Disconnected _ -> `Disconnected
      | Error.E e -> `Err e
    in
    let retry_or err =
      if restarts >= resilience.max_restarts then Stdlib.Error err
      else begin
        resync_link ();
        session (restarts + 1)
      end
    in
    match step with
    | `Done -> Ok ()
    | `Disconnected ->
        (match fault with Some f -> Fault.reconnect f | None -> ());
        incr resumed;
        Scope.incr scope "session_resumes";
        retry_or
          (Error.Disconnected
             (Printf.sprintf "Driver: restart budget (%d) exhausted"
                resilience.max_restarts))
    | `Redo ->
        (* Silent corruption somewhere: nothing checkpointed can be
           trusted, so start over. *)
        Hashtbl.reset done_files;
        meta_ckpt := None;
        retry_or
          (Error.Verification_failed
             "Driver: collection verification kept failing")
    | `Err e -> retry_or e
  in
  let outcome = Scope.timed scope "session" (fun () -> session 0) in
  let retransmits =
    match frame with Some f -> (Frame.stats f).Frame.retransmits | None -> 0
  in
  detach_layers ();
  match outcome with
  | Stdlib.Error e -> Stdlib.Error e
  | Ok () ->
      let meta =
        match !meta_ckpt with
        | Some m -> m
        | None ->
            (* A successful session always ran the metadata phase. *)
            Error.malformed "Driver: session finished without metadata"
      in
      let outcomes =
        List.map (fun (p, _) -> Hashtbl.find outcomes_tbl p) server_files
      in
      let updated =
        List.map (fun (p, _) -> (p, Hashtbl.find done_files p)) server_files
      in
      let unchanged =
        List.length (List.filter (fun o -> o.skipped) outcomes)
      in
      Ok
        ( Snapshot.of_files updated,
          {
            method_used = method_name method_;
            metadata_used = metadata_name metadata;
            files_total = List.length server_files;
            files_unchanged = unchanged;
            files_new = meta.new_count;
            files_deleted = meta.deleted_count;
            bytes_old = Snapshot.total_bytes client;
            bytes_new = Snapshot.total_bytes server;
            meta_c2s = meta.m_c2s;
            meta_s2c = meta.m_s2c;
            meta_rounds = meta.m_rounds;
            total_c2s = Channel.bytes ch Channel.Client_to_server - base_c2s;
            total_s2c = Channel.bytes ch Channel.Server_to_client - base_s2c;
            fallbacks = !fallbacks;
            retransmits;
            resumed = !resumed;
            outcomes;
          } )

let pp_summary ppf s =
  Format.fprintf ppf
    "@[<v>%s: %d files (%d unchanged, %d new, %d deleted)@ old=%d new=%d \
     bytes; c2s=%d s2c=%d total=%d@ metadata (%s): c2s=%d s2c=%d rounds=%d%t@]"
    s.method_used s.files_total s.files_unchanged s.files_new s.files_deleted
    s.bytes_old s.bytes_new s.total_c2s s.total_s2c (total s) s.metadata_used
    s.meta_c2s s.meta_s2c s.meta_rounds
    (fun ppf ->
      if s.fallbacks > 0 || s.retransmits > 0 || s.resumed > 0 then
        Format.fprintf ppf
          "@ resilience: %d fallbacks, %d retransmits, %d resumes" s.fallbacks
          s.retransmits s.resumed)

let pp_summary_with_metrics ~registry ppf s =
  Format.fprintf ppf "%a@ metrics:@ %a" pp_summary s Fsync_obs.Registry.pp_table
    registry
