(** Collection-level synchronization: bring the client's snapshot up to
    the server's, file by file, with any of the methods the paper
    compares (Table 6.2).

    Per-file fingerprints are exchanged first (16 bytes + path accounting
    per file), unchanged files are skipped, deleted files cost one path
    mention, new files are sent compressed; changed files go through the
    selected transfer method. *)

type method_ =
  | Full_raw        (** send changed files uncompressed *)
  | Full_compressed (** send changed files through the gzip substitute *)
  | Rsync_default
  | Rsync_best      (** idealized per-file best block size *)
  | Fsync of Fsync_core.Config.t  (** this paper's protocol *)
  | Delta_lower_bound of Fsync_delta.Delta.profile
      (** delta compressor with both files local: the practical lower
          bound of §6.1 (zdelta / vcdiff) *)
  | Cdc
      (** LBFS-style content-defined chunk exchange — the related-work
          comparator of §4 *)

val method_name : method_ -> string

type file_outcome = {
  path : string;
  old_bytes : int;
  new_bytes : int;
  c2s : int;
  s2c : int;
  skipped : bool;  (** unchanged, detected via fingerprints *)
}

type summary = {
  method_used : string;
  files_total : int;
  files_unchanged : int;
  files_new : int;
  files_deleted : int;
  bytes_old : int;
  bytes_new : int;
  total_c2s : int;
  total_s2c : int;
  outcomes : file_outcome list;
}

val total : summary -> int

val sync : method_ -> client:Snapshot.t -> server:Snapshot.t -> Snapshot.t * summary
(** Returns the client's updated snapshot (always equal to the server's)
    and the cost summary. *)

val pp_summary : Format.formatter -> summary -> unit
