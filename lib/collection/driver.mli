(** Collection-level synchronization: bring the client's snapshot up to
    the server's, file by file, with any of the methods the paper
    compares (Table 6.2).

    The driver is a two-phase system.  A *metadata phase* first decides
    which paths changed: either the paper's linear fingerprint exchange
    (every path + 16-byte fingerprint crosses the wire) or the Merkle
    anti-entropy reconciliation of {!Fsync_reconcile.Recon}, whose cost
    scales with the diff instead of the collection.  A *transfer phase*
    then moves the changed files with the selected per-file method:
    unchanged files are skipped, deleted files cost nothing beyond the
    metadata dialogue, new files are sent compressed; changed files go
    through the selected transfer method. *)

type metadata_mode =
  | Linear  (** announce every (path, fingerprint); O(total files) bytes,
                one round trip *)
  | Merkle  (** hash-tree recursive descent; O(diff * log n) bytes,
                O(log n) round trips *)

val metadata_name : metadata_mode -> string

type method_ =
  | Full_raw        (** send changed files uncompressed *)
  | Full_compressed (** send changed files through the gzip substitute *)
  | Rsync_default
  | Rsync_best      (** idealized per-file best block size *)
  | Fsync of Fsync_core.Config.t  (** this paper's protocol *)
  | Delta_lower_bound of Fsync_delta.Delta.profile
      (** delta compressor with both files local: the practical lower
          bound of §6.1 (zdelta / vcdiff) *)
  | Cdc
      (** LBFS-style content-defined chunk exchange — the related-work
          comparator of §4 *)

val method_name : method_ -> string

type file_outcome = {
  path : string;
  old_bytes : int;
  new_bytes : int;
  c2s : int;
  s2c : int;
  skipped : bool;  (** unchanged, detected during the metadata phase *)
  fell_back : bool;
      (** resilient mode only: the method kept failing over the faulty
          link and the file was re-sent as a compressed full transfer *)
}

type summary = {
  method_used : string;
  metadata_used : string;
  files_total : int;
  files_unchanged : int;
  files_new : int;
  files_deleted : int;
  bytes_old : int;
  bytes_new : int;
  meta_c2s : int;    (** metadata-phase bytes, client to server *)
  meta_s2c : int;    (** metadata-phase bytes, server to client *)
  meta_rounds : int; (** metadata-phase round trips *)
  total_c2s : int;
  total_s2c : int;
  fallbacks : int;   (** files that fell back to a compressed full send *)
  retransmits : int; (** session-layer frame retransmissions *)
  resumed : int;     (** session restarts after a disconnect *)
  outcomes : file_outcome list;
}

val total : summary -> int
val meta_total : summary -> int

val sync :
  ?metadata:metadata_mode ->
  ?meta_channel:Fsync_net.Channel.t ->
  ?scope:Fsync_obs.Scope.t ->
  method_ ->
  client:Snapshot.t ->
  server:Snapshot.t ->
  Snapshot.t * summary
(** Returns the client's updated snapshot (always equal to the server's)
    and the cost summary.  [metadata] defaults to [Linear].  The
    metadata dialogue runs over [meta_channel] when given (its transcript
    then shows the [recon:level-k] descent or the [linear:announce] /
    [linear:verdict] exchange); a private channel is used otherwise.

    An enabled [scope] is attached to the channel (byte / message
    counters), threaded into the protocol and reconciliation layers, and
    records [metadata] / [transfer] spans plus a [file_bytes_sent]
    histogram. *)

(** {2 Resilient sessions}

    [sync] assumes a perfect link.  [sync_resilient] runs the same
    two-phase synchronization over a channel that may corrupt, drop,
    truncate, duplicate or disconnect ({!Fsync_net.Fault}), and layers
    the defenses of the robustness stack on top: CRC framing with
    NAK/retransmit ({!Fsync_net.Frame}), per-file end-to-end strong
    fingerprints, automatic fallback to a compressed full transfer, a
    whole-collection verification round, and checkpoint/resume across
    disconnects.  Every run ends with the client equal to the server or
    with a typed error — never silent corruption. *)

type resilience = {
  frame : bool;                 (** install the {!Fsync_net.Frame} layer *)
  frame_config : Fsync_net.Frame.config;
  faults : Fsync_net.Fault.spec; (** [Fault.none] leaves the link perfect *)
  seed : int;                    (** fault-schedule seed *)
  max_restarts : int;
      (** session-level budget: disconnect resumes, metadata redos and
          full redos after a failed collection verification *)
  file_retries : int;
      (** per-file decode/transfer attempts before the compressed
          fallback (and per fallback before giving up) *)
}

val default_resilience : resilience
(** Framing on (default config), no faults, seed 1, 8 restarts, 2 file
    retries. *)

val sync_resilient :
  ?metadata:metadata_mode ->
  ?resilience:resilience ->
  ?meta_channel:Fsync_net.Channel.t ->
  ?scope:Fsync_obs.Scope.t ->
  method_ ->
  client:Snapshot.t ->
  server:Snapshot.t ->
  (Snapshot.t * summary, Fsync_core.Error.t) result
(** Like {!sync}, but the {e whole} session (metadata and file
    transfers) runs over the channel, so injected faults genuinely hit
    the traffic.  [Fsync _] runs its real multi-round protocol on the
    link; other methods ship one self-contained verified message per
    changed file (raw / deflate / delta against the client's old copy) —
    their byte counts here measure the resilient session, not the
    method's own wire format (use {!sync} for Table 6.2-style
    comparisons).  [summary.total_c2s]/[total_s2c] are channel-measured
    and include framing overhead, retransmissions and traffic wasted by
    restarts.  On success the returned snapshot always equals [server];
    exhausted budgets surface as [Error].

    An enabled [scope] additionally counts [ladder_fallbacks] and
    [session_resumes], inherits the frame layer's reliability counters,
    and wraps the whole run in a [session] span.
    @raise Fsync_core.Error.E ([Malformed]) on a negative retry budget. *)

val pp_summary : Format.formatter -> summary -> unit

val pp_summary_with_metrics :
  registry:Fsync_obs.Registry.t -> Format.formatter -> summary -> unit
(** {!pp_summary} followed by the registry's human-readable metric table
    — what [fsync --metrics] prints. *)
