(** Collection-level synchronization: bring the client's snapshot up to
    the server's, file by file, with any of the methods the paper
    compares (Table 6.2).

    The driver is a two-phase system.  A *metadata phase* first decides
    which paths changed: either the paper's linear fingerprint exchange
    (every path + 16-byte fingerprint crosses the wire) or the Merkle
    anti-entropy reconciliation of {!Fsync_reconcile.Recon}, whose cost
    scales with the diff instead of the collection.  A *transfer phase*
    then moves the changed files with the selected per-file method:
    unchanged files are skipped, deleted files cost nothing beyond the
    metadata dialogue, new files are sent compressed; changed files go
    through the selected transfer method. *)

type metadata_mode =
  | Linear  (** announce every (path, fingerprint); O(total files) bytes,
                one round trip *)
  | Merkle  (** hash-tree recursive descent; O(diff * log n) bytes,
                O(log n) round trips *)

val metadata_name : metadata_mode -> string

type method_ =
  | Full_raw        (** send changed files uncompressed *)
  | Full_compressed (** send changed files through the gzip substitute *)
  | Rsync_default
  | Rsync_best      (** idealized per-file best block size *)
  | Fsync of Fsync_core.Config.t  (** this paper's protocol *)
  | Delta_lower_bound of Fsync_delta.Delta.profile
      (** delta compressor with both files local: the practical lower
          bound of §6.1 (zdelta / vcdiff) *)
  | Cdc
      (** LBFS-style content-defined chunk exchange — the related-work
          comparator of §4 *)

val method_name : method_ -> string

type file_outcome = {
  path : string;
  old_bytes : int;
  new_bytes : int;
  c2s : int;
  s2c : int;
  skipped : bool;  (** unchanged, detected during the metadata phase *)
}

type summary = {
  method_used : string;
  metadata_used : string;
  files_total : int;
  files_unchanged : int;
  files_new : int;
  files_deleted : int;
  bytes_old : int;
  bytes_new : int;
  meta_c2s : int;    (** metadata-phase bytes, client to server *)
  meta_s2c : int;    (** metadata-phase bytes, server to client *)
  meta_rounds : int; (** metadata-phase round trips *)
  total_c2s : int;
  total_s2c : int;
  outcomes : file_outcome list;
}

val total : summary -> int
val meta_total : summary -> int

val sync :
  ?metadata:metadata_mode ->
  ?meta_channel:Fsync_net.Channel.t ->
  method_ ->
  client:Snapshot.t ->
  server:Snapshot.t ->
  Snapshot.t * summary
(** Returns the client's updated snapshot (always equal to the server's)
    and the cost summary.  [metadata] defaults to [Linear].  The
    metadata dialogue runs over [meta_channel] when given (its transcript
    then shows the [recon:level-k] descent or the [linear:announce] /
    [linear:verdict] exchange); a private channel is used otherwise. *)

val pp_summary : Format.formatter -> summary -> unit
