(** Wire codec for the collection-metadata exchange and the verified
    per-file message.

    One encoding, two transports: {!Driver} runs these bytes over the
    in-memory channel, {!Fsync_server} serves the very same bytes over
    real sockets — the formats live here so the two cannot drift.

    All decoders are hardened: every declared length is validated before
    any read or allocation, and failures surface as typed
    {!Fsync_core.Error} values, never crashes. *)

(** {2 Linear announcement (client → server)} *)

val encode_announce : (string * Fsync_hash.Fingerprint.t) list -> string
(** Per file: varint path length, path, 16-byte fingerprint.  The varint
    width matters: a 1-byte prefix silently undercounts paths of 128
    bytes or more. *)

val decode_announce : string -> (string * Fsync_hash.Fingerprint.t) list

(** {2 Verdict (server → client)} *)

val encode_verdict : bits:bool list -> new_paths:string list -> string
(** One bit per announced path in announcement order (1 = unchanged),
    then — only when non-empty — a varint count of server-only paths
    followed by each as a varint-prefixed string. *)

val decode_verdict : n_announced:int -> string -> bool array * string list

(** {2 Collection digest} *)

val collection_root : (string * string) list -> Fsync_hash.Fingerprint.t
(** Order-independent digest of a [(path, content)] list: fingerprint of
    the path-sorted [(path, content-fingerprint)] sequence.  Both
    replicas compare roots for the final session check. *)

(** {2 Verified file message} *)

val encode_file_msg :
  path:string -> fp:Fsync_hash.Fingerprint.t -> tag:char -> body:string ->
  string
(** [varint |path| ‖ path ‖ fp ‖ tag ‖ body] with tag ['R'] (raw),
    ['Z'] (deflate) or ['D'] (delta against the receiver's old copy). *)

val decode_file_msg : old_content:string -> string -> string * string
(** Decode and end-to-end verify; returns [(path, content)].  Raises a
    typed [Verification_failed] when the reconstructed content does not
    match the carried fingerprint. *)
