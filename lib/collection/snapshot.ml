module M = Map.Make (String)
module Io = Fsync_store.Io

type t = string M.t

let of_files pairs =
  List.fold_left
    (fun m (path, content) ->
      if M.mem path m then
        invalid_arg (Printf.sprintf "Snapshot.of_files: duplicate path %s" path);
      M.add path content m)
    M.empty pairs

let files t = M.bindings t
let find t path = M.find_opt path t
let paths t = List.map fst (M.bindings t)
let count t = M.cardinal t
let total_bytes t = M.fold (fun _ c acc -> acc + String.length c) t 0

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_dir root =
  let acc = ref [] in
  let rec walk rel =
    let abs = if rel = "" then root else Filename.concat root rel in
    if Sys.is_directory abs then
      Array.iter
        (fun name ->
          (* The apply journal's staging area is bookkeeping, not
             replica content. *)
          if not (rel = "" && name = Apply.dirname) then
            walk (if rel = "" then name else Filename.concat rel name))
        (Sys.readdir abs)
    else acc := (rel, read_file abs) :: !acc
  in
  if not (Sys.file_exists root) then
    invalid_arg (Printf.sprintf "Snapshot.load_dir: %s does not exist" root);
  walk "";
  of_files !acc

(* Mutations go through the injectable {!Fsync_store.Io} record so the
   torture harness's crash-point sweep covers them (lint rule R9); the
   default is the real filesystem. *)

let prune_empty_dirs ?(io = Io.real) root =
  let removed = ref 0 in
  (* Bottom-up: prune children first so a directory whose only content
     was empty subdirectories is itself seen empty. *)
  let rec walk abs =
    if io.Io.exists abs && io.Io.is_dir abs then begin
      Array.iter
        (fun name -> walk (Filename.concat abs name))
        (io.Io.readdir abs);
      if Array.length (io.Io.readdir abs) = 0 then
        match io.Io.rmdir abs with
        | () -> incr removed
        | exception (Sys_error _ | Unix.Unix_error _) -> ()
    end
  in
  if io.Io.exists root && io.Io.is_dir root then
    Array.iter
      (fun name -> walk (Filename.concat root name))
      (io.Io.readdir root);
  !removed

let store_dir ?(io = Io.real) root t =
  Io.mkdir_p io root;
  M.iter
    (fun rel content ->
      let abs = Filename.concat root rel in
      Io.mkdir_p io (Filename.dirname abs);
      Io.write_file io abs content)
    t
