module Fp = Fsync_hash.Fingerprint
module Varint = Fsync_util.Varint
module Deflate = Fsync_compress.Deflate
module Delta = Fsync_delta.Delta
module Error = Fsync_core.Error

(* ---- linear announcement ---- *)

let encode_announce entries =
  let b = Buffer.create (64 * List.length entries) in
  List.iter
    (fun (path, fp) ->
      Varint.write b (String.length path);
      Buffer.add_string b path;
      Buffer.add_string b (Fp.to_raw fp))
    entries;
  Buffer.contents b

let decode_announce msg =
  let announced = ref [] in
  let pos = ref 0 in
  while !pos < String.length msg do
    let len, p = Varint.read msg ~pos:!pos in
    (* Validate the declared length against the remaining bytes before
       any [String.sub]: a corrupted prefix must produce a typed error,
       not an [Invalid_argument] or an over-read. *)
    if len < 0 || p + len + Fp.size_bytes > String.length msg then
      Error.truncated "Meta_wire: announcement entry needs %d bytes, %d left"
        (len + Fp.size_bytes)
        (String.length msg - p);
    let path = String.sub msg p len in
    let fp = Fp.of_raw (String.sub msg (p + len) Fp.size_bytes) in
    pos := p + len + Fp.size_bytes;
    announced := (path, fp) :: !announced
  done;
  List.rev !announced

(* ---- verdict ---- *)

let encode_verdict ~bits ~new_paths =
  let n = List.length bits in
  let bitmap = Bytes.make ((n + 7) / 8) '\000' in
  List.iteri
    (fun i same ->
      if same then
        Bytes.set bitmap (i / 8)
          (Char.chr (Char.code (Bytes.get bitmap (i / 8)) lor (1 lsl (i mod 8)))))
    bits;
  let b = Buffer.create 64 in
  Buffer.add_bytes b bitmap;
  (* The new-path section is omitted entirely when empty (the bitmap
     length is implied by the announcement, so parsing stays
     unambiguous). *)
  (match new_paths with
  | [] -> ()
  | _ :: _ ->
      Varint.write b (List.length new_paths);
      List.iter
        (fun p ->
          Varint.write b (String.length p);
          Buffer.add_string b p)
        new_paths);
  Buffer.contents b

let decode_verdict ~n_announced msg =
  let bitmap_len = (n_announced + 7) / 8 in
  if String.length msg < bitmap_len then
    Error.truncated "Meta_wire: verdict bitmap needs %d bytes, got %d"
      bitmap_len (String.length msg);
  let bits =
    Array.init n_announced (fun i ->
        Char.code msg.[i / 8] land (1 lsl (i mod 8)) <> 0)
  in
  let new_paths =
    if String.length msg <= bitmap_len then []
    else begin
      let count, p0 = Varint.read msg ~pos:bitmap_len in
      if count < 0 || count > String.length msg then
        Error.malformed "Meta_wire: verdict claims %d new paths" count;
      let pos = ref p0 in
      let acc = ref [] in
      for _ = 1 to count do
        let len, p = Varint.read msg ~pos:!pos in
        if len < 0 || p + len > String.length msg then
          Error.truncated "Meta_wire: new path needs %d bytes, %d left" len
            (String.length msg - p);
        acc := String.sub msg p len :: !acc;
        pos := p + len
      done;
      List.rev !acc
    end
  in
  (bits, new_paths)

(* ---- collection digest ---- *)

(* Order-independent collection digest: both replicas hash their sorted
   (path, content-fingerprint) list for the final session check. *)
let collection_root files =
  let b = Buffer.create 256 in
  List.iter
    (fun (p, c) ->
      Buffer.add_string b p;
      Buffer.add_char b '\000';
      Buffer.add_string b (Fp.to_raw (Fp.of_string c)))
    (List.sort
       (fun (pa, _) (pb, _) -> String.compare pa pb)
       files);
  Fp.of_string (Buffer.contents b)

(* ---- self-contained verified file message ---- *)

let encode_file_msg ~path ~fp ~tag ~body =
  let b = Buffer.create (String.length body + String.length path + 24) in
  Varint.write b (String.length path);
  Buffer.add_string b path;
  Buffer.add_string b (Fp.to_raw fp);
  Buffer.add_char b tag;
  Buffer.add_string b body;
  Buffer.contents b

(* Decode + end-to-end verify.  Every length is checked before any read
   or allocation; the fingerprint check catches whatever slipped past
   the CRC (or everything, when framing is off). *)
let decode_file_msg ~old_content msg =
  let len, p = Varint.read msg ~pos:0 in
  if len < 0 || p + len + Fp.size_bytes + 1 > String.length msg then
    Error.truncated "Meta_wire: file message header overruns %d bytes"
      (String.length msg);
  let path = String.sub msg p len in
  let fp = Fp.of_raw (String.sub msg (p + len) Fp.size_bytes) in
  let tag = msg.[p + len + Fp.size_bytes] in
  let body_pos = p + len + Fp.size_bytes + 1 in
  let body = String.sub msg body_pos (String.length msg - body_pos) in
  let content =
    match tag with
    | 'R' -> body
    | 'Z' -> (
        match Deflate.decompress body with
        | c -> c
        | exception Invalid_argument m -> Error.malformed "Meta_wire: %s" m)
    | 'D' -> (
        match Delta.decode ~reference:old_content body with
        | c -> c
        | exception Invalid_argument m -> Error.malformed "Meta_wire: %s" m)
    | c -> Error.malformed "Meta_wire: bad file tag %C" c
  in
  if not (Fp.equal (Fp.of_string content) fp) then
    Error.fail
      (Error.Verification_failed
         (Printf.sprintf
            "Meta_wire: %S failed its end-to-end fingerprint check" path));
  (path, content)
