module Protocol = Fsync_core.Protocol
module Channel = Fsync_net.Channel

type report = {
  files : int;
  total_c2s : int;
  total_s2c : int;
  sequential_roundtrips : int;
  batched_roundtrips : int;
  per_file : (string * Protocol.report) list;
}

let total_bytes r = r.total_c2s + r.total_s2c

let sync ?(config = Fsync_core.Config.tuned) pairs =
  let shared = Channel.create () in
  let results =
    List.map
      (fun (name, old_file, new_file) ->
        (* The shared channel counts cumulatively; a file's own round
           trips and bytes are the deltas it adds. *)
        let before = Channel.roundtrips shared in
        let c2s0 = Channel.bytes shared Channel.Client_to_server in
        let s2c0 = Channel.bytes shared Channel.Server_to_client in
        let r = Protocol.run ~channel:shared ~config ~old_file new_file in
        assert (String.equal r.reconstructed new_file);
        let own_trips = Channel.roundtrips shared - before in
        let report =
          {
            r.report with
            total_c2s = Channel.bytes shared Channel.Client_to_server - c2s0;
            total_s2c = Channel.bytes shared Channel.Server_to_client - s2c0;
            roundtrips = own_trips;
          }
        in
        (name, { r with report }, own_trips))
      pairs
  in
  let per_file =
    List.map (fun (name, (r : Protocol.result), _) -> (name, r.report)) results
  in
  let reconstructed =
    List.map (fun (name, (r : Protocol.result), _) -> (name, r.reconstructed)) results
  in
  let seq = List.fold_left (fun acc (_, _, t) -> acc + t) 0 results in
  let batched = List.fold_left (fun acc (_, _, t) -> max acc t) 0 results in
  ( reconstructed,
    {
      files = List.length pairs;
      total_c2s = Channel.bytes shared Channel.Client_to_server;
      total_s2c = Channel.bytes shared Channel.Server_to_client;
      sequential_roundtrips = seq;
      batched_roundtrips = batched;
      per_file;
    } )

let elapsed_s ?(latency_s = 0.05) ?(bandwidth_bps = 1_000_000.0) ~batched r =
  let trips =
    if batched then r.batched_roundtrips else r.sequential_roundtrips
  in
  (2.0 *. latency_s *. float_of_int trips)
  +. (float_of_int (total_bytes r) /. (bandwidth_bps /. 8.0))
