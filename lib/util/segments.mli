(** Interval algebra over byte ranges.

    The client's map of the current file (§5.1 of the paper) is a partition
    of [\[0, n)] into {e known} and {e unknown} areas.  [Segments] maintains
    a canonical sorted list of disjoint half-open intervals and the set
    operations the map-construction phase needs. *)

type span = { lo : int; hi : int }
(** Half-open interval [\[lo, hi)].  Always [lo < hi] in canonical lists. *)

type t
(** Canonical set of disjoint, sorted, non-adjacent spans. *)

val empty : t
val of_span : lo:int -> hi:int -> t
val of_list : (int * int) list -> t
(** Builds the canonical form from arbitrary (lo, hi) pairs; overlapping and
    adjacent spans are merged, empty spans dropped. *)

val to_list : t -> (int * int) list
val spans : t -> span list

val is_empty : t -> bool
val total_length : t -> int
val count : t -> int
(** Number of maximal spans. *)

val add : t -> lo:int -> hi:int -> t
(** Union with a single span. *)

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
(** [diff a b] removes [b] from [a]. *)

val complement : t -> lo:int -> hi:int -> t
(** Gaps of [t] within [\[lo, hi)]. *)

val mem : t -> int -> bool
(** Is the point covered? *)

val contains_span : t -> lo:int -> hi:int -> bool
(** Is the whole span covered by a single segment run? *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
