(** Deterministic pseudo-random number generation (splitmix64).

    All synthetic datasets are generated from explicit seeds so that every
    experiment is exactly reproducible; we do not use [Stdlib.Random] because
    its sequence is not stable across OCaml releases. *)

type t

val create : int64 -> t
(** Generator seeded with the given value. *)

val copy : t -> t

val split : t -> t
(** Independent child generator; the parent state advances. *)

val next64 : t -> int64
(** Next 64 raw bits. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)].  [n] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** True with the given probability. *)

val geometric : t -> float -> int
(** [geometric t p] >= 1: number of Bernoulli(p) trials up to and including
    the first success. *)

val exponential : t -> float -> float
(** Exponential with the given mean. *)

val pareto : t -> alpha:float -> x_min:float -> float
(** Heavy-tailed Pareto sample; used for web-page size distributions. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val bytes : t -> int -> Bytes.t
(** Uniform random bytes. *)
