(** Plain-text table rendering for benchmark and experiment reports.

    The bench harness prints one table per paper figure/table; this module
    keeps the formatting consistent (right-aligned numeric columns, a rule
    under the header, an optional caption). *)

type align = Left | Right

type t

val create : ?caption:string -> (string * align) list -> t
(** Table with the given header cells. *)

val add_row : t -> string list -> unit
(** Rows shorter than the header are padded with blank cells, longer
    ones truncated. *)

val add_rule : t -> unit
(** Horizontal separator row. *)

val render : t -> string
(** Callers print the rendering themselves: library code never touches
    the console (R3). *)

val cell_f : float -> string
(** Standard numeric cell: two decimals. *)

val cell_kb : int -> string
(** Bytes rendered as KB with one decimal, matching the paper's unit. *)
