let sub_safe s ~pos ~len =
  let n = String.length s in
  let pos = max 0 (min pos n) in
  let len = max 0 (min len (n - pos)) in
  String.sub s pos len

let common_prefix a i b j =
  let la = String.length a and lb = String.length b in
  let rec loop k =
    if i + k < la && j + k < lb && String.unsafe_get a (i + k) = String.unsafe_get b (j + k)
    then loop (k + 1)
    else k
  in
  if i < 0 || j < 0 then 0 else loop 0

let common_suffix a i b j =
  let rec loop k =
    if i - k - 1 >= 0 && j - k - 1 >= 0
       && String.unsafe_get a (i - k - 1) = String.unsafe_get b (j - k - 1)
    then loop (k + 1)
    else k
  in
  if i > String.length a || j > String.length b then 0 else loop 0

let equal_sub a i b j len =
  len >= 0
  && i >= 0 && j >= 0
  && i + len <= String.length a
  && j + len <= String.length b
  &&
  let rec loop k =
    k = len
    || (String.unsafe_get a (i + k) = String.unsafe_get b (j + k) && loop (k + 1))
  in
  loop 0

let hex_digit n = "0123456789abcdef".[n]

let to_hex s =
  let b = Bytes.create (String.length s * 2) in
  String.iteri
    (fun i c ->
      let v = Char.code c in
      Bytes.set b (2 * i) (hex_digit (v lsr 4));
      Bytes.set b ((2 * i) + 1) (hex_digit (v land 0xf)))
    s;
  Bytes.unsafe_to_string b

let of_hex s =
  let n = String.length s in
  if n mod 2 <> 0 then invalid_arg "Bytes_util.of_hex: odd length";
  let digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> invalid_arg "Bytes_util.of_hex: bad digit"
  in
  String.init (n / 2) (fun i ->
      Char.chr ((digit s.[2 * i] lsl 4) lor digit s.[(2 * i) + 1]))

let concat_list = String.concat ""

let chunks s ~size =
  if size <= 0 then invalid_arg "Bytes_util.chunks: size must be positive";
  let n = String.length s in
  let rec loop pos acc =
    if pos >= n then List.rev acc
    else
      let len = min size (n - pos) in
      loop (pos + len) ((pos, len) :: acc)
  in
  loop 0 []

let popcount_byte =
  let tbl = Array.init 256 (fun i ->
      let rec bits n = if n = 0 then 0 else (n land 1) + bits (n lsr 1) in
      bits i)
  in
  fun c -> tbl.(Char.code c)

let hamming_bits a b =
  if String.length a <> String.length b then
    invalid_arg "Bytes_util.hamming_bits: length mismatch";
  let acc = ref 0 in
  String.iteri
    (fun i ca ->
      let x = Char.code ca lxor Char.code b.[i] in
      acc := !acc + popcount_byte (Char.chr x))
    a;
  !acc
