(** Bit-level input/output.

    The synchronization protocol transmits hash values whose width is not a
    multiple of eight bits (continuation hashes are 3-5 bits wide, weak
    global hashes 10-24 bits).  [Bitio] provides a writer that packs values
    least-significant-bit first into a growable buffer, and a reader that
    unpacks them in the same order.  The Huffman coder in
    {!Fsync_compress.Huffman} uses the same primitives. *)

module Writer : sig
  type t

  val create : ?initial_size:int -> unit -> t
  (** Fresh writer.  [initial_size] is the initial byte capacity. *)

  val put_bit : t -> int -> unit
  (** [put_bit w b] appends the single bit [b] (0 or 1). *)

  val put_bits : t -> int -> width:int -> unit
  (** [put_bits w v ~width] appends the [width] low bits of [v],
      least-significant first.  [width] must be within [0, 57].
      @raise Invalid_argument on out-of-range width. *)

  val put_bits64 : t -> int64 -> width:int -> unit
  (** Like {!put_bits} for widths up to 64. *)

  val align_byte : t -> unit
  (** Pad with zero bits to the next byte boundary. *)

  val bit_length : t -> int
  (** Number of bits written so far. *)

  val contents : t -> string
  (** Packed bytes written so far (final partial byte zero-padded). *)
end

module Reader : sig
  type t

  val of_string : ?bit_offset:int -> string -> t

  val get_bit : t -> int
  (** Next bit.  @raise Invalid_argument past the end of input. *)

  val get_bits : t -> width:int -> int
  (** Next [width] bits as an int, [width] within [0, 57]. *)

  val get_bits64 : t -> width:int -> int64

  val align_byte : t -> unit

  val bits_left : t -> int

  val pos : t -> int
  (** Bits consumed so far. *)
end
