type align = Left | Right

type row = Cells of string list | Rule

type t = {
  caption : string option;
  header : (string * align) list;
  mutable rows : row list;  (* reversed *)
}

let create ?caption header = { caption; header; rows = [] }

let add_row t cells =
  (* Total: a row that is too short is padded with blanks, one that is
     too long is truncated — a report renderer should render, not
     crash. *)
  let arity = List.length t.header in
  let rec fit n = function
    | _ when n = 0 -> []
    | [] -> "" :: fit (n - 1) []
    | c :: rest -> c :: fit (n - 1) rest
  in
  t.rows <- Cells (fit arity cells) :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let render t =
  let headers = List.map fst t.header in
  let aligns = List.map snd t.header in
  let all_cell_rows =
    headers :: List.filter_map (function Cells c -> Some c | Rule -> None)
                 (List.rev t.rows)
  in
  let ncols = List.length headers in
  let widths = Array.make ncols 0 in
  List.iter
    (fun cells ->
      List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells)
    all_cell_rows;
  let buf = Buffer.create 256 in
  (match t.caption with
  | Some c ->
      Buffer.add_string buf c;
      Buffer.add_char buf '\n'
  | None -> ());
  let pad i cell align =
    let w = widths.(i) in
    let n = w - String.length cell in
    match align with
    | Left -> cell ^ String.make n ' '
    | Right -> String.make n ' ' ^ cell
  in
  let emit_cells cells =
    List.iteri
      (fun i (cell, align) ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad i cell align))
      (List.combine cells aligns);
    Buffer.add_char buf '\n'
  in
  let emit_rule () =
    Array.iteri
      (fun i w ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (String.make w '-'))
      widths;
    Buffer.add_char buf '\n'
  in
  emit_cells headers;
  emit_rule ();
  List.iter
    (function Cells cells -> emit_cells cells | Rule -> emit_rule ())
    (List.rev t.rows);
  Buffer.contents buf

let cell_f x = Printf.sprintf "%.2f" x

let cell_kb bytes = Printf.sprintf "%.1f" (float_of_int bytes /. 1024.0)
