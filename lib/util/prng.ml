type t = { mutable state : int64 }

let create seed = { state = seed }
let copy t = { state = t.state }

(* splitmix64: Steele, Lea, Flood; public-domain reference constants. *)
let next64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = create (next64 t)

let int t n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection-free for our purposes: modulo bias is < n / 2^63, negligible
     since n is always far below 2^32 in this code base. *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next64 t) 1) (Int64.of_int n))

let int_in t lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t x =
  let u = Int64.to_float (Int64.shift_right_logical (next64 t) 11) in
  x *. (u /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next64 t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let geometric t p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Prng.geometric: p out of (0,1]";
  let rec loop k = if bernoulli t p then k else loop (k + 1) in
  loop 1

let exponential t mean =
  let u = float t 1.0 in
  -. mean *. log (1.0 -. u)

let pareto t ~alpha ~x_min =
  let u = float t 1.0 in
  x_min /. ((1.0 -. u) ** (1.0 /. alpha))

let pick t a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.unsafe_set b i (Char.unsafe_chr (Int64.to_int (next64 t) land 0xff))
  done;
  b
