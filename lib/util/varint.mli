(** LEB128 variable-length integer coding.

    Protocol messages and delta instruction streams encode lengths and
    offsets as unsigned LEB128 so that small values (the common case) cost a
    single byte. *)

val write : Buffer.t -> int -> unit
(** [write buf n] appends the LEB128 encoding of [n] (which must be >= 0). *)

val read : string -> pos:int -> int * int
(** [read s ~pos] decodes a varint at byte offset [pos]; returns
    [(value, next_pos)].  @raise Invalid_argument on truncated input or
    an overlong encoding (more than 9 continuation septets — nothing we
    ever emit, and unbounded shifts would otherwise be undefined). *)

val size : int -> int
(** Encoded byte length of [n]. *)

val write_signed : Buffer.t -> int -> unit
(** Zig-zag signed encoding. *)

val read_signed : string -> pos:int -> int * int
