module Writer = struct
  type t = {
    mutable buf : Bytes.t;
    mutable byte_pos : int;   (* index of the byte currently being filled *)
    mutable bit_pos : int;    (* bits already used in [buf.[byte_pos]] *)
  }

  let create ?(initial_size = 64) () =
    let initial_size = max 1 initial_size in
    { buf = Bytes.make initial_size '\000'; byte_pos = 0; bit_pos = 0 }

  let ensure t needed_bytes =
    let cap = Bytes.length t.buf in
    if t.byte_pos + needed_bytes >= cap then begin
      let cap' = max (cap * 2) (t.byte_pos + needed_bytes + 1) in
      let buf' = Bytes.make cap' '\000' in
      Bytes.blit t.buf 0 buf' 0 (t.byte_pos + 1);
      t.buf <- buf'
    end

  let put_bit t b =
    ensure t 1;
    if b land 1 = 1 then begin
      let cur = Char.code (Bytes.get t.buf t.byte_pos) in
      Bytes.set t.buf t.byte_pos (Char.chr (cur lor (1 lsl t.bit_pos)))
    end;
    t.bit_pos <- t.bit_pos + 1;
    if t.bit_pos = 8 then begin
      t.bit_pos <- 0;
      t.byte_pos <- t.byte_pos + 1
    end

  let put_bits t v ~width =
    if width < 0 || width > 57 then
      invalid_arg "Bitio.Writer.put_bits: width out of [0,57]";
    for i = 0 to width - 1 do
      put_bit t ((v lsr i) land 1)
    done

  let put_bits64 t v ~width =
    if width < 0 || width > 64 then
      invalid_arg "Bitio.Writer.put_bits64: width out of [0,64]";
    for i = 0 to width - 1 do
      put_bit t (Int64.to_int (Int64.logand (Int64.shift_right_logical v i) 1L))
    done

  let align_byte t = if t.bit_pos <> 0 then begin
    t.bit_pos <- 0;
    t.byte_pos <- t.byte_pos + 1;
    ensure t 1
  end

  let bit_length t = (t.byte_pos * 8) + t.bit_pos

  let contents t =
    let len = t.byte_pos + (if t.bit_pos > 0 then 1 else 0) in
    Bytes.sub_string t.buf 0 len
end

module Reader = struct
  type t = {
    data : string;
    mutable bit : int;  (* absolute bit position *)
  }

  let of_string ?(bit_offset = 0) data = { data; bit = bit_offset }

  let total_bits t = String.length t.data * 8

  let get_bit t =
    if t.bit >= total_bits t then invalid_arg "Bitio.Reader.get_bit: past end";
    let byte = Char.code (String.unsafe_get t.data (t.bit lsr 3)) in
    let b = (byte lsr (t.bit land 7)) land 1 in
    t.bit <- t.bit + 1;
    b

  let get_bits t ~width =
    if width < 0 || width > 57 then
      invalid_arg "Bitio.Reader.get_bits: width out of [0,57]";
    let rec loop i acc =
      if i = width then acc else loop (i + 1) (acc lor (get_bit t lsl i))
    in
    loop 0 0

  let get_bits64 t ~width =
    if width < 0 || width > 64 then
      invalid_arg "Bitio.Reader.get_bits64: width out of [0,64]";
    let rec loop i acc =
      if i = width then acc
      else
        let acc =
          Int64.logor acc (Int64.shift_left (Int64.of_int (get_bit t)) i)
        in
        loop (i + 1) acc
    in
    loop 0 0L

  let align_byte t = if t.bit land 7 <> 0 then t.bit <- (t.bit lor 7) + 1

  let bits_left t = max 0 (total_bits t - t.bit)

  let pos t = t.bit
end
