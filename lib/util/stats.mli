(** Summary statistics for experiment reports. *)

type summary = {
  count : int;
  total : float;
  mean : float;
  min : float;
  max : float;
  stddev : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val summarize_opt : float list -> summary option
(** Total version: [None] on an empty sample.  Library code must use
    this one — an empty histogram is a data condition, not a bug. *)

val summarize : float list -> summary
(** Raising wrapper over {!summarize_opt} for bench/report code where an
    empty sample indicates a broken experiment.
    @raise Invalid_argument on an empty list. *)

val percentile : float array -> float -> float
(** [percentile sorted q] with [q] in [\[0,1\]]; nearest-rank on a sorted
    array. *)

val ratio : float -> float -> float
(** [ratio a b] = a /. b, 0 if b = 0. *)

val kb : int -> float
(** Bytes to kilobytes (paper reports costs in KB, 1 KB = 1024 B). *)

val pp_bytes : Format.formatter -> int -> unit
(** Human-readable byte count ("1.4 MB"). *)
