(** CRC-32 (IEEE 802.3) checksums.

    Used by the session layer ({!Fsync_net.Frame}) to detect corrupted
    frames before any protocol decoder sees the bytes.  A CRC is an
    error-*detection* code, not a cryptographic hash: it reliably
    catches the bit flips and truncations a dirty link produces, while
    end-to-end strong fingerprints remain the final correctness check. *)

val string : string -> int
(** CRC-32 of a whole string, in [0, 2^32). *)

val update : int -> string -> pos:int -> len:int -> int
(** Incremental: [update crc s ~pos ~len] extends [crc] with a substring.
    [string s = update 0 s ~pos:0 ~len:(String.length s)].
    @raise Invalid_argument if the substring is out of bounds. *)

val to_bytes_le : int -> string
(** 4 bytes, little-endian. *)

val of_bytes_le : string -> pos:int -> int
(** Read 4 little-endian bytes.
    @raise Invalid_argument if out of bounds. *)
