type span = { lo : int; hi : int }

type t = span list
(* Invariant: sorted by [lo]; for consecutive a, b: a.hi < b.lo (disjoint and
   non-adjacent); every span non-empty. *)

let empty = []

let normalize pairs =
  let pairs = List.filter (fun (lo, hi) -> hi > lo) pairs in
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) pairs in
  let rec merge acc = function
    | [] -> List.rev acc
    | (lo, hi) :: rest -> (
        match acc with
        | { lo = plo; hi = phi } :: acc_rest when lo <= phi ->
            merge ({ lo = plo; hi = max phi hi } :: acc_rest) rest
        | _ -> merge ({ lo; hi } :: acc) rest)
  in
  merge [] sorted

let of_list pairs = normalize pairs
let of_span ~lo ~hi = of_list [ (lo, hi) ]
let to_list t = List.map (fun s -> (s.lo, s.hi)) t
let spans t = t
let is_empty t = t = []
let total_length t = List.fold_left (fun acc s -> acc + s.hi - s.lo) 0 t
let count = List.length

let union a b = normalize (to_list a @ to_list b)
let add t ~lo ~hi = union t (of_span ~lo ~hi)

let inter a b =
  (* Two-pointer sweep over both sorted lists. *)
  let rec loop acc a b =
    match (a, b) with
    | [], _ | _, [] -> List.rev acc
    | x :: a', y :: b' ->
        let lo = max x.lo y.lo and hi = min x.hi y.hi in
        let acc = if hi > lo then { lo; hi } :: acc else acc in
        if x.hi < y.hi then loop acc a' b else loop acc a b'
  in
  loop [] a b

let diff a b =
  (* Subtract each span of [b] from the spans of [a]. *)
  let rec loop acc a b =
    match a with
    | [] -> List.rev acc
    | x :: a' -> (
        match b with
        | [] -> loop (x :: acc) a' []
        | y :: b' ->
            if y.hi <= x.lo then loop acc a b'
            else if y.lo >= x.hi then loop (x :: acc) a' b
            else
              let acc =
                if y.lo > x.lo then { lo = x.lo; hi = y.lo } :: acc else acc
              in
              if y.hi < x.hi then loop acc ({ lo = y.hi; hi = x.hi } :: a') b'
              else loop acc a' b)
  in
  loop [] a b

let complement t ~lo ~hi = diff (of_span ~lo ~hi) t

let mem t p =
  List.exists (fun s -> s.lo <= p && p < s.hi) t

let contains_span t ~lo ~hi =
  hi <= lo || List.exists (fun s -> s.lo <= lo && hi <= s.hi) t

let equal (a : t) (b : t) = a = b

let pp ppf t =
  Format.fprintf ppf "{";
  List.iteri
    (fun i s ->
      if i > 0 then Format.fprintf ppf ", ";
      Format.fprintf ppf "[%d,%d)" s.lo s.hi)
    t;
  Format.fprintf ppf "}"
