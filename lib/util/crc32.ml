(* CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1)
           else c := !c lsr 1
         done;
         !c))

let update crc s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.update: substring out of bounds";
  let t = Lazy.force table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    c := t.((!c lxor Char.code (String.unsafe_get s i)) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let string s = update 0 s ~pos:0 ~len:(String.length s)

let to_bytes_le crc =
  String.init 4 (fun i -> Char.chr ((crc lsr (8 * i)) land 0xff))

let of_bytes_le s ~pos =
  if pos < 0 || pos + 4 > String.length s then
    invalid_arg "Crc32.of_bytes_le: out of bounds";
  Char.code s.[pos]
  lor (Char.code s.[pos + 1] lsl 8)
  lor (Char.code s.[pos + 2] lsl 16)
  lor (Char.code s.[pos + 3] lsl 24)
