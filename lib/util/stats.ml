type summary = {
  count : int;
  total : float;
  mean : float;
  min : float;
  max : float;
  stddev : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let percentile sorted q =
  let n = Array.length sorted in
  (* Bench-only report helper; library code reaches percentiles through
     [summarize_opt], which never calls this on an empty array. *)
  if n = 0 then (invalid_arg "Stats.percentile: empty" [@fsynlint.allow "r2"]);
  let q = Float.max 0.0 (Float.min 1.0 q) in
  let idx = int_of_float (Float.round (q *. float_of_int (n - 1))) in
  sorted.(idx)

let summarize_opt xs =
  match xs with
  | [] -> None
  | _ ->
      let a = Array.of_list xs in
      Array.sort Float.compare a;
      let n = Array.length a in
      let total = Array.fold_left ( +. ) 0.0 a in
      let mean = total /. float_of_int n in
      let var =
        Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 a
        /. float_of_int n
      in
      Some
        {
          count = n;
          total;
          mean;
          min = a.(0);
          max = a.(n - 1);
          stddev = sqrt var;
          p50 = percentile a 0.5;
          p90 = percentile a 0.9;
          p99 = percentile a 0.99;
        }

let summarize xs =
  match summarize_opt xs with
  | Some s -> s
  (* Raising wrapper kept for bench/report code where an empty sample is
     a bug in the experiment, not a data condition. *)
  | None -> (invalid_arg "Stats.summarize: empty" [@fsynlint.allow "r2"])

let ratio a b = if b = 0.0 then 0.0 else a /. b

let kb n = float_of_int n /. 1024.0

let pp_bytes ppf n =
  let f = float_of_int n in
  if f >= 1048576.0 then Format.fprintf ppf "%.2f MB" (f /. 1048576.0)
  else if f >= 1024.0 then Format.fprintf ppf "%.1f KB" (f /. 1024.0)
  else Format.fprintf ppf "%d B" n
