(** Small helpers over [string]/[bytes] used across the code base. *)

val sub_safe : string -> pos:int -> len:int -> string
(** Like [String.sub] but clamps to the string bounds instead of raising. *)

val common_prefix : string -> int -> string -> int -> int
(** [common_prefix a i b j] is the length of the longest common prefix of
    [a] starting at [i] and [b] starting at [j]. *)

val common_suffix : string -> int -> string -> int -> int
(** [common_suffix a i b j] is the length of the longest common run ending
    just before positions [i] (in [a]) and [j] (in [b]). *)

val equal_sub : string -> int -> string -> int -> int -> bool
(** [equal_sub a i b j len]: do [a[i..i+len)] and [b[j..j+len)] coincide?
    False if either range is out of bounds. *)

val to_hex : string -> string

val of_hex : string -> string
(** @raise Invalid_argument on malformed input. *)

val concat_list : string list -> string

val chunks : string -> size:int -> (int * int) list
(** Offsets/lengths of consecutive chunks of at most [size] bytes covering
    the whole string. *)

val hamming_bits : string -> string -> int
(** Number of differing bits between two equal-length strings.
    @raise Invalid_argument on length mismatch. *)
