let write buf n =
  if n < 0 then invalid_arg "Varint.write: negative";
  let rec loop n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      loop (n lsr 7)
    end
  in
  loop n

let read s ~pos =
  let len = String.length s in
  let rec loop pos shift acc =
    if pos >= len then invalid_arg "Varint.read: truncated";
    (* An OCaml int holds at most 63 bits: more than 9 septets cannot
       encode a value we produced, so the input is malformed.  Without
       this bound a crafted run of 0x80 bytes would walk the whole
       message and shift past the word size (undefined for [lsl]). *)
    if shift > 56 then invalid_arg "Varint.read: overlong encoding";
    let b = Char.code (String.unsafe_get s pos) in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b < 0x80 then (acc, pos + 1) else loop (pos + 1) (shift + 7) acc
  in
  loop pos 0 0

let size n =
  let rec loop n acc = if n < 0x80 then acc else loop (n lsr 7) (acc + 1) in
  loop (max n 0) 1

let zigzag n = (n lsl 1) lxor (n asr 62)
let unzigzag z = (z lsr 1) lxor (- (z land 1))

let write_signed buf n = write buf (zigzag n)

let read_signed s ~pos =
  let z, pos = read s ~pos in
  (unzigzag z, pos)
