module Varint = Fsync_util.Varint
module Crc32 = Fsync_util.Crc32
module Scope = Fsync_obs.Scope

type config = {
  max_retries : int;
  backoff_base_s : float;
  backoff_max_s : float;
}

let default_config = { max_retries = 16; backoff_base_s = 0.05; backoff_max_s = 2.0 }

type error =
  | Retry_exhausted of { direction : Channel.direction; seq : int; attempts : int }

exception Failed of error

let error_message = function
  | Retry_exhausted { direction; seq; attempts } ->
      Printf.sprintf
        "frame retry budget exhausted: %s seq %d after %d attempts"
        (match direction with
        | Channel.Client_to_server -> "c2s"
        | Channel.Server_to_client -> "s2c")
        seq attempts

let () =
  Printexc.register_printer (function
    | Failed e -> Some ("Fsync_net.Frame.Failed: " ^ error_message e)
    | _ -> None)

type stats = {
  frames : int;           (* data frames first put on the wire *)
  retransmits : int;
  naks : int;
  dup_discards : int;
  bad_frames : int;       (* CRC or header failures detected *)
  overhead_bytes : int;   (* header + NAK + retransmitted frame bytes *)
  backoff_s : float;      (* simulated retry backoff time *)
}

type dir_state = {
  mutable next_seq : int;        (* sender side *)
  mutable expected : int;        (* receiver side *)
  history : (int, string) Hashtbl.t;  (* unacknowledged logical payloads *)
  reorder : (int, string) Hashtbl.t;  (* frames received past a gap *)
  mutable attempts : int;        (* NAKs issued for the current expected *)
  mutable retransmit_inflight : bool;
}

let make_dir_state () =
  {
    next_seq = 0;
    expected = 0;
    history = Hashtbl.create 16;
    reorder = Hashtbl.create 16;
    attempts = 0;
    retransmit_inflight = false;
  }

type t = {
  channel : Channel.t;
  config : config;
  scope : Scope.t;
  c2s : dir_state;
  s2c : dir_state;
  mutable s_frames : int;
  mutable s_retransmits : int;
  mutable s_naks : int;
  mutable s_dups : int;
  mutable s_bad : int;
  mutable s_overhead : int;
  mutable s_backoff : float;
}

let state t = function
  | Channel.Client_to_server -> t.c2s
  | Channel.Server_to_client -> t.s2c

let opposite = function
  | Channel.Client_to_server -> Channel.Server_to_client
  | Channel.Server_to_client -> Channel.Client_to_server

let stats t =
  {
    frames = t.s_frames;
    retransmits = t.s_retransmits;
    naks = t.s_naks;
    dup_discards = t.s_dups;
    bad_frames = t.s_bad;
    overhead_bytes = t.s_overhead;
    backoff_s = t.s_backoff;
  }

(* ---- wire format: varint seq | crc32-le(seq-bytes ++ payload) | payload ---- *)

let encode seq payload =
  let b = Buffer.create (String.length payload + 8) in
  Varint.write b seq;
  let seq_bytes = Buffer.contents b in
  let crc =
    Crc32.update
      (Crc32.string seq_bytes)
      payload ~pos:0 ~len:(String.length payload)
  in
  Buffer.add_string b (Crc32.to_bytes_le crc);
  Buffer.add_string b payload;
  Buffer.contents b

let decode wire =
  match Varint.read wire ~pos:0 with
  | exception Invalid_argument _ -> Error `Header
  | seq, pos ->
      if seq < 0 || pos + 4 > String.length wire then Error `Header
      else
        let stored = Crc32.of_bytes_le wire ~pos in
        let payload_pos = pos + 4 in
        let computed =
          Crc32.update
            (Crc32.update 0 wire ~pos:0 ~len:pos)
            wire ~pos:payload_pos
            ~len:(String.length wire - payload_pos)
        in
        if not (Int.equal computed stored) then Error `Crc
        else Ok (seq, String.sub wire payload_pos (String.length wire - payload_pos))

(* ---- sender ---- *)

let send_framed t ~label dir payload =
  let st = state t dir in
  let seq = st.next_seq in
  st.next_seq <- seq + 1;
  Hashtbl.replace st.history seq payload;
  let wire = encode seq payload in
  t.s_frames <- t.s_frames + 1;
  t.s_overhead <- t.s_overhead + (String.length wire - String.length payload);
  Channel.raw_send t.channel ~label dir wire

(* ---- receiver ---- *)

(* Ask the peer to retransmit [st.expected].  In-process, the NAK is
   consumed synchronously: we account its bytes and round trip on the
   reverse direction, then replay the frame from the sender's history
   through the (possibly faulty) wire.  [force] bypasses the
   one-outstanding-retransmission limit — used when the link went quiet,
   i.e. the previous retransmission itself was lost. *)
let nak_and_retransmit t dir ~force =
  let st = state t dir in
  if force || not st.retransmit_inflight then begin
    if st.attempts >= t.config.max_retries then
      raise
        (Failed
           (Retry_exhausted
              { direction = dir; seq = st.expected; attempts = st.attempts }));
    st.attempts <- st.attempts + 1;
    let backoff =
      min
        (t.config.backoff_base_s *. (2.0 ** float_of_int (st.attempts - 1)))
        t.config.backoff_max_s
    in
    t.s_backoff <- t.s_backoff +. backoff;
    t.s_naks <- t.s_naks + 1;
    Scope.incr t.scope "frame_naks";
    let nak_len = 1 + Varint.size st.expected in
    t.s_overhead <- t.s_overhead + nak_len;
    Channel.note t.channel ~label:"frame:nak" (opposite dir) nak_len;
    match Hashtbl.find_opt st.history st.expected with
    | Some payload ->
        let wire = encode st.expected payload in
        t.s_retransmits <- t.s_retransmits + 1;
        Scope.incr t.scope "frame_retransmits";
        t.s_overhead <- t.s_overhead + String.length wire;
        Channel.raw_send t.channel ~label:"frame:retransmit" dir wire;
        st.retransmit_inflight <- true
    | None ->
        (* The peer has nothing unacknowledged at this sequence — the
           bad frame was a stray duplicate.  Nothing to replay. *)
        ()
  end

let recv_framed t dir =
  let st = state t dir in
  let deliver seq payload =
    Hashtbl.remove st.history seq;
    st.expected <- seq + 1;
    st.attempts <- 0;
    st.retransmit_inflight <- false;
    Some payload
  in
  let rec loop () =
    match Hashtbl.find_opt st.reorder st.expected with
    | Some payload ->
        Hashtbl.remove st.reorder st.expected;
        deliver st.expected payload
    | None -> (
        match Channel.raw_recv_opt t.channel dir with
        | None ->
            if Hashtbl.mem st.history st.expected then begin
              (* The link went quiet with the frame unacknowledged: it
                 (or its retransmission) was lost in flight. *)
              nak_and_retransmit t dir ~force:true;
              loop ()
            end
            else None
        | Some wire -> (
            match decode wire with
            | Error (`Crc | `Header) ->
                t.s_bad <- t.s_bad + 1;
                Scope.incr t.scope "frame_bad";
                nak_and_retransmit t dir ~force:false;
                loop ()
            | Ok (seq, payload) ->
                if seq < st.expected then begin
                  t.s_dups <- t.s_dups + 1;
                  Scope.incr t.scope "frame_dups";
                  loop ()
                end
                else if Int.equal seq st.expected then deliver seq payload
                else begin
                  (* Gap: [expected] was lost; stash this frame and
                     request the missing one. *)
                  Hashtbl.replace st.reorder seq payload;
                  nak_and_retransmit t dir ~force:false;
                  loop ()
                end))
  in
  loop ()

(* ---- lifecycle ---- *)

let attach ?(config = default_config) ?(scope = Scope.disabled) channel =
  (* A retry budget below one frame is meaningless; clamp rather than
     crash so [attach] is total. *)
  let config = { config with max_retries = max 1 config.max_retries } in
  let t =
    {
      channel;
      config;
      scope;
      c2s = make_dir_state ();
      s2c = make_dir_state ();
      s_frames = 0;
      s_retransmits = 0;
      s_naks = 0;
      s_dups = 0;
      s_bad = 0;
      s_overhead = 0;
      s_backoff = 0.0;
    }
  in
  Channel.set_session channel
    ~send:(fun _ch ~label dir payload -> send_framed t ~label dir payload)
    ~recv:(fun _ch dir -> recv_framed t dir);
  t

let detach t = Channel.clear_session t.channel

let resync t =
  (* Abandon every in-flight exchange: drop queued frames, forget
     unacknowledged history and reorder stashes, and restart the
     receiver expectations at the senders' next sequence numbers.  Both
     endpoints of the simulated link resynchronize together; a small
     control note per direction accounts for the handshake. *)
  List.iter
    (fun dir ->
      let st = state t dir in
      let rec drain () =
        match Channel.raw_recv_opt t.channel dir with
        | Some _ -> drain ()
        | None -> ()
      in
      drain ();
      Hashtbl.reset st.history;
      Hashtbl.reset st.reorder;
      st.expected <- st.next_seq;
      st.attempts <- 0;
      st.retransmit_inflight <- false;
      let len = 1 + Varint.size st.next_seq in
      t.s_overhead <- t.s_overhead + len;
      Channel.note t.channel ~label:"frame:resync" dir len)
    [ Channel.Client_to_server; Channel.Server_to_client ]

let pp_stats ppf s =
  Format.fprintf ppf
    "frames: %d sent, %d retransmits, %d naks, %d dups discarded, %d bad, \
     overhead %d B, backoff %.2f s"
    s.frames s.retransmits s.naks s.dup_discards s.bad_frames s.overhead_bytes
    s.backoff_s
