(** A {!Channel} backed by real file descriptors.

    Everything above the channel — protocol drivers, fault schedules,
    byte accounting, transcripts — is written against the in-memory
    [Channel.t].  This module gives the same interface a real kernel
    transport: each logical message crosses a socket as one
    length-prefixed frame, and the channel's accounting reflects what
    was actually written (payload plus the {!header_bytes} prefix).

    Fault injection composes: {!Fault.attach} installs its wire hook on
    the channel as usual, and this transport asks the channel (via
    [Channel.apply_wire_hook]) what physically crosses the link before
    writing, so drop / corrupt / truncate / duplicate schedules apply to
    real sockets exactly as they do to the in-memory queues.

    The transport installs itself as the channel's session layer, so it
    cannot be combined with {!Frame} on the same channel (framing,
    ordering and integrity are the kernel's job here; corruption
    injected by a fault schedule is caught by the decoders above). *)

exception Closed
(** The peer closed the connection (raised from [recv_opt] on EOF and
    from [send] after {!close}). *)

exception Oversized of int
(** A frame length exceeded {!max_frame} — wire corruption or a
    protocol error, never a legitimate message. *)

val header_bytes : int
(** Per-frame overhead: a 4-byte big-endian payload length. *)

val max_frame : int

type t

val of_socketpair :
  ?latency_s:float -> ?bandwidth_bps:float -> unit -> t
(** Both ends of a [Unix.socketpair] in one process: client-to-server
    sends enter the client's fd and are received from the server's fd,
    and symmetrically — so a whole in-process protocol run
    ([Driver.sync], the resilience tests) exercises real kernel
    buffers.  Writes that fill the kernel buffer drain the opposite
    buffers while waiting, so single-process runs cannot deadlock
    against their own unread data. *)

val of_fd : ?latency_s:float -> ?bandwidth_bps:float -> Unix.file_descr -> t
(** One endpoint of a connected socket (e.g. a TCP connection to the
    daemon).  Both directions map to the same fd: sends are written to
    it, receives read from it; the [direction] argument only drives
    accounting.  The fd is owned by the transport from here on (set
    non-blocking now, closed by {!close}). *)

val channel : t -> Channel.t
(** The channel protocol code holds.  [send] writes a frame through the
    wire hook; [recv_opt] returns a complete frame if one is buffered or
    readable right now, [None] otherwise, and raises {!Closed} on EOF. *)

val wait_readable : t -> Channel.direction -> timeout_s:float -> bool
(** Block (up to [timeout_s]) until a receive in the given direction
    could make progress: true if a complete frame is already buffered or
    the fd became readable. *)

val close : t -> unit
(** Close the owned fd(s); idempotent. *)
