(** In-memory duplex channel with exact cost accounting.

    The paper's experiments measure bytes per direction and the number of
    communication round trips; latency only matters through the round-trip
    count ("roundtrip latencies are not incurred for each file since many
    files can be processed simultaneously", §2.3).  The channel therefore
    counts bytes and direction alternations exactly, and derives a
    simulated wall-clock time for a configurable link. *)

type direction = Client_to_server | Server_to_client

type t

val create : ?latency_s:float -> ?bandwidth_bps:float -> unit -> t
(** Default link: 50 ms one-way latency, 1 Mbit/s — the "slow network" of
    the title. *)

val send : t -> ?label:string -> direction -> string -> unit
(** Record a message.  The payload itself is queued so a peer can
    [recv] it; protocol drivers in this code base pass data directly and
    use the channel for accounting only, but tests exercise the queue. *)

val recv : t -> direction -> string
(** Dequeue the oldest in-flight message in the given direction.
    @raise Invalid_argument if none is pending. *)

val bytes : t -> direction -> int
(** Total payload bytes sent in the given direction. *)

val total_bytes : t -> int

val messages : t -> int

val roundtrips : t -> int
(** Number of client-to-server -> server-to-client alternation pairs;
    the unit the paper counts protocol rounds in. *)

val elapsed_s : t -> float
(** Simulated transfer time: 2 * latency * roundtrips + bytes / bandwidth. *)

val transcript : t -> (direction * string * int) list
(** (direction, label, size) per message, in order. *)

val reset : t -> unit
