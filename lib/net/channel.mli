(** In-memory duplex channel with exact cost accounting.

    The paper's experiments measure bytes per direction and the number of
    communication round trips; latency only matters through the round-trip
    count ("roundtrip latencies are not incurred for each file since many
    files can be processed simultaneously", §2.3).  The channel therefore
    counts bytes and direction alternations exactly, and derives a
    simulated wall-clock time for a configurable link.

    Two optional layers can be interposed without any change to the
    protocol drivers that hold a [t]:

    - a {e wire hook} transforms each transmission at the physical level
      ({!Fault} injects loss, corruption, truncation, duplication and
      disconnects there);
    - a {e session layer} replaces the public [send]/[recv_opt] pair
      ({!Frame} adds CRC-checked, sequence-numbered frames with
      NAK/retransmit on top of the raw queue operations).

    With neither installed, behavior and byte accounting are exactly the
    perfect lossless pipe of the original channel. *)

type direction = Client_to_server | Server_to_client

type transmission =
  | Delivered of string  (** arrives (possibly corrupted or truncated) *)
  | Lost of int          (** lost in flight; the sender still paid the bytes *)

type t

val create : ?latency_s:float -> ?bandwidth_bps:float -> unit -> t
(** Default link: 50 ms one-way latency, 1 Mbit/s — the "slow network" of
    the title. *)

val send : t -> ?label:string -> direction -> string -> unit
(** Record a message.  The payload itself is queued so a peer can
    [recv] it; protocol drivers in this code base pass data directly and
    use the channel for accounting only, but tests exercise the queue.
    Dispatches through the session layer when one is installed. *)

val recv_opt : t -> direction -> string option
(** Dequeue the oldest in-flight message in the given direction, or
    [None] if nothing is pending.  Protocol code should use this (an
    unexpectedly empty queue is a protocol or link failure to be handled,
    not a programming error).  Dispatches through the session layer when
    one is installed. *)

val bytes : t -> direction -> int
(** Total payload bytes sent in the given direction. *)

val total_bytes : t -> int

val messages : t -> int

val roundtrips : t -> int
(** Number of client-to-server -> server-to-client alternation pairs;
    the unit the paper counts protocol rounds in. *)

val elapsed_s : t -> float
(** Simulated transfer time: 2 * latency * roundtrips + bytes / bandwidth. *)

val transcript : t -> (direction * string * int) list
(** (direction, label, size) per message, in order. *)

val reset : t -> unit
(** Clear traffic counters and queues.  Installed wire hooks and session
    layers are configuration and survive a reset. *)

(** {2 Layering primitives}

    Used by {!Fault} and {!Frame}; protocol drivers never call these. *)

val raw_send : t -> ?label:string -> direction -> string -> unit
(** Bypass the session layer: apply the wire hook and enqueue. *)

val raw_recv_opt : t -> direction -> string option
(** Bypass the session layer: pop straight from the queue. *)

val apply_wire_hook : t -> direction -> string -> transmission list
(** Map a logical payload through the installed wire hook (the identity
    [[Delivered payload]] when none is installed) {e without} touching
    the queues or the accounting.  This is how an external transport
    ({!Fd_transport}) runs the same fault schedules as the in-memory
    queues: it asks the channel what physically crosses the link, then
    writes that to its file descriptor and accounts it with {!note}. *)

val note : t -> ?label:string -> direction -> int -> unit
(** Account [len] bytes of control traffic (message count, round-trip
    alternation, transcript entry) without enqueueing a payload — for
    control messages that are consumed out-of-band by the session layer,
    e.g. a NAK answered synchronously by a retransmission. *)

val set_scope : t -> Fsync_obs.Scope.t -> unit
(** Attach an observability scope: every accounted transmission bumps
    the [channel_messages] / [channel_bytes_c2s] / [channel_bytes_s2c]
    counters.  The default disabled scope costs one branch per
    message. *)

val set_wire_hook :
  t -> (direction -> string -> transmission list) option -> unit
(** Install or remove the wire-level transform.  The hook maps each
    logical send to the list of physical transmissions actually put on
    the link: [[Delivered p]] is the identity, [[]] nothing at all,
    [[Delivered p; Delivered p]] a duplication, [[Lost n]] a loss that
    still cost [n] bytes.  The hook may raise (e.g. {!Fault.Disconnected})
    to model a broken connection. *)

val set_session :
  t ->
  send:(t -> label:string -> direction -> string -> unit) ->
  recv:(t -> direction -> string option) ->
  unit
(** Install a session layer: all subsequent {!send} / {!recv_opt} /
    {!recv} calls dispatch through it.  The layer itself must use
    {!raw_send} / {!raw_recv_opt}. *)

val clear_session : t -> unit
