(** Deterministic, seed-driven fault injection for {!Channel}.

    The paper's protocols are evaluated over a perfect in-memory pipe;
    real slow links corrupt, lose, truncate, duplicate and disconnect.
    [Fault.attach] installs a wire hook on a channel so that every
    existing protocol driver runs unmodified over a faulty link; the
    schedule is a pure function of the seed, so any failing run can be
    replayed exactly.

    At most one fault is applied per transmission, rolled in priority
    order disconnect > drop > truncate > corrupt > duplicate.
    Corruption flips 1–3 random bits; truncation keeps a uniform prefix
    (possibly empty).  A dropped or truncated message still charges the
    transmitted bytes to the channel: lost traffic is part of the true
    cost of the link. *)

type spec = {
  p_drop : float;               (** probability a message is lost in flight *)
  p_corrupt : float;            (** probability of a 1–3 bit flip *)
  p_truncate : float;           (** probability the tail is cut off *)
  p_duplicate : float;          (** probability the message arrives twice *)
  p_disconnect : float;         (** probability the connection breaks on send *)
  disconnect_after : int option;
      (** deterministic break on the n-th transmission (1-based), for
          reproducible resume tests; independent of [p_disconnect] *)
  max_disconnects : int;
      (** total disconnect budget — keeps every schedule finite so a
          retrying session eventually completes or fails cleanly *)
}

val none : spec
val dirty : spec
(** A representative dirty link: 2% drop, 2% corrupt, 1% truncate,
    1% duplicate, 0.2% disconnect (at most 3). *)

exception Disconnected of { direction : Channel.direction; message_index : int }
(** Raised from inside [Channel.send] when the schedule breaks the
    connection, and on every later send until {!reconnect}.  Session
    drivers catch this to checkpoint and resume. *)

type t

val attach : ?seed:int -> Channel.t -> spec -> t
(** Install the fault schedule on the channel's wire hook.
    @raise Invalid_argument if the spec is malformed. *)

val detach : t -> unit
(** Restore the perfect link. *)

val connected : t -> bool

val reconnect : t -> unit
(** Re-establish the connection after a [Disconnected]; the schedule
    (and its PRNG state) continues where it left off. *)

type stats = {
  transmissions : int;
  dropped : int;
  corrupted : int;
  truncated : int;
  duplicated : int;
  disconnects : int;
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit

val parse : string -> (spec, string) result
(** Parse a CLI spec such as ["drop=0.02,corrupt=0.01,disc=0.001"].
    Keys: [drop], [corrupt], [trunc]/[truncate], [dup]/[duplicate],
    [disc]/[disconnect] (probabilities in [0,1]); [disc-after=N]
    (deterministic break on the N-th transmission); [max-disc=N].
    The words ["none"] and ["dirty"] name the corresponding presets.
    Specifying [disc] or [disc-after] without [max-disc] implies a
    small positive disconnect budget. *)

val to_string : spec -> string
