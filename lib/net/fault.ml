module Prng = Fsync_util.Prng

type spec = {
  p_drop : float;
  p_corrupt : float;
  p_truncate : float;
  p_duplicate : float;
  p_disconnect : float;
  disconnect_after : int option;
  max_disconnects : int;
}

let none =
  {
    p_drop = 0.0;
    p_corrupt = 0.0;
    p_truncate = 0.0;
    p_duplicate = 0.0;
    p_disconnect = 0.0;
    disconnect_after = None;
    max_disconnects = 0;
  }

let dirty =
  {
    p_drop = 0.02;
    p_corrupt = 0.02;
    p_truncate = 0.01;
    p_duplicate = 0.01;
    p_disconnect = 0.002;
    disconnect_after = None;
    max_disconnects = 3;
  }

exception Disconnected of { direction : Channel.direction; message_index : int }

let () =
  Printexc.register_printer (function
    | Disconnected { direction; message_index } ->
        Some
          (Printf.sprintf "Fsync_net.Fault.Disconnected(%s, message %d)"
             (match direction with
             | Channel.Client_to_server -> "c2s"
             | Channel.Server_to_client -> "s2c")
             message_index)
    | _ -> None)

type stats = {
  transmissions : int;
  dropped : int;
  corrupted : int;
  truncated : int;
  duplicated : int;
  disconnects : int;
}

type t = {
  channel : Channel.t;
  spec : spec;
  rng : Prng.t;
  mutable connected : bool;
  mutable n_seen : int;  (* messages offered to the hook *)
  mutable s_transmissions : int;
  mutable s_dropped : int;
  mutable s_corrupted : int;
  mutable s_truncated : int;
  mutable s_duplicated : int;
  mutable s_disconnects : int;
}

let stats t =
  {
    transmissions = t.s_transmissions;
    dropped = t.s_dropped;
    corrupted = t.s_corrupted;
    truncated = t.s_truncated;
    duplicated = t.s_duplicated;
    disconnects = t.s_disconnects;
  }

let validate spec =
  let prob name p =
    if p < 0.0 || p > 1.0 then
      invalid_arg (Printf.sprintf "Fault: %s=%g not a probability" name p)
  in
  prob "drop" spec.p_drop;
  prob "corrupt" spec.p_corrupt;
  prob "trunc" spec.p_truncate;
  prob "dup" spec.p_duplicate;
  prob "disc" spec.p_disconnect;
  if spec.max_disconnects < 0 then invalid_arg "Fault: max_disconnects < 0"

let flip_bits rng payload =
  let b = Bytes.of_string payload in
  let n_bits = 1 + Prng.int rng 3 in
  for _ = 1 to n_bits do
    let bit = Prng.int rng (8 * Bytes.length b) in
    let i = bit / 8 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl (bit mod 8))))
  done;
  Bytes.to_string b

let hook t dir payload =
  if not t.connected then
    raise (Disconnected { direction = dir; message_index = t.n_seen });
  t.n_seen <- t.n_seen + 1;
  t.s_transmissions <- t.s_transmissions + 1;
  let len = String.length payload in
  let sp = t.spec in
  let may_disconnect =
    sp.max_disconnects > 0 && t.s_disconnects < sp.max_disconnects
  in
  let deterministic_disconnect =
    match sp.disconnect_after with
    | Some n -> Int.equal t.n_seen n (* fires on the n-th transmission *)
    | None -> false
  in
  if
    may_disconnect
    && (deterministic_disconnect || Prng.bernoulli t.rng sp.p_disconnect)
  then begin
    t.s_disconnects <- t.s_disconnects + 1;
    t.connected <- false;
    raise (Disconnected { direction = dir; message_index = t.n_seen - 1 })
  end;
  if Prng.bernoulli t.rng sp.p_drop then begin
    t.s_dropped <- t.s_dropped + 1;
    [ Channel.Lost len ]
  end
  else if len > 0 && Prng.bernoulli t.rng sp.p_truncate then begin
    t.s_truncated <- t.s_truncated + 1;
    [ Channel.Delivered (String.sub payload 0 (Prng.int t.rng len)) ]
  end
  else if len > 0 && Prng.bernoulli t.rng sp.p_corrupt then begin
    t.s_corrupted <- t.s_corrupted + 1;
    [ Channel.Delivered (flip_bits t.rng payload) ]
  end
  else if Prng.bernoulli t.rng sp.p_duplicate then begin
    t.s_duplicated <- t.s_duplicated + 1;
    [ Channel.Delivered payload; Channel.Delivered payload ]
  end
  else [ Channel.Delivered payload ]

let attach ?(seed = 1) channel spec =
  validate spec;
  let t =
    {
      channel;
      spec;
      rng = Prng.create (Int64.of_int seed);
      connected = true;
      n_seen = 0;
      s_transmissions = 0;
      s_dropped = 0;
      s_corrupted = 0;
      s_truncated = 0;
      s_duplicated = 0;
      s_disconnects = 0;
    }
  in
  Channel.set_wire_hook channel (Some (hook t));
  t

let detach t = Channel.set_wire_hook t.channel None

let connected t = t.connected

let reconnect t = t.connected <- true

(* ---- spec strings: "drop=0.01,corrupt=0.02,disc=0.001" ---- *)

let to_string s =
  let fields =
    [
      ("drop", s.p_drop);
      ("corrupt", s.p_corrupt);
      ("trunc", s.p_truncate);
      ("dup", s.p_duplicate);
      ("disc", s.p_disconnect);
    ]
  in
  let parts =
    List.filter_map
      (fun (k, v) -> if v > 0.0 then Some (Printf.sprintf "%s=%g" k v) else None)
      fields
  in
  let parts =
    match s.disconnect_after with
    | Some n -> parts @ [ Printf.sprintf "disc-after=%d" n ]
    | None -> parts
  in
  let parts =
    if s.max_disconnects <> 0 && not (Int.equal s.max_disconnects none.max_disconnects)
    then
      parts @ [ Printf.sprintf "max-disc=%d" s.max_disconnects ]
    else parts
  in
  if parts = [] then "none" else String.concat "," parts

let parse str =
  if String.equal (String.trim str) "none" then Ok none
  else if String.equal (String.trim str) "dirty" then Ok dirty
  else
    let parts = String.split_on_char ',' str in
    let rec loop acc = function
      | [] -> Ok acc
      | part :: rest -> (
          match String.index_opt part '=' with
          | None -> Error (Printf.sprintf "fault spec: %S is not key=value" part)
          | Some i -> (
              let key = String.trim (String.sub part 0 i) in
              let v = String.trim (String.sub part (i + 1) (String.length part - i - 1)) in
              let fl () =
                match float_of_string_opt v with
                | Some f when f >= 0.0 && f <= 1.0 -> Ok f
                | _ -> Error (Printf.sprintf "fault spec: %s=%S not a probability" key v)
              in
              let it () =
                match int_of_string_opt v with
                | Some n when n >= 0 -> Ok n
                | _ -> Error (Printf.sprintf "fault spec: %s=%S not a count" key v)
              in
              let update =
                match key with
                | "drop" -> Result.map (fun f -> { acc with p_drop = f }) (fl ())
                | "corrupt" -> Result.map (fun f -> { acc with p_corrupt = f }) (fl ())
                | "trunc" | "truncate" ->
                    Result.map (fun f -> { acc with p_truncate = f }) (fl ())
                | "dup" | "duplicate" ->
                    Result.map (fun f -> { acc with p_duplicate = f }) (fl ())
                | "disc" | "disconnect" ->
                    Result.map
                      (fun f ->
                        {
                          acc with
                          p_disconnect = f;
                          max_disconnects = max acc.max_disconnects 3;
                        })
                      (fl ())
                | "disc-after" ->
                    Result.map
                      (fun n ->
                        {
                          acc with
                          disconnect_after = Some n;
                          max_disconnects = max acc.max_disconnects 1;
                        })
                      (it ())
                | "max-disc" ->
                    Result.map (fun n -> { acc with max_disconnects = n }) (it ())
                | _ -> Error (Printf.sprintf "fault spec: unknown key %S" key)
              in
              match update with
              | Ok acc -> loop acc rest
              | Error _ as e -> e))
    in
    loop none parts

let pp_stats ppf s =
  Format.fprintf ppf
    "faults: %d transmissions, %d dropped, %d corrupted, %d truncated, %d \
     duplicated, %d disconnects"
    s.transmissions s.dropped s.corrupted s.truncated s.duplicated
    s.disconnects
