exception Closed

exception Oversized of int

(* 4-byte big-endian length prefix; one frame per logical message. *)
let header_bytes = 4

let max_frame = 1 lsl 28 (* 256 MB: nothing in the protocol comes close *)

type endpoint = {
  write_fd : Unix.file_descr;
  read_fd : Unix.file_descr;
  mutable pending : string; (* bytes read but not yet framed out *)
}

type t = {
  ch : Channel.t;
  c2s : endpoint;
  s2c : endpoint;
  single : bool; (* both endpoints are the same record (one fd) *)
  owned : Unix.file_descr list;
  mutable closed : bool;
}

let endpoint t = function
  | Channel.Client_to_server -> t.c2s
  | Channel.Server_to_client -> t.s2c

(* ---- byte-level plumbing ---- *)

let be32_put len =
  let b = Bytes.create header_bytes in
  Bytes.set b 0 (Char.chr ((len lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((len lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((len lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (len land 0xff));
  b

let be32_get s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

(* Read whatever is available right now without blocking; true iff the
   peer has closed its end. *)
let drain_into ep =
  let chunk_len = 65536 in
  let chunk = Bytes.create chunk_len in
  let rec loop () =
    match Unix.read ep.read_fd chunk 0 chunk_len with
    | 0 -> true
    | n ->
        ep.pending <- ep.pending ^ Bytes.sub_string chunk 0 n;
        loop ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> true
  in
  loop ()

let frame_len_opt ep =
  let n = String.length ep.pending in
  if n < header_bytes then None
  else
    let len = be32_get ep.pending 0 in
    if len > max_frame then raise (Oversized len) else Some len

let read_frame ep =
  match frame_len_opt ep with
  | None -> None
  | Some len ->
      let n = String.length ep.pending in
      if n < header_bytes + len then None
      else begin
        let payload = String.sub ep.pending header_bytes len in
        ep.pending <-
          String.sub ep.pending (header_bytes + len)
            (n - header_bytes - len);
        Some payload
      end

let has_frame ep =
  match frame_len_opt ep with
  | None -> false
  | Some len -> String.length ep.pending >= header_bytes + len

let write_frame t ep payload =
  let len = String.length payload in
  if len > max_frame then raise (Oversized len);
  let data = Bytes.cat (be32_put len) (Bytes.of_string payload) in
  let total = Bytes.length data in
  let pos = ref 0 in
  while !pos < total do
    match Unix.write ep.write_fd data !pos (total - !pos) with
    | n -> pos := !pos + n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        (* The kernel buffer is full.  In single-process (socketpair)
           use the reader lives in this very process, so drain both
           inbound buffers while we wait — otherwise a large in-flight
           payload deadlocks against our own unread data. *)
        ignore (drain_into t.c2s);
        if not t.single then ignore (drain_into t.s2c);
        (match Unix.select [] [ ep.write_fd ] [] 0.05 with
        | _ -> ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception
        Unix.Unix_error
          ((Unix.EPIPE | Unix.ECONNRESET | Unix.ENOTCONN), _, _) ->
        raise Closed
  done

(* ---- the session layer installed on the channel ---- *)

let session_send t ~label dir payload =
  if t.closed then raise Closed;
  List.iter
    (fun tx ->
      match tx with
      | Channel.Delivered p ->
          write_frame t (endpoint t dir) p;
          Channel.note t.ch ~label dir (String.length p + header_bytes)
      | Channel.Lost n ->
          (* Dropped on the simulated wire: the bytes never reach the fd
             but the sender still paid for them. *)
          Channel.note t.ch ~label dir (n + header_bytes))
    (Channel.apply_wire_hook t.ch dir payload)

let session_recv t dir =
  if t.closed then raise Closed;
  let ep = endpoint t dir in
  (* On a single-fd transport this process is one peer and the frames it
     receives were sent by the other, so they must be accounted here for
     the channel's byte/round-trip bookkeeping to cover both directions.
     On a socketpair both peers share this very channel and the send
     side already accounted every frame. *)
  let noted f =
    (match f with
    | Some p when t.single ->
        Channel.note t.ch dir (String.length p + header_bytes)
    | Some _ | None -> ());
    f
  in
  match read_frame ep with
  | Some _ as f -> noted f
  | None ->
      let eof = drain_into ep in
      let f = read_frame ep in
      (match f with
      | Some _ -> noted f
      | None -> if eof then raise Closed else None)

let make ~latency_s ~bandwidth_bps ~c2s ~s2c ~single ~owned =
  let ch = Channel.create ?latency_s ?bandwidth_bps () in
  let t = { ch; c2s; s2c; single; owned; closed = false } in
  List.iter (fun fd -> Unix.set_nonblock fd) owned;
  Channel.set_session ch
    ~send:(fun _ ~label dir payload -> session_send t ~label dir payload)
    ~recv:(fun _ dir -> session_recv t dir);
  t

let of_socketpair ?latency_s ?bandwidth_bps () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (* [a] is the client's end, [b] the server's: client-to-server frames
     enter at [a] and leave at [b], and symmetrically. *)
  let c2s = { write_fd = a; read_fd = b; pending = "" } in
  let s2c = { write_fd = b; read_fd = a; pending = "" } in
  make ~latency_s ~bandwidth_bps ~c2s ~s2c ~single:false ~owned:[ a; b ]

let of_fd ?latency_s ?bandwidth_bps fd =
  let ep = { write_fd = fd; read_fd = fd; pending = "" } in
  make ~latency_s ~bandwidth_bps ~c2s:ep ~s2c:ep ~single:true ~owned:[ fd ]

let channel t = t.ch

let wait_readable t dir ~timeout_s =
  let ep = endpoint t dir in
  if has_frame ep then true
  else
    match Unix.select [ ep.read_fd ] [] [] timeout_s with
    | [], _, _ -> false
    | _ -> true
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> false

let close t =
  if not t.closed then begin
    t.closed <- true;
    List.iter
      (fun fd -> match Unix.close fd with () -> () | exception Unix.Unix_error _ -> ())
      t.owned
  end
