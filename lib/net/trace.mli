(** Human-readable rendering of a channel transcript.

    Turns the message log of a protocol run into the kind of timeline
    Figure 5.2 of the paper draws: one line per message with direction,
    label and size, grouped into round trips. *)

val render : Channel.t -> string
(** Timeline of everything sent so far. *)

val print : Channel.t -> unit

val summary_by_label : Channel.t -> (string * int * int) list
(** Aggregated (label, message count, total bytes), sorted by bytes
    descending (ties broken by label, ascending) — where did the budget
    go? *)

val set_log_sink : (string -> unit) option -> unit
(** Install (or remove) the process-wide log sink used by {!log}.
    Library code must not write to the console (lint rule R3); the
    daemon and other long-running components format their diagnostics
    through {!log} and the binary decides where each line goes —
    stderr, a file, or (the default) nowhere. *)

val log : ('a, unit, string, unit) format4 -> 'a
(** Format a diagnostic line and hand it to the installed sink; free
    when no sink is installed. *)

val bytes_with_prefix : Channel.t -> string -> int * int
(** [(c2s, s2c)] bytes of every message whose label starts with the
    prefix — e.g. ["recon:"] isolates the metadata-reconciliation phase
    of a collection sync from the per-file transfers that share the
    channel. *)
