(** Human-readable rendering of a channel transcript.

    Turns the message log of a protocol run into the kind of timeline
    Figure 5.2 of the paper draws: one line per message with direction,
    label and size, grouped into round trips. *)

val render : Channel.t -> string
(** Timeline of everything sent so far. *)

val print : Channel.t -> unit

val summary_by_label : Channel.t -> (string * int * int) list
(** Aggregated (label, message count, total bytes), sorted by bytes
    descending (ties broken by label, ascending) — where did the budget
    go? *)

val bytes_with_prefix : Channel.t -> string -> int * int
(** [(c2s, s2c)] bytes of every message whose label starts with the
    prefix — e.g. ["recon:"] isolates the metadata-reconciliation phase
    of a collection sync from the per-file transfers that share the
    channel. *)
