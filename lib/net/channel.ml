type direction = Client_to_server | Server_to_client

type t = {
  latency_s : float;
  bandwidth_bps : float;
  mutable c2s_bytes : int;
  mutable s2c_bytes : int;
  mutable n_messages : int;
  mutable last_direction : direction option;
  mutable alternations : int;
  c2s_queue : string Queue.t;
  s2c_queue : string Queue.t;
  mutable log : (direction * string * int) list; (* reversed *)
}

let create ?(latency_s = 0.05) ?(bandwidth_bps = 1_000_000.0) () =
  {
    latency_s;
    bandwidth_bps;
    c2s_bytes = 0;
    s2c_bytes = 0;
    n_messages = 0;
    last_direction = None;
    alternations = 0;
    c2s_queue = Queue.create ();
    s2c_queue = Queue.create ();
    log = [];
  }

let send t ?(label = "") dir payload =
  let len = String.length payload in
  (match dir with
  | Client_to_server ->
      t.c2s_bytes <- t.c2s_bytes + len;
      Queue.add payload t.c2s_queue
  | Server_to_client ->
      t.s2c_bytes <- t.s2c_bytes + len;
      Queue.add payload t.s2c_queue);
  t.n_messages <- t.n_messages + 1;
  (match t.last_direction with
  | Some d when d <> dir -> t.alternations <- t.alternations + 1
  | _ -> ());
  t.last_direction <- Some dir;
  t.log <- (dir, label, len) :: t.log

let recv t dir =
  let q =
    match dir with
    | Client_to_server -> t.c2s_queue
    | Server_to_client -> t.s2c_queue
  in
  if Queue.is_empty q then invalid_arg "Channel.recv: no pending message";
  Queue.pop q

let bytes t = function
  | Client_to_server -> t.c2s_bytes
  | Server_to_client -> t.s2c_bytes

let total_bytes t = t.c2s_bytes + t.s2c_bytes

let messages t = t.n_messages

let roundtrips t = (t.alternations + 1) / 2

let elapsed_s t =
  (2.0 *. t.latency_s *. float_of_int (roundtrips t))
  +. (float_of_int (total_bytes t) /. (t.bandwidth_bps /. 8.0))

let transcript t = List.rev t.log

let reset t =
  t.c2s_bytes <- 0;
  t.s2c_bytes <- 0;
  t.n_messages <- 0;
  t.last_direction <- None;
  t.alternations <- 0;
  Queue.clear t.c2s_queue;
  Queue.clear t.s2c_queue;
  t.log <- []
