module Scope = Fsync_obs.Scope

type direction = Client_to_server | Server_to_client

let equal_direction a b =
  match (a, b) with
  | Client_to_server, Client_to_server | Server_to_client, Server_to_client ->
      true
  | (Client_to_server | Server_to_client), _ -> false

type transmission = Delivered of string | Lost of int

type t = {
  latency_s : float;
  bandwidth_bps : float;
  mutable c2s_bytes : int;
  mutable s2c_bytes : int;
  mutable n_messages : int;
  mutable last_direction : direction option;
  mutable alternations : int;
  c2s_queue : string Queue.t;
  s2c_queue : string Queue.t;
  mutable log : (direction * string * int) list; (* reversed *)
  (* Wire-level transform applied to every transmission (fault
     injection lives here); [None] is the perfect lossless link. *)
  mutable wire_hook : (direction -> string -> transmission list) option;
  (* Session layer (framing / retransmission).  When set, the public
     [send]/[recv_opt] dispatch through these instead of the raw
     queue operations, so protocol drivers run unmodified on top of a
     session layer they never see. *)
  mutable session_send : (t -> label:string -> direction -> string -> unit) option;
  mutable session_recv : (t -> direction -> string option) option;
  (* Observability: a disabled scope costs one branch per account. *)
  mutable scope : Scope.t;
}

let create ?(latency_s = 0.05) ?(bandwidth_bps = 1_000_000.0) () =
  {
    latency_s;
    bandwidth_bps;
    c2s_bytes = 0;
    s2c_bytes = 0;
    n_messages = 0;
    last_direction = None;
    alternations = 0;
    c2s_queue = Queue.create ();
    s2c_queue = Queue.create ();
    log = [];
    wire_hook = None;
    session_send = None;
    session_recv = None;
    scope = Scope.disabled;
  }

let account t dir label len =
  (match dir with
  | Client_to_server ->
      t.c2s_bytes <- t.c2s_bytes + len;
      Scope.add t.scope "channel_bytes_c2s" len
  | Server_to_client ->
      t.s2c_bytes <- t.s2c_bytes + len;
      Scope.add t.scope "channel_bytes_s2c" len);
  Scope.incr t.scope "channel_messages";
  t.n_messages <- t.n_messages + 1;
  (match t.last_direction with
  | Some d when not (equal_direction d dir) -> t.alternations <- t.alternations + 1
  | _ -> ());
  t.last_direction <- Some dir;
  t.log <- (dir, label, len) :: t.log

let queue_of t = function
  | Client_to_server -> t.c2s_queue
  | Server_to_client -> t.s2c_queue

let note t ?(label = "") dir len = account t dir label len

let apply_wire_hook t dir payload =
  match t.wire_hook with
  | None -> [ Delivered payload ]
  | Some hook -> hook dir payload

let raw_send t ?(label = "") dir payload =
  let transmissions = apply_wire_hook t dir payload in
  List.iter
    (fun tx ->
      match tx with
      | Delivered p ->
          account t dir label (String.length p);
          Queue.add p (queue_of t dir)
      | Lost n ->
          (* The bytes crossed the sender's link even though nothing
             arrives: lost traffic is part of the true cost. *)
          account t dir label n)
    transmissions

let raw_recv_opt t dir =
  let q = queue_of t dir in
  if Queue.is_empty q then None else Some (Queue.pop q)

let send t ?(label = "") dir payload =
  match t.session_send with
  | Some f -> f t ~label dir payload
  | None -> raw_send t ~label dir payload

let recv_opt t dir =
  match t.session_recv with
  | Some f -> f t dir
  | None -> raw_recv_opt t dir

let set_wire_hook t hook = t.wire_hook <- hook

let set_scope t scope = t.scope <- scope

let set_session t ~send ~recv =
  t.session_send <- Some send;
  t.session_recv <- Some recv

let clear_session t =
  t.session_send <- None;
  t.session_recv <- None

let bytes t = function
  | Client_to_server -> t.c2s_bytes
  | Server_to_client -> t.s2c_bytes

let total_bytes t = t.c2s_bytes + t.s2c_bytes

let messages t = t.n_messages

let roundtrips t = (t.alternations + 1) / 2

let elapsed_s t =
  (2.0 *. t.latency_s *. float_of_int (roundtrips t))
  +. (float_of_int (total_bytes t) /. (t.bandwidth_bps /. 8.0))

let transcript t = List.rev t.log

let reset t =
  t.c2s_bytes <- 0;
  t.s2c_bytes <- 0;
  t.n_messages <- 0;
  t.last_direction <- None;
  t.alternations <- 0;
  Queue.clear t.c2s_queue;
  Queue.clear t.s2c_queue;
  t.log <- []
