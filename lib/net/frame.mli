(** Reliable session layer: CRC-checked, sequence-numbered frames with
    NAK/retransmit over a lossy {!Channel}.

    [attach] installs the layer on a channel's session hooks, so every
    protocol driver that holds the channel transparently gains
    reliability: each [Channel.send] wraps the payload in a frame
    [varint seq ‖ CRC-32(seq ‖ payload) ‖ payload], and each
    [Channel.recv_opt] verifies, reorders, deduplicates and — when a
    frame is missing or fails its CRC — issues a NAK and replays the
    frame from the sender's retransmission history, under a bounded
    exponential-backoff retry budget.

    All reliability traffic is charged to the channel: frame headers and
    retransmitted frames as bytes in the data direction, NAKs as control
    bytes (and a round-trip alternation) in the reverse direction, and
    the accumulated backoff as simulated seconds in {!stats}.  Benchmarks
    over a framed channel therefore show the {e true} cost of running
    the protocol reliably.

    The layer is Selective-Repeat-shaped: only the missing frame is
    retransmitted; frames received past a gap are stashed and delivered
    in order once the gap closes.  A CRC-32 collision (≈2⁻³²) can let a
    corrupted frame through — the collection driver's end-to-end strong
    fingerprints are the backstop for that residual risk. *)

type config = {
  max_retries : int;      (** NAKs per missing frame before giving up *)
  backoff_base_s : float; (** first retry delay (simulated) *)
  backoff_max_s : float;  (** backoff cap *)
}

val default_config : config
(** 16 retries, 50 ms base, 2 s cap. *)

type error =
  | Retry_exhausted of { direction : Channel.direction; seq : int; attempts : int }

exception Failed of error
(** Raised out of [Channel.recv_opt] when the retry budget for a frame
    is exhausted.  {!Fsync_core.Error.guard} converts it to a typed
    error. *)

val error_message : error -> string

type stats = {
  frames : int;          (** data frames first put on the wire *)
  retransmits : int;
  naks : int;
  dup_discards : int;
  bad_frames : int;      (** CRC or header failures detected *)
  overhead_bytes : int;  (** headers + NAKs + retransmitted frames *)
  backoff_s : float;     (** simulated retry backoff time *)
}

type t

val attach : ?config:config -> ?scope:Fsync_obs.Scope.t -> Channel.t -> t
(** Install the session layer.  Composes with {!Fault}: faults apply at
    the wire level underneath the framing, which is exactly what the
    framing exists to survive.  When [scope] is enabled, the layer bumps
    the [frame_naks] / [frame_retransmits] / [frame_bad] / [frame_dups]
    counters as reliability events occur. *)

val detach : t -> unit

val resync : t -> unit
(** Abandon all in-flight traffic after an aborted exchange or a
    reconnect: drop queued frames, clear retransmission history, and
    realign receiver sequence expectations.  Without this, a retried
    exchange could be answered with stale frames from the abandoned
    one. *)

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
