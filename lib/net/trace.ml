let render ch =
  let buf = Buffer.create 1024 in
  let trip = ref 0 in
  let last_dir = ref None in
  List.iter
    (fun (dir, label, size) ->
      (* A client->server message after server->client traffic opens a new
         round trip, mirroring Channel's round-trip accounting. *)
      (match (!last_dir, dir) with
      | (None | Some Channel.Server_to_client), Channel.Client_to_server ->
          incr trip;
          Buffer.add_string buf (Printf.sprintf "-- round trip %d --\n" !trip)
      | _ -> ());
      last_dir := Some dir;
      let arrow =
        match dir with
        | Channel.Client_to_server -> "client --> server"
        | Channel.Server_to_client -> "client <-- server"
      in
      Buffer.add_string buf
        (Printf.sprintf "  %s  %-16s %6d B\n" arrow
           (if String.equal label "" then "(unlabelled)" else label)
           size))
    (Channel.transcript ch);
  Buffer.add_string buf
    (Printf.sprintf "total: %d B up, %d B down, %d round trips\n"
       (Channel.bytes ch Channel.Client_to_server)
       (Channel.bytes ch Channel.Server_to_client)
       (Channel.roundtrips ch));
  Buffer.contents buf

(* The one sanctioned console sink for library code: everything else
   routes its reporting through [render]/[summary_by_label] and lets the
   binary decide where it goes (R3). *)
let print ch = (print_string (render ch) [@fsynlint.allow "r3"])

let summary_by_label ch =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (_, label, size) ->
      let count, bytes =
        match Hashtbl.find_opt tbl label with Some v -> v | None -> (0, 0)
      in
      Hashtbl.replace tbl label (count + 1, bytes + size))
    (Channel.transcript ch);
  Hashtbl.fold (fun label (count, bytes) acc -> (label, count, bytes) :: acc) tbl []
  |> List.sort (fun (la, _, a) (lb, _, b) ->
         match Int.compare b a with 0 -> String.compare la lb | c -> c)

(* ---- log sink ----

   Library code (in particular the {!Fsync_server} daemon) never touches
   the console (R3); it reports through this sink, and the binary decides
   where lines go (stderr, a file, nowhere). *)

let log_sink : (string -> unit) option ref = ref None

let set_log_sink sink = log_sink := sink

let log fmt =
  Printf.ksprintf
    (fun line -> match !log_sink with None -> () | Some sink -> sink line)
    fmt

let bytes_with_prefix ch prefix =
  List.fold_left
    (fun (c2s, s2c) (dir, label, size) ->
      if String.starts_with ~prefix label then
        match dir with
        | Channel.Client_to_server -> (c2s + size, s2c)
        | Channel.Server_to_client -> (c2s, s2c + size)
      else (c2s, s2c))
    (0, 0) (Channel.transcript ch)
