module Fp = Fsync_hash.Fingerprint

type verdict = Ours | Theirs

type policy = path:string -> ours:Replica.entry -> theirs:Replica.entry -> verdict

let default ~path:_ ~(ours : Replica.entry) ~(theirs : Replica.entry) =
  let c = String.compare (Fp.to_raw ours.fp) (Fp.to_raw theirs.fp) in
  if c > 0 then Ours
  else if c < 0 then Theirs
  else if String.compare ours.author theirs.author >= 0 then Ours
  else Theirs

let prefer_author peer ~path ~(ours : Replica.entry) ~(theirs : Replica.entry) =
  match (String.equal ours.author peer, String.equal theirs.author peer) with
  | true, false -> Ours
  | false, true -> Theirs
  | true, true | false, false -> default ~path ~ours ~theirs
