module Error = Fsync_core.Error
module Scope = Fsync_obs.Scope
module Msg = Fsync_server.Msg
module Handshake = Fsync_server.Handshake

type outcome = {
  peer : string;
  had_entry : bool;
  pulled : int;
  installed : int;
  conflict : bool;
}

type phase =
  | Expect_welcome
  | Expect_greet
  | Expect_table
  | Pulling
  | Expect_bye
  | Done
  | Failed

type t = {
  replica : Replica.t;
  policy : Resolve.policy;
  scope : Scope.t;
  path : string;
  config : Msg.sync_config ref;
  fetch : Fetch_plan.t;
  mutable peer_id : string option;
  mutable installs : Plan.install list;
  mutable had_entry : bool;
  mutable conflict : bool;
  mutable applied : int;
  mutable phase : phase;
}

let create ?(policy = Resolve.default) ?(scope = Scope.disabled) replica ~path =
  if not (Replica.valid_path path) then
    Error.malformed "Repair: invalid path %S" path;
  let config = ref Msg.default_sync_config in
  {
    replica;
    policy;
    scope;
    path;
    config;
    fetch = Fetch_plan.create ~config:(fun () -> !config) replica;
    peer_id = None;
    installs = [];
    had_entry = false;
    conflict = false;
    applied = 0;
    phase = Expect_welcome;
  }

let finished t = match t.phase with Done -> true | _ -> false
let failed t = match t.phase with Failed -> true | _ -> false
let peer_id t = t.peer_id

let outcome t =
  {
    peer = (match t.peer_id with Some p -> p | None -> "?");
    had_entry = t.had_entry;
    pulled = Fetch_plan.count t.fetch;
    installed = t.applied;
    conflict = t.conflict;
  }

let encode_all t msgs = List.map (Msg.encode ~config:!(t.config)) msgs

let start t =
  encode_all t
    [
      Handshake.hello
        ~swarm:
          {
            Msg.peer = Replica.peer t.replica;
            summary = Replica.summary t.replica;
          }
        ();
    ]

let finish_pull t =
  t.phase <- Expect_bye;
  [ Msg.Swarm_end ]

let after_fetch t =
  match Fetch_plan.advance t.fetch with
  | `Msgs ms -> ms
  | `Drained -> finish_pull t

let apply t =
  let resolved =
    List.map
      (fun (i : Plan.install) ->
        let content =
          match i.source with
          | Plan.Absent -> None
          | Plan.Local p -> (
              match Replica.content t.replica p with
              | Some _ as s -> s
              | None -> Error.malformed "Repair: local source %s vanished" p)
          | Plan.Remote _ -> (
              match Fetch_plan.pulled t.fetch i.dest with
              | Some _ as s -> s
              | None ->
                  Error.fail
                    (Error.Disconnected
                       (Printf.sprintf
                          "Repair: peer never delivered content for %s" i.dest)))
        in
        (i, content))
      t.installs
  in
  List.iter
    (fun ((i : Plan.install), content) ->
      Replica.install t.replica ~path:i.dest i.entry content)
    resolved;
  if not (Int.equal (List.length resolved) 0) then Replica.flush t.replica;
  t.applied <- List.length resolved;
  Scope.add t.scope "repair_pulls" (Fetch_plan.count t.fetch)

let on_message t raw =
  let msg = Msg.decode ~config:!(t.config) raw in
  let dispatch () =
    match (t.phase, msg) with
    | Expect_welcome, Msg.Welcome { version; config; _ } ->
        Handshake.check_version ~who:"Repair" version;
        if version < 3 then
          Error.malformed
            "Repair: peer answered at rev %d, read-repair needs rev 3" version;
        t.config := config;
        t.phase <- Expect_greet;
        []
    | Expect_welcome, Msg.Busy { retry_after_ms } ->
        Handshake.reject_busy ~retry_after_ms
    | Expect_greet, Msg.Swarm_recon body -> (
        match Swarm_wire.decode_recon body with
        | Swarm_wire.Greet { peer; root = _ } ->
            t.peer_id <- Some peer;
            t.phase <- Expect_table;
            [ Msg.Swarm_query (Swarm_wire.encode_query t.path) ]
        | Swarm_wire.Queries _ | Swarm_wire.Answers _ ->
            Error.malformed "Repair: expected the recon greeting")
    | Expect_table, Msg.Swarm_table body -> (
        let theirs =
          match Swarm_wire.decode_table body with
          | [ (p, theirs) ] when String.equal p t.path -> theirs
          | _ ->
              Error.malformed "Repair: probe answer does not match %s" t.path
        in
        t.had_entry <- Option.is_some theirs;
        let ours = Replica.find t.replica t.path in
        let o = Plan.decide ~policy:t.policy ~path:t.path ~ours ~theirs () in
        if o.Plan.conflict then begin
          t.conflict <- true;
          Scope.incr t.scope "conflicts_detected"
        end;
        t.installs <- o.Plan.installs;
        Fetch_plan.enqueue t.fetch t.installs;
        match Fetch_plan.advance t.fetch with
        | `Msgs ms ->
            t.phase <- Pulling;
            ms
        | `Drained -> finish_pull t)
    | Pulling, Msg.File_begin { path; new_len; fp } ->
        Fetch_plan.on_begin t.fetch ~path ~new_len ~fp
    | Pulling, Msg.Hashes hs -> Fetch_plan.on_hashes t.fetch hs
    | Pulling, Msg.Tail z -> (
        match Fetch_plan.on_tail t.fetch z with
        | `Done, replies -> replies @ after_fetch t
        | `Wait, replies -> replies)
    | Pulling, Msg.Full body ->
        let replies = Fetch_plan.on_full t.fetch body in
        replies @ after_fetch t
    | Expect_bye, Msg.Bye _ ->
        (* The roots legitimately differ — only [path] was repaired. *)
        apply t;
        t.phase <- Done;
        []
    | _, Msg.Error_msg m ->
        t.phase <- Failed;
        Error.fail
          (Error.Disconnected (Printf.sprintf "Repair: peer error: %s" m))
    | _, other ->
        t.phase <- Failed;
        Error.malformed "Repair: unexpected %s" (Msg.label other)
  in
  let replies =
    try dispatch ()
    with e ->
      (match t.phase with Done -> () | _ -> t.phase <- Failed);
      raise e
  in
  encode_all t replies
