module Fp = Fsync_hash.Fingerprint
module Error = Fsync_core.Error
module Varint = Fsync_util.Varint
module Merkle = Fsync_reconcile.Merkle

type query = { range : Merkle.range; digest : string }

type answer =
  | Equal of Merkle.range
  | Leaves of Merkle.range * (string * Fp.t) list
  | Descend of Merkle.range * query list

type recon =
  | Greet of { peer : string; root : string }
  | Queries of query list
  | Answers of answer list

let digest_bytes = 16

(* ---- primitives ---- *)

let read_varint msg ~pos what =
  match Varint.read msg ~pos with
  | v -> v
  | exception Invalid_argument _ ->
      Error.truncated "Swarm_wire: bad varint in %s" what

let put_string b s =
  Varint.write b (String.length s);
  Buffer.add_string b s

let get_string msg ~pos what =
  let len, p = read_varint msg ~pos what in
  if len < 0 || p + len > String.length msg then
    Error.truncated "Swarm_wire: %s of %d bytes overruns" what len;
  (String.sub msg p len, p + len)

let put_digest b d =
  if not (Int.equal (String.length d) digest_bytes) then
    Error.malformed "Swarm_wire: digest of %d bytes" (String.length d);
  Buffer.add_string b d

let get_digest msg ~pos what =
  if pos + digest_bytes > String.length msg then
    Error.truncated "Swarm_wire: %s digest overruns" what;
  (String.sub msg pos digest_bytes, pos + digest_bytes)

let put_range b (r : Merkle.range) =
  Varint.write b r.lo;
  Varint.write b r.size

let get_range msg ~pos =
  let lo, pos = read_varint msg ~pos "range lo" in
  let size, pos = read_varint msg ~pos "range size" in
  if lo < 0 || size <= 0 then
    Error.malformed "Swarm_wire: range [%d, %d)" lo size;
  (({ lo; size } : Merkle.range), pos)

let put_query b { range; digest } =
  put_range b range;
  put_digest b digest

let get_query msg ~pos =
  let range, pos = get_range msg ~pos in
  let digest, pos = get_digest msg ~pos "query" in
  ({ range; digest }, pos)

let put_queries b qs =
  Varint.write b (List.length qs);
  List.iter (put_query b) qs

let get_queries msg ~pos =
  let count, pos = read_varint msg ~pos "query count" in
  if count < 0 || count > (String.length msg - pos) / (2 + digest_bytes) then
    Error.truncated "Swarm_wire: %d queries overrun %d bytes" count
      (String.length msg);
  let pos = ref pos in
  let qs =
    List.init count (fun _ ->
        let q, p = get_query msg ~pos:!pos in
        pos := p;
        q)
  in
  (qs, !pos)

(* ---- recon ---- *)

let encode_recon r =
  let b = Buffer.create 128 in
  (match r with
  | Greet { peer; root } ->
      Buffer.add_char b 'H';
      put_string b peer;
      put_digest b root
  | Queries qs ->
      Buffer.add_char b 'Q';
      put_queries b qs
  | Answers answers ->
      Buffer.add_char b 'R';
      Varint.write b (List.length answers);
      List.iter
        (fun a ->
          match a with
          | Equal r ->
              Buffer.add_char b '\000';
              put_range b r
          | Leaves (r, leaves) ->
              Buffer.add_char b '\001';
              put_range b r;
              Varint.write b (List.length leaves);
              List.iter
                (fun (path, d) ->
                  put_string b path;
                  Buffer.add_string b (Fp.to_raw d))
                leaves
          | Descend (r, children) ->
              Buffer.add_char b '\002';
              put_range b r;
              put_queries b children)
        answers);
  Buffer.contents b

let get_leaves msg ~pos =
  let count, pos = read_varint msg ~pos "leaf count" in
  if count < 0 || count > (String.length msg - pos) / (1 + digest_bytes) then
    Error.truncated "Swarm_wire: %d leaves overrun %d bytes" count
      (String.length msg);
  let pos = ref pos in
  let leaves =
    List.init count (fun _ ->
        let path, p = get_string msg ~pos:!pos "leaf path" in
        let d, p = get_digest msg ~pos:p "leaf" in
        pos := p;
        (path, Fp.of_raw d))
  in
  (leaves, !pos)

let decode_recon msg =
  if String.equal msg "" then Error.truncated "Swarm_wire: empty recon body";
  let pos = 1 in
  match msg.[0] with
  | 'H' ->
      let peer, pos = get_string msg ~pos "greet peer" in
      let root, _ = get_digest msg ~pos "greet root" in
      Greet { peer; root }
  | 'Q' ->
      let qs, _ = get_queries msg ~pos in
      Queries qs
  | 'R' ->
      let count, pos = read_varint msg ~pos "answer count" in
      if count < 0 || count > (String.length msg - pos) / 3 then
        Error.truncated "Swarm_wire: %d answers overrun %d bytes" count
          (String.length msg);
      let pos = ref pos in
      let answers =
        List.init count (fun _ ->
            if !pos >= String.length msg then
              Error.truncated "Swarm_wire: answer kind overruns";
            let kind = msg.[!pos] in
            let p = !pos + 1 in
            match kind with
            | '\000' ->
                let r, p = get_range msg ~pos:p in
                pos := p;
                Equal r
            | '\001' ->
                let r, p = get_range msg ~pos:p in
                let leaves, p = get_leaves msg ~pos:p in
                pos := p;
                Leaves (r, leaves)
            | '\002' ->
                let r, p = get_range msg ~pos:p in
                let children, p = get_queries msg ~pos:p in
                pos := p;
                Descend (r, children)
            | c -> Error.malformed "Swarm_wire: answer kind %C" c)
      in
      Answers answers
  | c -> Error.malformed "Swarm_wire: recon kind %C" c

(* ---- entry table ---- *)

let encode_table entries =
  let b = Buffer.create 256 in
  Varint.write b (List.length entries);
  List.iter
    (fun (path, e) ->
      put_string b path;
      match e with
      | None -> Buffer.add_char b '\000'
      | Some e ->
          Buffer.add_char b '\001';
          Replica.put_entry b e)
    entries;
  Buffer.contents b

let decode_table msg =
  let count, pos = read_varint msg ~pos:0 "table count" in
  if count < 0 || count > (String.length msg - pos) / 2 then
    Error.truncated "Swarm_wire: %d table entries overrun %d bytes" count
      (String.length msg);
  let pos = ref pos in
  List.init count (fun _ ->
      let path, p = get_string msg ~pos:!pos "table path" in
      if p >= String.length msg then
        Error.truncated "Swarm_wire: table marker overruns";
      match msg.[p] with
      | '\000' ->
          pos := p + 1;
          (path, None)
      | '\001' ->
          let e, p = Replica.get_entry msg ~pos:(p + 1) in
          pos := p;
          (path, Some e)
      | c -> Error.malformed "Swarm_wire: table marker %C" c)

(* ---- fetch / query ---- *)

type fetch = { path : string; has_old : bool }

let encode_fetch { path; has_old } =
  let b = Buffer.create 64 in
  put_string b path;
  Buffer.add_char b (if has_old then '\001' else '\000');
  Buffer.contents b

let decode_fetch msg =
  let path, pos = get_string msg ~pos:0 "fetch path" in
  if pos >= String.length msg then
    Error.truncated "Swarm_wire: fetch flag overruns";
  { path; has_old = Char.equal msg.[pos] '\001' }

let encode_query path =
  let b = Buffer.create 64 in
  put_string b path;
  Buffer.contents b

let decode_query msg =
  let path, _ = get_string msg ~pos:0 "query path" in
  path
