module Error = Fsync_core.Error
module Msg = Fsync_server.Msg
module Fetch_file = Fsync_server.Fetch_file
module Meta_wire = Fsync_collection.Meta_wire

type t = {
  replica : Replica.t;
  counters : Fetch_file.counters;
  config : unit -> Msg.sync_config;
  mutable queue : Plan.install list;
  mutable current : (Plan.install * Fetch_file.t option) option;
  pulled : (string, string) Hashtbl.t; (* dest -> fetched content *)
}

let create ~config replica =
  {
    replica;
    counters = Fetch_file.fresh_counters ();
    config;
    queue = [];
    current = None;
    pulled = Hashtbl.create 16;
  }

let src_of (i : Plan.install) =
  match i.source with
  | Plan.Remote p -> p
  | Plan.Local _ | Plan.Absent ->
      Error.malformed "Fetch_plan: fetch of a non-remote install"

let enqueue t installs =
  t.queue <-
    t.queue
    @ List.filter
        (fun (i : Plan.install) ->
          match i.source with
          | Plan.Remote _ -> true
          | Plan.Local _ | Plan.Absent -> false)
        installs

let advance t =
  t.current <- None;
  match t.queue with
  | [] -> `Drained
  | inst :: rest ->
      t.queue <- rest;
      t.current <- Some (inst, None);
      let src = src_of inst in
      let has_old =
        Option.is_some (Replica.content t.replica inst.Plan.dest)
        || Option.is_some (Replica.content t.replica src)
      in
      `Msgs
        [ Msg.Swarm_fetch (Swarm_wire.encode_fetch { path = src; has_old }) ]

let current t =
  match t.current with
  | Some cur -> cur
  | None -> Error.malformed "Fetch_plan: file message outside a fetch"

let on_begin t ~path ~new_len ~fp =
  match current t with
  | _, Some _ -> Error.malformed "Fetch_plan: nested File_begin"
  | inst, None ->
      let src = src_of inst in
      if not (String.equal path src) then
        Error.malformed "Fetch_plan: File_begin for %s, requested %s" path src;
      let old =
        match Replica.content t.replica inst.Plan.dest with
        | Some o -> o
        | None -> (
            match Replica.content t.replica src with
            | Some o -> o
            | None -> "")
      in
      t.current <-
        Some
          ( inst,
            Some
              (Fetch_file.create ~who:"Fetch_plan" ~config:(t.config ())
                 ~counters:t.counters ~path ~new_len ~fp ~old) );
      []

let on_hashes t hs =
  match current t with
  | _, Some ff -> Fetch_file.on_hashes ff hs
  | _, None -> Error.malformed "Fetch_plan: Hashes before File_begin"

let on_tail t z =
  match current t with
  | inst, Some ff -> (
      match Fetch_file.on_tail ff z with
      | `Verified content, replies ->
          Hashtbl.replace t.pulled inst.Plan.dest content;
          (`Done, replies)
      | `Mismatch, replies -> (`Wait, replies))
  | _, None -> Error.malformed "Fetch_plan: Tail before File_begin"

let on_full t body =
  let inst, _ = current t in
  let path, content = Meta_wire.decode_file_msg ~old_content:"" body in
  if not (String.equal path (src_of inst)) then
    Error.malformed "Fetch_plan: Full for %s, requested %s" path (src_of inst);
  Hashtbl.replace t.pulled inst.Plan.dest content;
  [ Msg.File_ack true ]

let pulled t dest = Hashtbl.find_opt t.pulled dest
let count t = Hashtbl.length t.pulled
