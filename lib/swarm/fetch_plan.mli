(** The fetching side of a swarm transfer phase: execute the [Remote]
    installs of a {!Plan} over the wire, one file at a time, using the
    shared per-file machinery ({!Fsync_server.Fetch_file}) — the glue
    between a plan and the [Swarm_fetch] / [File_begin] / [Hashes] /
    [Tail] / [Full] frames.  Used by both {!Gossip} (each direction of
    the transfer phase) and {!Repair}. *)

type t

val create : config:(unit -> Fsync_server.Msg.sync_config) -> Replica.t -> t
(** [config] is read at each [File_begin] so a config adopted from the
    peer's [Welcome] takes effect mid-session. *)

val enqueue : t -> Plan.install list -> unit
(** Queue the [Remote]-sourced installs of a plan ([Local] and [Absent]
    ones need no wire traffic and are skipped). *)

val advance : t -> [ `Msgs of Fsync_server.Msg.t list | `Drained ]
(** Open the next queued fetch (the [Swarm_fetch] request to send), or
    report the queue empty. *)

val on_begin :
  t ->
  path:string ->
  new_len:int ->
  fp:Fsync_hash.Fingerprint.t ->
  Fsync_server.Msg.t list

val on_hashes : t -> int array -> Fsync_server.Msg.t list

val on_tail :
  t -> string -> [ `Done | `Wait ] * Fsync_server.Msg.t list
(** [`Done] means the file verified and the caller should {!advance};
    [`Wait] means a mismatch was answered with a failed ack and the
    verified [Full] fallback is on its way. *)

val on_full : t -> string -> Fsync_server.Msg.t list
(** The fallback payload: decodes, records, returns the closing ack.
    The caller should {!advance}. *)

val pulled : t -> string -> string option
(** Fetched content by install destination, for apply time. *)

val count : t -> int
(** Files fetched so far. *)
