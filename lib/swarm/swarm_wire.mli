(** Codecs for the opaque bodies of the rev-3 swarm messages
    ([Swarm_recon] / [Swarm_table] / [Swarm_query] / [Swarm_fetch] in
    {!Fsync_server.Msg}).

    The Merkle descent is split across the wire with three recon frames:
    the responder's greeting, the initiator's batched range queries (one
    frame per tree level), and the responder's batched answers — each
    range either [Equal], expanded to its [Leaves] (path + entry
    digest), or [Descend]ed into child-range digests the initiator
    prunes locally.  All decoders are hardened: lengths and counts are
    validated before any read or allocation, and failures surface as
    typed {!Fsync_core.Error} values. *)

type query = { range : Fsync_reconcile.Merkle.range; digest : string }
(** A canonical range plus the sender's 16-byte digest of it. *)

type answer =
  | Equal of Fsync_reconcile.Merkle.range
  | Leaves of
      Fsync_reconcile.Merkle.range
      * (string * Fsync_hash.Fingerprint.t) list
      (** the responder's (path, entry-digest) leaves in the range *)
  | Descend of Fsync_reconcile.Merkle.range * query list
      (** the responder's child-range digests *)

type recon =
  | Greet of { peer : string; root : string }
      (** responder's opening: its peer id and 16-byte Merkle root *)
  | Queries of query list
  | Answers of answer list

val encode_recon : recon -> string
val decode_recon : string -> recon

val encode_table : (string * Replica.entry option) list -> string
(** Path-sorted [(path, entry)] pairs; [None] marks a path the sender
    has no entry for (an absence marker, distinct from a tombstone). *)

val decode_table : string -> (string * Replica.entry option) list

type fetch = { path : string; has_old : bool }
(** A content request: [has_old] tells the server whether hash rounds
    against the requester's old copy are worth opening. *)

val encode_fetch : fetch -> string
val decode_fetch : string -> fetch

val encode_query : string -> string
(** A read-repair entry probe: just the path. *)

val decode_query : string -> string
