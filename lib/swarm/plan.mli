(** The per-path reconciliation decision, computed identically on both
    gossip endpoints (DESIGN.md §13).

    Each endpoint calls {!decide} with the same pair of entries (its own
    under [ours], the peer's under [theirs]); because every rule is a
    pure function of that pair, the two plans are mirror images — my
    [Remote] install is the peer's serve, and the entries both sides
    record afterwards are byte-identical, which is what lets the closing
    Merkle-root check hold after a single exchange.

    Rules, in order:
    - peer has nothing / is strictly behind → nothing to do here (the
      peer's plan handles its side);
    - their vector dominates → adopt their entry (fetching content only
      if the fingerprint actually changed);
    - concurrent, same content → silent merge (vectors joined, author =
      lexicographically larger; no conflict surfaced);
    - concurrent, present vs tombstone → the present side wins with a
      merged vector — a delete never silently destroys a concurrent
      edit, and no sibling is created;
    - concurrent, different contents → a typed {e conflict}: the
      {!Resolve.policy} winner lands at the path, the loser at
      [<path>.fsync-conflict.<loser-author>], both with the merged
      vector, so the pair re-gossips as ordinary (identical) entries and
      never re-conflicts. *)

type source =
  | Local of string   (** bytes already on this side, at the given path *)
  | Remote of string  (** fetch from the peer's copy at the given path *)
  | Absent            (** a tombstone: nothing to fetch *)

type install = { dest : string; entry : Replica.entry; source : source }
(** One local outcome: record [entry] at [dest], with content from
    [source]. *)

type outcome = {
  installs : install list;  (** this side's work, dest order *)
  conflict : bool;          (** a sibling pair was surfaced *)
}

val conflict_path : path:string -> author:string -> string
(** [<path>.fsync-conflict.<author>]. *)

val is_conflict_path : string -> bool
(** True for paths naming a conflict sibling ([*.fsync-conflict.*]). *)

val decide :
  ?policy:Resolve.policy ->
  path:string ->
  ours:Replica.entry option ->
  theirs:Replica.entry option ->
  unit ->
  outcome
