module Error = Fsync_core.Error
module Varint = Fsync_util.Varint

(* Sorted by peer id, every counter positive: one value, one
   representation, so the codec is canonical. *)
type t = (string * int) list

let empty = []

let equal a b =
  List.equal
    (fun (p, m) (q, n) -> String.equal p q && Int.equal m n)
    a b

let get t peer =
  match List.find_opt (fun (p, _) -> String.equal p peer) t with
  | Some (_, n) -> n
  | None -> 0

let rec bump t peer =
  match t with
  | [] -> [ (peer, 1) ]
  | (p, n) :: rest ->
      let c = String.compare peer p in
      if c < 0 then (peer, 1) :: t
      else if c > 0 then (p, n) :: bump rest peer
      else (p, n + 1) :: rest

let rec merge a b =
  match (a, b) with
  | [], v | v, [] -> v
  | (p, m) :: ra, (q, n) :: rb ->
      let c = String.compare p q in
      if c < 0 then (p, m) :: merge ra b
      else if c > 0 then (q, n) :: merge a rb
      else (p, max m n) :: merge ra rb

(* [a >= b] pointwise: both sorted, so one linear sweep over [b]. *)
let geq a b = List.for_all (fun (p, n) -> get a p >= n) b

let dominates a b = geq a b && not (equal a b)

let concurrent a b = (not (equal a b)) && (not (geq a b)) && not (geq b a)

let of_list l =
  List.fold_left
    (fun acc (p, n) -> if n > 0 && n > get acc p then merge acc [ (p, n) ] else acc)
    empty l

let to_list t = t

let pp t =
  let b = Buffer.create 32 in
  Buffer.add_char b '{';
  List.iteri
    (fun i (p, n) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b p;
      Buffer.add_char b ':';
      Buffer.add_string b (string_of_int n))
    t;
  Buffer.add_char b '}';
  Buffer.contents b

let put_vv b t =
  Varint.write b (List.length t);
  List.iter
    (fun (p, n) ->
      Varint.write b (String.length p);
      Buffer.add_string b p;
      Varint.write b n)
    t

(* [Varint.read] raises [Invalid_argument] on truncation; fold that into
   the typed error discipline so a hostile peer cannot crash us. *)
let read_varint msg ~pos what =
  match Varint.read msg ~pos with
  | v -> v
  | exception Invalid_argument _ ->
      Error.truncated "Version_vector: bad varint in %s" what

let get_vv msg ~pos =
  let count, pos = read_varint msg ~pos "component count" in
  (* Each component is at least 2 bytes: bound the count before any
     allocation (same discipline as the Msg decoders). *)
  if count < 0 || count > (String.length msg - pos) / 2 then
    Error.truncated "Version_vector: %d components overrun %d bytes" count
      (String.length msg);
  let pos = ref pos in
  let entries =
    List.init count (fun _ ->
        let len, p = read_varint msg ~pos:!pos "peer id length" in
        if len < 0 || p + len > String.length msg then
          Error.truncated "Version_vector: peer id of %d bytes overruns" len;
        let peer = String.sub msg p len in
        let n, p = read_varint msg ~pos:(p + len) "counter" in
        if n <= 0 then
          Error.malformed "Version_vector: counter %d for peer %s" n peer;
        pos := p;
        (peer, n))
  in
  (of_list entries, !pos)
