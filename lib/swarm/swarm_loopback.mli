(** Deterministic in-process swarm harness.

    [session] runs one full gossip exchange between two replicas over an
    in-memory {!Fsync_net.Channel} — the byte-for-byte reference for the
    socket path, exactly as {!Fsync_server.Loopback.run_in_memory} is
    for pairwise pulls.  [t] scales that to K peers: every round, each
    peer initiates one session against a uniformly random partner drawn
    from a seeded {!Fsync_util.Prng}, so a K-peer swarm converges in
    O(log K) expected rounds and every run with the same seed replays
    the same schedule byte for byte. *)

type session_result = {
  initiator : Gossip.stats;
  responder : Gossip.stats;
  c2s_bytes : int;
  s2c_bytes : int;
  roundtrips : int;
}

val session :
  ?policy:Resolve.policy ->
  ?scope:Fsync_obs.Scope.t ->
  ?config:Fsync_server.Msg.sync_config ->
  initiator:Replica.t ->
  responder:Replica.t ->
  unit ->
  session_result
(** One complete gossip session; raises typed {!Fsync_core.Error}
    values on protocol failures or a stalled exchange. *)

val repair :
  ?policy:Resolve.policy ->
  ?scope:Fsync_obs.Scope.t ->
  ?config:Fsync_server.Msg.sync_config ->
  replica:Replica.t ->
  peers:Replica.t list ->
  path:string ->
  unit ->
  Repair.outcome list
(** Read-repair [path] on [replica] against each peer in order (one
    {!Repair} session per peer, each planning against the local state
    the previous one left). *)

type t

val create :
  ?seed:int64 ->
  ?scope:Fsync_obs.Scope.t ->
  ?policy:Resolve.policy ->
  Replica.t list ->
  t
(** A swarm over the given replicas (at least one). *)

val replicas : t -> Replica.t list
val converged : t -> bool
(** All Merkle summaries equal — byte-identical replicas. *)

val round : t -> unit
(** One anti-entropy round: every peer gossips with one random partner. *)

val run : ?max_rounds:int -> t -> int
(** Rounds until convergence (0 when already converged).  Raises a
    typed [Verification_failed] if [max_rounds] (default 64) passes
    without convergence, and records the count on the scope's
    [swarm_convergence_rounds] histogram otherwise. *)

val rounds : t -> int
val sessions : t -> int
val bytes : t -> int
(** Total wire bytes across all sessions, both directions. *)

val conflicts : t -> int
(** Conflict pairs surfaced across all sessions (initiator side). *)
