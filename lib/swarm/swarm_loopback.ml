module Channel = Fsync_net.Channel
module Error = Fsync_core.Error
module Scope = Fsync_obs.Scope
module Prng = Fsync_util.Prng

type session_result = {
  initiator : Gossip.stats;
  responder : Gossip.stats;
  c2s_bytes : int;
  s2c_bytes : int;
  roundtrips : int;
}

(* Pump two machines over an in-memory channel until both queues drain. *)
let pump ch ~start ~client ~server ~client_done ~what =
  let send dir m = Channel.send ch dir m in
  List.iter (send Channel.Client_to_server) start;
  let progress = ref true in
  while !progress do
    match Channel.recv_opt ch Channel.Client_to_server with
    | Some m -> List.iter (send Channel.Server_to_client) (server m)
    | None -> (
        match Channel.recv_opt ch Channel.Server_to_client with
        | Some m -> List.iter (send Channel.Client_to_server) (client m)
        | None -> progress := false)
  done;
  if not (client_done ()) then
    Error.fail
      (Error.Channel_empty
         (Printf.sprintf "Swarm_loopback: %s stalled before completion" what))

let session ?policy ?scope ?config ~initiator ~responder () =
  let ch = Channel.create () in
  let ini = Gossip.Initiator.create ?policy ?scope initiator in
  let resp = Gossip.Responder.create ?policy ?scope ?config responder in
  pump ch
    ~start:(Gossip.Initiator.start ini)
    ~client:(Gossip.Initiator.on_message ini)
    ~server:(Gossip.Responder.on_message resp)
    ~client_done:(fun () -> Gossip.Initiator.finished ini)
    ~what:"gossip session";
  {
    initiator = Gossip.Initiator.stats ini;
    responder = Gossip.Responder.stats resp;
    c2s_bytes = Channel.bytes ch Channel.Client_to_server;
    s2c_bytes = Channel.bytes ch Channel.Server_to_client;
    roundtrips = Channel.roundtrips ch;
  }

let repair ?policy ?scope ?config ~replica ~peers ~path () =
  List.map
    (fun peer ->
      let ch = Channel.create () in
      let rep = Repair.create ?policy ?scope replica ~path in
      let resp = Gossip.Responder.create ?policy ?scope ?config peer in
      pump ch ~start:(Repair.start rep)
        ~client:(Repair.on_message rep)
        ~server:(Gossip.Responder.on_message resp)
        ~client_done:(fun () -> Repair.finished rep)
        ~what:"repair session";
      Repair.outcome rep)
    peers

type t = {
  replicas : Replica.t array;
  rng : Prng.t;
  scope : Scope.t;
  policy : Resolve.policy option;
  mutable rounds : int;
  mutable sessions : int;
  mutable bytes : int;
  mutable conflicts : int;
}

let create ?(seed = 0L) ?(scope = Scope.disabled) ?policy replicas =
  if Int.equal (List.length replicas) 0 then
    Error.malformed "Swarm_loopback: empty swarm";
  {
    replicas = Array.of_list replicas;
    rng = Prng.create seed;
    scope;
    policy;
    rounds = 0;
    sessions = 0;
    bytes = 0;
    conflicts = 0;
  }

let replicas t = Array.to_list t.replicas
let rounds t = t.rounds
let sessions t = t.sessions
let bytes t = t.bytes
let conflicts t = t.conflicts

let converged t =
  let root = Replica.summary t.replicas.(0) in
  Array.for_all
    (fun r -> Fsync_hash.Fingerprint.equal (Replica.summary r) root)
    t.replicas

let round t =
  let k = Array.length t.replicas in
  t.rounds <- t.rounds + 1;
  Scope.incr t.scope "gossip_rounds";
  if k > 1 then begin
    (* Every peer initiates once per round against a uniformly random
       partner — classic push-pull anti-entropy, so information known to
       one peer reaches all K in O(log K) expected rounds. *)
    let order = Array.init k (fun i -> i) in
    Prng.shuffle t.rng order;
    Array.iter
      (fun i ->
        let j = (i + 1 + Prng.int t.rng (k - 1)) mod k in
        let r =
          session ?policy:t.policy ~scope:t.scope
            ~initiator:t.replicas.(i) ~responder:t.replicas.(j) ()
        in
        t.sessions <- t.sessions + 1;
        t.bytes <- t.bytes + r.c2s_bytes + r.s2c_bytes;
        t.conflicts <- t.conflicts + r.initiator.Gossip.conflicts)
      order
  end

let run ?(max_rounds = 64) t =
  while (not (converged t)) && t.rounds < max_rounds do
    round t
  done;
  if not (converged t) then
    Error.fail
      (Error.Verification_failed
         (Printf.sprintf
            "Swarm_loopback: %d peers still divergent after %d rounds"
            (Array.length t.replicas) t.rounds));
  Scope.observe t.scope "swarm_convergence_rounds" (float_of_int t.rounds);
  t.rounds
