(** A swarm peer: one replica served from a single-threaded select
    loop, plus the dialing side used by [fsync swarm join/repair].

    The serving loop speaks both dialects of fsyncd/1 on one port: the
    first frame of every connection routes it — a [Hello] carrying the
    rev-3 swarm extension starts a {!Gossip.Responder} (anti-entropy
    exchange against the replica), a plain [Hello] starts an ordinary
    read-only {!Fsync_server.Session} over the replica's current files,
    so rev-2 clients can still pull from a swarm member.  Gossip applies
    mutate the replica in place; sessions opened afterwards serve the
    converged state.

    Everything is one thread: machines only run inside {!step}, so
    applies are atomic with respect to other connections. *)

type t

type config = {
  sync : Fsync_server.Msg.sync_config;
  max_outbox : int; (** per-connection backpressure bound, bytes *)
  session_timeout_s : float;
}

val default_config : config
(** 4 MiB outbox, 30 s idle timeout. *)

val create :
  ?config:config ->
  ?scope:Fsync_obs.Scope.t ->
  ?policy:Resolve.policy ->
  Replica.t ->
  t

val replica : t -> Replica.t

val listen : t -> host:string -> port:int -> int
(** Bind and listen; returns the actual port (useful with port 0).
    @raise Unix.Unix_error on bind failure. *)

val add_connection : t -> Unix.file_descr -> unit
(** Register an already-connected descriptor (e.g. one end of a
    socketpair in tests).  Owned by the peer from here on. *)

val step : ?timeout_s:float -> t -> unit
(** One loop iteration: select (default 50 ms), accept, feed machines,
    flush outboxes, reap finished / failed / idle connections.  Never
    raises on peer misbehavior. *)

val run : ?timeout_s:float -> t -> unit
(** {!step} until {!request_stop}, then {!shutdown}. *)

val request_stop : t -> unit
val shutdown : t -> unit

type stats = {
  accepted : int;
  gossip_sessions : int;
  plain_sessions : int;
  completed : int;
  failed : int;
  timeouts : int;
}

val stats : t -> stats

(** {2 Dialing} *)

val gossip :
  ?policy:Resolve.policy ->
  ?scope:Fsync_obs.Scope.t ->
  ?idle_timeout_s:float ->
  host:string ->
  port:int ->
  Replica.t ->
  Gossip.stats
(** One anti-entropy exchange with the peer at [host:port], as the
    initiator.  Raises typed errors on failure. *)

val repair :
  ?policy:Resolve.policy ->
  ?scope:Fsync_obs.Scope.t ->
  ?idle_timeout_s:float ->
  host:string ->
  port:int ->
  Replica.t ->
  path:string ->
  Repair.outcome
(** One read-repair probe for [path] against the peer at [host:port]. *)
