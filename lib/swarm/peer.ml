module Channel = Fsync_net.Channel
module Fd_transport = Fsync_net.Fd_transport
module Conn = Fsync_server.Conn
module Session = Fsync_server.Session
module Sigcache = Fsync_server.Sigcache
module Msg = Fsync_server.Msg
module Error = Fsync_core.Error
module Scope = Fsync_obs.Scope
module Trace = Fsync_net.Trace

(* ---- the serving side: a small select loop ---- *)

type handler =
  | Waiting (* no frame yet: the first Hello picks the machine *)
  | Swarm of Gossip.Responder.t
  | Plain of Session.t

type cstate = {
  conn : Conn.t;
  mutable handler : handler;
  mutable last_activity : float;
  mutable failing : bool; (* error queued; close once the outbox drains *)
}

type config = {
  sync : Msg.sync_config;
  max_outbox : int;
  session_timeout_s : float;
}

let default_config =
  {
    sync = Msg.default_sync_config;
    max_outbox = 4 * 1024 * 1024;
    session_timeout_s = 30.0;
  }

type stats = {
  accepted : int;
  gossip_sessions : int;
  plain_sessions : int;
  completed : int;
  failed : int;
  timeouts : int;
}

type t = {
  replica : Replica.t;
  scope : Scope.t;
  policy : Resolve.policy;
  config : config;
  cache : Sigcache.t; (* shared across plain read-only sessions *)
  mutable listener : Unix.file_descr option;
  mutable conns : cstate list;
  mutable stop : bool;
  mutable accepted : int;
  mutable gossip_sessions : int;
  mutable plain_sessions : int;
  mutable completed : int;
  mutable failed : int;
  mutable timeouts : int;
}

let create ?(config = default_config) ?(scope = Scope.disabled)
    ?(policy = Resolve.default) replica =
  {
    replica;
    scope;
    policy;
    config;
    cache = Sigcache.create ();
    listener = None;
    conns = [];
    stop = false;
    accepted = 0;
    gossip_sessions = 0;
    plain_sessions = 0;
    completed = 0;
    failed = 0;
    timeouts = 0;
  }

let replica t = t.replica

let stats t =
  {
    accepted = t.accepted;
    gossip_sessions = t.gossip_sessions;
    plain_sessions = t.plain_sessions;
    completed = t.completed;
    failed = t.failed;
    timeouts = t.timeouts;
  }

let listen t ~host ~port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen fd 16;
  Unix.set_nonblock fd;
  t.listener <- Some fd;
  match Unix.getsockname fd with
  | Unix.ADDR_INET (_, p) -> p
  | Unix.ADDR_UNIX _ -> port

let add_connection t fd =
  t.accepted <- t.accepted + 1;
  t.conns <-
    {
      conn = Conn.create ~max_outbox:t.config.max_outbox fd;
      handler = Waiting;
      last_activity = Unix.gettimeofday ();
      failing = false;
    }
    :: t.conns

let queue_all c replies = List.iter (Conn.queue_msg c.conn) replies

(* Route the opening frame: a Hello carrying the swarm extension starts
   an anti-entropy exchange, a plain Hello a read-only fsyncd/1 session
   over the replica's current files.  Anything else is hostile. *)
let dispatch t c frame =
  match Msg.decode ~config:t.config.sync frame with
  | Msg.Hello { swarm = Some _; _ } ->
      let g =
        Gossip.Responder.create ~policy:t.policy ~scope:t.scope
          ~config:t.config.sync t.replica
      in
      t.gossip_sessions <- t.gossip_sessions + 1;
      c.handler <- Swarm g;
      Gossip.Responder.on_message g frame
  | Msg.Hello { swarm = None; _ } ->
      let s =
        Session.create ~config:t.config.sync ~scope:t.scope ~cache:t.cache
          (Replica.files t.replica)
      in
      t.plain_sessions <- t.plain_sessions + 1;
      c.handler <- Plain s;
      Session.on_message s frame
  | _ -> Error.malformed "Peer: expected Hello as the opening frame"

let feed t c frame =
  c.last_activity <- Unix.gettimeofday ();
  match c.handler with
  | Waiting -> dispatch t c frame
  | Swarm g -> Gossip.Responder.on_message g frame
  | Plain s -> Session.on_message s frame

let handler_finished c =
  match c.handler with
  | Waiting -> false
  | Swarm g -> Gossip.Responder.finished g
  | Plain s -> Session.finished s

let fail_conn t c err =
  if not c.failing then begin
    c.failing <- true;
    t.failed <- t.failed + 1;
    match
      Conn.queue_msg c.conn
        (Msg.encode ~config:t.config.sync
           (Msg.Error_msg (Error.to_string err)))
    with
    | () -> ()
    | exception _ -> Conn.close c.conn
  end

let feed_frames t c frames =
  List.iter
    (fun frame ->
      if not c.failing then
        match Error.guard (fun () -> feed t c frame) with
        | Ok replies -> queue_all c replies
        | Error err ->
            Trace.log "peer: session torn down: %s" (Error.to_string err);
            fail_conn t c err)
    frames

let reap t now =
  t.conns <-
    List.filter
      (fun c ->
        if Conn.closed c.conn then false
        else if Conn.peer_gone c.conn then begin
          Conn.close c.conn;
          false
        end
        else if Int.equal (Conn.pending_out c.conn) 0 && c.failing then begin
          Conn.close c.conn;
          false
        end
        else if Int.equal (Conn.pending_out c.conn) 0 && handler_finished c
        then begin
          t.completed <- t.completed + 1;
          Conn.close c.conn;
          false
        end
        else if now -. c.last_activity > t.config.session_timeout_s then begin
          t.timeouts <- t.timeouts + 1;
          Conn.close c.conn;
          false
        end
        else true)
      t.conns

let step ?(timeout_s = 0.05) t =
  let readable =
    List.filter
      (fun c -> not (Conn.over_backpressure c.conn || c.failing))
      t.conns
  in
  let writable = List.filter (fun c -> Conn.wants_write c.conn) t.conns in
  let rfds =
    (match t.listener with Some fd -> [ fd ] | None -> [])
    @ List.map (fun c -> Conn.fd c.conn) readable
  in
  let wfds = List.map (fun c -> Conn.fd c.conn) writable in
  (match Unix.select rfds wfds [] timeout_s with
  | ready_r, ready_w, _ ->
      let is_ready fds fd = List.memq fd fds in
      (match t.listener with
      | Some fd when is_ready ready_r fd ->
          let continue = ref true in
          while !continue && not t.stop do
            match Unix.accept fd with
            | client_fd, _ -> add_connection t client_fd
            | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
              ->
                continue := false
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
            | exception Unix.Unix_error (e, _, _) ->
                Trace.log "peer: accept: %s" (Unix.error_message e);
                continue := false
          done
      | Some _ | None -> ());
      List.iter
        (fun c ->
          if is_ready ready_r (Conn.fd c.conn) then
            match Error.guard (fun () -> Conn.handle_readable c.conn) with
            | Error err -> fail_conn t c err
            | Ok `Eof -> Conn.close c.conn
            | Ok (`Msgs (frames, _eof)) -> feed_frames t c frames)
        readable;
      List.iter
        (fun c ->
          if is_ready ready_w (Conn.fd c.conn) then Conn.handle_writable c.conn)
        writable
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
  reap t (Unix.gettimeofday ())

let request_stop t = t.stop <- true

let shutdown t =
  List.iter
    (fun c ->
      Conn.handle_writable c.conn;
      Conn.close c.conn)
    t.conns;
  t.conns <- [];
  (match t.listener with
  | Some fd -> (
      match Unix.close fd with
      | () -> ()
      | exception Unix.Unix_error _ -> ())
  | None -> ());
  t.listener <- None

let run ?timeout_s t =
  while not t.stop do
    step ?timeout_s t
  done;
  shutdown t

(* ---- the dialing side ---- *)

let connect ~host ~port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  match
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
  with
  | () -> fd
  | exception e ->
      (match Unix.close fd with
      | () -> ()
      | exception Unix.Unix_error _ -> ());
      raise e

let drive ~idle_timeout_s ~host ~port ~start ~on_message ~finished ~what =
  let fd = connect ~host ~port in
  let tr = Fd_transport.of_fd fd in
  let ch = Fd_transport.channel tr in
  let send frames =
    List.iter (fun m -> Channel.send ch Channel.Client_to_server m) frames
  in
  let go () =
    send start;
    let deadline = ref (Unix.gettimeofday () +. idle_timeout_s) in
    while not (finished ()) do
      if Unix.gettimeofday () > !deadline then
        Error.fail
          (Error.Channel_empty
             (Printf.sprintf "Peer: no %s reply within %.1f s" what
                idle_timeout_s));
      match Channel.recv_opt ch Channel.Server_to_client with
      | Some frame ->
          deadline := Unix.gettimeofday () +. idle_timeout_s;
          send (on_message frame)
      | None ->
          ignore
            (Fd_transport.wait_readable tr Channel.Server_to_client
               ~timeout_s:0.2)
    done
  in
  match go () with
  | () -> Fd_transport.close tr
  | exception e ->
      Fd_transport.close tr;
      raise e

let gossip ?policy ?scope ?(idle_timeout_s = 30.0) ~host ~port replica =
  let ini = Gossip.Initiator.create ?policy ?scope replica in
  drive ~idle_timeout_s ~host ~port
    ~start:(Gossip.Initiator.start ini)
    ~on_message:(Gossip.Initiator.on_message ini)
    ~finished:(fun () -> Gossip.Initiator.finished ini)
    ~what:"gossip";
  Gossip.Initiator.stats ini

let repair ?policy ?scope ?(idle_timeout_s = 30.0) ~host ~port replica ~path =
  let rep = Repair.create ?policy ?scope replica ~path in
  drive ~idle_timeout_s ~host ~port ~start:(Repair.start rep)
    ~on_message:(Repair.on_message rep)
    ~finished:(fun () -> Repair.finished rep)
    ~what:"repair";
  Repair.outcome rep
