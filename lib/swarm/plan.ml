module Fp = Fsync_hash.Fingerprint
module Vv = Version_vector

type source = Local of string | Remote of string | Absent

type install = { dest : string; entry : Replica.entry; source : source }

type outcome = { installs : install list; conflict : bool }

let nothing = { installs = []; conflict = false }

let conflict_marker = ".fsync-conflict."
let conflict_path ~path ~author = path ^ conflict_marker ^ author

let is_conflict_path p =
  let mlen = String.length conflict_marker in
  let plen = String.length p in
  let rec scan i =
    if i + mlen > plen then false
    else if String.equal (String.sub p i mlen) conflict_marker then true
    else scan (i + 1)
  in
  scan 0

let source_of_present ~path (ours : Replica.entry option)
    (theirs : Replica.entry) =
  match ours with
  | Some o when o.present && Fp.equal o.fp theirs.fp ->
      (* Same bytes already here: a metadata-only adoption. *)
      Local path
  | Some _ | None -> Remote path

let adopt ~path ours (theirs : Replica.entry) =
  {
    installs =
      [
        {
          dest = path;
          entry = theirs;
          source =
            (if theirs.present then source_of_present ~path ours theirs
             else Absent);
        };
      ];
    conflict = false;
  }

let max_author a b = if String.compare a b >= 0 then a else b

let decide ?(policy = Resolve.default) ~path ~ours ~theirs () =
  match (ours, theirs) with
  | _, None -> nothing
  | None, Some e -> adopt ~path ours e
  | Some o, Some e ->
      if Replica.entry_equal o e then nothing
      else if Vv.dominates e.vv o.vv then adopt ~path ours e
      else if Vv.dominates o.vv e.vv then nothing
      else begin
        (* Concurrent (or a vector tie that still disagrees — a buggy
           peer; folded into the same deterministic rules rather than
           trusted). *)
        let merged = Vv.merge o.vv e.vv in
        match (o.present, e.present) with
        | true, true when Fp.equal o.fp e.fp ->
            (* Same bytes from independent edits: join silently. *)
            let entry =
              {
                o with
                vv = merged;
                author = max_author o.author e.author;
              }
            in
            if Replica.entry_equal entry o then nothing
            else
              {
                installs = [ { dest = path; entry; source = Local path } ];
                conflict = false;
              }
        | true, false ->
            (* Edit vs. delete: the edit survives, vectors joined. *)
            let entry = { o with vv = merged } in
            {
              installs = [ { dest = path; entry; source = Local path } ];
              conflict = false;
            }
        | false, true ->
            let entry = { e with vv = merged } in
            {
              installs = [ { dest = path; entry; source = Remote path } ];
              conflict = false;
            }
        | false, false ->
            let entry =
              { o with vv = merged; author = max_author o.author e.author }
            in
            { installs = [ { dest = path; entry; source = Absent } ]; conflict = false }
        | true, true ->
            (* A genuine conflict: crown the policy winner at the path,
               keep the loser as a sibling — never a silent overwrite. *)
            let winner, loser, win_src, lose_src =
              match policy ~path ~ours:o ~theirs:e with
              | Resolve.Ours -> (o, e, Local path, Remote path)
              | Resolve.Theirs -> (e, o, Remote path, Local path)
            in
            let sibling = conflict_path ~path ~author:loser.author in
            {
              installs =
                [
                  { dest = path; entry = { winner with vv = merged }; source = win_src };
                  {
                    dest = sibling;
                    entry = { loser with vv = merged };
                    source = lose_src;
                  };
                ];
              conflict = true;
            }
      end
